package fsr

import (
	"fsr/internal/experiments"
	"fsr/internal/topology"
)

// Re-exports for the paper's evaluation (§VI): the tables, figures, and
// topology generators the fsr CLI and the examples drive. These remain
// free functions — each experiment is a self-contained scenario with its
// own options struct — while the pipeline underneath them goes through the
// same internal packages a Session configures.

// Experiment option and result types.
type (
	// TableIRow classifies one policy configuration (Table I).
	TableIRow = experiments.TableIRow
	// Figure4Options / Figure4Result parameterize the convergence-vs-
	// chain-length study (CAIDA-Sim, Figure 4).
	Figure4Options = experiments.Figure4Options
	Figure4Result  = experiments.Figure4Result
	// Figure5Options / Figure5Result parameterize the §VI-B iBGP study.
	Figure5Options = experiments.Figure5Options
	Figure5Result  = experiments.Figure5Result
	// Figure6Options / Figure6Result parameterize the PV/HLP/HLP-CH
	// comparison (Figure 6).
	Figure6Options = experiments.Figure6Options
	Figure6Result  = experiments.Figure6Result
	// SectionVICOptions / GadgetReport parameterize the §VI-C gadget
	// studies.
	SectionVICOptions = experiments.SectionVICOptions
	GadgetReport      = experiments.GadgetReport
)

// TableI regenerates Table I: the policy-configuration spectrum.
func TableI() []TableIRow { return experiments.TableI() }

// FormatTableI renders Table I rows the way the paper prints them.
func FormatTableI(rows []TableIRow) string { return experiments.FormatTableI(rows) }

// Figure4 regenerates the convergence-vs-chain-length series.
func Figure4(opts Figure4Options) (Figure4Result, error) { return experiments.Figure4(opts) }

// Figure5 regenerates the §VI-B iBGP study: extraction, analysis, and the
// bandwidth comparison.
func Figure5(opts Figure5Options) (*Figure5Result, error) { return experiments.Figure5(opts) }

// Figure6 regenerates the PV / HLP / HLP-CH comparison.
func Figure6(opts Figure6Options) (*Figure6Result, error) { return experiments.Figure6(opts) }

// SectionVIC reproduces the §VI-C gadget emulation study.
func SectionVIC(opts SectionVICOptions) ([]GadgetReport, error) { return experiments.SectionVIC(opts) }

// Topology generation.
type (
	// ASGraph is a generated AS-level topology with business
	// relationships.
	ASGraph = topology.ASGraph
	// ASEdge is one provider-customer or peer-peer adjacency.
	ASEdge = topology.ASEdge
	// HierarchyParams parameterizes GenerateHierarchy.
	HierarchyParams = topology.HierarchyParams
	// ISPParams parameterizes the router-level ISP generator used by
	// Figure5Options.
	ISPParams = topology.ISPParams
)

// AS relationship kinds.
const (
	CustomerProvider = topology.CustomerProvider
	PeerPeer         = topology.PeerPeer
)

// GenerateHierarchy generates a Gao-Rexford-style AS hierarchy with the
// given longest customer-provider chain.
func GenerateHierarchy(seed int64, p HierarchyParams) *ASGraph {
	return topology.GenerateHierarchy(seed, p)
}
