package fsr

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fsr/internal/analysis"
	"fsr/internal/engine"
	"fsr/internal/ndlog"
	"fsr/internal/obs"
	"fsr/internal/scenario"
	"fsr/internal/simnet"
	"fsr/internal/smt"
	"fsr/internal/spp"
	"fsr/internal/trace"
)

// Session owns one configured instance of the FSR pipeline: policy →
// constraints → solver verdict → NDlog program → simulated or socket
// deployment. A Session is immutable after NewSession and safe for
// concurrent use; every long-running method takes a context and honours
// cancellation.
type Session struct {
	solver      smt.Solver
	runner      engine.Runner
	seed        int64
	batch       time.Duration
	stagger     time.Duration
	staggerSet  bool
	horizon     time.Duration
	idle        time.Duration
	link        simnet.LinkConfig
	linkSet     bool
	loss        float64
	lossSet     bool
	plan        *engine.FaultPlan
	parallelism int
	collector   *trace.Collector
}

// Option configures a Session.
type Option func(*Session)

// WithSolver selects the constraint-solving backend (default NativeSolver).
func WithSolver(s SolverBackend) Option { return func(o *Session) { o.solver = s } }

// WithRunner selects the protocol-execution backend (default
// SimulationRunner).
func WithRunner(r RunnerBackend) Option { return func(o *Session) { o.runner = r } }

// WithSeed sets the seed driving all deterministic randomness — simulation
// scheduling, batch jitter, start stagger (default 1). Runs with equal
// seeds and options are reproducible byte for byte in simulation mode.
func WithSeed(seed int64) Option { return func(o *Session) { o.seed = seed } }

// WithBatchWindow sets the route-propagation batch interval (§VI-A uses
// 1 s; default 0, meaning unbatched). Unless WithStartStagger is given,
// node starts are staggered over half the batch window, matching how real
// routers desynchronize.
func WithBatchWindow(d time.Duration) Option { return func(o *Session) { o.batch = d } }

// WithStartStagger sets the per-node start stagger explicitly, overriding
// the batch-window-derived default.
func WithStartStagger(d time.Duration) Option {
	return func(o *Session) { o.stagger = d; o.staggerSet = true }
}

// WithHorizon bounds protocol executions: virtual time in simulation, wall
// clock in deployment (default 5 s).
func WithHorizon(d time.Duration) Option { return func(o *Session) { o.horizon = d } }

// WithIdleWindow sets the deployment-mode quiescence window (default
// 200 ms). Simulation runners detect quiescence exactly and ignore it.
func WithIdleWindow(d time.Duration) Option { return func(o *Session) { o.idle = d } }

// WithLink configures simulated links (default: the paper's 100 Mbps,
// 10 ms link). A zero latency with bandwidth 0 is honoured as an ideal
// link (no delay, infinite bandwidth). Deployment runners use the real
// network stack and ignore it.
func WithLink(latency time.Duration, bandwidthBps int64) Option {
	return func(o *Session) {
		o.link = simnet.LinkConfig{Latency: latency, Bandwidth: bandwidthBps}
		o.linkSet = true
	}
}

// WithLinkLoss sets the probabilistic per-message loss rate on every
// simulated link, in [0, 1), on top of whatever link shape is configured
// (WithLink or the default). Losses draw from the run's seeded RNG, so
// equal seeds lose the same messages. Deployment runners ignore it.
func WithLinkLoss(p float64) Option {
	return func(o *Session) { o.loss = p; o.lossSet = true }
}

// WithFaultPlan schedules fault injection — link flaps, partitions, node
// restarts, mid-run policy changes — into every Run on the session. Build
// a deterministic plan with BuildFaultPlan or assemble FaultOps by hand.
// Only the compiled simulation runner executes plans; the interpreter and
// the TCP deployment reject sessions carrying one.
func WithFaultPlan(p *FaultPlan) Option { return func(o *Session) { o.plan = p } }

// WithTrace attaches a traffic collector; the same collector accumulates
// across every Run on the session, and RunReport totals are read from it.
// Nil (the default) gives each run a private collector.
func WithTrace(c *TraceCollector) Option { return func(o *Session) { o.collector = c } }

// WithParallelism caps the AnalyzeAll worker pool (default
// runtime.GOMAXPROCS(0); values below 1 mean 1).
func WithParallelism(n int) Option { return func(o *Session) { o.parallelism = n } }

// NewSession returns a Session with the given options applied over the
// defaults: native solver, simulation runner, seed 1, unbatched sends, 5 s
// horizon, GOMAXPROCS parallelism.
func NewSession(opts ...Option) *Session {
	s := &Session{
		solver:      smt.Native{},
		runner:      engine.SimRunner{},
		seed:        1,
		horizon:     5 * time.Second,
		parallelism: runtime.GOMAXPROCS(0),
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.solver == nil {
		s.solver = smt.Native{}
	}
	if s.runner == nil {
		s.runner = engine.SimRunner{}
	}
	if s.parallelism < 1 {
		s.parallelism = 1
	}
	return s
}

// SolverName reports the configured solver backend's name.
func (s *Session) SolverName() string { return s.solver.Name() }

// RunnerName reports the configured runner backend's name.
func (s *Session) RunnerName() string { return s.runner.Name() }

// Analyze decides safety for a policy configuration, applying the
// lexical-product composition rule (§IV), on the session's solver backend.
func (s *Session) Analyze(ctx context.Context, a Algebra) (SafetyReport, error) {
	ctx, op := obs.Flight().StartOp(ctx, "analyze", a.Name())
	ctx, sp := obs.StartSpan(ctx, "analyze")
	sp.Attr("algebra", a.Name())
	defer sp.End()
	rep, err := analysis.AnalyzeSafetyWith(ctx, a, s.solver)
	if op != nil {
		if err != nil {
			op.SetVerdict("error")
		} else {
			op.SetVerdict(rep.Verdict.String())
			var probes, relax int64
			for i := range rep.Steps {
				probes += int64(rep.Steps[i].Stats.Probes)
				relax += int64(rep.Steps[i].Stats.Relaxations)
			}
			op.Counter("probes", probes)
			op.Counter("relaxations", relax)
		}
		op.Finish()
	}
	return rep, err
}

// AnalyzeAll analyzes a batch of policy configurations concurrently over a
// worker pool of WithParallelism workers, preserving input order in the
// results. The first error cancels the remaining work and is returned.
// Work is claimed through an atomic index rather than a feeder channel, so
// the pool costs one goroutine handoff per worker, not one per job — the
// difference is visible when the batch is large and each analysis is a
// sub-millisecond incremental solve.
func (s *Session) AnalyzeAll(ctx context.Context, algebras ...Algebra) ([]SafetyReport, error) {
	reports := make([]SafetyReport, len(algebras))
	if len(algebras) == 0 {
		return reports, nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	workers := s.parallelism
	if workers > len(algebras) {
		workers = len(algebras)
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(algebras) || ctx.Err() != nil {
					return
				}
				rep, err := analysis.AnalyzeSafetyWith(ctx, algebras[i], s.solver)
				if err != nil {
					errOnce.Do(func() { firstErr = err; cancel() })
					return
				}
				reports[i] = rep
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return reports, nil
}

// CheckStrictMonotonicity runs the single strict-monotonicity check on the
// session's solver backend, returning the solver-level result with model or
// minimal core.
func (s *Session) CheckStrictMonotonicity(ctx context.Context, a Algebra) (AnalysisResult, error) {
	return analysis.CheckWith(ctx, a, analysis.StrictMonotonicity, s.solver)
}

// CheckMonotonicity runs the plain monotonicity check on the session's
// solver backend.
func (s *Session) CheckMonotonicity(ctx context.Context, a Algebra) (AnalysisResult, error) {
	return analysis.CheckWith(ctx, a, analysis.Monotonicity, s.solver)
}

// scaleThreshold is the node count above which AnalyzeSPP prefers the
// sharded internet-scale path: below it the classic pipeline is already
// sub-millisecond and its extra diagnostics (full algebra object,
// origination maps) come free.
const scaleThreshold = 512

// AnalyzeSPP converts and checks an SPP instance in one step, returning the
// analysis result and the suspect nodes implicated by the core (empty when
// sat).
//
// Large instances (≥512 nodes) take the internet-scale fast path when the
// configured solver semantics permit it (the default native backend or the
// SCC-decomposed one, with core minimization on): sharded constraint
// generation, dense encoding, and the SCC-decomposed engine, with results
// bit-identical to the classic pipeline. Instances the compact path cannot
// represent fall through to the classic pipeline transparently.
func (s *Session) AnalyzeSPP(ctx context.Context, in *SPPInstance) (AnalysisResult, []SPPNode, error) {
	ctx, op := obs.Flight().StartOp(ctx, "analyze-spp", in.Name)
	op.SetSize(len(in.Nodes))
	ctx, sp := obs.StartSpan(ctx, "analyze-spp")
	sp.AttrInt("nodes", int64(len(in.Nodes)))
	res, suspects, err := s.analyzeSPP(ctx, in, sp)
	sp.End()
	if op != nil {
		switch {
		case err != nil:
			op.SetVerdict("error")
		case res.Sat:
			op.SetVerdict("safe")
		default:
			op.SetVerdict("unsafe")
		}
		op.Counter("probes", int64(res.Stats.Probes))
		op.Counter("relaxations", int64(res.Stats.Relaxations))
		op.Counter("components", int64(res.Stats.Components))
		op.Counter("trivial_components", int64(res.Stats.TrivialComponents))
		op.Counter("levels", int64(res.Stats.Levels))
		op.Counter("max_level_width", int64(res.Stats.MaxLevelWidth))
		op.Finish()
	}
	return res, suspects, err
}

// analyzeSPP is AnalyzeSPP's body, split out so the instrumentation
// wrapper observes exactly one return path.
func (s *Session) analyzeSPP(ctx context.Context, in *SPPInstance, sp *obs.Span) (AnalysisResult, []SPPNode, error) {
	if len(in.Nodes) >= scaleThreshold && scaleEligible(s.solver) {
		res, suspects, ok, err := spp.AnalyzeScale(ctx, in, s.parallelism)
		if err != nil {
			return AnalysisResult{}, nil, err
		}
		if ok {
			sp.Attr("path", "scale")
			return res, suspects, nil
		}
	}
	sp.Attr("path", "classic")
	conv, err := in.ToAlgebra()
	if err != nil {
		return AnalysisResult{}, nil, err
	}
	res, err := analysis.CheckWith(ctx, conv.Algebra, analysis.StrictMonotonicity, s.solver)
	if err != nil {
		return AnalysisResult{}, nil, err
	}
	return res, conv.SuspectNodes(res.Core), nil
}

// scaleEligible reports whether the configured solver's semantics are the
// ones the scale path reproduces (native difference-logic engine with
// deletion-minimized cores; the decomposed backend is that same engine).
func scaleEligible(solver smt.Solver) bool {
	switch s := solver.(type) {
	case smt.Native:
		return !s.NoMinimize
	case smt.Decomposed:
		return !s.NoMinimize
	}
	return false
}

// OpenDeltaVerifier loads an SPP instance into a resident incremental
// verifier. The verifier deep-copies the instance, builds the safety
// constraint system once, and then re-verifies edits (ReRank, AddSession,
// DropSession) by patching the standing difference-logic graph and
// re-probing only the affected region — the daemon-mode counterpart of
// AnalyzeSPP. Verdicts, models, and minimal cores are bit-for-bit
// identical to a full rebuild (VerifyFull is the differential oracle).
// A DeltaVerifier is single-goroutine; concurrent use needs external
// locking or per-caller Clone.
func (s *Session) OpenDeltaVerifier(in *SPPInstance) (*DeltaVerifier, error) {
	return spp.NewDeltaVerifier(in)
}

// Compile translates a policy configuration to its NDlog implementation:
// the GPV program plus the generated policy functions (§V, Table II).
func (s *Session) Compile(a Algebra) (*NDlogProgram, error) { return ndlog.Generate(a) }

// SolverEncoding renders the §IV-C style solver input for a policy — the
// exact text the YicesTextSolver backend round-trips.
func (s *Session) SolverEncoding(a Algebra) (string, error) {
	return analysis.Yices(a, analysis.StrictMonotonicity)
}

// Run executes an SPP instance on the session's runner backend: the
// instance is converted to its algebra, the GPV implementation is built,
// and the protocol runs to quiescence or the horizon.
func (s *Session) Run(ctx context.Context, in *SPPInstance) (*RunReport, error) {
	conv, err := in.ToAlgebra()
	if err != nil {
		return nil, err
	}
	return s.RunConversion(ctx, conv)
}

// Campaign runs a differential analysis-vs-simulation campaign (the
// scenario engine): spec.Count procedurally generated scenarios are fanned
// across the session's worker pool, each one safety-analyzed on the
// session's solver and executed as a bounded run on the session's runner,
// and every outcome is classified against the verdict its generator
// guarantees by construction. Spec fields left zero inherit the session's
// configuration (solver, runner, parallelism, seed, horizon); with
// spec.Shrink set, divergences and mismatches are delta-debugged down to
// minimal replayable instances. Equal specs on equal sessions reproduce
// identical classifications.
func (s *Session) Campaign(ctx context.Context, spec CampaignSpec) (*CampaignReport, error) {
	return scenario.Run(ctx, s.scenarioSpec(spec))
}

// Replay re-evaluates corpus entries written by an earlier campaign,
// reporting whether each recorded (verdict, convergence) pair reproduces
// under the session's backends.
func (s *Session) Replay(ctx context.Context, entries []CorpusEntry) ([]ReplayResult, error) {
	return scenario.Replay(ctx, entries, s.scenarioSpec(CampaignSpec{}))
}

// scenarioSpec fills a campaign spec's zero fields from the session.
func (s *Session) scenarioSpec(spec CampaignSpec) CampaignSpec {
	if spec.Solver == nil {
		spec.Solver = s.solver
	}
	if spec.Runner == nil {
		spec.Runner = s.runner
	}
	if spec.Parallelism == 0 {
		spec.Parallelism = s.parallelism
	}
	if spec.BaseSeed == 0 {
		spec.BaseSeed = s.seed
	}
	if spec.Horizon == 0 {
		spec.Horizon = s.horizon
	}
	return spec
}

// RunConversion is Run for an already converted instance, letting callers
// reuse one conversion across analysis and execution.
func (s *Session) RunConversion(ctx context.Context, conv *SPPConversion) (*RunReport, error) {
	stagger := s.stagger
	if !s.staggerSet {
		stagger = s.batch / 2
	}
	link, linkSet := s.link, s.linkSet
	if s.lossSet {
		// Loss composes with the link shape: apply it over the default link
		// when no explicit shape was chosen.
		if !linkSet && link == (simnet.LinkConfig{}) {
			link = simnet.DefaultLink()
		}
		link.Loss = s.loss
		linkSet = true
	}
	return s.runner.Run(ctx, conv, engine.RunOptions{
		Seed:          s.seed,
		Link:          link,
		LinkExplicit:  linkSet,
		BatchInterval: s.batch,
		StartStagger:  stagger,
		Horizon:       s.horizon,
		IdleWindow:    s.idle,
		Collector:     s.collector,
		Plan:          s.plan,
	})
}
