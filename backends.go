package fsr

import (
	"io"

	"fsr/internal/engine"
	"fsr/internal/scenario"
	"fsr/internal/smt"
)

// Backend selection. A Session talks to two pluggable backends: a
// SolverBackend decides the generated constraints, a RunnerBackend executes
// the generated protocol. Callers select backends by value through
// WithSolver and WithRunner; the constructors below are the only way to
// obtain one from outside the module, so commands and examples never import
// internal packages.

// SolverBackend decides constraint systems. Implementations: NativeSolver
// (in-process difference logic) and YicesTextSolver (round trip through the
// paper's Yices surface syntax).
type SolverBackend = smt.Solver

// NativeSolver returns the built-in difference-logic backend: ground atoms
// become a constraint graph decided by Bellman–Ford, with deletion-minimized
// unsat cores. This is the default and the fastest path.
func NativeSolver() SolverBackend { return smt.Native{} }

// YicesTextSolver returns the external-encoding backend: constraints are
// rendered in Yices 1.x syntax (the paper's §IV-C listings), parsed back,
// and decided natively — exercising the exact text FSR would hand to a real
// Yices binary.
func YicesTextSolver() SolverBackend { return smt.YicesText{} }

// SCCSolver returns the SCC-decomposed native backend: the constraint
// digraph is condensed with Tarjan's algorithm and each strongly connected
// component is solved independently (in parallel across components on
// multi-core hosts), with verdicts, models, and minimized cores identical
// to NativeSolver. Sessions holding this backend also take the dense
// internet-scale fast path for large SPP instances.
func SCCSolver() SolverBackend { return smt.Decomposed{} }

// SolverBackends returns every built-in solver backend.
func SolverBackends() []SolverBackend { return smt.Backends() }

// SolverBackendByName resolves "native", "native-scc" (alias "scc"), or
// "yices-text" (alias "yices").
func SolverBackendByName(name string) (SolverBackend, error) { return smt.SolverByName(name) }

// RunnerBackend executes a converted SPP instance. Implementations:
// SimulationRunner, NDlogRunner, DeploymentRunner.
type RunnerBackend = engine.Runner

// SimulationRunner returns the default execution backend: the compiled GPV
// protocol over the deterministic discrete-event simulator.
func SimulationRunner() RunnerBackend { return engine.SimRunner{} }

// NDlogRunner returns the interpreted execution backend: the generated
// NDlog program evaluated by the engine package over the simulator — the
// RapidNet-style path, slower but exercising the generated code itself.
func NDlogRunner() RunnerBackend { return engine.SimRunner{Interpreted: true} }

// DeploymentRunner returns the deployment backend: the compiled GPV
// protocol over real TCP sockets on loopback, timed by the wall clock.
func DeploymentRunner() RunnerBackend { return engine.DeployRunner{} }

// RunnerBackends returns every built-in runner backend.
func RunnerBackends() []RunnerBackend { return engine.Runners() }

// RunnerBackendByName resolves "sim", "sim-ndlog" (alias "ndlog"), or "tcp"
// (aliases "deploy", "deployment").
func RunnerBackendByName(name string) (RunnerBackend, error) { return engine.RunnerByName(name) }

// Scenario engine. The third pluggable axis beside solvers and runners:
// seeded generators of whole workloads, consumed by Session.Campaign. See
// the internal/scenario package for the generator guarantees.

type (
	// ScenarioKind names a scenario generator.
	ScenarioKind = scenario.Kind
	// Scenario is one generated workload: instance, seed, and the verdict
	// its construction guarantees.
	Scenario = scenario.Scenario
	// ScenarioExpectation is a generator's guaranteed verdict.
	ScenarioExpectation = scenario.Expectation
	// CampaignSpec parameterizes Session.Campaign.
	CampaignSpec = scenario.Spec
	// CampaignReport is a campaign's classified outcome.
	CampaignReport = scenario.Report
	// CampaignResult is one scenario's campaign record.
	CampaignResult = scenario.Result
	// CampaignOutcome classifies one scenario's analysis-vs-execution result.
	CampaignOutcome = scenario.Outcome
	// CorpusEntry is one replayable counterexample record.
	CorpusEntry = scenario.CorpusEntry
	// ReplayResult is one corpus entry's reproduction check.
	ReplayResult = scenario.ReplayResult
)

// Scenario generator kinds and campaign outcome classes.
const (
	ScenarioGadgetSplice       = scenario.GadgetSplice
	ScenarioGaoRexford         = scenario.GaoRexford
	ScenarioIBGP               = scenario.IBGP
	ScenarioGaoRexfordInternet = scenario.GaoRexfordInternet
	ScenarioLexicalProduct     = scenario.LexicalProduct
	ScenarioDivergentFixture   = scenario.DivergentFixture
	ScenarioPartialSpec        = scenario.PartialSpec
	ScenarioChurnFlap          = scenario.ChurnFlap
	ScenarioChurnStorm         = scenario.ChurnStorm
	ScenarioChurnDispute       = scenario.ChurnDispute

	ExpectAny    = scenario.ExpectAny
	ExpectSafe   = scenario.ExpectSafe
	ExpectUnsafe = scenario.ExpectUnsafe

	OutcomeAgreement    = scenario.OutcomeAgreement
	OutcomeConservative = scenario.OutcomeConservative
	OutcomeDivergence   = scenario.OutcomeDivergence
	OutcomeMismatch     = scenario.OutcomeMismatch
	OutcomeTimeout      = scenario.OutcomeTimeout
	OutcomeError        = scenario.OutcomeError
)

// ScenarioKinds lists every registered scenario generator.
func ScenarioKinds() []ScenarioKind { return scenario.Kinds() }

// DefaultScenarioKinds is the mixed workload campaigns run when no kinds
// are named.
func DefaultScenarioKinds() []ScenarioKind { return scenario.DefaultKinds() }

// ChurnScenarioKinds is the fault-injection workload: every generator whose
// scenarios carry a fault plan (link flaps, flap storms, partitions, node
// restarts, mid-run policy changes).
func ChurnScenarioKinds() []ScenarioKind { return scenario.ChurnKinds() }

// ScenarioKindByName resolves a generator kind by name.
func ScenarioKindByName(name string) (ScenarioKind, error) { return scenario.KindByName(name) }

// GenerateScenario derives the deterministic scenario for (kind, seed).
func GenerateScenario(kind ScenarioKind, seed int64) (*Scenario, error) {
	return scenario.Generate(kind, seed)
}

// WriteScenarioCorpus writes corpus entries as JSON Lines.
func WriteScenarioCorpus(w io.Writer, entries []CorpusEntry) error {
	return scenario.WriteCorpus(w, entries)
}

// ReadScenarioCorpus parses a JSON Lines corpus.
func ReadScenarioCorpus(r io.Reader) ([]CorpusEntry, error) { return scenario.ReadCorpus(r) }

// Fault injection. A FaultPlan is a deterministic, seed-derived schedule of
// faults a simulated run injects mid-execution: link flaps, flap storms,
// partitions, node restarts, and mid-run policy changes. Attach one to a
// session with WithFaultPlan, or let the churn scenario kinds derive one
// per scenario. Only the compiled simulation backend executes plans.

type (
	// FaultPlan is a time-ordered schedule of fault operations.
	FaultPlan = engine.FaultPlan
	// FaultOp is one scheduled fault operation.
	FaultOp = engine.FaultOp
	// FaultOpKind names a fault operation's type.
	FaultOpKind = engine.FaultOpKind
	// FaultPlanSpec parameterizes BuildFaultPlan.
	FaultPlanSpec = engine.FaultPlanSpec
)

// Fault operation kinds.
const (
	FaultLinkDown       = engine.FaultLinkDown
	FaultLinkUp         = engine.FaultLinkUp
	FaultRestart        = engine.FaultRestart
	FaultPolicyWithdraw = engine.FaultPolicyWithdraw
	FaultPolicyRestore  = engine.FaultPolicyRestore
)

// BuildFaultPlan derives a deterministic fault schedule from a seed, the
// node set, and the undirected session list. Equal inputs yield equal
// plans, byte for byte — the property that keeps churn campaigns
// reproducible.
func BuildFaultPlan(seed int64, nodes []string, sessions [][2]string, spec FaultPlanSpec) *FaultPlan {
	return engine.BuildFaultPlan(seed, nodes, sessions, spec)
}
