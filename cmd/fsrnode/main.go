// Command fsrnode runs a single deployment-mode GPV demonstration on
// loopback sockets: the paper's RapidNet deployment mode in miniature. It
// wires a gadget instance across real TCP connections, runs to quiescence,
// and prints each node's selection — the same protocol code the simulator
// drives, backed by the net package instead of virtual time.
//
// Usage: fsrnode [-gadget fig3-fixed] [-horizon 10s]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"fsr"
	"fsr/internal/pathvector"
	"fsr/internal/simnet"
	"fsr/internal/spp"
	"fsr/internal/trace"
)

func main() {
	gadget := flag.String("gadget", "fig3-fixed", "gadget to deploy: goodgadget|badgadget|disagree|fig3|fig3-fixed")
	horizon := flag.Duration("horizon", 10*time.Second, "wall-clock horizon")
	batch := flag.Duration("batch", 50*time.Millisecond, "route batching interval")
	flag.Parse()

	var inst *spp.Instance
	switch *gadget {
	case "goodgadget":
		inst = spp.GoodGadget()
	case "badgadget":
		inst = spp.BadGadget()
	case "disagree":
		inst = spp.Disagree()
	case "fig3":
		inst = spp.Figure3IBGP()
	case "fig3-fixed":
		inst = spp.Figure3IBGPFixed()
	default:
		log.Fatalf("unknown gadget %q", *gadget)
	}
	conv, err := fsr.ConvertSPP(inst)
	if err != nil {
		log.Fatal(err)
	}

	col := trace.NewCollector(10 * time.Millisecond)
	dep := simnet.NewDeployment(col)
	nodes, err := pathvector.BuildSPPDeployment(dep, conv, pathvector.Config{
		BatchInterval: *batch,
		StartStagger:  *batch / 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := dep.Run(*horizon, *batch)
	if err != nil {
		log.Fatal(err)
	}
	msgs, bytes := col.Totals()
	fmt.Printf("%s over TCP loopback: converged=%v time=%v messages=%d bytes=%d\n",
		inst.Name, res.Converged, res.Time, msgs, bytes)
	for _, n := range inst.Nodes {
		if best, ok := nodes[simnet.NodeID(n)].Best(pathvector.SPPDest); ok {
			fmt.Printf("  %s → %v (%s)\n", n, best.Path, best.Sig)
		} else {
			fmt.Printf("  %s → no route\n", n)
		}
	}
}
