// Command fsrnode runs a single deployment-mode GPV demonstration on
// loopback sockets: the paper's RapidNet deployment mode in miniature. It
// builds an fsr.Session with the TCP deployment runner, wires a gadget
// instance across real TCP connections, runs to quiescence, and prints each
// node's selection — the same protocol code the simulator drives, backed by
// the net package instead of virtual time.
//
// Usage: fsrnode [-gadget fig3-fixed] [-horizon 10s]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"fsr"
)

func main() {
	gadget := flag.String("gadget", "fig3-fixed", "gadget to deploy: goodgadget|badgadget|disagree|fig3|fig3-fixed")
	horizon := flag.Duration("horizon", 10*time.Second, "wall-clock horizon")
	batch := flag.Duration("batch", 50*time.Millisecond, "route batching interval")
	flag.Parse()

	inst, err := fsr.Gadget(*gadget)
	if err != nil {
		log.Fatal(err)
	}
	sess := fsr.NewSession(
		fsr.WithRunner(fsr.DeploymentRunner()),
		fsr.WithHorizon(*horizon),
		fsr.WithBatchWindow(*batch),
		fsr.WithIdleWindow(*batch),
	)
	rep, err := sess.Run(context.Background(), inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s over TCP loopback: converged=%v time=%v messages=%d bytes=%d\n",
		rep.Instance, rep.Converged, rep.Time, rep.Messages, rep.Bytes)
	for _, n := range inst.Nodes {
		if best, ok := rep.Best[string(n)]; ok {
			fmt.Printf("  %s → %v (%s)\n", n, best.Path, best.Sig)
		} else {
			fmt.Printf("  %s → no route\n", n)
		}
	}
}
