// Command fsr is the FSR toolkit CLI: analyze policy configurations for
// safety, compile them to NDlog implementations, run protocol executions,
// and regenerate the paper's tables and figures. It is a thin client of the
// public fsr package: every subcommand builds an fsr.Session from its flags
// and drives the pipeline through it.
//
// Usage:
//
//	fsr analyze  [-config FILE | -builtin NAME | -spp NAME] [-solver B]
//	             [-trace-out FILE]                            safety analysis
//	fsr compile  [-config FILE | -builtin NAME | -spp NAME]   emit the NDlog program
//	fsr yices    [-config FILE | -builtin NAME | -spp NAME]   emit the solver encoding
//	fsr run      [-gadget NAME] [-runner B] [-horizon D] [-batch D]
//	             [-churn] [-churn-seed S] [-loss P]           execute a gadget under GPV
//	fsr campaign [-count N] [-seed S] [-kinds K,K | -churn] [-shard i/n]
//	             [-shrink] [-corpus FILE | -replay FILE] [-trace-out FILE]
//	             [-metrics-addr HOST:PORT] [-quiet]           differential campaign
//	fsr serve    [-addr HOST:PORT] [-check-oracle] [-pprof]
//	             [-slow-op D]                                 verification-as-a-service daemon
//	fsr top      [-addr HOST:PORT] [-interval D] [-once]      live view of a running endpoint
//	fsr experiment <table1|table2|fig3|fig4|fig5|fig6|vic> [flags]
//	fsr topo     [-depth N] [-seed S]                         print a generated AS hierarchy
//
// Built-in policies: gao-rexford-a, gao-rexford-b, gao-rexford-safe,
// hop-count, backup. Built-in gadgets: goodgadget, badgadget, disagree,
// fig3, fig3-fixed, plus the parameterized forms chain:N and
// internet:N[:SEED] which generate instances on the fly. Solver backends:
// native, native-scc, yices-text. Runner backends: sim, sim-ndlog, tcp.
// Scenario kinds: gadget-splice, gao-rexford, ibgp, gao-rexford-internet,
// lexical-product, divergent-fixture, partial-spec, churn-flap,
// churn-storm, churn-dispute (the last three inject seed-derived fault
// plans; -churn selects them all).
//
// Observability: -trace-out writes a Chrome trace-event JSON file (open in
// Perfetto) covering every pipeline span under the command; -metrics-addr
// binds an HTTP listener for the campaign's duration serving the
// process-global metrics registry at /metrics, Go profiling at
// /debug/pprof/, retained time series at /v1/timeseries, the flight
// recorder's recent-operations ring at /v1/flightrecorder, and a
// zero-dependency live dashboard at /dashboard. fsr serve mounts the same
// diagnosis endpoints, and -slow-op sets the latency threshold beyond
// which an operation's full span tree is retained. fsr top renders the
// ring and the live registry as a refreshing terminal view against either
// listener. serve and campaign log structured lines to stderr through one
// leveled logger shaped by -log-format (text|json) and -log-level
// (debug|info|warn|error); -quiet silences it entirely, including the
// campaign progress lines and final summary.
//
// Exit codes distinguish outcomes for campaign scripting: 0 means the
// command succeeded (and, where applicable, the analysis proved safety),
// 1 means the toolkit worked and found unsafety (an unsafe verdict, a
// campaign divergence/mismatch, or a replay that does not reproduce), and
// 2 means a tool error (bad flags, unreadable files, backend failures).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"fsr"
)

// errUnsafe marks "the analysis worked and found unsafety": the command
// already printed its report, and the process exits 1 (vs 2 for tool
// errors), so campaign scripts can tell a finding from a failure.
var errUnsafe = errors.New("analysis found unsafety")

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "compile":
		err = cmdCompile(os.Args[2:])
	case "yices":
		err = cmdYices(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "campaign":
		err = cmdCampaign(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "experiment":
		err = cmdExperiment(os.Args[2:])
	case "topo":
		err = cmdTopo(os.Args[2:])
	case "top":
		err = cmdTop(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "fsr: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	switch {
	case err == nil:
	case errors.Is(err, errUnsafe):
		os.Exit(1)
	default:
		fmt.Fprintln(os.Stderr, "fsr:", err)
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: fsr <command> [flags]

commands:
  analyze     safety analysis of a policy configuration
  compile     emit the generated NDlog implementation
  yices       emit the Yices-syntax solver encoding
  run         execute a gadget instance under GPV
  campaign    differential analysis-vs-simulation campaign over generated scenarios
  serve       HTTP verification daemon with delta re-verification
  experiment  regenerate a table or figure of the paper
  topo        print a generated AS hierarchy
  top         live terminal view of a running serve/campaign endpoint

exit codes: 0 success/safe, 1 finding (unsafe verdict, campaign
divergence/mismatch, or a replay that does not reproduce), 2 tool error
`)
}

// loadPolicy resolves -builtin/-config/-spp flags to an algebra.
func loadPolicy(builtin, configPath, sppName string) (fsr.Algebra, *fsr.SPPConversion, error) {
	if configPath != "" {
		data, err := os.ReadFile(configPath)
		if err != nil {
			return nil, nil, err
		}
		file, err := fsr.ParseConfig(string(data))
		if err != nil {
			return nil, nil, err
		}
		if len(file.Algebras) > 0 {
			return file.Algebras[0], nil, nil
		}
		if len(file.Instances) > 0 {
			conv, err := fsr.ConvertSPP(file.Instances[0])
			if err != nil {
				return nil, nil, err
			}
			return conv.Algebra, conv, nil
		}
		return nil, nil, fmt.Errorf("config %s defines no algebra or spp instance", configPath)
	}
	if sppName != "" {
		inst, err := fsr.Gadget(sppName)
		if err != nil {
			return nil, nil, err
		}
		conv, err := fsr.ConvertSPP(inst)
		if err != nil {
			return nil, nil, err
		}
		return conv.Algebra, conv, nil
	}
	alg, err := fsr.BuiltinAlgebra(builtin)
	if err != nil {
		return nil, nil, err
	}
	return alg, nil, nil
}

// withTraceOut attaches a fresh tracer to the context when path is
// non-empty, returning a flush func that writes the recorded spans as
// Chrome trace-event JSON (Perfetto-loadable) once the command is done.
func withTraceOut(ctx context.Context, path string) (context.Context, func() error) {
	if path == "" {
		return ctx, func() error { return nil }
	}
	tr := fsr.NewTracer()
	return fsr.WithTracer(ctx, tr), func() error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := tr.WriteTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "fsr: wrote %d span(s) to %s\n", tr.SpanCount(), path)
		return nil
	}
}

// startMetricsListener binds addr and serves the process-global metrics
// registry at /metrics, the diagnosis surface (/dashboard, /v1/timeseries,
// /v1/flightrecorder), and Go profiling at /debug/pprof/ for the life of
// the process. The flight recorder is switched on so campaign scenarios
// land in the ring. Returns the bound address (addr may use port 0).
func startMetricsListener(addr string) (string, error) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", fsr.MetricsHandler())
	fsr.MountPprof(mux)
	fsr.EnableFlightRecorder(true)
	fsr.MountDiagnostics(mux, 0, 0) // sampler runs for the process lifetime
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go http.Serve(ln, mux)
	return ln.Addr().String(), nil
}

// sessionFromFlags builds the Session every subcommand drives.
func sessionFromFlags(solverName, runnerName string, opts ...fsr.Option) (*fsr.Session, error) {
	solver, err := fsr.SolverBackendByName(solverName)
	if err != nil {
		return nil, err
	}
	runner, err := fsr.RunnerBackendByName(runnerName)
	if err != nil {
		return nil, err
	}
	opts = append([]fsr.Option{fsr.WithSolver(solver), fsr.WithRunner(runner)}, opts...)
	return fsr.NewSession(opts...), nil
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	builtin := fs.String("builtin", "", "built-in policy name")
	configPath := fs.String("config", "", "configuration file")
	sppName := fs.String("spp", "", "built-in SPP gadget name")
	solverName := fs.String("solver", "native", "solver backend: native|native-scc|yices-text")
	traceOut := fs.String("trace-out", "", "write a Chrome trace-event JSON file of the analysis spans")
	fs.Parse(args)
	alg, conv, err := loadPolicy(*builtin, *configPath, *sppName)
	if err != nil {
		return err
	}
	sess, err := sessionFromFlags(*solverName, "sim")
	if err != nil {
		return err
	}
	ctx, flush := withTraceOut(context.Background(), *traceOut)
	rep, err := sess.Analyze(ctx, alg)
	if ferr := flush(); ferr != nil && err == nil {
		err = ferr
	}
	if err != nil {
		return err
	}
	fmt.Println(rep)
	if conv != nil && rep.Verdict == fsr.Unsafe && len(rep.Steps) > 0 {
		suspects := conv.SuspectNodes(rep.Steps[0].Core)
		fmt.Printf("suspect nodes: %v\n", suspects)
	}
	if rep.Verdict == fsr.Unsafe {
		return errUnsafe
	}
	return nil
}

func cmdCampaign(args []string) error {
	fs := flag.NewFlagSet("campaign", flag.ExitOnError)
	count := fs.Int("count", 64, "total number of scenarios across all shards")
	seed := fs.Int64("seed", 1, "base seed; scenario i uses seed+i")
	kindsFlag := fs.String("kinds", "", "comma-separated scenario kinds (default: gadget-splice,gao-rexford,ibgp)")
	churn := fs.Bool("churn", false, "run the fault-injection workload (churn-flap, churn-storm, churn-dispute)")
	shardFlag := fs.String("shard", "", "contiguous shard of the seed range, as i/n (e.g. 0/4)")
	horizon := fs.Duration("horizon", 2*time.Second, "per-scenario simulation horizon (virtual time)")
	deadline := fs.Duration("deadline", 0, "overall wall-clock deadline for the campaign (0 = none)")
	noSim := fs.Bool("no-sim", false, "skip the differential simulation, classify on analysis alone")
	shrink := fs.Bool("shrink", false, "delta-debug divergences and mismatches to minimal instances")
	corpusPath := fs.String("corpus", "", "write interesting outcomes (shrunk where possible) to this JSON Lines file")
	replayPath := fs.String("replay", "", "replay a corpus file instead of generating scenarios")
	solverName := fs.String("solver", "native", "solver backend: native|native-scc|yices-text")
	runnerName := fs.String("runner", "sim", "runner backend: sim|sim-ndlog|tcp")
	verbose := fs.Bool("v", false, "print every scenario result, not just the summary")
	traceOut := fs.String("trace-out", "", "write a Chrome trace-event JSON file of the campaign spans")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /dashboard, /v1/timeseries, /v1/flightrecorder, and /debug/pprof/ on this address for the campaign's duration")
	logFormat, logLevel := logFlags(fs)
	quiet := fs.Bool("quiet", false, "suppress the periodic progress records and final summary on stderr")
	fs.Parse(args)
	logger, err := buildLogger(*logFormat, *logLevel, *quiet)
	if err != nil {
		return err
	}

	if *replayPath != "" {
		// -replay is a mode of its own: generation flags would be silently
		// ignored, so reject the combination instead of surprising scripts.
		var conflicting []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "count", "seed", "kinds", "churn", "shard", "horizon", "no-sim", "shrink", "corpus":
				conflicting = append(conflicting, "-"+f.Name)
			}
		})
		if len(conflicting) > 0 {
			return fmt.Errorf("-replay re-creates each entry's recorded conditions and cannot be combined with %s", strings.Join(conflicting, ", "))
		}
	}
	if *seed == 0 {
		return fmt.Errorf("-seed must be nonzero (0 is the library's use-the-default sentinel and would silently rebase to 1)")
	}
	if *count <= 0 {
		return fmt.Errorf("-count must be positive (0 is the library's use-the-default sentinel and would silently rebase to 64)")
	}
	sess, err := sessionFromFlags(*solverName, *runnerName)
	if err != nil {
		return err
	}
	ctx := context.Background()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}
	if *metricsAddr != "" {
		bound, err := startMetricsListener(*metricsAddr)
		if err != nil {
			return err
		}
		if logger != nil {
			logger.Info("fsr campaign: serving diagnostics", "addr", bound,
				"metrics", "http://"+bound+"/metrics", "dashboard", "http://"+bound+"/dashboard")
		}
	}
	ctx, flush := withTraceOut(ctx, *traceOut)

	if *replayPath != "" {
		f, err := os.Open(*replayPath)
		if err != nil {
			return err
		}
		defer f.Close()
		entries, err := fsr.ReadScenarioCorpus(f)
		if err != nil {
			return err
		}
		results, err := sess.Replay(ctx, entries)
		if ferr := flush(); ferr != nil && err == nil {
			err = ferr
		}
		if err != nil {
			return err
		}
		failed, errored := 0, 0
		for _, rr := range results {
			fmt.Println(rr)
			switch {
			case rr.Err != "":
				errored++
			case !rr.Reproduced:
				failed++
			}
		}
		msg := fmt.Sprintf("replayed %d corpus entr(ies), %d not reproduced", len(results), failed)
		if errored > 0 {
			msg += fmt.Sprintf(", %d errored", errored)
		}
		fmt.Println(msg)
		if failed > 0 {
			return errUnsafe
		}
		if errored > 0 {
			return fmt.Errorf("replay: %d entr(ies) failed to evaluate", errored)
		}
		return nil
	}

	spec := fsr.CampaignSpec{
		Count:    *count,
		BaseSeed: *seed,
		Horizon:  *horizon,
		NoSim:    *noSim,
		Shrink:   *shrink,
		Logger:   logger,
	}
	switch {
	case *churn && *kindsFlag != "":
		return fmt.Errorf("-churn is shorthand for -kinds churn-flap,churn-storm,churn-dispute; give one or the other")
	case *churn && *noSim:
		return fmt.Errorf("-churn scenarios classify by executing their fault plans; -no-sim would skip them")
	case *churn:
		spec.Kinds = fsr.ChurnScenarioKinds()
	case *kindsFlag != "":
		for _, name := range strings.Split(*kindsFlag, ",") {
			kind, err := fsr.ScenarioKindByName(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			spec.Kinds = append(spec.Kinds, kind)
		}
	}
	if *shardFlag != "" {
		i := strings.IndexByte(*shardFlag, '/')
		if i < 0 {
			return fmt.Errorf("-shard wants i/n, got %q", *shardFlag)
		}
		s, err1 := strconv.Atoi((*shardFlag)[:i])
		n, err2 := strconv.Atoi((*shardFlag)[i+1:])
		if err1 != nil || err2 != nil || n < 1 || s < 0 || s >= n {
			return fmt.Errorf("-shard wants i/n with 0 ≤ i < n, got %q", *shardFlag)
		}
		spec.Shard, spec.NumShards = s, n
	}
	rep, err := sess.Campaign(ctx, spec)
	if ferr := flush(); ferr != nil && err == nil {
		err = ferr
	}
	if err != nil {
		return err
	}
	if *verbose {
		for _, r := range rep.Results {
			fmt.Println(r)
		}
	}
	fmt.Println(rep)
	if *corpusPath != "" {
		entries, err := rep.CorpusEntries()
		if err != nil {
			return err
		}
		f, err := os.Create(*corpusPath)
		if err != nil {
			return err
		}
		if err := fsr.WriteScenarioCorpus(f, entries); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d corpus entr(ies) to %s\n", len(entries), *corpusPath)
	}
	// Exit-code contract: 1 is reserved for genuine analysis-vs-simulation
	// disagreements; scenarios that timed out or errored are infrastructure
	// failures and exit 2 (unless a real disagreement was also found, which
	// takes precedence as the more actionable signal).
	tally := rep.Tally()
	if tally[fsr.OutcomeDivergence]+tally[fsr.OutcomeMismatch] > 0 {
		return errUnsafe
	}
	if n := tally[fsr.OutcomeTimeout] + tally[fsr.OutcomeError]; n > 0 {
		return fmt.Errorf("campaign: %d scenario(s) timed out or errored", n)
	}
	return nil
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	checkOracle := fs.Bool("check-oracle", false,
		"differentially validate every delta verification against a full rebuild")
	pprofFlag := fs.Bool("pprof", false,
		"mount Go profiling at /debug/pprof/ (profiles expose heap contents; trusted listeners only)")
	slowOp := fs.Duration("slow-op", 0,
		"retain full span trees for operations slower than this (0 = the 100ms default)")
	logFormat, logLevel := logFlags(fs)
	quiet := fs.Bool("quiet", false, "suppress request and lifecycle logging")
	fs.Parse(args)
	logger, err := buildLogger(*logFormat, *logLevel, *quiet)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return fsr.Serve(ctx, fsr.ServeOptions{
		Addr:            *addr,
		CheckOracle:     *checkOracle,
		Pprof:           *pprofFlag,
		Logger:          logger,
		SlowOpThreshold: *slowOp,
	})
}

func cmdCompile(args []string) error {
	fs := flag.NewFlagSet("compile", flag.ExitOnError)
	builtin := fs.String("builtin", "", "built-in policy name")
	configPath := fs.String("config", "", "configuration file")
	sppName := fs.String("spp", "", "built-in SPP gadget name")
	fs.Parse(args)
	alg, _, err := loadPolicy(*builtin, *configPath, *sppName)
	if err != nil {
		return err
	}
	prog, err := fsr.NewSession().Compile(alg)
	if err != nil {
		return err
	}
	fmt.Print(prog)
	return nil
}

func cmdYices(args []string) error {
	fs := flag.NewFlagSet("yices", flag.ExitOnError)
	builtin := fs.String("builtin", "", "built-in policy name")
	configPath := fs.String("config", "", "configuration file")
	sppName := fs.String("spp", "", "built-in SPP gadget name")
	fs.Parse(args)
	alg, _, err := loadPolicy(*builtin, *configPath, *sppName)
	if err != nil {
		return err
	}
	text, err := fsr.NewSession().SolverEncoding(alg)
	if err != nil {
		return err
	}
	fmt.Print(text)
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	gadget := fs.String("gadget", "fig3-fixed", "gadget instance to execute")
	runnerName := fs.String("runner", "sim", "runner backend: sim|sim-ndlog|tcp")
	horizon := fs.Duration("horizon", 5*time.Second, "simulation horizon")
	batch := fs.Duration("batch", 20*time.Millisecond, "route propagation batch interval")
	churn := fs.Bool("churn", false, "inject a seed-derived fault plan (link flaps, a restart) into the run")
	churnSeed := fs.Int64("churn-seed", 1, "seed deriving the -churn fault plan")
	loss := fs.Float64("loss", 0, "probabilistic per-message link loss rate in [0, 1)")
	fs.Parse(args)
	inst, err := fsr.Gadget(*gadget)
	if err != nil {
		return err
	}
	opts := []fsr.Option{
		fsr.WithHorizon(*horizon),
		fsr.WithBatchWindow(*batch),
	}
	if *loss != 0 {
		opts = append(opts, fsr.WithLinkLoss(*loss))
	}
	if *churn {
		var nodes []string
		for _, n := range inst.Nodes {
			nodes = append(nodes, string(n))
		}
		var sessions [][2]string
		seen := map[[2]string]bool{}
		for _, l := range inst.Links {
			a, b := string(l.From), string(l.To)
			if seen[[2]string{a, b}] || seen[[2]string{b, a}] {
				continue
			}
			seen[[2]string{a, b}] = true
			sessions = append(sessions, [2]string{a, b})
		}
		plan := fsr.BuildFaultPlan(*churnSeed, nodes, sessions, fsr.FaultPlanSpec{Flaps: 2, Restarts: 1})
		opts = append(opts, fsr.WithFaultPlan(plan))
	}
	sess, err := sessionFromFlags("native", *runnerName, opts...)
	if err != nil {
		return err
	}
	rep, err := sess.Run(context.Background(), inst)
	if err != nil {
		return err
	}
	fmt.Printf("%s [%s]: converged=%v time=%v messages=%d bytes=%d\n",
		rep.Instance, rep.Runner, rep.Converged, rep.Time, rep.Messages, rep.Bytes)
	if rep.Faults > 0 || rep.Dropped > 0 {
		line := fmt.Sprintf("  faults=%d dropped=%d route-changes=%d", rep.Faults, rep.Dropped, rep.RouteChanges)
		if rep.Faults > 0 && rep.Converged {
			line += fmt.Sprintf(" reconverged=%v after last fault (at %v)", rep.Time-rep.LastFault, rep.LastFault)
		}
		fmt.Println(line)
	}
	for _, n := range inst.Nodes {
		if best, ok := rep.Best[string(n)]; ok {
			fmt.Printf("  %s → %v (%s)\n", n, best.Path, best.Sig)
		} else {
			fmt.Printf("  %s → no route\n", n)
		}
	}
	return nil
}

func cmdExperiment(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("experiment wants a name: table1 table2 fig3 fig4 fig5 fig6 vic")
	}
	name := args[0]
	fs := flag.NewFlagSet("experiment", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "generation seed")
	full := fs.Bool("full", false, "paper-scale parameters (slower)")
	deployment := fs.Bool("deployment", false, "also run deployment (real-socket) series where applicable")
	fs.Parse(args[1:])
	switch name {
	case "table1":
		fmt.Print(fsr.FormatTableI(fsr.TableI()))
		return nil
	case "table2":
		prog, err := fsr.NewSession().Compile(fsr.GaoRexfordA())
		if err != nil {
			return err
		}
		fmt.Println("Table II: algebra → NDlog mapping (generated for gao-rexford-a)")
		for _, fn := range []string{"f_pref", "f_concatSig", "f_import", "f_export"} {
			def, ok := prog.Func(fn)
			if !ok {
				return fmt.Errorf("generated program lacks %s", fn)
			}
			if def.Text != "" {
				fmt.Println(def.Text)
			}
		}
		return nil
	case "fig3":
		sess := fsr.NewSession()
		res, suspects, err := sess.AnalyzeSPP(context.Background(), fsr.Figure3IBGP())
		if err != nil {
			return err
		}
		fmt.Println(res)
		fmt.Printf("suspect nodes: %v\n", suspects)
		fixed, _, err := sess.AnalyzeSPP(context.Background(), fsr.Figure3IBGPFixed())
		if err != nil {
			return err
		}
		fmt.Println(fixed)
		return nil
	case "fig4":
		opts := fsr.Figure4Options{Seed: *seed, Deployment: *deployment}
		if !*full {
			opts.Depths = []int{3, 5, 7, 9, 11}
			opts.Batch = 100 * time.Millisecond
		}
		res, err := fsr.Figure4(opts)
		if err != nil {
			return err
		}
		fmt.Print(res)
		return nil
	case "fig5":
		opts := fsr.Figure5Options{Seed: *seed}
		if !*full {
			opts.ISP = fsr.ISPParams{Routers: 40, Links: 120, Reflectors: 24, Levels: 6}
		}
		res, err := fsr.Figure5(opts)
		if err != nil {
			return err
		}
		fmt.Print(res)
		return nil
	case "fig6":
		opts := fsr.Figure6Options{Seed: *seed}
		if !*full {
			opts.Domains = 4
			opts.DomainSize = 8
			opts.CrossLinks = 16
		}
		res, err := fsr.Figure6(opts)
		if err != nil {
			return err
		}
		fmt.Print(res)
		return nil
	case "vic":
		reps, err := fsr.SectionVIC(fsr.SectionVICOptions{Seed: *seed})
		if err != nil {
			return err
		}
		for _, r := range reps {
			fmt.Printf("%-12s sat=%-5v converged=%-5v time=%-10v msgs=%d\n",
				r.Name, r.Sat, r.Converged, r.Time, r.Messages)
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
}

func cmdTopo(args []string) error {
	fs := flag.NewFlagSet("topo", flag.ExitOnError)
	depth := fs.Int("depth", 5, "longest customer-provider chain")
	seed := fs.Int64("seed", 1, "generation seed")
	fs.Parse(args)
	g := fsr.GenerateHierarchy(*seed, fsr.HierarchyParams{Depth: *depth})
	fmt.Printf("AS hierarchy: %d nodes, %d edges, depth %d\n", len(g.Nodes), len(g.Edges), g.Depth)
	for _, e := range g.Edges {
		rel := "provider-of"
		if e.Rel == fsr.PeerPeer {
			rel = "peer"
		}
		fmt.Printf("  %s %s %s\n", e.A, rel, e.B)
	}
	return nil
}
