// fsr top: a refreshing terminal view of a running pipeline — the flight
// recorder's recent operations plus sparklines over the retained
// time-series window — against any live diagnosis endpoint (fsr serve, or
// fsr campaign -metrics-addr). A thin HTTP client: all state lives in the
// observed process.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"
)

// tsPoint / tsSeries / tsPayload mirror the /v1/timeseries JSON.
type tsPoint struct {
	T int64   `json:"t"`
	V float64 `json:"v"`
}

type tsSeries struct {
	Name   string    `json:"name"`
	Kind   string    `json:"kind"`
	Points []tsPoint `json:"points"`
}

type tsPayload struct {
	IntervalMS int64      `json:"interval_ms"`
	WindowMS   int64      `json:"window_ms"`
	Series     []tsSeries `json:"series"`
}

// flightOp / flightPayload mirror the /v1/flightrecorder JSON (span trees
// are left to the dashboard; top shows the op table).
type flightOp struct {
	Seq        uint64           `json:"seq"`
	Kind       string           `json:"kind"`
	Detail     string           `json:"detail"`
	Size       int              `json:"size"`
	DurationMS float64          `json:"duration_ms"`
	Verdict    string           `json:"verdict"`
	Counters   map[string]int64 `json:"counters"`
	Slow       bool             `json:"slow"`
}

type flightPayload struct {
	Enabled         bool       `json:"enabled"`
	Total           uint64     `json:"total"`
	SlowThresholdMS float64    `json:"slow_threshold_ms"`
	Ops             []flightOp `json:"ops"`
	SlowTotal       uint64     `json:"slow_total"`
}

func cmdTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080",
		"diagnosis endpoint of a running fsr serve or fsr campaign -metrics-addr listener")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	once := fs.Bool("once", false, "render one frame and exit (no screen control; for scripts and CI)")
	rows := fs.Int("rows", 15, "operations shown in the flight table")
	fs.Parse(args)

	client := &http.Client{Timeout: 5 * time.Second}
	base := "http://" + *addr
	if *once {
		frame, err := renderTop(client, base, *rows)
		if err != nil {
			return err
		}
		fmt.Print(frame)
		return nil
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for {
		frame, err := renderTop(client, base, *rows)
		if err != nil {
			frame = fmt.Sprintf("fsr top: %v (retrying every %v)\n", err, *interval)
		}
		// Clear and home, then draw the frame in one write to limit flicker.
		fmt.Print("\x1b[H\x1b[2J" + frame)
		select {
		case <-ctx.Done():
			fmt.Println()
			return nil
		case <-tick.C:
		}
	}
}

func fetchJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// renderTop fetches both payloads and renders one frame.
func renderTop(client *http.Client, base string, rows int) (string, error) {
	var ts tsPayload
	if err := fetchJSON(client, base+"/v1/timeseries", &ts); err != nil {
		return "", err
	}
	var fl flightPayload
	flErr := fetchJSON(client, base+"/v1/flightrecorder", &fl)

	var b strings.Builder
	fmt.Fprintf(&b, "fsr top — %s — %s  (window %v, sampled every %v)\n\n",
		base, time.Now().Format("15:04:05"),
		time.Duration(ts.WindowMS)*time.Millisecond,
		time.Duration(ts.IntervalMS)*time.Millisecond)

	renderSeries(&b, ts.Series)

	if flErr != nil {
		fmt.Fprintf(&b, "\nflight recorder: unavailable (%v)\n", flErr)
		return b.String(), nil
	}
	fmt.Fprintf(&b, "\nrecent operations — %d recorded, %d slow (≥%.0fms)",
		fl.Total, fl.SlowTotal, fl.SlowThresholdMS)
	if !fl.Enabled {
		b.WriteString("  [recorder disabled]")
	}
	b.WriteString("\n")
	if len(fl.Ops) == 0 {
		b.WriteString("  (none yet — drive some load)\n")
		return b.String(), nil
	}
	fmt.Fprintf(&b, "  %6s  %-12s %-24s %7s %9s  %-12s %s\n",
		"#", "kind", "detail", "size", "ms", "verdict", "counters")
	if rows > len(fl.Ops) {
		rows = len(fl.Ops)
	}
	for _, op := range fl.Ops[:rows] {
		mark := " "
		if op.Slow {
			mark = "!"
		}
		detail := op.Detail
		if len(detail) > 24 {
			detail = detail[:21] + "..."
		}
		keys := make([]string, 0, len(op.Counters))
		for k := range op.Counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		ctr := make([]string, 0, len(keys))
		for _, k := range keys {
			ctr = append(ctr, fmt.Sprintf("%s=%d", k, op.Counters[k]))
		}
		fmt.Fprintf(&b, "%s %6d  %-12s %-24s %7d %9.2f  %-12s %s\n",
			mark, op.Seq, op.Kind, detail, op.Size, op.DurationMS, op.Verdict, strings.Join(ctr, " "))
	}
	return b.String(), nil
}

// sparkBars renders a unicode sparkline over the points' values.
var sparkBars = []rune("▁▂▃▄▅▆▇█")

func sparkline(pts []tsPoint, width int) string {
	if len(pts) == 0 {
		return ""
	}
	if len(pts) > width {
		pts = pts[len(pts)-width:]
	}
	lo, hi := pts[0].V, pts[0].V
	for _, p := range pts {
		if p.V < lo {
			lo = p.V
		}
		if p.V > hi {
			hi = p.V
		}
	}
	var b strings.Builder
	for _, p := range pts {
		i := 0
		if hi > lo {
			i = int((p.V - lo) / (hi - lo) * float64(len(sparkBars)-1))
		}
		b.WriteRune(sparkBars[i])
	}
	return b.String()
}

// fmtVal renders a metric value compactly (SI suffixes above 1000).
func fmtVal(v float64) string {
	a := v
	if a < 0 {
		a = -a
	}
	switch {
	case a >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case a >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case a >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	case a >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// renderSeries prints every retained series with its last value and a
// sparkline, sorted by name — the whole live registry at a glance.
func renderSeries(b *strings.Builder, series []tsSeries) {
	if len(series) == 0 {
		b.WriteString("no series retained yet — drive some load\n")
		return
	}
	nameW := 0
	for _, s := range series {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	if nameW > 64 {
		nameW = 64
	}
	for _, s := range series {
		last := 0.0
		if n := len(s.Points); n > 0 {
			last = s.Points[n-1].V
		}
		name := s.Name
		if len(name) > nameW {
			name = name[:nameW-3] + "..."
		}
		fmt.Fprintf(b, "%-*s %10s  %s\n", nameW, name, fmtVal(last), sparkline(s.Points, 32))
	}
}
