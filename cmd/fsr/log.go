package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
)

// logFlags registers the shared logging flags on a subcommand's flag set.
// Every subcommand that logs (serve, campaign) gets the same pair, so one
// muscle memory covers the whole CLI.
func logFlags(fs *flag.FlagSet) (format, level *string) {
	format = fs.String("log-format", "text", "log output format: text|json")
	level = fs.String("log-level", "info", "minimum log level: debug|info|warn|error")
	return format, level
}

// buildLogger constructs the stderr logger the -log-format/-log-level
// flags describe, or nil when quiet — the spec and server layers treat a
// nil logger as silence, so -quiet stays one switch for everything.
func buildLogger(format, level string, quiet bool) (*slog.Logger, error) {
	if quiet {
		return nil, nil
	}
	var lvl slog.Level
	switch level {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("-log-level wants debug|info|warn|error, got %q", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("-log-format wants text|json, got %q", format)
	}
}
