package fsr

import (
	"strings"
	"testing"
)

// TestFigure1Pipeline exercises the facade end to end: one policy in, a
// safety verdict and an implementation out (the paper's Figure 1).
func TestFigure1Pipeline(t *testing.T) {
	rep, err := AnalyzeSafety(GaoRexfordSafe())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Safe {
		t.Fatalf("composed policy should be safe: %s", rep)
	}
	prog, err := CompileNDlog(GaoRexfordA())
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) == 0 {
		t.Fatalf("generated program has no rules")
	}
	yices, err := YicesEncoding(GaoRexfordA())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(yices, "(assert (< C P))") {
		t.Errorf("Yices encoding missing preference constraint:\n%s", yices)
	}
}

// TestFacadeSPPWorkflow covers the operator path: gadget in, suspects out.
func TestFacadeSPPWorkflow(t *testing.T) {
	res, suspects, err := AnalyzeSPP(Figure3IBGP())
	if err != nil {
		t.Fatal(err)
	}
	if res.Sat {
		t.Fatalf("Figure 3 gadget should be unsat")
	}
	if len(suspects) == 0 {
		t.Fatalf("suspects should name the reflectors")
	}
	fixed, _, err := AnalyzeSPP(Figure3IBGPFixed())
	if err != nil {
		t.Fatal(err)
	}
	if !fixed.Sat {
		t.Fatalf("fixed instance should be sat")
	}
}

// TestFacadeGadgets: the gadget library is exposed.
func TestFacadeGadgets(t *testing.T) {
	gs := Gadgets()
	if len(gs) != 3 {
		t.Fatalf("want 3 gadgets")
	}
	names := map[string]bool{}
	for _, g := range gs {
		names[g.Name] = true
	}
	for _, want := range []string{"goodgadget", "badgadget", "disagree"} {
		if !names[want] {
			t.Errorf("missing gadget %s", want)
		}
	}
}

// TestFacadeConfig: the configuration language is reachable from the
// facade.
func TestFacadeConfig(t *testing.T) {
	f, err := ParseConfig("spp s\n  session a b 1\n  rank a a,rx\n  rank b b,ry\nend\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Instances) != 1 {
		t.Fatalf("want 1 instance")
	}
	if _, err := ConvertSPP(f.Instances[0]); err != nil {
		t.Fatalf("ConvertSPP: %v", err)
	}
}

// TestFacadeComposition: Compose builds analyzable lexical products.
func TestFacadeComposition(t *testing.T) {
	rep, err := AnalyzeSafety(Compose(GaoRexfordB(), HopCount()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Safe {
		t.Fatalf("guideline B ⊗ hop count should be safe: %s", rep)
	}
}
