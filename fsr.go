// Package fsr is the public facade of the Formally Safe Routing toolkit, a
// from-scratch reproduction of "FSR: Formal Analysis and Implementation
// Toolkit for Safe Inter-Domain Routing" (Wang et al., SIGCOMM 2011).
//
// FSR takes a routing-policy configuration — a high-level guideline such as
// Gao-Rexford, or a concrete instance such as an iBGP configuration — in a
// single algebraic representation, and derives from it both:
//
//   - a safety analysis: the policy is translated to integer constraints
//     and checked for strict monotonicity with an SMT solver; sat proves
//     convergence on every topology (Sobrinho's theorem), unsat yields a
//     minimal unsatisfiable core pinpointing the offending policy
//     statements; and
//   - a distributed implementation: the same algebra is compiled to an
//     NDlog program (the generalized path-vector protocol plus the four
//     policy functions) executable in simulation or over real sockets.
//
// The heavy lifting lives in the internal packages (algebra, smt, analysis,
// spp, ndlog, engine, simnet, pathvector, hlp, topology, experiments); this
// package re-exports the entry points a downstream user needs, so the
// examples read like client code.
package fsr

import (
	"fsr/internal/algebra"
	"fsr/internal/analysis"
	"fsr/internal/config"
	"fsr/internal/ndlog"
	"fsr/internal/spp"
)

// Re-exported core types. See the internal packages for full documentation.
type (
	// Algebra is a routing-policy configuration ⟨Σ, ⪯, L, ⊕I, ⊕P, ⊕E⟩.
	Algebra = algebra.Algebra
	// AnalysisResult is the outcome of one monotonicity check.
	AnalysisResult = analysis.Result
	// SafetyReport is the overall safety verdict with its reasoning chain.
	SafetyReport = analysis.Report
	// SPPInstance is a Stable Paths Problem instance.
	SPPInstance = spp.Instance
	// NDlogProgram is a generated or parsed NDlog program.
	NDlogProgram = ndlog.Program
)

// Verdicts.
const (
	Safe   = analysis.Safe
	Unsafe = analysis.Unsafe
)

// GaoRexfordA returns the paper's running example guideline (§II-B).
func GaoRexfordA() Algebra { return algebra.GaoRexfordA() }

// GaoRexfordB returns Gao-Rexford guideline B.
func GaoRexfordB() Algebra { return algebra.GaoRexfordB() }

// HopCount returns the shortest hop-count algebra (§II-A).
func HopCount() Algebra { return algebra.HopCount{} }

// GaoRexfordSafe returns the provably safe composition of guideline A with
// shortest hop-count as tie-breaker (§IV-C).
func GaoRexfordSafe() Algebra { return algebra.GaoRexfordWithHopCount() }

// Compose returns the lexical product a ⊗ b (§II-A).
func Compose(a, b Algebra) Algebra { return algebra.NewProduct(a, b) }

// AnalyzeSafety decides safety for a policy configuration, applying the
// lexical-product composition rule (§IV).
func AnalyzeSafety(a Algebra) (SafetyReport, error) { return analysis.AnalyzeSafety(a) }

// CheckStrictMonotonicity runs the single strict-monotonicity check,
// returning the solver-level result with model or minimal core.
func CheckStrictMonotonicity(a Algebra) (AnalysisResult, error) {
	return analysis.Check(a, analysis.StrictMonotonicity)
}

// CheckMonotonicity runs the plain monotonicity check.
func CheckMonotonicity(a Algebra) (AnalysisResult, error) {
	return analysis.Check(a, analysis.Monotonicity)
}

// YicesEncoding renders the §IV-C style solver input for a policy.
func YicesEncoding(a Algebra) (string, error) {
	return analysis.Yices(a, analysis.StrictMonotonicity)
}

// CompileNDlog translates a policy configuration to its NDlog
// implementation: the GPV program plus the generated policy functions
// (§V, Table II).
func CompileNDlog(a Algebra) (*NDlogProgram, error) { return ndlog.Generate(a) }

// Figure3IBGP returns the paper's six-node iBGP gadget (Figure 3).
func Figure3IBGP() *SPPInstance { return spp.Figure3IBGP() }

// Figure3IBGPFixed returns the corrected version of the Figure 3 gadget.
func Figure3IBGPFixed() *SPPInstance { return spp.Figure3IBGPFixed() }

// Gadgets returns the classic eBGP gadgets of §VI-C.
func Gadgets() []*SPPInstance {
	return []*SPPInstance{spp.GoodGadget(), spp.BadGadget(), spp.Disagree()}
}

// ConvertSPP translates an SPP instance to its algebraic representation
// (§III-B), returning the conversion with its pinpointing maps.
func ConvertSPP(in *SPPInstance) (*spp.Conversion, error) { return in.ToAlgebra() }

// AnalyzeSPP converts and checks an SPP instance in one step, returning the
// analysis result and the suspect nodes implicated by the core (empty when
// sat).
func AnalyzeSPP(in *SPPInstance) (AnalysisResult, []spp.Node, error) {
	conv, err := in.ToAlgebra()
	if err != nil {
		return AnalysisResult{}, nil, err
	}
	res, err := analysis.Check(conv.Algebra, analysis.StrictMonotonicity)
	if err != nil {
		return AnalysisResult{}, nil, err
	}
	return res, conv.SuspectNodes(res.Core), nil
}

// ParseConfig reads the FSR configuration language (algebras, SPP
// instances, AS relationship graphs).
func ParseConfig(src string) (*config.File, error) { return config.Parse(src) }
