// Package fsr is the public facade of the Formally Safe Routing toolkit, a
// from-scratch reproduction of "FSR: Formal Analysis and Implementation
// Toolkit for Safe Inter-Domain Routing" (Wang et al., SIGCOMM 2011).
//
// FSR takes a routing-policy configuration — a high-level guideline such as
// Gao-Rexford, or a concrete instance such as an iBGP configuration — in a
// single algebraic representation, and derives from it both:
//
//   - a safety analysis: the policy is translated to integer constraints
//     and checked for strict monotonicity with an SMT solver; sat proves
//     convergence on every topology (Sobrinho's theorem), unsat yields a
//     minimal unsatisfiable core pinpointing the offending policy
//     statements; and
//   - a distributed implementation: the same algebra is compiled to an
//     NDlog program (the generalized path-vector protocol plus the four
//     policy functions) executable in simulation or over real sockets.
//
// # Sessions
//
// The entry point is a [Session], which owns the full pipeline — policy →
// constraints → solver verdict → NDlog program → simulated or socket
// deployment — and is configured once with functional options:
//
//	sess := fsr.NewSession(
//		fsr.WithSolver(fsr.YicesTextSolver()),
//		fsr.WithRunner(fsr.DeploymentRunner()),
//		fsr.WithSeed(42),
//		fsr.WithBatchWindow(50*time.Millisecond),
//	)
//	rep, err := sess.Analyze(ctx, fsr.GaoRexfordSafe())
//	run, err := sess.Run(ctx, fsr.Figure3IBGPFixed())
//
// Every long-running stage is context-aware: cancelling the context aborts
// a solve mid-minimization or a protocol execution mid-run. Backends are
// chosen by option, never by importing a different package: [WithSolver]
// selects between the native difference-logic engine and the Yices
// text-encoding path, and [WithRunner] selects between discrete-event
// simulation (compiled or NDlog-interpreted GPV) and real-TCP deployment.
// [Session.AnalyzeAll] fans a batch of policies out over a worker pool
// sized by [WithParallelism].
//
// The zero-configuration path still works: fsr.NewSession() uses the native
// solver, the simulation runner, seed 1, and unbatched sends. The package-
// level free functions of earlier versions remain as thin deprecated
// wrappers over a default session (see compat.go).
//
// The heavy lifting lives in the internal packages (algebra, smt, analysis,
// spp, ndlog, engine, simnet, pathvector, hlp, topology, experiments); this
// package re-exports the entry points a downstream user needs, so the
// commands and examples read like client code and import nothing internal.
package fsr

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"fsr/internal/algebra"
	"fsr/internal/analysis"
	"fsr/internal/config"
	"fsr/internal/engine"
	"fsr/internal/ndlog"
	"fsr/internal/scenario"
	"fsr/internal/smt"
	"fsr/internal/spp"
	"fsr/internal/topology"
	"fsr/internal/trace"
)

// Re-exported core types. See the internal packages for full documentation.
type (
	// Algebra is a routing-policy configuration ⟨Σ, ⪯, L, ⊕I, ⊕P, ⊕E⟩.
	Algebra = algebra.Algebra
	// AnalysisResult is the outcome of one monotonicity check.
	AnalysisResult = analysis.Result
	// SafetyReport is the overall safety verdict with its reasoning chain.
	SafetyReport = analysis.Report
	// SPPInstance is a Stable Paths Problem instance.
	SPPInstance = spp.Instance
	// SPPConversion is an SPP instance converted to its algebra, with the
	// pinpointing maps that translate unsat cores back to nodes.
	SPPConversion = spp.Conversion
	// SPPNode names a node of an SPP instance.
	SPPNode = spp.Node
	// SPPPath is one permitted path of an SPP instance.
	SPPPath = spp.Path
	// DeltaVerifier is a resident incremental safety verifier over one SPP
	// instance: ranking, session, and topology edits re-verify by patching
	// the standing constraint system instead of rebuilding it.
	DeltaVerifier = spp.DeltaVerifier
	// DeltaStats counts how a DeltaVerifier's checks were discharged
	// (cache hits, delta solves, full rebuilds).
	DeltaStats = smt.DeltaStats
	// NDlogProgram is a generated or parsed NDlog program.
	NDlogProgram = ndlog.Program
	// RunReport is the uniform outcome of a protocol execution on any
	// runner backend.
	RunReport = engine.RunReport
	// NodeRoute is one node's selected route in a RunReport.
	NodeRoute = engine.NodeRoute
	// ConfigFile is a parsed FSR configuration file.
	ConfigFile = config.File
	// TraceCollector accumulates per-node traffic metrics during a run.
	TraceCollector = trace.Collector
)

// Verdicts.
const (
	Safe   = analysis.Safe
	Unsafe = analysis.Unsafe
)

// GaoRexfordA returns the paper's running example guideline (§II-B).
func GaoRexfordA() Algebra { return algebra.GaoRexfordA() }

// GaoRexfordB returns Gao-Rexford guideline B.
func GaoRexfordB() Algebra { return algebra.GaoRexfordB() }

// HopCount returns the shortest hop-count algebra (§II-A).
func HopCount() Algebra { return algebra.HopCount{} }

// GaoRexfordSafe returns the provably safe composition of guideline A with
// shortest hop-count as tie-breaker (§IV-C).
func GaoRexfordSafe() Algebra { return algebra.GaoRexfordWithHopCount() }

// BackupRouting returns the backup-routing algebra with the given number of
// backup levels (Table I's topology-specific guideline).
func BackupRouting(levels int) Algebra { return algebra.BackupRouting(levels) }

// Compose returns the lexical product a ⊗ b (§II-A).
func Compose(a, b Algebra) Algebra { return algebra.NewProduct(a, b) }

// builtinAlgebras is the single table behind BuiltinAlgebra and
// BuiltinAlgebraNames; the first entry is the default for the empty name.
var builtinAlgebras = []struct {
	name string
	ctor func() Algebra
}{
	{"gao-rexford-a", GaoRexfordA},
	{"gao-rexford-b", GaoRexfordB},
	{"gao-rexford-safe", GaoRexfordSafe},
	{"hop-count", HopCount},
	{"backup", func() Algebra { return BackupRouting(2) }},
}

// BuiltinAlgebra resolves a built-in policy configuration by name:
// gao-rexford-a, gao-rexford-b, gao-rexford-safe, hop-count, backup. The
// empty name resolves to gao-rexford-a.
func BuiltinAlgebra(name string) (Algebra, error) {
	if name == "" {
		return builtinAlgebras[0].ctor(), nil
	}
	for _, b := range builtinAlgebras {
		if b.name == name {
			return b.ctor(), nil
		}
	}
	return nil, errUnknown("builtin policy", name, BuiltinAlgebraNames())
}

// BuiltinAlgebraNames lists the names BuiltinAlgebra accepts.
func BuiltinAlgebraNames() []string {
	out := make([]string, len(builtinAlgebras))
	for i, b := range builtinAlgebras {
		out[i] = b.name
	}
	return out
}

// Figure3IBGP returns the paper's six-node iBGP gadget (Figure 3).
func Figure3IBGP() *SPPInstance { return spp.Figure3IBGP() }

// Figure3IBGPFixed returns the corrected version of the Figure 3 gadget.
func Figure3IBGPFixed() *SPPInstance { return spp.Figure3IBGPFixed() }

// Gadgets returns the classic eBGP gadgets of §VI-C.
func Gadgets() []*SPPInstance {
	return []*SPPInstance{spp.GoodGadget(), spp.BadGadget(), spp.Disagree()}
}

// builtinGadgets is the single table behind Gadget and GadgetNames.
var builtinGadgets = []struct {
	name string
	ctor func() *SPPInstance
}{
	{"goodgadget", spp.GoodGadget},
	{"badgadget", spp.BadGadget},
	{"disagree", spp.Disagree},
	{"fig3", spp.Figure3IBGP},
	{"fig3-fixed", spp.Figure3IBGPFixed},
}

// Gadget resolves a built-in SPP gadget by name: goodgadget, badgadget,
// disagree, fig3, fig3-fixed. Parameterized forms generate instances on
// the fly: "chain:N" is [ChainGadget](N), and "internet:N" (or
// "internet:N:SEED", default seed 1) is a power-law Gao-Rexford topology
// of N ASes via [GenerateInternetSPP] — how the verification daemon is
// driven at internet scale without shipping a multi-megabyte instance in
// the request body.
func Gadget(name string) (*SPPInstance, error) {
	for _, g := range builtinGadgets {
		if g.name == name {
			return g.ctor(), nil
		}
	}
	if in, ok, err := paramGadget(name); ok {
		return in, err
	}
	return nil, errUnknown("gadget", name, GadgetNames())
}

// paramGadget parses the parameterized gadget forms. ok=false means the
// name is not parameterized at all and the caller should report its own
// unknown-name error.
func paramGadget(name string) (*SPPInstance, bool, error) {
	kind, rest, found := strings.Cut(name, ":")
	if !found {
		return nil, false, nil
	}
	switch kind {
	case "chain":
		n, err := strconv.Atoi(rest)
		if err != nil || n < 2 {
			return nil, true, fmt.Errorf("fsr: gadget %q: want chain:N with N ≥ 2", name)
		}
		return ChainGadget(n), true, nil
	case "internet":
		sizeStr, seedStr, hasSeed := strings.Cut(rest, ":")
		n, err := strconv.Atoi(sizeStr)
		if err != nil || n < 2 {
			return nil, true, fmt.Errorf("fsr: gadget %q: want internet:N[:SEED] with N ≥ 2", name)
		}
		seed := int64(1)
		if hasSeed {
			s, err := strconv.ParseInt(seedStr, 10, 64)
			if err != nil {
				return nil, true, fmt.Errorf("fsr: gadget %q: bad seed %q", name, seedStr)
			}
			seed = s
		}
		return GenerateInternetSPP(name, n, seed), true, nil
	}
	return nil, false, nil
}

// GenerateInternetSPP generates a power-law AS topology of n nodes
// (deterministic in seed) and derives its single-destination Gao-Rexford
// SPP instance — the standing internet-scale workload of the scaling
// benchmarks and the "internet:N[:SEED]" gadget form.
func GenerateInternetSPP(name string, n int, seed int64) *SPPInstance {
	g := topology.GenerateInternet(seed, topology.InternetParams{N: n})
	return scenario.InternetSPP(name, g, 3)
}

// GadgetNames lists the names Gadget accepts.
func GadgetNames() []string {
	out := make([]string, len(builtinGadgets))
	for i, g := range builtinGadgets {
		out[i] = g.name
	}
	return out
}

// ChainGadget returns a satisfiable chain instance of n nodes, used for
// solver scaling studies.
func ChainGadget(n int) *SPPInstance { return spp.ChainGadget(n) }

// ConvertSPP translates an SPP instance to its algebraic representation
// (§III-B), returning the conversion with its pinpointing maps.
func ConvertSPP(in *SPPInstance) (*SPPConversion, error) { return in.ToAlgebra() }

// ParseConfig reads the FSR configuration language (algebras, SPP
// instances, AS relationship graphs).
func ParseConfig(src string) (*ConfigFile, error) { return config.Parse(src) }

// NewTraceCollector returns a traffic collector with the given bandwidth-
// series bucket width, for use with WithTrace.
func NewTraceCollector(bucketWidth time.Duration) *TraceCollector {
	return trace.NewCollector(bucketWidth)
}

func errUnknown(kind, name string, known []string) error {
	return fmt.Errorf("fsr: unknown %s %q (have: %s)", kind, name, strings.Join(known, ", "))
}
