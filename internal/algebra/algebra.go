// Package algebra implements the routing algebra of Sobrinho and
// Griffin/Sobrinho ("metarouting") as used by the FSR toolkit, together with
// the FSR extensions from the paper: the split of the concatenation operator
// into separate import (⊕I), route-generation (⊕P) and export (⊕E) operators,
// and the lexical product used for policy composition.
//
// An abstract routing algebra is a tuple ⟨Σ, ⪯, L, ⊕⟩:
//
//   - Σ (path signatures) describes attributes of paths so routes can be
//     ranked. A distinguished element φ (Prohibited) marks forbidden paths.
//   - ⪯ (preference) is the route-selection order: a ⪯ b means a is at least
//     as preferred as b. Every signature is strictly preferred to φ.
//   - L (link labels) describes attributes of directed links.
//   - ⊕ (concatenation) computes the signature of the path uv∘P from the
//     label of uv and the signature of P.
//
// The FSR extension replaces ⊕ with three operators so that a distributed
// implementation knows *where* filtering happens: l ⊕E s decides whether the
// route is exported on link uv, l ⊕I s decides whether it is imported over
// link vu, and l ⊕P s generates the new signature. The combined operator used
// for safety analysis is recovered by Combined.
package algebra

import (
	"fmt"
	"sort"
	"strings"
)

// Sig is a path signature: an element of Σ. Implementations are comparable
// values so signatures can be used as map keys. The distinguished signature
// Prohibited (φ) marks paths excluded from consideration.
type Sig interface {
	// String renders the signature the way the paper writes it (C, P, R, 3,
	// r_aber2, (C,2), φ...).
	String() string
	sig()
}

// Label is a link label: an element of L. Implementations are comparable.
type Label interface {
	String() string
	label()
}

// Symbol is a symbolic signature such as C, P, R or r_aber2.
type Symbol string

func (s Symbol) String() string { return string(s) }
func (Symbol) sig()             {}

// Num is a numeric signature, e.g. a hop count or an IGP path cost.
type Num int

func (n Num) String() string { return fmt.Sprintf("%d", int(n)) }
func (Num) sig()             {}

// SigPair is a signature of a lexical-product algebra A ⊗ B.
type SigPair struct {
	A, B Sig
}

func (p SigPair) String() string { return "(" + p.A.String() + "," + p.B.String() + ")" }
func (SigPair) sig()             {}

// prohibited is the singleton type of the φ signature.
type prohibited struct{}

func (prohibited) String() string { return "φ" }
func (prohibited) sig()           {}

// Prohibited is φ, the signature of prohibited paths. Any signature is
// strictly preferred to Prohibited, and Concat results of Prohibited are
// Prohibited (filtering is absorbing).
var Prohibited Sig = prohibited{}

// IsProhibited reports whether s is φ. A nil signature is treated as φ so
// that forgetting to special-case an absent table entry fails safe.
func IsProhibited(s Sig) bool {
	if s == nil {
		return true
	}
	_, ok := s.(prohibited)
	return ok
}

// LSym is a symbolic link label such as c, p, r or l_ab.
type LSym string

func (l LSym) String() string { return string(l) }
func (LSym) label()           {}

// LNum is a numeric link label, e.g. a link cost (1 for hop count).
type LNum int

func (l LNum) String() string { return fmt.Sprintf("%d", int(l)) }
func (LNum) label()           {}

// LabelPair is a label of a lexical-product algebra A ⊗ B.
type LabelPair struct {
	A, B Label
}

func (p LabelPair) String() string { return "(" + p.A.String() + "," + p.B.String() + ")" }
func (LabelPair) label()           {}

// Algebra is the FSR extended routing algebra ⟨Σ, ⪯, L, ⊕I, ⊕P, ⊕E⟩.
//
// Implementations fall into two families:
//
//   - finite (tabular) algebras, which enumerate Σ and L and define the
//     operators by table — Gao-Rexford, SPP instances, any policy written in
//     the FSR configuration language;
//   - closed-form algebras with an infinite Σ (such as shortest hop-count),
//     which additionally implement ClosedForm so the safety analysis can
//     reason about them symbolically.
type Algebra interface {
	// Name identifies the policy configuration (used in reports and
	// generated NDlog program names).
	Name() string

	// Sigs enumerates the finite signature universe excluding φ, in a stable
	// order. It returns nil for algebras with an infinite Σ (which must then
	// implement ClosedForm to be analyzable).
	Sigs() []Sig

	// Labels enumerates the label universe in a stable order.
	Labels() []Label

	// Prefer reports whether a ⪯ b is *asserted by the policy*: a is known
	// to be at least as preferred as b. For partially-specified policies
	// (e.g. SPP instances, where only same-node rankings exist) Prefer is a
	// partial relation: Prefer(a,b) and Prefer(b,a) may both be false.
	// Equal preference is expressed by asserting both directions.
	// φ handling: Prefer(s, φ) is true and Prefer(φ, s) is false for s ≠ φ.
	Prefer(a, b Sig) bool

	// Concat is the route-generation operator ⊕P: the signature of path
	// uv∘P given the label of uv and the signature of P. It returns
	// Prohibited when the policy assigns φ (e.g. an SPP non-permitted path).
	Concat(l Label, s Sig) Sig

	// Import reports l ⊕I s = I: node u accepts a route with signature s
	// arriving over the link vu labelled l.
	Import(l Label, s Sig) bool

	// Export reports l ⊕E s = E: node u announces a route with signature s
	// over the link uv labelled l.
	Export(l Label, s Sig) bool

	// Reverse returns l̄, the label of the reverse direction of a link
	// labelled l (for Gao-Rexford: c̄ = p, p̄ = c, r̄ = r). The combined
	// operator needs it because the export filter for path vu∘P runs at u
	// over label l̄ while the import filter runs at v over label l.
	Reverse(l Label) Label

	// Origin returns the signature of a one-hop path over a link labelled l
	// (the origination set of the algebra): 1 for hop count, C/P/R for
	// Gao-Rexford depending on the link class.
	Origin(l Label) Sig
}

// ClosedForm is implemented by algebras whose signature universe is infinite
// but whose concatenation is linear in the numeric signature:
// Concat(l, s) = s + Delta(l). The safety analysis uses this to emit the
// quantified constraint  forall s. s ≺ s + Delta(l)  instead of enumerating Σ.
type ClosedForm interface {
	// ConcatDelta returns the additive constant d with Concat(l, s) = s + d
	// for every numeric signature s, and ok = true; ok = false means the
	// label's concatenation is not linear.
	ConcatDelta(l Label) (d int, ok bool)
}

// Combined evaluates the combined concatenation operator ⊕ used for safety
// analysis (paper §III-A): for a path vu∘P arriving at v over the link vu
// labelled l,
//
//	l ⊕ s = φ   if  l̄ ⊕E s = F  or  l ⊕I s = F
//	l ⊕ s = l ⊕P s   otherwise
//
// where l̄ is the reverse label (the exporting node u sees the link uv).
func Combined(a Algebra, l Label, s Sig) Sig {
	if IsProhibited(s) {
		return Prohibited
	}
	if !a.Export(a.Reverse(l), s) {
		return Prohibited
	}
	if !a.Import(l, s) {
		return Prohibited
	}
	return a.Concat(l, s)
}

// Best returns the most preferred signature among candidates according to
// the algebra's preference relation, skipping φ. When the relation does not
// order a pair, the earlier candidate wins (deterministic tie-break, matching
// the paper's observation that unrelated routes never compete in practice).
// It returns Prohibited if no candidate is permitted.
func Best(a Algebra, candidates []Sig) Sig {
	best := Prohibited
	for _, c := range candidates {
		if IsProhibited(c) {
			continue
		}
		if IsProhibited(best) || strictlyPreferred(a, c, best) {
			best = c
		}
	}
	return best
}

// strictlyPreferred reports a ≺ b: a ⪯ b asserted and b ⪯ a not asserted.
func strictlyPreferred(a Algebra, x, y Sig) bool {
	return a.Prefer(x, y) && !a.Prefer(y, x)
}

// PrefPair is one asserted preference statement of a policy, used by the
// safety analysis to generate constraints with provenance. The paper's
// concrete encodings (§IV-C) translate strict preferences (C ≺ P) to <,
// equalities (P = R) to =, and plain ⪯ statements to ≤.
type PrefPair struct {
	A, B   Sig
	Equal  bool // both directions asserted: A and B equally preferred
	Strict bool // A strictly preferred to B
}

// String renders the statement the way the paper writes it (C ≺ P, P = R).
func (p PrefPair) String() string {
	switch {
	case p.Equal:
		return p.A.String() + " = " + p.B.String()
	case p.Strict:
		return p.A.String() + " ≺ " + p.B.String()
	default:
		return p.A.String() + " ⪯ " + p.B.String()
	}
}

// PrefEnumerator is implemented by algebras that track which preference
// statements were *asserted* by the policy author, as opposed to the closure
// the Prefer relation answers. The distinction matters for constraint
// counting: an SPP ranking r1, r2, r3 asserts the two adjacent pairs
// r1 ≺ r2 and r2 ≺ r3 (§III-B) even though the execution engine may consult
// the transitive closure.
type PrefEnumerator interface {
	// PrefList returns the asserted preference statements in assertion order.
	PrefList() []PrefPair
}

// Preferences enumerates the asserted preference statements of a finite
// algebra in a stable order. Algebras implementing PrefEnumerator report
// their asserted statements; otherwise, for each unordered pair {a, b} ⊆ Σ
// with a relation asserted, one PrefPair is derived from Prefer. Pairs left
// unrelated by the policy are omitted (partial orders stay partial).
func Preferences(a Algebra) []PrefPair {
	if pe, ok := a.(PrefEnumerator); ok {
		return pe.PrefList()
	}
	sigs := a.Sigs()
	var out []PrefPair
	for i := 0; i < len(sigs); i++ {
		for j := 0; j < len(sigs); j++ {
			if i == j {
				continue
			}
			x, y := sigs[i], sigs[j]
			xy, yx := a.Prefer(x, y), a.Prefer(y, x)
			switch {
			case xy && yx:
				if i < j { // emit each equality once
					out = append(out, PrefPair{A: x, B: y, Equal: true})
				}
			case xy:
				// One-directional in a derived (total-order) relation is a
				// strict preference.
				out = append(out, PrefPair{A: x, B: y, Strict: true})
			}
		}
	}
	return out
}

// ConcatEntry is one entry of the combined ⊕ table of a finite algebra:
// Label ⊕ In = Out. Entries with Out = φ are omitted by ConcatTable because
// they impose no monotonicity constraint (every signature is preferred to φ
// by definition).
type ConcatEntry struct {
	Label Label
	In    Sig
	Out   Sig
}

// String renders the entry the way the paper writes it (p ⊕ C = P).
func (e ConcatEntry) String() string {
	return e.Label.String() + " ⊕ " + e.In.String() + " = " + e.Out.String()
}

// ConcatTable enumerates the non-φ entries of the combined concatenation
// operator of a finite algebra, in a stable order. The signature universe
// is fetched once, not per label: Sigs implementations return defensive
// copies, and re-copying inside the label loop dominated table generation
// on large instances.
func ConcatTable(a Algebra) []ConcatEntry {
	labels, sigs := a.Labels(), a.Sigs()
	out := make([]ConcatEntry, 0, len(labels)*len(sigs)/2)
	for _, l := range labels {
		for _, s := range sigs {
			r := Combined(a, l, s)
			if IsProhibited(r) {
				continue
			}
			out = append(out, ConcatEntry{Label: l, In: s, Out: r})
		}
	}
	return out
}

// Format renders a finite algebra's ⊕P/⊕I/⊕E tables in the row/column layout
// used by the paper (§III-A), for diagnostics and documentation.
func Format(a Algebra) string {
	sigs, labels := a.Sigs(), a.Labels()
	if sigs == nil {
		return fmt.Sprintf("%s: closed-form algebra (infinite Σ)", a.Name())
	}
	var b strings.Builder
	fmt.Fprintf(&b, "algebra %s\n", a.Name())
	header := func(op string) {
		fmt.Fprintf(&b, "%-4s", op)
		for _, s := range sigs {
			fmt.Fprintf(&b, " %-6s", s)
		}
		b.WriteByte('\n')
	}
	header("⊕P")
	for _, l := range labels {
		fmt.Fprintf(&b, "%-4s", l)
		for _, s := range sigs {
			fmt.Fprintf(&b, " %-6s", a.Concat(l, s))
		}
		b.WriteByte('\n')
	}
	header("⊕I")
	for _, l := range labels {
		fmt.Fprintf(&b, "%-4s", l)
		for _, s := range sigs {
			v := "F"
			if a.Import(l, s) {
				v = "I"
			}
			fmt.Fprintf(&b, " %-6s", v)
		}
		b.WriteByte('\n')
	}
	header("⊕E")
	for _, l := range labels {
		fmt.Fprintf(&b, "%-4s", l)
		for _, s := range sigs {
			v := "F"
			if a.Export(l, s) {
				v = "E"
			}
			fmt.Fprintf(&b, " %-6s", v)
		}
		b.WriteByte('\n')
	}
	prefs := Preferences(a)
	strs := make([]string, len(prefs))
	for i, p := range prefs {
		strs[i] = p.String()
	}
	sort.Strings(strs)
	fmt.Fprintf(&b, "⪯: %s\n", strings.Join(strs, ", "))
	return b.String()
}
