package algebra

import (
	"fmt"
	"sort"
)

// Tabular is a finite algebra defined by explicit tables: the form used for
// Gao-Rexford-style guidelines, converted SPP instances, and any policy
// written in the FSR configuration language.
//
// Build one with NewBuilder; a Tabular itself is immutable after Build so it
// can be shared freely between the analysis and the protocol runtime.
type Tabular struct {
	name    string
	sigs    []Sig
	labels  []Label
	sigIdx  map[Sig]int
	labIdx  map[Label]int
	prefer  map[[2]Sig]bool
	concat  map[labSig]Sig
	imports map[labSig]bool // absent ⇒ default policy
	exports map[labSig]bool
	impDef  bool // default import verdict for absent entries
	expDef  bool
	reverse map[Label]Label
	origin  map[Label]Sig
	// asserted is the preference statements as the policy author wrote them
	// (PrefEnumerator); prefer above holds their reflexive-transitive use.
	asserted []PrefPair
}

type labSig struct {
	l Label
	s Sig
}

var _ Algebra = (*Tabular)(nil)

// Name implements Algebra.
func (t *Tabular) Name() string { return t.name }

// Sigs implements Algebra.
func (t *Tabular) Sigs() []Sig { out := make([]Sig, len(t.sigs)); copy(out, t.sigs); return out }

// Labels implements Algebra.
func (t *Tabular) Labels() []Label {
	out := make([]Label, len(t.labels))
	copy(out, t.labels)
	return out
}

// Prefer implements Algebra. Beyond the asserted pairs it supplies the two
// definitional facts: s ⪯ s (reflexivity) and s ≺ φ for every s.
func (t *Tabular) Prefer(a, b Sig) bool {
	if IsProhibited(b) {
		return true // s ⪯ φ for every s (and φ ⪯ φ)
	}
	if IsProhibited(a) {
		return false
	}
	if a == b {
		return true
	}
	return t.prefer[[2]Sig{a, b}]
}

// Concat implements Algebra (the ⊕P operator). Entries absent from the table
// are φ: unlisted combinations are prohibited, matching the SPP conversion
// where non-permitted paths get signature φ.
func (t *Tabular) Concat(l Label, s Sig) Sig {
	if IsProhibited(s) {
		return Prohibited
	}
	if r, ok := t.concat[labSig{l, s}]; ok {
		return r
	}
	return Prohibited
}

// Import implements Algebra (the ⊕I operator).
func (t *Tabular) Import(l Label, s Sig) bool {
	if v, ok := t.imports[labSig{l, s}]; ok {
		return v
	}
	return t.impDef
}

// Export implements Algebra (the ⊕E operator).
func (t *Tabular) Export(l Label, s Sig) bool {
	if v, ok := t.exports[labSig{l, s}]; ok {
		return v
	}
	return t.expDef
}

// Reverse implements Algebra. Labels without a declared reverse are their own
// reverse (peer links, SPP link constants).
func (t *Tabular) Reverse(l Label) Label {
	if r, ok := t.reverse[l]; ok {
		return r
	}
	return l
}

// Origin implements Algebra. Labels without a declared origination signature
// originate φ (no one-hop route over that link).
func (t *Tabular) Origin(l Label) Sig {
	if s, ok := t.origin[l]; ok {
		return s
	}
	return Prohibited
}

// PrefList implements PrefEnumerator: the preference statements in the order
// the policy asserted them, with A ⪯ B ∧ B ⪯ A collapsed into one equality.
func (t *Tabular) PrefList() []PrefPair {
	out := make([]PrefPair, len(t.asserted))
	copy(out, t.asserted)
	return out
}

// HasSig reports whether s belongs to the algebra's signature universe.
func (t *Tabular) HasSig(s Sig) bool { _, ok := t.sigIdx[s]; return ok }

// HasLabel reports whether l belongs to the algebra's label universe.
func (t *Tabular) HasLabel(l Label) bool { _, ok := t.labIdx[l]; return ok }

// Builder assembles a Tabular algebra. The zero value is not usable; call
// NewBuilder. Methods return the builder for chaining; errors are collected
// and reported by Build so policy-construction code stays readable.
type Builder struct {
	t    *Tabular
	errs []error
}

// NewBuilder starts a finite algebra named name. By default every import and
// export is permitted (the common case: guidelines constrain exports only)
// and every label is its own reverse.
func NewBuilder(name string) *Builder {
	return &Builder{t: &Tabular{
		name:    name,
		sigIdx:  map[Sig]int{},
		labIdx:  map[Label]int{},
		prefer:  map[[2]Sig]bool{},
		concat:  map[labSig]Sig{},
		imports: map[labSig]bool{},
		exports: map[labSig]bool{},
		impDef:  true,
		expDef:  true,
		reverse: map[Label]Label{},
		origin:  map[Label]Sig{},
	}}
}

func (b *Builder) errf(format string, args ...any) *Builder {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
	return b
}

// Sigs declares signatures, in preference-table order.
func (b *Builder) Sigs(ss ...Sig) *Builder {
	for _, s := range ss {
		if IsProhibited(s) {
			b.errf("algebra %s: φ is implicit and cannot be declared", b.t.name)
			continue
		}
		if _, dup := b.t.sigIdx[s]; dup {
			b.errf("algebra %s: duplicate signature %s", b.t.name, s)
			continue
		}
		b.t.sigIdx[s] = len(b.t.sigs)
		b.t.sigs = append(b.t.sigs, s)
	}
	return b
}

// Labels declares link labels.
func (b *Builder) Labels(ls ...Label) *Builder {
	for _, l := range ls {
		if _, dup := b.t.labIdx[l]; dup {
			b.errf("algebra %s: duplicate label %s", b.t.name, l)
			continue
		}
		b.t.labIdx[l] = len(b.t.labels)
		b.t.labels = append(b.t.labels, l)
	}
	return b
}

func (b *Builder) checkSig(s Sig, ctx string) bool {
	if _, ok := b.t.sigIdx[s]; !ok {
		b.errf("algebra %s: %s references undeclared signature %s", b.t.name, ctx, s)
		return false
	}
	return true
}

func (b *Builder) checkLabel(l Label, ctx string) bool {
	if _, ok := b.t.labIdx[l]; !ok {
		b.errf("algebra %s: %s references undeclared label %s", b.t.name, ctx, l)
		return false
	}
	return true
}

// Prefer asserts a ≺ s (strictly preferred, the paper's C ≺ P form).
// Asserting the reverse direction later upgrades the recorded statement to
// an equality (matching the paper's P = R encoding).
func (b *Builder) Prefer(a, s Sig) *Builder {
	if !b.checkSig(a, "preference") || !b.checkSig(s, "preference") {
		return b
	}
	if b.t.prefer[[2]Sig{s, a}] {
		b.t.prefer[[2]Sig{a, s}] = true
		b.upgradeToEqual(a, s)
		return b
	}
	if b.t.prefer[[2]Sig{a, s}] {
		return b // duplicate assertion
	}
	b.t.prefer[[2]Sig{a, s}] = true
	b.t.asserted = append(b.t.asserted, PrefPair{A: a, B: s, Strict: true})
	return b
}

// upgradeToEqual replaces an asserted one-directional pair over {a, s} with
// an equality, or records a fresh equality if none was asserted.
func (b *Builder) upgradeToEqual(a, s Sig) {
	for i, p := range b.t.asserted {
		if (p.A == s && p.B == a) || (p.A == a && p.B == s) {
			b.t.asserted[i].Equal = true
			b.t.asserted[i].Strict = false
			return
		}
	}
	b.t.asserted = append(b.t.asserted, PrefPair{A: a, B: s, Equal: true})
}

// Equal asserts that a and b are equally preferred (both directions of ⪯).
func (b *Builder) Equal(a, s Sig) *Builder {
	if !b.checkSig(a, "preference") || !b.checkSig(s, "preference") {
		return b
	}
	b.t.prefer[[2]Sig{a, s}] = true
	b.t.prefer[[2]Sig{s, a}] = true
	b.upgradeToEqual(a, s)
	return b
}

// Chain asserts the ranking s1 ≺ s2 ≺ … ≺ sn. Following the SPP conversion
// (§III-B), only the adjacent pairs are *asserted* (they are what the
// analysis turns into constraints); the non-adjacent pairs are added to the
// relation silently so Best can compare any two ranked signatures.
func (b *Builder) Chain(ss ...Sig) *Builder {
	for i := 0; i+1 < len(ss); i++ {
		b.Prefer(ss[i], ss[i+1])
	}
	for i := 0; i < len(ss); i++ {
		for j := i + 2; j < len(ss); j++ {
			if b.checkSig(ss[i], "chain") && b.checkSig(ss[j], "chain") {
				b.t.prefer[[2]Sig{ss[i], ss[j]}] = true
			}
		}
	}
	return b
}

// Concat defines l ⊕P s = out. Use φ (Prohibited) for out to explicitly
// prohibit; omitting the entry has the same meaning.
func (b *Builder) Concat(l Label, s Sig, out Sig) *Builder {
	if !b.checkLabel(l, "⊕P entry") || !b.checkSig(s, "⊕P entry") {
		return b
	}
	if !IsProhibited(out) && !b.checkSig(out, "⊕P result") {
		return b
	}
	if _, dup := b.t.concat[labSig{l, s}]; dup {
		return b.errf("algebra %s: duplicate ⊕P entry %s ⊕ %s", b.t.name, l, s)
	}
	if !IsProhibited(out) {
		b.t.concat[labSig{l, s}] = out
	}
	return b
}

// ConcatAll defines l ⊕P s = out for every declared signature s (the paper's
// "p ⊕P ∗ = P" shorthand).
func (b *Builder) ConcatAll(l Label, out Sig) *Builder {
	for _, s := range b.t.sigs {
		b.Concat(l, s, out)
	}
	return b
}

// DefaultImport sets the verdict for ⊕I entries not set explicitly
// (true = import). The default is true: guidelines rarely constrain imports.
func (b *Builder) DefaultImport(allow bool) *Builder { b.t.impDef = allow; return b }

// DefaultExport sets the verdict for ⊕E entries not set explicitly.
func (b *Builder) DefaultExport(allow bool) *Builder { b.t.expDef = allow; return b }

// Import sets l ⊕I s (true = I, false = F).
func (b *Builder) Import(l Label, s Sig, allow bool) *Builder {
	if b.checkLabel(l, "⊕I entry") && b.checkSig(s, "⊕I entry") {
		b.t.imports[labSig{l, s}] = allow
	}
	return b
}

// Export sets l ⊕E s (true = E, false = F).
func (b *Builder) Export(l Label, s Sig, allow bool) *Builder {
	if b.checkLabel(l, "⊕E entry") && b.checkSig(s, "⊕E entry") {
		b.t.exports[labSig{l, s}] = allow
	}
	return b
}

// Reverse declares l̄ = r and r̄ = l (bilateral business relationships:
// Reverse(c)=p). Self-inverse labels need no declaration.
func (b *Builder) Reverse(l, r Label) *Builder {
	if b.checkLabel(l, "reverse") && b.checkLabel(r, "reverse") {
		b.t.reverse[l] = r
		b.t.reverse[r] = l
	}
	return b
}

// Origin declares the signature of one-hop paths over links labelled l.
func (b *Builder) Origin(l Label, s Sig) *Builder {
	if b.checkLabel(l, "origin") && (IsProhibited(s) || b.checkSig(s, "origin")) {
		if !IsProhibited(s) {
			b.t.origin[l] = s
		}
	}
	return b
}

// Build finalizes the algebra, validating that at least one signature and one
// label were declared and reporting every accumulated construction error.
func (b *Builder) Build() (*Tabular, error) {
	if len(b.t.sigs) == 0 {
		b.errf("algebra %s: no signatures declared", b.t.name)
	}
	if len(b.t.labels) == 0 {
		b.errf("algebra %s: no labels declared", b.t.name)
	}
	if len(b.errs) > 0 {
		msgs := make([]string, len(b.errs))
		for i, e := range b.errs {
			msgs[i] = e.Error()
		}
		sort.Strings(msgs)
		return nil, fmt.Errorf("building algebra: %s", msgs[0])
	}
	return b.t, nil
}

// MustBuild is Build for statically-known algebras (the built-in library);
// it panics on construction errors.
func (b *Builder) MustBuild() *Tabular {
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}
