package algebra

// Product is the lexical product A ⊗ B of two algebras (§II-A): signatures
// and labels are pairs, concatenation is pairwise, and preference compares
// the A components first, falling back to the B components on a tie.
//
// The composition rule the safety analysis exploits (§IV-B): if A is strictly
// monotonic the product is safe; if A is monotonic and B strictly monotonic
// the product is safe; otherwise it is deemed unsafe. The canonical use is
// GaoRexfordWithHopCount: guideline A (monotonic) composed with shortest
// hop-count (strictly monotonic) as the tie-breaker.
//
// A Product of two finite algebras is finite; if either factor is
// closed-form the product's Sigs returns nil and the analysis falls back to
// analyzing the factors separately (which the composition rule makes
// sufficient).
type Product struct {
	First, Second Algebra
}

var _ Algebra = Product{}

// NewProduct builds the lexical product A ⊗ B.
func NewProduct(a, b Algebra) Product { return Product{First: a, Second: b} }

// GaoRexfordWithHopCount is the paper's running example of a provably safe
// composition (§IV-C, §VI-A): guideline A with shortest hop-count as the
// tie-breaker.
func GaoRexfordWithHopCount() Product {
	return NewProduct(GaoRexfordA(), HopCount{})
}

// Name implements Algebra.
func (p Product) Name() string { return p.First.Name() + "⊗" + p.Second.Name() }

// Sigs implements Algebra: the cross product of the factors' universes, or
// nil if either factor is infinite.
func (p Product) Sigs() []Sig {
	as, bs := p.First.Sigs(), p.Second.Sigs()
	if as == nil || bs == nil {
		return nil
	}
	out := make([]Sig, 0, len(as)*len(bs))
	for _, a := range as {
		for _, b := range bs {
			out = append(out, SigPair{A: a, B: b})
		}
	}
	return out
}

// Labels implements Algebra.
func (p Product) Labels() []Label {
	as, bs := p.First.Labels(), p.Second.Labels()
	out := make([]Label, 0, len(as)*len(bs))
	for _, a := range as {
		for _, b := range bs {
			out = append(out, LabelPair{A: a, B: b})
		}
	}
	return out
}

// split unwraps a product signature; a φ or foreign signature yields ok=false.
func split(s Sig) (SigPair, bool) {
	sp, ok := s.(SigPair)
	return sp, ok
}

// Prefer implements Algebra: lexical order. (a1,a2) ⪯ (b1,b2) iff a1 ≺ b1,
// or a1 and b1 are equally preferred and a2 ⪯ b2.
func (p Product) Prefer(a, b Sig) bool {
	if IsProhibited(b) {
		return true
	}
	if IsProhibited(a) {
		return false
	}
	x, okx := split(a)
	y, oky := split(b)
	if !okx || !oky {
		return false
	}
	firstEq := p.First.Prefer(x.A, y.A) && p.First.Prefer(y.A, x.A)
	if firstEq {
		return p.Second.Prefer(x.B, y.B)
	}
	return p.First.Prefer(x.A, y.A) && !p.First.Prefer(y.A, x.A)
}

// Concat implements Algebra: pairwise concatenation; a φ in either component
// prohibits the pair.
func (p Product) Concat(l Label, s Sig) Sig {
	lp, ok := l.(LabelPair)
	if !ok {
		return Prohibited
	}
	sp, ok := split(s)
	if !ok {
		return Prohibited
	}
	ra := p.First.Concat(lp.A, sp.A)
	rb := p.Second.Concat(lp.B, sp.B)
	if IsProhibited(ra) || IsProhibited(rb) {
		return Prohibited
	}
	return SigPair{A: ra, B: rb}
}

// Import implements Algebra: a route is imported iff both components import.
func (p Product) Import(l Label, s Sig) bool {
	lp, lok := l.(LabelPair)
	sp, sok := split(s)
	if !lok || !sok {
		return false
	}
	return p.First.Import(lp.A, sp.A) && p.Second.Import(lp.B, sp.B)
}

// Export implements Algebra: a route is exported iff both components export.
func (p Product) Export(l Label, s Sig) bool {
	lp, lok := l.(LabelPair)
	sp, sok := split(s)
	if !lok || !sok {
		return false
	}
	return p.First.Export(lp.A, sp.A) && p.Second.Export(lp.B, sp.B)
}

// Reverse implements Algebra: componentwise.
func (p Product) Reverse(l Label) Label {
	lp, ok := l.(LabelPair)
	if !ok {
		return l
	}
	return LabelPair{A: p.First.Reverse(lp.A), B: p.Second.Reverse(lp.B)}
}

// Origin implements Algebra: componentwise; φ in either component prohibits.
func (p Product) Origin(l Label) Sig {
	lp, ok := l.(LabelPair)
	if !ok {
		return Prohibited
	}
	oa, ob := p.First.Origin(lp.A), p.Second.Origin(lp.B)
	if IsProhibited(oa) || IsProhibited(ob) {
		return Prohibited
	}
	return SigPair{A: oa, B: ob}
}
