package algebra

import "fmt"

// HopCount is the shortest hop-count algebra from §II-A of the paper:
// Σ = ℕ (path length), ⪯ = ≤, L = {1}, ⊕ = +. Its signature universe is
// infinite, so Sigs returns nil and the safety analysis uses the ClosedForm
// interface to emit the quantified constraint  forall s. s < s + 1.
type HopCount struct{}

var (
	_ Algebra    = HopCount{}
	_ ClosedForm = HopCount{}
)

// Name implements Algebra.
func (HopCount) Name() string { return "shortest-hop-count" }

// Sigs implements Algebra: nil marks the universe as infinite.
func (HopCount) Sigs() []Sig { return nil }

// Labels implements Algebra: every link is one hop.
func (HopCount) Labels() []Label { return []Label{LNum(1)} }

// Prefer implements Algebra: shorter paths are preferred (≤ on ℕ).
func (HopCount) Prefer(a, b Sig) bool {
	if IsProhibited(b) {
		return true
	}
	if IsProhibited(a) {
		return false
	}
	x, xok := a.(Num)
	y, yok := b.(Num)
	return xok && yok && x <= y
}

// Concat implements Algebra: ⊕ is addition of the link cost.
func (HopCount) Concat(l Label, s Sig) Sig {
	n, ok := l.(LNum)
	if !ok {
		return Prohibited
	}
	v, ok := s.(Num)
	if !ok {
		return Prohibited
	}
	return Num(int(v) + int(n))
}

// Import implements Algebra: hop count has no import filtering.
func (HopCount) Import(Label, Sig) bool { return true }

// Export implements Algebra: hop count has no export filtering.
func (HopCount) Export(Label, Sig) bool { return true }

// Reverse implements Algebra: links are symmetric.
func (HopCount) Reverse(l Label) Label { return l }

// Origin implements Algebra: a one-hop path has length equal to the link cost.
func (HopCount) Origin(l Label) Sig {
	if n, ok := l.(LNum); ok {
		return Num(int(n))
	}
	return Prohibited
}

// ConcatDelta implements ClosedForm: Concat(l, s) = s + l.
func (HopCount) ConcatDelta(l Label) (int, bool) {
	n, ok := l.(LNum)
	return int(n), ok
}

// IGPCost is shortest-path routing over weighted links (the intra-AS route
// preference of §VI-B: lowest IGP cost to the egress wins). It is HopCount
// generalized to a declared set of link weights.
type IGPCost struct {
	// Weights is the set of link costs appearing in the topology. It only
	// affects Labels (and hence the constraints the analysis enumerates);
	// Concat accepts any LNum.
	Weights []int
}

var (
	_ Algebra    = IGPCost{}
	_ ClosedForm = IGPCost{}
)

// Name implements Algebra.
func (IGPCost) Name() string { return "igp-cost" }

// Sigs implements Algebra: infinite universe.
func (IGPCost) Sigs() []Sig { return nil }

// Labels implements Algebra.
func (g IGPCost) Labels() []Label {
	if len(g.Weights) == 0 {
		return []Label{LNum(1)}
	}
	out := make([]Label, len(g.Weights))
	for i, w := range g.Weights {
		out[i] = LNum(w)
	}
	return out
}

// Prefer implements Algebra: lower total cost preferred.
func (IGPCost) Prefer(a, b Sig) bool { return HopCount{}.Prefer(a, b) }

// Concat implements Algebra.
func (IGPCost) Concat(l Label, s Sig) Sig { return HopCount{}.Concat(l, s) }

// Import implements Algebra.
func (IGPCost) Import(Label, Sig) bool { return true }

// Export implements Algebra.
func (IGPCost) Export(Label, Sig) bool { return true }

// Reverse implements Algebra.
func (IGPCost) Reverse(l Label) Label { return l }

// Origin implements Algebra.
func (IGPCost) Origin(l Label) Sig { return HopCount{}.Origin(l) }

// ConcatDelta implements ClosedForm.
func (IGPCost) ConcatDelta(l Label) (int, bool) { return HopCount{}.ConcatDelta(l) }

// Gao-Rexford signature and label constants (§II-B). Routes learned from a
// customer, provider or peer carry signature C, P or R; links to a customer,
// provider or peer carry label c, p or r.
var (
	SigC = Symbol("C")
	SigP = Symbol("P")
	SigR = Symbol("R")
	LabC = LSym("c")
	LabP = LSym("p")
	LabR = LSym("r")
)

// GaoRexfordA builds the Gao-Rexford "guideline A" algebra of §II-B:
// customer routes strictly preferred to peer and provider routes (C ≺ P,
// C ≺ R, P = R), new signatures determined by the link class, and the
// export policy of Figure 2 (only customer routes are exported to providers
// and peers; everything is exported to customers).
//
// As the paper shows (§IV-C), this algebra is monotonic but not *strictly*
// monotonic: the entry c ⊕ C = C yields the unsatisfiable constraint C < C.
// Compose it with a strictly monotonic tie-breaker (GaoRexfordWithHopCount)
// to obtain a provably safe policy.
func GaoRexfordA() *Tabular {
	return NewBuilder("gao-rexford-a").
		Sigs(SigC, SigP, SigR).
		Labels(LabC, LabP, LabR).
		// Route preferences: C ≺ P, C ≺ R, P = R.
		Prefer(SigC, SigP).
		Prefer(SigC, SigR).
		Equal(SigP, SigR).
		// ⊕P: the new signature depends only on the link class (center
		// table of §III-A).
		ConcatAll(LabC, SigC).
		ConcatAll(LabR, SigR).
		ConcatAll(LabP, SigP).
		// ⊕E, keyed by the *exporter's* label for the link (label p = link
		// to a provider): a node exports only customer routes to providers
		// and peers, and everything to customers (Figure 2). Note the
		// paper's printed ⊕E table is keyed by the receiver-side label and
		// is inconsistent with its own combined-⊕ construction (which
		// applies l̄ to ⊕E); this encoding keeps the construction and
		// reproduces the paper's combined ⊕ table exactly.
		Export(LabP, SigP, false).
		Export(LabP, SigR, false).
		Export(LabR, SigP, false).
		Export(LabR, SigR, false).
		// Business relationships are bilateral: c̄ = p, r̄ = r.
		Reverse(LabC, LabP).
		// Origination: a one-hop route over a customer link is a customer
		// route, and so on.
		Origin(LabC, SigC).
		Origin(LabP, SigP).
		Origin(LabR, SigR).
		MustBuild()
}

// GaoRexfordB builds "guideline B" of Gao-Rexford: customer and peer routes
// both strictly preferred to provider routes (C = R ≺ P), with the same
// export discipline as guideline A. Like guideline A it is monotonic but not
// strictly monotonic.
func GaoRexfordB() *Tabular {
	return NewBuilder("gao-rexford-b").
		Sigs(SigC, SigP, SigR).
		Labels(LabC, LabP, LabR).
		Prefer(SigC, SigP).
		Prefer(SigR, SigP).
		Equal(SigC, SigR).
		ConcatAll(LabC, SigC).
		ConcatAll(LabR, SigR).
		ConcatAll(LabP, SigP).
		Export(LabP, SigP, false).
		Export(LabP, SigR, false).
		Export(LabR, SigP, false).
		Export(LabR, SigR, false).
		Reverse(LabC, LabP).
		Origin(LabC, SigC).
		Origin(LabP, SigP).
		Origin(LabR, SigR).
		MustBuild()
}

// BackupRouting builds a safe-backup-routing algebra in the style of
// Gao, Griffin and Rexford [8]: signatures carry the route class together
// with an avoidance level 0..MaxLevel that may only increase as routes cross
// backup links, and higher avoidance levels are strictly less preferred.
// The paper reports analyzing such guidelines with FSR (§IV-C).
func BackupRouting(maxLevel int) *Tabular {
	if maxLevel < 1 {
		maxLevel = 1
	}
	name := fmt.Sprintf("backup-routing-%d", maxLevel)
	lvl := func(class Symbol, k int) Sig { return SigPair{A: class, B: Num(k)} }
	bl := NewBuilder(name)
	var sigs []Sig
	for k := 0; k <= maxLevel; k++ {
		sigs = append(sigs, lvl(SigC, k), lvl(SigR, k), lvl(SigP, k))
	}
	bl.Sigs(sigs...)
	backup := LSym("b") // backup link: bumps the avoidance level
	bl.Labels(LabC, LabP, LabR, backup)
	// Preference: lower avoidance level strictly first; within a level the
	// guideline-A ordering (C ≺ P, C ≺ R, P = R).
	for k := 0; k <= maxLevel; k++ {
		bl.Prefer(lvl(SigC, k), lvl(SigP, k))
		bl.Prefer(lvl(SigC, k), lvl(SigR, k))
		bl.Equal(lvl(SigP, k), lvl(SigR, k))
		for j := k + 1; j <= maxLevel; j++ {
			for _, ci := range []Symbol{SigC, SigR, SigP} {
				for _, cj := range []Symbol{SigC, SigR, SigP} {
					bl.Prefer(lvl(ci, k), lvl(cj, j))
				}
			}
		}
	}
	// ⊕P: class determined by link label; avoidance level preserved on
	// normal links, incremented on backup links (capped paths prohibited).
	for k := 0; k <= maxLevel; k++ {
		for _, cls := range []Symbol{SigC, SigR, SigP} {
			bl.Concat(LabC, lvl(cls, k), lvl(SigC, k))
			bl.Concat(LabR, lvl(cls, k), lvl(SigR, k))
			bl.Concat(LabP, lvl(cls, k), lvl(SigP, k))
			if k < maxLevel {
				bl.Concat(backup, lvl(cls, k), lvl(SigP, k+1))
			}
		}
	}
	// ⊕E: guideline-A export discipline applies at every avoidance level
	// (keyed by the exporter's label: block non-customer routes on links to
	// providers and peers); backup links export everything — that is their
	// purpose.
	for k := 0; k <= maxLevel; k++ {
		for _, cls := range []Symbol{SigR, SigP} {
			bl.Export(LabP, lvl(cls, k), false)
			bl.Export(LabR, lvl(cls, k), false)
		}
	}
	bl.Reverse(LabC, LabP)
	bl.Origin(LabC, lvl(SigC, 0))
	bl.Origin(LabP, lvl(SigP, 0))
	bl.Origin(LabR, lvl(SigR, 0))
	bl.Origin(backup, lvl(SigP, 1))
	return bl.MustBuild()
}
