package algebra

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestGaoRexfordCombinedTable reproduces the combined ⊕ table of §II-B
// exactly:
//
//	⊕   C    R    P
//	c   C    φ    φ
//	r   R    φ    φ
//	p   P    P    P
func TestGaoRexfordCombinedTable(t *testing.T) {
	a := GaoRexfordA()
	want := map[[2]string]string{
		{"c", "C"}: "C", {"c", "R"}: "φ", {"c", "P"}: "φ",
		{"r", "C"}: "R", {"r", "R"}: "φ", {"r", "P"}: "φ",
		{"p", "C"}: "P", {"p", "R"}: "P", {"p", "P"}: "P",
	}
	for _, l := range a.Labels() {
		for _, s := range a.Sigs() {
			got := Combined(a, l, s)
			if got.String() != want[[2]string{l.String(), s.String()}] {
				t.Errorf("%s ⊕ %s = %s, want %s", l, s, got, want[[2]string{l.String(), s.String()}])
			}
		}
	}
}

// TestFigure2ExportPolicy checks the export semantics of Figure 2 under the
// exporter-side label convention: everything to customers, only customer
// routes to peers and providers.
func TestFigure2ExportPolicy(t *testing.T) {
	a := GaoRexfordA()
	cases := []struct {
		label Label
		sig   Sig
		want  bool
	}{
		{LabC, SigC, true}, {LabC, SigP, true}, {LabC, SigR, true}, // to customer: all
		{LabP, SigC, true}, {LabP, SigP, false}, {LabP, SigR, false}, // to provider: C only
		{LabR, SigC, true}, {LabR, SigP, false}, {LabR, SigR, false}, // to peer: C only
	}
	for _, c := range cases {
		if got := a.Export(c.label, c.sig); got != c.want {
			t.Errorf("Export(%s, %s) = %v, want %v", c.label, c.sig, got, c.want)
		}
	}
}

// TestPreferencesGaoRexford: the asserted statements are exactly C ≺ P,
// C ≺ R, P = R (three constraints, as in the §IV-C listing).
func TestPreferencesGaoRexford(t *testing.T) {
	prefs := Preferences(GaoRexfordA())
	if len(prefs) != 3 {
		t.Fatalf("want 3 asserted preferences, got %d: %v", len(prefs), prefs)
	}
	rendered := map[string]bool{}
	for _, p := range prefs {
		rendered[p.String()] = true
	}
	for _, want := range []string{"C ≺ P", "C ≺ R", "P = R"} {
		if !rendered[want] {
			t.Errorf("missing asserted preference %s (have %v)", want, prefs)
		}
	}
}

// TestProhibitedAbsorbs: φ is absorbing under every operator.
func TestProhibitedAbsorbs(t *testing.T) {
	for _, a := range []Algebra{GaoRexfordA(), HopCount{}, GaoRexfordWithHopCount()} {
		for _, l := range a.Labels() {
			if got := a.Concat(l, Prohibited); !IsProhibited(got) {
				t.Errorf("%s: %s ⊕ φ = %v, want φ", a.Name(), l, got)
			}
			if got := Combined(a, l, Prohibited); !IsProhibited(got) {
				t.Errorf("%s: combined %s ⊕ φ = %v, want φ", a.Name(), l, got)
			}
		}
	}
}

// TestPreferProhibited: everything is preferred to φ; φ is preferred to
// nothing else.
func TestPreferProhibited(t *testing.T) {
	a := GaoRexfordA()
	for _, s := range a.Sigs() {
		if !a.Prefer(s, Prohibited) {
			t.Errorf("%s should be preferred to φ", s)
		}
		if a.Prefer(Prohibited, s) {
			t.Errorf("φ should not be preferred to %s", s)
		}
	}
}

// TestHopCountClosedForm checks the arithmetic algebra.
func TestHopCountClosedForm(t *testing.T) {
	h := HopCount{}
	if got := h.Concat(LNum(1), Num(3)); got != Num(4) {
		t.Errorf("1 ⊕ 3 = %v, want 4", got)
	}
	if d, ok := h.ConcatDelta(LNum(1)); !ok || d != 1 {
		t.Errorf("ConcatDelta = %d,%v", d, ok)
	}
	if !h.Prefer(Num(2), Num(5)) || h.Prefer(Num(5), Num(2)) {
		t.Errorf("shorter paths must be strictly preferred")
	}
	if h.Origin(LNum(1)) != Num(1) {
		t.Errorf("one-hop path has length 1")
	}
}

// TestProductLexicalOrder: the product compares first components first.
func TestProductLexicalOrder(t *testing.T) {
	p := GaoRexfordWithHopCount()
	cp3 := SigPair{A: SigC, B: Num(3)}
	cp5 := SigPair{A: SigC, B: Num(5)}
	pp1 := SigPair{A: SigP, B: Num(1)}
	if !p.Prefer(cp3, pp1) {
		t.Errorf("(C,3) should be preferred to (P,1): customer beats provider regardless of length")
	}
	if !p.Prefer(cp3, cp5) || p.Prefer(cp5, cp3) {
		t.Errorf("equal classes fall back to hop count")
	}
}

// TestProductConcat: componentwise with φ propagation.
func TestProductConcat(t *testing.T) {
	p := GaoRexfordWithHopCount()
	l := LabelPair{A: LabC, B: LNum(1)}
	got := p.Concat(l, SigPair{A: SigC, B: Num(2)})
	if got != (SigPair{A: SigC, B: Num(3)}) {
		t.Errorf("got %v", got)
	}
	// Export filtering of the first factor prohibits the pair in Combined:
	// a customer neighbor would never export its peer-learned route to us
	// (combined table row c, column R is φ).
	lc := LabelPair{A: LabC, B: LNum(1)}
	if got := Combined(p, lc, SigPair{A: SigR, B: Num(2)}); !IsProhibited(got) {
		t.Errorf("peer route over a customer link must be prohibited, got %v", got)
	}
}

// TestBestSelection: Best respects strict preference and skips φ.
func TestBestSelection(t *testing.T) {
	a := GaoRexfordA()
	got := Best(a, []Sig{Prohibited, SigP, SigC, SigR})
	if got != SigC {
		t.Errorf("Best = %v, want C", got)
	}
	if got := Best(a, nil); !IsProhibited(got) {
		t.Errorf("Best of nothing should be φ")
	}
}

// TestBuilderValidation: construction errors are reported, not silently
// accepted.
func TestBuilderValidation(t *testing.T) {
	if _, err := NewBuilder("empty").Build(); err == nil {
		t.Errorf("empty algebra should fail to build")
	}
	_, err := NewBuilder("bad").Sigs(SigC).Labels(LabC).
		Concat(LabC, Symbol("undeclared"), SigC).Build()
	if err == nil {
		t.Errorf("undeclared signature should fail")
	}
	_, err = NewBuilder("dup").Sigs(SigC, SigC).Labels(LabC).Build()
	if err == nil {
		t.Errorf("duplicate signature should fail")
	}
	_, err = NewBuilder("dupconcat").Sigs(SigC).Labels(LabC).
		Concat(LabC, SigC, SigC).Concat(LabC, SigC, SigC).Build()
	if err == nil {
		t.Errorf("duplicate concat entry should fail")
	}
}

// TestChainTransitivity: chains close transitively for the relation but
// assert only adjacent pairs.
func TestChainTransitivity(t *testing.T) {
	x, y, z := Symbol("x"), Symbol("y"), Symbol("z")
	a := NewBuilder("chain").Sigs(x, y, z).Labels(LabC).Chain(x, y, z).MustBuild()
	if !a.Prefer(x, z) {
		t.Errorf("chain should close transitively: x ⪯ z")
	}
	if got := len(Preferences(a)); got != 2 {
		t.Errorf("chain should assert adjacent pairs only: got %d", got)
	}
}

// TestBackupRoutingStructure: higher avoidance levels are strictly less
// preferred, and backup links bump the level.
func TestBackupRoutingStructure(t *testing.T) {
	b := BackupRouting(2)
	l0 := SigPair{A: SigC, B: Num(0)}
	l1 := SigPair{A: SigP, B: Num(1)}
	if !b.Prefer(l0, l1) || b.Prefer(l1, l0) {
		t.Errorf("level 0 must be strictly preferred to level 1")
	}
	got := b.Concat(LSym("b"), SigPair{A: SigC, B: Num(0)})
	if got != (SigPair{A: SigP, B: Num(1)}) {
		t.Errorf("backup link should bump the avoidance level, got %v", got)
	}
	// Level-capped routes are prohibited.
	if got := b.Concat(LSym("b"), SigPair{A: SigC, B: Num(2)}); !IsProhibited(got) {
		t.Errorf("level beyond the cap must be prohibited, got %v", got)
	}
}

// TestReverseInvolution (property): Reverse is an involution for every
// built-in algebra.
func TestReverseInvolution(t *testing.T) {
	for _, a := range []Algebra{GaoRexfordA(), GaoRexfordB(), BackupRouting(2), GaoRexfordWithHopCount()} {
		for _, l := range a.Labels() {
			if got := a.Reverse(a.Reverse(l)); got != l {
				t.Errorf("%s: Reverse(Reverse(%s)) = %s", a.Name(), l, got)
			}
		}
	}
}

// TestPreferReflexiveTransitive (property, testing/quick): the preference
// relation of the product algebra is reflexive, and Best never returns a
// strictly-dominated candidate.
func TestPreferReflexiveTransitive(t *testing.T) {
	p := GaoRexfordWithHopCount()
	classes := []Sig{SigC, SigP, SigR}
	gen := func(r *rand.Rand) Sig {
		return SigPair{A: classes[r.Intn(3)], B: Num(1 + r.Intn(9))}
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := gen(r)
		if !p.Prefer(s, s) {
			return false
		}
		cands := []Sig{gen(r), gen(r), gen(r), gen(r)}
		best := Best(p, cands)
		for _, c := range cands {
			if p.Prefer(c, best) && !p.Prefer(best, c) {
				return false // a candidate strictly dominates the winner
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestFormatCoversOperators: the diagnostic rendering includes all tables.
func TestFormatCoversOperators(t *testing.T) {
	out := Format(GaoRexfordA())
	for _, want := range []string{"⊕P", "⊕I", "⊕E", "⪯", "gao-rexford-a"} {
		if !contains(out, want) {
			t.Errorf("Format output missing %q", want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
