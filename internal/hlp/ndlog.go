package hlp

import "fsr/internal/ndlog"

// NDlogListing is the declarative form of HLP the paper describes in §VI-D
// ("We implement HLP in NDlog by using just 10 rules — 11 rules if we also
// specify that internal paths are hidden"). The first ten rules are the
// mechanism: intra-domain link-state flooding and distance computation,
// FPV adoption at borders, internal distribution, selection, and external
// re-advertisement. Rule 11 (hlpHide) is the internal-path hiding variant
// of the export rule. The native implementation in this package mirrors
// these rules; the listing is kept canonical so it parses with the ndlog
// package and the rule count is testable.
const NDlogListing = `
materialize(lsa, 3, keys(1,2)).
materialize(linkDist, 3, keys(1,2)).
materialize(fpv, 5, keys(1,2,3)).
materialize(bestFPV, 5, keys(1,2)).

hlpLSAGen lsa(@U,U,A) :- adjacency(@U,A).
hlpLSAFlood lsa(@N,O,A) :- lsa(@U,O,A), intraNeighbor(@U,N), N!=O.
hlpDistInit linkDist(@U,U,0) :- adjacency(@U,A).
hlpDistStep linkDist(@U,T,DNew) :- lsa(@U,O,A), linkDist(@U,O,D),
	T=f_adjNode(A), W=f_adjWeight(A), DNew=f_sum(D,W).
hlpAdopt fpv(@U,Dst,Path,C,U) :- efpv(@U,V,Dst,Path,C), f_domainLoop(Path)==false.
hlpDistribute fpv(@N,Dst,Path,C,B) :- fpv(@U,Dst,Path,C,B), intraNeighbor(@U,N).
hlpTotal fpvCost(@U,Dst,Path,B,T) :- fpv(@U,Dst,Path,C,B), linkDist(@U,B,D),
	T=f_sum(C,D).
hlpSelect bestFPV(@U,Dst,a_cost<T>,Path,B) :- fpvCost(@U,Dst,Path,B,T).
hlpExport efpv(@P,U,Dst,PathNew,T) :- bestFPV(@U,Dst,T,Path,B),
	interNeighbor(@U,P), PathNew=f_appendDomain(Path).
hlpOriginate fpv(@U,Dst,Path,0,U) :- originDomain(@U,Dst), Path=f_emptyPath(U).
hlpHide efpv(@P,U,Dst,PathNew,T) :- bestFPV(@U,Dst,T,Path,B),
	interNeighbor(@U,P), PathNew=f_appendDomain(Path),
	f_costDelta(U,P,Dst,T)>=f_hideThreshold(U).
`

// NDlogProgram parses the canonical listing (panics only on a programming
// error in the constant).
func NDlogProgram() *ndlog.Program {
	return ndlog.MustParse("hlp", NDlogListing)
}
