// Package hlp implements the Hybrid Link-state Path-vector protocol
// (Subramanian et al., SIGCOMM 2005) used as FSR's alternative routing
// mechanism in §VI-D: ordinary link-state routing inside each
// customer-provider hierarchy (domain), and a fragmented path-vector (FPV)
// across hierarchies in which internal paths are hidden and only
// (destination domain, domain path, cost) travels. Cost hiding suppresses
// re-advertisements whose cost changed by less than a threshold (the paper
// sets 5), trading optimality inside the hierarchy for update suppression.
//
// The paper implements HLP in 10 NDlog rules (11 with cost hiding); this
// package is the native-Go counterpart running on simnet, and NDlogListing
// reproduces the declarative form for reference.
package hlp

import (
	"fmt"
	"sort"
	"time"

	"fsr/internal/simnet"
)

// LSA is an intra-domain link-state advertisement: the origin router's
// weighted adjacencies within its domain, stamped with a sequence number.
type LSA struct {
	Origin simnet.NodeID
	Seq    int
	Adj    []Adjacency
}

// Adjacency is one weighted intra-domain link of an LSA.
type Adjacency struct {
	To     simnet.NodeID
	Weight int
}

// FPV is a fragmented path-vector announcement: destination domain,
// AS-level (domain) path, and the advertised cost at the announcing border
// router. Internal router-level paths are hidden — that is HLP's point.
type FPV struct {
	DestDomain string
	DomainPath []string
	Cost       int
	// Border is the router (within the receiving domain after internal
	// flooding) where the route enters the domain.
	Border simnet.NodeID
	// Via is the external peer the route was learned from at the border;
	// candidates are kept per (border, via, path), the per-neighbor RIB
	// that makes replacement idempotent.
	Via simnet.NodeID
}

// WireSize of an LSA: header plus per-adjacency entries.
func (l LSA) WireSize() int { return 16 + 8*len(l.Adj) }

// WireSize of an FPV: header plus per-domain entries — much smaller than a
// router-level path, which is where HLP saves bandwidth.
func (f FPV) WireSize() int { return 20 + 6*len(f.DomainPath) }

func init() {
	simnet.RegisterPayload(LSA{})
	simnet.RegisterPayload(FPV{})
}

// Config parameterizes one HLP router.
type Config struct {
	// Domain is the customer-provider hierarchy this router belongs to.
	Domain string
	// DomainOf maps each neighbor to its domain; neighbors in a different
	// domain are inter-domain peers speaking FPV.
	DomainOf map[simnet.NodeID]string
	// Weight maps intra-domain neighbors to link weights.
	Weight map[simnet.NodeID]int
	// OriginDomains lists destination domains this router originates
	// (typically its own domain at the top provider).
	OriginDomains []string
	// CostHiding, when positive, suppresses external re-advertisements
	// whose cost differs from the last advertised by less than the
	// threshold (§VI-D uses 5). Zero disables hiding (plain HLP).
	CostHiding int
	// BatchInterval batches protocol sends like the GPV runs.
	BatchInterval time.Duration
	// StartStagger randomizes protocol start per node.
	StartStagger time.Duration
}

// Node is one HLP router.
type Node struct {
	cfg  Config
	self simnet.NodeID
	// lsdb is the intra-domain link-state database.
	lsdb map[simnet.NodeID]LSA
	// advPaths records the domain path last advertised per (peer, dest) so
	// cost hiding only suppresses same-path cost jitter, never a path
	// change.
	advPaths map[simnet.NodeID]map[string]string
	// routes[destDomain][key] are FPV candidates heard at this router
	// (from external peers directly, or flooded internally).
	routes map[string]map[string]FPV
	// best[destDomain] is the current selection.
	best map[string]FPV
	// lastAdvertised[peer][destDomain] is the cost last advertised to an
	// external peer (cost-hiding bookkeeping); -1 means a route was never
	// advertised.
	lastAdvertised map[simnet.NodeID]map[string]int

	outLSA  []LSA
	outFPV  map[simnet.NodeID][]FPV
	flushOn bool
}

var _ simnet.Handler = (*Node)(nil)

// NewNode builds an HLP router.
func NewNode(cfg Config) *Node {
	return &Node{
		cfg:            cfg,
		lsdb:           map[simnet.NodeID]LSA{},
		routes:         map[string]map[string]FPV{},
		best:           map[string]FPV{},
		lastAdvertised: map[simnet.NodeID]map[string]int{},
		outFPV:         map[simnet.NodeID][]FPV{},
	}
}

// Best returns the selected route for a destination domain.
func (n *Node) Best(destDomain string) (FPV, bool) {
	f, ok := n.best[destDomain]
	return f, ok
}

// intraNeighbors returns same-domain neighbors; interNeighbors the rest.
func (n *Node) intraNeighbors(env simnet.Env) []simnet.NodeID {
	var out []simnet.NodeID
	for _, nb := range env.Neighbors() {
		if n.cfg.DomainOf[nb] == n.cfg.Domain {
			out = append(out, nb)
		}
	}
	return out
}

func (n *Node) interNeighbors(env simnet.Env) []simnet.NodeID {
	var out []simnet.NodeID
	for _, nb := range env.Neighbors() {
		if n.cfg.DomainOf[nb] != n.cfg.Domain {
			out = append(out, nb)
		}
	}
	return out
}

// Start implements simnet.Handler: flood the own LSA and originate FPV
// routes for the configured destination domains.
func (n *Node) Start(env simnet.Env) {
	start := func() {
		n.self = env.Self()
		var adj []Adjacency
		for _, nb := range n.intraNeighbors(env) {
			w := n.cfg.Weight[nb]
			if w == 0 {
				w = 1
			}
			adj = append(adj, Adjacency{To: nb, Weight: w})
		}
		own := LSA{Origin: env.Self(), Seq: 1, Adj: adj}
		n.lsdb[env.Self()] = own
		n.outLSA = append(n.outLSA, own)
		for _, d := range n.cfg.OriginDomains {
			// Origination carries an empty domain path; propagate appends
			// the own domain on the way out.
			n.storeRoute(env, FPV{DestDomain: d, Cost: 0, Border: env.Self(), Via: env.Self()})
		}
		n.scheduleFlush(env)
	}
	if n.cfg.StartStagger > 0 {
		env.Schedule(time.Duration(env.Rand().Int63n(int64(n.cfg.StartStagger))), start)
	} else {
		start()
	}
}

// Receive implements simnet.Handler.
func (n *Node) Receive(env simnet.Env, from simnet.NodeID, payload any) {
	switch m := payload.(type) {
	case LSA:
		if have, ok := n.lsdb[m.Origin]; ok && have.Seq >= m.Seq {
			return // already known: flooding terminates
		}
		n.lsdb[m.Origin] = m
		n.outLSA = append(n.outLSA, m)
		n.scheduleFlush(env)
		// Internal distances changed: reselect every destination.
		for d := range n.routes {
			n.reselect(env, d)
		}
	case FPV:
		n.receiveFPV(env, from, m)
	default:
		panic(fmt.Sprintf("hlp: unexpected payload %T", payload))
	}
}

func (n *Node) receiveFPV(env simnet.Env, from simnet.NodeID, f FPV) {
	fromDomain := n.cfg.DomainOf[from]
	if fromDomain != n.cfg.Domain {
		// External announcement arriving at this border router: loop-check
		// on the domain path, then adopt with ourselves as border.
		for _, d := range f.DomainPath {
			if d == n.cfg.Domain {
				return
			}
		}
		f.Border = env.Self()
		f.Via = from
	}
	// Internal flood or adopted external: store keyed by (border, via,
	// domain path) — a peer's re-announcement replaces its previous one.
	n.storeRoute(env, f)
}

func (n *Node) storeRoute(env simnet.Env, f FPV) {
	key := string(f.Border) + "|" + string(f.Via) + "|" + pathKey(f.DomainPath)
	if n.routes[f.DestDomain] == nil {
		n.routes[f.DestDomain] = map[string]FPV{}
	}
	old, had := n.routes[f.DestDomain][key]
	if had && old.Cost == f.Cost {
		return
	}
	n.routes[f.DestDomain][key] = f
	n.reselect(env, f.DestDomain)
}

// internalDist computes this router's shortest-path distance to another
// router of its domain over the link-state database (Dijkstra).
func (n *Node) internalDist(to simnet.NodeID) (int, bool) {
	if to == "" {
		return 0, false
	}
	const inf = 1 << 30
	dist := map[simnet.NodeID]int{n.self: 0}
	visited := map[simnet.NodeID]bool{}
	for {
		cur, curD := simnet.NodeID(""), inf
		for node, d := range dist {
			if !visited[node] && d < curD {
				cur, curD = node, d
			}
		}
		if cur == "" {
			return 0, false
		}
		if cur == to {
			return curD, true
		}
		visited[cur] = true
		lsa, ok := n.lsdb[cur]
		if !ok {
			continue
		}
		for _, a := range lsa.Adj {
			if nd := curD + a.Weight; nd < distOr(dist, a.To) {
				dist[a.To] = nd
			}
		}
	}
}

func distOr(m map[simnet.NodeID]int, k simnet.NodeID) int {
	if v, ok := m[k]; ok {
		return v
	}
	return 1 << 30
}

// totalCost is the route's cost as seen from this router: the advertised
// cost at the border plus the internal distance to the border.
func (n *Node) totalCost(f FPV) (int, bool) {
	if f.Border == n.self {
		return f.Cost, true
	}
	d, ok := n.internalDist(f.Border)
	if !ok {
		return 0, false
	}
	return f.Cost + d, true
}

// reselect recomputes the best route for a destination domain: lowest total
// cost, then shortest domain path, then deterministic order.
func (n *Node) reselect(env simnet.Env, destDomain string) {
	var best FPV
	bestCost := -1
	keys := make([]string, 0, len(n.routes[destDomain]))
	for k := range n.routes[destDomain] {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		f := n.routes[destDomain][k]
		c, ok := n.totalCost(f)
		if !ok {
			continue
		}
		if bestCost < 0 || c < bestCost ||
			(c == bestCost && len(f.DomainPath) < len(best.DomainPath)) {
			best, bestCost = f, c
		}
	}
	if bestCost < 0 {
		return
	}
	prev, had := n.best[destDomain]
	prevCost := 0
	if had {
		prevCost, _ = n.totalCost(prev)
	}
	if had && prev.Border == best.Border && pathKey(prev.DomainPath) == pathKey(best.DomainPath) && prevCost == bestCost {
		return
	}
	n.best[destDomain] = best
	n.propagate(env, destDomain, best, bestCost)
}

// propagate floods the selection internally and re-advertises it externally
// (with cost hiding on the external side).
func (n *Node) propagate(env simnet.Env, destDomain string, f FPV, cost int) {
	// Internal flood: forward the entering announcement unchanged (cost at
	// border); internal receivers compute their own total.
	for _, nb := range n.intraNeighbors(env) {
		n.outFPV[nb] = append(n.outFPV[nb], f)
	}
	// External: announce (dest, path + own domain, total cost at me).
	ext := FPV{
		DestDomain: destDomain,
		DomainPath: append(append([]string{}, f.DomainPath...), n.cfg.Domain),
		Cost:       cost,
	}
	for _, nb := range n.interNeighbors(env) {
		last := -1
		if m := n.lastAdvertised[nb]; m != nil {
			if v, ok := m[destDomain]; ok {
				last = v
			}
		}
		if last >= 0 && samePathAdvertised(n, nb, destDomain, ext.DomainPath) {
			diff := cost - last
			if diff < 0 {
				diff = -diff
			}
			// Identical re-announcements are always suppressed; with cost
			// hiding enabled, announcements within the threshold are too.
			if diff == 0 || diff < n.cfg.CostHiding {
				continue
			}
		}
		if n.lastAdvertised[nb] == nil {
			n.lastAdvertised[nb] = map[string]int{}
		}
		n.lastAdvertised[nb][destDomain] = cost
		rememberPath(n, nb, destDomain, ext.DomainPath)
		n.outFPV[nb] = append(n.outFPV[nb], ext)
	}
	n.scheduleFlush(env)
}

func rememberPath(n *Node, nb simnet.NodeID, dest string, path []string) {
	if n.advPaths == nil {
		n.advPaths = map[simnet.NodeID]map[string]string{}
	}
	if n.advPaths[nb] == nil {
		n.advPaths[nb] = map[string]string{}
	}
	n.advPaths[nb][dest] = pathKey(path)
}

func samePathAdvertised(n *Node, nb simnet.NodeID, dest string, path []string) bool {
	if n.advPaths == nil || n.advPaths[nb] == nil {
		return false
	}
	return n.advPaths[nb][dest] == pathKey(path)
}

// scheduleFlush batches LSA and FPV sends, jittered like GPV batching.
func (n *Node) scheduleFlush(env simnet.Env) {
	if n.flushOn {
		return
	}
	n.flushOn = true
	d := n.cfg.BatchInterval
	if d > 0 {
		d += time.Duration(env.Rand().Int63n(int64(d)/2 + 1))
	}
	env.Schedule(d, func() {
		n.flushOn = false
		lsas := n.outLSA
		n.outLSA = nil
		for _, l := range lsas {
			for _, nb := range n.intraNeighbors(env) {
				env.Send(nb, l, l.WireSize())
			}
		}
		out := n.outFPV
		n.outFPV = map[simnet.NodeID][]FPV{}
		for _, nb := range sortedIDs(out) {
			for _, f := range out[nb] {
				env.Send(nb, f, f.WireSize())
			}
		}
	})
}

func sortedIDs(m map[simnet.NodeID][]FPV) []simnet.NodeID {
	out := make([]simnet.NodeID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func pathKey(p []string) string {
	out := ""
	for _, d := range p {
		out += d + "/"
	}
	return out
}
