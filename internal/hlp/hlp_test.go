package hlp

import (
	"testing"
	"time"

	"fsr/internal/simnet"
	"fsr/internal/trace"
)

// twoDomains wires a 2-domain, 3-routers-per-domain network:
//
//	D0: a0 — a1 — a2     D1: b0 — b1 — b2
//	cross link: a2 — b0
//
// with D0's root a0 originating domain D0.
func twoDomains(t *testing.T, hiding int) (*simnet.Network, map[simnet.NodeID]*Node, *trace.Collector) {
	t.Helper()
	col := trace.NewCollector(10 * time.Millisecond)
	net := simnet.New(1, col)
	domains := map[string]string{
		"a0": "D0", "a1": "D0", "a2": "D0",
		"b0": "D1", "b1": "D1", "b2": "D1",
	}
	links := [][3]any{
		{"a0", "a1", 2}, {"a1", "a2", 3},
		{"b0", "b1", 1}, {"b1", "b2", 4},
		{"a2", "b0", 10},
	}
	neighbors := map[string]map[string]int{}
	for _, l := range links {
		a, b, w := l[0].(string), l[1].(string), l[2].(int)
		if neighbors[a] == nil {
			neighbors[a] = map[string]int{}
		}
		if neighbors[b] == nil {
			neighbors[b] = map[string]int{}
		}
		neighbors[a][b] = w
		neighbors[b][a] = w
	}
	nodes := map[simnet.NodeID]*Node{}
	for n, dom := range domains {
		domOf := map[simnet.NodeID]string{}
		weight := map[simnet.NodeID]int{}
		for nb, w := range neighbors[n] {
			domOf[simnet.NodeID(nb)] = domains[nb]
			weight[simnet.NodeID(nb)] = w
		}
		cfg := Config{
			Domain:        dom,
			DomainOf:      domOf,
			Weight:        weight,
			CostHiding:    hiding,
			BatchInterval: 10 * time.Millisecond,
			StartStagger:  5 * time.Millisecond,
		}
		if n == "a0" {
			cfg.OriginDomains = []string{"D0"}
		}
		hn := NewNode(cfg)
		nodes[simnet.NodeID(n)] = hn
		if err := net.AddNode(simnet.NodeID(n), hn); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range links {
		if err := net.Connect(simnet.NodeID(l[0].(string)), simnet.NodeID(l[1].(string)), simnet.DefaultLink()); err != nil {
			t.Fatal(err)
		}
	}
	return net, nodes, col
}

// TestHLPConvergesAndRoutes: every router of both domains learns a route to
// D0 with the correct domain path, and internal paths stay hidden (domain
// paths only).
func TestHLPConvergesAndRoutes(t *testing.T) {
	net, nodes, _ := twoDomains(t, 0)
	res := net.Run(5 * time.Second)
	if !res.Converged {
		t.Fatalf("HLP should converge")
	}
	for id, n := range nodes {
		best, ok := n.Best("D0")
		if !ok {
			t.Errorf("%s has no route to D0", id)
			continue
		}
		for _, d := range best.DomainPath {
			if d != "D0" && d != "D1" {
				t.Errorf("%s: domain path leaks non-domain element %q", id, d)
			}
		}
	}
	// D1 routers see D0 via the fragment [D0]: the path crossing into D1
	// is what their border advertised.
	b2, _ := nodes["b2"].Best("D0")
	if len(b2.DomainPath) != 1 || b2.DomainPath[0] != "D0" {
		t.Errorf("b2's route should carry fragment [D0], got %v", b2.DomainPath)
	}
}

// TestHLPCostsReflectIGP: the selected cost combines the advertised border
// cost with the internal link-state distance.
func TestHLPCostsReflectIGP(t *testing.T) {
	net, nodes, _ := twoDomains(t, 0)
	net.Run(5 * time.Second)
	// a2's distance to a0 is 2+3 = 5 over the LSDB.
	a2 := nodes["a2"]
	d, ok := a2.internalDist("a0")
	if !ok || d != 5 {
		t.Errorf("a2→a0 internal distance = %d, %v; want 5", d, ok)
	}
	best, ok := a2.Best("D0")
	if !ok {
		t.Fatalf("a2 lost its route")
	}
	if c, ok := a2.totalCost(best); !ok || c != 5 {
		t.Errorf("a2's total cost to D0 = %d, want 5", c)
	}
}

// TestCostHidingReducesTraffic: with a hiding threshold the run sends no
// more (strictly fewer or equal) external updates.
func TestCostHidingReducesTraffic(t *testing.T) {
	net1, _, col1 := twoDomains(t, 0)
	net1.Run(5 * time.Second)
	net2, nodes2, col2 := twoDomains(t, 5)
	res := net2.Run(5 * time.Second)
	if !res.Converged {
		t.Fatalf("HLP-CH should converge")
	}
	m1, _ := col1.Totals()
	m2, _ := col2.Totals()
	if m2 > m1 {
		t.Errorf("cost hiding should not increase traffic: %d vs %d", m2, m1)
	}
	// Routing still works under hiding.
	if _, ok := nodes2["b2"].Best("D0"); !ok {
		t.Errorf("b2 lost reachability under cost hiding")
	}
}

// TestLSDBFloodTerminates: every node ends with the full intra-domain LSDB.
func TestLSDBFloodTerminates(t *testing.T) {
	net, nodes, _ := twoDomains(t, 0)
	net.Run(5 * time.Second)
	for _, id := range []simnet.NodeID{"a0", "a1", "a2"} {
		if got := len(nodes[id].lsdb); got != 3 {
			t.Errorf("%s LSDB has %d entries, want 3", id, got)
		}
	}
	// LSAs never leak across domains.
	for _, id := range []simnet.NodeID{"b0", "b1", "b2"} {
		for origin := range nodes[id].lsdb {
			if origin[0] != 'b' {
				t.Errorf("%s holds foreign LSA from %s", id, origin)
			}
		}
	}
}

// TestNDlogListing: the declarative HLP parses and has the paper's rule
// census — 10 mechanism rules plus 1 cost-hiding rule (§VI-D).
func TestNDlogListing(t *testing.T) {
	prog := NDlogProgram()
	if got := len(prog.Rules); got != 11 {
		t.Fatalf("want 10+1 rules as in the paper, got %d", got)
	}
	if prog.Rules[len(prog.Rules)-1].Label != "hlpHide" {
		t.Errorf("rule 11 should be the hiding variant, got %s", prog.Rules[len(prog.Rules)-1].Label)
	}
	if _, ok := prog.Table("fpv"); !ok {
		t.Errorf("fpv table should be materialized")
	}
}
