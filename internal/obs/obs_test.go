package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterExpose: the atomic counter renders exactly like the daemon's
// original label-free counterVec, including the zero line when untouched.
func TestCounterExpose(t *testing.T) {
	c := NewCounter("fsr_test_total", "Test counter.")
	var b strings.Builder
	c.Expose(&b)
	want := "# HELP fsr_test_total Test counter.\n# TYPE fsr_test_total counter\nfsr_test_total 0\n"
	if b.String() != want {
		t.Errorf("zero expose:\n got %q\nwant %q", b.String(), want)
	}
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("Value = %d, want 5", c.Value())
	}
	b.Reset()
	c.Expose(&b)
	if !strings.Contains(b.String(), "fsr_test_total 5\n") {
		t.Errorf("expose after Add: %q", b.String())
	}
}

// TestCounterVecExpose: label rendering, sorted series, and the empty
// label-free zero line match the original registry byte-for-byte.
func TestCounterVecExpose(t *testing.T) {
	c := NewCounterVec("fsr_req_total", "Requests.", "endpoint", "code")
	c.Inc("verify", "200")
	c.Add(2, "load", "200")
	var b strings.Builder
	c.Expose(&b)
	want := "# HELP fsr_req_total Requests.\n# TYPE fsr_req_total counter\n" +
		`fsr_req_total{endpoint="load",code="200"} 2` + "\n" +
		`fsr_req_total{endpoint="verify",code="200"} 1` + "\n"
	if b.String() != want {
		t.Errorf("expose:\n got %q\nwant %q", b.String(), want)
	}
	if c.Value("verify", "200") != 1 {
		t.Errorf("Value = %v", c.Value("verify", "200"))
	}
}

// TestHistogramExpose: cumulative buckets, +Inf, sum/count, and bound
// formatting (0.0001 not 0.000100) as the scrape format requires.
func TestHistogramExpose(t *testing.T) {
	h := NewHistogramVec("fsr_dur_seconds", "Duration.", "mode")
	h.Observe(0.0004, "delta")
	h.Observe(0.3, "delta")
	var b strings.Builder
	h.Expose(&b)
	out := b.String()
	for _, want := range []string{
		`fsr_dur_seconds_bucket{mode="delta",le="0.0001"} 0`,
		`fsr_dur_seconds_bucket{mode="delta",le="0.0005"} 1`,
		`fsr_dur_seconds_bucket{mode="delta",le="0.5"} 2`,
		`fsr_dur_seconds_bucket{mode="delta",le="+Inf"} 2`,
		`fsr_dur_seconds_count{mode="delta"} 2`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("expose missing %q in:\n%s", want, out)
		}
	}
	if h.Count("delta") != 2 {
		t.Errorf("Count = %d", h.Count("delta"))
	}
}

// TestRegistryIdempotent: re-registering the same name returns the same
// instrument; a different type for the same name panics.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("fsr_x_total", "X.")
	b := r.Counter("fsr_x_total", "X.")
	if a != b {
		t.Error("re-registration returned a distinct counter")
	}
	a.Inc()
	if !strings.Contains(r.Expose(), "fsr_x_total 1\n") {
		t.Errorf("registry expose: %q", r.Expose())
	}
	defer func() {
		if recover() == nil {
			t.Error("cross-type re-registration did not panic")
		}
	}()
	r.Gauge("fsr_x_total", "X.")
}

// TestHandlesAllocFree: the pre-resolved vec handles must be safe for
// warm paths — no allocations per Add/Observe.
func TestHandlesAllocFree(t *testing.T) {
	cv := NewCounterVec("fsr_c_total", "C.", "stage")
	ch := cv.With("solve")
	hv := NewHistogramVec("fsr_h_seconds", "H.", "stage")
	hh := hv.With("solve")
	if n := testing.AllocsPerRun(100, func() { ch.Inc() }); n != 0 {
		t.Errorf("CounterHandle.Inc allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(100, func() { hh.Observe(0.001) }); n != 0 {
		t.Errorf("HistogramHandle.Observe allocates %v/op", n)
	}
	if cv.Value("solve") == 0 || hv.Count("solve") == 0 {
		t.Error("handle writes not visible through the vec")
	}
}

// TestGaugeSetMax: the ratchet keeps the maximum under concurrent writes.
func TestGaugeSetMax(t *testing.T) {
	g := NewGauge("fsr_hw", "High water.")
	var wg sync.WaitGroup
	for i := 1; i <= 64; i++ {
		wg.Add(1)
		go func(v float64) { defer wg.Done(); g.SetMax(v) }(float64(i))
	}
	wg.Wait()
	if g.Value() != 64 {
		t.Errorf("SetMax race lost the max: %v", g.Value())
	}
	g.SetMax(10)
	if g.Value() != 64 {
		t.Errorf("SetMax decreased: %v", g.Value())
	}
}

// TestStartSpanDisabledAllocs pins the tentpole's "effectively free"
// requirement: with no tracer installed, StartSpan + End + Attr is zero
// allocations and returns the caller's context unchanged.
func TestStartSpanDisabledAllocs(t *testing.T) {
	ctx := context.Background()
	if got, s := StartSpan(ctx, "solve"); got != ctx || s != nil {
		t.Fatal("disabled StartSpan must return the original context and a nil span")
	}
	n := testing.AllocsPerRun(100, func() {
		_, s := StartSpan(ctx, "solve")
		s.Attr("k", "v")
		s.AttrInt("n", 7)
		s.End()
	})
	if n != 0 {
		t.Errorf("disabled span path allocates %v/op", n)
	}
}

// TestTracerSpans: root spans get distinct tracks, children share the
// parent's track, and the export is well-formed trace-event JSON.
func TestTracerSpans(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	if TracerFromContext(ctx) != tr {
		t.Fatal("TracerFromContext lost the tracer")
	}

	rootCtx, root := StartSpan(ctx, "scenario")
	root.Attr("kind", "gadget-splice")
	root.AttrInt("seed", 42)
	_, child := StartSpan(rootCtx, "solve")
	if child.track != root.track {
		t.Errorf("child track %d != parent track %d", child.track, root.track)
	}
	time.Sleep(time.Millisecond)
	child.End()
	root.End()
	_, other := StartSpan(ctx, "scenario")
	if other.track == root.track {
		t.Error("second root span reused the first root's track")
	}
	other.End()

	if tr.SpanCount() != 3 {
		t.Fatalf("SpanCount = %d, want 3", tr.SpanCount())
	}
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Pid  int               `json:"pid"`
			Tid  int64             `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("exported %d events, want 3", len(doc.TraceEvents))
	}
	byName := map[string]int{}
	for i, e := range doc.TraceEvents {
		if e.Ph != "X" || e.Pid != 1 || e.Dur < 0 {
			t.Errorf("event %d malformed: %+v", i, e)
		}
		if i > 0 && e.Ts < doc.TraceEvents[i-1].Ts {
			t.Errorf("events not sorted by ts at %d", i)
		}
		byName[e.Name]++
	}
	if byName["scenario"] != 2 || byName["solve"] != 1 {
		t.Errorf("span names wrong: %v", byName)
	}
	for _, e := range doc.TraceEvents {
		if e.Name == "scenario" && e.Args["kind"] == "gadget-splice" {
			if e.Args["seed"] != "42" {
				t.Errorf("seed attr = %q", e.Args["seed"])
			}
			if e.Dur < 1000 { // child slept 1ms; parent covers it (µs units)
				t.Errorf("root dur %v µs, want >= 1000", e.Dur)
			}
			return
		}
	}
	t.Error("root span with attributes not found in export")
}

// TestTracerConcurrent: many goroutines tracing concurrently — run under
// -race in CI — must not lose spans.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c, s := StartSpan(ctx, "outer")
				_, in := StartSpan(c, "inner")
				in.End()
				s.End()
			}
		}()
	}
	wg.Wait()
	if got := tr.SpanCount(); got != workers*per*2 {
		t.Errorf("SpanCount = %d, want %d", got, workers*per*2)
	}
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("concurrent export is not valid JSON")
	}
}
