// MountDiagnostics wires the whole diagnosis layer onto one mux — the
// shared entry point for fsr serve and the campaign -metrics-addr
// listener, so both expose the identical surface.
package obs

import (
	"net/http"
	"time"
)

// MountDiagnostics mounts GET /v1/timeseries, GET /v1/flightrecorder, and
// GET /dashboard, enables the runtime collector, and starts a sampler over
// the default registry plus any extra sources (per-server instruments).
// The returned stop function halts the sampler; the handlers keep serving
// whatever window was retained.
func MountDiagnostics(mux *http.ServeMux, interval, window time.Duration, extra ...SampleSource) (stop func()) {
	EnableRuntimeMetrics()
	sources := append([]SampleSource{Default()}, extra...)
	sampler := NewSampler(interval, window, sources...)
	mux.Handle("GET /v1/timeseries", sampler.Handler())
	mux.Handle("GET /v1/flightrecorder", Flight().Handler())
	mux.Handle("GET /dashboard", DashboardHandler())
	return sampler.Start()
}
