package obs

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestFlightDisabledNoOp: a disabled recorder returns a nil op whose whole
// surface is callable, and records nothing.
func TestFlightDisabledNoOp(t *testing.T) {
	f := NewFlightRecorder(8, 4)
	ctx, op := f.StartOp(context.Background(), "analyze", "x")
	if op != nil {
		t.Fatal("disabled recorder returned a live op")
	}
	if TracerFromContext(ctx) != nil {
		t.Error("disabled recorder attached a tracer")
	}
	op.SetSize(3)
	op.SetVerdict("safe")
	op.Counter("probes", 7)
	op.Finish()
	if snap := f.Snapshot(); snap.Total != 0 || len(snap.Ops) != 0 {
		t.Errorf("disabled recorder recorded: %+v", snap)
	}
}

// TestFlightWraparound: the ring keeps exactly the newest `size` records,
// snapshot orders them newest-first, and Total counts everything ever seen.
func TestFlightWraparound(t *testing.T) {
	f := NewFlightRecorder(4, 2)
	f.Enable(true)
	for i := 0; i < 10; i++ {
		_, op := f.StartOp(context.Background(), "analyze", "g")
		op.SetSize(i)
		op.SetVerdict("safe")
		op.Finish()
	}
	snap := f.Snapshot()
	if snap.Total != 10 {
		t.Fatalf("Total = %d, want 10", snap.Total)
	}
	if len(snap.Ops) != 4 {
		t.Fatalf("ring holds %d records, want 4", len(snap.Ops))
	}
	for i, rec := range snap.Ops {
		want := uint64(9 - i)
		if rec.Seq != want {
			t.Errorf("ops[%d].Seq = %d, want %d (newest first)", i, rec.Seq, want)
		}
	}
	if snap.Ops[0].Size != 9 {
		t.Errorf("newest record Size = %d, want 9", snap.Ops[0].Size)
	}
}

// TestFlightCountersAndVerdict: counters land on the record, zero values
// are dropped, and the verdict survives.
func TestFlightCountersAndVerdict(t *testing.T) {
	f := NewFlightRecorder(8, 4)
	f.Enable(true)
	_, op := f.StartOp(context.Background(), "verify", "inst-1")
	op.SetSize(42)
	op.SetVerdict("delta/safe")
	op.Counter("probes", 100)
	op.Counter("relaxations", 0) // dropped
	op.Counter("components", 7)
	op.Finish()
	rec := f.Snapshot().Ops[0]
	if rec.Kind != "verify" || rec.Detail != "inst-1" || rec.Size != 42 || rec.Verdict != "delta/safe" {
		t.Errorf("record fields wrong: %+v", rec)
	}
	if rec.Counters["probes"] != 100 || rec.Counters["components"] != 7 {
		t.Errorf("counters wrong: %v", rec.Counters)
	}
	if _, ok := rec.Counters["relaxations"]; ok {
		t.Error("zero counter retained")
	}
}

// TestFlightSlowOpSpanTree: an op past the threshold lands in the slow
// ring with its full span tree; a fast op does not.
func TestFlightSlowOpSpanTree(t *testing.T) {
	f := NewFlightRecorder(8, 4)
	f.Enable(true)
	f.SetSlowThreshold(time.Nanosecond) // everything is slow

	ctx, op := f.StartOp(context.Background(), "analyze-spp", "big")
	_, child := StartSpan(ctx, "solve")
	child.AttrInt("nodes", 5000)
	child.End()
	time.Sleep(time.Millisecond)
	op.Finish()

	snap := f.Snapshot()
	if snap.SlowTotal != 1 || len(snap.Slow) != 1 {
		t.Fatalf("slow ring: total %d, %d entries, want 1/1", snap.SlowTotal, len(snap.Slow))
	}
	slow := snap.Slow[0]
	if !slow.Slow {
		t.Error("slow record not marked slow in the main ring")
	}
	if len(slow.Spans) != 1 || slow.Spans[0].Name != "analyze-spp" {
		t.Fatalf("span tree root wrong: %+v", slow.Spans)
	}
	kids := slow.Spans[0].Children
	if len(kids) != 1 || kids[0].Name != "solve" {
		t.Fatalf("child span missing: %+v", kids)
	}

	// Raise the bar: the next op is fast and stays out of the slow ring.
	f.SetSlowThreshold(time.Hour)
	_, fastOp := f.StartOp(context.Background(), "analyze", "small")
	fastOp.Finish()
	snap = f.Snapshot()
	if snap.SlowTotal != 1 {
		t.Errorf("fast op entered slow ring: total %d", snap.SlowTotal)
	}
	if snap.Ops[0].Slow {
		t.Error("fast op marked slow")
	}
}

// TestFlightExistingTracerNotCaptured: when the context already carries a
// tracer (the caller is running under -trace-out), the op must not steal
// its spans into the slow ring.
func TestFlightExistingTracerNotCaptured(t *testing.T) {
	f := NewFlightRecorder(8, 4)
	f.Enable(true)
	f.SetSlowThreshold(time.Nanosecond)
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	_, op := f.StartOp(ctx, "analyze", "traced")
	time.Sleep(time.Millisecond)
	op.Finish()
	snap := f.Snapshot()
	if snap.SlowTotal != 0 {
		t.Errorf("op with a caller-owned tracer entered the slow ring: %+v", snap.Slow)
	}
	if snap.Ops[0].Slow {
		t.Error("record marked slow without a captured span tree")
	}
}

// TestFlightConcurrent: hammer record and snapshot concurrently; run under
// -race. Every snapshot must be internally consistent (seqs strictly
// descending, ring bounded).
func TestFlightConcurrent(t *testing.T) {
	f := NewFlightRecorder(16, 4)
	f.Enable(true)
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				_, op := f.StartOp(context.Background(), "analyze", "c")
				op.SetSize(i)
				op.Counter("probes", int64(i))
				op.Finish()
			}
		}()
	}
	readDone := make(chan struct{})
	go func() {
		defer close(readDone)
		for i := 0; i < 100; i++ {
			snap := f.Snapshot()
			if len(snap.Ops) > 16 {
				t.Errorf("ring overgrew: %d", len(snap.Ops))
				return
			}
			for j := 1; j < len(snap.Ops); j++ {
				if snap.Ops[j-1].Seq <= snap.Ops[j].Seq {
					t.Errorf("snapshot not newest-first at %d: %d then %d",
						j, snap.Ops[j-1].Seq, snap.Ops[j].Seq)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-readDone
	if got := f.Snapshot().Total; got != workers*perWorker {
		t.Errorf("Total = %d, want %d", got, workers*perWorker)
	}
}

// TestFlightHandler: the HTTP handler serves a decodable snapshot.
func TestFlightHandler(t *testing.T) {
	f := NewFlightRecorder(8, 4)
	f.Enable(true)
	_, op := f.StartOp(context.Background(), "scenario", "churn-flap")
	op.SetVerdict("agreement")
	op.Finish()

	rr := httptest.NewRecorder()
	f.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/v1/flightrecorder", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var snap FlightSnapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("payload does not decode: %v", err)
	}
	if !snap.Enabled || snap.Total != 1 || len(snap.Ops) != 1 || snap.Ops[0].Kind != "scenario" {
		t.Errorf("snapshot wrong: %+v", snap)
	}
}

// BenchmarkFlightDisabled: the disabled path must stay alloc-free — one
// atomic load, nil op, no-op methods.
func BenchmarkFlightDisabled(b *testing.B) {
	f := NewFlightRecorder(256, 32)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, op := f.StartOp(ctx, "analyze", "g")
		op.SetSize(5)
		op.SetVerdict("safe")
		op.Finish()
	}
}
