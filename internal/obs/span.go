// Context-propagated span tracing with a zero-cost disabled path and
// Chrome trace-event JSON export (load the output in Perfetto or
// chrome://tracing).
//
// A Tracer is installed on a context with WithTracer; StartSpan then
// returns a child context plus a *Span whose End records a completed
// ("ph":"X") event. With no tracer installed StartSpan returns a nil
// span, every method of which is a nil-receiver no-op — the whole
// disabled path is two context lookups and zero allocations, pinned by
// TestStartSpanDisabledAllocs.
//
// Root spans (no span in the context) get a fresh track, rendered as a
// Perfetto thread row; child spans nest on their parent's track. Ended
// spans land in one of 16 mutex-sharded buffers keyed by track, so
// campaign workers on distinct tracks almost never contend.
package obs

import (
	"context"
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

const traceShards = 16

// Tracer collects spans for one traced operation (an analyze call, a
// campaign run). Safe for concurrent use.
type Tracer struct {
	start     time.Time
	nextTrack atomic.Int64
	shards    [traceShards]traceShard
}

type traceShard struct {
	mu     sync.Mutex
	events []spanEvent
}

type spanEvent struct {
	name  string
	track int64
	start time.Duration
	dur   time.Duration
	attrs []spanAttr
}

type spanAttr struct{ key, val string }

// NewTracer returns a tracer whose clock starts now.
func NewTracer() *Tracer { return &Tracer{start: time.Now()} }

// Span is one in-flight traced operation. A nil *Span (tracing disabled)
// is valid: every method is a no-op.
type Span struct {
	tracer *Tracer
	name   string
	track  int64
	start  time.Duration
	attrs  []spanAttr
}

type tracerKey struct{}
type spanKey struct{}

// WithTracer installs tr as the context's trace collector; descendant
// StartSpan calls record into it. A nil tr disables tracing.
func WithTracer(ctx context.Context, tr *Tracer) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey{}, tr)
}

// TracerFromContext reports the installed tracer, or nil.
func TracerFromContext(ctx context.Context) *Tracer {
	tr, _ := ctx.Value(tracerKey{}).(*Tracer)
	return tr
}

// StartSpan begins a span named name. If the context carries a span the
// new one nests on the same track; otherwise, if it carries a tracer, a
// new root track is allocated; otherwise tracing is disabled and the
// original context plus a nil span are returned at zero cost.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(spanKey{}).(*Span)
	var tr *Tracer
	var track int64
	if parent != nil {
		tr, track = parent.tracer, parent.track
	} else {
		tr = TracerFromContext(ctx)
		if tr == nil {
			return ctx, nil
		}
		track = tr.nextTrack.Add(1)
	}
	s := &Span{tracer: tr, name: name, track: track, start: time.Since(tr.start)}
	return context.WithValue(ctx, spanKey{}, s), s
}

// Attr attaches a string attribute; shown under "args" in the trace
// viewer. No-op on a nil span.
func (s *Span) Attr(key, val string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, spanAttr{key, val})
}

// AttrInt attaches an integer attribute. No-op on a nil span.
func (s *Span) AttrInt(key string, v int64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, spanAttr{key, strconv.FormatInt(v, 10)})
}

// End completes the span and records it. No-op on a nil span.
func (s *Span) End() {
	if s == nil {
		return
	}
	dur := time.Since(s.tracer.start) - s.start
	sh := &s.tracer.shards[s.track%traceShards]
	sh.mu.Lock()
	sh.events = append(sh.events, spanEvent{
		name: s.name, track: s.track, start: s.start, dur: dur, attrs: s.attrs,
	})
	sh.mu.Unlock()
}

// traceEvent is one Chrome trace-event object ("ph":"X" complete event;
// ts and dur in microseconds).
type traceEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int64             `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteTrace renders every recorded span as Chrome trace-event JSON
// ({"traceEvents":[...]}), ordered by start time. The tracer remains
// usable; spans recorded after the call are simply not in this export.
func (t *Tracer) WriteTrace(w io.Writer) error {
	var all []spanEvent
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		all = append(all, sh.events...)
		sh.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].start != all[j].start {
			return all[i].start < all[j].start
		}
		return all[i].track < all[j].track
	})
	events := make([]traceEvent, len(all))
	for i, e := range all {
		ev := traceEvent{
			Name: e.name,
			Ph:   "X",
			Ts:   float64(e.start) / float64(time.Microsecond),
			Dur:  float64(e.dur) / float64(time.Microsecond),
			Pid:  1,
			Tid:  e.track,
		}
		if len(e.attrs) > 0 {
			ev.Args = make(map[string]string, len(e.attrs))
			for _, a := range e.attrs {
				ev.Args[a.key] = a.val
			}
		}
		events[i] = ev
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string][]traceEvent{"traceEvents": events})
}

// SpanNode is one span in a nested tree rendering of a trace — the form
// the flight recorder retains for slow operations, inspectable as JSON
// without loading a trace viewer.
type SpanNode struct {
	Name     string            `json:"name"`
	StartUS  float64           `json:"start_us"`
	DurUS    float64           `json:"dur_us"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []*SpanNode       `json:"children,omitempty"`
}

// SpanTree renders every recorded span as a forest nested by containment:
// spans on the same track whose intervals enclose a later span become its
// ancestors (exactly how StartSpan nests children on the parent's track).
// Roots are ordered by start time across tracks.
func (t *Tracer) SpanTree() []*SpanNode {
	var all []spanEvent
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		all = append(all, sh.events...)
		sh.mu.Unlock()
	}
	// Within a track, sort by start ascending and duration descending so a
	// parent precedes the children it encloses even when they share a
	// start instant.
	sort.Slice(all, func(i, j int) bool {
		if all[i].track != all[j].track {
			return all[i].track < all[j].track
		}
		if all[i].start != all[j].start {
			return all[i].start < all[j].start
		}
		return all[i].dur > all[j].dur
	})
	var roots []*SpanNode
	var stack []*SpanNode // enclosing spans of the current track
	var ends []time.Duration
	lastTrack := int64(-1)
	for _, e := range all {
		if e.track != lastTrack {
			stack, ends = stack[:0], ends[:0]
			lastTrack = e.track
		}
		n := &SpanNode{
			Name:    e.name,
			StartUS: float64(e.start) / float64(time.Microsecond),
			DurUS:   float64(e.dur) / float64(time.Microsecond),
		}
		if len(e.attrs) > 0 {
			n.Attrs = make(map[string]string, len(e.attrs))
			for _, a := range e.attrs {
				n.Attrs[a.key] = a.val
			}
		}
		for len(stack) > 0 && e.start >= ends[len(ends)-1] {
			stack, ends = stack[:len(stack)-1], ends[:len(ends)-1]
		}
		if len(stack) > 0 {
			p := stack[len(stack)-1]
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
		stack = append(stack, n)
		ends = append(ends, e.start+e.dur)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].StartUS < roots[j].StartUS })
	return roots
}

// SpanCount reports how many spans have been recorded, for tests and
// progress reporting.
func (t *Tracer) SpanCount() int {
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		n += len(sh.events)
		sh.mu.Unlock()
	}
	return n
}
