package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// fakeSource scripts the samples each scrape sees.
type fakeSource struct{ samples []Sample }

func (f *fakeSource) Samples() []Sample { return f.samples }

func seriesByName(t *testing.T, s *Sampler, name string) Series {
	t.Helper()
	for _, sr := range s.Snapshot() {
		if sr.Name == name {
			return sr
		}
	}
	t.Fatalf("series %q not retained (have %v)", name, seriesNames(s))
	return Series{}
}

func seriesNames(s *Sampler) []string {
	var out []string
	for _, sr := range s.Snapshot() {
		out = append(out, sr.Name)
	}
	return out
}

// TestSamplerCounterRate: the first scrape only establishes the baseline;
// subsequent scrapes derive per-second rates from deltas; a counter reset
// yields the post-reset total as the delta, never a negative rate.
func TestSamplerCounterRate(t *testing.T) {
	src := &fakeSource{}
	s := NewSampler(time.Second, time.Minute, src)
	t0 := time.Unix(1000, 0)

	src.samples = []Sample{{Name: "fsr_ops_total", Kind: "counter", Value: 100}}
	s.sampleOnce(t0)
	if names := seriesNames(s); len(names) != 0 {
		t.Fatalf("baseline scrape emitted points: %v", names)
	}

	src.samples = []Sample{{Name: "fsr_ops_total", Kind: "counter", Value: 150}}
	s.sampleOnce(t0.Add(2 * time.Second))
	sr := seriesByName(t, s, "fsr_ops_total")
	if sr.Kind != "rate" || len(sr.Points) != 1 {
		t.Fatalf("series = %+v, want one rate point", sr)
	}
	if got := sr.Points[0].V; got != 25 { // 50 ops over 2s
		t.Errorf("rate = %v, want 25", got)
	}

	// Counter reset: 150 → 30 means 30 new ops since the reset.
	src.samples = []Sample{{Name: "fsr_ops_total", Kind: "counter", Value: 30}}
	s.sampleOnce(t0.Add(4 * time.Second))
	sr = seriesByName(t, s, "fsr_ops_total")
	if got := sr.Points[len(sr.Points)-1].V; got != 15 { // 30 over 2s
		t.Errorf("post-reset rate = %v, want 15", got)
	}
}

// TestSamplerWindowEviction: points age out of the window, and a series
// with no surviving points disappears entirely.
func TestSamplerWindowEviction(t *testing.T) {
	src := &fakeSource{samples: []Sample{{Name: "fsr_resident", Kind: "gauge", Value: 1}}}
	s := NewSampler(time.Second, 10*time.Second, src)
	t0 := time.Unix(2000, 0)
	for i := 0; i < 5; i++ {
		s.sampleOnce(t0.Add(time.Duration(i) * time.Second))
	}
	if got := len(seriesByName(t, s, "fsr_resident").Points); got != 5 {
		t.Fatalf("retained %d points, want 5", got)
	}
	// Jump past the window: the old points must all evict, the new scrape's
	// point survives.
	s.sampleOnce(t0.Add(30 * time.Second))
	sr := seriesByName(t, s, "fsr_resident")
	if len(sr.Points) != 1 || sr.Points[0].T != t0.Add(30*time.Second).UnixMilli() {
		t.Errorf("eviction kept %+v, want only the newest point", sr.Points)
	}

	// A source that stops reporting ages its series out of the map.
	src.samples = nil
	s.sampleOnce(t0.Add(50 * time.Second))
	if names := seriesNames(s); len(names) != 0 {
		t.Errorf("stale series survived eviction: %v", names)
	}
}

// TestSamplerHistogram: histograms derive an observation rate plus p50/p99
// interpolated from the interval's bucket deltas.
func TestSamplerHistogram(t *testing.T) {
	bounds := []float64{0.1, 1, 10}
	src := &fakeSource{samples: []Sample{{
		Name: "fsr_verify_seconds", Kind: "histogram",
		Buckets: bounds, Counts: []uint64{0, 0, 0}, Count: 0,
	}}}
	s := NewSampler(time.Second, time.Minute, src)
	t0 := time.Unix(3000, 0)
	s.sampleOnce(t0) // baseline

	// 100 observations this interval, all in (0.1, 1].
	src.samples = []Sample{{
		Name: "fsr_verify_seconds", Kind: "histogram",
		Buckets: bounds, Counts: []uint64{0, 100, 0}, Count: 100,
	}}
	s.sampleOnce(t0.Add(time.Second))

	if got := seriesByName(t, s, "fsr_verify_seconds_rate").Points[0].V; got != 100 {
		t.Errorf("observation rate = %v, want 100", got)
	}
	p50 := seriesByName(t, s, "fsr_verify_seconds_p50").Points[0].V
	if p50 <= 0.1 || p50 > 1 {
		t.Errorf("p50 = %v, want inside (0.1, 1]", p50)
	}
	p99 := seriesByName(t, s, "fsr_verify_seconds_p99").Points[0].V
	if p99 <= p50 || p99 > 1 {
		t.Errorf("p99 = %v, want (p50, 1]", p99)
	}
}

// TestQuantileEdges: the interpolator's boundary behavior.
func TestQuantileEdges(t *testing.T) {
	bounds := []float64{1, 2, 4}
	if got := quantile(0.5, nil, nil, 0); got != 0 {
		t.Errorf("empty histogram: %v, want 0", got)
	}
	// All mass beyond the last finite bound clamps to it.
	if got := quantile(0.5, bounds, []uint64{0, 0, 0}, 10); got != 4 {
		t.Errorf("+Inf bucket: %v, want clamp to 4", got)
	}
	// Uniform mass in the first bucket: median is mid-bucket.
	if got := quantile(0.5, bounds, []uint64{10, 0, 0}, 10); got != 0.5 {
		t.Errorf("first-bucket median: %v, want 0.5", got)
	}
}

// TestSamplerHandler: /v1/timeseries serves interval, window, and the
// retained series as JSON.
func TestSamplerHandler(t *testing.T) {
	src := &fakeSource{samples: []Sample{{Name: "fsr_resident", Kind: "gauge", Value: 3}}}
	s := NewSampler(2*time.Second, time.Minute, src)
	s.sampleOnce(time.Unix(4000, 0))

	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/v1/timeseries", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	var payload struct {
		IntervalMS int64    `json:"interval_ms"`
		WindowMS   int64    `json:"window_ms"`
		Series     []Series `json:"series"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &payload); err != nil {
		t.Fatalf("payload does not decode: %v", err)
	}
	if payload.IntervalMS != 2000 || payload.WindowMS != 60000 {
		t.Errorf("interval/window = %d/%d, want 2000/60000", payload.IntervalMS, payload.WindowMS)
	}
	if len(payload.Series) != 1 || payload.Series[0].Name != "fsr_resident" ||
		len(payload.Series[0].Points) != 1 || payload.Series[0].Points[0].V != 3 {
		t.Errorf("series payload wrong: %+v", payload.Series)
	}
}

// TestDashboardHandler: the dashboard is a self-contained HTML page that
// references the two JSON endpoints it renders.
func TestDashboardHandler(t *testing.T) {
	rr := httptest.NewRecorder()
	DashboardHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/dashboard", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("Content-Type = %q", ct)
	}
	body := rr.Body.String()
	for _, want := range []string{"<!DOCTYPE html>", "/v1/timeseries", "/v1/flightrecorder"} {
		if !strings.Contains(body, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
}
