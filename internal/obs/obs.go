// Package obs is the dependency-free observability core shared by every
// fsr subsystem: a Prometheus-text metrics registry (counters, gauges,
// histograms, with labels) and a context-propagated span tracer that
// exports Chrome trace-event JSON (span.go). The package sits below
// everything else — it imports only the standard library, so the solver,
// simulator, analysis, scenario, and server layers can all record into
// the same process-global registry without import cycles.
//
// Two kinds of instruments coexist:
//
//   - Counter and Gauge are single label-free series on atomics. They are
//     the hot-path instruments: Add/Set are one atomic op, alloc-free, and
//     safe to call from the solver inner loop.
//   - CounterVec and HistogramVec are labeled families behind a mutex,
//     ported from the daemon's original registry so the rendered text is
//     byte-identical. Their With method returns a pre-resolved handle
//     whose Add/Observe skips label rendering, for per-call use on warm
//     paths.
//
// Everything is off by default in the sense that recording into an
// unscraped registry costs a few atomic ops; the span tracer in span.go
// additionally has a true zero-cost disabled path.
package obs

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// labelSet renders label names/values as they appear inside the braces of
// a sample line: `endpoint="verify",code="200"`. Series are keyed by this
// rendering, which is stable because callers pass values positionally.
func labelSet(names, vals []string) string {
	if len(names) != len(vals) {
		panic(fmt.Sprintf("obs: %d label(s) want %d value(s)", len(names), len(vals)))
	}
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", n, vals[i])
	}
	return b.String()
}

// Counter is a label-free monotonic counter on an atomic int64 — cheap
// enough for solver and simulator hot paths.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// NewCounter returns an unregistered counter; prefer Registry.Counter.
func NewCounter(name, help string) *Counter { return &Counter{name: name, help: help} }

func (c *Counter) Inc() { c.v.Add(1) }

func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("obs: counter decrease")
	}
	c.v.Add(delta)
}

func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) metricName() string { return c.name }

func (c *Counter) Expose(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.v.Load())
}

// Gauge is a label-free settable value on atomic float bits.
type Gauge struct {
	name, help string
	bits       atomic.Uint64
}

// NewGauge returns an unregistered gauge; prefer Registry.Gauge.
func NewGauge(name, help string) *Gauge { return &Gauge{name: name, help: help} }

func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetMax ratchets the gauge up to v if v exceeds the current value — the
// natural operation for high-water marks recorded from many goroutines.
func (g *Gauge) SetMax(v float64) {
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) metricName() string { return g.name }

func (g *Gauge) Expose(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", g.name, g.help, g.name, g.name, g.Value())
}

// CounterVec is a monotonically increasing counter family with labels.
type CounterVec struct {
	name, help string
	labels     []string
	mu         sync.Mutex
	vals       map[string]float64
}

// NewCounterVec returns an unregistered family; prefer Registry.CounterVec.
func NewCounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{name: name, help: help, labels: labels, vals: map[string]float64{}}
}

func (c *CounterVec) Add(delta float64, labelVals ...string) {
	if delta < 0 {
		panic("obs: counter decrease")
	}
	key := labelSet(c.labels, labelVals)
	c.mu.Lock()
	c.vals[key] += delta
	c.mu.Unlock()
}

func (c *CounterVec) Inc(labelVals ...string) { c.Add(1, labelVals...) }

// Value reads one series (zero if never touched) — for tests and health
// reporting.
func (c *CounterVec) Value(labelVals ...string) float64 {
	key := labelSet(c.labels, labelVals)
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.vals[key]
}

// With pre-resolves one series so repeated Adds skip label rendering.
func (c *CounterVec) With(labelVals ...string) *CounterHandle {
	key := labelSet(c.labels, labelVals)
	c.mu.Lock()
	c.vals[key] += 0 // materialize the series so it exposes as 0
	c.mu.Unlock()
	return &CounterHandle{vec: c, key: key}
}

// CounterHandle is one pre-resolved series of a CounterVec. Add is
// alloc-free.
type CounterHandle struct {
	vec *CounterVec
	key string
}

func (h *CounterHandle) Add(delta float64) {
	if delta < 0 {
		panic("obs: counter decrease")
	}
	h.vec.mu.Lock()
	h.vec.vals[h.key] += delta
	h.vec.mu.Unlock()
}

func (h *CounterHandle) Inc() { h.Add(1) }

func (c *CounterVec) metricName() string { return c.name }

func (c *CounterVec) Expose(b *strings.Builder) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n", c.name, c.help, c.name)
	for _, key := range sortedKeys(c.vals) {
		if key == "" {
			fmt.Fprintf(b, "%s %v\n", c.name, c.vals[key])
		} else {
			fmt.Fprintf(b, "%s{%s} %v\n", c.name, key, c.vals[key])
		}
	}
	if len(c.vals) == 0 && len(c.labels) == 0 {
		fmt.Fprintf(b, "%s 0\n", c.name)
	}
}

// DefBuckets spans sub-millisecond delta solves to multi-second full
// rebuilds of paper-scale instances.
var DefBuckets = []float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10}

// HistogramVec is a cumulative-bucket histogram family.
type HistogramVec struct {
	name, help string
	labels     []string
	buckets    []float64
	mu         sync.Mutex
	series     map[string]*histSeries
}

type histSeries struct {
	counts []uint64 // one per bucket, cumulative at expose time only
	sum    float64
	count  uint64
}

// NewHistogramVec returns an unregistered family with DefBuckets; prefer
// Registry.HistogramVec.
func NewHistogramVec(name, help string, labels ...string) *HistogramVec {
	return &HistogramVec{name: name, help: help, labels: labels,
		buckets: DefBuckets, series: map[string]*histSeries{}}
}

func (h *HistogramVec) Observe(v float64, labelVals ...string) {
	key := labelSet(h.labels, labelVals)
	h.mu.Lock()
	defer h.mu.Unlock()
	h.observeLocked(h.seriesLocked(key), v)
}

func (h *HistogramVec) seriesLocked(key string) *histSeries {
	s := h.series[key]
	if s == nil {
		s = &histSeries{counts: make([]uint64, len(h.buckets))}
		h.series[key] = s
	}
	return s
}

func (h *HistogramVec) observeLocked(s *histSeries, v float64) {
	for i, ub := range h.buckets {
		if v <= ub {
			s.counts[i]++
			break
		}
	}
	s.sum += v
	s.count++
}

// Count reads one series' observation count, for tests.
func (h *HistogramVec) Count(labelVals ...string) uint64 {
	key := labelSet(h.labels, labelVals)
	h.mu.Lock()
	defer h.mu.Unlock()
	if s := h.series[key]; s != nil {
		return s.count
	}
	return 0
}

// With pre-resolves one series so repeated Observes skip label rendering
// and the map lookup. Observe on the handle is alloc-free.
func (h *HistogramVec) With(labelVals ...string) *HistogramHandle {
	key := labelSet(h.labels, labelVals)
	h.mu.Lock()
	s := h.seriesLocked(key)
	h.mu.Unlock()
	return &HistogramHandle{vec: h, s: s}
}

// HistogramHandle is one pre-resolved series of a HistogramVec.
type HistogramHandle struct {
	vec *HistogramVec
	s   *histSeries
}

func (hh *HistogramHandle) Observe(v float64) {
	hh.vec.mu.Lock()
	hh.vec.observeLocked(hh.s, v)
	hh.vec.mu.Unlock()
}

func (h *HistogramVec) metricName() string { return h.name }

func (h *HistogramVec) Expose(b *strings.Builder) {
	h.mu.Lock()
	defer h.mu.Unlock()
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help, h.name)
	for _, key := range sortedKeys(h.series) {
		s := h.series[key]
		sep := ""
		if key != "" {
			sep = key + ","
		}
		cum := uint64(0)
		for i, ub := range h.buckets {
			cum += s.counts[i]
			fmt.Fprintf(b, "%s_bucket{%sle=%q} %d\n", h.name, sep, FormatBound(ub), cum)
		}
		fmt.Fprintf(b, "%s_bucket{%sle=\"+Inf\"} %d\n", h.name, sep, s.count)
		if key == "" {
			fmt.Fprintf(b, "%s_sum %v\n%s_count %d\n", h.name, s.sum, h.name, s.count)
		} else {
			fmt.Fprintf(b, "%s_sum{%s} %v\n%s_count{%s} %d\n", h.name, key, s.sum, h.name, key, s.count)
		}
	}
}

// FormatBound renders a bucket upper bound the way Prometheus clients do:
// %f with trailing zeros (and a bare trailing dot) trimmed.
func FormatBound(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", v), "0"), ".")
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Sample is one series' instantaneous value in structured form — the
// machine-readable counterpart of the text exposition, consumed by the
// time-series sampler (tsdb.go) and anything else that wants numbers
// without re-parsing Prometheus text. For histograms, Buckets holds the
// finite upper bounds and Counts the per-bucket (non-cumulative)
// observation counts; Count and Sum are the series totals.
type Sample struct {
	Name   string
	Labels string // rendered label set, "" when label-free
	Kind   string // "counter", "gauge", or "histogram"
	Value  float64
	// Histogram-only fields.
	Buckets []float64
	Counts  []uint64
	Count   uint64
	Sum     float64
}

// Key names the sample's series uniquely: name{labels}.
func (s Sample) Key() string {
	if s.Labels == "" {
		return s.Name
	}
	return s.Name + "{" + s.Labels + "}"
}

// SampleSource is anything that can report its series as structured
// samples: a Registry, or an individual instrument (every obs instrument
// implements it, so unregistered per-server metrics can feed the same
// sampler as the process-global registry).
type SampleSource interface {
	Samples() []Sample
}

// Samples reports the counter as a one-element sample set.
func (c *Counter) Samples() []Sample {
	return []Sample{{Name: c.name, Kind: "counter", Value: float64(c.v.Load())}}
}

// Samples reports the gauge as a one-element sample set.
func (g *Gauge) Samples() []Sample {
	return []Sample{{Name: g.name, Kind: "gauge", Value: g.Value()}}
}

// Samples reports one sample per materialized series.
func (c *CounterVec) Samples() []Sample {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Sample, 0, len(c.vals))
	for _, key := range sortedKeys(c.vals) {
		out = append(out, Sample{Name: c.name, Labels: key, Kind: "counter", Value: c.vals[key]})
	}
	return out
}

// Samples reports one sample per materialized series, with bucket data.
func (h *HistogramVec) Samples() []Sample {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Sample, 0, len(h.series))
	for _, key := range sortedKeys(h.series) {
		s := h.series[key]
		out = append(out, Sample{
			Name: h.name, Labels: key, Kind: "histogram",
			Buckets: h.buckets, Counts: append([]uint64(nil), s.counts...),
			Count: s.count, Sum: s.sum,
		})
	}
	return out
}

// metric is anything the registry can expose.
type metric interface {
	metricName() string
	Expose(b *strings.Builder)
	Samples() []Sample
}

// Registry is an ordered collection of metrics. Registration is
// idempotent by name: asking for an existing name with the same
// constructor returns the existing instrument, so independent packages
// can share a series without coordinating initialization order.
type Registry struct {
	mu     sync.Mutex
	byName map[string]metric
	order  []metric
	hooks  []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{byName: map[string]metric{}} }

var defaultRegistry = NewRegistry()

// Default is the process-global registry every subsystem records into.
func Default() *Registry { return defaultRegistry }

func register[M metric](r *Registry, name string, mk func() M) M {
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.byName[name]; ok {
		m, ok := existing.(M)
		if !ok {
			panic(fmt.Sprintf("obs: %s re-registered as a different metric type", name))
		}
		return m
	}
	m := mk()
	r.byName[name] = m
	r.order = append(r.order, m)
	return m
}

// Counter registers (or returns the existing) label-free counter.
func (r *Registry) Counter(name, help string) *Counter {
	return register(r, name, func() *Counter { return NewCounter(name, help) })
}

// Gauge registers (or returns the existing) label-free gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return register(r, name, func() *Gauge { return NewGauge(name, help) })
}

// CounterVec registers (or returns the existing) labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return register(r, name, func() *CounterVec { return NewCounterVec(name, help, labels...) })
}

// HistogramVec registers (or returns the existing) labeled histogram
// family.
func (r *Registry) HistogramVec(name, help string, labels ...string) *HistogramVec {
	return register(r, name, func() *HistogramVec { return NewHistogramVec(name, help, labels...) })
}

// AddHook registers f to run at the start of every Expose and Samples
// call — the seam lazy collectors (runtime stats) use to refresh their
// gauges only when someone is actually looking.
func (r *Registry) AddHook(f func()) {
	r.mu.Lock()
	r.hooks = append(r.hooks, f)
	r.mu.Unlock()
}

// runHooks snapshots and runs the hooks outside the registry lock (hooks
// set gauges, which synchronize on their own atomics).
func (r *Registry) runHooks() {
	r.mu.Lock()
	hooks := r.hooks
	r.mu.Unlock()
	for _, f := range hooks {
		f()
	}
}

// Expose renders every registered metric, in registration order, in
// Prometheus text exposition format.
func (r *Registry) Expose() string {
	r.runHooks()
	r.mu.Lock()
	metrics := append([]metric(nil), r.order...)
	r.mu.Unlock()
	var b strings.Builder
	for _, m := range metrics {
		m.Expose(&b)
	}
	return b.String()
}

// Samples reports every registered series as structured samples, in
// registration order.
func (r *Registry) Samples() []Sample {
	r.runHooks()
	r.mu.Lock()
	metrics := append([]metric(nil), r.order...)
	r.mu.Unlock()
	var out []Sample
	for _, m := range metrics {
		out = append(out, m.Samples()...)
	}
	return out
}

// Handler serves the registry as a Prometheus scrape target.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, r.Expose())
	})
}
