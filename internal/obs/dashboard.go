// Zero-dependency live dashboard: one embedded HTML page that polls
// /v1/timeseries and /v1/flightrecorder and renders inline SVG sparklines
// — no bundler, no CDN, no external assets, so it works on an air-gapped
// operator box exactly as well as on a laptop.
package obs

import "net/http"

// DashboardHandler serves the live dashboard page. It expects
// /v1/timeseries and /v1/flightrecorder to be mounted on the same host
// (MountDiagnostics does all three).
func DashboardHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write([]byte(dashboardHTML))
	})
}

const dashboardHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>fsr dashboard</title>
<style>
  body { font: 13px/1.4 ui-monospace, SFMono-Regular, Menlo, monospace;
         background: #0d1117; color: #c9d1d9; margin: 0; padding: 16px; }
  h1 { font-size: 15px; margin: 0 0 4px; color: #e6edf3; }
  .sub { color: #8b949e; margin-bottom: 16px; }
  h2 { font-size: 13px; margin: 20px 0 8px; color: #e6edf3;
       border-bottom: 1px solid #21262d; padding-bottom: 4px; }
  .grid { display: grid; grid-template-columns: repeat(auto-fill, minmax(280px, 1fr)); gap: 10px; }
  .panel { background: #161b22; border: 1px solid #21262d; border-radius: 6px; padding: 8px 10px; }
  .panel .name { color: #8b949e; font-size: 11px; overflow: hidden;
                 text-overflow: ellipsis; white-space: nowrap; }
  .panel .val { font-size: 16px; color: #e6edf3; }
  .panel svg { display: block; width: 100%; height: 36px; margin-top: 4px; }
  .spark { stroke: #58a6ff; stroke-width: 1.2; fill: none; }
  .fill  { fill: #58a6ff22; stroke: none; }
  table { border-collapse: collapse; width: 100%; }
  th, td { text-align: left; padding: 2px 10px 2px 0; white-space: nowrap; }
  th { color: #8b949e; font-weight: normal; }
  .slow { color: #f85149; }
  .ok { color: #3fb950; }
  details { margin: 2px 0; }
  pre { color: #8b949e; margin: 2px 0 2px 16px; }
  #err { color: #f85149; }
</style>
</head>
<body>
<h1>fsr — live pipeline dashboard</h1>
<div class="sub">polls <code>/v1/timeseries</code> and <code>/v1/flightrecorder</code> every 2s
  · <span id="err"></span><span id="stamp"></span></div>

<h2>pinned</h2><div id="pinned" class="grid"></div>
<h2>recent operations <span id="opstat" class="sub"></span></h2><div id="flight"></div>
<h2>slow operations (span trees retained)</h2><div id="slow"></div>
<h2>all series</h2><div id="all" class="grid"></div>

<script>
"use strict";
const fmt = v => {
  if (!isFinite(v)) return "-";
  const a = Math.abs(v);
  if (a >= 1e9) return (v/1e9).toFixed(1)+"G";
  if (a >= 1e6) return (v/1e6).toFixed(1)+"M";
  if (a >= 1e3) return (v/1e3).toFixed(1)+"k";
  if (a >= 1 || a === 0) return v.toFixed(a >= 100 ? 0 : 2);
  if (a >= 1e-3) return (v*1e3).toFixed(2)+"m";
  return (v*1e6).toFixed(1)+"µ";
};
function spark(pts) {
  if (!pts || pts.length < 2) return "<svg></svg>";
  const w = 280, h = 36, pad = 2;
  let lo = Infinity, hi = -Infinity;
  for (const p of pts) { lo = Math.min(lo, p.v); hi = Math.max(hi, p.v); }
  if (hi === lo) { hi += 1; lo -= 1; }
  const t0 = pts[0].t, t1 = pts[pts.length-1].t || t0 + 1;
  const x = t => pad + (w - 2*pad) * (t - t0) / Math.max(1, t1 - t0);
  const y = v => h - pad - (h - 2*pad) * (v - lo) / (hi - lo);
  const line = pts.map((p,i) => (i?"L":"M") + x(p.t).toFixed(1) + " " + y(p.v).toFixed(1)).join("");
  const area = line + "L" + x(t1).toFixed(1) + " " + (h-pad) + "L" + x(t0).toFixed(1) + " " + (h-pad) + "Z";
  return '<svg viewBox="0 0 '+w+' '+h+'"><path class="fill" d="'+area+'"/><path class="spark" d="'+line+'"/></svg>';
}
function panel(name, pts, unit) {
  const last = pts && pts.length ? pts[pts.length-1].v : NaN;
  return '<div class="panel"><div class="name">'+name+'</div><div class="val">'
    + fmt(last) + (unit||"") + '</div>' + spark(pts) + '</div>';
}
// Pinned panels: regexes over retained series names; ratio panels divide
// the latest points of two series.
const PINNED = [
  {re: /^fsr_verify_duration_seconds\{.*\}_p(50|99)$/, unit: "s"},
  {re: /^fsr_instances_resident$/},
  {re: /^fsr_campaign_scenarios_total\{outcome=/},
  {re: /^fsr_simnet_(faults_injected|msgs_dropped)_total$/},
  {re: /^fsr_scc_components_total$/},
  {re: /^fsr_(goroutines|heap_alloc_bytes)$/},
];
function render(ts, fl) {
  const byName = {};
  for (const s of ts.series) byName[s.name] = s;
  let pinned = "";
  for (const p of PINNED)
    for (const s of ts.series)
      if (p.re.test(s.name)) pinned += panel(s.name, s.points, p.unit);
  // delta-vs-full discharge ratio from the two rate series.
  const d = byName["fsr_smt_delta_solves_total"], f = byName["fsr_smt_full_solves_total"];
  if (d && f) {
    const pts = d.points.map((p, i) => {
      const fv = f.points[i] ? f.points[i].v : 0;
      return {t: p.t, v: p.v + fv > 0 ? p.v / (p.v + fv) : 1};
    });
    pinned += panel("delta / (delta+full) discharge ratio", pts);
  }
  document.getElementById("pinned").innerHTML =
    pinned || '<div class="sub">no pinned series yet — drive some load</div>';
  let all = "";
  for (const s of ts.series) all += panel(s.name, s.points);
  document.getElementById("all").innerHTML = all || '<div class="sub">no series yet</div>';

  if (fl) {
    document.getElementById("opstat").textContent =
      "— " + fl.total + " recorded, " + fl.slow_total + " slow (≥" + fl.slow_threshold_ms + "ms)";
    let rows = "<table><tr><th>#</th><th>kind</th><th>detail</th><th>size</th>" +
               "<th>ms</th><th>verdict</th><th>counters</th></tr>";
    for (const op of (fl.ops || []).slice(0, 25)) {
      const ctr = op.counters
        ? Object.entries(op.counters).map(([k,v]) => k+"="+v).join(" ") : "";
      rows += "<tr><td>"+op.seq+"</td><td>"+op.kind+"</td><td>"+(op.detail||"")+"</td><td>"
        + (op.size||"")+"</td><td class="+(op.slow?'"slow"':'"ok"')+">"+op.duration_ms.toFixed(2)
        + "</td><td>"+(op.verdict||"")+"</td><td>"+ctr+"</td></tr>";
    }
    document.getElementById("flight").innerHTML = rows + "</table>";
    let slow = "";
    const tree = (n, d) => {
      let s = " ".repeat(d*2) + n.name + " " + fmt(n.dur_us/1e6) + "s" +
        (n.attrs ? " " + Object.entries(n.attrs).map(([k,v]) => k+"="+v).join(" ") : "") + "\n";
      for (const c of (n.children||[])) s += tree(c, d+1);
      return s;
    };
    for (const op of (fl.slow || []).slice(0, 10)) {
      let spans = "";
      for (const n of (op.spans||[])) spans += tree(n, 0);
      slow += "<details><summary>#"+op.seq+" "+op.kind+" "+(op.detail||"")+" — "
        + op.duration_ms.toFixed(2)+"ms</summary><pre>"+spans+"</pre></details>";
    }
    document.getElementById("slow").innerHTML =
      slow || '<div class="sub">nothing over the threshold yet</div>';
  }
}
async function tick() {
  try {
    const ts = await (await fetch("/v1/timeseries")).json();
    let fl = null;
    try { fl = await (await fetch("/v1/flightrecorder")).json(); } catch (e) {}
    render(ts, fl);
    document.getElementById("err").textContent = "";
    document.getElementById("stamp").textContent = "updated " + new Date().toLocaleTimeString();
  } catch (e) {
    document.getElementById("err").textContent = "fetch failed: " + e + " ";
  }
}
tick();
setInterval(tick, 2000);
</script>
</body>
</html>
`
