// Fixed-window time-series retention: a Sampler scrapes SampleSources
// (the default registry, plus any per-server instruments) on an interval
// and keeps a sliding window of derived points — counters become rates,
// gauges stay points, histograms become p50/p99 quantiles and an
// observation rate. Served as JSON at /v1/timeseries and rendered by the
// /dashboard sparklines. This is deliberately not a database: the window
// is bounded, eviction is by age, and everything lives in memory.
package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Point is one retained sample: unix-millisecond timestamp and value.
type Point struct {
	T int64   `json:"t"`
	V float64 `json:"v"`
}

// Series is one retained time series, oldest point first.
type Series struct {
	Name string `json:"name"`
	// Kind is the derivation: "rate" (per-second counter rate), "gauge"
	// (raw value), or "quantile" (interpolated histogram quantile).
	Kind   string  `json:"kind"`
	Points []Point `json:"points"`
}

// Sampler scrapes its sources every Interval and retains Window of
// derived points per series.
type Sampler struct {
	sources  []SampleSource
	interval time.Duration
	window   time.Duration

	mu     sync.Mutex
	series map[string]*Series
	// last raw values, for rate and quantile derivation between scrapes.
	lastCounter map[string]float64
	lastHist    map[string]histState
	lastScrape  time.Time
}

type histState struct {
	counts []uint64
	count  uint64
}

// NewSampler returns a stopped sampler over the sources. Non-positive
// interval defaults to 2s; non-positive window to 5 minutes.
func NewSampler(interval, window time.Duration, sources ...SampleSource) *Sampler {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	if window <= 0 {
		window = 5 * time.Minute
	}
	return &Sampler{
		sources:     sources,
		interval:    interval,
		window:      window,
		series:      map[string]*Series{},
		lastCounter: map[string]float64{},
		lastHist:    map[string]histState{},
	}
}

// Start launches the scrape loop; the returned stop function halts it.
func (s *Sampler) Start() (stop func()) {
	done := make(chan struct{})
	go func() {
		tick := time.NewTicker(s.interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case now := <-tick.C:
				s.sampleOnce(now)
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// sampleOnce performs one scrape at the given instant: derive points from
// every source's samples, append, and evict points older than the window.
// Exposed to tests through the package; the scrape loop is just a ticker
// around it.
func (s *Sampler) sampleOnce(now time.Time) {
	var samples []Sample
	for _, src := range s.sources {
		samples = append(samples, src.Samples()...)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	dt := s.interval.Seconds()
	if !s.lastScrape.IsZero() {
		if d := now.Sub(s.lastScrape).Seconds(); d > 0 {
			dt = d
		}
	}
	s.lastScrape = now
	t := now.UnixMilli()
	for _, smp := range samples {
		key := smp.Key()
		switch smp.Kind {
		case "counter":
			last, seen := s.lastCounter[key]
			s.lastCounter[key] = smp.Value
			if !seen {
				// No baseline yet: treating the lifetime total as one
				// interval's delta would spike the first rate point.
				continue
			}
			delta := smp.Value - last
			if delta < 0 {
				// Counter reset (a re-created source behind a shared name):
				// the new total is the delta since the reset.
				delta = smp.Value
			}
			s.append(key, "rate", t, delta/dt)
		case "gauge":
			s.append(key, "gauge", t, smp.Value)
		case "histogram":
			prev := s.lastHist[key]
			s.lastHist[key] = histState{counts: append([]uint64(nil), smp.Counts...), count: smp.Count}
			if prev.counts == nil {
				continue
			}
			deltas := make([]uint64, len(smp.Counts))
			total := uint64(0)
			for i := range smp.Counts {
				d := smp.Counts[i]
				if prev.counts != nil && i < len(prev.counts) {
					d -= prev.counts[i]
				}
				deltas[i] = d
				total += d
			}
			s.append(key+"_rate", "rate", t, float64(smp.Count-prev.count)/dt)
			if total > 0 {
				s.append(key+"_p50", "quantile", t, quantile(0.5, smp.Buckets, deltas, total))
				s.append(key+"_p99", "quantile", t, quantile(0.99, smp.Buckets, deltas, total))
			}
		}
	}
	cutoff := now.Add(-s.window).UnixMilli()
	for name, sr := range s.series {
		i := 0
		for i < len(sr.Points) && sr.Points[i].T < cutoff {
			i++
		}
		if i > 0 {
			sr.Points = append(sr.Points[:0], sr.Points[i:]...)
		}
		if len(sr.Points) == 0 {
			delete(s.series, name)
		}
	}
}

func (s *Sampler) append(name, kind string, t int64, v float64) {
	sr := s.series[name]
	if sr == nil {
		sr = &Series{Name: name, Kind: kind}
		s.series[name] = sr
	}
	sr.Points = append(sr.Points, Point{T: t, V: v})
}

// quantile interpolates the q-quantile from one interval's bucket deltas,
// the way Prometheus histogram_quantile does: find the bucket holding the
// target rank and interpolate linearly inside it. Observations beyond the
// last finite bound clamp to that bound.
func quantile(q float64, bounds []float64, deltas []uint64, total uint64) float64 {
	if len(bounds) == 0 || total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := 0.0
	for i, d := range deltas {
		prev := cum
		cum += float64(d)
		if cum >= rank {
			lo := 0.0
			if i > 0 {
				lo = bounds[i-1]
			}
			hi := bounds[i]
			if d == 0 {
				return hi
			}
			return lo + (hi-lo)*(rank-prev)/float64(d)
		}
	}
	// Target rank falls in the implicit +Inf bucket.
	return bounds[len(bounds)-1]
}

// timeseriesPayload is the /v1/timeseries response body.
type timeseriesPayload struct {
	IntervalMS int64    `json:"interval_ms"`
	WindowMS   int64    `json:"window_ms"`
	Series     []Series `json:"series"`
}

// Snapshot returns every retained series, sorted by name, with copied
// point slices safe to hold across further scrapes.
func (s *Sampler) Snapshot() []Series {
	s.mu.Lock()
	out := make([]Series, 0, len(s.series))
	for _, sr := range s.series {
		out = append(out, Series{Name: sr.Name, Kind: sr.Kind, Points: append([]Point(nil), sr.Points...)})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Handler serves the retained window as JSON — GET /v1/timeseries.
func (s *Sampler) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetEscapeHTML(false)
		enc.Encode(timeseriesPayload{
			IntervalMS: s.interval.Milliseconds(),
			WindowMS:   s.window.Milliseconds(),
			Series:     s.Snapshot(),
		})
	})
}
