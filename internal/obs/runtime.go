// Process-health collector: goroutine count, heap size, last GC pause,
// and GOMAXPROCS as gauges in the default registry, refreshed lazily by
// an expose hook — the runtime is only interrogated when someone scrapes
// /metrics or the sampler ticks, never on a pipeline hot path.
package obs

import (
	"runtime"
	"sync"
)

var runtimeOnce sync.Once

// EnableRuntimeMetrics registers the process-health gauges in the default
// registry (idempotent). ReadMemStats runs only on scrape, via the
// registry's expose hook.
func EnableRuntimeMetrics() {
	runtimeOnce.Do(func() {
		r := Default()
		goroutines := r.Gauge("fsr_goroutines",
			"Live goroutines in the process.")
		heap := r.Gauge("fsr_heap_alloc_bytes",
			"Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).")
		gcPause := r.Gauge("fsr_gc_pause_last_ns",
			"Duration of the most recent stop-the-world GC pause, in nanoseconds.")
		maxprocs := r.Gauge("fsr_gomaxprocs",
			"GOMAXPROCS at last scrape.")
		r.AddHook(func() {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			goroutines.Set(float64(runtime.NumGoroutine()))
			heap.Set(float64(ms.HeapAlloc))
			if ms.NumGC > 0 {
				gcPause.Set(float64(ms.PauseNs[(ms.NumGC+255)%256]))
			}
			maxprocs.Set(float64(runtime.GOMAXPROCS(0)))
		})
	})
}
