// Flight recorder: a bounded ring of recent pipeline operations (analyze
// calls, delta verifies, campaign scenarios) plus a parallel slow-op ring
// that retains full span trees for operations beyond a latency threshold —
// so the p99 outlier is inspectable after the fact without re-running
// under -trace-out.
//
// Recording is off by default and the disabled path is one atomic load:
// StartOp returns a nil *Op whose methods are all nil-receiver no-ops,
// mirroring the span tracer's disabled path, so instrumented hot paths pay
// nothing when nobody is flying the recorder.
package obs

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// OpRecord is one completed operation in the flight ring.
type OpRecord struct {
	// Seq is the operation's global sequence number (monotonic since
	// enable); the ring holds the highest Seqs.
	Seq uint64 `json:"seq"`
	// Kind classifies the operation: analyze, analyze-spp, verify,
	// scenario, ...
	Kind string `json:"kind"`
	// Detail names the operand: algebra or instance name, scenario kind.
	Detail string `json:"detail,omitempty"`
	// Size is the instance size (nodes, or assertions when nodes are not
	// known).
	Size  int       `json:"size,omitempty"`
	Start time.Time `json:"start"`
	// DurationMS is wall-clock duration in milliseconds.
	DurationMS float64 `json:"duration_ms"`
	// Verdict is the operation's outcome: safe, unsafe, error, an outcome
	// class, or a discharge mode.
	Verdict string `json:"verdict,omitempty"`
	// Counters carries the drained per-operation solver effort: probes,
	// relaxations, SCC components, level widths, splice-vs-rebuild.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Slow marks operations that also landed in the slow-op ring.
	Slow bool `json:"slow,omitempty"`
}

// SlowOp is one over-threshold operation with its retained span tree.
type SlowOp struct {
	OpRecord
	Spans []*SpanNode `json:"spans,omitempty"`
}

// FlightRecorder is a lock-cheap ring of recent operations. The zero
// value is not usable; construct with NewFlightRecorder or use the
// process-global Flight().
type FlightRecorder struct {
	enabled atomic.Bool
	slowNS  atomic.Int64

	mu    sync.Mutex
	ring  []OpRecord
	size  int
	total uint64

	smu      sync.Mutex
	slowRing []SlowOp
	slowSize int
	slowTot  uint64
}

// DefaultSlowThreshold marks an op slow when nothing else is configured:
// well past every sub-millisecond gadget solve, low enough to catch a
// struggling internet-scale verify.
const DefaultSlowThreshold = 100 * time.Millisecond

// NewFlightRecorder returns a disabled recorder retaining the last `size`
// operations and the last `slowSize` slow operations (with span trees).
func NewFlightRecorder(size, slowSize int) *FlightRecorder {
	if size <= 0 {
		size = 256
	}
	if slowSize <= 0 {
		slowSize = 32
	}
	f := &FlightRecorder{size: size, slowSize: slowSize}
	f.slowNS.Store(int64(DefaultSlowThreshold))
	return f
}

var defaultFlight = NewFlightRecorder(256, 32)

// Flight is the process-global flight recorder every instrumented
// operation records into once enabled.
func Flight() *FlightRecorder { return defaultFlight }

// Enable turns recording on or off. Off (the default) makes StartOp a
// single atomic load returning a nil op.
func (f *FlightRecorder) Enable(on bool) { f.enabled.Store(on) }

// Enabled reports whether the recorder is recording.
func (f *FlightRecorder) Enabled() bool { return f.enabled.Load() }

// SetSlowThreshold sets the latency beyond which an operation's span tree
// is retained in the slow ring. Non-positive restores the default.
func (f *FlightRecorder) SetSlowThreshold(d time.Duration) {
	if d <= 0 {
		d = DefaultSlowThreshold
	}
	f.slowNS.Store(int64(d))
}

// SlowThreshold reports the current slow-op latency threshold.
func (f *FlightRecorder) SlowThreshold() time.Duration {
	return time.Duration(f.slowNS.Load())
}

// Op is one in-flight recorded operation. A nil *Op (recorder disabled)
// is valid: every method is a no-op.
type Op struct {
	f     *FlightRecorder
	rec   OpRecord
	start time.Time
	// tr is the tracer StartOp attached for slow-op capture; nil when the
	// context already carried one (the caller's trace owns those spans).
	tr   *Tracer
	span *Span
}

// StartOp begins recording one operation. When the recorder is enabled
// and the context carries no tracer, a private tracer is attached so the
// operation's span tree can be retained if it turns out slow; the root
// span is named after the op kind. Disabled recorders return the context
// unchanged and a nil op at the cost of one atomic load.
func (f *FlightRecorder) StartOp(ctx context.Context, kind, detail string) (context.Context, *Op) {
	if !f.enabled.Load() {
		return ctx, nil
	}
	op := &Op{f: f, start: time.Now(), rec: OpRecord{Kind: kind, Detail: detail}}
	op.rec.Start = op.start
	if TracerFromContext(ctx) == nil {
		op.tr = NewTracer()
		ctx = WithTracer(ctx, op.tr)
	}
	ctx, op.span = StartSpan(ctx, kind)
	return ctx, op
}

// SetSize records the operand's size. No-op on a nil op.
func (o *Op) SetSize(n int) {
	if o != nil {
		o.rec.Size = n
	}
}

// SetVerdict records the operation's outcome. No-op on a nil op.
func (o *Op) SetVerdict(v string) {
	if o != nil {
		o.rec.Verdict = v
	}
}

// Counter records one drained per-operation counter; zero values are
// skipped to keep records compact. No-op on a nil op.
func (o *Op) Counter(name string, v int64) {
	if o == nil || v == 0 {
		return
	}
	if o.rec.Counters == nil {
		o.rec.Counters = make(map[string]int64, 8)
	}
	o.rec.Counters[name] = v
}

// Finish completes the operation: the record lands in the ring, and — when
// the op exceeded the slow threshold and StartOp attached the tracer — its
// full span tree lands in the slow ring. No-op on a nil op.
func (o *Op) Finish() {
	if o == nil {
		return
	}
	o.span.End()
	dur := time.Since(o.start)
	o.rec.DurationMS = float64(dur) / float64(time.Millisecond)
	slow := dur >= o.f.SlowThreshold() && o.tr != nil
	o.rec.Slow = slow
	f := o.f
	f.mu.Lock()
	o.rec.Seq = f.total
	f.total++
	if len(f.ring) < f.size {
		f.ring = append(f.ring, o.rec)
	} else {
		f.ring[int(o.rec.Seq)%f.size] = o.rec
	}
	f.mu.Unlock()
	if slow {
		s := SlowOp{OpRecord: o.rec, Spans: o.tr.SpanTree()}
		f.smu.Lock()
		s.Seq = o.rec.Seq
		f.slowTot++
		if len(f.slowRing) < f.slowSize {
			f.slowRing = append(f.slowRing, s)
		} else {
			f.slowRing[int(f.slowTot-1)%f.slowSize] = s
		}
		f.smu.Unlock()
	}
}

// FlightSnapshot is the recorder's state at one instant, newest op first.
type FlightSnapshot struct {
	Enabled         bool       `json:"enabled"`
	Total           uint64     `json:"total"`
	SlowThresholdMS float64    `json:"slow_threshold_ms"`
	Ops             []OpRecord `json:"ops"`
	SlowTotal       uint64     `json:"slow_total"`
	Slow            []SlowOp   `json:"slow"`
}

// Snapshot copies the rings, ordering both newest-first.
func (f *FlightRecorder) Snapshot() FlightSnapshot {
	snap := FlightSnapshot{
		Enabled:         f.Enabled(),
		SlowThresholdMS: float64(f.SlowThreshold()) / float64(time.Millisecond),
	}
	f.mu.Lock()
	snap.Total = f.total
	snap.Ops = append([]OpRecord(nil), f.ring...)
	f.mu.Unlock()
	f.smu.Lock()
	snap.SlowTotal = f.slowTot
	snap.Slow = append([]SlowOp(nil), f.slowRing...)
	f.smu.Unlock()
	sortBySeqDesc(snap.Ops, func(r OpRecord) uint64 { return r.Seq })
	sortBySeqDesc(snap.Slow, func(s SlowOp) uint64 { return s.Seq })
	return snap
}

// sortBySeqDesc orders ring copies newest-first. Rings are small (≤ a few
// hundred), so a simple insertion sort over the rotated copy is fine.
func sortBySeqDesc[T any](s []T, seq func(T) uint64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && seq(s[j-1]) < seq(s[j]); j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}

// Handler serves the snapshot as JSON — the GET /v1/flightrecorder
// endpoint of the serve daemon and the campaign metrics listener.
func (f *FlightRecorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetEscapeHTML(false)
		enc.Encode(f.Snapshot())
	})
}
