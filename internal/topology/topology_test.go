package topology

import (
	"testing"
	"testing/quick"
)

// TestHierarchyDepth: the generated hierarchy realizes the requested
// longest customer-provider chain and annotates every edge.
func TestHierarchyDepth(t *testing.T) {
	for _, depth := range []int{3, 8, 16} {
		g := GenerateHierarchy(1, HierarchyParams{Depth: depth})
		if g.Depth != depth {
			t.Errorf("depth %d: got %d", depth, g.Depth)
		}
		maxLevel := 0
		for _, lvl := range g.Level {
			if lvl > maxLevel {
				maxLevel = lvl
			}
		}
		if maxLevel != depth {
			t.Errorf("depth %d: deepest level %d", depth, maxLevel)
		}
		// The chain as0_0 → as1_0 → … guarantees the exact depth.
		for lvl := 1; lvl <= depth; lvl++ {
			found := false
			for _, e := range g.Edges {
				if e.Rel == CustomerProvider && g.Level[e.A] == lvl-1 && g.Level[e.B] == lvl {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("depth %d: no provider edge into level %d", depth, lvl)
			}
		}
	}
}

// TestHierarchyClasses: Class is antisymmetric for provider edges and
// symmetric for peers.
func TestHierarchyClasses(t *testing.T) {
	g := GenerateHierarchy(2, HierarchyParams{Depth: 5})
	for _, e := range g.Edges {
		switch e.Rel {
		case CustomerProvider:
			if g.Class(e.A, e.B) != "c" || g.Class(e.B, e.A) != "p" {
				t.Errorf("provider edge %s→%s classes %s/%s", e.A, e.B, g.Class(e.A, e.B), g.Class(e.B, e.A))
			}
		case PeerPeer:
			if g.Class(e.A, e.B) != "r" || g.Class(e.B, e.A) != "r" {
				t.Errorf("peer edge %s–%s classes %s/%s", e.A, e.B, g.Class(e.A, e.B), g.Class(e.B, e.A))
			}
		}
	}
	if g.Class("as0_0", "nonexistent") != "" {
		t.Errorf("non-adjacent pairs have no class")
	}
}

// TestHierarchyDeterminism (property): same seed, same graph.
func TestHierarchyDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		a := GenerateHierarchy(seed, HierarchyParams{Depth: 6})
		b := GenerateHierarchy(seed, HierarchyParams{Depth: 6})
		if len(a.Nodes) != len(b.Nodes) || len(a.Edges) != len(b.Edges) {
			return false
		}
		for i := range a.Edges {
			if a.Edges[i] != b.Edges[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestISPShape: the generated ISP matches the §VI-B shape: 87 routers, 322
// links, 53 reflectors across at most 6 levels, connected.
func TestISPShape(t *testing.T) {
	g := GenerateISP(1, ISPParams{})
	if len(g.Routers) != 87 {
		t.Errorf("routers = %d, want 87", len(g.Routers))
	}
	if len(g.Links) != 322 {
		t.Errorf("links = %d, want 322", len(g.Links))
	}
	if len(g.ReflectorLevel) != 53 {
		t.Errorf("reflectors = %d, want 53", len(g.ReflectorLevel))
	}
	for r, lvl := range g.ReflectorLevel {
		if lvl < 1 || lvl > 6 {
			t.Errorf("reflector %s at level %d", r, lvl)
		}
	}
	// Connectivity via IGP costs: every pair reachable.
	igp := g.AllPairsIGP()
	for _, a := range g.Routers {
		for _, b := range g.Routers {
			if _, ok := igp[a][b]; !ok {
				t.Fatalf("%s cannot reach %s", a, b)
			}
		}
	}
}

// TestIGPTriangleInequality (property): shortest-path costs satisfy the
// triangle inequality.
func TestIGPTriangleInequality(t *testing.T) {
	g := GenerateISP(3, ISPParams{Routers: 20, Links: 45, Reflectors: 8, Levels: 4})
	igp := g.AllPairsIGP()
	for _, a := range g.Routers {
		for _, b := range g.Routers {
			for _, c := range g.Routers {
				if igp[a][c] > igp[a][b]+igp[b][c] {
					t.Fatalf("triangle violated: d(%s,%s)=%d > %d+%d", a, c, igp[a][c], igp[a][b], igp[b][c])
				}
			}
		}
	}
	for _, a := range g.Routers {
		if igp[a][a] != 0 {
			t.Errorf("d(%s,%s) = %d", a, a, igp[a][a])
		}
	}
}

// TestSessionGraphCoversReflectors: every reflector appears in the session
// graph.
func TestSessionGraphCoversReflectors(t *testing.T) {
	g := GenerateISP(1, ISPParams{})
	inSession := map[string]bool{}
	for _, l := range g.SessionGraph() {
		inSession[l.A] = true
		inSession[l.B] = true
	}
	for r := range g.ReflectorLevel {
		if !inSession[r] {
			t.Errorf("reflector %s missing from session graph", r)
		}
	}
}
