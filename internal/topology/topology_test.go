package topology

import (
	"sort"
	"testing"
	"testing/quick"
)

// TestHierarchyDepth: the generated hierarchy realizes the requested
// longest customer-provider chain and annotates every edge.
func TestHierarchyDepth(t *testing.T) {
	for _, depth := range []int{3, 8, 16} {
		g := GenerateHierarchy(1, HierarchyParams{Depth: depth})
		if g.Depth != depth {
			t.Errorf("depth %d: got %d", depth, g.Depth)
		}
		maxLevel := 0
		for _, lvl := range g.Level {
			if lvl > maxLevel {
				maxLevel = lvl
			}
		}
		if maxLevel != depth {
			t.Errorf("depth %d: deepest level %d", depth, maxLevel)
		}
		// The chain as0_0 → as1_0 → … guarantees the exact depth.
		for lvl := 1; lvl <= depth; lvl++ {
			found := false
			for _, e := range g.Edges {
				if e.Rel == CustomerProvider && g.Level[e.A] == lvl-1 && g.Level[e.B] == lvl {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("depth %d: no provider edge into level %d", depth, lvl)
			}
		}
	}
}

// TestHierarchyClasses: Class is antisymmetric for provider edges and
// symmetric for peers.
func TestHierarchyClasses(t *testing.T) {
	g := GenerateHierarchy(2, HierarchyParams{Depth: 5})
	for _, e := range g.Edges {
		switch e.Rel {
		case CustomerProvider:
			if g.Class(e.A, e.B) != "c" || g.Class(e.B, e.A) != "p" {
				t.Errorf("provider edge %s→%s classes %s/%s", e.A, e.B, g.Class(e.A, e.B), g.Class(e.B, e.A))
			}
		case PeerPeer:
			if g.Class(e.A, e.B) != "r" || g.Class(e.B, e.A) != "r" {
				t.Errorf("peer edge %s–%s classes %s/%s", e.A, e.B, g.Class(e.A, e.B), g.Class(e.B, e.A))
			}
		}
	}
	if g.Class("as0_0", "nonexistent") != "" {
		t.Errorf("non-adjacent pairs have no class")
	}
}

// TestHierarchyDeterminism (property): same seed, same graph.
func TestHierarchyDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		a := GenerateHierarchy(seed, HierarchyParams{Depth: 6})
		b := GenerateHierarchy(seed, HierarchyParams{Depth: 6})
		if len(a.Nodes) != len(b.Nodes) || len(a.Edges) != len(b.Edges) {
			return false
		}
		for i := range a.Edges {
			if a.Edges[i] != b.Edges[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestISPShape: the generated ISP matches the §VI-B shape: 87 routers, 322
// links, 53 reflectors across at most 6 levels, connected.
func TestISPShape(t *testing.T) {
	g := GenerateISP(1, ISPParams{})
	if len(g.Routers) != 87 {
		t.Errorf("routers = %d, want 87", len(g.Routers))
	}
	if len(g.Links) != 322 {
		t.Errorf("links = %d, want 322", len(g.Links))
	}
	if len(g.ReflectorLevel) != 53 {
		t.Errorf("reflectors = %d, want 53", len(g.ReflectorLevel))
	}
	for r, lvl := range g.ReflectorLevel {
		if lvl < 1 || lvl > 6 {
			t.Errorf("reflector %s at level %d", r, lvl)
		}
	}
	// Connectivity via IGP costs: every pair reachable.
	igp := g.AllPairsIGP()
	for _, a := range g.Routers {
		for _, b := range g.Routers {
			if _, ok := igp[a][b]; !ok {
				t.Fatalf("%s cannot reach %s", a, b)
			}
		}
	}
}

// TestIGPTriangleInequality (property): shortest-path costs satisfy the
// triangle inequality.
func TestIGPTriangleInequality(t *testing.T) {
	g := GenerateISP(3, ISPParams{Routers: 20, Links: 45, Reflectors: 8, Levels: 4})
	igp := g.AllPairsIGP()
	for _, a := range g.Routers {
		for _, b := range g.Routers {
			for _, c := range g.Routers {
				if igp[a][c] > igp[a][b]+igp[b][c] {
					t.Fatalf("triangle violated: d(%s,%s)=%d > %d+%d", a, c, igp[a][c], igp[a][b], igp[b][c])
				}
			}
		}
	}
	for _, a := range g.Routers {
		if igp[a][a] != 0 {
			t.Errorf("d(%s,%s) = %d", a, a, igp[a][a])
		}
	}
}

// TestSessionGraphCoversReflectors: every reflector appears in the session
// graph.
func TestSessionGraphCoversReflectors(t *testing.T) {
	g := GenerateISP(1, ISPParams{})
	inSession := map[string]bool{}
	for _, l := range g.SessionGraph() {
		inSession[l.A] = true
		inSession[l.B] = true
	}
	for r := range g.ReflectorLevel {
		if !inSession[r] {
			t.Errorf("reflector %s missing from session graph", r)
		}
	}
}

// TestISPDeterminism (property): same seed, same router graph — links,
// weights, and reflector leveling included. The scenario engine's ibgp
// generator relies on this to regenerate instances from (kind, seed).
func TestISPDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		p := ISPParams{Routers: 24, Links: 60, Reflectors: 10, Levels: 4}
		a := GenerateISP(seed, p)
		b := GenerateISP(seed, p)
		if len(a.Routers) != len(b.Routers) || len(a.Links) != len(b.Links) {
			return false
		}
		for i := range a.Links {
			if a.Links[i] != b.Links[i] {
				return false
			}
		}
		if len(a.ReflectorLevel) != len(b.ReflectorLevel) {
			return false
		}
		for r, lvl := range a.ReflectorLevel {
			if b.ReflectorLevel[r] != lvl {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestClassConsistency (property): over random seeds, Class(u,v) and
// Class(v,u) are consistent for every adjacent pair — provider/customer
// edges classify antisymmetrically (c/p), peer edges symmetrically (r/r) —
// and non-adjacent pairs classify empty both ways.
func TestClassConsistency(t *testing.T) {
	f := func(seed int64) bool {
		g := GenerateHierarchy(seed, HierarchyParams{Depth: 4})
		cm := g.ClassMap()
		adj := map[[2]string]bool{}
		for _, e := range g.Edges {
			adj[[2]string{e.A, e.B}] = true
			adj[[2]string{e.B, e.A}] = true
		}
		for _, u := range g.Nodes {
			for _, v := range g.Nodes {
				if u == v {
					continue
				}
				uv, vu := g.Class(u, v), g.Class(v, u)
				if cm[[2]string{u, v}] != uv || cm[[2]string{v, u}] != vu {
					return false // precomputed ClassMap must agree with Class
				}
				if !adj[[2]string{u, v}] {
					if uv != "" || vu != "" {
						return false
					}
					continue
				}
				switch uv {
				case "c":
					if vu != "p" {
						return false
					}
				case "p":
					if vu != "c" {
						return false
					}
				case "r":
					if vu != "r" {
						return false
					}
				default:
					return false // adjacent but unclassified
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestHierarchyConnectivity: every generated hierarchy is connected — any
// AS reaches any other over the annotated edges, so single-destination
// workloads derived from the graph leave no node stranded.
func TestHierarchyConnectivity(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		g := GenerateHierarchy(seed, HierarchyParams{Depth: 5})
		adj := g.Adjacency()
		seen := map[string]bool{g.Nodes[0]: true}
		queue := []string{g.Nodes[0]}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			for _, m := range adj[n] {
				if !seen[m] {
					seen[m] = true
					queue = append(queue, m)
				}
			}
		}
		if len(seen) != len(g.Nodes) {
			t.Errorf("seed %d: reached %d of %d nodes", seed, len(seen), len(g.Nodes))
		}
	}
}

// TestInternetDeterminism: equal seeds yield byte-identical power-law
// graphs; different seeds differ. Campaigns and benches regenerate the
// graph from (seed, params) alone.
func TestInternetDeterminism(t *testing.T) {
	p := InternetParams{N: 400}
	a := GenerateInternet(7, p)
	b := GenerateInternet(7, p)
	if len(a.Edges) != len(b.Edges) || len(a.Nodes) != len(b.Nodes) {
		t.Fatalf("sizes differ: %d/%d edges, %d/%d nodes", len(a.Edges), len(b.Edges), len(a.Nodes), len(b.Nodes))
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, a.Edges[i], b.Edges[i])
		}
	}
	for n, lv := range a.Level {
		if b.Level[n] != lv {
			t.Fatalf("level %s differs: %d vs %d", n, lv, b.Level[n])
		}
	}
	c := GenerateInternet(8, p)
	same := len(a.Edges) == len(c.Edges)
	if same {
		for i := range a.Edges {
			if a.Edges[i] != c.Edges[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 generated identical graphs")
	}
}

// TestInternetPowerLaw: the degree distribution is heavy-tailed — a core
// hub accumulates a degree far above the median while most ASes stay
// stubs — and the tier-1 seed clique is a full peer mesh.
func TestInternetPowerLaw(t *testing.T) {
	g := GenerateInternet(3, InternetParams{N: 2000, Tier1: 8})
	deg := map[string]int{}
	peers := map[[2]string]bool{}
	for _, e := range g.Edges {
		deg[e.A]++
		deg[e.B]++
		if e.Rel == PeerPeer {
			peers[[2]string{e.A, e.B}] = true
			peers[[2]string{e.B, e.A}] = true
		}
	}
	degs := make([]int, 0, len(g.Nodes))
	max := 0
	for _, n := range g.Nodes {
		degs = append(degs, deg[n])
		if deg[n] > max {
			max = deg[n]
		}
	}
	sort.Ints(degs)
	median := degs[len(degs)/2]
	if max < 20*median {
		t.Errorf("degree tail too light: max %d, median %d", max, median)
	}
	stubs := 0
	for _, d := range degs {
		if d <= 2 {
			stubs++
		}
	}
	if stubs < len(degs)/2 {
		t.Errorf("expected a stub-heavy tail, got %d/%d ASes with degree ≤ 2", stubs, len(degs))
	}
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			pair := [2]string{g.Nodes[i], g.Nodes[j]}
			if !peers[pair] {
				t.Errorf("tier-1 pair %v not peer-linked", pair)
			}
			if g.Level[g.Nodes[i]] != 0 {
				t.Errorf("tier-1 node %s has level %d", g.Nodes[i], g.Level[g.Nodes[i]])
			}
		}
	}
}

// TestInternetClassConsistency: ClassMap over the power-law graph keeps
// the Gao-Rexford involution — Class(u,v)=="c" iff Class(v,u)=="p", peers
// symmetric — and agrees with the linear-scan Class on every edge.
func TestInternetClassConsistency(t *testing.T) {
	g := GenerateInternet(11, InternetParams{N: 600})
	cm := g.ClassMap()
	for _, e := range g.Edges {
		uv, vu := cm[[2]string{e.A, e.B}], cm[[2]string{e.B, e.A}]
		if g.Class(e.A, e.B) != uv || g.Class(e.B, e.A) != vu {
			t.Fatalf("ClassMap disagrees with Class on %v", e)
		}
		switch uv {
		case "c":
			if vu != "p" {
				t.Fatalf("edge %v: %q not inverse of %q", e, uv, vu)
			}
		case "p":
			if vu != "c" {
				t.Fatalf("edge %v: %q not inverse of %q", e, uv, vu)
			}
		case "r":
			if vu != "r" {
				t.Fatalf("edge %v: peer not symmetric (%q)", e, vu)
			}
		default:
			t.Fatalf("edge %v unclassified", e)
		}
	}
}

// TestInternetConnectivity: every AS has a provider chain into the tier-1
// core, so the graph is connected and Level is the provider-path distance
// from the core.
func TestInternetConnectivity(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		g := GenerateInternet(seed, InternetParams{N: 500})
		adj := g.Adjacency()
		seen := map[string]bool{g.Nodes[0]: true}
		queue := []string{g.Nodes[0]}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			for _, m := range adj[n] {
				if !seen[m] {
					seen[m] = true
					queue = append(queue, m)
				}
			}
		}
		if len(seen) != len(g.Nodes) {
			t.Fatalf("seed %d: reached %d of %d nodes", seed, len(seen), len(g.Nodes))
		}
		for n, lv := range g.Level {
			if lv < 0 || lv > g.Depth {
				t.Fatalf("seed %d: %s has level %d outside [0,%d]", seed, n, lv, g.Depth)
			}
		}
	}
}
