package topology

import (
	"fmt"
	"math/rand"
)

// Internet-scale AS graph generation. GenerateHierarchy builds small,
// regular provider trees — good for campaign-sized Gao-Rexford scenarios,
// wrong in shape for scale work: real AS graphs are power-law, with a
// densely meshed tier-1 core, a handful of heavily multihomed transit
// hubs, and a long stub-heavy tail. GenerateInternet produces that shape
// by preferential attachment (Barabási–Albert with a seeded clique), the
// standard generative model for CAIDA-like degree distributions: each new
// AS buys transit from one or two existing ASes chosen proportionally to
// their current degree, so early transit providers accumulate most of the
// edges while the overwhelming majority of ASes stay stubs.

// InternetParams shapes GenerateInternet. Zero values select defaults
// chosen to resemble CAIDA AS-relationship snapshots at small scale.
type InternetParams struct {
	// N is the total AS count (default 1000).
	N int
	// Tier1 is the size of the fully peer-meshed tier-1 clique the graph
	// grows from (default 8, clamped to N).
	Tier1 int
	// MultihomeProb is the probability a new AS buys transit from a second
	// provider (default 0.35).
	MultihomeProb float64
	// PeerProb is the probability a new AS additionally establishes one
	// settlement-free peering with a degree-proportional partner
	// (default 0.15).
	PeerProb float64
}

func (p InternetParams) withDefaults() InternetParams {
	if p.N <= 0 {
		p.N = 1000
	}
	if p.Tier1 <= 0 {
		p.Tier1 = 8
	}
	if p.Tier1 > p.N {
		p.Tier1 = p.N
	}
	if p.MultihomeProb <= 0 {
		p.MultihomeProb = 0.35
	}
	if p.PeerProb <= 0 {
		p.PeerProb = 0.15
	}
	return p
}

// GenerateInternet returns a seeded power-law AS graph: a tier-1 clique of
// mutual peers, then N−Tier1 ASes attached one at a time by preferential
// attachment as customers of existing ASes (providers are always older
// than their customers, so the customer→provider relation is acyclic and
// every AS has an all-provider path into the tier-1 core). Level records
// each AS's distance from the core along provider links (tier-1 = 0);
// Class and ClassMap work unchanged because the graph reuses the
// CustomerProvider/PeerPeer edge vocabulary of GenerateHierarchy.
func GenerateInternet(seed int64, p InternetParams) *ASGraph {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	g := &ASGraph{Level: make(map[string]int, p.N)}

	name := func(i int) string { return fmt.Sprintf("as%d", i) }
	g.Nodes = make([]string, p.N)
	for i := 0; i < p.N; i++ {
		g.Nodes[i] = name(i)
	}

	// attach holds one entry per edge endpoint, so a uniform draw picks an
	// AS with probability proportional to its degree.
	attach := make([]int, 0, 4*p.N)
	// linked dedups undirected pairs (lo*N+hi).
	linked := make(map[int64]bool, 3*p.N)
	key := func(a, b int) int64 {
		if a > b {
			a, b = b, a
		}
		return int64(a)*int64(p.N) + int64(b)
	}

	// Tier-1 core: a full settlement-free mesh at level 0.
	for i := 0; i < p.Tier1; i++ {
		g.Level[name(i)] = 0
		for j := i + 1; j < p.Tier1; j++ {
			g.Edges = append(g.Edges, ASEdge{A: name(i), B: name(j), Rel: PeerPeer})
			linked[key(i, j)] = true
			attach = append(attach, i, j)
		}
	}
	if p.Tier1 == 1 {
		attach = append(attach, 0) // degree-0 seed still needs attachment mass
	}

	// draw returns a degree-proportional existing AS distinct from the ones
	// already picked for node i, falling back to a uniform scan when the
	// rejection loop is unlucky.
	draw := func(i int, taken []int) int {
		for tries := 0; tries < 16; tries++ {
			c := attach[rng.Intn(len(attach))]
			if c == i || linked[key(i, c)] {
				continue
			}
			ok := true
			for _, t := range taken {
				if t == c {
					ok = false
					break
				}
			}
			if ok {
				return c
			}
		}
		for c := 0; c < i; c++ {
			if !linked[key(i, c)] {
				return c
			}
		}
		return -1
	}

	for i := p.Tier1; i < p.N; i++ {
		providers := 1
		if rng.Float64() < p.MultihomeProb {
			providers = 2
		}
		level := -1
		var taken []int
		for k := 0; k < providers; k++ {
			c := draw(i, taken)
			if c < 0 {
				break
			}
			taken = append(taken, c)
			g.Edges = append(g.Edges, ASEdge{A: name(c), B: name(i), Rel: CustomerProvider})
			linked[key(i, c)] = true
			attach = append(attach, c, i)
			if lv := g.Level[name(c)] + 1; level < 0 || lv < level {
				level = lv
			}
		}
		g.Level[name(i)] = level
		if level > g.Depth {
			g.Depth = level
		}
		if rng.Float64() < p.PeerProb {
			if c := draw(i, taken); c >= 0 {
				g.Edges = append(g.Edges, ASEdge{A: name(c), B: name(i), Rel: PeerPeer})
				linked[key(i, c)] = true
				attach = append(attach, c, i)
			}
		}
	}
	return g
}
