// Package topology generates the evaluation topologies of §VI. The paper
// uses the CAIDA AS-relationship dataset (Figure 4) and the Rocketfuel
// AS 1755 map (Figure 5); neither ships with this reproduction, so seeded
// generators synthesize graphs with the structural properties the
// experiments exercise: annotated customer-provider hierarchies with a
// controllable longest chain, and an 87-router / 322-link weighted ISP
// backbone with a 6-level route-reflector hierarchy. All generation is
// deterministic in the seed.
package topology

import (
	"fmt"
	"math/rand"
	"sort"
)

// Relationship classifies an AS-level edge.
type Relationship int

const (
	// CustomerProvider: the first endpoint is the provider of the second.
	CustomerProvider Relationship = iota
	// PeerPeer: settlement-free peers.
	PeerPeer
)

// ASEdge is one annotated AS-level adjacency.
type ASEdge struct {
	A, B string
	Rel  Relationship // CustomerProvider: A provides transit to B
}

// ASGraph is an annotated AS-level topology (the CAIDA substitute).
type ASGraph struct {
	Nodes []string
	Edges []ASEdge
	// Level[n] is the hierarchy depth of node n (0 = root provider).
	Level map[string]int
	// Depth is the length of the longest customer-provider chain.
	Depth int
}

// HierarchyParams tunes GenerateHierarchy.
type HierarchyParams struct {
	// Depth is the longest customer-provider chain (the Figure 4 x-axis,
	// 3–16 in the paper).
	Depth int
	// Width caps the number of ASes per level (default 4).
	Width int
	// PeerProb is the probability of a peer link between same-level ASes
	// (default 0.3); peer links at the leaves are what lets convergence
	// beat the theoretical worst case in §VI-A.
	PeerProb float64
	// MultihomeProb is the probability a non-root AS has a second provider
	// (default 0.4).
	MultihomeProb float64
}

// GenerateHierarchy synthesizes an annotated AS hierarchy with the given
// longest customer-provider chain, substituting for the CAIDA subgraph
// extraction of §VI-A (root AS selected, stubs pruned, subgraph of
// peer/customer-reachable ASes).
func GenerateHierarchy(seed int64, p HierarchyParams) *ASGraph {
	if p.Depth < 1 {
		p.Depth = 1
	}
	if p.Width <= 0 {
		p.Width = 4
	}
	if p.PeerProb == 0 {
		p.PeerProb = 0.3
	}
	if p.MultihomeProb == 0 {
		p.MultihomeProb = 0.4
	}
	rng := rand.New(rand.NewSource(seed))
	g := &ASGraph{Level: map[string]int{}, Depth: p.Depth}

	var levels [][]string
	for lvl := 0; lvl <= p.Depth; lvl++ {
		width := 1
		if lvl > 0 {
			width = 2 + rng.Intn(p.Width-1)
			if lvl == 1 {
				width = 2
			}
		}
		var level []string
		for i := 0; i < width; i++ {
			name := fmt.Sprintf("as%d_%d", lvl, i)
			level = append(level, name)
			g.Nodes = append(g.Nodes, name)
			g.Level[name] = lvl
		}
		levels = append(levels, level)
	}
	// Providers: every AS below the root has one or two providers in the
	// level above — the chain as0_0 → as1_0 → … guarantees the exact depth.
	for lvl := 1; lvl <= p.Depth; lvl++ {
		for i, n := range levels[lvl] {
			prov := levels[lvl-1][i%len(levels[lvl-1])]
			g.Edges = append(g.Edges, ASEdge{A: prov, B: n, Rel: CustomerProvider})
			if rng.Float64() < p.MultihomeProb && len(levels[lvl-1]) > 1 {
				alt := levels[lvl-1][(i+1)%len(levels[lvl-1])]
				g.Edges = append(g.Edges, ASEdge{A: alt, B: n, Rel: CustomerProvider})
			}
		}
	}
	// Peer links within a level.
	for lvl := 1; lvl <= p.Depth; lvl++ {
		level := levels[lvl]
		for i := 0; i < len(level); i++ {
			for j := i + 1; j < len(level); j++ {
				if rng.Float64() < p.PeerProb {
					g.Edges = append(g.Edges, ASEdge{A: level[i], B: level[j], Rel: PeerPeer})
				}
			}
		}
	}
	return g
}

// Class returns the relationship class of neighbor v from u's perspective:
// "c" when v is u's customer, "p" when v is u's provider, "r" for peers and
// "" when not adjacent. This is the receiver-side label orientation the GPV
// protocol uses.
func (g *ASGraph) Class(u, v string) string {
	for _, e := range g.Edges {
		switch {
		case e.A == u && e.B == v:
			if e.Rel == CustomerProvider {
				return "c"
			}
			return "r"
		case e.A == v && e.B == u:
			if e.Rel == CustomerProvider {
				return "p"
			}
			return "r"
		}
	}
	return ""
}

// ClassMap precomputes Class(u, v) for every adjacent pair (first edge
// wins, matching Class's scan order), for callers that classify edges
// inside inner loops — Class itself is a linear scan over g.Edges.
func (g *ASGraph) ClassMap() map[[2]string]string {
	m := make(map[[2]string]string, 2*len(g.Edges))
	set := func(u, v, c string) {
		k := [2]string{u, v}
		if _, ok := m[k]; !ok {
			m[k] = c
		}
	}
	for _, e := range g.Edges {
		if e.Rel == CustomerProvider {
			set(e.A, e.B, "c")
			set(e.B, e.A, "p")
		} else {
			set(e.A, e.B, "r")
			set(e.B, e.A, "r")
		}
	}
	return m
}

// Adjacency returns each node's neighbors in a stable order.
func (g *ASGraph) Adjacency() map[string][]string {
	adj := map[string][]string{}
	add := func(a, b string) {
		adj[a] = append(adj[a], b)
	}
	for _, e := range g.Edges {
		add(e.A, e.B)
		add(e.B, e.A)
	}
	for _, ns := range adj {
		sort.Strings(ns)
	}
	return adj
}

// WLink is a weighted undirected link of a router-level topology.
type WLink struct {
	A, B   string
	Weight int
}

// RouterGraph is a weighted intradomain topology with a route-reflector
// hierarchy (the Rocketfuel AS 1755 substitute: 87 routers, 322 links, 6
// reflector levels, 53 reflectors).
type RouterGraph struct {
	Routers []string
	Links   []WLink
	// ReflectorLevel maps reflector routers to their hierarchy level
	// (1..6); client routers are absent from the map.
	ReflectorLevel map[string]int
}

// ISPParams tunes GenerateISP; the defaults reproduce the §VI-B shape.
type ISPParams struct {
	Routers    int // default 87
	Links      int // default 322
	Reflectors int // default 53
	Levels     int // default 6
	MaxWeight  int // default 20
}

// GenerateISP synthesizes a connected weighted router graph with a
// reflector hierarchy. Construction: a random spanning tree for
// connectivity, random extra links up to the target count, weights uniform
// in [1, MaxWeight], reflectors chosen as the highest-degree routers and
// leveled by BFS depth from the highest-degree core router.
func GenerateISP(seed int64, p ISPParams) *RouterGraph {
	if p.Routers == 0 {
		p.Routers = 87
	}
	if p.Links == 0 {
		p.Links = 322
	}
	if p.Reflectors == 0 {
		p.Reflectors = 53
	}
	if p.Levels == 0 {
		p.Levels = 6
	}
	if p.MaxWeight == 0 {
		p.MaxWeight = 20
	}
	rng := rand.New(rand.NewSource(seed))
	g := &RouterGraph{ReflectorLevel: map[string]int{}}
	for i := 0; i < p.Routers; i++ {
		g.Routers = append(g.Routers, fmt.Sprintf("rt%02d", i))
	}
	haveLink := map[[2]string]bool{}
	addLink := func(a, b string) bool {
		if a == b {
			return false
		}
		if a > b {
			a, b = b, a
		}
		if haveLink[[2]string{a, b}] {
			return false
		}
		haveLink[[2]string{a, b}] = true
		g.Links = append(g.Links, WLink{A: a, B: b, Weight: 1 + rng.Intn(p.MaxWeight)})
		return true
	}
	// Random spanning tree.
	perm := rng.Perm(p.Routers)
	for i := 1; i < p.Routers; i++ {
		a := g.Routers[perm[i]]
		b := g.Routers[perm[rng.Intn(i)]]
		addLink(a, b)
	}
	for len(g.Links) < p.Links {
		addLink(g.Routers[rng.Intn(p.Routers)], g.Routers[rng.Intn(p.Routers)])
	}
	// Reflectors: highest-degree routers, leveled by BFS depth from the
	// densest core router, clamped to the level budget.
	deg := map[string]int{}
	adj := map[string][]string{}
	for _, l := range g.Links {
		deg[l.A]++
		deg[l.B]++
		adj[l.A] = append(adj[l.A], l.B)
		adj[l.B] = append(adj[l.B], l.A)
	}
	for _, ns := range adj {
		sort.Strings(ns)
	}
	byDeg := append([]string(nil), g.Routers...)
	sort.Slice(byDeg, func(i, j int) bool {
		if deg[byDeg[i]] != deg[byDeg[j]] {
			return deg[byDeg[i]] > deg[byDeg[j]]
		}
		return byDeg[i] < byDeg[j]
	})
	core := byDeg[0]
	depth := bfsDepth(adj, core)
	for i := 0; i < p.Reflectors && i < len(byDeg); i++ {
		r := byDeg[i]
		lvl := depth[r]
		if lvl < 1 {
			lvl = 1
		}
		if lvl > p.Levels {
			lvl = p.Levels
		}
		g.ReflectorLevel[r] = lvl
	}
	return g
}

func bfsDepth(adj map[string][]string, root string) map[string]int {
	depth := map[string]int{root: 1}
	queue := []string{root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, m := range adj[n] {
			if _, seen := depth[m]; !seen {
				depth[m] = depth[n] + 1
				queue = append(queue, m)
			}
		}
	}
	return depth
}

// AllPairsIGP computes all-pairs shortest-path costs over the weighted
// links (the pairwise IGP costs §VI-B precomputes).
func (g *RouterGraph) AllPairsIGP() map[string]map[string]int {
	adj := WeightedAdjacency(g.Links)
	out := map[string]map[string]int{}
	for _, src := range g.Routers {
		dist, _ := ShortestPathTree(adj, src)
		out[src] = dist
	}
	return out
}

// WeightedAdjacency builds the both-direction weighted adjacency of an
// undirected link set, neighbors in a stable (name) order. Each entry's A
// field is the owning node, so adj[n][i].B is n's i-th neighbor.
func WeightedAdjacency(links []WLink) map[string][]WLink {
	adj := map[string][]WLink{}
	for _, l := range links {
		adj[l.A] = append(adj[l.A], l)
		adj[l.B] = append(adj[l.B], WLink{A: l.B, B: l.A, Weight: l.Weight})
	}
	for _, nbs := range adj {
		sort.Slice(nbs, func(i, j int) bool { return nbs[i].B < nbs[j].B })
	}
	return adj
}

// ShortestPathTree runs a deterministic Dijkstra rooted at src over a
// WeightedAdjacency, returning distances and the parent pointers of the
// shortest-path tree. Ties — both in extraction order and in parent choice —
// are broken by node name, so equal inputs rebuild equal trees regardless
// of map iteration order. Linear extraction keeps the code dependency-free;
// the generated graphs are small (≤ a few hundred routers).
func ShortestPathTree(adj map[string][]WLink, src string) (map[string]int, map[string]string) {
	const inf = 1 << 30
	dist := map[string]int{src: 0}
	parent := map[string]string{}
	done := map[string]bool{}
	for {
		best, bestD := "", inf
		for n, d := range dist {
			if !done[n] && (d < bestD || (d == bestD && n < best)) {
				best, bestD = n, d
			}
		}
		if best == "" {
			return dist, parent
		}
		done[best] = true
		for _, l := range adj[best] {
			nd := bestD + l.Weight
			if d, ok := dist[l.B]; !ok || nd < d || (nd == d && best < parent[l.B]) {
				dist[l.B] = nd
				parent[l.B] = best
			}
		}
	}
}

// SessionGraph returns the iBGP session topology: sessions along every
// physical link with a reflector endpoint (clients peer with reflectors,
// reflectors mesh along the backbone).
func (g *RouterGraph) SessionGraph() []WLink {
	var out []WLink
	for _, l := range g.Links {
		_, ra := g.ReflectorLevel[l.A]
		_, rb := g.ReflectorLevel[l.B]
		if ra || rb {
			out = append(out, l)
		}
	}
	return out
}
