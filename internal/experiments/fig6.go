package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"fsr/internal/algebra"
	"fsr/internal/hlp"
	"fsr/internal/pathvector"
	"fsr/internal/simnet"
	"fsr/internal/trace"
)

// Figure6Result is the §VI-D alternative-mechanism comparison: path vector
// vs HLP vs HLP with cost hiding on a 10-domain hierarchy network.
type Figure6Result struct {
	// PV, HLP and HLPCH are the bandwidth series of Figure 6.
	PV, HLP, HLPCH []trace.Point
	// Convergence times per mechanism.
	PVConv, HLPConv, HLPCHConv time.Duration
	// Per-node communication cost in bytes (paper: PV 1.75 MB, HLP
	// 1.09 MB, HLP-CH 0.59 MB).
	PVBytes, HLPBytes, HLPCHBytes float64
	// Topology scale.
	Nodes, Domains, CrossLinks int
}

// String renders the comparison.
func (r Figure6Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 / §VI-D: %d domains, %d nodes, %d cross-domain links\n", r.Domains, r.Nodes, r.CrossLinks)
	fmt.Fprintf(&b, "%-8s %-14s %-16s\n", "proto", "convergence", "per-node bytes")
	fmt.Fprintf(&b, "%-8s %-14v %-16.0f\n", "PV", r.PVConv, r.PVBytes)
	fmt.Fprintf(&b, "%-8s %-14v %-16.0f\n", "HLP", r.HLPConv, r.HLPBytes)
	fmt.Fprintf(&b, "%-8s %-14v %-16.0f\n", "HLP-CH", r.HLPCHConv, r.HLPCHBytes)
	b.WriteString("series PV (time s, MBps):\n" + trace.FormatSeries(r.PV))
	b.WriteString("series HLP (time s, MBps):\n" + trace.FormatSeries(r.HLP))
	b.WriteString("series HLP-CH (time s, MBps):\n" + trace.FormatSeries(r.HLPCH))
	return b.String()
}

// Figure6Options tunes the experiment (defaults reproduce §VI-D: 10
// domains of 20 nodes, 84 cross-domain links, 10/50 ms latencies, cost
// hiding threshold 5).
type Figure6Options struct {
	Seed       int64
	Domains    int
	DomainSize int
	CrossLinks int
	Hiding     int
	Batch      time.Duration
	Horizon    time.Duration
	SeriesH    time.Duration
	IntraLat   time.Duration
	CrossLat   time.Duration
}

// hierNet is the generated 10-domain topology.
type hierNet struct {
	nodes      []string // all node names
	domainOf   map[string]string
	roots      []string // one top provider per domain
	intraLinks [][2]string
	intraW     map[[2]string]int
	crossLinks [][2]string
}

// buildHierNet synthesizes the §VI-D topology: each domain is a 20-node
// acyclic hierarchy rooted at a top provider (every other node has 1–2
// providers), plus cross-domain links.
func buildHierNet(opts Figure6Options) *hierNet {
	rng := rand.New(rand.NewSource(opts.Seed))
	h := &hierNet{domainOf: map[string]string{}, intraW: map[[2]string]int{}}
	for d := 0; d < opts.Domains; d++ {
		dom := fmt.Sprintf("D%d", d)
		var members []string
		for i := 0; i < opts.DomainSize; i++ {
			n := fmt.Sprintf("%s_n%02d", dom, i)
			members = append(members, n)
			h.nodes = append(h.nodes, n)
			h.domainOf[n] = dom
			if i == 0 {
				h.roots = append(h.roots, n)
				continue
			}
			// One or two providers among earlier members: acyclic, rooted.
			p1 := members[rng.Intn(i)]
			h.addIntra(p1, n, 1+rng.Intn(5))
			if i > 1 && rng.Float64() < 0.5 {
				p2 := members[rng.Intn(i)]
				if p2 != p1 {
					h.addIntra(p2, n, 1+rng.Intn(5))
				}
			}
		}
	}
	// Cross-domain links between random members of distinct domains.
	have := map[[2]string]bool{}
	for len(h.crossLinks) < opts.CrossLinks {
		a := h.nodes[rng.Intn(len(h.nodes))]
		b := h.nodes[rng.Intn(len(h.nodes))]
		if h.domainOf[a] == h.domainOf[b] {
			continue
		}
		k := [2]string{a, b}
		if a > b {
			k = [2]string{b, a}
		}
		if have[k] {
			continue
		}
		have[k] = true
		h.crossLinks = append(h.crossLinks, k)
	}
	return h
}

func (h *hierNet) addIntra(a, b string, w int) {
	for _, l := range h.intraLinks {
		if (l[0] == a && l[1] == b) || (l[0] == b && l[1] == a) {
			return
		}
	}
	h.intraLinks = append(h.intraLinks, [2]string{a, b})
	h.intraW[[2]string{a, b}] = w
	h.intraW[[2]string{b, a}] = w
}

// Figure6 runs the three mechanisms over the same topology and workload
// (routes to each domain's top provider) and reports the Figure 6 series.
func Figure6(opts Figure6Options) (*Figure6Result, error) {
	if opts.Domains == 0 {
		opts.Domains = 10
	}
	if opts.DomainSize == 0 {
		opts.DomainSize = 20
	}
	if opts.CrossLinks == 0 {
		opts.CrossLinks = 84
	}
	if opts.Hiding == 0 {
		opts.Hiding = 5
	}
	if opts.Batch == 0 {
		opts.Batch = 10 * time.Millisecond
	}
	if opts.Horizon == 0 {
		opts.Horizon = 5 * time.Second
	}
	if opts.SeriesH == 0 {
		opts.SeriesH = 400 * time.Millisecond
	}
	if opts.IntraLat == 0 {
		opts.IntraLat = 10 * time.Millisecond
	}
	if opts.CrossLat == 0 {
		opts.CrossLat = 50 * time.Millisecond
	}
	h := buildHierNet(opts)
	res := &Figure6Result{
		Nodes:      len(h.nodes),
		Domains:    opts.Domains,
		CrossLinks: len(h.crossLinks),
	}
	var err error
	if res.PV, res.PVConv, res.PVBytes, err = runPV(h, opts); err != nil {
		return nil, err
	}
	if res.HLP, res.HLPConv, res.HLPBytes, err = runHLP(h, opts, 0); err != nil {
		return nil, err
	}
	if res.HLPCH, res.HLPCHConv, res.HLPCHBytes, err = runHLP(h, opts, opts.Hiding); err != nil {
		return nil, err
	}
	return res, nil
}

// connectAll wires the topology into a network with the two latency
// classes.
func connectAll(h *hierNet, opts Figure6Options, add func(a, b string, cfg simnet.LinkConfig) error) error {
	intra := simnet.LinkConfig{Latency: opts.IntraLat, Bandwidth: 100e6}
	cross := simnet.LinkConfig{Latency: opts.CrossLat, Bandwidth: 100e6}
	for _, l := range h.intraLinks {
		if err := add(l[0], l[1], intra); err != nil {
			return err
		}
	}
	for _, l := range h.crossLinks {
		if err := add(l[0], l[1], cross); err != nil {
			return err
		}
	}
	return nil
}

// runPV executes the plain path-vector baseline: weighted shortest-path
// GPV in which every router is a destination, the workload BGP-like path
// vector actually carries (it scales with prefixes, where HLP scales with
// domains — the premise of §VI-D's comparison).
func runPV(h *hierNet, opts Figure6Options) ([]trace.Point, time.Duration, float64, error) {
	col := trace.NewCollector(10 * time.Millisecond)
	net := simnet.New(opts.Seed+3, col)
	alg := algebra.IGPCost{}
	codec := pathvector.NewSigCodec(alg)
	label := func(from, to simnet.NodeID) algebra.Label {
		if w, ok := h.intraW[[2]string{string(from), string(to)}]; ok {
			return algebra.LNum(w)
		}
		return algebra.LNum(10) // cross-domain links
	}
	for _, n := range h.nodes {
		cfg := pathvector.Config{
			Algebra:       alg,
			Label:         label,
			SelfOriginate: true,
			BatchInterval: opts.Batch,
			StartStagger:  opts.Batch / 2,
			SigFromKey:    codec.FromKey,
		}
		if err := net.AddNode(simnet.NodeID(n), pathvector.NewNode(cfg)); err != nil {
			return nil, 0, 0, err
		}
	}
	err := connectAll(h, opts, func(a, b string, cfg simnet.LinkConfig) error {
		return net.Connect(simnet.NodeID(a), simnet.NodeID(b), cfg)
	})
	if err != nil {
		return nil, 0, 0, err
	}
	run := net.Run(opts.Horizon)
	_, bytes := col.Totals()
	return col.BandwidthSeries(len(h.nodes), opts.SeriesH), run.Time, float64(bytes) / float64(len(h.nodes)), nil
}

// runHLP executes HLP with the given cost-hiding threshold.
func runHLP(h *hierNet, opts Figure6Options, hiding int) ([]trace.Point, time.Duration, float64, error) {
	col := trace.NewCollector(10 * time.Millisecond)
	net := simnet.New(opts.Seed+5, col)
	domainRoot := map[string]bool{}
	for _, r := range h.roots {
		domainRoot[r] = true
	}
	neighborsOf := map[string]map[string]int{}
	addNb := func(a, b string, w int) {
		if neighborsOf[a] == nil {
			neighborsOf[a] = map[string]int{}
		}
		neighborsOf[a][b] = w
	}
	for _, l := range h.intraLinks {
		w := h.intraW[[2]string{l[0], l[1]}]
		addNb(l[0], l[1], w)
		addNb(l[1], l[0], w)
	}
	for _, l := range h.crossLinks {
		addNb(l[0], l[1], 10)
		addNb(l[1], l[0], 10)
	}
	for _, n := range h.nodes {
		domOf := map[simnet.NodeID]string{}
		weight := map[simnet.NodeID]int{}
		for nb, w := range neighborsOf[n] {
			domOf[simnet.NodeID(nb)] = h.domainOf[nb]
			weight[simnet.NodeID(nb)] = w
		}
		cfg := hlp.Config{
			Domain:        h.domainOf[n],
			DomainOf:      domOf,
			Weight:        weight,
			CostHiding:    hiding,
			BatchInterval: opts.Batch,
			StartStagger:  opts.Batch / 2,
		}
		if domainRoot[n] {
			cfg.OriginDomains = []string{h.domainOf[n]}
		}
		if err := net.AddNode(simnet.NodeID(n), hlp.NewNode(cfg)); err != nil {
			return nil, 0, 0, err
		}
	}
	err := connectAll(h, opts, func(a, b string, cfg simnet.LinkConfig) error {
		return net.Connect(simnet.NodeID(a), simnet.NodeID(b), cfg)
	})
	if err != nil {
		return nil, 0, 0, err
	}
	run := net.Run(opts.Horizon)
	_, bytes := col.Totals()
	return col.BandwidthSeries(len(h.nodes), opts.SeriesH), run.Time, float64(bytes) / float64(len(h.nodes)), nil
}
