package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"fsr/internal/algebra"
	"fsr/internal/analysis"
	"fsr/internal/pathvector"
	"fsr/internal/simnet"
	"fsr/internal/spp"
	"fsr/internal/topology"
	"fsr/internal/trace"
)

// Figure5Result bundles the §VI-B experiment: iBGP configuration analysis
// on a Rocketfuel-style ISP with an embedded Figure 3 gadget, plus the
// bandwidth comparison of Figure 5.
type Figure5Result struct {
	// Analysis of the extracted SPP instance with the embedded gadget.
	GadgetAnalysis analysis.Result
	// Suspects are the nodes implicated by the unsat core — expected to be
	// the embedded reflectors.
	Suspects []spp.Node
	// EmbeddedReflectors are the routers the gadget was embedded on.
	EmbeddedReflectors []spp.Node
	// FixedAnalysis is the post-fix verification (expected sat).
	FixedAnalysis analysis.Result
	// Gadget and NoGadget are the bandwidth series of Figure 5.
	Gadget, NoGadget []trace.Point
	// GadgetBytes and NoGadgetBytes are total bytes sent.
	GadgetBytes, NoGadgetBytes int64
	// GadgetConv and NoGadgetConv are convergence times (horizon-capped
	// for the oscillating configuration).
	GadgetConv, NoGadgetConv time.Duration
	// Routers and Sessions describe the topology scale.
	Routers, Sessions int
}

// CommReduction returns the percentage decrease in communication overhead
// after the fix (the paper reports ≈91%).
func (r Figure5Result) CommReduction() float64 {
	if r.GadgetBytes == 0 {
		return 0
	}
	return 100 * (1 - float64(r.NoGadgetBytes)/float64(r.GadgetBytes))
}

// ConvReduction returns the percentage decrease in convergence time (the
// paper reports ≈82%).
func (r Figure5Result) ConvReduction() float64 {
	if r.GadgetConv == 0 {
		return 0
	}
	return 100 * (1 - r.NoGadgetConv.Seconds()/r.GadgetConv.Seconds())
}

// String renders the experiment summary and both series.
func (r Figure5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5 / §VI-B: iBGP configuration analysis (%d routers, %d sessions)\n", r.Routers, r.Sessions)
	fmt.Fprintf(&b, "gadget instance: %d ranking + %d strict-monotonicity constraints, sat=%v, core=%d, solver=%v\n",
		r.GadgetAnalysis.NumPreference, r.GadgetAnalysis.NumMonotonicity,
		r.GadgetAnalysis.Sat, len(r.GadgetAnalysis.Core), r.GadgetAnalysis.Stats.Duration)
	fmt.Fprintf(&b, "suspect nodes: %v (embedded: %v)\n", r.Suspects, r.EmbeddedReflectors)
	fmt.Fprintf(&b, "fixed instance: sat=%v\n", r.FixedAnalysis.Sat)
	fmt.Fprintf(&b, "bandwidth: gadget %.2f KB total, fixed %.2f KB total (%.0f%% decrease)\n",
		float64(r.GadgetBytes)/1e3, float64(r.NoGadgetBytes)/1e3, r.CommReduction())
	fmt.Fprintf(&b, "convergence: gadget %v, fixed %v (%.0f%% decrease)\n", r.GadgetConv, r.NoGadgetConv, r.ConvReduction())
	b.WriteString("series Gadget (time s, MBps):\n" + trace.FormatSeries(r.Gadget))
	b.WriteString("series NoGadget (time s, MBps):\n" + trace.FormatSeries(r.NoGadget))
	return b.String()
}

// Figure5Options tunes the experiment scale (defaults reproduce §VI-B:
// 87 routers, 322 links, 53 reflectors, 6 levels).
type Figure5Options struct {
	Seed    int64
	ISP     topology.ISPParams
	Batch   time.Duration
	Horizon time.Duration // execution horizon; the gadget run may not converge
	SeriesH time.Duration // figure x-axis span (paper: 0.4 s)
	MaxRank int           // permitted paths kept per router (path harvest cap)
}

// Figure5 reproduces the §VI-B workflow end to end:
//
//  1. generate the ISP topology and iBGP session graph;
//  2. embed the Figure 3 gadget on three connected reflectors and their
//     client egresses;
//  3. run GPV to harvest each router's permitted paths from its incoming
//     advertisements, ranked by IGP path cost (the extraction of §VI-B);
//  4. analyze the extracted SPP instance — unsat, with the minimal core
//     naming the embedded reflectors;
//  5. fix (revert to pure IGP-cost rankings), re-analyze — sat;
//  6. execute both configurations and compare bandwidth and convergence
//     (Figure 5's Gadget vs NoGadget).
func Figure5(opts Figure5Options) (*Figure5Result, error) {
	if opts.Batch == 0 {
		opts.Batch = 10 * time.Millisecond
	}
	if opts.Horizon == 0 {
		opts.Horizon = 2 * time.Second
	}
	if opts.SeriesH == 0 {
		opts.SeriesH = 400 * time.Millisecond
	}
	if opts.MaxRank == 0 {
		opts.MaxRank = 4
	}
	g := topology.GenerateISP(opts.Seed, opts.ISP)
	sessions := g.SessionGraph()

	// Choose the embedding: three reflectors forming a connected triple in
	// the session graph, each with a distinct neighbor as client egress.
	refA, refB, refC, egress, err := chooseEmbedding(g, sessions)
	if err != nil {
		return nil, err
	}
	embedded := []spp.Node{spp.Node(refA), spp.Node(refB), spp.Node(refC)}

	// Harvest permitted paths by executing GPV with the IGP-cost policy
	// (§VI-B: "populate the permitted paths of each router based on its
	// incoming route advertisements").
	links, costs, obs, err := harvestPaths(g, sessions, egress, opts)
	if err != nil {
		return nil, err
	}
	ranker := spp.IGPCostRanker(costs)
	fixedInst, err := spp.Extract("isp-igp", links, costs, obs, ranker)
	if err != nil {
		return nil, err
	}
	capRankings(fixedInst, opts.MaxRank)

	gadgetInst, err := spp.Extract("isp-gadget", links, costs, obs, ranker)
	if err != nil {
		return nil, err
	}
	capRankings(gadgetInst, opts.MaxRank)
	embedGadget(gadgetInst, refA, refB, refC, egress)

	res := &Figure5Result{
		Routers:            len(g.Routers),
		Sessions:           len(sessions),
		EmbeddedReflectors: embedded,
	}

	// Analysis.
	gadgetConv, err := gadgetInst.ToAlgebra()
	if err != nil {
		return nil, err
	}
	res.GadgetAnalysis, err = analysis.Check(gadgetConv.Algebra, analysis.StrictMonotonicity)
	if err != nil {
		return nil, err
	}
	res.Suspects = gadgetConv.SuspectNodes(res.GadgetAnalysis.Core)
	fixedConv, err := fixedInst.ToAlgebra()
	if err != nil {
		return nil, err
	}
	res.FixedAnalysis, err = analysis.Check(fixedConv.Algebra, analysis.StrictMonotonicity)
	if err != nil {
		return nil, err
	}

	// Execution: Figure 5's bandwidth comparison.
	res.Gadget, res.GadgetBytes, res.GadgetConv, err = runInstance(gadgetConv, opts)
	if err != nil {
		return nil, err
	}
	res.NoGadget, res.NoGadgetBytes, res.NoGadgetConv, err = runInstance(fixedConv, opts)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// chooseEmbedding finds three mutually reachable reflectors and one
// distinct client neighbor each; missing triangle sessions are added by the
// embedding itself (the paper "embeds a gadget similar to Figure 3").
func chooseEmbedding(g *topology.RouterGraph, sessions []topology.WLink) (a, b, c string, egress map[string]string, err error) {
	adj := map[string]map[string]bool{}
	for _, l := range sessions {
		if adj[l.A] == nil {
			adj[l.A] = map[string]bool{}
		}
		if adj[l.B] == nil {
			adj[l.B] = map[string]bool{}
		}
		adj[l.A][l.B] = true
		adj[l.B][l.A] = true
	}
	var reflectors []string
	for r := range g.ReflectorLevel {
		reflectors = append(reflectors, r)
	}
	sort.Strings(reflectors)
	pickClient := func(r string, taken map[string]bool) string {
		var ns []string
		for n := range adj[r] {
			ns = append(ns, n)
		}
		sort.Strings(ns)
		for _, n := range ns {
			if !taken[n] {
				return n
			}
		}
		return ""
	}
	for _, ra := range reflectors {
		var nbs []string
		for n := range adj[ra] {
			if _, isRef := g.ReflectorLevel[n]; isRef {
				nbs = append(nbs, n)
			}
		}
		sort.Strings(nbs)
		for _, rb := range nbs {
			for _, rc := range nbs {
				if rb >= rc {
					continue
				}
				taken := map[string]bool{ra: true, rb: true, rc: true}
				ca := pickClient(ra, taken)
				taken[ca] = true
				cb := pickClient(rb, taken)
				taken[cb] = true
				cc := pickClient(rc, taken)
				if ca != "" && cb != "" && cc != "" {
					return ra, rb, rc, map[string]string{ra: ca, rb: cb, rc: cc}, nil
				}
			}
		}
	}
	return "", "", "", nil, fmt.Errorf("experiments: no embedding site found in session graph")
}

// harvestPaths runs the IGP-cost GPV over the session graph, recording
// every imported advertisement.
func harvestPaths(g *topology.RouterGraph, sessions []topology.WLink, egress map[string]string, opts Figure5Options) ([]spp.Link, map[spp.Link]int, []spp.Observation, error) {
	weight := map[[2]string]int{}
	var links []spp.Link
	costs := map[spp.Link]int{}
	for _, l := range sessions {
		weight[[2]string{l.A, l.B}] = l.Weight
		weight[[2]string{l.B, l.A}] = l.Weight
		links = append(links, spp.Link{From: spp.Node(l.A), To: spp.Node(l.B)}, spp.Link{From: spp.Node(l.B), To: spp.Node(l.A)})
		costs[spp.Link{From: spp.Node(l.A), To: spp.Node(l.B)}] = l.Weight
		costs[spp.Link{From: spp.Node(l.B), To: spp.Node(l.A)}] = l.Weight
	}
	alg := algebra.IGPCost{}
	codec := pathvector.NewSigCodec(alg)
	var obs []spp.Observation
	base := pathvector.Config{
		Algebra: alg,
		Label: func(from, to simnet.NodeID) algebra.Label {
			w := weight[[2]string{string(from), string(to)}]
			if w == 0 {
				w = 1
			}
			return algebra.LNum(w)
		},
		BatchInterval: opts.Batch,
		StartStagger:  opts.Batch / 2,
		MaxPathLen:    8,
		SigFromKey:    codec.FromKey,
		OnAdvert: func(node simnet.NodeID, rt pathvector.Route) {
			p := make(spp.Path, len(rt.Path))
			for i, h := range rt.Path {
				p[i] = spp.Node(h)
			}
			obs = append(obs, spp.Observation{Node: spp.Node(node), Path: p})
		},
	}
	net := simnet.New(opts.Seed+17, nil)
	inSession := map[string]bool{}
	for _, l := range sessions {
		inSession[l.A] = true
		inSession[l.B] = true
	}
	tokens := []string{"r1", "r2", "r3"}
	ti := 0
	egressToken := map[string]string{}
	var egressNames []string
	for _, e := range egress {
		egressNames = append(egressNames, e)
	}
	sort.Strings(egressNames)
	for _, e := range egressNames {
		egressToken[e] = tokens[ti%len(tokens)]
		ti++
	}
	for _, r := range g.Routers {
		if !inSession[r] {
			continue
		}
		cfg := base
		if tok, isEgress := egressToken[r]; isEgress {
			cfg.Originations = []pathvector.Route{{
				Dest: pathvector.SPPDest,
				Path: []simnet.NodeID{simnet.NodeID(r), simnet.NodeID(tok)},
				Sig:  algebra.Num(1),
			}}
			// The egress also observes its own externally learned route.
			obs = append(obs, spp.Observation{Node: spp.Node(r), Path: spp.P(r, tok)})
		}
		if err := net.AddNode(simnet.NodeID(r), pathvector.NewNode(cfg)); err != nil {
			return nil, nil, nil, err
		}
	}
	for _, l := range sessions {
		if err := net.Connect(simnet.NodeID(l.A), simnet.NodeID(l.B), simnet.DefaultLink()); err != nil {
			return nil, nil, nil, err
		}
	}
	net.Run(opts.Horizon * 2)
	return links, costs, obs, nil
}

// capRankings keeps only the top-k permitted paths per node.
func capRankings(in *spp.Instance, k int) {
	for n, paths := range in.Permitted {
		if len(paths) > k {
			in.Permitted[n] = paths[:k]
		}
	}
}

// embedGadget overrides the rankings of the three chosen reflectors and
// their client egresses with the Figure 3 preference cycle: each reflector
// prefers the route through the next reflector's client over its own
// client's route.
func embedGadget(in *spp.Instance, ra, rb, rc string, egress map[string]string) {
	ca, cb, cc := egress[ra], egress[rb], egress[rc]
	token := func(c string) string {
		for _, p := range in.Permitted[spp.Node(c)] {
			if len(p) == 2 {
				return string(p[1])
			}
		}
		return "r1"
	}
	ta, tb, tc := token(ca), token(cb), token(cc)
	// Sessions the gadget needs (reflector triangle and client legs) are
	// part of the embedding.
	ensure := func(a, b string) {
		if !in.HasLink(spp.Node(a), spp.Node(b)) {
			in.AddSession(spp.Node(a), spp.Node(b), 10)
		}
	}
	ensure(ra, rb)
	ensure(rb, rc)
	ensure(rc, ra)
	ensure(ra, ca)
	ensure(rb, cb)
	ensure(rc, cc)
	in.Rank(spp.Node(ra), spp.P(ra, rb, cb, tb), spp.P(ra, ca, ta))
	in.Rank(spp.Node(rb), spp.P(rb, rc, cc, tc), spp.P(rb, cb, tb))
	in.Rank(spp.Node(rc), spp.P(rc, ra, ca, ta), spp.P(rc, cc, tc))
	in.Rank(spp.Node(ca), spp.P(ca, ta), spp.P(ca, ra, rb, cb, tb))
	in.Rank(spp.Node(cb), spp.P(cb, tb), spp.P(cb, rb, rc, cc, tc))
	in.Rank(spp.Node(cc), spp.P(cc, tc), spp.P(cc, rc, ra, ca, ta))
}

// runInstance executes a converted SPP instance under GPV and reports its
// bandwidth series, total bytes, and (horizon-capped) convergence time.
func runInstance(conv *spp.Conversion, opts Figure5Options) ([]trace.Point, int64, time.Duration, error) {
	col := trace.NewCollector(10 * time.Millisecond)
	net := simnet.New(opts.Seed+29, col)
	link := simnet.LinkConfig{Latency: 10 * time.Millisecond, Jitter: 3 * time.Millisecond, Bandwidth: 100e6}
	_, err := pathvector.BuildSPP(net, conv, link, pathvector.Config{
		BatchInterval: opts.Batch,
		StartStagger:  opts.Batch / 2,
		MaxPathLen:    8,
	})
	if err != nil {
		return nil, 0, 0, err
	}
	res := net.Run(opts.Horizon)
	_, bytes := col.Totals()
	series := col.BandwidthSeries(len(conv.Instance.Nodes), opts.SeriesH)
	return series, bytes, res.Time, nil
}
