package experiments

import (
	"testing"
	"time"
)

// TestFigure4Shape checks the Figure 4 claims at test scale: convergence
// time grows with the longest customer-provider chain, every point
// converges, and every point beats the theoretical worst case 2×(d+1)
// phases (§VI-A: "the protocol converges faster than the theoretical worst
// case").
func TestFigure4Shape(t *testing.T) {
	res, err := Figure4(Figure4Options{
		Seed:   1,
		Depths: []int{3, 5, 7, 9},
		Batch:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Figure4: %v", err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(res.Rows))
	}
	for i, row := range res.Rows {
		if !row.Converged {
			t.Errorf("depth %d: did not converge", row.Depth)
		}
		if row.SimTime >= row.WorstCase {
			t.Errorf("depth %d: sim time %v should beat worst case %v", row.Depth, row.SimTime, row.WorstCase)
		}
		if i > 0 && row.SimTime < res.Rows[0].SimTime/2 {
			t.Errorf("depth %d: convergence time should grow with depth (%v vs depth-%d's %v)",
				row.Depth, row.SimTime, res.Rows[0].Depth, res.Rows[0].SimTime)
		}
	}
	// The trend: deepest chain takes longer than the shallowest.
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if last.SimTime <= first.SimTime {
		t.Errorf("convergence should increase with chain length: depth %d → %v, depth %d → %v",
			first.Depth, first.SimTime, last.Depth, last.SimTime)
	}
}

// TestFigure4Deployment runs the CAIDA-Testbed series (real sockets) at a
// small scale and checks it mirrors the simulation ordering.
func TestFigure4Deployment(t *testing.T) {
	if testing.Short() {
		t.Skip("deployment mode uses real sockets and wall-clock batching")
	}
	res, err := Figure4(Figure4Options{
		Seed:       1,
		Depths:     []int{3},
		Batch:      30 * time.Millisecond,
		Deployment: true,
	})
	if err != nil {
		t.Fatalf("Figure4: %v", err)
	}
	row := res.Rows[0]
	if row.TestTime <= 0 {
		t.Fatalf("deployment run did not produce a convergence time")
	}
	if row.TestTime >= row.WorstCase*2 {
		t.Errorf("deployment convergence %v far beyond worst case %v", row.TestTime, row.WorstCase)
	}
}

// TestFigure5Shape checks the §VI-B workflow at reduced scale: the gadget
// instance is unsat with a small core naming only embedded routers, the
// fixed instance is sat, and fixing reduces both traffic and convergence
// time (the paper reports ≈91% and ≈82% on its testbed).
func TestFigure5Shape(t *testing.T) {
	res, err := Figure5(Figure5Options{
		Seed:    5,
		Batch:   10 * time.Millisecond,
		Horizon: 1500 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Figure5: %v", err)
	}
	if res.GadgetAnalysis.Sat {
		t.Errorf("gadget instance should be unsat")
	}
	if res.FixedAnalysis.Sat != true {
		t.Errorf("fixed instance should be sat:\n%s", res.FixedAnalysis)
	}
	if n := len(res.GadgetAnalysis.Core); n == 0 || n > 8 {
		t.Errorf("gadget core should be small (dispute wheel), got %d constraints", n)
	}
	limit := 2 * time.Second
	if raceEnabled {
		limit *= 10 // the race detector slows the minimization probes
	}
	if res.GadgetAnalysis.Stats.Duration > limit {
		t.Errorf("solver should answer quickly (paper: <100 ms), took %v", res.GadgetAnalysis.Stats.Duration)
	}
	// Pinpointing: every suspect is an embedded router (reflector or its
	// client egress).
	embedded := map[string]bool{}
	for _, r := range res.EmbeddedReflectors {
		embedded[string(r)] = true
	}
	for _, s := range res.Suspects {
		if !embedded[string(s)] {
			t.Errorf("suspect %s is not an embedded reflector %v", s, res.EmbeddedReflectors)
		}
	}
	if len(res.Suspects) == 0 {
		t.Errorf("core should implicate the embedded reflectors")
	}
	// Figure 5's shape: the gadget run generates strictly more traffic and
	// converges later.
	if res.NoGadgetBytes >= res.GadgetBytes {
		t.Errorf("fix should reduce traffic: gadget %d bytes, fixed %d bytes", res.GadgetBytes, res.NoGadgetBytes)
	}
	if res.NoGadgetConv >= res.GadgetConv {
		t.Errorf("fix should reduce convergence time: gadget %v, fixed %v", res.GadgetConv, res.NoGadgetConv)
	}
	if res.CommReduction() < 30 {
		t.Errorf("communication reduction %.0f%% implausibly small (paper: ≈91%%)", res.CommReduction())
	}
}

// TestFigure6Shape checks the §VI-D ordering at reduced scale: HLP
// converges no slower than PV and costs fewer bytes per node; cost hiding
// reduces bytes further (paper: PV 1.75 MB > HLP 1.09 MB > HLP-CH
// 0.59 MB).
func TestFigure6Shape(t *testing.T) {
	res, err := Figure6(Figure6Options{
		Seed:       3,
		Domains:    4,
		DomainSize: 8,
		CrossLinks: 12,
		Batch:      10 * time.Millisecond,
		Horizon:    10 * time.Second,
	})
	if err != nil {
		t.Fatalf("Figure6: %v", err)
	}
	if res.PVBytes <= res.HLPBytes {
		t.Errorf("PV should cost more than HLP: PV %.0f, HLP %.0f bytes/node", res.PVBytes, res.HLPBytes)
	}
	if res.HLPBytes <= res.HLPCHBytes {
		t.Errorf("cost hiding should reduce bytes: HLP %.0f, HLP-CH %.0f bytes/node", res.HLPBytes, res.HLPCHBytes)
	}
	if res.HLPConv > res.PVConv*2 {
		t.Errorf("HLP convergence %v should be comparable to or faster than PV %v", res.HLPConv, res.PVConv)
	}
}

// TestTableI checks the classification of the built-in configurations
// against the paper's Table I rows.
func TestTableI(t *testing.T) {
	rows := TableI()
	want := map[string][3]string{
		"Hop-count":    {"General", "Specific", "None"},
		"Gao-Rexford":  {"General", "Constrained", "Constrained"},
		"IGP-cost":     {"Specific", "Specific", "Constrained"},
		"SPP instance": {"Specific", "Specific", "Specific"},
	}
	for _, r := range rows {
		w, ok := want[r.Policy]
		if !ok {
			t.Errorf("unexpected policy %s", r.Policy)
			continue
		}
		if r.Topology != w[0] || r.Preferences != w[1] || r.Filters != w[2] {
			t.Errorf("%s: got (%s,%s,%s), want (%s,%s,%s)", r.Policy,
				r.Topology, r.Preferences, r.Filters, w[0], w[1], w[2])
		}
	}
}

// TestSectionVIC checks the gadget study outcomes.
func TestSectionVIC(t *testing.T) {
	reps, err := SectionVIC(SectionVICOptions{Seed: 1, Horizon: 8 * time.Second})
	if err != nil {
		t.Fatalf("SectionVIC: %v", err)
	}
	byName := map[string]GadgetReport{}
	for _, r := range reps {
		byName[r.Name] = r
	}
	if g := byName["goodgadget"]; !g.Sat || !g.Converged {
		t.Errorf("GOODGADGET should be sat and converge: %+v", g)
	}
	if g := byName["badgadget"]; g.Sat || g.Converged {
		t.Errorf("BADGADGET should be unsat and oscillate: %+v", g)
	}
	if g := byName["disagree"]; g.Sat {
		t.Errorf("DISAGREE should be reported unsafe (sufficient condition): %+v", g)
	}
	if g := byName["disagree"]; !g.Converged {
		t.Errorf("DISAGREE should converge after transient oscillation: %+v", g)
	}
}

// TestGoodGadgetScaling: more gadgets, more messages, still convergent.
func TestGoodGadgetScaling(t *testing.T) {
	reps, err := GoodGadgetScaling([]int{1, 3, 6}, SectionVICOptions{Seed: 1})
	if err != nil {
		t.Fatalf("GoodGadgetScaling: %v", err)
	}
	for i, r := range reps {
		if !r.Converged {
			t.Errorf("%s should converge", r.Name)
		}
		if i > 0 && r.Messages <= reps[i-1].Messages {
			t.Errorf("communication cost should grow with gadget count: %s %d msgs vs %s %d msgs",
				r.Name, r.Messages, reps[i-1].Name, reps[i-1].Messages)
		}
	}
}

// TestDisagreeSweep: more conflicting links, slower convergence.
func TestDisagreeSweep(t *testing.T) {
	rows, err := DisagreeSweep(6, []float64{0, 0.5, 1.0}, SectionVICOptions{Seed: 2})
	if err != nil {
		t.Fatalf("DisagreeSweep: %v", err)
	}
	for _, r := range rows {
		if !r.Converged {
			t.Errorf("fraction %.2f: should converge, took %v", r.ConflictFraction, r.Time)
		}
	}
	if rows[len(rows)-1].Time <= rows[0].Time {
		t.Errorf("convergence should slow with conflicting links: %v (all) vs %v (none)",
			rows[len(rows)-1].Time, rows[0].Time)
	}
}
