// Package experiments implements one runner per table and figure of the
// paper's evaluation (§VI), producing the same rows and series the paper
// reports. Each runner is deterministic in its seed and returns structured
// results that the CLI renders and the test suite asserts shape properties
// on (who wins, trends, crossovers) — absolute constants belong to the
// authors' testbed, not to this substrate.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"fsr/internal/algebra"
	"fsr/internal/pathvector"
	"fsr/internal/simnet"
	"fsr/internal/topology"
)

// Figure4Row is one point of Figure 4: convergence time against the length
// of the longest customer-provider chain.
type Figure4Row struct {
	Depth     int
	Nodes     int
	SimTime   time.Duration // CAIDA-Sim series
	TestTime  time.Duration // CAIDA-Testbed series (deployment mode); 0 when skipped
	WorstCase time.Duration // theoretical bound 2×(d+1) phases
	Converged bool
}

// Figure4Result is the full figure.
type Figure4Result struct {
	Rows  []Figure4Row
	Batch time.Duration
}

// String renders the figure's data as the paper's plot series.
func (r Figure4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: convergence time vs longest customer-provider chain (batch %v)\n", r.Batch)
	fmt.Fprintf(&b, "%-6s %-6s %-12s %-14s %-12s\n", "chain", "nodes", "CAIDA-Sim", "CAIDA-Testbed", "WorstCase")
	for _, row := range r.Rows {
		tb := "-"
		if row.TestTime > 0 {
			tb = fmt.Sprintf("%.2fs", row.TestTime.Seconds())
		}
		fmt.Fprintf(&b, "%-6d %-6d %-12s %-14s %-12s\n", row.Depth, row.Nodes,
			fmt.Sprintf("%.2fs", row.SimTime.Seconds()), tb,
			fmt.Sprintf("%.2fs", row.WorstCase.Seconds()))
	}
	return b.String()
}

// Figure4Options tunes the experiment. The paper uses depths 3–16 and a 1 s
// propagation batch; tests shrink both to stay fast.
type Figure4Options struct {
	Seed       int64
	Depths     []int
	Batch      time.Duration
	Deployment bool // also run the CAIDA-Testbed series over real sockets
}

// Figure4 reproduces §VI-A: the Gao-Rexford guideline A composed with
// shortest hop-count (proven safe in §IV-C) executed as GPV over annotated
// AS hierarchies of increasing depth, against the theoretical worst case of
// 2×(d+1) phases (Sami, Schapira, Zohar).
func Figure4(opts Figure4Options) (Figure4Result, error) {
	if len(opts.Depths) == 0 {
		opts.Depths = []int{3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	}
	if opts.Batch == 0 {
		opts.Batch = time.Second
	}
	res := Figure4Result{Batch: opts.Batch}
	for _, depth := range opts.Depths {
		g := topology.GenerateHierarchy(opts.Seed+int64(depth), topology.HierarchyParams{Depth: depth})
		row := Figure4Row{
			Depth:     depth,
			Nodes:     len(g.Nodes),
			WorstCase: time.Duration(2*(depth+1)) * opts.Batch,
		}
		simTime, converged, err := runGaoRexfordSim(g, opts.Batch, row.WorstCase*4)
		if err != nil {
			return res, err
		}
		row.SimTime, row.Converged = simTime, converged
		if opts.Deployment {
			tb, err := runGaoRexfordDeployment(g, opts.Batch, row.WorstCase*4)
			if err != nil {
				return res, err
			}
			row.TestTime = tb
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// gaoRexfordConfig builds the per-node GPV configuration for an annotated
// AS graph under guideline A ⊗ hop count.
func gaoRexfordConfig(g *topology.ASGraph, batch time.Duration) (algebra.Algebra, func(from, to simnet.NodeID) algebra.Label, pathvector.Config) {
	alg := algebra.GaoRexfordWithHopCount()
	label := func(from, to simnet.NodeID) algebra.Label {
		class := g.Class(string(from), string(to))
		var l algebra.Label
		switch class {
		case "c":
			l = algebra.LabC
		case "p":
			l = algebra.LabP
		default:
			l = algebra.LabR
		}
		return algebra.LabelPair{A: l, B: algebra.LNum(1)}
	}
	codec := pathvector.NewSigCodec(alg)
	base := pathvector.Config{
		Algebra:       alg,
		Label:         label,
		SelfOriginate: true,
		BatchInterval: batch,
		StartStagger:  batch / 4,
		SigFromKey:    codec.FromKey,
	}
	return alg, label, base
}

// runGaoRexfordSim executes the workload in simulation mode.
func runGaoRexfordSim(g *topology.ASGraph, batch, horizon time.Duration) (time.Duration, bool, error) {
	_, _, base := gaoRexfordConfig(g, batch)
	net := simnet.New(7, nil)
	for _, n := range g.Nodes {
		if err := net.AddNode(simnet.NodeID(n), pathvector.NewNode(base)); err != nil {
			return 0, false, err
		}
	}
	for _, e := range g.Edges {
		if err := net.Connect(simnet.NodeID(e.A), simnet.NodeID(e.B), simnet.DefaultLink()); err != nil {
			return 0, false, err
		}
	}
	res := net.Run(horizon)
	return res.Time, res.Converged, nil
}

// runGaoRexfordDeployment executes the same workload over loopback TCP
// (RapidNet deployment mode).
func runGaoRexfordDeployment(g *topology.ASGraph, batch, horizon time.Duration) (time.Duration, error) {
	_, _, base := gaoRexfordConfig(g, batch)
	dep := simnet.NewDeployment(nil)
	for _, n := range g.Nodes {
		if err := dep.AddNode(simnet.NodeID(n), pathvector.NewNode(base)); err != nil {
			return 0, err
		}
	}
	for _, e := range g.Edges {
		if err := dep.Connect(simnet.NodeID(e.A), simnet.NodeID(e.B)); err != nil {
			return 0, err
		}
	}
	res, err := dep.Run(horizon, batch/2)
	if err != nil {
		return 0, err
	}
	return res.Time, nil
}
