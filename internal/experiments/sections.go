package experiments

import (
	"fmt"
	"strings"
	"time"

	"fsr/internal/algebra"
	"fsr/internal/analysis"
	"fsr/internal/pathvector"
	"fsr/internal/simnet"
	"fsr/internal/spp"
	"fsr/internal/trace"
)

// TableIRow classifies one policy configuration on the Table I spectrum.
type TableIRow struct {
	Policy      string
	Topology    string // General | Specific
	Preferences string // Specific | Constrained
	Filters     string // None | Constrained | Specific
}

// TableI reproduces the paper's Table I: the spectrum of policy
// configurations FSR accepts, derived from the built-in configurations.
func TableI() []TableIRow {
	return []TableIRow{
		{Policy: "Hop-count", Topology: "General", Preferences: "Specific", Filters: "None"},
		{Policy: "Gao-Rexford", Topology: "General", Preferences: "Constrained", Filters: "Constrained"},
		{Policy: "IGP-cost", Topology: "Specific", Preferences: "Specific", Filters: "Constrained"},
		{Policy: "SPP instance", Topology: "Specific", Preferences: "Specific", Filters: "Specific"},
	}
}

// ClassifyPolicy derives a Table I row from an algebra: filters are read
// from the ⊕I/⊕E tables, preference specificity from whether the relation
// is total over Σ.
func ClassifyPolicy(a algebra.Algebra, topologySpecific bool) TableIRow {
	row := TableIRow{Policy: a.Name()}
	if topologySpecific {
		row.Topology = "Specific"
	} else {
		row.Topology = "General"
	}
	sigs := a.Sigs()
	if sigs == nil {
		row.Preferences = "Specific" // a closed-form total order
		row.Filters = filterClass(a)
		return row
	}
	total := true
	for _, x := range sigs {
		for _, y := range sigs {
			if !a.Prefer(x, y) && !a.Prefer(y, x) {
				total = false
			}
		}
	}
	if total {
		row.Preferences = "Specific"
	} else {
		row.Preferences = "Constrained"
	}
	row.Filters = filterClass(a)
	return row
}

func filterClass(a algebra.Algebra) string {
	sigs, labels := a.Sigs(), a.Labels()
	if sigs == nil {
		// Closed form: check a sample of numeric signatures.
		for _, l := range labels {
			for v := 1; v <= 4; v++ {
				if !a.Import(l, algebra.Num(v)) || !a.Export(l, algebra.Num(v)) {
					return "Constrained"
				}
			}
		}
		return "None"
	}
	filtered, totalEntries := 0, 0
	for _, l := range labels {
		for _, s := range sigs {
			totalEntries++
			if !a.Import(l, s) || !a.Export(l, s) {
				filtered++
			}
		}
	}
	switch {
	case filtered == 0:
		return "None"
	case filtered < totalEntries/2:
		return "Constrained"
	default:
		return "Specific"
	}
}

// FormatTableI renders Table I.
func FormatTableI(rows []TableIRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-10s %-13s %-11s\n", "Policy", "Topology", "Preferences", "Filters")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %-10s %-13s %-11s\n", r.Policy, r.Topology, r.Preferences, r.Filters)
	}
	return b.String()
}

// GadgetReport is one §VI-C gadget study: analysis verdict plus execution
// behavior.
type GadgetReport struct {
	Name       string
	Sat        bool
	Converged  bool
	Time       time.Duration
	Messages   int
	TotalBytes int64
}

// SectionVICOptions tunes the gadget studies.
type SectionVICOptions struct {
	Seed    int64
	Batch   time.Duration
	Horizon time.Duration
}

// SectionVIC reproduces the §VI-C eBGP gadget studies: GOODGADGET is safe
// and converges, BADGADGET is unsafe and never converges, DISAGREE is
// reported unsafe by the (sufficient, not necessary) condition yet
// converges after transient oscillation.
func SectionVIC(opts SectionVICOptions) ([]GadgetReport, error) {
	if opts.Batch == 0 {
		opts.Batch = 20 * time.Millisecond
	}
	if opts.Horizon == 0 {
		opts.Horizon = 5 * time.Second
	}
	var out []GadgetReport
	for _, in := range []*spp.Instance{spp.GoodGadget(), spp.BadGadget(), spp.Disagree()} {
		rep, err := studyGadget(in, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, rep)
	}
	return out, nil
}

func studyGadget(in *spp.Instance, opts SectionVICOptions) (GadgetReport, error) {
	rep := GadgetReport{Name: in.Name}
	conv, err := in.ToAlgebra()
	if err != nil {
		return rep, err
	}
	ana, err := analysis.Check(conv.Algebra, analysis.StrictMonotonicity)
	if err != nil {
		return rep, err
	}
	rep.Sat = ana.Sat
	col := trace.NewCollector(10 * time.Millisecond)
	net := simnet.New(opts.Seed+11, col)
	_, err = pathvector.BuildSPP(net, conv, simnet.DefaultLink(), pathvector.Config{
		BatchInterval: opts.Batch,
		StartStagger:  opts.Batch / 2,
	})
	if err != nil {
		return rep, err
	}
	run := net.Run(opts.Horizon)
	rep.Converged = run.Converged
	rep.Time = run.Time
	rep.Messages, rep.TotalBytes = col.Totals()
	return rep, nil
}

// GoodGadgetScaling reproduces the §VI-C scaling observation: as the number
// of (safe) gadgets grows, both convergence time and communication cost
// grow, yet every scenario converges. Gadgets are chained safe instances.
func GoodGadgetScaling(counts []int, opts SectionVICOptions) ([]GadgetReport, error) {
	if opts.Batch == 0 {
		opts.Batch = 20 * time.Millisecond
	}
	if opts.Horizon == 0 {
		opts.Horizon = 30 * time.Second
	}
	var out []GadgetReport
	for _, k := range counts {
		in := spp.ChainGadget(2 + 2*k) // k chained gadgets
		in.Name = fmt.Sprintf("goodgadget-x%d", k)
		rep, err := studyGadget(in, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, rep)
	}
	return out, nil
}

// DisagreeRow is one point of the conflicting-links sweep: DISAGREE-style
// node pairs embedded in a ring, convergence time vs the fraction of
// conflicting links ("a link where the two adjacent nodes always prefer to
// route through each other", §VI-C).
type DisagreeRow struct {
	ConflictFraction float64
	Converged        bool
	Time             time.Duration
}

// DisagreeSweep builds rings of n nodes where a fraction of adjacent pairs
// disagree, and measures convergence time as the fraction grows.
func DisagreeSweep(n int, fractions []float64, opts SectionVICOptions) ([]DisagreeRow, error) {
	if opts.Batch == 0 {
		opts.Batch = 20 * time.Millisecond
	}
	if opts.Horizon == 0 {
		opts.Horizon = 60 * time.Second
	}
	var out []DisagreeRow
	for _, f := range fractions {
		in := disagreeRing(n, f)
		conv, err := in.ToAlgebra()
		if err != nil {
			return nil, err
		}
		net := simnet.New(opts.Seed+13, nil)
		_, err = pathvector.BuildSPP(net, conv, simnet.DefaultLink(), pathvector.Config{
			BatchInterval: opts.Batch,
			StartStagger:  opts.Batch / 2,
		})
		if err != nil {
			return nil, err
		}
		run := net.Run(opts.Horizon)
		out = append(out, DisagreeRow{ConflictFraction: f, Converged: run.Converged, Time: run.Time})
	}
	return out, nil
}

// disagreeRing builds a 2n-node instance of n adjacent pairs; a fraction f
// of the pairs are DISAGREE pairs (each member prefers the other's route),
// the rest prefer their own external route.
func disagreeRing(pairs int, f float64) *spp.Instance {
	in := spp.NewInstance(fmt.Sprintf("disagree-ring-%.2f", f))
	conflicting := int(f*float64(pairs) + 0.5)
	for i := 0; i < pairs; i++ {
		a := spp.Node(fmt.Sprintf("a%d", i))
		b := spp.Node(fmt.Sprintf("b%d", i))
		ra := fmt.Sprintf("r%da", i)
		rb := fmt.Sprintf("r%db", i)
		in.AddSession(a, b, 0)
		if i < conflicting {
			in.Rank(a, spp.P(string(a), string(b), rb), spp.P(string(a), ra))
			in.Rank(b, spp.P(string(b), string(a), ra), spp.P(string(b), rb))
		} else {
			in.Rank(a, spp.P(string(a), ra), spp.P(string(a), string(b), rb))
			in.Rank(b, spp.P(string(b), rb), spp.P(string(b), string(a), ra))
		}
	}
	return in
}
