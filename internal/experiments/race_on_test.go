//go:build race

package experiments

// raceEnabled relaxes wall-clock assertions: the race detector slows the
// solver's minimization probes by an order of magnitude.
const raceEnabled = true
