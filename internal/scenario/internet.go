package scenario

import (
	"fmt"
	"math/rand"
	"sort"

	"fsr/internal/spp"
	"fsr/internal/topology"
)

// Internet-shaped Gao-Rexford instances. The gao-rexford kind enumerates
// valley-free paths by DFS — fine on GenerateHierarchy's small regular
// trees, hopeless on power-law graphs where the tier-1 mesh creates an
// exponential path space. InternetSPP instead mimics what BGP itself
// computes: route propagation. Customer routes flood up the provider
// DAG from the destination (BFS, shortest-first), peer routes are derived
// in one pass (customer routes are the only ones exported to peers), and
// provider routes flood down by a bucketed Dijkstra over path length.
// Each node then ranks its best route via every export-legal neighbor —
// customer ≺ peer ≺ provider, shorter-first, neighbor-name tie-break —
// keeping at most maxAlt alternates. Every kept path extends the
// neighbor's primary (top-ranked) path, so the instance is
// permitted-closed, and (class, length) strictly increases along every
// permitted extension, which makes the violation-free instance provably
// safe (§III-B witness: the global (class, length, path-key) ordinal).
//
// The construction is O(E·maxAlt + V log V), so the same code serves
// campaign-sized instances (tens of nodes) and the 100k-node scale
// benchmarks.

// arc is a directed neighbor with its relationship class from the owning
// node's perspective: 'c' = neighbor is my customer, 'p' = my provider,
// 'r' = peer.
type arc struct {
	v   int32
	cls byte
}

func clsRank(c byte) int {
	switch c {
	case 'c':
		return 0
	case 'r':
		return 1
	default:
		return 2
	}
}

// InternetSPP derives the single-destination Gao-Rexford SPP instance
// from an AS graph by route propagation. The destination is the
// last-attached AS (a stub under preferential attachment), which yields
// the richest customer-route structure. maxAlt bounds the permitted paths
// kept per node (the destination keeps only its origination).
func InternetSPP(name string, g *topology.ASGraph, maxAlt int) *spp.Instance {
	n := len(g.Nodes)
	if maxAlt < 1 {
		maxAlt = 1
	}
	idx := make(map[string]int32, n)
	for i, nd := range g.Nodes {
		idx[nd] = int32(i)
	}
	dest := int32(n - 1)

	nbr := make([][]arc, n)
	for _, e := range g.Edges {
		a, b := idx[e.A], idx[e.B]
		if e.Rel == topology.CustomerProvider { // A provides transit to B
			nbr[a] = append(nbr[a], arc{b, 'c'})
			nbr[b] = append(nbr[b], arc{a, 'p'})
		} else {
			nbr[a] = append(nbr[a], arc{b, 'r'})
			nbr[b] = append(nbr[b], arc{a, 'r'})
		}
	}

	// primary[u] is u's best route to dest; primCls its class at u
	// ('o' marks the origination itself).
	primary := make([]spp.Path, n)
	primCls := make([]byte, n)
	primary[dest] = spp.Path{spp.Node(g.Nodes[dest]), "r1"}
	primCls[dest] = 'o'

	extend := func(u int32, tail spp.Path) spp.Path {
		p := make(spp.Path, 0, len(tail)+1)
		return append(append(p, spp.Node(g.Nodes[u])), tail...)
	}
	simple := func(u int32, tail spp.Path) bool {
		un := spp.Node(g.Nodes[u])
		for _, h := range tail {
			if h == un {
				return false
			}
		}
		return true
	}

	// Phase 1 — customer routes: BFS up the provider DAG. Round k settles
	// nodes whose shortest customer route has k real hops, so within a
	// round all candidates tie on length and the neighbor name decides.
	settled := []int32{dest}
	frontier := []int32{dest}
	for len(frontier) > 0 {
		best := map[int32]int32{}
		for _, v := range frontier {
			for _, a := range nbr[v] {
				if a.cls != 'p' { // a.v is v's provider: v exports its customer route up
					continue
				}
				u := a.v
				if primary[u] != nil || !simple(u, primary[v]) {
					continue
				}
				if w, ok := best[u]; !ok || g.Nodes[v] < g.Nodes[w] {
					best[u] = v
				}
			}
		}
		next := make([]int32, 0, len(best))
		for u := range best {
			next = append(next, u)
		}
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		for _, u := range next {
			primary[u] = extend(u, primary[best[u]])
			primCls[u] = 'c'
		}
		settled = append(settled, next...)
		frontier = next
	}

	// Phase 2 — peer routes: one pass, since only customer routes (and the
	// origination) are exported to peers; peer routes never chain.
	for u := int32(0); u < int32(n); u++ {
		if primary[u] != nil {
			continue
		}
		via := int32(-1)
		for _, a := range nbr[u] {
			v := a.v
			if a.cls != 'r' || primary[v] == nil || (primCls[v] != 'c' && primCls[v] != 'o') || !simple(u, primary[v]) {
				continue
			}
			if via < 0 || len(primary[v]) < len(primary[via]) ||
				(len(primary[v]) == len(primary[via]) && g.Nodes[v] < g.Nodes[via]) {
				via = v
			}
		}
		if via >= 0 {
			primary[u] = extend(u, primary[via])
			primCls[u] = 'r'
			settled = append(settled, u)
		}
	}

	// Phase 3 — provider routes: every settled node exports its primary to
	// its customers. Bucketed Dijkstra over candidate path length; the
	// neighbor name breaks ties within a bucket (all same-length candidates
	// for a node are present when its bucket drains, since exporters settle
	// strictly earlier).
	type cand struct{ u, via int32 }
	var buckets [][]cand
	push := func(u, via int32) {
		l := len(primary[via]) + 1
		for len(buckets) <= l {
			buckets = append(buckets, nil)
		}
		buckets[l] = append(buckets[l], cand{u, via})
	}
	for _, v := range settled {
		for _, a := range nbr[v] {
			if a.cls == 'c' && primary[a.v] == nil {
				push(a.v, v)
			}
		}
	}
	for l := 2; l < len(buckets); l++ {
		best := map[int32]int32{}
		for _, c := range buckets[l] {
			if primary[c.u] != nil || !simple(c.u, primary[c.via]) {
				continue
			}
			if w, ok := best[c.u]; !ok || g.Nodes[c.via] < g.Nodes[w] {
				best[c.u] = c.via
			}
		}
		us := make([]int32, 0, len(best))
		for u := range best {
			us = append(us, u)
		}
		sort.Slice(us, func(i, j int) bool { return us[i] < us[j] })
		for _, u := range us {
			primary[u] = extend(u, primary[best[u]])
			primCls[u] = 'p'
			for _, a := range nbr[u] {
				if a.cls == 'c' && primary[a.v] == nil {
					push(a.v, u)
				}
			}
		}
	}

	// Rankings: each node's export-legal candidates u·primary(v), ordered
	// customer ≺ peer ≺ provider, shorter-first, neighbor name. The first
	// candidate reproduces primary[u] by construction of the three phases.
	in := &spp.Instance{
		Name:      name,
		Nodes:     make([]spp.Node, n),
		Origins:   []spp.Node{"r1"},
		Links:     make([]spp.Link, 0, 2*len(g.Edges)),
		Cost:      map[spp.Link]int{},
		Permitted: make(map[spp.Node][]spp.Path, n),
	}
	for i, nd := range g.Nodes {
		in.Nodes[i] = spp.Node(nd)
	}
	for _, e := range g.Edges {
		a, b := spp.Node(e.A), spp.Node(e.B)
		in.Links = append(in.Links, spp.Link{From: a, To: b}, spp.Link{From: b, To: a})
	}
	for u := int32(0); u < int32(n); u++ {
		if u == dest {
			in.Permitted[spp.Node(g.Nodes[dest])] = []spp.Path{primary[dest]}
			continue
		}
		var vias []arc
		for _, a := range nbr[u] {
			v := a.v
			if primary[v] == nil || !simple(u, primary[v]) {
				continue
			}
			// Export rule: providers send everything downhill; customers
			// and peers only forward customer routes (or their own
			// origination).
			if a.cls != 'p' && primCls[v] != 'c' && primCls[v] != 'o' {
				continue
			}
			vias = append(vias, a)
		}
		sort.Slice(vias, func(i, j int) bool {
			ri, rj := clsRank(vias[i].cls), clsRank(vias[j].cls)
			if ri != rj {
				return ri < rj
			}
			li, lj := len(primary[vias[i].v]), len(primary[vias[j].v])
			if li != lj {
				return li < lj
			}
			return g.Nodes[vias[i].v] < g.Nodes[vias[j].v]
		})
		if len(vias) > maxAlt {
			vias = vias[:maxAlt]
		}
		paths := make([]spp.Path, len(vias))
		for i, a := range vias {
			paths[i] = extend(u, primary[a.v])
		}
		if len(paths) > 0 {
			in.Permitted[spp.Node(g.Nodes[u])] = paths
		}
	}
	return in
}

// genGaoRexfordInternet implements the gao-rexford-internet kind:
// campaign-sized power-law AS graphs with 50% dispute injection.
func genGaoRexfordInternet(seed int64) (*Scenario, error) {
	rng := rand.New(rand.NewSource(seed))
	nAS := 30 + rng.Intn(61)
	t1 := 3 + rng.Intn(3)
	g := topology.GenerateInternet(seed, topology.InternetParams{N: nAS, Tier1: t1})
	in := InternetSPP(fmt.Sprintf("gr-internet-%d", seed), g, 3)
	note := fmt.Sprintf("power-law internet, %d ASes, tier-1 clique %d, dest %s",
		nAS, t1, g.Nodes[len(g.Nodes)-1])
	sc := &Scenario{Kind: GaoRexfordInternet, Seed: seed, Expected: ExpectSafe, Note: note, Instance: in}
	if rng.Intn(2) == 1 {
		sc.Expected = ExpectUnsafe
		if u, v, w, ok := findTriangle(g.Adjacency()); ok && rng.Intn(2) == 0 {
			injectDisputeTriangle(in, spp.Node(u), spp.Node(v), spp.Node(w))
			sc.Note += fmt.Sprintf("; injected dispute triangle %s-%s-%s", u, v, w)
		} else {
			e := g.Edges[rng.Intn(len(g.Edges))]
			injectDisputePair(in, spp.Node(e.A), spp.Node(e.B))
			sc.Note += fmt.Sprintf("; injected dispute pair %s-%s", e.A, e.B)
		}
	}
	return sc, nil
}
