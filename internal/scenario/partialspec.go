package scenario

import (
	"fmt"
	"math/rand"
	"strconv"

	"fsr/internal/spp"
)

// The partial-spec kind: gadget compositions whose glue deliberately
// breaks the at-most-one-extension rule that makes gadget-splice verdicts
// decidable by construction (see gadgets.go). An "overlap" glue node
// ranks TWO extensions of existing permitted paths against each other;
// that preference edge between previously unrelated cores can complete a
// dispute cycle or stay harmless depending on the draw, so the generator
// honestly declares ExpectAny and the campaign's value is purely the
// analysis-vs-execution cross-check (partial specification: the outcome
// classes still distinguish divergence and conservatism, but mismatch is
// impossible by definition).

// genPartialSpec implements the partial-spec kind.
func genPartialSpec(seed int64) (*Scenario, error) {
	rng := rand.New(rand.NewSource(seed))
	name := fmt.Sprintf("partial-spec-%d", seed)
	in, _, note := composeGadgets(name, rng, coreAny)
	// Candidate hosts are fixed before any overlap glue is added, so the
	// draws below depend only on the composition, keeping generation
	// deterministic per seed.
	var hosts []spp.Node
	for _, n := range in.Nodes {
		if len(in.Permitted[n]) > 0 {
			hosts = append(hosts, n)
		}
	}
	nOverlap := 1 + rng.Intn(2)
	for j := 0; j < nOverlap; j++ {
		g := spp.Node("x" + strconv.Itoa(j))
		h1 := hosts[rng.Intn(len(hosts))]
		h2 := hosts[rng.Intn(len(hosts))]
		e1 := in.Permitted[h1][rng.Intn(len(in.Permitted[h1]))]
		e2 := in.Permitted[h2][rng.Intn(len(in.Permitted[h2]))]
		in.AddSession(g, h1, 0)
		if h2 != h1 {
			in.AddSession(g, h2, 0)
		}
		via1 := append(spp.Path{g}, e1...)
		via2 := append(spp.Path{g}, e2...)
		if via1.Equal(via2) {
			// Degenerate draw (same host, same path): substitute a direct
			// origination so the ranking still holds two distinct paths.
			via2 = spp.Path{g, spp.Node("rx" + strconv.Itoa(j))}
		}
		in.Rank(g, via1, via2)
	}
	return &Scenario{
		Kind:     PartialSpec,
		Seed:     seed,
		Expected: ExpectAny,
		Note:     fmt.Sprintf("%s, %d overlap glue node(s)", note, nOverlap),
		Instance: in,
	}, nil
}
