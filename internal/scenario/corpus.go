package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"fsr/internal/engine"
	"fsr/internal/spp"
)

// Corpus: interesting campaign outcomes serialized as JSON Lines, one
// self-contained entry per line, so a counterexample found by a sharded
// overnight campaign replays anywhere with `fsr campaign -replay FILE` —
// no seed, generator version, or topology dataset required.

// InstanceJSON is the wire form of an SPP instance. Sessions are
// undirected (the Instance invariant: every session contributes both
// directed links); node order is preserved because it fixes the signature
// declaration order and hence the exact solver input.
type InstanceJSON struct {
	Name     string              `json:"name"`
	Nodes    []string            `json:"nodes"`
	Origins  []string            `json:"origins"`
	Sessions []SessionJSON       `json:"sessions"`
	Rank     map[string][]string `json:"rank"` // node → rendered paths, most preferred first
}

// SessionJSON is one undirected session with its optional IGP cost.
type SessionJSON struct {
	A    string `json:"a"`
	B    string `json:"b"`
	Cost int    `json:"cost,omitempty"`
}

// EncodeInstance converts an instance to its wire form. Paths are stored
// as comma-joined node lists to stay grep-able in the corpus file.
func EncodeInstance(in *spp.Instance) InstanceJSON {
	out := InstanceJSON{Name: in.Name, Rank: map[string][]string{}}
	for _, n := range in.Nodes {
		out.Nodes = append(out.Nodes, string(n))
	}
	for _, o := range in.Origins {
		out.Origins = append(out.Origins, string(o))
	}
	for _, l := range undirected(in) {
		out.Sessions = append(out.Sessions, SessionJSON{A: string(l.From), B: string(l.To), Cost: in.Cost[l]})
	}
	for _, n := range in.Nodes {
		for _, p := range in.Permitted[n] {
			out.Rank[string(n)] = append(out.Rank[string(n)], joinPath(p))
		}
	}
	return out
}

func joinPath(p spp.Path) string {
	parts := make([]string, len(p))
	for i, n := range p {
		parts[i] = string(n)
	}
	return strings.Join(parts, ",")
}

func splitPath(s string) spp.Path {
	parts := strings.Split(s, ",")
	p := make(spp.Path, len(parts))
	for i, e := range parts {
		p[i] = spp.Node(e)
	}
	return p
}

// DecodeInstance rebuilds an instance from its wire form, preserving node,
// origin, and session order exactly.
func DecodeInstance(j InstanceJSON) (*spp.Instance, error) {
	in := spp.NewInstance(j.Name)
	for _, n := range j.Nodes {
		in.AddNode(spp.Node(n))
	}
	for _, s := range j.Sessions {
		in.AddSession(spp.Node(s.A), spp.Node(s.B), s.Cost)
	}
	for _, n := range j.Nodes {
		var paths []spp.Path
		for _, ps := range j.Rank[n] {
			paths = append(paths, splitPath(ps))
		}
		if len(paths) > 0 {
			in.Rank(spp.Node(n), paths...)
		}
	}
	// Rank re-derives origins from paths; restore the recorded order.
	if len(j.Origins) > 0 {
		in.Origins = in.Origins[:0]
		for _, o := range j.Origins {
			in.Origins = append(in.Origins, spp.Node(o))
		}
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

// CorpusEntry is one replayable record: the instance, the behavior the
// campaign observed on it, and the observation conditions (horizon,
// analysis-only), so a replay re-creates the recording environment no
// matter which flags it runs under.
type CorpusEntry struct {
	Kind      string       `json:"kind"`
	Seed      int64        `json:"seed"`
	Expected  string       `json:"expected"`
	Outcome   string       `json:"outcome"`
	Sat       bool         `json:"sat"`
	Converged bool         `json:"converged"`
	HorizonNS int64        `json:"horizon_ns,omitempty"`
	NoSim     bool         `json:"no_sim,omitempty"`
	Shrunk    bool         `json:"shrunk,omitempty"`
	Note      string       `json:"note,omitempty"`
	Instance  InstanceJSON `json:"instance"`
}

// CorpusEntries serializes a report's interesting results, preferring each
// result's shrunken instance when the shrinker produced one and
// regenerating the original instance (deterministically, from kind and
// seed) otherwise.
func (r *Report) CorpusEntries() ([]CorpusEntry, error) {
	shrunkByIndex := map[int]*spp.Instance{}
	for _, sh := range r.Shrunk {
		shrunkByIndex[sh.Index] = sh.Instance
	}
	var out []CorpusEntry
	for _, res := range r.Interesting() {
		entry := CorpusEntry{
			Kind:      string(res.Kind),
			Seed:      res.Seed,
			Expected:  res.Expected.String(),
			Outcome:   res.Outcome.String(),
			Sat:       res.Sat,
			Converged: res.Converged,
			HorizonNS: int64(r.Horizon),
			NoSim:     r.NoSim,
			Note:      res.Note,
		}
		if min, ok := shrunkByIndex[res.Index]; ok {
			entry.Shrunk = true
			entry.Instance = EncodeInstance(min)
		} else {
			sc, err := Generate(res.Kind, res.Seed)
			if err != nil {
				return nil, err
			}
			entry.Instance = EncodeInstance(sc.Instance)
		}
		out = append(out, entry)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seed < out[j].Seed })
	return out, nil
}

// WriteCorpus writes entries as JSON Lines.
func WriteCorpus(w io.Writer, entries []CorpusEntry) error {
	enc := json.NewEncoder(w)
	for _, e := range entries {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// ReadCorpus parses a JSON Lines corpus.
func ReadCorpus(r io.Reader) ([]CorpusEntry, error) {
	dec := json.NewDecoder(r)
	var out []CorpusEntry
	for {
		var e CorpusEntry
		if err := dec.Decode(&e); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("scenario: corpus entry %d: %w", len(out)+1, err)
		}
		out = append(out, e)
	}
}

// ReplayResult compares one corpus entry's recorded behavior against a
// fresh evaluation.
type ReplayResult struct {
	Entry CorpusEntry
	// Sat and Converged are the fresh observations.
	Sat       bool
	Converged bool
	// Reproduced reports that the fresh run matched the recorded verdict
	// and convergence bit.
	Reproduced bool
	Err        string
}

// String renders one replay line.
func (r ReplayResult) String() string {
	status := "reproduced"
	if !r.Reproduced {
		status = fmt.Sprintf("DIFFERS (recorded sat=%v converged=%v, got sat=%v converged=%v)",
			r.Entry.Sat, r.Entry.Converged, r.Sat, r.Converged)
	}
	if r.Err != "" {
		status = "error: " + r.Err
	}
	return fmt.Sprintf("%s seed %d [%s, %d nodes]: %s",
		r.Entry.Kind, r.Entry.Seed, r.Entry.Outcome, len(r.Entry.Instance.Nodes), status)
}

// Replay re-evaluates each corpus entry's instance under the spec's solver
// and runner but the *entry's* recorded observation conditions: each entry
// carries the horizon and analysis-only bit it was recorded under, so its
// convergence bit is compared like for like regardless of the replaying
// session's configuration.
func Replay(ctx context.Context, entries []CorpusEntry, spec Spec) ([]ReplayResult, error) {
	spec = spec.withDefaults()
	out := make([]ReplayResult, 0, len(entries))
	for _, e := range entries {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		rr := ReplayResult{Entry: e}
		in, err := DecodeInstance(e.Instance)
		if err != nil {
			rr.Err = err.Error()
			out = append(out, rr)
			continue
		}
		espec := spec
		if e.HorizonNS > 0 {
			espec.Horizon = time.Duration(e.HorizonNS)
		}
		espec.NoSim = e.NoSim
		// Churn entries carry no plan on the wire: the plan is seed-derived,
		// so regenerating the scenario from (kind, seed) rebuilds the exact
		// fault schedule the recording ran under. Ops referencing nodes a
		// shrunk instance no longer has are skipped by the runner.
		var plan *engine.FaultPlan
		if sc, err := Generate(Kind(e.Kind), e.Seed); err == nil {
			plan = sc.Plan
		}
		// Corpus files are untrusted input (another shard, another machine,
		// hand edits): give each entry the same per-scenario budget the
		// sweep and the shrinker enforce.
		ectx, cancel := context.WithTimeout(ctx, spec.ScenarioTimeout)
		sat, _, rep, err := evaluate(ectx, in, espec, e.Seed, plan)
		cancel()
		if err != nil {
			rr.Err = err.Error()
			out = append(out, rr)
			continue
		}
		rr.Sat, rr.Converged = sat, rep != nil && rep.Converged
		rr.Reproduced = rr.Sat == e.Sat && rr.Converged == e.Converged
		out = append(out, rr)
	}
	return out, nil
}
