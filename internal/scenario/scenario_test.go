package scenario

import (
	"context"
	"reflect"
	"testing"

	"fsr/internal/spp"
)

// TestGeneratorDeterminism: equal (kind, seed) pairs yield structurally
// equal instances and identical metadata — the property every campaign,
// shard, and corpus regeneration relies on.
func TestGeneratorDeterminism(t *testing.T) {
	for _, kind := range Kinds() {
		for seed := int64(1); seed <= 20; seed++ {
			a, err := Generate(kind, seed)
			if err != nil {
				t.Fatalf("%s/%d: %v", kind, seed, err)
			}
			b, err := Generate(kind, seed)
			if err != nil {
				t.Fatalf("%s/%d: %v", kind, seed, err)
			}
			if a.Expected != b.Expected || a.Note != b.Note {
				t.Fatalf("%s/%d: metadata differs: %v/%q vs %v/%q", kind, seed, a.Expected, a.Note, b.Expected, b.Note)
			}
			if !reflect.DeepEqual(a.Instance, b.Instance) {
				t.Fatalf("%s/%d: instances differ", kind, seed)
			}
		}
	}
}

// TestGeneratorGuarantees: every generator's Expected verdict is honored
// by the analysis, safe scenarios converge in bounded simulation, and the
// divergent fixture is always flagged. This is the construction-level
// soundness the campaign classifier assumes.
func TestGeneratorGuarantees(t *testing.T) {
	spec := Spec{}.withDefaults()
	sawSafe, sawUnsafe := map[Kind]bool{}, map[Kind]bool{}
	for _, kind := range Kinds() {
		for seed := int64(1); seed <= 40; seed++ {
			sc, err := Generate(kind, seed)
			if err != nil {
				t.Fatalf("%s/%d: %v", kind, seed, err)
			}
			if err := sc.Instance.Validate(); err != nil {
				t.Fatalf("%s/%d: invalid instance: %v", kind, seed, err)
			}
			sat, _, rep, err := evaluate(context.Background(), sc.Instance, spec, seed, sc.Plan)
			if err != nil {
				t.Fatalf("%s/%d: evaluate: %v", kind, seed, err)
			}
			if rep == nil {
				t.Fatalf("%s/%d: simulation did not run", kind, seed)
			}
			converged := rep.Converged
			if sc.Plan != nil && !sc.Plan.Empty() && rep.Faults == 0 {
				t.Errorf("%s/%d: churn plan scheduled but no faults injected", kind, seed)
			}
			switch {
			case kind == DivergentFixture:
				// Deliberately mislabeled: must be flagged, never proven safe.
				if sat {
					t.Errorf("%s/%d: fixture analyzed sat; the divergence pipeline would miss it", kind, seed)
				}
			case sc.Expected == ExpectSafe:
				sawSafe[kind] = true
				if !sat {
					t.Errorf("%s/%d: expected safe, analysis unsat (%s)", kind, seed, sc.Note)
				}
				if !converged {
					t.Errorf("%s/%d: proven safe but did not converge (%s)", kind, seed, sc.Note)
				}
			case sc.Expected == ExpectUnsafe:
				sawUnsafe[kind] = true
				if sat {
					t.Errorf("%s/%d: injected violation analyzed sat (%s)", kind, seed, sc.Note)
				}
			}
		}
	}
	// 40 seeds per kind must exercise both classes of every honest kind.
	for _, kind := range append(DefaultKinds(), GaoRexfordInternet, LexicalProduct) {
		if kind != GadgetSplice && !sawSafe[kind] {
			t.Errorf("%s: no violation-free scenario in 40 seeds", kind)
		}
		if !sawUnsafe[kind] {
			t.Errorf("%s: no injected-violation scenario in 40 seeds", kind)
		}
	}
	if !sawSafe[GadgetSplice] || !sawUnsafe[GadgetSplice] {
		t.Errorf("gadget-splice: missing class coverage (safe=%v unsafe=%v)", sawSafe[GadgetSplice], sawUnsafe[GadgetSplice])
	}
}

// TestKindByName: resolution and the error path.
func TestKindByName(t *testing.T) {
	for _, kind := range Kinds() {
		got, err := KindByName(string(kind))
		if err != nil || got != kind {
			t.Errorf("KindByName(%s) = %v, %v", kind, got, err)
		}
	}
	if _, err := KindByName("no-such-kind"); err == nil {
		t.Error("unknown kind resolved")
	}
	if _, err := Generate("no-such-kind", 1); err == nil {
		t.Error("unknown kind generated")
	}
}

// TestExpectationRoundTrip: String and ExpectationByName are inverses.
func TestExpectationRoundTrip(t *testing.T) {
	for _, e := range []Expectation{ExpectAny, ExpectSafe, ExpectUnsafe} {
		got, err := ExpectationByName(e.String())
		if err != nil || got != e {
			t.Errorf("round trip %v: %v, %v", e, got, err)
		}
	}
	if _, err := ExpectationByName("bogus"); err == nil {
		t.Error("bogus expectation parsed")
	}
}

// TestSppMutators: the shrinker's vocabulary preserves instance validity
// and the receiver.
func TestSppMutators(t *testing.T) {
	in := spp.Figure3IBGP()
	before := in.Clone()

	rm := in.RemoveNode("a")
	if err := rm.Validate(); err != nil {
		t.Fatalf("RemoveNode: %v", err)
	}
	for _, l := range rm.Links {
		if l.From == "a" || l.To == "a" {
			t.Fatalf("RemoveNode left link %s", l)
		}
	}
	for n, paths := range rm.Permitted {
		for _, p := range paths {
			for _, e := range p {
				if e == "a" {
					t.Fatalf("RemoveNode left path %s at %s", p, n)
				}
			}
		}
	}

	rs := in.RemoveSession("a", "b")
	if err := rs.Validate(); err != nil {
		t.Fatalf("RemoveSession: %v", err)
	}
	if rs.HasLink("a", "b") || rs.HasLink("b", "a") {
		t.Fatal("RemoveSession left the link")
	}

	dp := in.DropPath("a", 0)
	if err := dp.Validate(); err != nil {
		t.Fatalf("DropPath: %v", err)
	}
	if len(dp.Permitted["a"]) != len(in.Permitted["a"])-1 {
		t.Fatalf("DropPath kept %d paths", len(dp.Permitted["a"]))
	}

	if !reflect.DeepEqual(in, before) {
		t.Fatal("mutators modified the receiver")
	}
}
