package scenario

import (
	"context"

	"fsr/internal/spp"
)

// Shrink delta-debugs an instance down to a minimal form that still
// satisfies keep, the campaign's "still reproduces the interesting
// behavior" predicate. The reduction vocabulary is the spp mutation set —
// node removal, session removal, rank truncation — applied greedily in
// passes until a full sweep makes no progress; every adopted candidate has
// been re-verified by keep, so the result is 1-minimal with respect to the
// three operators. Returns the pruned minimal instance and the number of
// candidate evaluations spent.
//
// keep must be true for the input instance; candidates for which keep
// errors are simply not adopted.
func Shrink(ctx context.Context, in *spp.Instance, keep func(context.Context, *spp.Instance) (bool, error)) (*spp.Instance, int, error) {
	cur := in.Clone()
	tries := 0
	try := func(cand *spp.Instance) (bool, error) {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		tries++
		return keep(ctx, cand)
	}
	for changed := true; changed; {
		changed = false

		// Pass 1: node removal (the coarsest reduction first).
		for _, n := range append([]spp.Node(nil), cur.Nodes...) {
			cand := cur.RemoveNode(n)
			ok, err := try(cand)
			if err != nil {
				return cur, tries, err
			}
			if ok {
				cur, changed = cand, true
			}
		}

		// Pass 2: session removal.
		for _, l := range undirected(cur) {
			if !cur.HasLink(l.From, l.To) {
				continue // removed by an earlier candidate this pass
			}
			cand := cur.RemoveSession(l.From, l.To)
			ok, err := try(cand)
			if err != nil {
				return cur, tries, err
			}
			if ok {
				cur, changed = cand, true
			}
		}

		// Pass 3: rank simplification — drop permitted paths one at a time,
		// least preferred first so surviving rankings keep their heads.
		for _, n := range append([]spp.Node(nil), cur.Nodes...) {
			for idx := len(cur.Permitted[n]) - 1; idx >= 0; idx-- {
				cand := cur.DropPath(n, idx)
				ok, err := try(cand)
				if err != nil {
					return cur, tries, err
				}
				if ok {
					cur, changed = cand, true
				}
			}
		}
	}
	return cur.PruneOrigins(), tries, nil
}

// undirected snapshots the instance's sessions as one link per pair.
func undirected(in *spp.Instance) []spp.Link {
	seen := map[spp.Link]bool{}
	var out []spp.Link
	for _, l := range in.Links {
		if seen[l] || seen[spp.Link{From: l.To, To: l.From}] {
			continue
		}
		seen[l] = true
		out = append(out, l)
	}
	return out
}
