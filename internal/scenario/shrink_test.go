package scenario

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"fsr/internal/spp"
)

// TestShrinkDivergentFixture is the end-to-end counterexample pipeline: a
// campaign over deliberately mislabeled fixtures flags every scenario,
// shrinks each to a minimal instance of at most 6 nodes (the Figure 3
// core; pure BADGADGET compositions reduce to 3), and the resulting
// corpus replays bit-for-bit.
func TestShrinkDivergentFixture(t *testing.T) {
	ctx := context.Background()
	spec := Spec{Kinds: []Kind{DivergentFixture}, Count: 4, BaseSeed: 1, Shrink: true, MaxShrink: 4}
	rep, err := Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Tally()[OutcomeMismatch]; got != 4 {
		t.Fatalf("flagged %d of 4 fixtures:\n%s", got, rep)
	}
	if len(rep.Shrunk) != 4 {
		t.Fatalf("shrunk %d of 4 fixtures", len(rep.Shrunk))
	}
	for _, sh := range rep.Shrunk {
		orig, err := Generate(DivergentFixture, rep.Results[sh.Index].Seed)
		if err != nil {
			t.Fatal(err)
		}
		if len(sh.Instance.Nodes) > 6 {
			t.Errorf("#%d shrunk to %d nodes, want ≤ 6", sh.Index, len(sh.Instance.Nodes))
		}
		if len(sh.Instance.Nodes) >= len(orig.Instance.Nodes) {
			t.Errorf("#%d: no reduction (%d → %d nodes)", sh.Index,
				len(orig.Instance.Nodes), len(sh.Instance.Nodes))
		}
		if err := sh.Instance.Validate(); err != nil {
			t.Errorf("#%d: shrunk instance invalid: %v", sh.Index, err)
		}
		// The minimal instance still reproduces: unsat and non-converged.
		sat, _, srep, err := evaluate(ctx, sh.Instance, spec.withDefaults(), rep.Results[sh.Index].Seed, nil)
		if err != nil {
			t.Fatal(err)
		}
		converged := srep != nil && srep.Converged
		if sat || converged {
			t.Errorf("#%d: shrunk instance lost the behavior (sat=%v converged=%v)", sh.Index, sat, converged)
		}
	}

	// Corpus round trip and replay.
	entries, err := rep.CorpusEntries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("corpus has %d entries", len(entries))
	}
	var buf bytes.Buffer
	if err := WriteCorpus(&buf, entries); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCorpus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(entries, back) {
		t.Fatal("corpus round trip differs")
	}
	replayed, err := Replay(ctx, back, Spec{})
	if err != nil {
		t.Fatal(err)
	}
	for _, rr := range replayed {
		if !rr.Reproduced {
			t.Errorf("corpus entry did not reproduce: %s", rr)
		}
		if !rr.Entry.Shrunk {
			t.Errorf("corpus entry not marked shrunk: %s", rr)
		}
	}
}

// TestShrinkToCore: shrinking a BADGADGET buried in glue under the plain
// "analysis still unsat" predicate recovers exactly the 3-node core.
func TestShrinkToCore(t *testing.T) {
	ctx := context.Background()
	sc, err := Generate(DivergentFixture, 2) // seed 2: badgadget cores + glue (see determinism test)
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{NoSim: true}.withDefaults()
	keep := func(kctx context.Context, cand *spp.Instance) (bool, error) {
		sat, _, _, err := evaluate(kctx, cand, spec, 1, nil)
		if err != nil {
			return false, nil
		}
		return !sat, nil
	}
	min, tries, err := Shrink(ctx, sc.Instance, keep)
	if err != nil {
		t.Fatal(err)
	}
	if len(min.Nodes) != 3 {
		t.Fatalf("minimal unsat instance has %d nodes %v, want the 3-node core (%d tries)",
			len(min.Nodes), min.Nodes, tries)
	}
	// 1-minimality: removing anything else breaks the behavior.
	for _, n := range min.Nodes {
		if ok, _ := keep(ctx, min.RemoveNode(n)); ok {
			t.Errorf("not minimal: node %s still removable", n)
		}
	}
	for _, paths := range min.Permitted {
		if len(paths) != 2 {
			t.Errorf("core ranking has %d paths, want 2", len(paths))
		}
	}
}

// TestInstanceCodec: the corpus wire form preserves instances exactly,
// including node order (which fixes the solver input).
func TestInstanceCodec(t *testing.T) {
	for _, kind := range Kinds() {
		sc, err := Generate(kind, 5)
		if err != nil {
			t.Fatal(err)
		}
		back, err := DecodeInstance(EncodeInstance(sc.Instance))
		if err != nil {
			t.Fatalf("%s: decode: %v", kind, err)
		}
		if !reflect.DeepEqual(normalize(sc.Instance), normalize(back)) {
			t.Errorf("%s: instance round trip differs", kind)
		}
	}
}

// normalize strips empty-but-non-nil map entries so DeepEqual compares
// structure, not allocation history.
func normalize(in *spp.Instance) *spp.Instance {
	out := in.Clone()
	for n, paths := range out.Permitted {
		if len(paths) == 0 {
			delete(out.Permitted, n)
		}
	}
	return out
}
