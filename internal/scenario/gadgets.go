package scenario

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"fsr/internal/spp"
)

// Gadget-splice generation: randomized composition of the classic gadget
// cores (Chain, GOODGADGET, BADGADGET, DISAGREE, Figure 3) into larger
// graphs through glue nodes.
//
// The expected verdict is decidable by construction:
//
//   - splicing a dispute core (BADGADGET, DISAGREE, Figure 3) keeps the
//     composition unsafe, because the core's rankings and links are merged
//     verbatim, so its unsatisfiable constraint subset reappears in the
//     composed conversion and unsat survives supersets;
//   - a composition of safe cores stays safe: each glue node carries its
//     own origination ranked first plus at most one extension of an
//     existing permitted path, so a satisfying assignment extends any
//     model of the cores by value(glue direct) = min and
//     value(extension) = value(extended path) + 1.
//
// Glue nodes therefore never hold two extension paths — ranking two
// extensions against each other could contradict the cores' models.

// coreBuilders enumerates the splicable cores; the bad ones embed a
// dispute cycle.
var coreBuilders = []struct {
	name string
	bad  bool
	make func(rng *rand.Rand) *spp.Instance
}{
	{"chain", false, func(rng *rand.Rand) *spp.Instance { return spp.ChainGadget(2 + rng.Intn(3)) }},
	{"goodgadget", false, func(*rand.Rand) *spp.Instance { return spp.GoodGadget() }},
	{"badgadget", true, func(*rand.Rand) *spp.Instance { return spp.BadGadget() }},
	{"disagree", true, func(*rand.Rand) *spp.Instance { return spp.Disagree() }},
	{"fig3", true, func(*rand.Rand) *spp.Instance { return spp.Figure3IBGP() }},
}

// safeCoreIdx / badCoreIdx index coreBuilders by class for biased picks.
var safeCoreIdx, badCoreIdx = func() (safe, bad []int) {
	for i, c := range coreBuilders {
		if c.bad {
			bad = append(bad, i)
		} else {
			safe = append(safe, i)
		}
	}
	return
}()

// merge splices src into dst under the names it already carries; callers
// rename cores first so namespaces stay disjoint.
func merge(dst, src *spp.Instance) {
	for _, n := range src.Nodes {
		dst.AddNode(n)
	}
	for _, o := range src.Origins {
		dst.AddOrigin(o)
	}
	dst.Links = append(dst.Links, src.Links...)
	for l, c := range src.Cost {
		dst.Cost[l] = c
	}
	for _, n := range src.Nodes {
		if ps, ok := src.Permitted[n]; ok {
			dst.Permitted[n] = ps
		}
	}
}

// coreMix selects how composeGadgets draws its cores.
type coreMix int

const (
	// coreAny draws uniformly over all cores.
	coreAny coreMix = iota
	// coreForceBad guarantees at least one dispute core.
	coreForceBad
	// coreSafeOnly draws from the safe cores only — the churn kinds need
	// compositions that are safe by construction.
	coreSafeOnly
)

// composeGadgets builds a spliced instance; mix governs the core draw.
// Returns the instance, whether a dispute core was spliced, and a
// human-readable construction note.
func composeGadgets(name string, rng *rand.Rand, mix coreMix) (*spp.Instance, bool, string) {
	in := spp.NewInstance(name)
	nCores := 1 + rng.Intn(3)
	bad := false
	var parts []string
	for i := 0; i < nCores; i++ {
		var idx int
		switch {
		case mix == coreForceBad && i == 0:
			idx = badCoreIdx[rng.Intn(len(badCoreIdx))]
		case mix == coreSafeOnly:
			idx = safeCoreIdx[rng.Intn(len(safeCoreIdx))]
		default:
			idx = rng.Intn(len(coreBuilders))
		}
		core := coreBuilders[idx]
		bad = bad || core.bad
		prefix := "c" + strconv.Itoa(i)
		renamed := core.make(rng).Rename(name, func(n spp.Node) spp.Node {
			return spp.Node(prefix + string(n))
		})
		merge(in, renamed)
		parts = append(parts, core.name)
	}
	// Glue: each glue node gets its own origination (ranked first) and one
	// extension of a random existing permitted path — the at-most-one-
	// extension rule that keeps safe compositions provably safe.
	nGlue := 1 + rng.Intn(4)
	for j := 0; j < nGlue; j++ {
		var hosts []spp.Node
		for _, n := range in.Nodes {
			if len(in.Permitted[n]) > 0 {
				hosts = append(hosts, n)
			}
		}
		host := hosts[rng.Intn(len(hosts))]
		ext := in.Permitted[host][rng.Intn(len(in.Permitted[host]))]
		g := spp.Node("g" + strconv.Itoa(j))
		in.AddSession(g, host, 0)
		direct := spp.Path{g, spp.Node("rg" + strconv.Itoa(j))}
		via := append(spp.Path{g}, ext...)
		in.Rank(g, direct, via)
	}
	note := fmt.Sprintf("cores [%s], %d glue node(s)", strings.Join(parts, " "), nGlue)
	return in, bad, note
}

// genGadgetSplice implements the gadget-splice kind.
func genGadgetSplice(seed int64) (*Scenario, error) {
	rng := rand.New(rand.NewSource(seed))
	in, bad, note := composeGadgets(fmt.Sprintf("gadget-splice-%d", seed), rng, coreAny)
	exp := ExpectSafe
	if bad {
		exp = ExpectUnsafe
	}
	return &Scenario{Kind: GadgetSplice, Seed: seed, Expected: exp, Note: note, Instance: in}, nil
}

// genDivergentFixture implements the divergent-fixture kind: a spliced
// composition that always embeds a dispute core but is deliberately
// mislabeled safe. Campaigns over this kind must classify every scenario
// as OutcomeMismatch (the verdict contradicts the recorded expectation),
// making it the end-to-end self-test for the flag → shrink → corpus
// pipeline.
func genDivergentFixture(seed int64) (*Scenario, error) {
	rng := rand.New(rand.NewSource(seed))
	in, _, note := composeGadgets(fmt.Sprintf("divergent-%d", seed), rng, coreForceBad)
	return &Scenario{
		Kind:     DivergentFixture,
		Seed:     seed,
		Expected: ExpectSafe, // deliberately wrong: the instance embeds a dispute core
		Note:     "deliberately mislabeled safe; " + note,
		Instance: in,
	}, nil
}
