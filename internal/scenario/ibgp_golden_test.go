package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"testing"
)

// TestIBGPGolden pins the exact genIBGP outputs for a spread of seeds: the
// canonical-JSON fingerprint of the generated instance plus the expectation
// and construction note. The literals were captured before the
// shortest-path tree moved into topology.ShortestPathTree; any drift here
// means the refactor (or a later change) perturbed experiment outputs,
// which silently invalidates recorded campaign corpora and BENCH
// trajectories keyed by seed.
func TestIBGPGolden(t *testing.T) {
	golden := []struct {
		seed     int64
		expected Expectation
		note     string
		hash     string
	}{
		{1, ExpectSafe, "11 routers, 20 sessions, 3 egresses",
			"9e6aa38f7a24746a567ee41ea95cea6ac2d0702b07e7ebf68e6056451939b641"},
		{2, ExpectSafe, "12 routers, 24 sessions, 2 egresses",
			"0c4cd6bf944a4b569a7a3c5581d4af1b50e6cbc4db55439fde0de4b4f2b7f5b0"},
		{3, ExpectUnsafe, "10 routers, 18 sessions, 3 egresses; embedded fig3-style preference cycle rt01-rt05-rt09",
			"c229f391ce26f6ef3bc0324e240af93316e26b5940391fd41f922c73fe33dae6"},
		{4, ExpectUnsafe, "15 routers, 29 sessions, 2 egresses; embedded reflector dispute pair rt05-rt14",
			"359097b8340ffdfa529b89881250e55034bec945d1f0f31f20fd08ccb0080a9e"},
		{5, ExpectUnsafe, "12 routers, 22 sessions, 2 egresses; embedded fig3-style preference cycle rt00-rt01-rt04",
			"9a1a14df8f0c46f7491134c99755eb7765193575312c12bce562e6bbfaa93d73"},
		{6, ExpectUnsafe, "14 routers, 27 sessions, 3 egresses; embedded fig3-style preference cycle rt00-rt05-rt06",
			"220ce2fc000761bd64cb4947c621039691d9964341d81a84421f0a06b0536e8a"},
		{7, ExpectSafe, "16 routers, 31 sessions, 2 egresses",
			"1444d44b30111a2f5de38c5921a3bb1cfa8cf8c0d567a62fce3fb14318e0192b"},
		{8, ExpectSafe, "9 routers, 19 sessions, 2 egresses",
			"93973be7b617927cdc3a0c003772b17e964494890631cf93d2fc85ff483f1aef"},
	}
	for _, g := range golden {
		sc, err := genIBGP(g.seed)
		if err != nil {
			t.Fatalf("seed %d: %v", g.seed, err)
		}
		if sc.Expected != g.expected {
			t.Errorf("seed %d: expectation %s, golden %s", g.seed, sc.Expected, g.expected)
		}
		if sc.Note != g.note {
			t.Errorf("seed %d: note %q, golden %q", g.seed, sc.Note, g.note)
		}
		blob, err := json.Marshal(EncodeInstance(sc.Instance))
		if err != nil {
			t.Fatalf("seed %d: marshal: %v", g.seed, err)
		}
		sum := sha256.Sum256(blob)
		if got := hex.EncodeToString(sum[:]); got != g.hash {
			t.Errorf("seed %d: instance fingerprint %s, golden %s", g.seed, got, g.hash)
		}
	}
}
