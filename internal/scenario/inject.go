package scenario

import "fsr/internal/spp"

// Violation injection. Both injectors plant a genuine dispute cycle — not
// merely a policy-guideline violation, which may still converge — so a
// generator that injects one can guarantee ExpectUnsafe: the planted
// preference cycle contributes an unsatisfiable constraint subset to the
// §III-B conversion, and unsatisfiability survives any superset of
// constraints.

// injectDisputePair overrides the rankings of the adjacent nodes u and v
// with the two-node DISAGREE preference cycle over fresh origin tokens:
// each prefers the route through the other over its own externally learned
// route. The generated constraints (two strict preferences plus two
// strict-monotonicity edges) form a cycle, so the analysis is unsat no
// matter what the rest of the instance looks like.
func injectDisputePair(in *spp.Instance, u, v spp.Node) {
	ou, ov := spp.Node("rx_"+string(u)), spp.Node("rx_"+string(v))
	in.Rank(u, spp.Path{u, v, ov}, spp.Path{u, ou})
	in.Rank(v, spp.Path{v, u, ou}, spp.Path{v, ov})
}

// injectDisputeTriangle overrides the rankings of the pairwise-adjacent
// nodes u, v, w with the three-node BADGADGET cycle: each prefers the route
// through its clockwise neighbor over its own externally learned route.
// Unlike the pair (which has two stable states and merely *may* oscillate),
// the triangle has no stable assignment at all, so executions oscillate to
// the horizon.
func injectDisputeTriangle(in *spp.Instance, u, v, w spp.Node) {
	ou, ov, ow := spp.Node("rx_"+string(u)), spp.Node("rx_"+string(v)), spp.Node("rx_"+string(w))
	in.Rank(u, spp.Path{u, v, ov}, spp.Path{u, ou})
	in.Rank(v, spp.Path{v, w, ow}, spp.Path{v, ov})
	in.Rank(w, spp.Path{w, u, ou}, spp.Path{w, ow})
}
