package scenario

import (
	"context"
	"fmt"
	"testing"

	"fsr/internal/spp"
)

// requireDeltaParity checks the delta verifier and the full-pipeline oracle
// agree bit for bit on the verifier's current instance.
func requireDeltaParity(t *testing.T, label string, v *spp.DeltaVerifier) {
	t.Helper()
	got, gotSus, gotErr := v.Verify(context.Background())
	want, wantSus, wantErr := v.VerifyFull(context.Background())
	if (gotErr != nil) != (wantErr != nil) {
		t.Fatalf("%s: error mismatch: delta %v, oracle %v", label, gotErr, wantErr)
	}
	if gotErr != nil {
		return
	}
	if got.Sat != want.Sat {
		t.Fatalf("%s: Sat = %v, oracle %v", label, got.Sat, want.Sat)
	}
	if got.NumPreference != want.NumPreference || got.NumMonotonicity != want.NumMonotonicity {
		t.Fatalf("%s: counts (%d pref, %d mono), oracle (%d, %d)",
			label, got.NumPreference, got.NumMonotonicity, want.NumPreference, want.NumMonotonicity)
	}
	if len(got.Model) != len(want.Model) {
		t.Fatalf("%s: model size %d, oracle %d", label, len(got.Model), len(want.Model))
	}
	for k, val := range want.Model {
		if got.Model[k] != val {
			t.Fatalf("%s: model[%s] = %d, oracle %d", label, k, got.Model[k], val)
		}
	}
	if len(got.Core) != len(want.Core) {
		t.Fatalf("%s: core size %d, oracle %d\n got: %v\nwant: %v",
			label, len(got.Core), len(want.Core), got.Core, want.Core)
	}
	for i := range want.Core {
		if got.Core[i] != want.Core[i] {
			t.Fatalf("%s: Core[%d] = %v, oracle %v", label, i, got.Core[i], want.Core[i])
		}
	}
	if fmt.Sprint(gotSus) != fmt.Sprint(wantSus) {
		t.Fatalf("%s: suspects %v, oracle %v", label, gotSus, wantSus)
	}
}

// TestDeltaVerifierScenarioSeeds drives the delta verifier over procedurally
// generated instances — gadget splices, Gao-Rexford policies, and iBGP
// route-reflection configurations — applying a generic edit sequence
// (ranking rotation and restoration, session failure) and asserting parity
// with the full-rebuild oracle after every step.
func TestDeltaVerifierScenarioSeeds(t *testing.T) {
	kinds := []Kind{GadgetSplice, GaoRexford, IBGP}
	for _, kind := range kinds {
		for seed := int64(1); seed <= 5; seed++ {
			t.Run(fmt.Sprintf("%s-%d", kind, seed), func(t *testing.T) {
				sc, err := Generate(kind, seed)
				if err != nil {
					t.Fatalf("generate: %v", err)
				}
				v, err := spp.NewDeltaVerifier(sc.Instance)
				if err != nil {
					t.Fatalf("NewDeltaVerifier: %v", err)
				}
				requireDeltaParity(t, "initial", v)

				// Rotate the ranking of the first node holding at least two
				// paths, then restore it.
				in := v.Snapshot()
				var target spp.Node
				var original []spp.Path
				for _, n := range in.Nodes {
					if paths := in.Permitted[n]; len(paths) >= 2 {
						target, original = n, paths
						break
					}
				}
				if target != "" {
					rotated := append(append([]spp.Path(nil), original[1:]...), original[0])
					if err := v.ReRank(target, rotated...); err != nil {
						t.Fatalf("rerank %s: %v", target, err)
					}
					requireDeltaParity(t, "rotated "+string(target), v)
					if err := v.ReRank(target, original...); err != nil {
						t.Fatalf("restore %s: %v", target, err)
					}
					requireDeltaParity(t, "restored "+string(target), v)
				}

				// Fail the first session (unless it is the only one: the
				// empty-topology algebra is a degenerate oracle error case
				// covered elsewhere).
				if len(in.Links) > 2 {
					l := in.Links[0]
					if err := v.DropSession(l.From, l.To); err != nil {
						t.Fatalf("drop %s: %v", l, err)
					}
					requireDeltaParity(t, "dropped "+l.String(), v)
				}
			})
		}
	}
}
