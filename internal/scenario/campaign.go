package scenario

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fsr/internal/analysis"
	"fsr/internal/engine"
	"fsr/internal/obs"
	"fsr/internal/smt"
	"fsr/internal/spp"
)

// Spec parameterizes one campaign: a seed range fanned across generator
// kinds, each scenario analyzed for safety and (unless NoSim) executed as a
// bounded simulation, with outcomes classified against the generator's
// expectation. The zero value is usable: default kinds, 64 scenarios,
// base seed 1, 2 s simulation horizon, GOMAXPROCS workers.
type Spec struct {
	// Kinds cycles over the scenario generators; scenario i uses
	// Kinds[i%len(Kinds)]. Empty means DefaultKinds.
	Kinds []Kind
	// Count is the total number of scenarios across all shards (default 64).
	Count int
	// BaseSeed is the first seed; scenario i uses BaseSeed+i (default 1).
	BaseSeed int64
	// Shard/NumShards select a contiguous slice of the global index range,
	// for fanning one campaign across processes or machines: shard s of n
	// processes indices [s·Count/n, (s+1)·Count/n). NumShards 0 or 1 means
	// the whole range.
	Shard, NumShards int
	// Horizon bounds each simulation run in virtual time (default 2 s when
	// Run is called directly; Session.Campaign fills a zero Horizon from
	// the session's WithHorizon setting instead).
	Horizon time.Duration
	// NoSim skips the differential execution, classifying on analysis alone.
	NoSim bool
	// Shrink delta-debugs interesting outcomes (divergences, mismatches)
	// down to minimal reproducing instances after the sweep.
	Shrink bool
	// MaxShrink caps how many interesting results are shrunk (default 4).
	MaxShrink int
	// ScenarioTimeout is the wall-clock budget per scenario; exceeding it
	// classifies the scenario as OutcomeTimeout (default 30 s).
	ScenarioTimeout time.Duration
	// Parallelism sizes the worker pool (default GOMAXPROCS).
	Parallelism int
	// Solver decides the generated constraints (default smt.Native).
	Solver smt.Solver
	// Runner executes instances (default engine.SimRunner; campaigns want a
	// simulation backend — deployment runners make runs wall-clock bound).
	Runner engine.Runner
	// Logger, when non-nil, receives a periodic progress record (done
	// count, scenarios/sec, per-outcome tallies) every ProgressEvery, a
	// shrink notice, and a final summary record. The CLI wires its leveled
	// logger here (so -quiet and -log-format apply uniformly); the library
	// default (nil) stays silent.
	Logger *slog.Logger
	// ProgressEvery is the period of progress records (default 5 s).
	ProgressEvery time.Duration
}

func (s Spec) withDefaults() Spec {
	if len(s.Kinds) == 0 {
		s.Kinds = DefaultKinds()
	}
	if s.Count <= 0 {
		s.Count = 64
	}
	if s.BaseSeed == 0 {
		s.BaseSeed = 1
	}
	if s.NumShards <= 1 {
		s.Shard, s.NumShards = 0, 1
	}
	if s.Horizon <= 0 {
		s.Horizon = 2 * time.Second
	}
	if s.MaxShrink <= 0 {
		s.MaxShrink = 4
	}
	if s.ScenarioTimeout <= 0 {
		s.ScenarioTimeout = 30 * time.Second
	}
	if s.Parallelism <= 0 {
		s.Parallelism = runtime.GOMAXPROCS(0)
	}
	if s.Solver == nil {
		s.Solver = smt.Native{}
	}
	if s.Runner == nil {
		s.Runner = engine.SimRunner{}
	}
	if s.ProgressEvery <= 0 {
		s.ProgressEvery = 5 * time.Second
	}
	return s
}

// Outcome classifies one scenario's analysis-vs-execution result.
type Outcome int

const (
	// OutcomeAgreement: the verdict matches the expectation and the
	// execution is consistent with it (safe converged, or unsafe diverged).
	OutcomeAgreement Outcome = iota
	// OutcomeConservative: the analysis said unsafe (strict monotonicity is
	// sufficient, not necessary) yet the bounded execution converged — the
	// false-positive class §IV-A accepts (DISAGREE is the canonical case).
	OutcomeConservative
	// OutcomeDivergence: the analysis proved safety but the execution did
	// not converge within the horizon — a soundness violation of the
	// toolkit itself, always worth shrinking.
	OutcomeDivergence
	// OutcomeMismatch: the verdict contradicts the generator's guaranteed
	// expectation — either a generator bug or a solver bug.
	OutcomeMismatch
	// OutcomeTimeout: the scenario exceeded its wall-clock budget.
	OutcomeTimeout
	// OutcomeError: generation, conversion, or execution failed.
	OutcomeError
)

// String names the outcome class.
func (o Outcome) String() string {
	switch o {
	case OutcomeAgreement:
		return "agreement"
	case OutcomeConservative:
		return "conservative"
	case OutcomeDivergence:
		return "divergence"
	case OutcomeMismatch:
		return "mismatch"
	case OutcomeTimeout:
		return "timeout"
	default:
		return "error"
	}
}

// Interesting reports whether the outcome warrants shrinking and corpus
// serialization: a genuine analysis-vs-execution disagreement, not an
// infrastructure failure (timeouts and errors classify separately and are
// not replayable findings).
func (o Outcome) Interesting() bool {
	return o == OutcomeDivergence || o == OutcomeMismatch
}

// numOutcomes sizes per-outcome arrays (OutcomeError is the last class).
const numOutcomes = int(OutcomeError) + 1

// outcomeOrder is every class in display order.
var outcomeOrder = []Outcome{
	OutcomeAgreement, OutcomeConservative, OutcomeDivergence,
	OutcomeMismatch, OutcomeTimeout, OutcomeError,
}

// classify maps one scenario's observations to its outcome class.
func classify(expected Expectation, sat, simRan, converged bool) Outcome {
	if expected == ExpectSafe && !sat || expected == ExpectUnsafe && sat {
		return OutcomeMismatch
	}
	if simRan {
		if sat && !converged {
			return OutcomeDivergence
		}
		if !sat && converged {
			return OutcomeConservative
		}
	}
	return OutcomeAgreement
}

// Result is one scenario's campaign record.
type Result struct {
	// Index is the scenario's global index in the campaign's seed range.
	Index int
	Kind  Kind
	Seed  int64
	// Expected is the generator's guaranteed verdict.
	Expected Expectation
	// Sat is the strict-monotonicity verdict (true = proven safe).
	Sat bool
	// SimRan / Converged / SimTime describe the bounded execution.
	SimRan    bool
	Converged bool
	SimTime   time.Duration
	// Nodes is the instance size, for shrink-progress reporting.
	Nodes   int
	Outcome Outcome
	Note    string
	Err     string
	// Churn accounting, populated when the scenario carries a fault plan
	// (and partially — Messages — for every simulated scenario).
	FaultOps int   // operations in the scenario's fault plan
	Faults   int64 // fault events the simulator processed
	Dropped  int64 // messages lost to faults or probabilistic loss
	Messages int   // delivered message load (collector total)
	// ReconvergeTime is Time minus the last fault instant when the run
	// converged under churn: how long the network needed to settle after
	// the final injected fault.
	ReconvergeTime time.Duration
	// RouteChanges sums per-node selection changes during the run.
	RouteChanges int64
	// Suspects is the §VI-B suspect set (nodes the unsat core implicates)
	// when the analysis proved the instance unsafe.
	Suspects []string
	// Oscillators are the nodes with the highest selection-change counts
	// during execution — under churn, the suspect set should predict them.
	Oscillators []string
}

// SuspectCoverage reports what fraction of the observed oscillators the
// analysis' suspect set predicted (1 when there is nothing to predict).
func (r Result) SuspectCoverage() float64 {
	if len(r.Oscillators) == 0 {
		return 1
	}
	inSuspects := map[string]bool{}
	for _, s := range r.Suspects {
		inSuspects[s] = true
	}
	hit := 0
	for _, o := range r.Oscillators {
		if inSuspects[o] {
			hit++
		}
	}
	return float64(hit) / float64(len(r.Oscillators))
}

// String renders one line of the campaign report.
func (r Result) String() string {
	verdict := "unsafe"
	if r.Sat {
		verdict = "safe"
	}
	sim := "sim skipped"
	if r.SimRan {
		if r.Converged {
			sim = fmt.Sprintf("converged %v", r.SimTime)
		} else {
			sim = "no convergence"
		}
	}
	s := fmt.Sprintf("#%d %s seed %d [%d nodes]: expected %s, verdict %s, %s → %s",
		r.Index, r.Kind, r.Seed, r.Nodes, r.Expected, verdict, sim, r.Outcome)
	if r.FaultOps > 0 {
		s += fmt.Sprintf(" (churn: %d op(s), %d fault(s), %d dropped, %d msg(s)",
			r.FaultOps, r.Faults, r.Dropped, r.Messages)
		if r.ReconvergeTime > 0 {
			s += fmt.Sprintf(", re-converged in %v", r.ReconvergeTime)
		}
		s += ")"
	}
	if r.Err != "" {
		s += " (" + r.Err + ")"
	}
	return s
}

// Shrunk is one minimized counterexample.
type Shrunk struct {
	// Index is the originating Result's global index.
	Index int
	// Tries counts candidate evaluations the shrinker spent.
	Tries int
	// Instance is the minimal reproducing instance.
	Instance *spp.Instance
}

// Report is the outcome of one campaign.
type Report struct {
	// Kinds, Count, BaseSeed, Shard, NumShards, Horizon, and NoSim echo
	// the normalized spec (Horizon and NoSim are recorded into corpus
	// entries so replays re-create the observation conditions).
	Kinds            []Kind
	Count            int
	BaseSeed         int64
	Shard, NumShards int
	Horizon          time.Duration
	NoSim            bool
	// Results holds one record per scenario of this shard, in index order.
	Results []Result
	// Shrunk holds the minimized counterexamples when shrinking ran.
	Shrunk []Shrunk
}

// Tally counts results per outcome class.
func (r *Report) Tally() map[Outcome]int {
	t := map[Outcome]int{}
	for _, res := range r.Results {
		t[res.Outcome]++
	}
	return t
}

// FaultTotals sums the churn accounting across all results: fault events
// injected, messages dropped, and message load delivered.
func (r *Report) FaultTotals() (faults, dropped int64, messages int) {
	for _, res := range r.Results {
		faults += res.Faults
		dropped += res.Dropped
		messages += res.Messages
	}
	return faults, dropped, messages
}

// Interesting returns the results worth human attention, in index order.
func (r *Report) Interesting() []Result {
	var out []Result
	for _, res := range r.Results {
		if res.Outcome.Interesting() {
			out = append(out, res)
		}
	}
	return out
}

// String renders the campaign summary.
func (r *Report) String() string {
	var b strings.Builder
	kinds := make([]string, len(r.Kinds))
	for i, k := range r.Kinds {
		kinds[i] = string(k)
	}
	fmt.Fprintf(&b, "campaign: %d scenario(s), kinds [%s], base seed %d, shard %d/%d\n",
		len(r.Results), strings.Join(kinds, " "), r.BaseSeed, r.Shard, r.NumShards)
	tally := r.Tally()
	for _, o := range outcomeOrder {
		if n := tally[o]; n > 0 {
			fmt.Fprintf(&b, "  %-12s %d\n", o, n)
		}
	}
	if faults, dropped, messages := r.FaultTotals(); faults > 0 {
		fmt.Fprintf(&b, "  faults injected: %d, messages dropped: %d, messages delivered: %d\n",
			faults, dropped, messages)
	}
	for _, res := range r.Results {
		// Findings and infrastructure failures both deserve a detail line.
		if res.Outcome.Interesting() || res.Outcome == OutcomeTimeout || res.Outcome == OutcomeError {
			b.WriteString("  ! " + res.String() + "\n")
		}
	}
	for _, sh := range r.Shrunk {
		fmt.Fprintf(&b, "  shrunk #%d to %d node(s) in %d tries\n",
			sh.Index, len(sh.Instance.Nodes), sh.Tries)
	}
	return strings.TrimRight(b.String(), "\n")
}

// evaluate runs the differential pipeline on one instance: §III-B
// conversion, strict-monotonicity analysis, and (unless NoSim) a bounded
// execution on the spec's runner, with plan's faults injected when non-nil.
// simSeed keys the execution's deterministic randomness. suspects is the
// §VI-B suspect set (the nodes the unsat core implicates) when the analysis
// proves the instance unsafe; rep is nil when no execution ran.
func evaluate(ctx context.Context, in *spp.Instance, spec Spec, simSeed int64, plan *engine.FaultPlan) (sat bool, suspects []string, rep *engine.RunReport, err error) {
	actx, asp := obs.StartSpan(ctx, "analyze")
	conv, err := in.ToAlgebra()
	if err != nil {
		asp.End()
		return false, nil, nil, err
	}
	res, err := analysis.CheckWith(actx, conv.Algebra, analysis.StrictMonotonicity, spec.Solver)
	asp.End()
	if err != nil {
		return false, nil, nil, err
	}
	sat = res.Sat
	if !sat {
		for _, n := range conv.SuspectNodes(res.Core) {
			suspects = append(suspects, string(n))
		}
	}
	if spec.NoSim {
		return sat, suspects, nil, nil
	}
	if simSeed == 0 {
		simSeed = 1
	}
	sctx, ssp := obs.StartSpan(ctx, "simulate")
	rep, err = spec.Runner.Run(sctx, conv, engine.RunOptions{Seed: simSeed, Horizon: spec.Horizon, Plan: plan})
	ssp.End()
	if err != nil {
		return sat, suspects, nil, err
	}
	return sat, suspects, rep, nil
}

// panicHook, when non-nil, runs at the start of every scenario evaluation.
// It is the test seam for the worker panic-recovery path: a hook that
// panics must surface as that scenario's OutcomeError, not kill the fleet.
var panicHook func(index int)

// runOne generates and evaluates the scenario at one global index. A panic
// anywhere in generation, analysis, or simulation classifies the scenario
// as OutcomeError with the panic value in the record — one pathological
// scenario must not take down the whole campaign.
func runOne(ctx context.Context, spec Spec, index int) (res Result) {
	kind := spec.Kinds[index%len(spec.Kinds)]
	seed := spec.BaseSeed + int64(index)
	res = Result{Index: index, Kind: kind, Seed: seed}
	var op *obs.Op
	ctx, op = obs.Flight().StartOp(ctx, "scenario", string(kind))
	// Registered before the recover defer so the panic path's OutcomeError
	// verdict is already in res when the op finishes (defers run LIFO).
	defer func() {
		if op != nil {
			op.SetSize(res.Nodes)
			op.SetVerdict(res.Outcome.String())
			op.Counter("fault_ops", int64(res.FaultOps))
			op.Counter("route_changes", int64(res.RouteChanges))
			op.Finish()
		}
	}()
	defer func() {
		if p := recover(); p != nil {
			res.Outcome = OutcomeError
			res.Err = fmt.Sprintf("panic: %v", p)
		}
	}()
	sctx, cancel := context.WithTimeout(ctx, spec.ScenarioTimeout)
	defer cancel()
	sctx, sp := obs.StartSpan(sctx, "scenario")
	sp.Attr("kind", string(kind))
	sp.AttrInt("seed", seed)
	defer sp.End()
	if panicHook != nil {
		panicHook(index)
	}
	_, gsp := obs.StartSpan(sctx, "generate")
	sc, err := Generate(kind, seed)
	gsp.End()
	if err != nil {
		res.Outcome, res.Err = OutcomeError, err.Error()
		return res
	}
	res.Expected, res.Note, res.Nodes = sc.Expected, sc.Note, len(sc.Instance.Nodes)
	if sc.Plan != nil {
		res.FaultOps = len(sc.Plan.Ops)
	}
	sat, suspects, rep, err := evaluate(sctx, sc.Instance, spec, seed, sc.Plan)
	if err != nil {
		if ctx.Err() == nil && errors.Is(err, context.DeadlineExceeded) {
			res.Outcome = OutcomeTimeout
		} else {
			res.Outcome = OutcomeError
		}
		res.Err = err.Error()
		return res
	}
	res.Sat, res.Suspects = sat, suspects
	if rep != nil {
		res.SimRan, res.Converged, res.SimTime = true, rep.Converged, rep.Time
		res.Faults, res.Dropped, res.Messages = rep.Faults, rep.Dropped, rep.Messages
		res.RouteChanges = rep.RouteChanges
		if rep.Converged && rep.Faults > 0 {
			res.ReconvergeTime = rep.Time - rep.LastFault
		}
		res.Oscillators = topOscillators(rep.NodeChanges, len(suspects))
	}
	res.Outcome = classify(sc.Expected, sat, res.SimRan, res.Converged)
	return res
}

// topOscillators returns the k nodes with the highest selection-change
// counts (at least 3, and only nodes that changed at all), most active
// first — the execution-side observation the §VI-B suspect set should
// predict under churn.
func topOscillators(changes map[string]int64, k int) []string {
	if k < 3 {
		k = 3
	}
	type nc struct {
		node string
		n    int64
	}
	ranked := make([]nc, 0, len(changes))
	for node, n := range changes {
		if n > 0 {
			ranked = append(ranked, nc{node, n})
		}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].n != ranked[j].n {
			return ranked[i].n > ranked[j].n
		}
		return ranked[i].node < ranked[j].node
	})
	if len(ranked) > k {
		ranked = ranked[:k]
	}
	out := make([]string, len(ranked))
	for i, r := range ranked {
		out[i] = r.node
	}
	return out
}

// Run executes a campaign: the shard's scenarios are claimed by a worker
// pool through an atomic index (the AnalyzeAll pattern), evaluated, and
// classified; when spec.Shrink is set, interesting outcomes are then
// delta-debugged to minimal reproducers. Scenario-level failures are
// recorded as OutcomeError results, not returned; only context
// cancellation aborts the campaign.
func Run(ctx context.Context, spec Spec) (*Report, error) {
	// Validate the sharding BEFORE withDefaults: the normalization collapses
	// NumShards ≤ 1 to the whole range, which used to silently absorb
	// nonsense like shard 3 of 1 (and empty shards ran as vacuous
	// successes — poison for a fleet that interprets exit 0 as "checked").
	if spec.NumShards < 0 || spec.Shard < 0 {
		return nil, fmt.Errorf("scenario: negative shard spec %d/%d", spec.Shard, spec.NumShards)
	}
	if spec.NumShards <= 1 {
		if spec.Shard != 0 {
			return nil, fmt.Errorf("scenario: shard %d out of range for %d shard(s)", spec.Shard, max(spec.NumShards, 1))
		}
	} else if spec.Shard >= spec.NumShards {
		return nil, fmt.Errorf("scenario: shard %d out of range 0..%d", spec.Shard, spec.NumShards-1)
	}
	spec = spec.withDefaults()
	lo := spec.Shard * spec.Count / spec.NumShards
	hi := (spec.Shard + 1) * spec.Count / spec.NumShards
	if lo == hi {
		return nil, fmt.Errorf("scenario: shard %d/%d is empty for count %d (use at most %d shards)",
			spec.Shard, spec.NumShards, spec.Count, spec.Count)
	}
	rep := &Report{
		Kinds:     spec.Kinds,
		Count:     spec.Count,
		BaseSeed:  spec.BaseSeed,
		Shard:     spec.Shard,
		NumShards: spec.NumShards,
		Horizon:   spec.Horizon,
		NoSim:     spec.NoSim,
		Results:   make([]Result, hi-lo),
	}
	workers := spec.Parallelism
	if workers > len(rep.Results) {
		workers = len(rep.Results)
	}
	var (
		next  atomic.Int64
		done  atomic.Int64
		tally [numOutcomes]atomic.Int64
		wg    sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(rep.Results) || ctx.Err() != nil {
					return
				}
				r := runOne(ctx, spec, lo+i)
				rep.Results[i] = r
				tally[r.Outcome].Add(1)
				done.Add(1)
				obsOutcomes.Inc(r.Outcome.String())
				obsScenarios.Inc()
			}
		}()
	}
	var stop chan struct{}
	if spec.Logger != nil {
		stop = make(chan struct{})
		go func() {
			tick := time.NewTicker(spec.ProgressEvery)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					spec.Logger.Info("campaign progress", progressAttrs(&done, &tally, len(rep.Results), start)...)
				}
			}
		}()
	}
	wg.Wait()
	if stop != nil {
		close(stop)
		spec.Logger.Info("campaign progress", progressAttrs(&done, &tally, len(rep.Results), start)...)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if spec.Shrink {
		if spec.Logger != nil && len(rep.Interesting()) > 0 {
			spec.Logger.Info("campaign shrinking",
				"interesting", min(len(rep.Interesting()), spec.MaxShrink))
		}
		if err := shrinkInteresting(ctx, spec, rep); err != nil {
			return nil, err
		}
	}
	if spec.Logger != nil {
		logSummary(spec.Logger, rep, time.Since(start))
	}
	return rep, nil
}

// progressAttrs builds one periodic status record: completion, throughput,
// and the nonzero outcome tallies so far.
func progressAttrs(done *atomic.Int64, tally *[numOutcomes]atomic.Int64, total int, start time.Time) []any {
	d := done.Load()
	elapsed := time.Since(start).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(d) / elapsed
	}
	attrs := []any{"done", d, "total", total, "per_sec", fmt.Sprintf("%.1f", rate)}
	for i, o := range outcomeOrder {
		if n := tally[i].Load(); n > 0 {
			attrs = append(attrs, o.String(), n)
		}
	}
	return attrs
}

// logSummary emits the final per-outcome summary record after a sweep.
func logSummary(l *slog.Logger, rep *Report, elapsed time.Duration) {
	rate := 0.0
	if s := elapsed.Seconds(); s > 0 {
		rate = float64(len(rep.Results)) / s
	}
	attrs := []any{
		"scenarios", len(rep.Results),
		"elapsed", elapsed.Round(time.Millisecond).String(),
		"per_sec", fmt.Sprintf("%.1f", rate),
	}
	tally := rep.Tally()
	for _, o := range outcomeOrder {
		if n := tally[o]; n > 0 {
			attrs = append(attrs, o.String(), n)
		}
	}
	if faults, dropped, _ := rep.FaultTotals(); faults > 0 {
		attrs = append(attrs, "faults_injected", faults, "messages_dropped", dropped)
	}
	if len(rep.Shrunk) > 0 {
		attrs = append(attrs, "shrunk", len(rep.Shrunk))
	}
	l.Info("campaign done", attrs...)
}

// shrinkInteresting minimizes up to spec.MaxShrink interesting results,
// regenerating each instance from its (kind, seed) and preserving the
// observed (verdict, convergence) pair through every reduction step.
func shrinkInteresting(ctx context.Context, spec Spec, rep *Report) error {
	shrunk := 0
	for _, res := range rep.Results {
		if !res.Outcome.Interesting() {
			continue
		}
		if shrunk >= spec.MaxShrink {
			break
		}
		sc, err := Generate(res.Kind, res.Seed)
		if err != nil {
			continue // already recorded as the result's classification
		}
		want := res
		keep := func(kctx context.Context, cand *spp.Instance) (bool, error) {
			// Candidates get the same per-scenario budget as the sweep, so one
			// pathological mutation cannot hang the whole campaign. The
			// scenario's fault plan rides along: ops whose nodes or links a
			// mutation removed are skipped by the runner, so the churn
			// conditions shrink with the topology.
			tctx, cancel := context.WithTimeout(kctx, spec.ScenarioTimeout)
			defer cancel()
			sat, _, rep, err := evaluate(tctx, cand, spec, want.Seed, sc.Plan)
			if err != nil {
				return false, nil // a candidate that fails (or times out) is not a reproducer
			}
			converged := rep != nil && rep.Converged
			return sat == want.Sat && converged == want.Converged, nil
		}
		shctx, ssp := obs.StartSpan(ctx, "shrink")
		ssp.AttrInt("index", int64(res.Index))
		min, tries, err := Shrink(shctx, sc.Instance, keep)
		ssp.End()
		if err != nil {
			return err
		}
		rep.Shrunk = append(rep.Shrunk, Shrunk{Index: res.Index, Tries: tries, Instance: min})
		shrunk++
	}
	sort.Slice(rep.Shrunk, func(i, j int) bool { return rep.Shrunk[i].Index < rep.Shrunk[j].Index })
	return nil
}
