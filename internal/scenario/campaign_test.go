package scenario

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// stripTimes zeroes the wall-clock-dependent fields so campaign runs can
// be compared for semantic equality.
func stripTimes(results []Result) []Result {
	out := append([]Result(nil), results...)
	for i := range out {
		out[i].SimTime = 0
	}
	return out
}

// TestCampaignThousandDeterministic is the acceptance-scale campaign: a
// seeded 1,000-scenario run over the mixed default kinds, executed twice,
// must classify identically both times; every injected violation must be
// flagged unsafe, every violation-free scenario proven safe and converged,
// and no scenario may land in the divergence/mismatch/timeout/error
// classes.
func TestCampaignThousandDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-scenario campaign skipped in -short mode")
	}
	ctx := context.Background()
	spec := Spec{Count: 1000, BaseSeed: 1}
	first, err := Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Results) != 1000 || len(second.Results) != 1000 {
		t.Fatalf("result counts %d, %d", len(first.Results), len(second.Results))
	}
	a, b := stripTimes(first.Results), stripTimes(second.Results)
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatalf("classification differs at #%d:\n  %s\n  %s", i, a[i], b[i])
		}
	}
	tally := first.Tally()
	t.Logf("tally: %v", tally)
	if n := tally[OutcomeDivergence] + tally[OutcomeMismatch] + tally[OutcomeTimeout] + tally[OutcomeError]; n != 0 {
		for _, r := range first.Interesting() {
			t.Errorf("interesting: %s", r)
		}
		t.Fatalf("%d scenario(s) in failure classes", n)
	}
	for _, r := range first.Results {
		switch r.Expected {
		case ExpectUnsafe:
			if r.Sat {
				t.Errorf("injected violation not flagged: %s", r)
			}
		case ExpectSafe:
			if !r.Sat || !r.Converged {
				t.Errorf("violation-free scenario not proven safe and converged: %s", r)
			}
		}
	}
}

// TestCampaignChurnDeterministic: a seeded churn campaign — every scenario
// carrying a fault plan — classifies identically across two runs, down to
// the fault totals, dropped counts, re-convergence times, and oscillator
// sets. This is the property that makes a churn counterexample a
// reportable artifact rather than a flake.
func TestCampaignChurnDeterministic(t *testing.T) {
	ctx := context.Background()
	spec := Spec{Kinds: ChurnKinds(), Count: 60, BaseSeed: 11}
	first, err := Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	a, b := stripTimes(first.Results), stripTimes(second.Results)
	if len(a) != len(b) {
		t.Fatalf("result counts %d, %d", len(a), len(b))
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatalf("churn classification differs at #%d:\n  %s\n  %s", i, a[i], b[i])
		}
	}
	faults, dropped, _ := first.FaultTotals()
	if faults == 0 {
		t.Fatal("churn campaign injected no faults")
	}
	f2, d2, _ := second.FaultTotals()
	if faults != f2 || dropped != d2 {
		t.Fatalf("fault totals differ: (%d, %d) vs (%d, %d)", faults, dropped, f2, d2)
	}
	for _, r := range first.Results {
		if r.FaultOps == 0 {
			t.Errorf("#%d (%s): churn scenario has an empty fault plan", r.Index, r.Kind)
		}
		if r.Faults == 0 {
			t.Errorf("#%d (%s): no faults processed", r.Index, r.Kind)
		}
		if r.Expected == ExpectSafe {
			if !r.Converged {
				t.Errorf("#%d (%s): safe churn scenario did not re-converge: %s", r.Index, r.Kind, r)
			}
			// Zero is legitimate (a final fault that perturbs nothing settles
			// instantly), but convergence can never predate the last fault.
			if r.Converged && r.ReconvergeTime < 0 {
				t.Errorf("#%d (%s): converged before the last fault (ReconvergeTime = %v)", r.Index, r.Kind, r.ReconvergeTime)
			}
		}
	}
}

// TestCampaignPanicRecovery: a panic inside one scenario's evaluation is
// confined to that scenario — it classifies as an error with the panic
// value in Err, and every other scenario in the sweep completes normally.
func TestCampaignPanicRecovery(t *testing.T) {
	panicHook = func(index int) {
		if index == 3 {
			panic("injected test panic")
		}
	}
	defer func() { panicHook = nil }()
	rep, err := Run(context.Background(), Spec{Count: 8, BaseSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 8 {
		t.Fatalf("got %d results, want 8", len(rep.Results))
	}
	for _, r := range rep.Results {
		if r.Index == 3 {
			if r.Outcome != OutcomeError {
				t.Errorf("panicking scenario classified %s, want error", r.Outcome)
			}
			if r.Err == "" || !strings.Contains(r.Err, "injected test panic") {
				t.Errorf("panic value not surfaced: %q", r.Err)
			}
			continue
		}
		if r.Outcome == OutcomeError {
			t.Errorf("#%d: healthy scenario classified error: %s", r.Index, r.Err)
		}
	}
}

// TestCampaignShardsPartition: sharding a campaign yields exactly the
// whole-range results, split contiguously — the property that makes
// seed-range sharding across processes sound.
func TestCampaignShardsPartition(t *testing.T) {
	ctx := context.Background()
	whole, err := Run(ctx, Spec{Count: 30, BaseSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var merged []Result
	for shard := 0; shard < 3; shard++ {
		part, err := Run(ctx, Spec{Count: 30, BaseSeed: 7, Shard: shard, NumShards: 3})
		if err != nil {
			t.Fatal(err)
		}
		merged = append(merged, part.Results...)
	}
	a, b := stripTimes(whole.Results), stripTimes(merged)
	if len(a) != len(b) {
		t.Fatalf("whole %d vs merged %d", len(a), len(b))
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatalf("shard partition differs at #%d:\n  %s\n  %s", i, a[i], b[i])
		}
	}
	if _, err := Run(ctx, Spec{Count: 30, Shard: 3, NumShards: 3}); err == nil {
		t.Error("out-of-range shard accepted")
	}
}

// TestCampaignShardValidation: malformed shard specs are rejected loudly.
// Before the raw spec was validated, withDefaults normalized NumShards ≤ 1
// to the whole range (silently absorbing an out-of-range Shard), and a
// shard count above Count produced empty shards that "succeeded" with zero
// scenarios — both turn a misconfigured fleet into vacuous green runs.
func TestCampaignShardValidation(t *testing.T) {
	ctx := context.Background()
	bad := []struct {
		name string
		spec Spec
	}{
		{"shard at numShards", Spec{Count: 8, Shard: 4, NumShards: 4}},
		{"shard beyond numShards", Spec{Count: 8, Shard: 9, NumShards: 4}},
		{"shard with single shard", Spec{Count: 8, Shard: 2, NumShards: 1}},
		{"shard with zero shards", Spec{Count: 8, Shard: 2}},
		{"negative shard", Spec{Count: 8, Shard: -1, NumShards: 4}},
		{"negative numShards", Spec{Count: 8, Shard: 0, NumShards: -2}},
		{"empty shard range", Spec{Count: 3, Shard: 0, NumShards: 5}},
	}
	for _, c := range bad {
		rep, err := Run(ctx, c.spec)
		if err == nil {
			t.Errorf("%s: accepted (%d result(s))", c.name, len(rep.Results))
		}
	}
	// The boundary cases stay valid: last shard of an exact split, and the
	// whole range under both spellings of "no sharding".
	for _, spec := range []Spec{
		{Count: 4, NoSim: true, Shard: 3, NumShards: 4},
		{Count: 4, NoSim: true, NumShards: 1},
		{Count: 4, NoSim: true},
	} {
		if _, err := Run(ctx, spec); err != nil {
			t.Errorf("valid spec %d/%d rejected: %v", spec.Shard, spec.NumShards, err)
		}
	}
}

// TestCampaignNoSim: analysis-only campaigns classify on the verdict alone
// and never report execution-dependent classes.
func TestCampaignNoSim(t *testing.T) {
	rep, err := Run(context.Background(), Spec{Count: 12, NoSim: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		if r.SimRan {
			t.Errorf("#%d ran a simulation under NoSim", r.Index)
		}
		if r.Outcome == OutcomeDivergence || r.Outcome == OutcomeConservative {
			t.Errorf("#%d: execution-dependent outcome %s without execution", r.Index, r.Outcome)
		}
	}
}

// TestCampaignCancellation: a cancelled context aborts the sweep.
func TestCampaignCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, Spec{Count: 50}); err == nil {
		t.Error("cancelled campaign returned no error")
	}
}

// TestClassify: the outcome table, case by case.
func TestClassify(t *testing.T) {
	cases := []struct {
		exp                    Expectation
		sat, simRan, converged bool
		want                   Outcome
	}{
		{ExpectSafe, true, true, true, OutcomeAgreement},
		{ExpectSafe, true, true, false, OutcomeDivergence},
		{ExpectSafe, false, true, false, OutcomeMismatch},
		{ExpectUnsafe, false, true, false, OutcomeAgreement},
		{ExpectUnsafe, false, true, true, OutcomeConservative},
		{ExpectUnsafe, true, true, true, OutcomeMismatch},
		{ExpectAny, true, true, false, OutcomeDivergence},
		{ExpectAny, false, true, true, OutcomeConservative},
		{ExpectAny, true, false, false, OutcomeAgreement},
	}
	for _, c := range cases {
		if got := classify(c.exp, c.sat, c.simRan, c.converged); got != c.want {
			t.Errorf("classify(%v, sat=%v, sim=%v, conv=%v) = %v, want %v",
				c.exp, c.sat, c.simRan, c.converged, got, c.want)
		}
	}
}
