// Churn scenario kinds: known-verdict instances paired with seed-derived
// fault plans, so a campaign cross-validates the analysis against
// executions under link flaps, flap storms, partitions, node restarts, and
// mid-run policy changes — not just against the static runs the paper's
// experiments use.
//
// Plan timing is compressed to finish well inside the campaign's default
// 2 s horizon: fault events sit in the simulation's own queue, so a run can
// only report convergence after the last fault is processed — "converged"
// for a churn scenario therefore always means "re-converged after the final
// fault", and the unchanged classifier applies verbatim.

package scenario

import (
	"fmt"
	"math/rand"
	"time"

	"fsr/internal/engine"
	"fsr/internal/spp"
)

// churnTiming compresses spec timing so the whole plan lands in the first
// simulated second, leaving the rest of the horizon for re-convergence.
func churnTiming(spec engine.FaultPlanSpec) engine.FaultPlanSpec {
	spec.Start = 200 * time.Millisecond
	spec.Window = 600 * time.Millisecond
	spec.MinOutage = 50 * time.Millisecond
	spec.MaxOutage = 200 * time.Millisecond
	return spec
}

// planTopology extracts the node and undirected session lists BuildFaultPlan
// draws from.
func planTopology(in *spp.Instance) (nodes []string, sessions [][2]string) {
	for _, n := range in.Nodes {
		nodes = append(nodes, string(n))
	}
	seen := map[spp.Link]bool{}
	for _, l := range in.Links {
		if seen[l] || seen[spp.Link{From: l.To, To: l.From}] {
			continue
		}
		seen[l] = true
		sessions = append(sessions, [2]string{string(l.From), string(l.To)})
	}
	return nodes, sessions
}

// churnScenario attaches a seed-derived plan to an instance and annotates
// the note with the plan's shape.
func churnScenario(kind Kind, seed int64, exp Expectation, in *spp.Instance, note string, spec engine.FaultPlanSpec) *Scenario {
	nodes, sessions := planTopology(in)
	plan := engine.BuildFaultPlan(seed, nodes, sessions, churnTiming(spec))
	note = fmt.Sprintf("%s; plan: %d op(s), last fault %v", note, len(plan.Ops), plan.LastFault())
	return &Scenario{Kind: kind, Seed: seed, Expected: exp, Note: note, Instance: in, Plan: plan}
}

// genChurnFlap implements churn-flap: a safe-by-construction gadget
// composition under a light plan — a few link flaps, possibly a restart.
func genChurnFlap(seed int64) (*Scenario, error) {
	rng := rand.New(rand.NewSource(seed))
	in, _, note := composeGadgets(fmt.Sprintf("churn-flap-%d", seed), rng, coreSafeOnly)
	spec := engine.FaultPlanSpec{
		Flaps:    1 + rng.Intn(3),
		Restarts: rng.Intn(2),
	}
	return churnScenario(ChurnFlap, seed, ExpectSafe, in, note, spec), nil
}

// genChurnStorm implements churn-storm: a violation-free Gao-Rexford
// hierarchy under a heavy plan — a flap storm, a partition, restarts, and a
// mid-run policy change.
func genChurnStorm(seed int64) (*Scenario, error) {
	rng := rand.New(rand.NewSource(seed))
	in, _, note := buildGaoRexford(fmt.Sprintf("churn-storm-%d", seed), seed, rng)
	spec := engine.FaultPlanSpec{
		Flaps:         1 + rng.Intn(2),
		StormFlaps:    3 + rng.Intn(4),
		Partitions:    1,
		Restarts:      1,
		PolicyChanges: 1,
	}
	return churnScenario(ChurnStorm, seed, ExpectSafe, in, note, spec), nil
}

// genChurnDispute implements churn-dispute: a composition that always
// embeds a dispute core, run under a flap storm. The analysis must flag it
// unsafe, and its suspect set should predict the nodes observed
// oscillating during the storm.
func genChurnDispute(seed int64) (*Scenario, error) {
	rng := rand.New(rand.NewSource(seed))
	in, _, note := composeGadgets(fmt.Sprintf("churn-dispute-%d", seed), rng, coreForceBad)
	spec := engine.FaultPlanSpec{
		Flaps:      1 + rng.Intn(2),
		StormFlaps: 3 + rng.Intn(3),
	}
	return churnScenario(ChurnDispute, seed, ExpectUnsafe, in, note, spec), nil
}
