package scenario

import (
	"fmt"
	"math/rand"
	"sort"

	"fsr/internal/spp"
	"fsr/internal/topology"
)

// Lexical-product policies (§IV-B): the paper's composition theorem says a
// lexical product A ⊗lex B is strictly monotone when A is strictly
// monotone wherever B is not. This kind instantiates the canonical
// example — business class first, IGP path cost second — on a seeded AS
// hierarchy with random per-session IGP costs. Valley-freeness makes the
// class component non-decreasing along permitted extensions, and every
// link cost is ≥ 1 so the cost component strictly increases; the product
// is therefore strictly monotone and the violation-free instance is safe.
// Half the seeds inject a dispute (pair or triangle), which is unsafe by
// the subset argument regardless of the surrounding lexical policy.

// pathCost sums the IGP cost of the path's real-node hops.
func pathCost(cost map[[2]string]int, p spp.Path) int {
	c := 0
	for i := 0; i+2 < len(p); i++ {
		c += cost[[2]string{string(p[i]), string(p[i+1])}]
	}
	return c
}

// genLexicalProduct implements the lexical-product kind.
func genLexicalProduct(seed int64) (*Scenario, error) {
	rng := rand.New(rand.NewSource(seed))
	depth := 2 + rng.Intn(3)
	g := topology.GenerateHierarchy(seed, topology.HierarchyParams{Depth: depth, Width: 3})
	dest := fmt.Sprintf("as%d_0", depth)

	in := spp.NewInstance(fmt.Sprintf("lexical-product-%d", seed))
	for _, n := range g.Nodes {
		in.AddNode(spp.Node(n))
	}
	igp := map[[2]string]int{}
	for _, e := range g.Edges {
		w := 1 + rng.Intn(9)
		igp[[2]string{e.A, e.B}], igp[[2]string{e.B, e.A}] = w, w
		in.AddSession(spp.Node(e.A), spp.Node(e.B), w)
	}
	adj := g.Adjacency()
	class := g.ClassMap()
	for _, u := range g.Nodes {
		if u == dest {
			continue
		}
		paths := valleyFree(class, adj, u, dest)
		sort.Slice(paths, func(i, j int) bool {
			ci, cj := grClass(class, paths[i]), grClass(class, paths[j])
			if ci != cj {
				return ci < cj
			}
			wi, wj := pathCost(igp, paths[i]), pathCost(igp, paths[j])
			if wi != wj {
				return wi < wj
			}
			return paths[i].Key() < paths[j].Key()
		})
		if len(paths) > grMaxPaths {
			paths = paths[:grMaxPaths]
		}
		if len(paths) > 0 {
			in.Rank(spp.Node(u), paths...)
		}
	}
	in.Rank(spp.Node(dest), spp.P(dest, "r1"))

	note := fmt.Sprintf("class ⊗lex IGP cost, hierarchy depth %d, %d ASes, dest %s", depth, len(g.Nodes), dest)
	sc := &Scenario{Kind: LexicalProduct, Seed: seed, Expected: ExpectSafe, Note: note, Instance: in}
	if rng.Intn(2) == 1 {
		sc.Expected = ExpectUnsafe
		if u, v, w, ok := findTriangle(adj); ok && rng.Intn(2) == 0 {
			injectDisputeTriangle(in, spp.Node(u), spp.Node(v), spp.Node(w))
			sc.Note += fmt.Sprintf("; injected dispute triangle %s-%s-%s", u, v, w)
		} else {
			e := g.Edges[rng.Intn(len(g.Edges))]
			injectDisputePair(in, spp.Node(e.A), spp.Node(e.B))
			sc.Note += fmt.Sprintf("; injected dispute pair %s-%s", e.A, e.B)
		}
	}
	return sc, nil
}
