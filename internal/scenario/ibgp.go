package scenario

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"

	"fsr/internal/spp"
	"fsr/internal/topology"
)

// iBGP generation: a seeded route-reflector ISP from topology.GenerateISP
// becomes an SPP instance. A few routers are egresses holding externally
// learned routes (r1, r2, …); every router's permitted paths are its
// IGP-shortest session-graph paths to each egress, ranked by total IGP
// cost with the egress index as tie-breaker — the §VI-B "sane" iBGP
// configuration, whose conversion is sat (path cost strictly grows along
// extensions, so cost·K + egressIndex is a strict-monotonicity witness).
// Injected scenarios embed a Figure-3-style preference cycle on adjacent
// routers and are unsat by the subset argument.

// genIBGP implements the ibgp kind. The shortest-path trees come from
// topology.ShortestPathTree (shared with AllPairsIGP), whose name-based
// tie-breaking keeps equal seeds rebuilding equal instances; the golden
// test in ibgp_golden_test.go pins the exact outputs.
func genIBGP(seed int64) (*Scenario, error) {
	rng := rand.New(rand.NewSource(seed))
	nr := 10 + rng.Intn(8)
	g := topology.GenerateISP(seed, topology.ISPParams{
		Routers: nr, Links: nr * 2, Reflectors: nr/2 + 1, Levels: 3, MaxWeight: 9,
	})
	sessions := g.SessionGraph()
	adj := topology.WeightedAdjacency(sessions)
	var routers []string
	for r := range adj {
		routers = append(routers, r)
	}
	sort.Strings(routers)
	if len(routers) < 4 {
		return nil, fmt.Errorf("session graph too small (%d routers)", len(routers))
	}

	in := spp.NewInstance(fmt.Sprintf("ibgp-%d", seed))
	for _, r := range routers {
		in.AddNode(spp.Node(r))
	}
	for _, l := range sessions {
		in.AddSession(spp.Node(l.A), spp.Node(l.B), l.Weight)
	}

	// Egress selection: 2–3 distinct routers holding externally learned
	// routes r1, r2, r3.
	nEgress := 2 + rng.Intn(2)
	chosen := map[string]bool{}
	var egresses []string
	for len(egresses) < nEgress {
		e := routers[rng.Intn(len(routers))]
		if !chosen[e] {
			chosen[e] = true
			egresses = append(egresses, e)
		}
	}

	// Permitted paths: per egress, the shortest-path-tree path of every
	// reachable router, ranked per router by (IGP cost, egress index).
	type ranked struct {
		cost, egress int
		path         spp.Path
	}
	byNode := map[string][]ranked{}
	for ei, e := range egresses {
		tok := spp.Node("r" + strconv.Itoa(ei+1))
		dist, parent := topology.ShortestPathTree(adj, e)
		for _, u := range routers {
			d, ok := dist[u]
			if !ok {
				continue // session graph may be disconnected
			}
			var p spp.Path
			for cur := u; ; cur = parent[cur] {
				p = append(p, spp.Node(cur))
				if cur == e {
					break
				}
			}
			byNode[u] = append(byNode[u], ranked{cost: d, egress: ei, path: append(p, tok)})
		}
	}
	for _, u := range routers {
		paths := byNode[u]
		sort.Slice(paths, func(i, j int) bool {
			if paths[i].cost != paths[j].cost {
				return paths[i].cost < paths[j].cost
			}
			return paths[i].egress < paths[j].egress
		})
		ps := make([]spp.Path, len(paths))
		for i, r := range paths {
			ps[i] = r.path
		}
		if len(ps) > 0 {
			in.Rank(spp.Node(u), ps...)
		}
	}

	sc := &Scenario{Kind: IBGP, Seed: seed, Expected: ExpectSafe, Instance: in}
	sc.Note = fmt.Sprintf("%d routers, %d sessions, %d egresses", len(routers), len(sessions), len(egresses))
	if rng.Intn(2) == 1 {
		sc.Expected = ExpectUnsafe
		plainAdj := map[string][]string{}
		for n, nbs := range adj {
			for _, l := range nbs {
				plainAdj[n] = append(plainAdj[n], l.B)
			}
		}
		if u, v, w, ok := findTriangle(plainAdj); ok && rng.Intn(2) == 0 {
			injectDisputeTriangle(in, spp.Node(u), spp.Node(v), spp.Node(w))
			sc.Note += fmt.Sprintf("; embedded fig3-style preference cycle %s-%s-%s", u, v, w)
		} else {
			l := sessions[rng.Intn(len(sessions))]
			injectDisputePair(in, spp.Node(l.A), spp.Node(l.B))
			sc.Note += fmt.Sprintf("; embedded reflector dispute pair %s-%s", l.A, l.B)
		}
	}
	return sc, nil
}
