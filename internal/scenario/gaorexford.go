package scenario

import (
	"fmt"
	"math/rand"
	"sort"

	"fsr/internal/spp"
	"fsr/internal/topology"
)

// Gao-Rexford generation: a seeded AS hierarchy from
// topology.GenerateHierarchy becomes an SPP instance whose permitted paths
// are exactly the valley-free (export-legal) paths to a single destination
// AS, ranked customer ≺ peer ≺ provider with shorter-first tie-breaking —
// the paper's guideline A ⊗ hop count expressed as a concrete instance.
//
// Violation-free instances are provably safe: assign each permitted path
// the value A·class + B·len + tie (class ∈ {0,1,2} from the owner's
// perspective, tie the index among equals in the owner's ranking, A ≫ B ≫
// ties). Valley-freeness gives class(u·p) ≥ class(p) for every permitted
// extension, so monotonicity is strict, and each ranking is strictly
// increasing in the assignment. Injected instances plant a dispute cycle
// (injectDisputePair / injectDisputeTriangle), so they are unsat by the
// subset argument.

const (
	grMaxHops  = 5 // real nodes per permitted path
	grMaxPaths = 4 // permitted paths kept per node
)

// valleyFree enumerates the valley-free simple paths from u to dest, walking
// up (customer→provider) any number of hops, then at most one peer hop,
// then down. Class is evaluated hop by hop from the traversing node's
// perspective, which is exactly the Gao-Rexford export rule: peer- and
// provider-learned routes are only exported downhill.
func valleyFree(class map[[2]string]string, adj map[string][]string, u, dest string) []spp.Path {
	var found []spp.Path
	trail := []string{u}
	on := map[string]bool{u: true}
	var dfs func(cur string, canUp, canPeer bool)
	dfs = func(cur string, canUp, canPeer bool) {
		if cur == dest {
			p := make(spp.Path, 0, len(trail)+1)
			for _, n := range trail {
				p = append(p, spp.Node(n))
			}
			found = append(found, append(p, "r1"))
			return
		}
		if len(trail) >= grMaxHops {
			return
		}
		for _, nb := range adj[cur] {
			if on[nb] {
				continue
			}
			nextUp, nextPeer, ok := false, false, false
			switch class[[2]string{cur, nb}] {
			case "c": // downhill: always legal, and locks the path downhill
				ok = true
			case "r":
				ok, nextUp, nextPeer = canPeer, false, false
			case "p": // uphill: legal only before the peak
				ok, nextUp, nextPeer = canUp, true, true
			}
			if !ok {
				continue
			}
			trail = append(trail, nb)
			on[nb] = true
			dfs(nb, nextUp, nextPeer)
			on[nb] = false
			trail = trail[:len(trail)-1]
		}
	}
	dfs(u, true, true)
	return found
}

// grClass ranks the path's first hop from the owner's perspective:
// customer route 0, peer route 1, provider route 2.
func grClass(class map[[2]string]string, p spp.Path) int {
	switch class[[2]string{string(p[0]), string(p[1])}] {
	case "c":
		return 0
	case "r":
		return 1
	default:
		return 2
	}
}

// findTriangle returns the lexicographically first 3-cycle of the graph,
// for triangle-flavored violation injection.
func findTriangle(adj map[string][]string) (a, b, c string, ok bool) {
	isAdj := map[[2]string]bool{}
	var nodes []string
	for n, nbs := range adj {
		nodes = append(nodes, n)
		for _, m := range nbs {
			isAdj[[2]string{n, m}] = true
		}
	}
	sort.Strings(nodes)
	for _, u := range nodes {
		for _, v := range adj[u] {
			if v <= u {
				continue
			}
			for _, w := range adj[v] {
				if w <= v {
					continue
				}
				if isAdj[[2]string{u, w}] {
					return u, v, w, true
				}
			}
		}
	}
	return "", "", "", false
}

// buildGaoRexford derives the violation-free valley-free instance from the
// seed — shared by genGaoRexford (which may then inject a violation) and
// the churn-storm kind (which needs it safe). rng supplies the depth draw
// so both callers consume the stream identically.
func buildGaoRexford(name string, seed int64, rng *rand.Rand) (in *spp.Instance, g *topology.ASGraph, note string) {
	depth := 2 + rng.Intn(3)
	g = topology.GenerateHierarchy(seed, topology.HierarchyParams{Depth: depth, Width: 3})
	dest := fmt.Sprintf("as%d_0", depth)

	in = spp.NewInstance(name)
	for _, n := range g.Nodes {
		in.AddNode(spp.Node(n))
	}
	for _, e := range g.Edges {
		in.AddSession(spp.Node(e.A), spp.Node(e.B), 0)
	}
	adj := g.Adjacency()
	class := g.ClassMap()
	for _, u := range g.Nodes {
		if u == dest {
			continue
		}
		paths := valleyFree(class, adj, u, dest)
		sort.Slice(paths, func(i, j int) bool {
			ci, cj := grClass(class, paths[i]), grClass(class, paths[j])
			if ci != cj {
				return ci < cj
			}
			if len(paths[i]) != len(paths[j]) {
				return len(paths[i]) < len(paths[j])
			}
			return paths[i].Key() < paths[j].Key()
		})
		if len(paths) > grMaxPaths {
			paths = paths[:grMaxPaths]
		}
		if len(paths) > 0 {
			in.Rank(spp.Node(u), paths...)
		}
	}
	in.Rank(spp.Node(dest), spp.P(dest, "r1"))
	note = fmt.Sprintf("hierarchy depth %d, %d ASes, dest %s", depth, len(g.Nodes), dest)
	return in, g, note
}

// genGaoRexford implements the gao-rexford kind.
func genGaoRexford(seed int64) (*Scenario, error) {
	rng := rand.New(rand.NewSource(seed))
	in, g, note := buildGaoRexford(fmt.Sprintf("gao-rexford-%d", seed), seed, rng)
	adj := g.Adjacency()
	class := g.ClassMap()
	sc := &Scenario{Kind: GaoRexford, Seed: seed, Expected: ExpectSafe, Note: note, Instance: in}
	if rng.Intn(2) == 1 {
		sc.Expected = ExpectUnsafe
		if u, v, w, ok := findTriangle(adj); ok && rng.Intn(2) == 0 {
			injectDisputeTriangle(in, spp.Node(u), spp.Node(v), spp.Node(w))
			flavor := "preference-cycle"
			for _, pair := range [][2]string{{u, v}, {v, w}, {u, w}} {
				if class[pair] == "r" {
					flavor = "peering-leak"
					break
				}
			}
			sc.Note += fmt.Sprintf("; injected %s dispute triangle %s-%s-%s", flavor, u, v, w)
		} else {
			e := g.Edges[rng.Intn(len(g.Edges))]
			injectDisputePair(in, spp.Node(e.A), spp.Node(e.B))
			sc.Note += fmt.Sprintf("; injected preference-inversion dispute pair %s-%s", e.A, e.B)
		}
	}
	return sc, nil
}
