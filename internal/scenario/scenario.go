// Package scenario is FSR's procedural workload engine: seeded,
// deterministic generators of Stable Paths Problem instances, a campaign
// driver that cross-validates the safety analysis against bounded protocol
// executions at scale, and a delta-debugging shrinker that reduces any
// divergence to a minimal replayable counterexample.
//
// The paper exercises FSR on five hand-written gadgets and two synthetic
// topologies; this package is the "as many scenarios as you can imagine"
// generalization. Each generator derives a Scenario — an SPP instance plus
// the verdict its construction guarantees — from nothing but a seed, so a
// campaign over a seed range is reproducible bit for bit:
//
//   - gadget-splice composes renamed Disagree / Bad-Gadget / Figure-3 /
//     Good-Gadget / Chain cores into larger graphs through glue nodes; the
//     composition is unsafe exactly when a dispute core was spliced in
//     (unsat cores survive supersets; safe compositions admit an explicit
//     rank assignment);
//   - gao-rexford derives valley-free policies from topology.GenerateHierarchy
//     and optionally injects a violation (a peering-leak dispute cycle or a
//     preference inversion), which plants a Disagree/Bad-Gadget preference
//     cycle and hence a guaranteed-unsat analysis;
//   - ibgp builds IGP-cost route-reflector configurations from
//     topology.GenerateISP, optionally embedding a Figure-3-style preference
//     cycle on adjacent routers;
//   - divergent-fixture is gadget-splice with a dispute core always present
//     but deliberately mislabeled safe — the campaign's built-in
//     self-test that the differential pipeline flags, shrinks, and
//     serializes counterexamples.
package scenario

import (
	"fmt"
	"sort"
	"strings"

	"fsr/internal/engine"
	"fsr/internal/spp"
)

// Kind names a scenario generator.
type Kind string

// Built-in generator kinds.
const (
	// GadgetSplice composes classic gadget cores into larger graphs.
	GadgetSplice Kind = "gadget-splice"
	// GaoRexford derives valley-free AS policies with optional violation
	// injection.
	GaoRexford Kind = "gao-rexford"
	// IBGP derives route-reflector configurations with optional embedded
	// preference cycles.
	IBGP Kind = "ibgp"
	// DivergentFixture is a deliberately mislabeled dispute composition used
	// to exercise the divergence → shrink → corpus pipeline.
	DivergentFixture Kind = "divergent-fixture"
	// PartialSpec composes gadgets with overlap glue that ranks two path
	// extensions against each other, making the verdict genuinely unknown
	// at generation time (ExpectAny): the campaign cross-checks analysis
	// against execution without a construction guarantee.
	PartialSpec Kind = "partial-spec"
	// ChurnFlap is a safe gadget composition run under a light seed-derived
	// fault plan (a few link flaps, maybe a restart): the safe policy must
	// re-converge after the last fault.
	ChurnFlap Kind = "churn-flap"
	// ChurnStorm is a violation-free Gao-Rexford hierarchy under a heavy
	// plan (flap storm, a partition, restarts, a mid-run policy change).
	ChurnStorm Kind = "churn-storm"
	// ChurnDispute is a dispute-embedding composition under a flap storm:
	// expected unsafe, and the §VI-B suspect set should predict the nodes
	// observed oscillating.
	ChurnDispute Kind = "churn-dispute"
	// GaoRexfordInternet derives valley-free policies over a power-law
	// (preferential-attachment) AS graph with a tier-1 peering clique and
	// multihomed stubs — the Internet-shaped workload of the scale
	// campaigns — with optional violation injection.
	GaoRexfordInternet Kind = "gao-rexford-internet"
	// LexicalProduct ranks valley-free paths by the §IV-B lexical product
	// of business class and IGP path cost, with optional violation
	// injection.
	LexicalProduct Kind = "lexical-product"
)

// Expectation is the verdict a generator guarantees by construction.
type Expectation int

const (
	// ExpectAny makes no claim; the campaign only cross-checks analysis
	// against execution.
	ExpectAny Expectation = iota
	// ExpectSafe: the instance admits a strict-monotonicity witness (sat).
	ExpectSafe
	// ExpectUnsafe: the instance embeds a dispute cycle (unsat).
	ExpectUnsafe
)

// String returns "any", "safe" or "unsafe".
func (e Expectation) String() string {
	switch e {
	case ExpectSafe:
		return "safe"
	case ExpectUnsafe:
		return "unsafe"
	default:
		return "any"
	}
}

// ExpectationByName parses the String rendering.
func ExpectationByName(s string) (Expectation, error) {
	switch s {
	case "any", "":
		return ExpectAny, nil
	case "safe":
		return ExpectSafe, nil
	case "unsafe":
		return ExpectUnsafe, nil
	}
	return ExpectAny, fmt.Errorf("scenario: unknown expectation %q", s)
}

// Scenario is one self-describing generated workload: the instance, the
// seed and kind that deterministically reproduce it, and the verdict its
// construction guarantees.
type Scenario struct {
	Kind     Kind
	Seed     int64
	Expected Expectation
	// Note records the generator's construction choices (cores spliced,
	// violation injected and where) for campaign reports.
	Note string
	// Instance is the generated SPP instance.
	Instance *spp.Instance
	// Plan, when non-nil, is the seed-derived fault schedule the execution
	// runs under (churn kinds). Regenerating the scenario from (Kind, Seed)
	// rebuilds the identical plan.
	Plan *engine.FaultPlan
}

// GeneratorFunc derives a scenario from a seed. Implementations must be
// deterministic: equal seeds yield structurally equal scenarios.
type GeneratorFunc func(seed int64) (*Scenario, error)

// generators is the built-in registry, in the order Kinds reports.
var generators = []struct {
	kind Kind
	gen  GeneratorFunc
}{
	{GadgetSplice, genGadgetSplice},
	{GaoRexford, genGaoRexford},
	{IBGP, genIBGP},
	{DivergentFixture, genDivergentFixture},
	{PartialSpec, genPartialSpec},
	{ChurnFlap, genChurnFlap},
	{ChurnStorm, genChurnStorm},
	{ChurnDispute, genChurnDispute},
	{GaoRexfordInternet, genGaoRexfordInternet},
	{LexicalProduct, genLexicalProduct},
}

// Kinds lists every registered generator kind.
func Kinds() []Kind {
	out := make([]Kind, len(generators))
	for i, g := range generators {
		out[i] = g.kind
	}
	return out
}

// DefaultKinds is the mixed workload a campaign runs when none is named:
// the three "honest" generators (divergent-fixture is opt-in, being a
// deliberate self-test of the divergence pipeline; churn kinds are opt-in
// via ChurnKinds).
func DefaultKinds() []Kind { return []Kind{GadgetSplice, GaoRexford, IBGP} }

// ChurnKinds is the fault-injection workload: every generator whose
// scenarios carry a seed-derived FaultPlan.
func ChurnKinds() []Kind { return []Kind{ChurnFlap, ChurnStorm, ChurnDispute} }

// KindByName resolves a kind, erroring with the known names.
func KindByName(name string) (Kind, error) {
	for _, g := range generators {
		if string(g.kind) == name {
			return g.kind, nil
		}
	}
	known := make([]string, len(generators))
	for i, g := range generators {
		known[i] = string(g.kind)
	}
	sort.Strings(known)
	return "", fmt.Errorf("scenario: unknown kind %q (have: %s)", name, strings.Join(known, ", "))
}

// Generate derives the scenario for (kind, seed).
func Generate(kind Kind, seed int64) (*Scenario, error) {
	for _, g := range generators {
		if g.kind == kind {
			sc, err := g.gen(seed)
			if err != nil {
				return nil, fmt.Errorf("scenario %s seed %d: %w", kind, seed, err)
			}
			return sc, nil
		}
	}
	_, err := KindByName(string(kind))
	return nil, err
}
