// Campaign counters on the process-global obs registry: per-outcome
// totals (one series per classification, including the ExpectAny
// partial-spec scenarios) and a completed-scenario counter that a
// -metrics-addr scraper can rate() into scenarios/sec.

package scenario

import "fsr/internal/obs"

var (
	obsOutcomes = obs.Default().CounterVec("fsr_campaign_scenarios_total",
		"Campaign scenarios completed, by outcome class.", "outcome")
	obsScenarios = obs.Default().Counter("fsr_campaign_scenarios_completed_total",
		"Campaign scenarios completed, all outcomes.")
)
