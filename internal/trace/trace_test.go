package trace

import (
	"testing"
	"testing/quick"
	"time"
)

// TestBucketing: bytes land in the right buckets and the series scales to
// per-node MBps.
func TestBucketing(t *testing.T) {
	c := NewCollector(10 * time.Millisecond)
	c.RecordSend("a", 1000, 5*time.Millisecond)  // bucket 0
	c.RecordSend("b", 1000, 15*time.Millisecond) // bucket 1
	c.RecordSend("a", 2000, 17*time.Millisecond) // bucket 1
	pts := c.BandwidthSeries(2, 30*time.Millisecond)
	if len(pts) != 3 {
		t.Fatalf("want 3 points, got %d", len(pts))
	}
	// Bucket 0: 1000 B / 2 nodes / 0.01 s = 50 000 B/s = 0.05 MBps.
	if pts[0].MBps != 0.05 {
		t.Errorf("bucket 0 = %v MBps, want 0.05", pts[0].MBps)
	}
	if pts[1].MBps != 0.15 {
		t.Errorf("bucket 1 = %v MBps, want 0.15", pts[1].MBps)
	}
	if pts[2].MBps != 0 {
		t.Errorf("bucket 2 should be zero-extended, got %v", pts[2].MBps)
	}
}

// TestTotalsAndPerNode: aggregate accounting.
func TestTotalsAndPerNode(t *testing.T) {
	c := NewCollector(time.Millisecond)
	c.RecordSend("a", 10, 0)
	c.RecordSend("a", 20, time.Millisecond)
	c.RecordRecv("b", 10)
	msgs, bytes := c.Totals()
	if msgs != 2 || bytes != 30 {
		t.Errorf("totals %d/%d", msgs, bytes)
	}
	if got := c.Node("a"); got.BytesSent != 30 || got.MsgsSent != 2 {
		t.Errorf("node a: %+v", got)
	}
	if got := c.Node("b"); got.BytesRecv != 10 || got.MsgsRecv != 1 {
		t.Errorf("node b: %+v", got)
	}
	if c.PerNodeBytes(2) != 15 {
		t.Errorf("per-node bytes = %v", c.PerNodeBytes(2))
	}
}

// TestConvergenceMarkIdempotent: the first mark wins.
func TestConvergenceMarkIdempotent(t *testing.T) {
	c := NewCollector(time.Millisecond)
	c.MarkConverged(100 * time.Millisecond)
	c.MarkConverged(200 * time.Millisecond)
	if got, ok := c.Converged(); !ok || got != 100*time.Millisecond {
		t.Errorf("converged = %v, %v", got, ok)
	}
}

// TestSeriesConservation (property, testing/quick): total bytes in the
// series equal total bytes recorded, for any sequence of sends within the
// horizon.
func TestSeriesConservation(t *testing.T) {
	f := func(sizes []uint16) bool {
		c := NewCollector(10 * time.Millisecond)
		var total float64
		for i, sz := range sizes {
			at := time.Duration(i%40) * 9 * time.Millisecond
			c.RecordSend("n", int(sz), at)
			total += float64(sz)
		}
		pts := c.BandwidthSeries(1, 400*time.Millisecond)
		var sum float64
		for _, p := range pts {
			sum += p.MBps * 1e6 * 0.01 // bytes per bucket
		}
		return int64(sum+0.5) == int64(total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestFormatSeries: two columns, parseable.
func TestFormatSeries(t *testing.T) {
	out := FormatSeries([]Point{{Time: 10 * time.Millisecond, MBps: 0.5}})
	if out != "0.010\t0.500000\n" {
		t.Errorf("got %q", out)
	}
}
