// Package trace collects the execution metrics the paper's evaluation plots:
// per-node bandwidth utilization over time (Figures 5 and 6), message and
// byte totals, and convergence times (Figure 4). A Collector is attached to
// a simulation or deployment run and queried afterwards.
package trace

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// NodeStats aggregates one node's traffic.
type NodeStats struct {
	BytesSent, BytesRecv int64
	MsgsSent, MsgsRecv   int
}

// Collector accumulates traffic and convergence observations. It is safe
// for concurrent use (the TCP deployment mode records from many
// goroutines). The zero value is not ready; use NewCollector.
type Collector struct {
	mu          sync.Mutex
	bucketWidth time.Duration
	buckets     []int64 // bytes sent per time bucket, all nodes
	perNode     map[string]*NodeStats
	msgs        int
	bytes       int64
	lastSend    time.Duration
	converged   time.Duration
	hasConv     bool
}

// NewCollector returns a collector bucketing traffic at the given width
// (e.g. 10 ms buckets for the paper's 0–0.4 s bandwidth plots).
func NewCollector(bucketWidth time.Duration) *Collector {
	if bucketWidth <= 0 {
		bucketWidth = 10 * time.Millisecond
	}
	return &Collector{bucketWidth: bucketWidth, perNode: map[string]*NodeStats{}}
}

// BucketWidth returns the configured bucket width.
func (c *Collector) BucketWidth() time.Duration { return c.bucketWidth }

func (c *Collector) node(id string) *NodeStats {
	ns := c.perNode[id]
	if ns == nil {
		ns = &NodeStats{}
		c.perNode[id] = ns
	}
	return ns
}

// RecordSend accounts one transmitted message at virtual (or wall) time at.
func (c *Collector) RecordSend(nodeID string, bytes int, at time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ns := c.node(nodeID)
	ns.BytesSent += int64(bytes)
	ns.MsgsSent++
	c.msgs++
	c.bytes += int64(bytes)
	if at > c.lastSend {
		c.lastSend = at
	}
	b := int(at / c.bucketWidth)
	for len(c.buckets) <= b {
		c.buckets = append(c.buckets, 0)
	}
	c.buckets[b] += int64(bytes)
}

// RecordRecv accounts one received message.
func (c *Collector) RecordRecv(nodeID string, bytes int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ns := c.node(nodeID)
	ns.BytesRecv += int64(bytes)
	ns.MsgsRecv++
}

// MarkConverged records the convergence instant (idempotent: the first mark
// wins, matching "time until all nodes have computed routes").
func (c *Collector) MarkConverged(at time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.hasConv {
		c.hasConv = true
		c.converged = at
	}
}

// Converged returns the recorded convergence time, if any.
func (c *Collector) Converged() (time.Duration, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.converged, c.hasConv
}

// Totals returns total messages and bytes sent across all nodes.
func (c *Collector) Totals() (msgs int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.msgs, c.bytes
}

// LastSend returns the time of the last transmitted message.
func (c *Collector) LastSend() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastSend
}

// Node returns a copy of one node's stats.
func (c *Collector) Node(id string) NodeStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	ns := c.perNode[id]
	if ns == nil {
		return NodeStats{}
	}
	return *ns
}

// NumNodes returns the number of nodes that sent or received traffic.
func (c *Collector) NumNodes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.perNode)
}

// PerNodeBytes returns the mean bytes sent per node — the paper's "per-node
// communication cost" (e.g. 1.09 MB for HLP vs 1.75 MB for PV in §VI-D).
func (c *Collector) PerNodeBytes(numNodes int) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if numNodes == 0 {
		return 0
	}
	return float64(c.bytes) / float64(numNodes)
}

// Point is one sample of a bandwidth time series.
type Point struct {
	Time time.Duration
	// MBps is the average per-node bandwidth in megabytes per second over
	// the bucket, the unit of Figures 5 and 6.
	MBps float64
}

// BandwidthSeries returns the average per-node bandwidth utilization over
// time: for each bucket, bytes sent across all nodes divided by the node
// count and the bucket width. numNodes scales to a per-node average; upTo
// truncates or zero-extends the series to a fixed horizon so different runs
// plot over the same x axis.
func (c *Collector) BandwidthSeries(numNodes int, upTo time.Duration) []Point {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := int(upTo / c.bucketWidth)
	if n == 0 {
		n = len(c.buckets)
	}
	out := make([]Point, n)
	sec := c.bucketWidth.Seconds()
	for i := 0; i < n; i++ {
		var bytes int64
		if i < len(c.buckets) {
			bytes = c.buckets[i]
		}
		mbps := 0.0
		if numNodes > 0 {
			mbps = float64(bytes) / float64(numNodes) / sec / 1e6
		}
		out[i] = Point{Time: time.Duration(i) * c.bucketWidth, MBps: mbps}
	}
	return out
}

// FormatSeries renders a bandwidth series as the two-column table the
// paper's gnuplot figures consume (time seconds, MBps).
func FormatSeries(points []Point) string {
	var b strings.Builder
	for _, p := range points {
		fmt.Fprintf(&b, "%.3f\t%.6f\n", p.Time.Seconds(), p.MBps)
	}
	return b.String()
}
