package trace

import (
	"sync"
	"testing"
	"time"
)

// TestCollectorConcurrent hammers one collector from many goroutines —
// the TCP deployment mode's access pattern — and checks nothing is lost.
// Run under -race in CI, this also proves the locking is complete.
func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector(10 * time.Millisecond)
	const workers, per = 16, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := string(rune('a' + w%8))
			for i := 0; i < per; i++ {
				c.RecordSend(id, 100, time.Duration(i)*time.Millisecond)
				c.RecordRecv(id, 100)
				if i%50 == 0 {
					c.MarkConverged(time.Duration(i) * time.Millisecond)
					c.BandwidthSeries(8, 200*time.Millisecond)
					c.Totals()
				}
			}
		}(w)
	}
	wg.Wait()
	msgs, bytes := c.Totals()
	if msgs != workers*per || bytes != int64(workers*per*100) {
		t.Errorf("Totals = %d msgs / %d bytes, want %d / %d",
			msgs, bytes, workers*per, workers*per*100)
	}
	if c.NumNodes() != 8 {
		t.Errorf("NumNodes = %d, want 8", c.NumNodes())
	}
	recv := 0
	for i := 0; i < 8; i++ {
		recv += c.Node(string(rune('a' + i))).MsgsRecv
	}
	if recv != workers*per {
		t.Errorf("summed MsgsRecv = %d, want %d", recv, workers*per)
	}
	if _, ok := c.Converged(); !ok {
		t.Error("convergence mark lost")
	}
}

// TestBandwidthSeriesBoundary pins BandwidthSeries' behavior at the upTo
// boundary: zero-extension past the recorded buckets, truncation before
// them, the natural length at upTo=0, and the sub-bucket rounding edge.
func TestBandwidthSeriesBoundary(t *testing.T) {
	w := 10 * time.Millisecond
	c := NewCollector(w)
	// Buckets 0,1,2 get traffic (last send at 25 ms → 3 buckets exist).
	c.RecordSend("a", 1000, 0)
	c.RecordSend("a", 1000, 12*time.Millisecond)
	c.RecordSend("a", 1000, 25*time.Millisecond)

	// Zero-extension: a 60 ms horizon yields 6 points, the tail all zero.
	pts := c.BandwidthSeries(1, 60*time.Millisecond)
	if len(pts) != 6 {
		t.Fatalf("extend: %d points, want 6", len(pts))
	}
	for i := 3; i < 6; i++ {
		if pts[i].MBps != 0 {
			t.Errorf("extend: bucket %d not zero: %v", i, pts[i].MBps)
		}
		if pts[i].Time != time.Duration(i)*w {
			t.Errorf("extend: bucket %d time %v", i, pts[i].Time)
		}
	}
	if pts[2].MBps == 0 {
		t.Error("extend: recorded bucket 2 lost")
	}

	// Truncation: a 20 ms horizon cuts the series to 2 points, dropping
	// bucket 2 even though it holds traffic.
	pts = c.BandwidthSeries(1, 20*time.Millisecond)
	if len(pts) != 2 {
		t.Fatalf("truncate: %d points, want 2", len(pts))
	}
	if pts[0].MBps == 0 || pts[1].MBps == 0 {
		t.Errorf("truncate: kept buckets wrong: %+v", pts)
	}

	// upTo = 0 falls back to the recorded length.
	if got := len(c.BandwidthSeries(1, 0)); got != 3 {
		t.Errorf("upTo=0: %d points, want 3 (recorded length)", got)
	}
	// upTo below one bucket width also rounds to 0 → recorded length.
	if got := len(c.BandwidthSeries(1, w-1)); got != 3 {
		t.Errorf("upTo<width: %d points, want 3", got)
	}
	// upTo exactly one width is a genuine 1-point truncation.
	if got := len(c.BandwidthSeries(1, w)); got != 1 {
		t.Errorf("upTo=width: %d points, want 1", got)
	}
}
