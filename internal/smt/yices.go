package smt

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file implements the Yices 1.x surface syntax used in the paper's
// §IV-C listings, in both directions: Emit renders a Solver's context as
// Yices input and Parse reads such input back into a Solver. The round trip
// lets FSR display the exact encodings the paper prints and lets users feed
// hand-written Yices files to the built-in solver.

// sigTypeName is the signature type the paper defines:
// (define-type Sig (subtype (n::nat) (> n 0))).
const sigTypeName = "Sig"

// Emit renders the solver's logical context in Yices syntax, matching the
// paper's §IV-C listings: a Sig type declaration, one define per variable,
// and one assert per atom. Comment lines carry assertion provenance.
func Emit(s *Context) string {
	var b strings.Builder
	fmt.Fprintf(&b, "(define-type %s (subtype (n::nat) (> n 0)))\n", sigTypeName)

	// Collect ground variables in first-appearance order.
	seen := map[Var]bool{}
	var vars []Var
	addVar := func(t Term, quant Var) {
		if t.Var == "" || t.Var == quant || seen[t.Var] {
			return
		}
		seen[t.Var] = true
		vars = append(vars, t.Var)
	}
	for _, a := range s.asserts {
		addVar(a.A, a.QuantVar)
		addVar(a.B, a.QuantVar)
	}
	for _, v := range vars {
		fmt.Fprintf(&b, "(define %s::%s)\n", v, sigTypeName)
	}

	lastOrigin := ""
	for _, a := range s.asserts {
		if a.Origin != "" && a.Origin != lastOrigin {
			fmt.Fprintf(&b, ";; %s\n", a.Origin)
			lastOrigin = a.Origin
		}
		if a.QuantVar != "" {
			fmt.Fprintf(&b, "(assert (forall (%s::%s) (%s %s %s)))\n",
				a.QuantVar, sigTypeName, a.Rel, emitTerm(a.A), emitTerm(a.B))
			continue
		}
		fmt.Fprintf(&b, "(assert (%s %s %s))\n", a.Rel, emitTerm(a.A), emitTerm(a.B))
	}
	b.WriteString("(check)\n")
	return b.String()
}

func emitTerm(t Term) string {
	switch {
	case t.Var == "":
		return strconv.Itoa(t.K)
	case t.K == 0:
		return string(t.Var)
	case t.K > 0:
		return fmt.Sprintf("(+ %s %d)", t.Var, t.K)
	default:
		return fmt.Sprintf("(- %s %d)", t.Var, -t.K)
	}
}

// Parse reads Yices-syntax input (the subset Emit produces, which is also
// the subset the paper's listings use) into a fresh Solver. Unsupported
// constructs produce an error naming the offending form.
func Parse(input string) (*Context, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	s := NewContext()
	for !p.eof() {
		form, err := p.sexp()
		if err != nil {
			return nil, err
		}
		if err := applyForm(s, form); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// sexp is a parsed s-expression: either an atom (string) or a list.
type sexp struct {
	atom string
	list []sexp
}

func (e sexp) isAtom() bool { return e.list == nil }

func (e sexp) String() string {
	if e.isAtom() {
		return e.atom
	}
	parts := make([]string, len(e.list))
	for i, c := range e.list {
		parts[i] = c.String()
	}
	return "(" + strings.Join(parts, " ") + ")"
}

func lex(input string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(input) {
		c := input[i]
		switch {
		case c == ';': // comment to end of line
			for i < len(input) && input[i] != '\n' {
				i++
			}
		case c == '(' || c == ')':
			toks = append(toks, string(c))
			i++
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		default:
			j := i
			for j < len(input) && !strings.ContainsRune("() \t\n\r;", rune(input[j])) {
				j++
			}
			toks = append(toks, input[i:j])
			i = j
		}
	}
	return toks, nil
}

type parser struct {
	toks []string
	pos  int
}

func (p *parser) eof() bool { return p.pos >= len(p.toks) }

func (p *parser) sexp() (sexp, error) {
	if p.eof() {
		return sexp{}, fmt.Errorf("smt: unexpected end of input")
	}
	tok := p.toks[p.pos]
	p.pos++
	if tok == ")" {
		return sexp{}, fmt.Errorf("smt: unexpected ')'")
	}
	if tok != "(" {
		return sexp{atom: tok}, nil
	}
	list := []sexp{}
	for {
		if p.eof() {
			return sexp{}, fmt.Errorf("smt: unterminated '('")
		}
		if p.toks[p.pos] == ")" {
			p.pos++
			return sexp{list: list}, nil
		}
		child, err := p.sexp()
		if err != nil {
			return sexp{}, err
		}
		list = append(list, child)
	}
}

func applyForm(s *Context, form sexp) error {
	if form.isAtom() || len(form.list) == 0 {
		return fmt.Errorf("smt: expected a form, got %s", form)
	}
	head := form.list[0]
	if !head.isAtom() {
		return fmt.Errorf("smt: expected a form head, got %s", head)
	}
	switch head.atom {
	case "define-type", "set-evidence!", "set-verbosity!", "check":
		return nil // declarations and directives carry no constraints
	case "define":
		return nil // variable declarations are implicit in use
	case "assert", "assert+":
		if len(form.list) != 2 {
			return fmt.Errorf("smt: assert wants one body, got %s", form)
		}
		return applyAssert(s, form.list[1])
	default:
		return fmt.Errorf("smt: unsupported form %s", head.atom)
	}
}

func applyAssert(s *Context, body sexp) error {
	if body.isAtom() || len(body.list) == 0 {
		return fmt.Errorf("smt: unsupported assertion body %s", body)
	}
	head := body.list[0]
	if head.isAtom() && head.atom == "forall" {
		// (forall (v::T) atom)
		if len(body.list) != 3 {
			return fmt.Errorf("smt: malformed forall %s", body)
		}
		binder := body.list[1]
		var name string
		switch {
		case binder.isAtom():
			name = binder.atom
		case len(binder.list) == 1 && binder.list[0].isAtom():
			name = binder.list[0].atom
		default:
			return fmt.Errorf("smt: malformed forall binder %s", binder)
		}
		name = strings.SplitN(name, "::", 2)[0]
		a, err := parseAtom(body.list[2])
		if err != nil {
			return err
		}
		a.QuantVar = Var(name)
		s.Assert(a)
		return nil
	}
	a, err := parseAtom(body)
	if err != nil {
		return err
	}
	s.Assert(a)
	return nil
}

func parseAtom(e sexp) (Assertion, error) {
	if e.isAtom() || len(e.list) != 3 || !e.list[0].isAtom() {
		return Assertion{}, fmt.Errorf("smt: expected (rel a b), got %s", e)
	}
	var rel Rel
	switch e.list[0].atom {
	case "<":
		rel = Lt
	case "<=":
		rel = Le
	case "=":
		rel = Eq
	case ">":
		rel = Gt
	case ">=":
		rel = Ge
	default:
		return Assertion{}, fmt.Errorf("smt: unsupported relation %s", e.list[0].atom)
	}
	a, err := parseTerm(e.list[1])
	if err != nil {
		return Assertion{}, err
	}
	b, err := parseTerm(e.list[2])
	if err != nil {
		return Assertion{}, err
	}
	return Assertion{Rel: rel, A: a, B: b}, nil
}

func parseTerm(e sexp) (Term, error) {
	if e.isAtom() {
		if n, err := strconv.Atoi(e.atom); err == nil {
			return C(n), nil
		}
		name := strings.SplitN(e.atom, "::", 2)[0]
		// The paper writes s+1 as a single token in prose; accept it.
		if i := strings.IndexByte(name, '+'); i > 0 {
			if k, err := strconv.Atoi(name[i+1:]); err == nil {
				return V(name[:i]).Plus(k), nil
			}
		}
		return V(name), nil
	}
	if len(e.list) == 3 && e.list[0].isAtom() {
		op := e.list[0].atom
		if op == "+" || op == "-" {
			base, err := parseTerm(e.list[1])
			if err != nil {
				return Term{}, err
			}
			k, err := parseTerm(e.list[2])
			if err != nil {
				return Term{}, err
			}
			if !k.IsConst() && !base.IsConst() {
				return Term{}, fmt.Errorf("smt: non-linear term %s", e)
			}
			if !k.IsConst() {
				if op == "-" {
					return Term{}, fmt.Errorf("smt: unsupported term %s", e)
				}
				base, k = k, base
			}
			if op == "-" {
				return base.Plus(-k.K), nil
			}
			return base.Plus(k.K), nil
		}
	}
	return Term{}, fmt.Errorf("smt: unsupported term %s", e)
}

// FormatCore renders an unsat core the way FSR reports it to users: one
// line per assertion, sorted, with provenance. Useful for CLI output and
// golden tests.
func FormatCore(core []Assertion) string {
	lines := make([]string, len(core))
	for i, a := range core {
		lines[i] = a.String()
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
