package smt

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
)

// oracleCheck solves the assertion list on a fresh Context — the full
// rebuild the delta path must match bit for bit.
func oracleCheck(t *testing.T, asserts []Assertion) Result {
	t.Helper()
	c := NewContext()
	c.AssertAll(asserts)
	res, err := c.CheckContext(context.Background())
	if err != nil {
		t.Fatalf("oracle check: %v", err)
	}
	return res
}

// requireParity fails unless got matches the oracle on verdict, model,
// core, core indices, and positivity involvement (Stats are excluded:
// durations differ by construction, and a delta solve may keep orphaned
// variables interned).
func requireParity(t *testing.T, label string, got, want Result) {
	t.Helper()
	if got.Sat != want.Sat {
		t.Fatalf("%s: Sat = %v, oracle %v", label, got.Sat, want.Sat)
	}
	if len(got.Model) != len(want.Model) {
		t.Fatalf("%s: model size %d, oracle %d\n got: %v\nwant: %v",
			label, len(got.Model), len(want.Model), got.Model, want.Model)
	}
	for v, k := range want.Model {
		if got.Model[v] != k {
			t.Fatalf("%s: model[%s] = %d, oracle %d", label, v, got.Model[v], k)
		}
	}
	if len(got.CoreIdx) != len(want.CoreIdx) {
		t.Fatalf("%s: core size %d, oracle %d\n got: %v\nwant: %v",
			label, len(got.CoreIdx), len(want.CoreIdx), got.CoreIdx, want.CoreIdx)
	}
	for i := range want.CoreIdx {
		if got.CoreIdx[i] != want.CoreIdx[i] {
			t.Fatalf("%s: CoreIdx[%d] = %d, oracle %d", label, i, got.CoreIdx[i], want.CoreIdx[i])
		}
		if got.Core[i] != want.Core[i] {
			t.Fatalf("%s: Core[%d] = %v, oracle %v", label, i, got.Core[i], want.Core[i])
		}
	}
	if got.UsesPositivity != want.UsesPositivity {
		t.Fatalf("%s: UsesPositivity = %v, oracle %v", label, got.UsesPositivity, want.UsesPositivity)
	}
}

func deltaCheck(t *testing.T, d *DeltaContext) Result {
	t.Helper()
	res, err := d.Check(context.Background())
	if err != nil {
		t.Fatalf("delta check: %v", err)
	}
	return res
}

// TestDeltaSpliceFuzz drives random splice sequences over random
// difference-logic instances and asserts every intermediate Check matches a
// fresh full solve of the same assertion list.
func TestDeltaSpliceFuzz(t *testing.T) {
	vars := []Var{"a", "b", "c", "d", "e", "f", "g", "h"}
	for seed := int64(1); seed <= 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		randTerm := func() Term {
			if rng.Intn(6) == 0 {
				return C(rng.Intn(7) - 3)
			}
			return V(string(vars[rng.Intn(len(vars))])).Plus(rng.Intn(5) - 2)
		}
		randAssert := func() Assertion {
			return Assertion{
				Rel: Rel(rng.Intn(5)), // Lt, Le, Eq, Gt, Ge
				A:   randTerm(),
				B:   randTerm(),
			}
		}
		asserts := make([]Assertion, 4+rng.Intn(10))
		for i := range asserts {
			asserts[i] = randAssert()
		}
		d := NewDeltaContext(asserts)
		requireParity(t, fmt.Sprintf("seed %d initial", seed), deltaCheck(t, d), oracleCheck(t, d.Assertions()))
		for step := 0; step < 25; step++ {
			n := d.Len()
			at := rng.Intn(n + 1)
			del := 0
			if at < n {
				del = rng.Intn(min(n-at, 3) + 1)
			}
			add := make([]Assertion, rng.Intn(3))
			for i := range add {
				add[i] = randAssert()
			}
			if err := d.Splice(at, del, add); err != nil {
				t.Fatalf("seed %d step %d: splice: %v", seed, step, err)
			}
			label := fmt.Sprintf("seed %d step %d (at=%d del=%d add=%d)", seed, step, at, del, len(add))
			requireParity(t, label, deltaCheck(t, d), oracleCheck(t, d.Assertions()))
		}
		st := d.Stats()
		if st.Checks != st.DeltaSolves+st.FullSolves {
			// A delta probe that falls back counts one check, one full solve.
			// Every check is answered by exactly one of the two paths.
			t.Fatalf("seed %d: checks %d != delta %d + full %d", seed, st.Checks, st.DeltaSolves, st.FullSolves)
		}
	}
}

// TestDeltaSatToUnsatAndBack walks a context across the sat/unsat boundary:
// unsat verdicts (full path with minimization) must not corrupt the state
// used by later delta solves.
func TestDeltaSatToUnsatAndBack(t *testing.T) {
	base := []Assertion{
		{Rel: Lt, A: V("x"), B: V("y")},
		{Rel: Lt, A: V("y"), B: V("z")},
	}
	d := NewDeltaContext(base)
	requireParity(t, "sat", deltaCheck(t, d), oracleCheck(t, d.Assertions()))

	// z < x closes a strict cycle: unsat with a three-assertion core.
	if err := d.Splice(d.Len(), 0, []Assertion{{Rel: Lt, A: V("z"), B: V("x")}}); err != nil {
		t.Fatal(err)
	}
	res := deltaCheck(t, d)
	requireParity(t, "unsat", res, oracleCheck(t, d.Assertions()))
	if res.Sat || len(res.Core) != 3 {
		t.Fatalf("expected 3-assertion unsat core, got Sat=%v core=%v", res.Sat, res.Core)
	}

	// Remove the closing assertion: sat again, solved by a full rebuild
	// (the unsat solve left no converged fixed point).
	if err := d.Splice(d.Len()-1, 1, nil); err != nil {
		t.Fatal(err)
	}
	requireParity(t, "sat again", deltaCheck(t, d), oracleCheck(t, d.Assertions()))

	// Now a benign delta on the warm state.
	if err := d.Splice(0, 1, []Assertion{{Rel: Le, A: V("x"), B: V("y")}}); err != nil {
		t.Fatal(err)
	}
	requireParity(t, "delta after recovery", deltaCheck(t, d), oracleCheck(t, d.Assertions()))
	if st := d.Stats(); st.DeltaSolves == 0 {
		t.Fatalf("expected at least one delta solve, stats %+v", st)
	}
}

// TestDeltaOrphanVariables removes every assertion mentioning a variable
// and checks the orphan is filtered from the model, matching the oracle
// (which never interns it).
func TestDeltaOrphanVariables(t *testing.T) {
	d := NewDeltaContext([]Assertion{
		{Rel: Lt, A: V("x"), B: V("y")},
		{Rel: Lt, A: V("u"), B: V("v")},
	})
	requireParity(t, "initial", deltaCheck(t, d), oracleCheck(t, d.Assertions()))
	if err := d.Splice(1, 1, nil); err != nil { // orphans u and v
		t.Fatal(err)
	}
	res := deltaCheck(t, d)
	requireParity(t, "after orphaning", res, oracleCheck(t, d.Assertions()))
	for _, v := range []Var{"u", "v"} {
		if _, ok := res.Model[v]; ok {
			t.Fatalf("orphaned %s still in model %v", v, res.Model)
		}
	}
	// Re-adding a reference resurrects the variable.
	if err := d.Splice(d.Len(), 0, []Assertion{{Rel: Lt, A: V("u"), B: V("x")}}); err != nil {
		t.Fatal(err)
	}
	res = deltaCheck(t, d)
	requireParity(t, "after resurrection", res, oracleCheck(t, d.Assertions()))
	if _, ok := res.Model["u"]; !ok {
		t.Fatalf("resurrected u missing from model %v", res.Model)
	}
}

// TestDeltaQuantified checks the analytic quantified path: an invalid
// quantified assertion short-circuits with itself as the core, valid ones
// are skipped by the graph, both before and after splices.
func TestDeltaQuantified(t *testing.T) {
	valid := Assertion{Rel: Le, A: Term{Var: "n"}, B: Term{Var: "n", K: 1}, QuantVar: "n"}
	invalid := Assertion{Rel: Lt, A: Term{Var: "n", K: 1}, B: Term{Var: "n"}, QuantVar: "n"}
	ground := Assertion{Rel: Lt, A: V("x"), B: V("y")}

	d := NewDeltaContext([]Assertion{valid, ground})
	requireParity(t, "valid quant", deltaCheck(t, d), oracleCheck(t, d.Assertions()))

	if err := d.Splice(1, 0, []Assertion{invalid}); err != nil {
		t.Fatal(err)
	}
	res := deltaCheck(t, d)
	requireParity(t, "invalid quant", res, oracleCheck(t, d.Assertions()))
	if res.Sat || len(res.CoreIdx) != 1 || res.CoreIdx[0] != 1 {
		t.Fatalf("expected core [1], got Sat=%v CoreIdx=%v", res.Sat, res.CoreIdx)
	}

	if err := d.Splice(1, 1, nil); err != nil {
		t.Fatal(err)
	}
	requireParity(t, "quant removed", deltaCheck(t, d), oracleCheck(t, d.Assertions()))
}

// TestDeltaCheckMemoization verifies repeated Checks without intervening
// splices are answered from the cache.
func TestDeltaCheckMemoization(t *testing.T) {
	d := NewDeltaContext([]Assertion{{Rel: Lt, A: V("x"), B: V("y")}})
	first := deltaCheck(t, d)
	second := deltaCheck(t, d)
	if st := d.Stats(); st.Checks != 1 || st.CacheHits != 1 {
		t.Fatalf("expected 1 check + 1 cache hit, stats %+v", st)
	}
	requireParity(t, "memoized", second, first)
}

// TestDeltaClone applies divergent splices to a clone and its original and
// checks they stay independent and each matches its own oracle.
func TestDeltaClone(t *testing.T) {
	d := NewDeltaContext([]Assertion{
		{Rel: Lt, A: V("x"), B: V("y")},
		{Rel: Lt, A: V("y"), B: V("z")},
	})
	deltaCheck(t, d) // warm the engine so the clone copies live state
	c := d.Clone()
	if err := c.Splice(2, 0, []Assertion{{Rel: Lt, A: V("z"), B: V("x")}}); err != nil {
		t.Fatal(err)
	}
	if err := d.Splice(0, 1, []Assertion{{Rel: Eq, A: V("x"), B: V("y").Plus(2)}}); err != nil {
		t.Fatal(err)
	}
	requireParity(t, "clone", deltaCheck(t, c), oracleCheck(t, c.Assertions()))
	requireParity(t, "original", deltaCheck(t, d), oracleCheck(t, d.Assertions()))
	if got := deltaCheck(t, c); got.Sat {
		t.Fatal("clone should be unsat")
	}
	if got := deltaCheck(t, d); !got.Sat {
		t.Fatal("original should stay sat")
	}
}

// TestDeltaSpliceBounds checks the splice range validation.
func TestDeltaSpliceBounds(t *testing.T) {
	d := NewDeltaContext([]Assertion{{Rel: Lt, A: V("x"), B: V("y")}})
	for _, bad := range [][2]int{{-1, 0}, {0, 2}, {2, 0}, {1, 1}} {
		if err := d.Splice(bad[0], bad[1], nil); err == nil {
			t.Fatalf("splice(%d, %d) accepted", bad[0], bad[1])
		}
	}
}
