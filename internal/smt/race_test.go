//go:build race

package smt

// raceEnabled reports whether the race detector is active: allocation-count
// pins skip under it, since race instrumentation perturbs allocation
// behavior nondeterministically.
const raceEnabled = true
