// Solver introspection counters, exported through the process-global obs
// registry (scraped by fsr serve's /metrics and by fsr campaign
// -metrics-addr).
//
// The engine's inner loops count into plain int fields on the pooled
// dlEngine — a register increment, invisible to the solve benchmarks —
// and flushStats drains them into the atomic counters once per Check.
// The DeltaContext-level counters (splices, delta vs full discharges)
// mirror the per-context DeltaStats the daemon already reports.

package smt

import "fsr/internal/obs"

var (
	obsProbes = obs.Default().Counter("fsr_smt_probes_total",
		"Satisfiability probes decided by the difference-logic engine.")
	obsRelaxations = obs.Default().Counter("fsr_smt_relaxations_total",
		"Successful edge relaxations across SPFA and Bellman-Ford passes.")
	obsMinimizeIters = obs.Default().Counter("fsr_smt_minimize_iterations_total",
		"Core-minimization deletion-loop iterations.")
	obsDeltaSplices = obs.Default().Counter("fsr_smt_delta_splices_total",
		"Assertion-list splices applied to delta contexts.")
	obsDeltaSolves = obs.Default().Counter("fsr_smt_delta_solves_total",
		"Delta-context checks discharged by the affected-region re-probe.")
	obsFullSolves = obs.Default().Counter("fsr_smt_full_solves_total",
		"Delta-context checks discharged by a full rebuild.")
	obsCacheHits = obs.Default().Counter("fsr_smt_cache_hits_total",
		"Delta-context checks answered from the memoized result.")

	// Scale-path (SCC-decomposed backend) introspection: condensation
	// shape per solve plus Tarjan plan-building latency. The histogram
	// handle is pre-resolved so the per-solve Observe is alloc-free.
	obsSCCSolves = obs.Default().Counter("fsr_scc_solves_total",
		"Systems solved by the SCC-decomposed engine (Decomposed and SolveDense).")
	obsSCCComponents = obs.Default().Counter("fsr_scc_components_total",
		"Strongly connected components condensed across all decomposed solves.")
	obsSCCTrivial = obs.Default().Counter("fsr_scc_trivial_components_total",
		"Singleton components with no internal edge (decided without a solver queue).")
	obsSCCLevels = obs.Default().Gauge("fsr_scc_levels",
		"Topological levels in the most recent decomposed solve's plan.")
	obsSCCMaxWidth = obs.Default().Gauge("fsr_scc_max_level_width",
		"Widest level's component count in the most recent decomposed solve (level-parallel occupancy bound).")
	obsSCCTarjan = obs.Default().HistogramVec("fsr_scc_tarjan_seconds",
		"Iterative Tarjan condensation time per decomposed solve.").With()
)

// snapshotStats copies the engine's accumulated per-solve loop effort into
// st — the per-operation counterpart of flushStats' process-global drain.
// Call before the deferred flushStats zeroes the fields.
func (e *dlEngine) snapshotStats(st *Stats) {
	st.Probes = e.statProbes
	st.Relaxations = e.statRelax
}

// recordPlan publishes one condensation plan's shape into the registry and
// into st. A few atomic adds and one pre-resolved histogram observe per
// solve — invisible next to the solve itself.
func (s *sccPlan) recordPlan(st *Stats) {
	st.Components = s.ncomp
	st.TrivialComponents = s.trivial
	st.Levels = s.nLevels
	st.MaxLevelWidth = s.maxWidth
	st.TarjanDuration = s.tarjan
	obsSCCSolves.Inc()
	obsSCCComponents.Add(int64(s.ncomp))
	obsSCCTrivial.Add(int64(s.trivial))
	obsSCCLevels.Set(float64(s.nLevels))
	obsSCCMaxWidth.Set(float64(s.maxWidth))
	obsSCCTarjan.Observe(s.tarjan.Seconds())
}

// flushStats drains the engine's locally accumulated loop counts into the
// shared registry. Called once per Check (and per delta Check), so the
// hot loops never touch an atomic.
func (e *dlEngine) flushStats() {
	if e.statProbes > 0 {
		obsProbes.Add(int64(e.statProbes))
		e.statProbes = 0
	}
	if e.statRelax > 0 {
		obsRelaxations.Add(int64(e.statRelax))
		e.statRelax = 0
	}
	if e.statMinIter > 0 {
		obsMinimizeIters.Add(int64(e.statMinIter))
		e.statMinIter = 0
	}
}
