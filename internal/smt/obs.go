// Solver introspection counters, exported through the process-global obs
// registry (scraped by fsr serve's /metrics and by fsr campaign
// -metrics-addr).
//
// The engine's inner loops count into plain int fields on the pooled
// dlEngine — a register increment, invisible to the solve benchmarks —
// and flushStats drains them into the atomic counters once per Check.
// The DeltaContext-level counters (splices, delta vs full discharges)
// mirror the per-context DeltaStats the daemon already reports.

package smt

import "fsr/internal/obs"

var (
	obsProbes = obs.Default().Counter("fsr_smt_probes_total",
		"Satisfiability probes decided by the difference-logic engine.")
	obsRelaxations = obs.Default().Counter("fsr_smt_relaxations_total",
		"Successful edge relaxations across SPFA and Bellman-Ford passes.")
	obsMinimizeIters = obs.Default().Counter("fsr_smt_minimize_iterations_total",
		"Core-minimization deletion-loop iterations.")
	obsDeltaSplices = obs.Default().Counter("fsr_smt_delta_splices_total",
		"Assertion-list splices applied to delta contexts.")
	obsDeltaSolves = obs.Default().Counter("fsr_smt_delta_solves_total",
		"Delta-context checks discharged by the affected-region re-probe.")
	obsFullSolves = obs.Default().Counter("fsr_smt_full_solves_total",
		"Delta-context checks discharged by a full rebuild.")
	obsCacheHits = obs.Default().Counter("fsr_smt_cache_hits_total",
		"Delta-context checks answered from the memoized result.")
)

// flushStats drains the engine's locally accumulated loop counts into the
// shared registry. Called once per Check (and per delta Check), so the
// hot loops never touch an atomic.
func (e *dlEngine) flushStats() {
	if e.statProbes > 0 {
		obsProbes.Add(int64(e.statProbes))
		e.statProbes = 0
	}
	if e.statRelax > 0 {
		obsRelaxations.Add(int64(e.statRelax))
		e.statRelax = 0
	}
	if e.statMinIter > 0 {
		obsMinimizeIters.Add(int64(e.statMinIter))
		e.statMinIter = 0
	}
}
