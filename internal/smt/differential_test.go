package smt

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"runtime/debug"
	"testing"
)

// randomInstance draws a difference-constraint instance with occasional
// constants and quantified monotonicity atoms — the full shape the analysis
// layer emits. Instances skew toward unsat so the core paths get exercised.
func randomInstance(rng *rand.Rand) []Assertion {
	vars := []string{"a", "b", "c", "d", "e", "f"}
	rels := []Rel{Lt, Le, Eq, Gt, Ge}
	n := 2 + rng.Intn(14)
	out := make([]Assertion, 0, n)
	for i := 0; i < n; i++ {
		switch rng.Intn(12) {
		case 0: // constant on one side
			out = append(out, Assertion{
				Rel:    rels[rng.Intn(len(rels))],
				A:      V(vars[rng.Intn(len(vars))]).Plus(rng.Intn(3) - 1),
				B:      C(rng.Intn(4)),
				Origin: fmt.Sprintf("r%d", i),
			})
		case 1: // valid quantified monotonicity
			out = append(out, Assertion{
				Rel: Lt, A: V("s"), B: V("s").Plus(1 + rng.Intn(2)),
				QuantVar: "s", Origin: fmt.Sprintf("r%d", i),
			})
		default:
			out = append(out, Assertion{
				Rel:    rels[rng.Intn(len(rels))],
				A:      V(vars[rng.Intn(len(vars))]).Plus(rng.Intn(5) - 2),
				B:      V(vars[rng.Intn(len(vars))]).Plus(rng.Intn(5) - 2),
				Origin: fmt.Sprintf("r%d", i),
			})
		}
	}
	return out
}

// TestDifferentialRandomized holds the incremental engine to the retained
// reference implementation on randomized instances: identical sat/unsat
// verdicts, identical models (not merely valid ones — the shortest-path
// fixpoint is unique, so both solvers must land on it), and identical
// minimal cores element for element.
func TestDifferentialRandomized(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 400; trial++ {
		asserts := randomInstance(rng)
		got, err := (Native{}).Solve(ctx, asserts)
		if err != nil {
			t.Fatalf("trial %d: native: %v", trial, err)
		}
		want, err := (Reference{}).Solve(ctx, asserts)
		if err != nil {
			t.Fatalf("trial %d: reference: %v", trial, err)
		}
		if got.Sat != want.Sat {
			t.Fatalf("trial %d: verdicts disagree: native sat=%v, reference sat=%v\n%s",
				trial, got.Sat, want.Sat, FormatCore(asserts))
		}
		if got.Sat {
			if !reflect.DeepEqual(got.Model, want.Model) {
				t.Fatalf("trial %d: models disagree:\nnative    %v\nreference %v", trial, got.Model, want.Model)
			}
			s := NewContext()
			s.AssertAll(asserts)
			if bad := s.Verify(got.Model); bad != nil {
				t.Fatalf("trial %d: native model violates %s", trial, bad)
			}
			continue
		}
		if !reflect.DeepEqual(got.CoreIdx, want.CoreIdx) {
			t.Fatalf("trial %d: cores disagree:\nnative    %v\nreference %v\ninstance:\n%s",
				trial, got.CoreIdx, want.CoreIdx, FormatCore(asserts))
		}
		if !reflect.DeepEqual(got.Core, want.Core) {
			t.Fatalf("trial %d: core assertions disagree:\nnative    %s\nreference %s",
				trial, FormatCore(got.Core), FormatCore(want.Core))
		}
		if got.UsesPositivity != want.UsesPositivity {
			t.Fatalf("trial %d: positivity flags disagree: native %v, reference %v",
				trial, got.UsesPositivity, want.UsesPositivity)
		}
	}
}

// TestDifferentialNoMinimize: with minimization disabled the two
// implementations may pick different negative cycles (the contract says the
// choice of cycle is arbitrary), but both must agree on the verdict and the
// native cycle core must itself be unsatisfiable.
func TestDifferentialNoMinimize(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		asserts := randomInstance(rng)
		got, err := (Native{NoMinimize: true}).Solve(ctx, asserts)
		if err != nil {
			t.Fatalf("trial %d: native: %v", trial, err)
		}
		want, err := (Reference{NoMinimize: true}).Solve(ctx, asserts)
		if err != nil {
			t.Fatalf("trial %d: reference: %v", trial, err)
		}
		if got.Sat != want.Sat {
			t.Fatalf("trial %d: verdicts disagree: native %v, reference %v", trial, got.Sat, want.Sat)
		}
		if !got.Sat && len(got.Core) > 0 {
			s := NewContext()
			s.AssertAll(got.Core)
			if res, _ := s.Check(); res.Sat {
				t.Fatalf("trial %d: native cycle core is not unsat: %s", trial, FormatCore(got.Core))
			}
		}
	}
}

// TestDifferentialLargeChains exercises deep shortest-path chains (the
// SolverScaling shape) where SPFA's queue behavior differs most from
// pass-based Bellman–Ford.
func TestDifferentialLargeChains(t *testing.T) {
	ctx := context.Background()
	for _, n := range []int{50, 500} {
		sat := make([]Assertion, 0, n)
		for i := 0; i < n; i++ {
			sat = append(sat, Assertion{
				Rel: Lt,
				A:   V(fmt.Sprintf("x%d", i)),
				B:   V(fmt.Sprintf("x%d", i+1)),
			})
		}
		got, _ := (Native{}).Solve(ctx, sat)
		want, _ := (Reference{}).Solve(ctx, sat)
		if !got.Sat || !want.Sat || !reflect.DeepEqual(got.Model, want.Model) {
			t.Fatalf("n=%d: chain disagreement: sat %v/%v", n, got.Sat, want.Sat)
		}
		// Close the chain into a long negative cycle.
		unsat := append(sat[:n:n], Assertion{
			Rel: Lt, A: V(fmt.Sprintf("x%d", n)), B: V("x0"),
		})
		got, _ = (Native{}).Solve(ctx, unsat)
		want, _ = (Reference{}).Solve(ctx, unsat)
		if got.Sat || want.Sat || !reflect.DeepEqual(got.CoreIdx, want.CoreIdx) {
			t.Fatalf("n=%d: cycle disagreement: sat %v/%v cores %v vs %v",
				n, got.Sat, want.Sat, got.CoreIdx, want.CoreIdx)
		}
		if len(got.Core) != n+1 {
			t.Fatalf("n=%d: want full-cycle core of %d, got %d", n, n+1, len(got.Core))
		}
	}
}

// TestSatSolveAllocationBudget pins the steady-state sat path to its
// allocation budget: with a warm engine pool, a solve should allocate only
// the context, the assertion copy, and the model map. GC is disabled for
// the measurement — a collection mid-run clears the engine pool, and the
// resulting cold rebuild would be charged to the warm path.
func TestSatSolveAllocationBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation perturbs allocation counts")
	}
	const n = 200
	asserts := make([]Assertion, 0, n)
	for i := 0; i < n; i++ {
		asserts = append(asserts, Assertion{
			Rel: Lt,
			A:   V(fmt.Sprintf("x%d", i)),
			B:   V(fmt.Sprintf("x%d", i+1)),
		})
	}
	ctx := context.Background()
	solve := func() {
		res, err := (Native{}).Solve(ctx, asserts)
		if err != nil || !res.Sat {
			t.Fatalf("solve: sat=%v err=%v", res.Sat, err)
		}
	}
	solve() // warm the engine pool
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	solve() // re-warm: the pool may have been cleared since the first solve
	if got := testing.AllocsPerRun(50, solve); got > 12 {
		t.Errorf("sat-path solve allocates %.1f objects/op, budget is 12", got)
	}
}
