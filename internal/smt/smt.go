// Package smt implements a small SMT solver for the exact logic fragment the
// FSR safety analysis emits, substituting for the Yices binary the paper
// shells out to (§IV-B).
//
// The fragment: conjunctions of ordering atoms  a < b, a ≤ b, a = b  over
// positive-integer variables and constants, where each side may carry an
// additive constant (a+3 ≤ b), plus the single quantified pattern the
// closed-form algebras need (∀s. s < s+d). This is integer difference logic:
//
//   - every ground atom normalizes to a difference constraint x − y ≤ c;
//   - the conjunction is satisfiable iff the constraint graph has no
//     negative-weight cycle (decided with Bellman–Ford);
//   - a model is read off the shortest-path distances;
//   - a *minimal* unsatisfiable core is a simple negative cycle: removing
//     any single edge of a simple cycle leaves an acyclic (hence
//     satisfiable) subset, which matches the unsat-core contract Yices
//     provides for these inputs.
//
// Package yices-compatible surface syntax (emit and parse) lives in
// yices.go, so the paper's §IV-C listings round-trip through this solver.
package smt

import (
	"context"
	"fmt"
	"sort"
	"time"
)

// Var names an integer variable. Variables range over positive integers
// (n > 0), mirroring the paper's  (define-type Sig (subtype (n::nat) (> n 0))).
type Var string

// Term is a linear term: Var + K, or the bare constant K when Var is empty.
type Term struct {
	Var Var
	K   int
}

// V returns the term consisting of the single variable name.
func V(name string) Term { return Term{Var: Var(name)} }

// C returns the constant term k.
func C(k int) Term { return Term{K: k} }

// Plus returns t + k.
func (t Term) Plus(k int) Term { return Term{Var: t.Var, K: t.K + k} }

// IsConst reports whether the term has no variable.
func (t Term) IsConst() bool { return t.Var == "" }

// String renders the term in the paper's infix style.
func (t Term) String() string {
	switch {
	case t.Var == "":
		return fmt.Sprintf("%d", t.K)
	case t.K == 0:
		return string(t.Var)
	case t.K > 0:
		return fmt.Sprintf("%s+%d", t.Var, t.K)
	default:
		return fmt.Sprintf("%s-%d", t.Var, -t.K)
	}
}

// Rel is an ordering relation between two terms.
type Rel int

// The relations of the fragment. Gt/Ge exist for parser convenience and are
// normalized to Lt/Le by swapping sides at assertion time.
const (
	Lt Rel = iota // <
	Le            // <=
	Eq            // =
	Gt            // >
	Ge            // >=
)

// String returns the Yices spelling of the relation.
func (r Rel) String() string {
	switch r {
	case Lt:
		return "<"
	case Le:
		return "<="
	case Eq:
		return "="
	case Gt:
		return ">"
	case Ge:
		return ">="
	}
	return "?"
}

// Assertion is one asserted atom, optionally universally quantified.
type Assertion struct {
	Rel  Rel
	A, B Term

	// QuantVar, when non-empty, universally quantifies the named variable:
	// ∀ QuantVar. A Rel B. Only patterns where both sides mention QuantVar
	// (the monotonicity shape  s Rel s+d) are decidable; Check reports an
	// error for other quantified shapes.
	QuantVar Var

	// Origin is free-form provenance recorded by the caller (e.g. the
	// algebra constraint "strict-mono: p ⊕ C = P"); it is surfaced in unsat
	// cores so users can pinpoint the offending policy statement (§IV-B).
	Origin string
}

// String renders the assertion in infix style with its provenance.
func (a Assertion) String() string {
	body := fmt.Sprintf("%s %s %s", a.A, a.Rel, a.B)
	if a.QuantVar != "" {
		body = fmt.Sprintf("∀%s. %s", a.QuantVar, body)
	}
	if a.Origin != "" {
		return body + "  [" + a.Origin + "]"
	}
	return body
}

// normalized returns the assertion with Gt/Ge rewritten to Lt/Le.
func (a Assertion) normalized() Assertion {
	switch a.Rel {
	case Gt:
		a.A, a.B, a.Rel = a.B, a.A, Lt
	case Ge:
		a.A, a.B, a.Rel = a.B, a.A, Le
	}
	return a
}

// Stats reports solver effort, mirroring the paper's "solver returns within
// 100 ms" style measurements.
type Stats struct {
	Assertions int
	Variables  int
	Edges      int
	Duration   time.Duration
}

// Result is the outcome of Check.
type Result struct {
	// Sat reports satisfiability of the asserted conjunction.
	Sat bool
	// Model assigns positive integers to every variable when Sat. The
	// assignment satisfies every asserted atom.
	Model map[Var]int
	// Core, when !Sat, is a minimal unsatisfiable subset of the asserted
	// atoms: every proper subset of Core is satisfiable.
	Core []Assertion
	// UsesPositivity reports whether the implicit n > 0 typing of variables
	// participates in the contradiction (the paper's Sig subtype).
	UsesPositivity bool
	// Stats reports effort.
	Stats Stats
}

// Context accumulates assertions; Check decides them. The zero value is
// ready to use. Contexts are not safe for concurrent mutation. Callers that
// want a pluggable decision procedure should go through the Solver interface
// instead of using a Context directly.
type Context struct {
	asserts []Assertion

	// NoMinimize disables deletion-based core minimization: unsat results
	// then carry the (already minimal, but arbitrarily chosen) negative
	// cycle found by Bellman–Ford instead of the deletion-minimized core
	// biased toward earliest-asserted constraints. Exposed for the
	// unsat-core ablation benchmark.
	NoMinimize bool
}

// NewContext returns an empty logical context.
func NewContext() *Context { return &Context{} }

// Assert adds an assertion to the logical context.
func (s *Context) Assert(a Assertion) { s.asserts = append(s.asserts, a.normalized()) }

// AssertAll adds all assertions in order.
func (s *Context) AssertAll(as []Assertion) {
	for _, a := range as {
		s.Assert(a)
	}
}

// Assertions returns the asserted atoms in assertion order.
func (s *Context) Assertions() []Assertion {
	out := make([]Assertion, len(s.asserts))
	copy(out, s.asserts)
	return out
}

// Len returns the number of asserted atoms.
func (s *Context) Len() int { return len(s.asserts) }

// edge is one difference constraint to(x) − from(y) ≤ w, i.e. an edge
// from → to of weight w in the constraint graph; assertIdx < 0 marks the
// implicit positivity constraints.
type edge struct {
	from, to  int
	w         int
	assertIdx int
}

const zeroNode = 0 // graph node representing the constant 0

// graph is the difference-constraint graph of a set of ground assertions.
type graph struct {
	edges []edge
	varID map[Var]int
	idVar []Var
}

// buildGraph translates ground assertions (identified by their indices into
// s.asserts) into a difference graph; active filters which assertions
// participate (nil means all).
func buildGraph(all []Assertion, idxs []int, active []bool) graph {
	return buildGraphOpt(all, idxs, active, true)
}

func buildGraphOpt(all []Assertion, idxs []int, active []bool, positivity bool) graph {
	g := graph{varID: map[Var]int{}, idVar: []Var{""}} // node 0 = the constant 0
	id := func(v Var) int {
		if v == "" {
			return zeroNode
		}
		if n, ok := g.varID[v]; ok {
			return n
		}
		n := len(g.idVar)
		g.varID[v] = n
		g.idVar = append(g.idVar, v)
		return n
	}
	for _, ai := range idxs {
		if active != nil && !active[ai] {
			continue
		}
		a := all[ai]
		va, vb := id(a.A.Var), id(a.B.Var)
		// A ≤ B:  val(va)+ka ≤ val(vb)+kb  ⇒  va − vb ≤ kb − ka.
		w := a.B.K - a.A.K
		switch a.Rel {
		case Le:
			g.edges = append(g.edges, edge{from: vb, to: va, w: w, assertIdx: ai})
		case Lt:
			g.edges = append(g.edges, edge{from: vb, to: va, w: w - 1, assertIdx: ai})
		case Eq:
			g.edges = append(g.edges, edge{from: vb, to: va, w: w, assertIdx: ai})
			g.edges = append(g.edges, edge{from: va, to: vb, w: -w, assertIdx: ai})
		}
	}
	// Positivity: x ≥ 1  ⇔  0 − x ≤ −1  ⇒  edge x → zero of weight −1.
	if positivity {
		for _, v := range g.idVar[1:] {
			g.edges = append(g.edges, edge{from: g.varID[v], to: zeroNode, w: -1, assertIdx: -1})
		}
	}
	return g
}

// bellmanFord relaxes the graph with an implicit virtual source (dist ≡ 0).
// It returns the final distances, the predecessor edge per node, and a node
// relaxed in the n-th pass (−1 when the graph converged, i.e. is
// satisfiable).
func (g graph) bellmanFord() (dist []int, pred []int, relaxedNode int) {
	n := len(g.idVar)
	dist = make([]int, n)
	pred = make([]int, n)
	for i := range pred {
		pred[i] = -1
	}
	relaxedNode = -1
	for pass := 0; pass < n; pass++ {
		relaxedNode = -1
		for ei, e := range g.edges {
			if d := dist[e.from] + e.w; d < dist[e.to] {
				dist[e.to] = d
				pred[e.to] = ei
				if relaxedNode < 0 {
					relaxedNode = e.to
				}
			}
		}
		if relaxedNode < 0 {
			return dist, pred, -1
		}
	}
	return dist, pred, relaxedNode
}

// sat reports whether the subset of ground assertions selected by active is
// satisfiable.
func groundSat(all []Assertion, idxs []int, active []bool) bool {
	_, _, relaxed := buildGraph(all, idxs, active).bellmanFord()
	return relaxed < 0
}

// Check decides the conjunction of all asserted atoms. It returns an error
// only for quantified assertions outside the supported pattern; unsat inputs
// produce Sat=false with a minimal core, not an error.
func (s *Context) Check() (Result, error) { return s.CheckContext(context.Background()) }

// CheckContext is Check with cancellation: the context is consulted between
// solver phases and on every core-minimization probe (the dominant cost on
// unsat inputs), so a cancelled long-running solve returns ctx.Err()
// promptly.
func (s *Context) CheckContext(ctx context.Context) (Result, error) {
	start := time.Now()
	res := Result{}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}

	// Phase 1: decide quantified assertions analytically.
	groundIdx := []int{}
	for i, a := range s.asserts {
		if a.QuantVar == "" {
			groundIdx = append(groundIdx, i)
			continue
		}
		ok, err := quantifiedValid(a)
		if err != nil {
			return Result{}, err
		}
		if !ok {
			// A single invalid universal is itself a minimal core.
			res.Sat = false
			res.Core = []Assertion{a}
			res.Stats = Stats{Assertions: len(s.asserts), Duration: time.Since(start)}
			return res, nil
		}
	}

	// Phase 2+3: difference graph and Bellman–Ford.
	g := buildGraph(s.asserts, groundIdx, nil)
	n := len(g.idVar)
	res.Stats = Stats{Assertions: len(s.asserts), Variables: n - 1, Edges: len(g.edges)}
	dist, pred, relaxedNode := g.bellmanFord()

	if relaxedNode >= 0 {
		var coreIdx []int
		var err error
		if s.NoMinimize {
			coreIdx, res.UsesPositivity = extractCycleCore(g, pred, relaxedNode, groundIdx)
		} else {
			coreIdx, res.UsesPositivity, err = s.minimizeCore(ctx, groundIdx)
			if err != nil {
				return Result{}, err
			}
		}
		core := make([]Assertion, len(coreIdx))
		for i, ai := range coreIdx {
			core[i] = s.asserts[ai]
		}
		res.Sat = false
		res.Core = core
		res.Stats.Duration = time.Since(start)
		return res, nil
	}

	// Phase 4: extract a model. val(x) = dist(x) − dist(zero) satisfies
	// every difference constraint (distances do) and positivity (the
	// positivity edges are part of the graph).
	model := make(map[Var]int, n-1)
	for v, i := range g.varID {
		model[v] = dist[i] - dist[zeroNode]
	}
	res.Sat = true
	res.Model = model
	res.Stats.Duration = time.Since(start)
	return res, nil
}

// minimizeCore performs deletion-based minimization over the ground
// assertions: walking candidates from last to first, each assertion whose
// removal keeps the remainder unsatisfiable is dropped. The result is a
// minimal unsatisfiable subset (every proper subset is satisfiable) biased
// toward the earliest-asserted constraints, matching the way the paper's
// narratives name the first violation (c ⊕ C = C for Gao-Rexford).
func (s *Context) minimizeCore(ctx context.Context, groundIdx []int) (core []int, usesPositivity bool, err error) {
	active := make([]bool, len(s.asserts))
	for _, i := range groundIdx {
		active[i] = true
	}
	for k := len(groundIdx) - 1; k >= 0; k-- {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		i := groundIdx[k]
		active[i] = false
		if groundSat(s.asserts, groundIdx, active) {
			active[i] = true // needed for unsatisfiability
		}
	}
	for _, i := range groundIdx {
		if active[i] {
			core = append(core, i)
		}
	}
	// The core involves positivity iff it becomes satisfiable over all of ℤ
	// once the implicit n > 0 typing is dropped.
	_, _, relaxed := buildGraphOpt(s.asserts, groundIdx, active, false).bellmanFord()
	usesPositivity = relaxed < 0
	return core, usesPositivity, nil
}

// extractCycleCore collects the assertions on the negative cycle reachable
// through the predecessor pointers — the fast, non-minimized core used when
// NoMinimize is set. The returned cycle is simple, hence itself a minimal
// unsatisfiable subset, but which of several cores is found is arbitrary.
func extractCycleCore(g graph, pred []int, relaxedNode int, groundIdx []int) (core []int, usesPositivity bool) {
	node := relaxedNode
	for i := 0; i < len(g.idVar) && pred[node] >= 0; i++ {
		node = g.edges[pred[node]].from
	}
	startNode := node
	coreIdx := map[int]bool{}
	for steps := 0; ; steps++ {
		if pred[node] < 0 || steps > len(g.edges) {
			// Defensive fallback; a pass-n relaxation guarantees the
			// predecessor walk closes a cycle, so this path is unreachable
			// in practice. Report the full ground set rather than a wrong
			// core.
			coreIdx = map[int]bool{}
			for _, gi := range groundIdx {
				coreIdx[gi] = true
			}
			break
		}
		e := g.edges[pred[node]]
		if e.assertIdx >= 0 {
			coreIdx[e.assertIdx] = true
		} else {
			usesPositivity = true
		}
		node = e.from
		if node == startNode {
			break
		}
	}
	for i := range coreIdx {
		core = append(core, i)
	}
	sort.Ints(core)
	return core, usesPositivity
}

// quantifiedValid decides ∀v. A Rel B for the supported pattern where both
// sides mention v: (v+ka) Rel (v+kb) holds for all v iff ka Rel kb.
func quantifiedValid(a Assertion) (bool, error) {
	if a.A.Var != a.QuantVar || a.B.Var != a.QuantVar {
		return false, fmt.Errorf("smt: unsupported quantified pattern %s: both sides must mention the bound variable", a)
	}
	switch a.Rel {
	case Lt:
		return a.A.K < a.B.K, nil
	case Le:
		return a.A.K <= a.B.K, nil
	case Eq:
		return a.A.K == a.B.K, nil
	}
	return false, fmt.Errorf("smt: unsupported quantified relation in %s", a)
}

// Verify checks that model satisfies every ground assertion in the solver;
// it returns the first violated assertion, or nil. Quantified assertions are
// re-decided analytically. Used by tests and by callers that want a
// defense-in-depth check of solver output.
func (s *Context) Verify(model map[Var]int) *Assertion {
	eval := func(t Term) int {
		if t.IsConst() {
			return t.K
		}
		return model[t.Var] + t.K
	}
	for i := range s.asserts {
		a := s.asserts[i]
		if a.QuantVar != "" {
			if ok, err := quantifiedValid(a); err != nil || !ok {
				return &s.asserts[i]
			}
			continue
		}
		x, y := eval(a.A), eval(a.B)
		ok := false
		switch a.Rel {
		case Lt:
			ok = x < y
		case Le:
			ok = x <= y
		case Eq:
			ok = x == y
		}
		if !ok {
			return &s.asserts[i]
		}
	}
	for v, val := range model {
		if val <= 0 {
			// positivity violated
			bad := Assertion{Rel: Lt, A: C(0), B: V(string(v)), Origin: "positivity"}
			return &bad
		}
	}
	return nil
}
