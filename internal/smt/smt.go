// Package smt implements a small SMT solver for the exact logic fragment the
// FSR safety analysis emits, substituting for the Yices binary the paper
// shells out to (§IV-B).
//
// The fragment: conjunctions of ordering atoms  a < b, a ≤ b, a = b  over
// positive-integer variables and constants, where each side may carry an
// additive constant (a+3 ≤ b), plus the single quantified pattern the
// closed-form algebras need (∀s. s < s+d). This is integer difference logic:
//
//   - every ground atom normalizes to a difference constraint x − y ≤ c;
//   - the conjunction is satisfiable iff the constraint graph has no
//     negative-weight cycle (decided with Bellman–Ford);
//   - a model is read off the shortest-path distances;
//   - a *minimal* unsatisfiable core is a simple negative cycle: removing
//     any single edge of a simple cycle leaves an acyclic (hence
//     satisfiable) subset, which matches the unsat-core contract Yices
//     provides for these inputs.
//
// Package yices-compatible surface syntax (emit and parse) lives in
// yices.go, so the paper's §IV-C listings round-trip through this solver.
package smt

import (
	"context"
	"fmt"
	"slices"
	"time"

	"fsr/internal/obs"
)

// Var names an integer variable. Variables range over positive integers
// (n > 0), mirroring the paper's  (define-type Sig (subtype (n::nat) (> n 0))).
type Var string

// Term is a linear term: Var + K, or the bare constant K when Var is empty.
type Term struct {
	Var Var
	K   int
}

// V returns the term consisting of the single variable name.
func V(name string) Term { return Term{Var: Var(name)} }

// C returns the constant term k.
func C(k int) Term { return Term{K: k} }

// Plus returns t + k.
func (t Term) Plus(k int) Term { return Term{Var: t.Var, K: t.K + k} }

// IsConst reports whether the term has no variable.
func (t Term) IsConst() bool { return t.Var == "" }

// String renders the term in the paper's infix style.
func (t Term) String() string {
	switch {
	case t.Var == "":
		return fmt.Sprintf("%d", t.K)
	case t.K == 0:
		return string(t.Var)
	case t.K > 0:
		return fmt.Sprintf("%s+%d", t.Var, t.K)
	default:
		return fmt.Sprintf("%s-%d", t.Var, -t.K)
	}
}

// Rel is an ordering relation between two terms.
type Rel int

// The relations of the fragment. Gt/Ge exist for parser convenience and are
// normalized to Lt/Le by swapping sides at assertion time.
const (
	Lt Rel = iota // <
	Le            // <=
	Eq            // =
	Gt            // >
	Ge            // >=
)

// String returns the Yices spelling of the relation.
func (r Rel) String() string {
	switch r {
	case Lt:
		return "<"
	case Le:
		return "<="
	case Eq:
		return "="
	case Gt:
		return ">"
	case Ge:
		return ">="
	}
	return "?"
}

// Assertion is one asserted atom, optionally universally quantified.
type Assertion struct {
	Rel  Rel
	A, B Term

	// QuantVar, when non-empty, universally quantifies the named variable:
	// ∀ QuantVar. A Rel B. Only patterns where both sides mention QuantVar
	// (the monotonicity shape  s Rel s+d) are decidable; Check reports an
	// error for other quantified shapes.
	QuantVar Var

	// Origin is free-form provenance recorded by the caller (e.g. the
	// algebra constraint "strict-mono: p ⊕ C = P"); it is surfaced in unsat
	// cores so users can pinpoint the offending policy statement (§IV-B).
	Origin string
}

// String renders the assertion in infix style with its provenance.
func (a Assertion) String() string {
	body := fmt.Sprintf("%s %s %s", a.A, a.Rel, a.B)
	if a.QuantVar != "" {
		body = fmt.Sprintf("∀%s. %s", a.QuantVar, body)
	}
	if a.Origin != "" {
		return body + "  [" + a.Origin + "]"
	}
	return body
}

// normalized returns the assertion with Gt/Ge rewritten to Lt/Le.
func (a Assertion) normalized() Assertion {
	switch a.Rel {
	case Gt:
		a.A, a.B, a.Rel = a.B, a.A, Lt
	case Ge:
		a.A, a.B, a.Rel = a.B, a.A, Le
	}
	return a
}

// Stats reports solver effort, mirroring the paper's "solver returns within
// 100 ms" style measurements.
type Stats struct {
	Assertions int
	Variables  int
	Edges      int
	Duration   time.Duration
	// Components and TrivialComponents report the condensation shape when
	// the SCC-decomposed backend solved the system: total strongly
	// connected components of the constraint graph, and how many were
	// singletons with no internal edge (decided without touching a solver
	// queue). Zero on the undecomposed backends.
	Components        int
	TrivialComponents int
	// Probes and Relaxations are this solve's loop effort: satisfiability
	// probes decided and successful edge relaxations across SPFA and
	// Bellman–Ford passes — the per-operation view of the process-global
	// fsr_smt_probes_total / fsr_smt_relaxations_total counters.
	Probes      int
	Relaxations int
	// Levels, MaxLevelWidth, and TarjanDuration describe the decomposed
	// backend's level plan: topological levels in the condensation, the
	// widest level's component count (the level-parallel occupancy bound),
	// and the time iterative Tarjan spent building the plan. Zero on the
	// undecomposed backends.
	Levels         int
	MaxLevelWidth  int
	TarjanDuration time.Duration
}

// Result is the outcome of Check.
type Result struct {
	// Sat reports satisfiability of the asserted conjunction.
	Sat bool
	// Model assigns positive integers to every variable when Sat. The
	// assignment satisfies every asserted atom.
	Model map[Var]int
	// Core, when !Sat, is a minimal unsatisfiable subset of the asserted
	// atoms: every proper subset of Core is satisfiable.
	Core []Assertion
	// CoreIdx gives each Core element's position in the asserted (input)
	// order, letting callers map cores back to their own constraint
	// records without string matching on Origin.
	CoreIdx []int
	// UsesPositivity reports whether the implicit n > 0 typing of variables
	// participates in the contradiction (the paper's Sig subtype).
	UsesPositivity bool
	// Stats reports effort.
	Stats Stats
}

// Context accumulates assertions; Check decides them. The zero value is
// ready to use. Contexts are not safe for concurrent mutation. Callers that
// want a pluggable decision procedure should go through the Solver interface
// instead of using a Context directly.
type Context struct {
	asserts []Assertion

	// NoMinimize disables deletion-based core minimization: unsat results
	// then carry the (already minimal, but arbitrarily chosen) negative
	// cycle found by Bellman–Ford instead of the deletion-minimized core
	// biased toward earliest-asserted constraints. Exposed for the
	// unsat-core ablation benchmark.
	NoMinimize bool
}

// NewContext returns an empty logical context.
func NewContext() *Context { return &Context{} }

// Assert adds an assertion to the logical context.
func (s *Context) Assert(a Assertion) { s.asserts = append(s.asserts, a.normalized()) }

// AssertAll adds all assertions in order.
func (s *Context) AssertAll(as []Assertion) {
	s.asserts = slices.Grow(s.asserts, len(as))
	for _, a := range as {
		s.Assert(a)
	}
}

// Assertions returns the asserted atoms in assertion order.
func (s *Context) Assertions() []Assertion {
	out := make([]Assertion, len(s.asserts))
	copy(out, s.asserts)
	return out
}

// Len returns the number of asserted atoms.
func (s *Context) Len() int { return len(s.asserts) }

const zeroNode = 0 // graph node representing the constant 0

// Check decides the conjunction of all asserted atoms. It returns an error
// only for quantified assertions outside the supported pattern; unsat inputs
// produce Sat=false with a minimal core, not an error.
func (s *Context) Check() (Result, error) { return s.CheckContext(context.Background()) }

// CheckContext is Check with cancellation: the context is consulted between
// solver phases and on every core-minimization probe (the dominant cost on
// unsat inputs), so a cancelled long-running solve returns ctx.Err()
// promptly.
//
// The decision procedure is the pooled incremental engine of engine.go:
// variables are interned into dense IDs and the edge list is built once,
// satisfiability is decided by SPFA over preallocated buffers, and core
// minimization probes flip an active mask instead of rebuilding the graph.
// The retained reference implementation (reference.go) decides the same
// inputs the original way; differential tests hold the two to identical
// verdicts, models, and cores.
func (s *Context) CheckContext(ctx context.Context) (Result, error) {
	start := time.Now()
	res := Result{}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	ctx, sp := obs.StartSpan(ctx, "solve")
	sp.AttrInt("assertions", int64(len(s.asserts)))
	defer sp.End()

	// Phase 1: decide quantified assertions analytically.
	for i := range s.asserts {
		a := &s.asserts[i]
		if a.QuantVar == "" {
			continue
		}
		ok, err := quantifiedValid(*a)
		if err != nil {
			return Result{}, err
		}
		if !ok {
			// A single invalid universal is itself a minimal core.
			res.Sat = false
			res.Core = []Assertion{*a}
			res.CoreIdx = []int{i}
			res.Stats = Stats{Assertions: len(s.asserts), Duration: time.Since(start)}
			return res, nil
		}
	}

	// Phase 2+3: dense difference graph and SPFA on a pooled engine.
	e := grabEngine(s.asserts)
	defer e.release()
	defer e.flushStats() // LIFO: drain the loop counts before pooling
	res.Stats = Stats{Assertions: len(s.asserts), Variables: len(e.idVar) - 1, Edges: len(e.edges)}

	if e.decide() {
		var coreIdx []int
		var err error
		if s.NoMinimize {
			coreIdx, res.UsesPositivity = e.cycleCore()
		} else {
			_, msp := obs.StartSpan(ctx, "minimize")
			coreIdx, res.UsesPositivity, err = e.minimize(ctx, s.asserts)
			msp.End()
			if err != nil {
				return Result{}, err
			}
		}
		core := make([]Assertion, len(coreIdx))
		for i, ai := range coreIdx {
			core[i] = s.asserts[ai]
		}
		res.Sat = false
		res.Core = core
		res.CoreIdx = coreIdx
		e.snapshotStats(&res.Stats)
		res.Stats.Duration = time.Since(start)
		return res, nil
	}

	// Phase 4: extract a model. val(x) = dist(x) − dist(zero) satisfies
	// every difference constraint (distances do) and positivity (the
	// positivity edges are part of the graph).
	model := make(map[Var]int, len(e.idVar)-1)
	d0 := e.dist[zeroNode]
	for i, v := range e.idVar {
		if i == zeroNode {
			continue
		}
		model[v] = e.dist[i] - d0
	}
	res.Sat = true
	res.Model = model
	e.snapshotStats(&res.Stats)
	res.Stats.Duration = time.Since(start)
	return res, nil
}

// quantifiedValid decides ∀v. A Rel B for the supported pattern where both
// sides mention v: (v+ka) Rel (v+kb) holds for all v iff ka Rel kb.
func quantifiedValid(a Assertion) (bool, error) {
	if a.A.Var != a.QuantVar || a.B.Var != a.QuantVar {
		return false, fmt.Errorf("smt: unsupported quantified pattern %s: both sides must mention the bound variable", a)
	}
	switch a.Rel {
	case Lt:
		return a.A.K < a.B.K, nil
	case Le:
		return a.A.K <= a.B.K, nil
	case Eq:
		return a.A.K == a.B.K, nil
	}
	return false, fmt.Errorf("smt: unsupported quantified relation in %s", a)
}

// Verify checks that model satisfies every ground assertion in the solver;
// it returns the first violated assertion, or nil. Quantified assertions are
// re-decided analytically. Used by tests and by callers that want a
// defense-in-depth check of solver output.
func (s *Context) Verify(model map[Var]int) *Assertion {
	eval := func(t Term) int {
		if t.IsConst() {
			return t.K
		}
		return model[t.Var] + t.K
	}
	for i := range s.asserts {
		a := s.asserts[i]
		if a.QuantVar != "" {
			if ok, err := quantifiedValid(a); err != nil || !ok {
				return &s.asserts[i]
			}
			continue
		}
		x, y := eval(a.A), eval(a.B)
		ok := false
		switch a.Rel {
		case Lt:
			ok = x < y
		case Le:
			ok = x <= y
		case Eq:
			ok = x == y
		}
		if !ok {
			return &s.asserts[i]
		}
	}
	for v, val := range model {
		if val <= 0 {
			// positivity violated
			bad := Assertion{Rel: Lt, A: C(0), B: V(string(v)), Origin: "positivity"}
			return &bad
		}
	}
	return nil
}
