package smt

import (
	"context"
	"fmt"
)

// Solver is the pluggable decision-procedure backend: it decides a
// conjunction of assertions and reports the model or the minimal unsat core.
// Two backends exist, mirroring the paper's architecture: the Native
// difference-logic engine (the in-process substitute for Yices) and the
// YicesText path, which round-trips the context through the Yices 1.x
// surface syntax the paper shells out with (§IV-C). Backends are stateless
// and safe for concurrent use.
type Solver interface {
	// Name identifies the backend ("native", "yices-text").
	Name() string
	// Solve decides the conjunction of the assertions. Cancellation of ctx
	// aborts the solve with ctx.Err().
	Solve(ctx context.Context, assertions []Assertion) (Result, error)
}

// Native decides assertions directly with the built-in difference-logic
// engine (Bellman–Ford over the constraint graph). It is the default and the
// fastest path.
type Native struct {
	// NoMinimize disables deletion-based core minimization, as on Context.
	NoMinimize bool
}

// Name implements Solver.
func (Native) Name() string { return "native" }

// Solve implements Solver.
func (n Native) Solve(ctx context.Context, assertions []Assertion) (Result, error) {
	c := NewContext()
	c.NoMinimize = n.NoMinimize
	c.AssertAll(assertions)
	return c.CheckContext(ctx)
}

// YicesText decides assertions via the external-solver encoding path: the
// context is rendered to Yices 1.x surface syntax (the §IV-C listings), the
// text is parsed back, and the recovered context is decided. This exercises
// the exact encoding FSR would hand to a real Yices binary, so encoding bugs
// (lost constraints, mangled terms) surface as backend disagreement rather
// than silent misanalysis.
type YicesText struct {
	// NoMinimize disables deletion-based core minimization, as on Context.
	NoMinimize bool
}

// Name implements Solver.
func (YicesText) Name() string { return "yices-text" }

// Solve implements Solver.
func (y YicesText) Solve(ctx context.Context, assertions []Assertion) (Result, error) {
	src := NewContext()
	src.AssertAll(assertions)
	parsed, err := Parse(Emit(src))
	if err != nil {
		return Result{}, fmt.Errorf("smt: yices-text round trip: %w", err)
	}
	// The textual form carries provenance only as comments, which Parse
	// drops; re-attach it positionally (Emit and Parse both preserve
	// assertion order) so unsat cores still map back to policy statements.
	recovered := parsed.Assertions()
	if len(recovered) != src.Len() {
		return Result{}, fmt.Errorf("smt: yices-text round trip lost assertions: emitted %d, parsed %d", src.Len(), len(recovered))
	}
	orig := src.Assertions()
	re := NewContext()
	re.NoMinimize = y.NoMinimize
	for i, a := range recovered {
		a.Origin = orig[i].Origin
		re.Assert(a)
	}
	return re.CheckContext(ctx)
}

// Backends returns every built-in production solver backend, in preference
// order. The Reference backend (the retained pre-incremental implementation
// used by differential tests) is resolvable by name but deliberately
// excluded here.
func Backends() []Solver { return []Solver{Native{}, Decomposed{}, YicesText{}} }

// SolverByName resolves a backend by its Name; it returns an error naming
// the known backends for an unknown name.
func SolverByName(name string) (Solver, error) {
	switch name {
	case "", "native":
		return Native{}, nil
	case "native-scc", "scc":
		return Decomposed{}, nil
	case "yices-text", "yices":
		return YicesText{}, nil
	case "reference":
		return Reference{}, nil
	default:
		return nil, fmt.Errorf("smt: unknown solver backend %q (have: native, native-scc, yices-text, reference)", name)
	}
}
