package smt

import (
	"context"
	"errors"
	"testing"
)

// unsatChain builds x < y, y < x — unsat with a two-element core.
func unsatChain() []Assertion {
	return []Assertion{
		{Rel: Lt, A: V("x"), B: V("y"), Origin: "first"},
		{Rel: Lt, A: V("y"), B: V("x"), Origin: "second"},
	}
}

// TestBackendsAgree: both backends return identical verdicts and cores on
// sat and unsat inputs, and the yices-text round trip preserves provenance.
func TestBackendsAgree(t *testing.T) {
	sat := []Assertion{
		{Rel: Lt, A: V("a"), B: V("b"), Origin: "pref"},
		{Rel: Le, A: V("b"), B: V("c").Plus(2), Origin: "mono"},
	}
	for _, backend := range Backends() {
		res, err := backend.Solve(context.Background(), sat)
		if err != nil || !res.Sat {
			t.Fatalf("%s: sat input: sat=%v err=%v", backend.Name(), res.Sat, err)
		}
		res, err = backend.Solve(context.Background(), unsatChain())
		if err != nil || res.Sat {
			t.Fatalf("%s: unsat input: sat=%v err=%v", backend.Name(), res.Sat, err)
		}
		if len(res.Core) != 2 {
			t.Errorf("%s: core size %d, want 2", backend.Name(), len(res.Core))
		}
		for _, a := range res.Core {
			if a.Origin != "first" && a.Origin != "second" {
				t.Errorf("%s: core lost provenance: %q", backend.Name(), a.Origin)
			}
		}
	}
}

// TestBackendCancellation: a cancelled context aborts both backends.
func TestBackendCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, backend := range Backends() {
		if _, err := backend.Solve(ctx, unsatChain()); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: cancelled solve returned %v, want context.Canceled", backend.Name(), err)
		}
	}
}

// TestSolverByName covers the lookup table.
func TestSolverByName(t *testing.T) {
	for _, name := range []string{"", "native", "yices-text", "yices"} {
		if _, err := SolverByName(name); err != nil {
			t.Errorf("SolverByName(%q): %v", name, err)
		}
	}
	if _, err := SolverByName("cvc5"); err == nil {
		t.Error("unknown backend should error")
	}
}
