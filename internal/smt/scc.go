// SCC-decomposed difference-logic solving.
//
// The constraint graph of a safe (sat) instance is almost a DAG: dispute
// cycles are exactly the nontrivial strongly connected components, and a
// negative-weight cycle lies entirely inside one SCC. That makes the
// condensation a solve plan: number the components in topological order
// (iterative Tarjan yields reverse-topological completion order for free),
// seed every node with the virtual-source distance 0, then process the
// condensation level by level — run SPFA restricted to each component's
// internal edges, in parallel across the components of a level (their node
// sets are disjoint, so they share the dist/pred arrays without conflict),
// and relax the components' outgoing cross edges sequentially at the level
// barrier. Trivially-safe singleton components — the vast majority of a
// power-law instance — never touch a queue: their entire contribution is
// the cross-edge relaxation.
//
// Because the all-zero-seeded Bellman–Ford fixpoint is unique, the
// resulting distance vector — and therefore the extracted model — is
// bit-for-bit the one the undecomposed engine computes. Unsatisfiable
// systems fall back to the sequential Context path, whose negative-cycle
// extraction and deletion-minimization then produce bit-identical cores;
// sat is the scale path, unsat the campaign-sized one.

package smt

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Decomposed is the SCC-decomposed native backend ("native-scc"): the same
// difference-logic engine as Native, but solving the condensation of the
// constraint graph component by component, in parallel within a
// topological level. Results are bit-identical to Native.
type Decomposed struct {
	// Workers caps the per-level component parallelism (default
	// GOMAXPROCS).
	Workers int
	// NoMinimize disables deletion-based core minimization on the unsat
	// fallback path, exactly as on Context.
	NoMinimize bool
}

// Name returns "native-scc".
func (Decomposed) Name() string { return "native-scc" }

// Solve decides the assertions with the SCC-decomposed engine.
func (d Decomposed) Solve(ctx context.Context, assertions []Assertion) (Result, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	// Context.Assert normalizes Gt/Ge at insertion; mirror that here so the
	// phases below see the same assertion list (no copy in the common
	// all-Lt/Le case).
	asserts := assertions
	for i := range assertions {
		if r := assertions[i].Rel; r == Gt || r == Ge {
			norm := make([]Assertion, len(assertions))
			for j := range assertions {
				norm[j] = assertions[j].normalized()
			}
			asserts = norm
			break
		}
	}

	// Quantified assertions, as in CheckContext phase 1.
	for i := range asserts {
		a := &asserts[i]
		if a.QuantVar == "" {
			continue
		}
		ok, err := quantifiedValid(*a)
		if err != nil {
			return Result{}, err
		}
		if !ok {
			return Result{
				Core:    []Assertion{*a},
				CoreIdx: []int{i},
				Stats:   Stats{Assertions: len(asserts), Duration: time.Since(start)},
			}, nil
		}
	}

	e := grabEngine(asserts)
	defer e.release()
	defer e.flushStats()
	res := Result{Stats: Stats{Assertions: len(asserts), Variables: len(e.idVar) - 1, Edges: len(e.edges)}}

	s := newSCCPlan(e, int32(len(e.idVar)))
	s.recordPlan(&res.Stats)
	sat, err := s.run(ctx, e, d.Workers)
	if err != nil {
		return Result{}, err
	}
	if !sat {
		// A component is unsatisfiable: rerun the sequential path, whose
		// cycle extraction and minimization order define the canonical
		// minimal core. The condensation stats survive the handoff (plain
		// field copies — recordPlan already published this plan once).
		c := &Context{asserts: asserts, NoMinimize: d.NoMinimize}
		out, err := c.CheckContext(ctx)
		if err != nil {
			return Result{}, err
		}
		out.Stats.Components = s.ncomp
		out.Stats.TrivialComponents = s.trivial
		out.Stats.Levels = s.nLevels
		out.Stats.MaxLevelWidth = s.maxWidth
		out.Stats.TarjanDuration = s.tarjan
		return out, nil
	}

	model := make(map[Var]int, len(e.idVar)-1)
	d0 := e.dist[zeroNode]
	for i, v := range e.idVar {
		if i == zeroNode {
			continue
		}
		model[v] = e.dist[i] - d0
	}
	res.Sat = true
	res.Model = model
	e.snapshotStats(&res.Stats)
	res.Stats.Duration = time.Since(start)
	return res, nil
}

// sccPlan is the condensation of a constraint graph: the Tarjan component
// of every node, the nodes grouped by component, each component's
// topological level, and the components grouped by level.
type sccPlan struct {
	comp      []int32 // node → component; cross edge u→w implies comp[w] < comp[u]
	order     []int32 // nodes grouped by component
	compStart []int32 // order[compStart[c]:compStart[c+1]] are component c's nodes
	internal  []bool  // component has at least one internal edge (needs SPFA)
	levels    []int32 // components grouped by ascending level
	lvlStart  []int32
	ncomp     int
	trivial   int   // singleton components with no internal edge
	maxComp   int   // largest component size (SPFA scratch bound)
	relax     int64 // relaxation tally, accumulated atomically by workers

	nLevels  int           // topological levels in the plan
	maxWidth int           // widest level's component count (parallel occupancy bound)
	tarjan   time.Duration // condensation (plan-build) time
}

// newSCCPlan runs iterative Tarjan over the engine's edges (all ground and
// positivity edges are active at Solve entry) and derives the level plan.
func newSCCPlan(e *dlEngine, V int32) *sccPlan {
	buildStart := time.Now()
	s := &sccPlan{
		comp: make([]int32, V),
	}
	low := make([]int32, V)
	disc := make([]int32, V)
	onStk := make([]bool, V)
	stk := make([]int32, 0, V)
	type frame struct{ v, ei int32 }
	frames := make([]frame, 0, 256)
	timer := int32(0)
	for root := int32(0); root < V; root++ {
		if disc[root] != 0 {
			continue
		}
		timer++
		disc[root], low[root] = timer, timer
		stk = append(stk, root)
		onStk[root] = true
		frames = append(frames[:0], frame{root, e.adjStart[root]})
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < e.adjStart[f.v+1] {
				w := e.edges[e.adjList[f.ei]].to
				f.ei++
				if disc[w] == 0 {
					timer++
					disc[w], low[w] = timer, timer
					stk = append(stk, w)
					onStk[w] = true
					frames = append(frames, frame{w, e.adjStart[w]})
				} else if onStk[w] && disc[w] < low[f.v] {
					low[f.v] = disc[w]
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				if p := &frames[len(frames)-1]; low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == disc[v] {
				for {
					w := stk[len(stk)-1]
					stk = stk[:len(stk)-1]
					onStk[w] = false
					s.comp[w] = int32(s.ncomp)
					if w == v {
						break
					}
				}
				s.ncomp++
			}
		}
	}

	// Group nodes by component (counting sort).
	s.compStart = make([]int32, s.ncomp+1)
	for _, c := range s.comp {
		s.compStart[c+1]++
	}
	for c := 1; c <= s.ncomp; c++ {
		s.compStart[c] += s.compStart[c-1]
	}
	s.order = make([]int32, V)
	fill := make([]int32, s.ncomp)
	copy(fill, s.compStart[:s.ncomp])
	for v := int32(0); v < V; v++ {
		c := s.comp[v]
		s.order[fill[c]] = v
		fill[c]++
	}

	// Mark components with internal edges and compute levels in one pass.
	// Tarjan completion order is reverse-topological, so descending
	// component id is topological order and each component's level is
	// final before its successors are visited.
	s.internal = make([]bool, s.ncomp)
	level := fill[:s.ncomp] // reuse as the level array
	for i := range level {
		level[i] = 0
	}
	maxLevel := int32(0)
	for c := int32(s.ncomp) - 1; c >= 0; c-- {
		lc := level[c]
		for _, u := range s.order[s.compStart[c]:s.compStart[c+1]] {
			for k := e.adjStart[u]; k < e.adjStart[u+1]; k++ {
				cw := s.comp[e.edges[e.adjList[k]].to]
				if cw == c {
					s.internal[c] = true
					continue
				}
				if lc+1 > level[cw] {
					level[cw] = lc + 1
					if lc+1 > maxLevel {
						maxLevel = lc + 1
					}
				}
			}
		}
	}
	for c := 0; c < s.ncomp; c++ {
		size := s.compStart[c+1] - s.compStart[c]
		if int(size) > s.maxComp {
			s.maxComp = int(size)
		}
		if size == 1 && !s.internal[c] {
			s.trivial++
		}
	}

	// Group components by level (counting sort).
	s.lvlStart = make([]int32, maxLevel+2)
	for c := 0; c < s.ncomp; c++ {
		s.lvlStart[level[c]+1]++
	}
	for l := int32(1); l <= maxLevel+1; l++ {
		s.lvlStart[l] += s.lvlStart[l-1]
	}
	s.levels = make([]int32, s.ncomp)
	lfill := make([]int32, maxLevel+1)
	copy(lfill, s.lvlStart[:maxLevel+1])
	for c := 0; c < s.ncomp; c++ {
		l := level[c]
		s.levels[lfill[l]] = int32(c)
		lfill[l]++
	}
	s.nLevels = int(maxLevel) + 1
	for l := 0; l < s.nLevels; l++ {
		if w := int(s.lvlStart[l+1] - s.lvlStart[l]); w > s.maxWidth {
			s.maxWidth = w
		}
	}
	s.tarjan = time.Since(buildStart)
	return s
}

// run processes the condensation level by level, leaving the engine's dist
// array at the canonical all-zero-seeded Bellman–Ford fixpoint when the
// system is satisfiable. It reports sat=false as soon as any component
// contains a negative cycle.
func (s *sccPlan) run(ctx context.Context, e *dlEngine, workers int) (sat bool, err error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e.statProbes++
	V := int32(len(s.comp))
	for i := int32(0); i < V; i++ {
		e.dist[i] = 0
		e.pred[i] = -1
	}
	var work []int32
	var scratch [][]int32 // lazily allocated per-worker SPFA queues
	serialQ := make([]int32, s.maxComp)
	nLevels := len(s.lvlStart) - 1
	for l := 0; l < nLevels; l++ {
		comps := s.levels[s.lvlStart[l]:s.lvlStart[l+1]]
		work = work[:0]
		for _, c := range comps {
			if s.internal[c] {
				work = append(work, c)
			}
		}
		switch {
		case len(work) == 0:
		case len(work) == 1 || workers == 1:
			if err := ctx.Err(); err != nil {
				return false, err
			}
			for _, c := range work {
				if !s.compSPFA(e, c, serialQ) {
					e.statRelax += int(s.relax)
					return false, nil
				}
			}
		default:
			if err := ctx.Err(); err != nil {
				return false, err
			}
			n := workers
			if n > len(work) {
				n = len(work)
			}
			for len(scratch) < n {
				scratch = append(scratch, make([]int32, s.maxComp))
			}
			var next atomic.Int32
			var bad atomic.Bool
			var wg sync.WaitGroup
			for w := 0; w < n; w++ {
				wg.Add(1)
				go func(q []int32) {
					defer wg.Done()
					for {
						i := int(next.Add(1)) - 1
						if i >= len(work) || bad.Load() {
							return
						}
						if !s.compSPFA(e, work[i], q) {
							bad.Store(true)
							return
						}
					}
				}(scratch[w])
			}
			wg.Wait()
			if bad.Load() {
				e.statRelax += int(s.relax)
				return false, nil
			}
		}
		// Level barrier: the level's distances are final; push them across
		// the outgoing cross edges sequentially (two components of this
		// level may share a cross-edge target, so workers cannot do this).
		for _, c := range comps {
			for _, u := range s.order[s.compStart[c]:s.compStart[c+1]] {
				du := e.dist[u]
				for k := e.adjStart[u]; k < e.adjStart[u+1]; k++ {
					ei := e.adjList[k]
					ed := &e.edges[ei]
					if s.comp[ed.to] == c {
						continue
					}
					if d := du + ed.w; d < e.dist[ed.to] {
						e.dist[ed.to] = d
						e.pred[ed.to] = ei
					}
				}
			}
		}
	}
	e.statRelax += int(s.relax)
	return true, nil
}

// compSPFA runs SPFA restricted to one component's internal edges,
// starting from the nodes' cross-seeded distances. The component's nodes
// are disjoint from every concurrently solved component's, so dist, pred,
// cnt and inQ are shared without synchronization; q is the caller's
// private ring buffer (capacity ≥ component size). Returns false when the
// component contains a negative cycle.
func (s *sccPlan) compSPFA(e *dlEngine, c int32, q []int32) bool {
	nodes := s.order[s.compStart[c]:s.compStart[c+1]]
	n := int32(len(nodes))
	for i, v := range nodes {
		e.cnt[v] = 1
		e.inQ[v] = true
		q[i] = v
	}
	head, size := int32(0), n
	relax := 0
	for size > 0 {
		u := q[head]
		head++
		if head == n {
			head = 0
		}
		size--
		e.inQ[u] = false
		du := e.dist[u]
		for k := e.adjStart[u]; k < e.adjStart[u+1]; k++ {
			ei := e.adjList[k]
			ed := &e.edges[ei]
			if s.comp[ed.to] != c {
				continue
			}
			if d := du + ed.w; d < e.dist[ed.to] {
				relax++
				v := ed.to
				e.dist[v] = d
				e.pred[v] = ei
				if !e.inQ[v] {
					e.cnt[v]++
					if e.cnt[v] > n {
						atomic.AddInt64(&s.relax, int64(relax))
						return false
					}
					tail := head + size
					if tail >= n {
						tail -= n
					}
					q[tail] = v
					size++
					e.inQ[v] = true
				}
			}
		}
	}
	atomic.AddInt64(&s.relax, int64(relax))
	return true
}

// DenseConstraint is one ground difference atom A ≤ B + K (A < B + K when
// Strict) over pre-interned variable ids. Ids 1..NumVars name variables;
// id 0 is the reserved zero anchor (the constant 0).
type DenseConstraint struct {
	A, B   int32
	K      int
	Strict bool
}

// SolveDense decides a pre-interned ground system with the SCC-decomposed
// engine. It is the compact scale path for callers that already hold dense
// variable ids (the spp sharded generator): no variable interning, no
// Origin strings, no per-assertion provenance — just edges, the
// condensation plan, and the canonical distance fixpoint. When sat, model
// holds dist[v]−dist[0] for v in 1..numVars (index 0 unused), bit-for-bit
// the values Context.CheckContext would assign the same variables. The
// implicit positivity typing (x ≥ 1) participates exactly as in the
// undecomposed engine. Unsat systems report sat=false with no further
// diagnosis; callers needing cores re-solve through the provenance path.
func SolveDense(ctx context.Context, numVars int, cons []DenseConstraint, workers int) (sat bool, model []int, stats Stats, err error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return false, nil, Stats{}, err
	}
	e := enginePool.Get().(*dlEngine)
	defer e.release()
	defer e.flushStats()
	e.edges = e.edges[:0]
	for i := range cons {
		c := &cons[i]
		w := c.K
		if c.Strict {
			w--
		}
		e.edges = append(e.edges, dlEdge{from: c.B, to: c.A, w: w, assertIdx: int32(i)})
	}
	for v := int32(1); v <= int32(numVars); v++ {
		e.edges = append(e.edges, dlEdge{from: v, to: zeroNode, w: -1, assertIdx: -1})
	}
	e.posActive = true
	V := numVars + 1
	// buildCSR sizes the adjacency from len(idVar); give it the dense
	// universe without interning anything.
	e.idVar = growVars(e.idVar, V)
	e.dist = growInt(e.dist, V)
	e.pred = growInt32(e.pred, V)
	e.cnt = growInt32(e.cnt, V)
	e.inQ = growBool(e.inQ, V)
	e.buildCSR()

	stats = Stats{Assertions: len(cons), Variables: numVars, Edges: len(e.edges)}
	s := newSCCPlan(e, int32(V))
	s.recordPlan(&stats)
	sat, err = s.run(ctx, e, workers)
	if err != nil {
		return false, nil, Stats{}, err
	}
	if sat {
		model = make([]int, V)
		d0 := e.dist[zeroNode]
		for v := 1; v < V; v++ {
			model[v] = e.dist[v] - d0
		}
	}
	e.snapshotStats(&stats)
	stats.Duration = time.Since(start)
	return sat, model, stats, nil
}

// growVars resizes the idVar scratch to n entries without preserving
// contents (SolveDense only needs its length for CSR sizing; build()
// re-derives it from scratch on the next pooled use).
func growVars(s []Var, n int) []Var {
	if cap(s) < n {
		return make([]Var, n)
	}
	return s[:n]
}
