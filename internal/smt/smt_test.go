package smt

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func check(t *testing.T, s *Context) Result {
	t.Helper()
	res, err := s.Check()
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return res
}

// TestSatSimple: a satisfiable chain produces a model that verifies.
func TestSatSimple(t *testing.T) {
	s := NewContext()
	s.Assert(Assertion{Rel: Lt, A: V("a"), B: V("b")})
	s.Assert(Assertion{Rel: Le, A: V("b"), B: V("c")})
	s.Assert(Assertion{Rel: Eq, A: V("c"), B: V("d")})
	res := check(t, s)
	if !res.Sat {
		t.Fatalf("want sat")
	}
	if bad := s.Verify(res.Model); bad != nil {
		t.Errorf("model violates %s", bad)
	}
	if res.Model["a"] < 1 {
		t.Errorf("variables must be positive, got a=%d", res.Model["a"])
	}
}

// TestUnsatCycle: a < b < c < a yields a minimal three-element core.
func TestUnsatCycle(t *testing.T) {
	s := NewContext()
	s.Assert(Assertion{Rel: Lt, A: V("a"), B: V("b"), Origin: "1"})
	s.Assert(Assertion{Rel: Lt, A: V("b"), B: V("c"), Origin: "2"})
	s.Assert(Assertion{Rel: Lt, A: V("c"), B: V("a"), Origin: "3"})
	s.Assert(Assertion{Rel: Le, A: V("x"), B: V("y"), Origin: "unrelated"})
	res := check(t, s)
	if res.Sat {
		t.Fatalf("want unsat")
	}
	if len(res.Core) != 3 {
		t.Fatalf("want a 3-element core, got %d: %s", len(res.Core), FormatCore(res.Core))
	}
	for _, a := range res.Core {
		if a.Origin == "unrelated" {
			t.Errorf("core should not contain the unrelated assertion")
		}
	}
}

// TestSelfContradiction: x < x is a singleton core.
func TestSelfContradiction(t *testing.T) {
	s := NewContext()
	s.Assert(Assertion{Rel: Lt, A: V("x"), B: V("x"), Origin: "self"})
	res := check(t, s)
	if res.Sat || len(res.Core) != 1 {
		t.Fatalf("want unsat with singleton core, got %+v", res)
	}
}

// TestEqualityChainUnsat: equalities propagate into contradictions.
func TestEqualityChainUnsat(t *testing.T) {
	s := NewContext()
	s.Assert(Assertion{Rel: Eq, A: V("a"), B: V("b")})
	s.Assert(Assertion{Rel: Eq, A: V("b"), B: V("c")})
	s.Assert(Assertion{Rel: Lt, A: V("c"), B: V("a")})
	res := check(t, s)
	if res.Sat {
		t.Fatalf("want unsat")
	}
	if len(res.Core) != 3 {
		t.Errorf("want all three assertions in the core, got %d", len(res.Core))
	}
}

// TestConstants: terms with offsets and pure constants.
func TestConstants(t *testing.T) {
	s := NewContext()
	s.Assert(Assertion{Rel: Le, A: V("a").Plus(5), B: V("b")}) // a+5 ≤ b
	res := check(t, s)
	if !res.Sat {
		t.Fatalf("want sat")
	}
	if res.Model["b"]-res.Model["a"] < 5 {
		t.Errorf("model must satisfy a+5 ≤ b: a=%d b=%d", res.Model["a"], res.Model["b"])
	}

	s2 := NewContext()
	s2.Assert(Assertion{Rel: Lt, A: C(5), B: C(3)})
	res2 := check(t, s2)
	if res2.Sat {
		t.Fatalf("5 < 3 should be unsat")
	}
}

// TestPositivity: the implicit n > 0 typing participates in contradictions.
func TestPositivity(t *testing.T) {
	s := NewContext()
	s.Assert(Assertion{Rel: Le, A: V("x"), B: C(0), Origin: "x<=0"})
	res := check(t, s)
	if res.Sat {
		t.Fatalf("x ≤ 0 contradicts positivity")
	}
	if !res.UsesPositivity {
		t.Errorf("result should flag the positivity typing")
	}
}

// TestQuantified: the closed-form monotonicity pattern.
func TestQuantified(t *testing.T) {
	s := NewContext()
	s.Assert(Assertion{Rel: Lt, A: V("s"), B: V("s").Plus(1), QuantVar: "s"})
	if res := check(t, s); !res.Sat {
		t.Fatalf("forall s. s < s+1 is valid")
	}
	s2 := NewContext()
	s2.Assert(Assertion{Rel: Lt, A: V("s"), B: V("s"), QuantVar: "s", Origin: "bad"})
	res := check(t, s2)
	if res.Sat || len(res.Core) != 1 || res.Core[0].Origin != "bad" {
		t.Fatalf("forall s. s < s is invalid with itself as core, got %+v", res)
	}
	s3 := NewContext()
	s3.Assert(Assertion{Rel: Lt, A: V("s"), B: V("t"), QuantVar: "s"})
	if _, err := s3.Check(); err == nil {
		t.Fatalf("unsupported quantified pattern should error")
	}
}

// TestCoreMinimality (property): for random unsat instances, the reported
// core is unsatisfiable and removing any single element makes it
// satisfiable — the definition of minimality.
func TestCoreMinimality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vars := []string{"a", "b", "c", "d", "e"}
	rels := []Rel{Lt, Le, Eq}
	for trial := 0; trial < 200; trial++ {
		s := NewContext()
		n := 3 + rng.Intn(10)
		for i := 0; i < n; i++ {
			a := Assertion{
				Rel: rels[rng.Intn(len(rels))],
				A:   V(vars[rng.Intn(len(vars))]).Plus(rng.Intn(3) - 1),
				B:   V(vars[rng.Intn(len(vars))]).Plus(rng.Intn(3) - 1),
			}
			s.Assert(a)
		}
		res := check(t, s)
		if res.Sat {
			if bad := s.Verify(res.Model); bad != nil {
				t.Fatalf("trial %d: model violates %s", trial, bad)
			}
			continue
		}
		// The core alone must be unsat.
		coreSolver := NewContext()
		coreSolver.AssertAll(res.Core)
		if check(t, coreSolver).Sat {
			t.Fatalf("trial %d: core is not unsatisfiable: %s", trial, FormatCore(res.Core))
		}
		// Every proper subset must be sat.
		for skip := range res.Core {
			sub := NewContext()
			for i, a := range res.Core {
				if i != skip {
					sub.Assert(a)
				}
			}
			if !check(t, sub).Sat {
				t.Fatalf("trial %d: core not minimal; still unsat without element %d: %s",
					trial, skip, FormatCore(res.Core))
			}
		}
	}
}

// TestCycleCoreAgreesOnVerdict: with minimization disabled the verdict is
// identical and the cycle core is still unsatisfiable.
func TestCycleCoreAgreesOnVerdict(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	vars := []string{"a", "b", "c", "d"}
	for trial := 0; trial < 100; trial++ {
		var asserts []Assertion
		n := 3 + rng.Intn(8)
		for i := 0; i < n; i++ {
			asserts = append(asserts, Assertion{
				Rel: []Rel{Lt, Le, Eq}[rng.Intn(3)],
				A:   V(vars[rng.Intn(len(vars))]),
				B:   V(vars[rng.Intn(len(vars))]),
			})
		}
		min := NewContext()
		min.AssertAll(asserts)
		fast := NewContext()
		fast.NoMinimize = true
		fast.AssertAll(asserts)
		r1, r2 := check(t, min), check(t, fast)
		if r1.Sat != r2.Sat {
			t.Fatalf("trial %d: verdicts disagree: minimized %v, cycle %v", trial, r1.Sat, r2.Sat)
		}
		if !r2.Sat && len(r2.Core) > 0 {
			cs := NewContext()
			cs.AssertAll(r2.Core)
			if check(t, cs).Sat {
				t.Fatalf("trial %d: cycle core not unsat", trial)
			}
		}
	}
}

// TestModelsArePositive (property, testing/quick): every model assigns
// positive integers.
func TestModelsArePositive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewContext()
		vars := []string{"p", "q", "r"}
		for i := 0; i < 4; i++ {
			s.Assert(Assertion{
				Rel: Le,
				A:   V(vars[rng.Intn(3)]),
				B:   V(vars[rng.Intn(3)]).Plus(rng.Intn(4)),
			})
		}
		res, err := s.Check()
		if err != nil || !res.Sat {
			return err == nil // ≤ with non-negative offsets is always sat
		}
		for _, v := range res.Model {
			if v < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestYicesRoundTrip: Emit → Parse preserves the verdict and the model's
// satisfaction of the original constraints.
func TestYicesRoundTrip(t *testing.T) {
	s := NewContext()
	s.Assert(Assertion{Rel: Lt, A: V("C"), B: V("P"), Origin: "pref"})
	s.Assert(Assertion{Rel: Eq, A: V("R"), B: V("P")})
	s.Assert(Assertion{Rel: Le, A: V("C"), B: V("C")})
	s.Assert(Assertion{Rel: Lt, A: V("s"), B: V("s").Plus(1), QuantVar: "s"})
	text := Emit(s)
	for _, want := range []string{"(define-type Sig", "(define C::Sig)", "(assert (< C P))", "(forall (s::Sig)"} {
		if !strings.Contains(text, want) {
			t.Fatalf("emitted text missing %q:\n%s", want, text)
		}
	}
	parsed, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	r1, r2 := check(t, s), check(t, parsed)
	if r1.Sat != r2.Sat {
		t.Errorf("round trip changed the verdict: %v vs %v", r1.Sat, r2.Sat)
	}
}

// TestYicesParseErrors: malformed inputs produce errors, not panics.
func TestYicesParseErrors(t *testing.T) {
	for _, src := range []string{
		"(assert (< a b)",        // unterminated
		"(frobnicate x)",         // unknown form
		"(assert (mod a b))",     // unsupported relation
		"(assert (< (* a 2) b))", // non-linear term
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

// TestYicesParsePaperListing: the paper's §IV-C Gao-Rexford listing parses
// and is unsat, as the paper reports.
func TestYicesParsePaperListing(t *testing.T) {
	src := `
(define-type Sig (subtype (n::nat) (> n 0)))
(define C::Sig) (define P::Sig) (define R::Sig)
;; preference relations
(assert (< C R)) (assert (< C P)) (assert (= R P))
;; strict monotonicity
(assert (< C C)) (assert (< C R)) (assert (< C P))
(assert (< R P)) (assert (< P P))
`
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	res := check(t, s)
	if res.Sat {
		t.Fatalf("the paper's listing is unsat")
	}
}

// TestVerifyRejectsBadModel ensures Verify is a real check.
func TestVerifyRejectsBadModel(t *testing.T) {
	s := NewContext()
	s.Assert(Assertion{Rel: Lt, A: V("a"), B: V("b")})
	if bad := s.Verify(map[Var]int{"a": 2, "b": 1}); bad == nil {
		t.Errorf("Verify should reject a=2,b=1 for a<b")
	}
}

// TestStatsPopulated: solver effort is reported.
func TestStatsPopulated(t *testing.T) {
	s := NewContext()
	s.Assert(Assertion{Rel: Lt, A: V("a"), B: V("b")})
	res := check(t, s)
	if res.Stats.Assertions != 1 || res.Stats.Variables != 2 {
		t.Errorf("unexpected stats: %+v", res.Stats)
	}
}

// TestTermString covers the rendering helpers.
func TestTermString(t *testing.T) {
	cases := map[string]string{
		V("x").String():          "x",
		V("x").Plus(2).String():  "x+2",
		V("x").Plus(-2).String(): "x-2",
		C(7).String():            "7",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("got %q want %q", got, want)
		}
	}
	if !reflect.DeepEqual(V("x").Plus(0), V("x")) {
		t.Errorf("Plus(0) should be identity")
	}
}
