// The retained reference decision procedure: the original, obviously-correct
// implementation that rebuilds the constraint graph (fresh map[Var]int,
// fresh edge slice) and re-runs full-pass Bellman–Ford for every
// satisfiability probe. It is deliberately unoptimized — O(n²·E) core
// minimization with heavy allocation — and exists so differential tests can
// hold the incremental engine (engine.go) to identical verdicts, models,
// and minimal cores on every input. It is not registered in Backends() and
// should never be picked for production work.

package smt

import (
	"context"
	"sort"
	"time"
)

// Reference decides assertions with the retained original implementation.
// It satisfies Solver so tests can swap it in anywhere a backend goes.
type Reference struct {
	// NoMinimize disables deletion-based core minimization, as on Context.
	NoMinimize bool
}

// Name implements Solver.
func (Reference) Name() string { return "reference" }

// Solve implements Solver.
func (r Reference) Solve(ctx context.Context, assertions []Assertion) (Result, error) {
	c := NewContext()
	c.AssertAll(assertions)
	return referenceCheck(ctx, c.asserts, r.NoMinimize)
}

// refEdge is one difference constraint to(x) − from(y) ≤ w, i.e. an edge
// from → to of weight w in the constraint graph; assertIdx < 0 marks the
// implicit positivity constraints.
type refEdge struct {
	from, to  int
	w         int
	assertIdx int
}

// refGraph is the difference-constraint graph of a set of ground assertions.
type refGraph struct {
	edges []refEdge
	varID map[Var]int
	idVar []Var
}

// buildRefGraph translates ground assertions (identified by their indices
// into all) into a difference graph; active filters which assertions
// participate (nil means all).
func buildRefGraph(all []Assertion, idxs []int, active []bool) refGraph {
	return buildRefGraphOpt(all, idxs, active, true)
}

func buildRefGraphOpt(all []Assertion, idxs []int, active []bool, positivity bool) refGraph {
	g := refGraph{varID: map[Var]int{}, idVar: []Var{""}} // node 0 = the constant 0
	id := func(v Var) int {
		if v == "" {
			return zeroNode
		}
		if n, ok := g.varID[v]; ok {
			return n
		}
		n := len(g.idVar)
		g.varID[v] = n
		g.idVar = append(g.idVar, v)
		return n
	}
	for _, ai := range idxs {
		if active != nil && !active[ai] {
			continue
		}
		a := all[ai]
		va, vb := id(a.A.Var), id(a.B.Var)
		// A ≤ B:  val(va)+ka ≤ val(vb)+kb  ⇒  va − vb ≤ kb − ka.
		w := a.B.K - a.A.K
		switch a.Rel {
		case Le:
			g.edges = append(g.edges, refEdge{from: vb, to: va, w: w, assertIdx: ai})
		case Lt:
			g.edges = append(g.edges, refEdge{from: vb, to: va, w: w - 1, assertIdx: ai})
		case Eq:
			g.edges = append(g.edges, refEdge{from: vb, to: va, w: w, assertIdx: ai})
			g.edges = append(g.edges, refEdge{from: va, to: vb, w: -w, assertIdx: ai})
		}
	}
	// Positivity: x ≥ 1  ⇔  0 − x ≤ −1  ⇒  edge x → zero of weight −1.
	if positivity {
		for _, v := range g.idVar[1:] {
			g.edges = append(g.edges, refEdge{from: g.varID[v], to: zeroNode, w: -1, assertIdx: -1})
		}
	}
	return g
}

// bellmanFord relaxes the graph with an implicit virtual source (dist ≡ 0).
// It returns the final distances, the predecessor edge per node, and a node
// relaxed in the n-th pass (−1 when the graph converged, i.e. is
// satisfiable).
func (g refGraph) bellmanFord() (dist []int, pred []int, relaxedNode int) {
	n := len(g.idVar)
	dist = make([]int, n)
	pred = make([]int, n)
	for i := range pred {
		pred[i] = -1
	}
	relaxedNode = -1
	for pass := 0; pass < n; pass++ {
		relaxedNode = -1
		for ei, e := range g.edges {
			if d := dist[e.from] + e.w; d < dist[e.to] {
				dist[e.to] = d
				pred[e.to] = ei
				if relaxedNode < 0 {
					relaxedNode = e.to
				}
			}
		}
		if relaxedNode < 0 {
			return dist, pred, -1
		}
	}
	return dist, pred, relaxedNode
}

// refGroundSat reports whether the subset of ground assertions selected by
// active is satisfiable.
func refGroundSat(all []Assertion, idxs []int, active []bool) bool {
	_, _, relaxed := buildRefGraph(all, idxs, active).bellmanFord()
	return relaxed < 0
}

// referenceCheck is the original CheckContext, verbatim: per-probe graph
// rebuilds and full-pass Bellman–Ford throughout.
func referenceCheck(ctx context.Context, asserts []Assertion, noMinimize bool) (Result, error) {
	start := time.Now()
	res := Result{}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}

	// Phase 1: decide quantified assertions analytically.
	groundIdx := []int{}
	for i, a := range asserts {
		if a.QuantVar == "" {
			groundIdx = append(groundIdx, i)
			continue
		}
		ok, err := quantifiedValid(a)
		if err != nil {
			return Result{}, err
		}
		if !ok {
			// A single invalid universal is itself a minimal core.
			res.Sat = false
			res.Core = []Assertion{a}
			res.CoreIdx = []int{i}
			res.Stats = Stats{Assertions: len(asserts), Duration: time.Since(start)}
			return res, nil
		}
	}

	// Phase 2+3: difference graph and Bellman–Ford.
	g := buildRefGraph(asserts, groundIdx, nil)
	n := len(g.idVar)
	res.Stats = Stats{Assertions: len(asserts), Variables: n - 1, Edges: len(g.edges)}
	dist, pred, relaxedNode := g.bellmanFord()

	if relaxedNode >= 0 {
		var coreIdx []int
		var err error
		if noMinimize {
			coreIdx, res.UsesPositivity = refExtractCycleCore(g, pred, relaxedNode, groundIdx)
		} else {
			coreIdx, res.UsesPositivity, err = refMinimizeCore(ctx, asserts, groundIdx)
			if err != nil {
				return Result{}, err
			}
		}
		core := make([]Assertion, len(coreIdx))
		for i, ai := range coreIdx {
			core[i] = asserts[ai]
		}
		res.Sat = false
		res.Core = core
		res.CoreIdx = coreIdx
		res.Stats.Duration = time.Since(start)
		return res, nil
	}

	// Phase 4: extract a model. val(x) = dist(x) − dist(zero) satisfies
	// every difference constraint (distances do) and positivity (the
	// positivity edges are part of the graph).
	model := make(map[Var]int, n-1)
	for v, i := range g.varID {
		model[v] = dist[i] - dist[zeroNode]
	}
	res.Sat = true
	res.Model = model
	res.Stats.Duration = time.Since(start)
	return res, nil
}

// refMinimizeCore performs deletion-based minimization over the ground
// assertions: walking candidates from last to first, each assertion whose
// removal keeps the remainder unsatisfiable is dropped. The result is a
// minimal unsatisfiable subset (every proper subset is satisfiable) biased
// toward the earliest-asserted constraints, matching the way the paper's
// narratives name the first violation (c ⊕ C = C for Gao-Rexford). This is
// the semantic contract the incremental engine's witness-pruned loop must
// reproduce decision for decision.
func refMinimizeCore(ctx context.Context, asserts []Assertion, groundIdx []int) (core []int, usesPositivity bool, err error) {
	active := make([]bool, len(asserts))
	for _, i := range groundIdx {
		active[i] = true
	}
	for k := len(groundIdx) - 1; k >= 0; k-- {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		i := groundIdx[k]
		active[i] = false
		if refGroundSat(asserts, groundIdx, active) {
			active[i] = true // needed for unsatisfiability
		}
	}
	for _, i := range groundIdx {
		if active[i] {
			core = append(core, i)
		}
	}
	// The core involves positivity iff it becomes satisfiable over all of ℤ
	// once the implicit n > 0 typing is dropped.
	_, _, relaxed := buildRefGraphOpt(asserts, groundIdx, active, false).bellmanFord()
	usesPositivity = relaxed < 0
	return core, usesPositivity, nil
}

// refExtractCycleCore collects the assertions on the negative cycle
// reachable through the predecessor pointers — the fast, non-minimized core
// used when NoMinimize is set. The returned cycle is simple, hence itself a
// minimal unsatisfiable subset, but which of several cores is found is
// arbitrary.
func refExtractCycleCore(g refGraph, pred []int, relaxedNode int, groundIdx []int) (core []int, usesPositivity bool) {
	node := relaxedNode
	for i := 0; i < len(g.idVar) && pred[node] >= 0; i++ {
		node = g.edges[pred[node]].from
	}
	startNode := node
	coreIdx := map[int]bool{}
	for steps := 0; ; steps++ {
		if pred[node] < 0 || steps > len(g.edges) {
			// Defensive fallback; a pass-n relaxation guarantees the
			// predecessor walk closes a cycle, so this path is unreachable
			// in practice. Report the full ground set rather than a wrong
			// core.
			coreIdx = map[int]bool{}
			for _, gi := range groundIdx {
				coreIdx[gi] = true
			}
			break
		}
		e := g.edges[pred[node]]
		if e.assertIdx >= 0 {
			coreIdx[e.assertIdx] = true
		} else {
			usesPositivity = true
		}
		node = e.from
		if node == startNode {
			break
		}
	}
	for i := range coreIdx {
		core = append(core, i)
	}
	sort.Ints(core)
	return core, usesPositivity
}
