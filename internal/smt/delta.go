// Delta solving: the verification-as-a-service extension of the pooled
// incremental engine. A Context interns variables and builds its constraint
// graph once per Check; a DeltaContext keeps that graph alive *across*
// checks, so a what-if request that touches one session or ranking patches
// the edge list in place and re-probes only the region of the constraint
// graph reachable from the touched assertions, instead of rebuilding and
// re-solving everything.
//
// The invariant that makes this sound: after a sat solve, dist holds a
// fixed point of the active constraint graph. A splice changes the in-edge
// sets of a known set of "changed" nodes (the heads of deleted and added
// edges, plus the zero node when fresh variables bring new positivity
// edges). Any node whose fixed-point distance can move is reachable from a
// changed node along out-edges, so the affected region is the forward
// closure of the changed set; everything outside it keeps both its in-edge
// set and the distances of those in-edges' tails, hence its distance.
// SPFA re-seeded on the affected region (boundary edges relaxed from the
// standing distances) converges to the same fixed point a full solve would
// reach. A negative cycle introduced by the splice must contain a spliced
// edge — the surviving edges are a subset of a previously satisfiable set —
// so it lies inside the affected region and still triggers SPFA's
// enqueue-count bound, at which point the check falls back to a full
// rebuild + minimization, guaranteeing unsat verdicts, models, and minimal
// cores are bit-for-bit those of a fresh Context.Check (the differential
// oracle the tests and the server's -check-oracle mode enforce).

package smt

import (
	"context"
	"fmt"
	"time"
)

// DeltaStats counts solver activity on a DeltaContext, for observability:
// the server exports these as Prometheus counters.
type DeltaStats struct {
	// Checks counts Check calls that actually solved (cache misses).
	Checks int
	// CacheHits counts Check calls answered from the memoized result
	// (no splice since the last solve).
	CacheHits int
	// DeltaSolves counts checks answered by the incremental re-probe.
	DeltaSolves int
	// FullSolves counts checks that rebuilt the graph (first solve, any
	// solve after an unsat verdict, or a delta probe that found a negative
	// cycle and fell back for exact core minimization).
	FullSolves int
	// LastAffected is the size of the affected region of the last delta
	// solve (0 when the last solve was full).
	LastAffected int
	// LastDuration is the wall time of the last solving Check.
	LastDuration time.Duration
}

// DeltaContext is a mutable logical context with incremental solving:
// Splice edits the assertion list in place and Check re-decides it, reusing
// the converged state of the previous solve when possible. It is the
// solver-level "delta verification" entry point of the fsr serve daemon.
//
// A DeltaContext is not safe for concurrent use. Unlike Context, it owns a
// private engine (never pooled), because its value is exactly the state
// carried between checks.
type DeltaContext struct {
	asserts  []Assertion
	numQuant int

	e *dlEngine

	// built: e reflects asserts. clean: e.dist is a converged fixed point
	// of the full active graph (last solve was sat) and the active mask is
	// all-ground-assertions (minimize was not run since).
	built, clean bool
	csrDirty     bool

	// edgeOff[i] is the offset of assertion i's edges in e.edges;
	// edgeOff[len(asserts)] is the total assertion-edge count (positivity
	// edges follow). Quantified assertions own zero edges.
	edgeOff []int32
	// varRef counts ground-assertion references per variable id. Interning
	// is persistent across splices, so a variable whose assertions were all
	// removed stays in the graph as an orphan (positivity edge only, no
	// in-edges); varRef masks orphans out of models, which keeps them
	// bit-for-bit equal to a fresh solve's.
	varRef []int32

	// changed marks nodes whose in-edge set was touched by splices since
	// the last solve.
	changed   []int32
	changedIn []bool

	// affected-region scratch.
	affected []int32
	inAff    []bool

	// memoized result of the last Check, valid until the next Splice.
	res      Result
	resValid bool

	stats DeltaStats
}

// NewDeltaContext returns a delta context over a copy of the assertions
// (normalized like Context.Assert).
func NewDeltaContext(asserts []Assertion) *DeltaContext {
	d := &DeltaContext{
		asserts: make([]Assertion, len(asserts)),
		e:       &dlEngine{varID: make(map[Var]int32, 64)},
	}
	for i, a := range asserts {
		d.asserts[i] = a.normalized()
		if d.asserts[i].QuantVar != "" {
			d.numQuant++
		}
	}
	return d
}

// Len returns the number of asserted atoms.
func (d *DeltaContext) Len() int { return len(d.asserts) }

// Assertions returns a copy of the current assertion list.
func (d *DeltaContext) Assertions() []Assertion {
	out := make([]Assertion, len(d.asserts))
	copy(out, d.asserts)
	return out
}

// Stats returns the accumulated solver statistics.
func (d *DeltaContext) Stats() DeltaStats { return d.stats }

// Clone returns an independent copy, including the warm engine state, so a
// what-if can be applied to the clone and discarded without disturbing (or
// cooling) the original.
func (d *DeltaContext) Clone() *DeltaContext {
	c := &DeltaContext{
		asserts:  append([]Assertion(nil), d.asserts...),
		numQuant: d.numQuant,
		e:        d.e.clone(),
		built:    d.built,
		clean:    d.clean,
		csrDirty: d.csrDirty,
		edgeOff:  append([]int32(nil), d.edgeOff...),
		varRef:   append([]int32(nil), d.varRef...),
		changed:  append([]int32(nil), d.changed...),
		res:      d.res,
		resValid: d.resValid,
		stats:    d.stats,
	}
	if d.changedIn != nil {
		c.changedIn = append([]bool(nil), d.changedIn...)
	}
	return c
}

// clone deep-copies the engine's persistent state (scratch buffers are
// copied too: dist/pred are live state for a clean delta context).
func (e *dlEngine) clone() *dlEngine {
	c := &dlEngine{varID: make(map[Var]int32, len(e.varID))}
	for k, v := range e.varID {
		c.varID[k] = v
	}
	c.idVar = append([]Var(nil), e.idVar...)
	c.edges = append([]dlEdge(nil), e.edges...)
	c.adjStart = append([]int32(nil), e.adjStart...)
	c.adjList = append([]int32(nil), e.adjList...)
	c.active = append([]bool(nil), e.active...)
	c.posActive = e.posActive
	c.dist = append([]int(nil), e.dist...)
	c.pred = append([]int32(nil), e.pred...)
	c.cnt = append([]int32(nil), e.cnt...)
	c.inQ = append([]bool(nil), e.inQ...)
	c.queue = append([]int32(nil), e.queue...)
	c.inWitness = append([]bool(nil), e.inWitness...)
	c.witness = append([]int32(nil), e.witness...)
	return c
}

// Splice replaces asserts[at : at+del] with add (normalized), patching the
// live constraint graph in place when one exists: the removed assertions'
// edges are cut out of the edge list, the added assertions' edges spliced
// in, new variables interned persistently, and the heads of every touched
// edge recorded as changed so the next Check can re-probe just the region
// they reach.
func (d *DeltaContext) Splice(at, del int, add []Assertion) error {
	if at < 0 || del < 0 || at+del > len(d.asserts) {
		return fmt.Errorf("smt: splice [%d:%d+%d] out of range 0..%d", at, at, del, len(d.asserts))
	}
	obsDeltaSplices.Inc()
	d.resValid = false
	// Normalize the additions once, up front.
	norm := make([]Assertion, len(add))
	for i, a := range add {
		norm[i] = a.normalized()
	}
	for _, a := range d.asserts[at : at+del] {
		if a.QuantVar != "" {
			d.numQuant--
		}
	}
	for _, a := range norm {
		if a.QuantVar != "" {
			d.numQuant++
		}
	}

	if !d.built || !d.clean {
		// No live converged graph to patch: splice the assert list only;
		// the next Check rebuilds from scratch anyway.
		d.asserts = spliceAsserts(d.asserts, at, del, norm)
		return nil
	}

	e := d.e
	// Reference counts and interning. Deleted assertions drop references;
	// added ones intern (persistently) and add references.
	for i := at; i < at+del; i++ {
		a := &d.asserts[i]
		if a.QuantVar != "" {
			continue
		}
		if a.A.Var != "" {
			d.varRef[e.varID[a.A.Var]]--
		}
		if a.B.Var != "" {
			d.varRef[e.varID[a.B.Var]]--
		}
	}
	newVars := false
	internDelta := func(v Var) int32 {
		if v == "" {
			return zeroNode
		}
		if n, ok := e.varID[v]; ok {
			return n
		}
		n := int32(len(e.idVar))
		e.varID[v] = n
		e.idVar = append(e.idVar, v)
		d.varRef = append(d.varRef, 0)
		// Grow the node-indexed buffers; a fresh node starts at the
		// virtual-source distance like every node of a fresh solve.
		e.dist = append(e.dist, 0)
		e.pred = append(e.pred, -1)
		e.cnt = append(e.cnt, 1)
		e.inQ = append(e.inQ, false)
		e.queue = append(e.queue, 0)
		d.changedIn = append(d.changedIn, false)
		newVars = true
		return n
	}
	// Build the added assertions' edges.
	var addEdges []dlEdge
	for j := range norm {
		a := &norm[j]
		if a.QuantVar != "" {
			continue
		}
		va, vb := internDelta(a.A.Var), internDelta(a.B.Var)
		if a.A.Var != "" {
			d.varRef[va]++
		}
		if a.B.Var != "" {
			d.varRef[vb]++
		}
		idx := int32(at + j)
		w := a.B.K - a.A.K
		switch a.Rel {
		case Le:
			addEdges = append(addEdges, dlEdge{from: vb, to: va, w: w, assertIdx: idx})
		case Lt:
			addEdges = append(addEdges, dlEdge{from: vb, to: va, w: w - 1, assertIdx: idx})
		case Eq:
			addEdges = append(addEdges,
				dlEdge{from: vb, to: va, w: w, assertIdx: idx},
				dlEdge{from: va, to: vb, w: -w, assertIdx: idx})
		}
	}

	// Edge-list surgery. Layout: [0:aEnd) untouched prefix, [aEnd:dEnd)
	// deleted, [dEnd:tEnd) shifted tail, then positivity (regenerated).
	aEnd := int(d.edgeOff[at])
	dEnd := int(d.edgeOff[at+del])
	tEnd := int(d.edgeOff[len(d.asserts)])
	for i := aEnd; i < dEnd; i++ {
		d.markChanged(e.edges[i].to)
	}
	for i := range addEdges {
		d.markChanged(addEdges[i].to)
	}
	if newVars {
		// Fresh positivity edges point at the zero node.
		d.markChanged(zeroNode)
	}
	shift := int32(len(norm) - del)
	tailLen := tEnd - dEnd
	newAssertEdges := aEnd + len(addEdges) + tailLen
	nVars := len(e.idVar) - 1
	need := newAssertEdges + nVars
	if cap(e.edges) < need {
		grown := make([]dlEdge, newAssertEdges, need)
		copy(grown, e.edges[:aEnd])
		copy(grown[aEnd:], addEdges)
		copy(grown[aEnd+len(addEdges):], e.edges[dEnd:tEnd])
		e.edges = grown
	} else {
		e.edges = e.edges[:newAssertEdges]
		copy(e.edges[aEnd+len(addEdges):newAssertEdges], e.edges[dEnd:tEnd]) // overlap-safe
		copy(e.edges[aEnd:], addEdges)
	}
	if shift != 0 {
		for i := aEnd + len(addEdges); i < newAssertEdges; i++ {
			e.edges[i].assertIdx += shift
		}
	}
	for v := int32(1); v <= int32(nVars); v++ {
		e.edges = append(e.edges, dlEdge{from: v, to: zeroNode, w: -1, assertIdx: -1})
	}
	d.csrDirty = true

	// Splice the assertion list and rebuild the per-assertion tables (O(n)
	// integer work, no interning).
	d.asserts = spliceAsserts(d.asserts, at, del, norm)
	d.rebuildOffsets()
	n := len(d.asserts)
	e.active = growBool(e.active, n)
	e.inWitness = growBool(e.inWitness, n)
	for i := range d.asserts {
		e.active[i] = d.asserts[i].QuantVar == ""
		e.inWitness[i] = false
	}
	e.witness = e.witness[:0]
	return nil
}

func spliceAsserts(asserts []Assertion, at, del int, add []Assertion) []Assertion {
	out := make([]Assertion, 0, len(asserts)-del+len(add))
	out = append(out, asserts[:at]...)
	out = append(out, add...)
	out = append(out, asserts[at+del:]...)
	return out
}

// rebuildOffsets recomputes edgeOff from the assertion list alone (the edge
// layout is a pure function of the relations).
func (d *DeltaContext) rebuildOffsets() {
	n := len(d.asserts)
	d.edgeOff = growInt32(d.edgeOff, n+1)
	off := int32(0)
	for i := range d.asserts {
		d.edgeOff[i] = off
		a := &d.asserts[i]
		if a.QuantVar != "" {
			continue
		}
		if a.Rel == Eq {
			off += 2
		} else {
			off++
		}
	}
	d.edgeOff[n] = off
}

func (d *DeltaContext) markChanged(v int32) {
	if !d.changedIn[v] {
		d.changedIn[v] = true
		d.changed = append(d.changed, v)
	}
}

func (d *DeltaContext) clearChanged() {
	for _, v := range d.changed {
		d.changedIn[v] = false
	}
	d.changed = d.changed[:0]
}

// Check decides the current assertion list. Results are memoized until the
// next Splice. A clean (previously sat) context is re-decided by the delta
// path: forward-closure of the changed nodes, boundary relaxation, seeded
// SPFA. Anything else — first check, any check after unsat, or a delta
// probe that hits a negative cycle — runs the exact full path of
// Context.CheckContext on the same engine, so verdicts, models, and
// minimal cores are always bit-for-bit those of a fresh solve.
func (d *DeltaContext) Check(ctx context.Context) (Result, error) {
	if d.resValid {
		d.stats.CacheHits++
		obsCacheHits.Inc()
		return d.res, nil
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	defer d.e.flushStats()
	start := time.Now()
	d.stats.Checks++

	// Quantified assertions are decided analytically, as in CheckContext.
	if d.numQuant > 0 {
		for i := range d.asserts {
			a := &d.asserts[i]
			if a.QuantVar == "" {
				continue
			}
			ok, err := quantifiedValid(*a)
			if err != nil {
				return Result{}, err
			}
			if !ok {
				res := Result{
					Core:    []Assertion{*a},
					CoreIdx: []int{i},
					Stats:   Stats{Assertions: len(d.asserts), Duration: time.Since(start)},
				}
				d.res, d.resValid = res, true
				d.stats.LastDuration = res.Stats.Duration
				return res, nil
			}
		}
	}

	if d.built && d.clean {
		res, solved, err := d.deltaSolve(ctx, start)
		if err != nil {
			return Result{}, err
		}
		if solved {
			return res, nil
		}
		// Negative-cycle trigger: fall through to the exact full path.
	}
	return d.fullSolve(ctx, start)
}

// fullSolve rebuilds the engine for the current assertions and runs the
// exact decide/minimize pipeline of Context.CheckContext.
func (d *DeltaContext) fullSolve(ctx context.Context, start time.Time) (Result, error) {
	e := d.e
	e.build(d.asserts)
	d.built, d.csrDirty = true, false
	d.rebuildOffsets()
	// Recompute reference counts against the rebuilt (orphan-free) intern
	// table.
	d.varRef = growInt32(d.varRef, len(e.idVar))
	for i := range d.varRef {
		d.varRef[i] = 0
	}
	for i := range d.asserts {
		a := &d.asserts[i]
		if a.QuantVar != "" {
			continue
		}
		if a.A.Var != "" {
			d.varRef[e.varID[a.A.Var]]++
		}
		if a.B.Var != "" {
			d.varRef[e.varID[a.B.Var]]++
		}
	}
	d.changedIn = growBool(d.changedIn, len(e.idVar))
	for i := range d.changedIn {
		d.changedIn[i] = false
	}
	d.changed = d.changed[:0]
	d.stats.FullSolves++
	obsFullSolves.Inc()
	d.stats.LastAffected = 0

	res := Result{Stats: Stats{Assertions: len(d.asserts), Variables: len(e.idVar) - 1, Edges: len(e.edges)}}
	if e.decide() {
		coreIdx, usesPos, err := e.minimize(ctx, d.asserts)
		if err != nil {
			// The active mask is mid-minimization: force a rebuild next time.
			d.built, d.clean = false, false
			return Result{}, err
		}
		core := make([]Assertion, len(coreIdx))
		for i, ai := range coreIdx {
			core[i] = d.asserts[ai]
		}
		res.Core, res.CoreIdx, res.UsesPositivity = core, coreIdx, usesPos
		d.clean = false // minimize disturbed the active mask and distances
	} else {
		res.Sat = true
		res.Model = d.model()
		d.clean = true
	}
	res.Stats.Duration = time.Since(start)
	d.stats.LastDuration = res.Stats.Duration
	d.res, d.resValid = res, true
	return res, nil
}

// deltaSolve re-probes the affected region of a clean graph. It reports
// solved=false when SPFA triggers the negative-cycle bound, in which case
// the caller runs the full path (state is untouched in a way that matters:
// fullSolve rebuilds everything).
func (d *DeltaContext) deltaSolve(ctx context.Context, start time.Time) (Result, bool, error) {
	e := d.e
	if d.csrDirty {
		e.buildCSR()
		d.csrDirty = false
	}
	if len(d.changed) == 0 {
		// Nothing touched the graph since the last fixed point (e.g. a
		// splice of identical assertions): the standing distances are the
		// answer.
		res := Result{Sat: true, Model: d.model(),
			Stats: Stats{Assertions: len(d.asserts), Variables: len(e.idVar) - 1, Edges: len(e.edges), Duration: time.Since(start)}}
		d.stats.DeltaSolves++
		obsDeltaSolves.Inc()
		d.stats.LastAffected = 0
		d.stats.LastDuration = res.Stats.Duration
		d.res, d.resValid = res, true
		return res, true, nil
	}

	// Affected region: forward closure of the changed nodes over active
	// out-edges. Only nodes in this set can see their fixed-point distance
	// move, and any new negative cycle lies entirely inside it.
	d.inAff = growBool(d.inAff, len(e.idVar))
	d.affected = d.affected[:0]
	for _, v := range d.changed {
		if !d.inAff[v] {
			d.inAff[v] = true
			d.affected = append(d.affected, v)
		}
	}
	for qi := 0; qi < len(d.affected); qi++ {
		u := d.affected[qi]
		for k := e.adjStart[u]; k < e.adjStart[u+1]; k++ {
			ed := &e.edges[e.adjList[k]]
			if !e.edgeActive(ed) {
				continue
			}
			if v := ed.to; !d.inAff[v] {
				d.inAff[v] = true
				d.affected = append(d.affected, v)
			}
		}
	}

	// Reset the region to virtual-source distances and seed the queue with
	// it; boundary edges (unaffected tail → affected head) are relaxed once
	// from the standing distances, which never move during the re-probe.
	for i, v := range d.affected {
		e.dist[v] = 0
		e.pred[v] = -1
		e.cnt[v] = 1
		e.inQ[v] = true
		e.queue[i] = v
	}
	for i := range e.edges {
		ed := &e.edges[i]
		if !d.inAff[ed.to] || d.inAff[ed.from] || !e.edgeActive(ed) {
			continue
		}
		if nd := e.dist[ed.from] + ed.w; nd < e.dist[ed.to] {
			e.dist[ed.to] = nd
			e.pred[ed.to] = int32(i)
		}
	}
	trigger := e.spfaLoop(0, int32(len(d.affected)))

	nAff := len(d.affected)
	for _, v := range d.affected {
		d.inAff[v] = false
	}
	d.affected = d.affected[:0]

	if trigger >= 0 {
		// A negative cycle (or an unconfirmable trigger): hand over to the
		// full path for the exact verdict and minimal core.
		d.clean = false
		return Result{}, false, nil
	}
	d.clearChanged()
	res := Result{Sat: true, Model: d.model(),
		Stats: Stats{Assertions: len(d.asserts), Variables: len(e.idVar) - 1, Edges: len(e.edges), Duration: time.Since(start)}}
	d.stats.DeltaSolves++
	obsDeltaSolves.Inc()
	d.stats.LastAffected = nAff
	d.stats.LastDuration = res.Stats.Duration
	d.res, d.resValid = res, true
	return res, true, nil
}

// model extracts the satisfying assignment from the converged distances,
// masking orphaned variables (interned once, no longer referenced) so the
// model matches a fresh solve's exactly.
func (d *DeltaContext) model() map[Var]int {
	e := d.e
	n := 0
	for i := 1; i < len(e.idVar); i++ {
		if d.varRef[i] > 0 {
			n++
		}
	}
	model := make(map[Var]int, n)
	d0 := e.dist[zeroNode]
	for i := 1; i < len(e.idVar); i++ {
		if d.varRef[i] > 0 {
			model[e.idVar[i]] = e.dist[i] - d0
		}
	}
	return model
}
