//go:build !race

package smt

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
