// The incremental difference-logic engine behind Context.Check.
//
// The old decision path rebuilt the constraint graph — a fresh map[Var]int,
// a fresh edge slice — and re-ran full-pass Bellman–Ford for every
// satisfiability probe, making deletion-based core minimization O(n²·E)
// with heavy allocation. This engine interns variables once into dense
// integer IDs, builds the edge list and a CSR adjacency exactly once per
// Check, and answers every subsequent probe over an `active []bool` mask
// with SPFA (queue-based Bellman–Ford) on preallocated dist/pred/queue
// buffers. Engines are pooled and reused across solves, so the steady-state
// sat path allocates only the result model.
//
// Core minimization keeps the exact semantics of the original deletion
// loop (walk candidates from last to first, drop every assertion whose
// removal keeps the remainder unsatisfiable) but prunes probes with a
// witness cycle: an assertion outside the currently known negative cycle
// can be dropped without solving, because the witness is still a
// contradiction without it. Only assertions on the witness trigger an
// incremental re-solve, which either proves them necessary or yields the
// next, smaller witness. The result is bit-for-bit the same minimal core as
// the naive loop at O(|cycle|) probes instead of O(n) full re-solves.

package smt

import (
	"context"
	"sort"
	"sync"
)

// dlEdge is one difference constraint to − from ≤ w, i.e. an edge
// from → to of weight w in the constraint graph; assertIdx < 0 marks the
// implicit positivity constraints (x ≥ 1, from the paper's Sig subtype).
type dlEdge struct {
	from, to  int32
	w         int
	assertIdx int32
}

// dlEngine is the reusable solver state. All slices are grown once to the
// instance size and reused across probes (and, via enginePool, across
// solves), keeping the hot paths allocation-free.
type dlEngine struct {
	varID map[Var]int32
	idVar []Var

	edges    []dlEdge
	adjStart []int32 // CSR: adjList[adjStart[v]:adjStart[v+1]] are v's out-edges
	adjList  []int32

	active    []bool // per-assertion mask; quantified entries stay false
	posActive bool   // whether the implicit positivity edges participate

	dist  []int
	pred  []int32 // predecessor edge per node, -1 for none
	cnt   []int32 // SPFA enqueue counts (negative-cycle trigger)
	inQ   []bool
	queue []int32 // ring buffer of node IDs, capacity = node count

	// cycle extraction scratch.
	cycleIdx  []int32 // assertion indices on the last extracted cycle
	cyclePos  bool    // the last cycle used a positivity edge
	inWitness []bool  // per-assertion membership in the current witness
	witness   []int32 // current witness assertion indices (for clearing)

	// Loop-effort counts, drained into the obs registry by flushStats
	// (obs.go) once per Check so the inner loops stay atomic-free.
	statProbes  int
	statRelax   int
	statMinIter int
}

var enginePool = sync.Pool{New: func() any {
	return &dlEngine{varID: make(map[Var]int32, 64)}
}}

// grabEngine returns a pooled engine built for the given assertions.
func grabEngine(asserts []Assertion) *dlEngine {
	e := enginePool.Get().(*dlEngine)
	e.build(asserts)
	return e
}

// release returns the engine to the pool for reuse by a later solve.
func (e *dlEngine) release() { enginePool.Put(e) }

func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growInt(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// build interns the variables of the ground assertions into dense IDs
// (node 0 is the constant 0), translates each assertion into its difference
// edges exactly once, and indexes the edges into a CSR adjacency. All
// buffers are sized here; probes only flip the active mask.
func (e *dlEngine) build(asserts []Assertion) {
	clear(e.varID)
	e.idVar = append(e.idVar[:0], "") // node 0 = the constant 0
	intern := func(v Var) int32 {
		if v == "" {
			return zeroNode
		}
		if n, ok := e.varID[v]; ok {
			return n
		}
		n := int32(len(e.idVar))
		e.varID[v] = n
		e.idVar = append(e.idVar, v)
		return n
	}
	// Single pass: intern each variable exactly once (two map probes per
	// assertion, the dominant cost of build) and append the assertion edges
	// as we go. Edge capacity is retained across pooled reuses, so the
	// appends are allocation-free in steady state.
	e.edges = e.edges[:0]
	for i := range asserts {
		a := &asserts[i]
		if a.QuantVar != "" {
			continue
		}
		va, vb := intern(a.A.Var), intern(a.B.Var)
		// A ≤ B:  val(va)+ka ≤ val(vb)+kb  ⇒  va − vb ≤ kb − ka.
		w := a.B.K - a.A.K
		switch a.Rel {
		case Le:
			e.edges = append(e.edges, dlEdge{from: vb, to: va, w: w, assertIdx: int32(i)})
		case Lt:
			e.edges = append(e.edges, dlEdge{from: vb, to: va, w: w - 1, assertIdx: int32(i)})
		case Eq:
			e.edges = append(e.edges, dlEdge{from: vb, to: va, w: w, assertIdx: int32(i)})
			e.edges = append(e.edges, dlEdge{from: va, to: vb, w: -w, assertIdx: int32(i)})
		}
	}
	nVars := len(e.idVar) - 1
	// Positivity: x ≥ 1  ⇔  0 − x ≤ −1  ⇒  edge x → zero of weight −1.
	for v := int32(1); v <= int32(nVars); v++ {
		e.edges = append(e.edges, dlEdge{from: v, to: zeroNode, w: -1, assertIdx: -1})
	}
	e.posActive = true

	e.buildCSR()

	V := nVars + 1
	e.dist = growInt(e.dist, V)
	e.pred = growInt32(e.pred, V)
	e.cnt = growInt32(e.cnt, V)
	e.inQ = growBool(e.inQ, V)
	e.queue = growInt32(e.queue, V)
	e.cycleIdx = e.cycleIdx[:0]
	e.active = growBool(e.active, len(asserts))
	e.inWitness = growBool(e.inWitness, len(asserts))
	for i := range asserts {
		e.active[i] = asserts[i].QuantVar == ""
		e.inWitness[i] = false
	}
	e.witness = e.witness[:0]
}

// buildCSR (re)indexes e.edges into the CSR adjacency by counting sort on
// the source node. It is called by build and again by the delta layer after
// an edge splice. e.cycleIdx is borrowed as the fill cursor and left empty.
func (e *dlEngine) buildCSR() {
	V := len(e.idVar)
	e.adjStart = growInt32(e.adjStart, V+1)
	for i := range e.adjStart {
		e.adjStart[i] = 0
	}
	for i := range e.edges {
		e.adjStart[e.edges[i].from+1]++
	}
	for v := 1; v <= V; v++ {
		e.adjStart[v] += e.adjStart[v-1]
	}
	e.adjList = growInt32(e.adjList, len(e.edges))
	e.cycleIdx = growInt32(e.cycleIdx, V) // reuse the cycle scratch as the fill cursor
	fill := e.cycleIdx
	copy(fill, e.adjStart[:V])
	for i := range e.edges {
		f := e.edges[i].from
		e.adjList[fill[f]] = int32(i)
		fill[f]++
	}
	e.cycleIdx = e.cycleIdx[:0]
}

// edgeActive reports whether the edge participates under the current mask.
func (e *dlEngine) edgeActive(ed *dlEdge) bool {
	if ed.assertIdx < 0 {
		return e.posActive
	}
	return e.active[ed.assertIdx]
}

// spfa relaxes the active subgraph with an implicit virtual source
// (dist ≡ 0) using queue-based Bellman–Ford. It returns a node suspected to
// lie on (or hang off) a negative cycle, or −1 when the distances converged
// (the active constraints are satisfiable). A non-negative return is only a
// trigger; callers confirm via extractCycle or passBF.
func (e *dlEngine) spfa() int32 {
	V := int32(len(e.idVar))
	for i := int32(0); i < V; i++ {
		e.dist[i] = 0
		e.pred[i] = -1
		e.cnt[i] = 1
		e.inQ[i] = true
		e.queue[i] = i
	}
	return e.spfaLoop(0, V)
}

// spfaLoop runs the relaxation loop over an already-seeded ring queue
// occupying queue[head:head+size] (mod V). The fresh-solve path seeds every
// node; the delta layer seeds only the affected region, with converged
// distances left in place for the rest.
func (e *dlEngine) spfaLoop(head, size int32) int32 {
	V := int32(len(e.idVar))
	// Relaxations are tallied in a register-resident local — a store to
	// the engine struct inside the inner loop defeats the compiler's
	// aliasing analysis and costs ~10% of the whole solve.
	relax := 0
	for size > 0 {
		u := e.queue[head]
		head++
		if head == V {
			head = 0
		}
		size--
		e.inQ[u] = false
		du := e.dist[u]
		for k := e.adjStart[u]; k < e.adjStart[u+1]; k++ {
			ed := &e.edges[e.adjList[k]]
			if !e.edgeActive(ed) {
				continue
			}
			if d := du + ed.w; d < e.dist[ed.to] {
				relax++
				v := ed.to
				e.dist[v] = d
				e.pred[v] = e.adjList[k]
				if !e.inQ[v] {
					e.cnt[v]++
					if e.cnt[v] > V {
						e.statRelax += relax
						return v
					}
					tail := head + size
					if tail >= V {
						tail -= V
					}
					e.queue[tail] = v
					size++
					e.inQ[v] = true
				}
			}
		}
	}
	e.statRelax += relax
	return -1
}

// passBF is the classic pass-based Bellman–Ford on the same buffers: exact,
// allocation-free, and guaranteed to leave a predecessor structure whose
// backward walk from the returned node closes a negative cycle. It is the
// fallback when SPFA's trigger cannot be confirmed (never in practice).
func (e *dlEngine) passBF() int32 {
	V := len(e.idVar)
	for i := 0; i < V; i++ {
		e.dist[i] = 0
		e.pred[i] = -1
	}
	relaxed := int32(-1)
	relax := 0
	for pass := 0; pass < V; pass++ {
		relaxed = -1
		for i := range e.edges {
			ed := &e.edges[i]
			if !e.edgeActive(ed) {
				continue
			}
			if d := e.dist[ed.from] + ed.w; d < e.dist[ed.to] {
				relax++
				e.dist[ed.to] = d
				e.pred[ed.to] = int32(i)
				if relaxed < 0 {
					relaxed = ed.to
				}
			}
		}
		if relaxed < 0 {
			break
		}
	}
	e.statRelax += relax
	return relaxed
}

// extractCycle walks the predecessor edges backward from the trigger node,
// collects the assertion indices on the first cycle it closes into
// e.cycleIdx (setting e.cyclePos when a positivity edge participates), and
// verifies the cycle weight is negative. It reports whether a verified
// negative cycle was found.
func (e *dlEngine) extractCycle(from int32) bool {
	V := len(e.idVar)
	// Step inside the cycle: V predecessor hops from the trigger node must
	// land on a node of the cycle if the predecessor walk closes one.
	node := from
	for i := 0; i < V; i++ {
		p := e.pred[node]
		if p < 0 {
			return false
		}
		node = e.edges[p].from
	}
	start := node
	e.cycleIdx = e.cycleIdx[:0]
	e.cyclePos = false
	weight := 0
	for steps := 0; ; steps++ {
		if steps > V {
			return false
		}
		p := e.pred[node]
		if p < 0 {
			return false
		}
		ed := &e.edges[p]
		weight += ed.w
		if ed.assertIdx >= 0 {
			e.cycleIdx = append(e.cycleIdx, ed.assertIdx)
		} else {
			e.cyclePos = true
		}
		node = ed.from
		if node == start {
			break
		}
	}
	return weight < 0
}

// decide reports whether the active constraint subset is unsatisfiable,
// leaving a verified negative cycle in e.cycleIdx when it is. The SPFA fast
// path decides almost every probe; an unconfirmable trigger falls back to
// exact pass-based Bellman–Ford.
func (e *dlEngine) decide() (unsat bool) {
	e.statProbes++
	v := e.spfa()
	if v < 0 {
		return false
	}
	if e.extractCycle(v) {
		return true
	}
	// Trigger could not be confirmed on SPFA's predecessor structure; redo
	// with the exact pass-based algorithm, whose pass-V relaxation
	// guarantees the predecessor walk closes a cycle.
	v = e.passBF()
	if v < 0 {
		return false
	}
	if e.extractCycle(v) {
		return true
	}
	// Defensively unreachable: report unsat with an over-approximate
	// "cycle" of every active assertion, which is a valid (if large)
	// witness for minimization.
	e.cycleIdx = e.cycleIdx[:0]
	e.cyclePos = e.posActive
	for i, on := range e.active {
		if on {
			e.cycleIdx = append(e.cycleIdx, int32(i))
		}
	}
	return true
}

// setWitness replaces the current witness with the last extracted cycle.
func (e *dlEngine) setWitness() {
	for _, i := range e.witness {
		e.inWitness[i] = false
	}
	e.witness = append(e.witness[:0], e.cycleIdx...)
	for _, i := range e.witness {
		e.inWitness[i] = true
	}
}

// minimize runs the deletion-minimization loop over the ground assertions,
// in the exact order and with the exact drop/keep decisions of the
// reference implementation, but skipping the re-solve whenever the probed
// assertion is not on the current witness cycle. e.cycleIdx must hold a
// verified cycle of the full active set on entry. It returns the minimal
// core as ascending assertion indices plus the positivity involvement flag.
func (e *dlEngine) minimize(ctx context.Context, asserts []Assertion) (core []int, usesPositivity bool, err error) {
	e.setWitness()
	for i := len(asserts) - 1; i >= 0; i-- {
		if asserts[i].QuantVar != "" {
			continue
		}
		e.statMinIter++
		if !e.inWitness[i] {
			// The witness is a contradiction not involving i: removing i
			// keeps the set unsatisfiable, exactly as the reference loop
			// would conclude after a full re-solve.
			e.active[i] = false
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		e.active[i] = false
		if e.decide() {
			e.setWitness() // still unsat: i stays dropped, smaller witness
		} else {
			e.active[i] = true // needed for unsatisfiability
		}
	}
	core = make([]int, 0, len(e.witness))
	for i := range asserts {
		if asserts[i].QuantVar == "" && e.active[i] {
			core = append(core, i)
		}
	}
	// The core involves positivity iff it becomes satisfiable over all of ℤ
	// once the implicit n > 0 typing is dropped.
	e.posActive = false
	usesPositivity = !e.decide()
	e.posActive = true
	return core, usesPositivity, nil
}

// cycleCore returns the last extracted cycle as a deduplicated, ascending
// core (the fast, non-minimized core used when NoMinimize is set).
func (e *dlEngine) cycleCore() (core []int, usesPositivity bool) {
	core = make([]int, 0, len(e.cycleIdx))
	for _, i := range e.cycleIdx {
		core = append(core, int(i))
	}
	sort.Ints(core)
	n := 0
	for i, v := range core {
		if i == 0 || core[n-1] != v {
			core[n] = v
			n++
		}
	}
	return core[:n], e.cyclePos
}
