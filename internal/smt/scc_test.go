package smt

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// randomSystem builds a seeded difference-logic system over k variables:
// preference-style chains, random cross constraints, and (for odd seeds) a
// planted strict cycle, so both verdicts and both engine paths (trivial
// DAG components and nontrivial SCCs) are exercised.
func randomSystem(seed int64, k int) []Assertion {
	rng := rand.New(rand.NewSource(seed))
	v := func(i int) Term { return Term{Var: Var(fmt.Sprintf("v%d", i))} }
	var as []Assertion
	for i := 0; i+1 < k; i++ {
		if rng.Intn(3) > 0 {
			as = append(as, Assertion{Rel: Lt, A: v(i), B: v(i + 1), Origin: fmt.Sprintf("chain %d", i)})
		}
	}
	for n := rng.Intn(2 * k); n > 0; n-- {
		i, j := rng.Intn(k), rng.Intn(k)
		if i == j {
			continue
		}
		rel := []Rel{Lt, Le, Le, Eq}[rng.Intn(4)]
		as = append(as, Assertion{Rel: rel, A: v(i), B: v(j).Plus(rng.Intn(7) - 3), Origin: fmt.Sprintf("cross %d %d", i, j)})
	}
	if seed%2 == 1 {
		a, b, c := rng.Intn(k), rng.Intn(k), rng.Intn(k)
		as = append(as,
			Assertion{Rel: Lt, A: v(a), B: v(b), Origin: "cyc ab"},
			Assertion{Rel: Lt, A: v(b), B: v(c), Origin: "cyc bc"},
			Assertion{Rel: Le, A: v(c), B: v(a), Origin: "cyc ca"},
		)
	}
	return as
}

// TestDecomposedMatchesNative: the SCC-decomposed backend is bit-identical
// to the sequential engine — verdict, model, minimized core, core indices,
// and positivity involvement — across seeded random systems and worker
// counts. This is the contract that lets the scale path substitute for the
// undecomposed one.
func TestDecomposedMatchesNative(t *testing.T) {
	ctx := context.Background()
	for seed := int64(1); seed <= 60; seed++ {
		as := randomSystem(seed, 4+int(seed%13))
		want, err := (Native{}).Solve(ctx, as)
		if err != nil {
			t.Fatalf("seed %d: native: %v", seed, err)
		}
		for _, workers := range []int{0, 1, 4} {
			got, err := (Decomposed{Workers: workers}).Solve(ctx, as)
			if err != nil {
				t.Fatalf("seed %d w=%d: decomposed: %v", seed, workers, err)
			}
			if got.Sat != want.Sat {
				t.Fatalf("seed %d w=%d: sat %v, native %v", seed, workers, got.Sat, want.Sat)
			}
			if !reflect.DeepEqual(got.Model, want.Model) {
				t.Fatalf("seed %d w=%d: model differs:\n%v\nvs\n%v", seed, workers, got.Model, want.Model)
			}
			if !reflect.DeepEqual(got.Core, want.Core) || !reflect.DeepEqual(got.CoreIdx, want.CoreIdx) {
				t.Fatalf("seed %d w=%d: core differs: %v vs %v", seed, workers, got.CoreIdx, want.CoreIdx)
			}
			if got.UsesPositivity != want.UsesPositivity {
				t.Fatalf("seed %d w=%d: positivity %v vs %v", seed, workers, got.UsesPositivity, want.UsesPositivity)
			}
			if got.Sat && got.Stats.Components == 0 {
				t.Fatalf("seed %d w=%d: no condensation stats on sat solve", seed, workers)
			}
		}
	}
}

// TestDecomposedQuantified: quantified assertions take the same analytic
// phase as Context — valid universals are ignored by the ground solve,
// an invalid one is its own minimal core.
func TestDecomposedQuantified(t *testing.T) {
	ctx := context.Background()
	x := Term{Var: "x"}
	valid := Assertion{Rel: Le, A: Term{Var: "n"}, B: Term{Var: "n", K: 1}, QuantVar: "n"}
	invalid := Assertion{Rel: Lt, A: Term{Var: "n"}, B: Term{Var: "n"}, QuantVar: "n"}
	for _, as := range [][]Assertion{
		{valid, {Rel: Lt, A: x, B: Term{Var: "y"}}},
		{{Rel: Lt, A: x, B: Term{Var: "y"}}, invalid},
	} {
		want, err := (Native{}).Solve(ctx, as)
		if err != nil {
			t.Fatal(err)
		}
		got, err := (Decomposed{}).Solve(ctx, as)
		if err != nil {
			t.Fatal(err)
		}
		got.Stats, want.Stats = Stats{}, Stats{}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("quantified handling differs:\n%+v\nvs\n%+v", got, want)
		}
	}
}

// TestSolveDenseMatchesContext: the pre-interned dense path computes the
// same verdict and the same canonical model values as the provenance path
// over the equivalent named system.
func TestSolveDenseMatchesContext(t *testing.T) {
	ctx := context.Background()
	for seed := int64(1); seed <= 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := 5 + int(seed%11)
		var dense []DenseConstraint
		var named []Assertion
		v := func(i int) Term { return Term{Var: Var(fmt.Sprintf("d%d", i))} }
		emit := func(a, b int, kk int, strict bool) {
			dense = append(dense, DenseConstraint{A: int32(a + 1), B: int32(b + 1), K: kk, Strict: strict})
			rel := Le
			if strict {
				rel = Lt
			}
			named = append(named, Assertion{Rel: rel, A: v(a), B: v(b).Plus(kk)})
		}
		for i := 0; i+1 < k; i++ {
			emit(i, i+1, 0, true)
		}
		for n := rng.Intn(2 * k); n > 0; n-- {
			i, j := rng.Intn(k), rng.Intn(k)
			if i == j {
				continue
			}
			emit(i, j, rng.Intn(7)-3, rng.Intn(2) == 0)
		}
		if seed%3 == 0 { // plant a cycle
			emit(2, 1, 0, true)
		}
		want, err := (Native{}).Solve(ctx, named)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sat, model, stats, err := SolveDense(ctx, k, dense, 2)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if sat != want.Sat {
			t.Fatalf("seed %d: dense sat %v, named %v", seed, sat, want.Sat)
		}
		if stats.Assertions != len(dense) || stats.Components == 0 {
			t.Fatalf("seed %d: bad stats %+v", seed, stats)
		}
		if !sat {
			continue
		}
		// Named interning only sees variables that appear in assertions;
		// every dense id 1..k appears here by construction of the chain...
		// except chain gaps are impossible (every i is chained), so compare
		// all ids.
		for i := 0; i < k; i++ {
			if got, wantV := model[i+1], want.Model[Var(fmt.Sprintf("d%d", i))]; got != wantV {
				t.Fatalf("seed %d: model[d%d] = %d, named %d", seed, i, got, wantV)
			}
		}
	}
}
