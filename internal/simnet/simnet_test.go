package simnet

import (
	"testing"
	"time"

	"fsr/internal/trace"
)

// echoHandler replies to every ping with a pong, n times.
type echoHandler struct {
	initiator bool
	remaining int
	got       []string
}

func (h *echoHandler) Start(env Env) {
	if h.initiator {
		for _, nb := range env.Neighbors() {
			env.Send(nb, "ping", 100)
		}
	}
}

func (h *echoHandler) Receive(env Env, from NodeID, payload any) {
	h.got = append(h.got, payload.(string))
	if h.remaining > 0 {
		h.remaining--
		env.Send(from, "pong", 100)
	}
}

func init() { RegisterPayload("") }

// TestDeliveryAndLatency: messages arrive after the configured latency.
func TestDeliveryAndLatency(t *testing.T) {
	net := New(1, nil)
	a := &echoHandler{initiator: true}
	b := &echoHandler{remaining: 1}
	net.AddNode("a", a)
	net.AddNode("b", b)
	net.Connect("a", "b", LinkConfig{Latency: 10 * time.Millisecond, Bandwidth: 100e6})
	res := net.Run(time.Second)
	if !res.Converged {
		t.Fatalf("should quiesce")
	}
	if len(b.got) != 1 || b.got[0] != "ping" {
		t.Errorf("b received %v", b.got)
	}
	if len(a.got) != 1 || a.got[0] != "pong" {
		t.Errorf("a received %v", a.got)
	}
	// One RTT: 2 × (latency + serialization of 100 B at 100 Mbps ≈ 8 µs).
	if res.Time < 20*time.Millisecond || res.Time > 21*time.Millisecond {
		t.Errorf("round trip took %v, want ≈20 ms", res.Time)
	}
}

// TestBandwidthSerialization: a large message takes size*8/bandwidth to
// serialize before the latency applies.
func TestBandwidthSerialization(t *testing.T) {
	net := New(1, nil)
	net.AddNode("a", &echoHandler{initiator: true})
	net.AddNode("b", &echoHandler{})
	// 1 Mbps: 100 bytes take 800 µs.
	net.Connect("a", "b", LinkConfig{Latency: time.Millisecond, Bandwidth: 1e6})
	res := net.Run(time.Second)
	want := 800*time.Microsecond + time.Millisecond
	if res.Time != want {
		t.Errorf("delivery at %v, want %v", res.Time, want)
	}
}

// TestHorizonStopsOscillation: a ping-pong pair that never stops runs to
// the horizon and is reported unconverged.
func TestHorizonStopsOscillation(t *testing.T) {
	net := New(1, nil)
	net.AddNode("a", &echoHandler{initiator: true, remaining: 1 << 30})
	net.AddNode("b", &echoHandler{remaining: 1 << 30})
	net.Connect("a", "b", DefaultLink())
	res := net.Run(200 * time.Millisecond)
	if res.Converged {
		t.Fatalf("endless ping-pong should not converge")
	}
	if res.Time != 200*time.Millisecond {
		t.Errorf("should stop at the horizon, got %v", res.Time)
	}
}

// TestDeterminism: identical seeds yield identical runs.
func TestDeterminism(t *testing.T) {
	run := func() RunResult {
		net := New(42, nil)
		net.AddNode("a", &echoHandler{initiator: true})
		net.AddNode("b", &echoHandler{remaining: 3})
		net.Connect("a", "b", LinkConfig{Latency: 5 * time.Millisecond, Jitter: 2 * time.Millisecond, Bandwidth: 1e8})
		return net.Run(time.Second)
	}
	r1, r2 := run(), run()
	if r1.Time != r2.Time || r1.Events != r2.Events {
		t.Errorf("runs differ: %v/%d vs %v/%d", r1.Time, r1.Events, r2.Time, r2.Events)
	}
}

// TestErrors: duplicate nodes/links and unknown endpoints are rejected.
func TestErrors(t *testing.T) {
	net := New(1, nil)
	if err := net.AddNode("a", &echoHandler{}); err != nil {
		t.Fatal(err)
	}
	if err := net.AddNode("a", &echoHandler{}); err == nil {
		t.Errorf("duplicate node should fail")
	}
	if err := net.Connect("a", "zz", DefaultLink()); err == nil {
		t.Errorf("unknown endpoint should fail")
	}
	net.AddNode("b", &echoHandler{})
	if err := net.Connect("a", "b", DefaultLink()); err != nil {
		t.Fatal(err)
	}
	if err := net.Connect("a", "b", DefaultLink()); err == nil {
		t.Errorf("duplicate link should fail")
	}
}

// TestCollectorAccounting: traffic lands in the collector.
func TestCollectorAccounting(t *testing.T) {
	col := trace.NewCollector(10 * time.Millisecond)
	net := New(1, col)
	net.AddNode("a", &echoHandler{initiator: true})
	net.AddNode("b", &echoHandler{remaining: 1})
	net.Connect("a", "b", DefaultLink())
	net.Run(time.Second)
	msgs, bytes := col.Totals()
	if msgs != 2 || bytes != 200 {
		t.Errorf("want 2 messages / 200 bytes, got %d / %d", msgs, bytes)
	}
	if col.Node("a").MsgsSent != 1 || col.Node("b").MsgsSent != 1 {
		t.Errorf("per-node accounting wrong: %+v %+v", col.Node("a"), col.Node("b"))
	}
}

// TestSchedule: timers fire in order at the requested offsets.
type timerHandler struct {
	fired []time.Duration
}

func (h *timerHandler) Start(env Env) {
	env.Schedule(30*time.Millisecond, func() { h.fired = append(h.fired, env.Now()) })
	env.Schedule(10*time.Millisecond, func() { h.fired = append(h.fired, env.Now()) })
}
func (h *timerHandler) Receive(Env, NodeID, any) {}

func TestSchedule(t *testing.T) {
	net := New(1, nil)
	h := &timerHandler{}
	net.AddNode("a", h)
	net.Run(time.Second)
	if len(h.fired) != 2 || h.fired[0] != 10*time.Millisecond || h.fired[1] != 30*time.Millisecond {
		t.Errorf("timers fired at %v", h.fired)
	}
}

// TestDeploymentEcho: the TCP runtime delivers the same protocol semantics.
func TestDeploymentEcho(t *testing.T) {
	col := trace.NewCollector(10 * time.Millisecond)
	dep := NewDeployment(col)
	a := &echoHandler{initiator: true}
	b := &echoHandler{remaining: 2}
	if err := dep.AddNode("a", a); err != nil {
		t.Fatal(err)
	}
	if err := dep.AddNode("b", b); err != nil {
		t.Fatal(err)
	}
	if err := dep.Connect("a", "b"); err != nil {
		t.Fatal(err)
	}
	res, err := dep.Run(5*time.Second, 100*time.Millisecond)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Converged {
		t.Fatalf("deployment should quiesce")
	}
	if len(b.got) != 1 || len(a.got) != 1 {
		t.Errorf("echo exchange incomplete: a=%v b=%v", a.got, b.got)
	}
	msgs, _ := col.Totals()
	if msgs != 2 {
		t.Errorf("want 2 messages accounted, got %d", msgs)
	}
}
