package simnet

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"
)

// recorder logs its lifecycle and fault callbacks in order.
type recorder struct {
	sendOnStart bool
	log         []string
	got         []string
}

func (h *recorder) Start(env Env) {
	h.log = append(h.log, "start")
	if h.sendOnStart {
		for _, nb := range env.Neighbors() {
			env.Send(nb, "ping", 100)
		}
	}
}

func (h *recorder) Receive(env Env, from NodeID, payload any) {
	h.got = append(h.got, payload.(string))
	h.log = append(h.log, fmt.Sprintf("recv %s from %s", payload, from))
}

func (h *recorder) LinkDown(env Env, nb NodeID) {
	h.log = append(h.log, fmt.Sprintf("link-down %s", nb))
}

func (h *recorder) LinkUp(env Env, nb NodeID) {
	h.log = append(h.log, fmt.Sprintf("link-up %s", nb))
}

func (h *recorder) Reset() {
	h.log = append(h.log, "reset")
	h.got = nil
}

// pair builds a two-node a–b network with 10 ms latency.
func pair(t *testing.T, a, b Handler) *Network {
	t.Helper()
	net := New(7, nil)
	if err := net.AddNode("a", a); err != nil {
		t.Fatal(err)
	}
	if err := net.AddNode("b", b); err != nil {
		t.Fatal(err)
	}
	if err := net.Connect("a", "b", DefaultLink()); err != nil {
		t.Fatal(err)
	}
	return net
}

// TestLinkConfigValidate: physically impossible configs are rejected, both
// directly and through Connect.
func TestLinkConfigValidate(t *testing.T) {
	bad := []LinkConfig{
		{Latency: -time.Millisecond},
		{Jitter: -time.Millisecond},
		{Bandwidth: -1},
		{Loss: -0.01},
		{Loss: 1.01},
		{Loss: math.NaN()},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", cfg)
		}
	}
	good := []LinkConfig{{}, DefaultLink(), {Loss: 1}, {Loss: 0.5, Latency: time.Millisecond}}
	for _, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Errorf("Validate rejected %+v: %v", cfg, err)
		}
	}
	net := New(1, nil)
	net.AddNode("a", &recorder{})
	net.AddNode("b", &recorder{})
	if err := net.Connect("a", "b", LinkConfig{Latency: -1}); err == nil {
		t.Errorf("Connect accepted negative latency")
	}
	if err := net.Connect("a", "a", DefaultLink()); err == nil {
		t.Errorf("Connect accepted self-link")
	}
}

// TestLinkDownDropsSend: a message sent while the link is down is lost and
// counted.
func TestLinkDownDropsSend(t *testing.T) {
	a, b := &recorder{}, &recorder{}
	net := pair(t, a, b)
	if err := net.ScheduleFault(time.Millisecond, FaultEvent{Kind: FaultLinkDown, A: "a", B: "b"}); err != nil {
		t.Fatal(err)
	}
	net.ScheduleCall(2*time.Millisecond, "a", func(env Env) { env.Send("b", "ping", 100) })
	res := net.Run(time.Second)
	if !res.Converged {
		t.Fatalf("should quiesce")
	}
	if res.Dropped != 1 || len(b.got) != 0 {
		t.Errorf("want 1 dropped / 0 delivered, got %d dropped, b.got=%v", res.Dropped, b.got)
	}
	if res.Faults != 1 || res.LastFault != time.Millisecond {
		t.Errorf("fault accounting: %d faults, last at %v", res.Faults, res.LastFault)
	}
	if up, err := net.LinkState("a", "b"); err != nil || up {
		t.Errorf("link should be down (up=%v err=%v)", up, err)
	}
}

// TestLinkDownDropsInFlight: a message already on the wire when the link
// goes down never arrives (epoch mismatch), even after the link recovers.
func TestLinkDownDropsInFlight(t *testing.T) {
	a, b := &recorder{sendOnStart: true}, &recorder{}
	net := pair(t, a, b)
	// Sent at t=0, delivery due ≈10 ms; the link flaps at 5/6 ms.
	net.ScheduleFault(5*time.Millisecond, FaultEvent{Kind: FaultLinkDown, A: "a", B: "b"})
	net.ScheduleFault(6*time.Millisecond, FaultEvent{Kind: FaultLinkUp, A: "a", B: "b"})
	res := net.Run(time.Second)
	if res.Dropped != 1 || len(b.got) != 0 {
		t.Errorf("in-flight message should drop: %d dropped, b.got=%v", res.Dropped, b.got)
	}
	// Both endpoints observed the flap, in order.
	wantB := []string{"start", "link-down a", "link-up a"}
	if fmt.Sprint(b.log) != fmt.Sprint(wantB) {
		t.Errorf("b.log = %v, want %v", b.log, wantB)
	}
	if up, err := net.LinkState("a", "b"); err != nil || !up {
		t.Errorf("link should be back up (up=%v err=%v)", up, err)
	}
}

// TestRestart: the node's state is reset, Start runs again, neighbors see
// the adjacency bounce, and in-flight traffic is voided.
func TestRestart(t *testing.T) {
	a, b := &recorder{sendOnStart: true}, &recorder{}
	net := pair(t, a, b)
	// The start-time ping is in flight (due ≈10 ms) when a restarts at 5 ms;
	// the restarted a re-sends, and only that copy arrives.
	net.ScheduleFault(5*time.Millisecond, FaultEvent{Kind: FaultRestart, A: "a"})
	res := net.Run(time.Second)
	if res.Dropped != 1 {
		t.Errorf("in-flight ping should be voided by the restart, dropped=%d", res.Dropped)
	}
	if len(b.got) != 1 || b.got[0] != "ping" {
		t.Errorf("b should get exactly the re-sent ping, got %v", b.got)
	}
	wantA := []string{"start", "reset", "start"}
	if fmt.Sprint(a.log) != fmt.Sprint(wantA) {
		t.Errorf("a.log = %v, want %v", a.log, wantA)
	}
	wantB := []string{"start", "link-down a", "link-up a", "recv ping from a"}
	if fmt.Sprint(b.log) != fmt.Sprint(wantB) {
		t.Errorf("b.log = %v, want %v", b.log, wantB)
	}
	if res.Faults != 1 {
		t.Errorf("restart should count as one fault, got %d", res.Faults)
	}
}

// TestProbabilisticLoss: Loss=1 drops everything; a fractional loss rate is
// deterministic across identically seeded runs.
func TestProbabilisticLoss(t *testing.T) {
	a := &recorder{sendOnStart: true}
	b := &recorder{}
	net := New(3, nil)
	net.AddNode("a", a)
	net.AddNode("b", b)
	if err := net.Connect("a", "b", LinkConfig{Latency: time.Millisecond, Loss: 1}); err != nil {
		t.Fatal(err)
	}
	res := net.Run(time.Second)
	if res.Dropped != 1 || len(b.got) != 0 {
		t.Errorf("Loss=1 should drop the ping: dropped=%d b.got=%v", res.Dropped, b.got)
	}

	run := func() RunResult {
		net := New(11, nil)
		net.AddNode("a", &recorder{})
		net.AddNode("b", &recorder{})
		net.Connect("a", "b", LinkConfig{Latency: time.Millisecond, Loss: 0.5})
		for i := 0; i < 40; i++ {
			net.ScheduleCall(time.Duration(i)*time.Millisecond, "a",
				func(env Env) { env.Send("b", "ping", 100) })
		}
		return net.Run(time.Second)
	}
	r1, r2 := run(), run()
	if r1.Dropped == 0 || r1.Dropped == 40 {
		t.Errorf("Loss=0.5 over 40 sends should drop some but not all, dropped=%d", r1.Dropped)
	}
	if r1 != r2 {
		t.Errorf("seeded loss runs differ:\n%+v\n%+v", r1, r2)
	}
}

// TestScheduleFaultErrors: bad fault references are rejected up front.
func TestScheduleFaultErrors(t *testing.T) {
	net := pair(t, &recorder{}, &recorder{})
	net.AddNode("c", &recorder{}) // exists but unlinked
	cases := []FaultEvent{
		{Kind: FaultLinkDown, A: "zz", B: "b"},
		{Kind: FaultLinkDown, A: "a", B: "zz"},
		{Kind: FaultLinkDown, A: "a", B: "c"}, // no such link
		{Kind: FaultRestart, A: "zz"},
		{Kind: FaultKind(99), A: "a", B: "b"},
	}
	for _, f := range cases {
		if err := net.ScheduleFault(time.Millisecond, f); err == nil {
			t.Errorf("ScheduleFault accepted %+v", f)
		}
	}
	if err := net.ScheduleFault(-time.Millisecond, FaultEvent{Kind: FaultRestart, A: "a"}); err == nil {
		t.Errorf("ScheduleFault accepted a past instant")
	}
	if err := net.ScheduleCall(time.Millisecond, "zz", func(Env) {}); err == nil {
		t.Errorf("ScheduleCall accepted an unknown node")
	}
}

// TestChurnDeterminism: an identical seed and fault schedule yields a
// bit-identical result, including fault and drop accounting.
func TestChurnDeterminism(t *testing.T) {
	run := func() RunResult {
		net := New(42, nil)
		for _, id := range []NodeID{"a", "b", "c"} {
			net.AddNode(id, &recorder{sendOnStart: true})
		}
		net.Connect("a", "b", LinkConfig{Latency: 5 * time.Millisecond, Jitter: 2 * time.Millisecond, Loss: 0.1})
		net.Connect("b", "c", LinkConfig{Latency: 5 * time.Millisecond, Jitter: 2 * time.Millisecond, Loss: 0.1})
		net.ScheduleFault(3*time.Millisecond, FaultEvent{Kind: FaultLinkDown, A: "a", B: "b"})
		net.ScheduleFault(8*time.Millisecond, FaultEvent{Kind: FaultLinkUp, A: "a", B: "b"})
		net.ScheduleFault(9*time.Millisecond, FaultEvent{Kind: FaultRestart, A: "c"})
		return net.Run(time.Second)
	}
	r1, r2 := run(), run()
	if r1 != r2 {
		t.Errorf("churn runs differ:\n%+v\n%+v", r1, r2)
	}
	if r1.Faults != 3 {
		t.Errorf("want 3 faults, got %d", r1.Faults)
	}
}

// tickerHandler sends to every neighbor on a periodic timer forever, so the
// event queue never drains even when link faults kill in-flight traffic.
type tickerHandler struct{}

func (h *tickerHandler) Start(env Env) { h.tick(env) }
func (h *tickerHandler) tick(env Env) {
	for _, nb := range env.Neighbors() {
		env.Send(nb, "ping", 100)
	}
	env.Schedule(time.Millisecond, func() { h.tick(env) })
}
func (h *tickerHandler) Receive(Env, NodeID, any) {}

// TestCancelDuringChurn exercises RunContext cancellation racing the fault
// machinery under -race: an endless ping-pong with scheduled flaps is
// cancelled from another goroutine mid-run.
func TestCancelDuringChurn(t *testing.T) {
	net := New(5, nil)
	net.AddNode("a", &tickerHandler{})
	net.AddNode("b", &tickerHandler{})
	net.Connect("a", "b", DefaultLink())
	for i := 1; i < 1000; i += 2 {
		net.ScheduleFault(time.Duration(i)*time.Second, FaultEvent{Kind: FaultLinkDown, A: "a", B: "b"})
		net.ScheduleFault(time.Duration(i+1)*time.Second, FaultEvent{Kind: FaultLinkUp, A: "a", B: "b"})
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan RunResult, 1)
	go func() {
		res, err := net.RunContext(ctx, time.Hour)
		if err != context.Canceled {
			t.Errorf("want context.Canceled, got %v", err)
		}
		done <- res
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	res := <-done
	if res.Converged {
		t.Errorf("cancelled run must not report convergence")
	}
}
