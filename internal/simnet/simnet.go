// Package simnet is the execution platform substituting for the paper's
// RapidNet/ns-3 stack: a deterministic discrete-event network simulator
// (simulation mode) and a real-socket loopback runtime (deployment mode,
// tcp.go), both driving the same protocol code through the Env/Handler
// interfaces. Links model latency, jitter, bandwidth serialization and FIFO
// queueing; all traffic is accounted into a trace.Collector so experiments
// can plot the paper's bandwidth and convergence figures.
package simnet

import (
	"container/heap"
	"context"
	"fmt"
	"math/rand"
	"time"

	"fsr/internal/trace"
)

// NodeID names a node (a router or an AS).
type NodeID string

// Env is the interface protocol code uses to interact with its platform.
// Both the discrete-event simulator and the TCP deployment runtime
// implement it, mirroring RapidNet's simulation/deployment duality (§VI).
// Env methods must only be called from within Handler callbacks (protocol
// code is single-threaded per node on both platforms).
type Env interface {
	// Self returns the node this environment belongs to.
	Self() NodeID
	// Now returns the current time: virtual in simulation mode, wall-clock
	// elapsed in deployment mode.
	Now() time.Duration
	// Neighbors returns the node's neighbors in a stable order.
	Neighbors() []NodeID
	// Send transmits a payload of the given wire size to a neighbor.
	// Sending to a non-neighbor is a programming error and panics.
	Send(to NodeID, payload any, size int)
	// Schedule runs fn on this node after d (a protocol timer, e.g. the
	// 1-second route batching of §VI-A).
	Schedule(d time.Duration, fn func())
	// Rand returns the node's deterministic random source (seeded per node
	// in simulation mode).
	Rand() *rand.Rand
}

// Handler is the protocol logic attached to a node.
type Handler interface {
	// Start is invoked once before any message is delivered.
	Start(env Env)
	// Receive is invoked for each delivered payload.
	Receive(env Env, from NodeID, payload any)
}

// LinkConfig models one direction of a link, with the parameters the
// paper's experiments set (100 Mbps bandwidth, 10 ms latency, up to 3 ms
// jitter).
type LinkConfig struct {
	Latency   time.Duration
	Jitter    time.Duration // uniform in [0, Jitter)
	Bandwidth int64         // bits per second; 0 means infinite
}

// DefaultLink reproduces the paper's standard link: 100 Mbps, 10 ms, no
// jitter.
func DefaultLink() LinkConfig {
	return LinkConfig{Latency: 10 * time.Millisecond, Bandwidth: 100e6}
}

// event is a scheduled callback.
type event struct {
	at  time.Duration
	seq int64 // tie-break for determinism
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) Peek() *event  { return h[0] }

// link is one directed link with its serialization queue state.
type link struct {
	cfg       LinkConfig
	busyUntil time.Duration // FIFO serialization: next transmission start
}

// node is a simulated node.
type node struct {
	id        NodeID
	handler   Handler
	neighbors []NodeID
	rng       *rand.Rand
	env       *simEnv
}

// Network is the discrete-event simulator. All scheduling is deterministic
// given the seed; runs are reproducible byte-for-byte.
type Network struct {
	nodes     map[NodeID]*node
	order     []NodeID
	links     map[[2]NodeID]*link
	queue     eventHeap
	now       time.Duration
	seq       int64
	rng       *rand.Rand
	collector *trace.Collector
	delivered int64
}

// New creates an empty simulated network with the given seed and metric
// collector (nil for an unmonitored run).
func New(seed int64, c *trace.Collector) *Network {
	if c == nil {
		c = trace.NewCollector(10 * time.Millisecond)
	}
	return &Network{
		nodes:     map[NodeID]*node{},
		links:     map[[2]NodeID]*link{},
		rng:       rand.New(rand.NewSource(seed)),
		collector: c,
	}
}

// Collector returns the attached metric collector.
func (n *Network) Collector() *trace.Collector { return n.collector }

// Now returns the current virtual time.
func (n *Network) Now() time.Duration { return n.now }

// AddNode attaches a handler as a new node. Node IDs must be unique.
func (n *Network) AddNode(id NodeID, h Handler) error {
	if _, dup := n.nodes[id]; dup {
		return fmt.Errorf("simnet: duplicate node %s", id)
	}
	nd := &node{id: id, handler: h, rng: rand.New(rand.NewSource(n.rng.Int63()))}
	nd.env = &simEnv{net: n, node: nd}
	n.nodes[id] = nd
	n.order = append(n.order, id)
	return nil
}

// Connect creates a bidirectional link between two existing nodes with the
// same configuration in both directions.
func (n *Network) Connect(a, b NodeID, cfg LinkConfig) error {
	na, nb := n.nodes[a], n.nodes[b]
	if na == nil || nb == nil {
		return fmt.Errorf("simnet: connect %s–%s: unknown node", a, b)
	}
	if _, dup := n.links[[2]NodeID{a, b}]; dup {
		return fmt.Errorf("simnet: duplicate link %s–%s", a, b)
	}
	n.links[[2]NodeID{a, b}] = &link{cfg: cfg}
	n.links[[2]NodeID{b, a}] = &link{cfg: cfg}
	na.neighbors = append(na.neighbors, b)
	nb.neighbors = append(nb.neighbors, a)
	return nil
}

// schedule enqueues fn at time at.
func (n *Network) schedule(at time.Duration, fn func()) {
	n.seq++
	heap.Push(&n.queue, &event{at: at, seq: n.seq, fn: fn})
}

// RunResult summarizes a simulation run.
type RunResult struct {
	// Converged reports whether the event queue drained before the horizon
	// (protocol quiescence: no pending messages or timers).
	Converged bool
	// Time is the instant of the last processed event when converged, or
	// the horizon otherwise.
	Time time.Duration
	// Events is the number of processed events.
	Events int64
	// Delivered is the number of delivered protocol messages.
	Delivered int64
}

// Run starts every handler and processes events until quiescence or until
// the horizon. An oscillating protocol (BADGADGET) never quiesces and runs
// to the horizon; a convergent one drains the queue, and the drain time is
// its convergence time.
func (n *Network) Run(horizon time.Duration) RunResult {
	res, _ := n.RunContext(context.Background(), horizon)
	return res
}

// RunContext is Run with cancellation: the context is polled every event
// batch, so cancelling mid-simulation aborts a long (or never-converging)
// run with ctx.Err() and the partial result processed so far.
func (n *Network) RunContext(ctx context.Context, horizon time.Duration) (RunResult, error) {
	for _, id := range n.order {
		nd := n.nodes[id]
		n.schedule(0, func() { nd.handler.Start(nd.env) })
	}
	return n.resume(ctx, horizon)
}

// ctxCheckInterval is how many events are processed between context polls:
// frequent enough that cancellation lands within microseconds, rare enough
// that the atomic load cost is invisible.
const ctxCheckInterval = 64

// resume continues processing (used by Run and by tests that inject events).
func (n *Network) resume(ctx context.Context, horizon time.Duration) (RunResult, error) {
	var processed int64
	var lastEvent time.Duration
	for n.queue.Len() > 0 {
		if processed%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return RunResult{Converged: false, Time: n.now, Events: processed, Delivered: n.delivered}, err
			}
		}
		if n.queue.Peek().at > horizon {
			n.now = horizon
			return RunResult{Converged: false, Time: horizon, Events: processed, Delivered: n.delivered}, nil
		}
		e := heap.Pop(&n.queue).(*event)
		if e.at > n.now {
			n.now = e.at
		}
		lastEvent = n.now
		e.fn()
		processed++
	}
	n.collector.MarkConverged(lastEvent)
	return RunResult{Converged: true, Time: lastEvent, Events: processed, Delivered: n.delivered}, nil
}

// deliver models the link: FIFO serialization at the sender, then
// propagation latency plus jitter.
func (n *Network) deliver(from, to NodeID, payload any, size int) {
	l := n.links[[2]NodeID{from, to}]
	if l == nil {
		panic(fmt.Sprintf("simnet: %s sent to non-neighbor %s", from, to))
	}
	n.collector.RecordSend(string(from), size, n.now)
	txStart := n.now
	if l.busyUntil > txStart {
		txStart = l.busyUntil
	}
	var ser time.Duration
	if l.cfg.Bandwidth > 0 {
		ser = time.Duration(float64(size*8) / float64(l.cfg.Bandwidth) * float64(time.Second))
	}
	txEnd := txStart + ser
	l.busyUntil = txEnd
	prop := l.cfg.Latency
	if l.cfg.Jitter > 0 {
		prop += time.Duration(n.rng.Int63n(int64(l.cfg.Jitter)))
	}
	dst := n.nodes[to]
	n.schedule(txEnd+prop, func() {
		n.collector.RecordRecv(string(to), size)
		n.delivered++
		dst.handler.Receive(dst.env, from, payload)
	})
}

// simEnv implements Env for a simulated node.
type simEnv struct {
	net  *Network
	node *node
}

func (e *simEnv) Self() NodeID       { return e.node.id }
func (e *simEnv) Now() time.Duration { return e.net.now }
func (e *simEnv) Rand() *rand.Rand   { return e.node.rng }

func (e *simEnv) Neighbors() []NodeID {
	out := make([]NodeID, len(e.node.neighbors))
	copy(out, e.node.neighbors)
	return out
}

func (e *simEnv) Send(to NodeID, payload any, size int) {
	e.net.deliver(e.node.id, to, payload, size)
}

func (e *simEnv) Schedule(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.net.schedule(e.net.now+d, fn)
}
