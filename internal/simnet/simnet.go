// Package simnet is the execution platform substituting for the paper's
// RapidNet/ns-3 stack: a deterministic discrete-event network simulator
// (simulation mode) and a real-socket loopback runtime (deployment mode,
// tcp.go), both driving the same protocol code through the Env/Handler
// interfaces. Links model latency, jitter, bandwidth serialization and FIFO
// queueing; all traffic is accounted into a trace.Collector so experiments
// can plot the paper's bandwidth and convergence figures.
//
// The simulator's hot loop is allocation-free in steady state: events are
// typed value records (timer vs. delivery vs. start) living in a slot arena
// recycled through a free list, ordered by a hand-rolled index heap —
// no per-event heap pointer, no per-delivery closure, no interface boxing.
// Message delivery resolves links through dense per-node adjacency instead
// of a global map keyed by node-ID pairs.
package simnet

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"fsr/internal/trace"
)

// NodeID names a node (a router or an AS).
type NodeID string

// Env is the interface protocol code uses to interact with its platform.
// Both the discrete-event simulator and the TCP deployment runtime
// implement it, mirroring RapidNet's simulation/deployment duality (§VI).
// Env methods must only be called from within Handler callbacks (protocol
// code is single-threaded per node on both platforms).
type Env interface {
	// Self returns the node this environment belongs to.
	Self() NodeID
	// Now returns the current time: virtual in simulation mode, wall-clock
	// elapsed in deployment mode.
	Now() time.Duration
	// Neighbors returns the node's neighbors in a stable order. The
	// returned slice is shared and read-only: callers must not modify it.
	Neighbors() []NodeID
	// Send transmits a payload of the given wire size to a neighbor.
	// Sending to a non-neighbor is a programming error and panics.
	Send(to NodeID, payload any, size int)
	// Schedule runs fn on this node after d (a protocol timer, e.g. the
	// 1-second route batching of §VI-A).
	Schedule(d time.Duration, fn func())
	// Rand returns the node's deterministic random source (seeded per node
	// in simulation mode).
	Rand() *rand.Rand
}

// Handler is the protocol logic attached to a node.
type Handler interface {
	// Start is invoked once before any message is delivered.
	Start(env Env)
	// Receive is invoked for each delivered payload.
	Receive(env Env, from NodeID, payload any)
}

// LinkConfig models one direction of a link, with the parameters the
// paper's experiments set (100 Mbps bandwidth, 10 ms latency, up to 3 ms
// jitter).
type LinkConfig struct {
	Latency   time.Duration
	Jitter    time.Duration // uniform in [0, Jitter)
	Bandwidth int64         // bits per second; 0 means infinite
	// Loss is the per-message drop probability in [0, 1]: each transmission
	// is independently lost with this probability (drawn from the network's
	// seeded rng, so runs stay deterministic). Lost messages are counted in
	// RunResult.Dropped.
	Loss float64
}

// Validate rejects configurations no physical link can have.
func (c LinkConfig) Validate() error {
	switch {
	case c.Latency < 0:
		return fmt.Errorf("simnet: negative latency %v", c.Latency)
	case c.Jitter < 0:
		return fmt.Errorf("simnet: negative jitter %v", c.Jitter)
	case c.Bandwidth < 0:
		return fmt.Errorf("simnet: negative bandwidth %d", c.Bandwidth)
	case c.Loss < 0 || c.Loss > 1 || c.Loss != c.Loss:
		return fmt.Errorf("simnet: loss probability %v outside [0, 1]", c.Loss)
	}
	return nil
}

// DefaultLink reproduces the paper's standard link: 100 Mbps, 10 ms, no
// jitter.
func DefaultLink() LinkConfig {
	return LinkConfig{Latency: 10 * time.Millisecond, Bandwidth: 100e6}
}

// Event kinds. Typed records replace the closure-per-event design: the two
// hot kinds (delivery, timer) carry their payload inline, so scheduling a
// message allocates nothing once the arena is warm.
const (
	evStart    = iota // invoke handler.Start on node
	evTimer           // run fn (protocol timer)
	evDeliver         // deliver payload from → node
	evLinkDown        // fault: take the node↔from link down
	evLinkUp          // fault: bring the node↔from link back up
	evRestart         // fault: clear node's handler state and re-Start it
)

// event is one scheduled occurrence, stored by value in the arena.
type event struct {
	at      time.Duration
	seq     int64 // tie-break for determinism
	kind    uint8
	node    int32  // target node index (start/restart target, delivery receiver, fault endpoint a)
	from    int32  // delivery sender index; fault endpoint b
	size    int32  // delivery wire size
	li      int32  // delivery: index of the sender's outgoing link
	epoch   uint32 // delivery: the link epoch the message was sent under
	payload any
	fn      func()
}

// link is one directed link with its serialization queue state and dynamic
// up/down fault state.
type link struct {
	cfg       LinkConfig
	busyUntil time.Duration // FIFO serialization: next transmission start
	dst       int32         // receiver node index
	down      bool          // fault state: messages are dropped while down
	epoch     uint32        // incremented on every down transition; in-flight
	// deliveries carry the epoch they were sent under and are dropped on
	// mismatch — a downed link loses what was on the wire.
}

// node is a simulated node.
type node struct {
	id        NodeID
	idx       int32
	handler   Handler
	neighbors []NodeID
	links     []link           // parallel to neighbors: the outgoing link per neighbor
	neighIdx  map[NodeID]int32 // neighbor ID → index into neighbors/links
	rng       *rand.Rand
	env       *simEnv
}

// Network is the discrete-event simulator. All scheduling is deterministic
// given the seed; runs are reproducible byte-for-byte.
type Network struct {
	nodes map[NodeID]*node
	order []NodeID
	byIdx []*node

	events []event // slot arena; recycled through free
	free   []int32 // vacant arena slots
	heap   []int32 // index heap over events, ordered by (at, seq)

	now       time.Duration
	seq       int64
	rng       *rand.Rand
	collector *trace.Collector
	delivered int64

	// Fault accounting (see fault.go). The flushed* shadows track what has
	// already been pushed to the obs counters, so flushObs adds deltas.
	faults          int64         // fault events processed (link down/up, restarts)
	restarts        int64         // node restarts processed
	dropped         int64         // messages dropped by faults or probabilistic loss
	lastFault       time.Duration // instant of the last processed fault event
	flushedFaults   int64
	flushedRestarts int64
	flushedDropped  int64
}

// New creates an empty simulated network with the given seed and metric
// collector (nil for an unmonitored run).
func New(seed int64, c *trace.Collector) *Network {
	if c == nil {
		c = trace.NewCollector(10 * time.Millisecond)
	}
	return &Network{
		nodes:     map[NodeID]*node{},
		rng:       rand.New(rand.NewSource(seed)),
		collector: c,
	}
}

// Collector returns the attached metric collector.
func (n *Network) Collector() *trace.Collector { return n.collector }

// Now returns the current virtual time.
func (n *Network) Now() time.Duration { return n.now }

// AddNode attaches a handler as a new node. Node IDs must be unique.
func (n *Network) AddNode(id NodeID, h Handler) error {
	if _, dup := n.nodes[id]; dup {
		return fmt.Errorf("simnet: duplicate node %s", id)
	}
	nd := &node{
		id:       id,
		idx:      int32(len(n.byIdx)),
		handler:  h,
		neighIdx: map[NodeID]int32{},
		rng:      rand.New(rand.NewSource(n.rng.Int63())),
	}
	nd.env = &simEnv{net: n, node: nd}
	n.nodes[id] = nd
	n.order = append(n.order, id)
	n.byIdx = append(n.byIdx, nd)
	return nil
}

// Connect creates a bidirectional link between two existing nodes with the
// same configuration in both directions. Self-links, duplicate links, and
// physically impossible configurations (negative latency/jitter/bandwidth,
// loss outside [0, 1]) are rejected.
func (n *Network) Connect(a, b NodeID, cfg LinkConfig) error {
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("%w (link %s–%s)", err, a, b)
	}
	if a == b {
		return fmt.Errorf("simnet: self-link %s–%s", a, b)
	}
	na, nb := n.nodes[a], n.nodes[b]
	if na == nil || nb == nil {
		return fmt.Errorf("simnet: connect %s–%s: unknown node", a, b)
	}
	if _, dup := na.neighIdx[b]; dup {
		return fmt.Errorf("simnet: duplicate link %s–%s", a, b)
	}
	na.neighIdx[b] = int32(len(na.neighbors))
	na.neighbors = append(na.neighbors, b)
	na.links = append(na.links, link{cfg: cfg, dst: nb.idx})
	nb.neighIdx[a] = int32(len(nb.neighbors))
	nb.neighbors = append(nb.neighbors, a)
	nb.links = append(nb.links, link{cfg: cfg, dst: na.idx})
	return nil
}

// scheduleEvent stamps the event with the next sequence number and enqueues
// it, reusing a free arena slot when one exists.
func (n *Network) scheduleEvent(ev event) {
	n.seq++
	ev.seq = n.seq
	var idx int32
	if last := len(n.free) - 1; last >= 0 {
		idx = n.free[last]
		n.free = n.free[:last]
		n.events[idx] = ev
	} else {
		idx = int32(len(n.events))
		n.events = append(n.events, ev)
	}
	n.heapPush(idx)
}

// schedule enqueues fn at time at (the timer path; kept for tests).
func (n *Network) schedule(at time.Duration, fn func()) {
	n.scheduleEvent(event{at: at, kind: evTimer, fn: fn})
}

// eventLess orders arena slots by (at, seq).
func (n *Network) eventLess(a, b int32) bool {
	ea, eb := &n.events[a], &n.events[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}

// heapPush inserts an arena index into the event heap.
func (n *Network) heapPush(idx int32) {
	h := append(n.heap, idx)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !n.eventLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	n.heap = h
}

// heapPop removes and returns the arena index of the earliest event.
func (n *Network) heapPop() int32 {
	h := n.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h) && n.eventLess(h[l], h[smallest]) {
			smallest = l
		}
		if r < len(h) && n.eventLess(h[r], h[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	n.heap = h
	return top
}

// RunResult summarizes a simulation run.
type RunResult struct {
	// Converged reports whether the event queue drained before the horizon
	// (protocol quiescence: no pending messages or timers).
	Converged bool
	// Time is the instant of the last processed event when converged, or
	// the horizon otherwise.
	Time time.Duration
	// Events is the number of processed events.
	Events int64
	// Delivered is the number of delivered protocol messages.
	Delivered int64
	// Dropped counts messages lost to faults: sent on (or in flight over) a
	// downed link, lost to probabilistic link loss, or voided by a node
	// restart.
	Dropped int64
	// Faults counts processed fault events (link down/up, node restarts).
	Faults int64
	// LastFault is the instant of the last processed fault event (zero when
	// Faults is zero). Time − LastFault is the re-convergence time under
	// churn when Converged.
	LastFault time.Duration
}

// Run starts every handler and processes events until quiescence or until
// the horizon. An oscillating protocol (BADGADGET) never quiesces and runs
// to the horizon; a convergent one drains the queue, and the drain time is
// its convergence time.
func (n *Network) Run(horizon time.Duration) RunResult {
	res, _ := n.RunContext(context.Background(), horizon)
	return res
}

// RunContext is Run with cancellation: the context is polled every event
// batch, so cancelling mid-simulation aborts a long (or never-converging)
// run with ctx.Err() and the partial result processed so far.
func (n *Network) RunContext(ctx context.Context, horizon time.Duration) (RunResult, error) {
	for _, id := range n.order {
		n.scheduleEvent(event{at: 0, kind: evStart, node: n.nodes[id].idx})
	}
	return n.resume(ctx, horizon)
}

// ctxCheckInterval is how many events are processed between context polls:
// frequent enough that cancellation lands within microseconds, rare enough
// that the atomic load cost is invisible.
const ctxCheckInterval = 64

// result assembles a RunResult from the loop state.
func (n *Network) result(converged bool, t time.Duration, processed int64) RunResult {
	return RunResult{
		Converged: converged, Time: t, Events: processed,
		Delivered: n.delivered, Dropped: n.dropped,
		Faults: n.faults, LastFault: n.lastFault,
	}
}

// resume continues processing (used by Run and by tests that inject events).
func (n *Network) resume(ctx context.Context, horizon time.Duration) (RunResult, error) {
	var processed int64
	var lastEvent time.Duration
	for len(n.heap) > 0 {
		if processed%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				n.flushObs(processed)
				return n.result(false, n.now, processed), err
			}
		}
		if n.events[n.heap[0]].at > horizon {
			n.now = horizon
			n.flushObs(processed)
			return n.result(false, horizon, processed), nil
		}
		idx := n.heapPop()
		ev := n.events[idx]     // copy out: dispatch below may grow the arena
		n.events[idx] = event{} // clear the slot so payload/fn don't leak
		n.free = append(n.free, idx)
		if ev.at > n.now {
			n.now = ev.at
		}
		lastEvent = n.now
		switch ev.kind {
		case evStart:
			nd := n.byIdx[ev.node]
			nd.handler.Start(nd.env)
		case evTimer:
			ev.fn()
		case evDeliver:
			from := n.byIdx[ev.from]
			l := &from.links[ev.li]
			if l.down || l.epoch != ev.epoch {
				// The link went down while the message was on the wire (or is
				// still down): the delivery is lost.
				n.dropped++
				break
			}
			dst := n.byIdx[ev.node]
			n.collector.RecordRecv(string(dst.id), int(ev.size))
			n.delivered++
			dst.handler.Receive(dst.env, from.id, ev.payload)
		case evLinkDown:
			n.applyLinkState(ev.node, ev.from, false)
		case evLinkUp:
			n.applyLinkState(ev.node, ev.from, true)
		case evRestart:
			n.applyRestart(ev.node)
		}
		processed++
	}
	n.collector.MarkConverged(lastEvent)
	n.flushObs(processed)
	return n.result(true, lastEvent, processed), nil
}

// deliver models the link: FIFO serialization at the sender, then
// propagation latency plus jitter. The receive itself is a typed event
// record, not a closure, so the send path allocates nothing in steady
// state.
func (n *Network) deliver(from *node, to NodeID, payload any, size int) {
	li, ok := from.neighIdx[to]
	if !ok {
		panic(fmt.Sprintf("simnet: %s sent to non-neighbor %s", from.id, to))
	}
	l := &from.links[li]
	n.collector.RecordSend(string(from.id), size, n.now)
	if l.down {
		// The sender doesn't know the link is down (no control plane in the
		// simulator): the transmission is silently lost, like a frame sent
		// into a dead cable.
		n.dropped++
		return
	}
	if l.cfg.Loss > 0 && n.rng.Float64() < l.cfg.Loss {
		n.dropped++
		return
	}
	txStart := n.now
	if l.busyUntil > txStart {
		txStart = l.busyUntil
	}
	var ser time.Duration
	if l.cfg.Bandwidth > 0 {
		ser = time.Duration(float64(size*8) / float64(l.cfg.Bandwidth) * float64(time.Second))
	}
	txEnd := txStart + ser
	l.busyUntil = txEnd
	prop := l.cfg.Latency
	if l.cfg.Jitter > 0 {
		prop += time.Duration(n.rng.Int63n(int64(l.cfg.Jitter)))
	}
	n.scheduleEvent(event{
		at:      txEnd + prop,
		kind:    evDeliver,
		node:    l.dst,
		from:    from.idx,
		size:    int32(size),
		li:      li,
		epoch:   l.epoch,
		payload: payload,
	})
}

// simEnv implements Env for a simulated node.
type simEnv struct {
	net  *Network
	node *node
}

func (e *simEnv) Self() NodeID       { return e.node.id }
func (e *simEnv) Now() time.Duration { return e.net.now }
func (e *simEnv) Rand() *rand.Rand   { return e.node.rng }

// Neighbors returns the node's cached adjacency; the slice is shared and
// must not be modified by the caller.
func (e *simEnv) Neighbors() []NodeID { return e.node.neighbors }

func (e *simEnv) Send(to NodeID, payload any, size int) {
	e.net.deliver(e.node, to, payload, size)
}

func (e *simEnv) Schedule(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.net.scheduleEvent(event{at: e.net.now + d, kind: evTimer, fn: fn})
}
