package simnet

import (
	"context"
	"encoding/gob"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"fsr/internal/trace"
)

// This file implements deployment mode: the same Handler protocol code runs
// unmodified over real TCP sockets on the loopback interface, mirroring the
// paper's RapidNet deployment mode ("simulation and deployment modes use
// the same compiled code base, with a configuration flag indicating running
// the network stack in simulation or using actual sockets", §VI-A).
//
// Each node owns a listener and one outbound TCP connection per neighbor;
// payloads travel as gob-encoded envelopes. Protocol payload types must be
// registered with gob by the protocol package (see RegisterPayload).
// Convergence is detected by global quiescence: no in-flight messages, no
// pending timers, and no activity for an idle window.

// RegisterPayload registers a payload type for deployment-mode transport.
func RegisterPayload(v any) { gob.Register(v) }

// envelope is the wire format.
type envelope struct {
	From    NodeID
	Size    int // logical wire size, for metric comparability with sim mode
	Payload any
}

// Deployment runs a set of handlers over loopback TCP.
type Deployment struct {
	collector *trace.Collector
	nodes     map[NodeID]*tcpNode
	order     []NodeID
	links     map[[2]NodeID]bool
	start     time.Time

	pending      atomic.Int64 // in-flight messages + scheduled timers
	lastActivity atomic.Int64 // nanoseconds since start
	stopped      atomic.Bool
	wg           sync.WaitGroup
}

// tcpNode is one deployment-mode node.
type tcpNode struct {
	dep       *Deployment
	id        NodeID
	handler   Handler
	neighbors []NodeID
	listener  net.Listener
	conns     map[NodeID]*gob.Encoder
	connMu    sync.Mutex
	rawConns  []net.Conn
	exec      chan func()
	rng       *rand.Rand
}

// NewDeployment creates an empty deployment with the given metric collector.
func NewDeployment(c *trace.Collector) *Deployment {
	if c == nil {
		c = trace.NewCollector(10 * time.Millisecond)
	}
	return &Deployment{
		collector: c,
		nodes:     map[NodeID]*tcpNode{},
		links:     map[[2]NodeID]bool{},
	}
}

// Collector returns the attached metric collector.
func (d *Deployment) Collector() *trace.Collector { return d.collector }

// AddNode attaches a handler as a new node.
func (d *Deployment) AddNode(id NodeID, h Handler) error {
	if _, dup := d.nodes[id]; dup {
		return fmt.Errorf("simnet: duplicate node %s", id)
	}
	d.nodes[id] = &tcpNode{
		dep:     d,
		id:      id,
		handler: h,
		conns:   map[NodeID]*gob.Encoder{},
		exec:    make(chan func(), 4096),
		rng:     rand.New(rand.NewSource(int64(len(d.nodes)) + 1)),
	}
	d.order = append(d.order, id)
	return nil
}

// Connect declares a bidirectional adjacency. Deployment links carry no
// artificial latency or bandwidth shaping: timing reflects the real network
// stack, as on the paper's testbed.
func (d *Deployment) Connect(a, b NodeID) error {
	na, nb := d.nodes[a], d.nodes[b]
	if na == nil || nb == nil {
		return fmt.Errorf("simnet: connect %s–%s: unknown node", a, b)
	}
	if d.links[[2]NodeID{a, b}] {
		return fmt.Errorf("simnet: duplicate link %s–%s", a, b)
	}
	d.links[[2]NodeID{a, b}] = true
	d.links[[2]NodeID{b, a}] = true
	na.neighbors = append(na.neighbors, b)
	nb.neighbors = append(nb.neighbors, a)
	return nil
}

// Run starts listeners, dials the mesh, runs every handler, and waits for
// quiescence (no in-flight work for idleWindow) or the horizon. It returns
// the convergence result measured in wall-clock time since start.
func (d *Deployment) Run(horizon, idleWindow time.Duration) (RunResult, error) {
	return d.RunContext(context.Background(), horizon, idleWindow)
}

// RunContext is Run with cancellation: a cancelled context tears the
// deployment down and returns ctx.Err() together with the partial result.
func (d *Deployment) RunContext(ctx context.Context, horizon, idleWindow time.Duration) (RunResult, error) {
	if idleWindow <= 0 {
		idleWindow = 200 * time.Millisecond
	}
	// Phase 1: listeners.
	for _, id := range d.order {
		nd := d.nodes[id]
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			d.shutdown()
			return RunResult{}, fmt.Errorf("simnet: listen for %s: %w", id, err)
		}
		nd.listener = l
	}
	// Phase 2: dial one outbound connection per directed adjacency. The
	// first byte stream element identifies the dialer.
	for _, id := range d.order {
		nd := d.nodes[id]
		for _, nb := range nd.neighbors {
			peer := d.nodes[nb]
			conn, err := net.Dial("tcp", peer.listener.Addr().String())
			if err != nil {
				d.shutdown()
				return RunResult{}, fmt.Errorf("simnet: dial %s→%s: %w", id, nb, err)
			}
			enc := gob.NewEncoder(conn)
			if err := enc.Encode(id); err != nil {
				d.shutdown()
				return RunResult{}, fmt.Errorf("simnet: handshake %s→%s: %w", id, nb, err)
			}
			nd.connMu.Lock()
			nd.conns[nb] = enc
			nd.rawConns = append(nd.rawConns, conn)
			nd.connMu.Unlock()
		}
	}
	d.start = time.Now()
	d.touch()
	// Phase 3: executors, acceptors, handlers.
	for _, id := range d.order {
		nd := d.nodes[id]
		d.wg.Add(1)
		go nd.executor()
		go nd.acceptLoop()
	}
	for _, id := range d.order {
		nd := d.nodes[id]
		d.pending.Add(1)
		nd.exec <- func() {
			defer d.pending.Add(-1)
			nd.handler.Start(&tcpEnv{node: nd})
		}
	}
	// Phase 4: quiescence detection.
	deadline := time.Now().Add(horizon)
	ticker := time.NewTicker(5 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			d.shutdown()
			return RunResult{Converged: false, Time: time.Since(d.start)}, ctx.Err()
		case <-ticker.C:
		}
		if time.Now().After(deadline) {
			d.shutdown()
			return RunResult{Converged: false, Time: horizon}, nil
		}
		last := time.Duration(d.lastActivity.Load())
		if d.pending.Load() == 0 && time.Since(d.start)-last >= idleWindow {
			d.collector.MarkConverged(last)
			d.shutdown()
			return RunResult{Converged: true, Time: last}, nil
		}
	}
}

func (d *Deployment) touch() {
	d.lastActivity.Store(int64(time.Since(d.start)))
}

// shutdown closes sockets and executors.
func (d *Deployment) shutdown() {
	if !d.stopped.CompareAndSwap(false, true) {
		return
	}
	for _, nd := range d.nodes {
		if nd.listener != nil {
			nd.listener.Close()
		}
		nd.connMu.Lock()
		for _, c := range nd.rawConns {
			c.Close()
		}
		nd.connMu.Unlock()
		close(nd.exec)
	}
	d.wg.Wait()
}

// executor runs the node's callbacks single-threaded, preserving the
// protocol-code concurrency model of simulation mode.
func (nd *tcpNode) executor() {
	defer nd.dep.wg.Done()
	for fn := range nd.exec {
		fn()
	}
}

// post schedules fn on the executor, tolerating shutdown races.
func (nd *tcpNode) post(fn func()) {
	defer func() { recover() }() // send on closed channel during shutdown
	nd.exec <- fn
}

// acceptLoop accepts inbound connections and spawns readers.
func (nd *tcpNode) acceptLoop() {
	for {
		conn, err := nd.listener.Accept()
		if err != nil {
			return
		}
		nd.connMu.Lock()
		nd.rawConns = append(nd.rawConns, conn)
		nd.connMu.Unlock()
		go nd.readLoop(conn)
	}
}

// readLoop decodes envelopes from one inbound connection and posts them to
// the executor.
func (nd *tcpNode) readLoop(conn net.Conn) {
	dec := gob.NewDecoder(conn)
	var from NodeID
	if err := dec.Decode(&from); err != nil {
		return
	}
	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			return
		}
		d := nd.dep
		if d.stopped.Load() {
			return
		}
		d.collector.RecordRecv(string(nd.id), env.Size)
		d.touch()
		e := env
		nd.post(func() {
			defer d.pending.Add(-1)
			nd.handler.Receive(&tcpEnv{node: nd}, e.From, e.Payload)
			d.touch()
		})
	}
}

// tcpEnv implements Env over the deployment runtime.
type tcpEnv struct {
	node *tcpNode
}

func (e *tcpEnv) Self() NodeID       { return e.node.id }
func (e *tcpEnv) Now() time.Duration { return time.Since(e.node.dep.start) }
func (e *tcpEnv) Rand() *rand.Rand   { return e.node.rng }

func (e *tcpEnv) Neighbors() []NodeID {
	out := make([]NodeID, len(e.node.neighbors))
	copy(out, e.node.neighbors)
	return out
}

func (e *tcpEnv) Send(to NodeID, payload any, size int) {
	nd := e.node
	d := nd.dep
	nd.connMu.Lock()
	enc := nd.conns[to]
	nd.connMu.Unlock()
	if enc == nil {
		panic(fmt.Sprintf("simnet: %s sent to non-neighbor %s", nd.id, to))
	}
	d.pending.Add(1)
	d.collector.RecordSend(string(nd.id), size, e.Now())
	d.touch()
	if err := enc.Encode(envelope{From: nd.id, Size: size, Payload: payload}); err != nil {
		// Connection torn down during shutdown: drop and rebalance.
		d.pending.Add(-1)
	}
}

func (e *tcpEnv) Schedule(d time.Duration, fn func()) {
	dep := e.node.dep
	nd := e.node
	dep.pending.Add(1)
	time.AfterFunc(d, func() {
		if dep.stopped.Load() {
			dep.pending.Add(-1)
			return
		}
		nd.post(func() {
			defer dep.pending.Add(-1)
			fn()
			dep.touch()
		})
	})
}
