// Simulator counters on the process-global obs registry, flushed once per
// run (not per event) so the allocation-free event loop stays untouched.

package simnet

import "fsr/internal/obs"

var (
	obsEvents = obs.Default().Counter("fsr_simnet_events_total",
		"Events popped from the simulation heap.")
	obsArenaHighWater = obs.Default().Gauge("fsr_simnet_arena_high_water",
		"Largest event-arena size reached by any simulation run.")
	obsFaults = obs.Default().Counter("fsr_simnet_faults_injected_total",
		"Fault events processed (link down/up transitions and node restarts).")
	obsDropped = obs.Default().Counter("fsr_simnet_msgs_dropped_total",
		"Messages dropped by downed links, probabilistic loss, or restarts.")
	obsRestarts = obs.Default().Counter("fsr_simnet_node_restarts_total",
		"Node restarts processed.")
)

// flushObs records one finished (or aborted) resume loop: the events it
// processed, the arena high-water mark it drove, and its fault totals.
// Counters are flushed as deltas since the previous flush so resume can be
// re-entered without double-counting.
func (n *Network) flushObs(processed int64) {
	if processed > 0 {
		obsEvents.Add(processed)
	}
	obsArenaHighWater.SetMax(float64(len(n.events)))
	if d := n.faults - n.flushedFaults; d > 0 {
		obsFaults.Add(d)
		n.flushedFaults = n.faults
	}
	if d := n.dropped - n.flushedDropped; d > 0 {
		obsDropped.Add(d)
		n.flushedDropped = n.dropped
	}
	if d := n.restarts - n.flushedRestarts; d > 0 {
		obsRestarts.Add(d)
		n.flushedRestarts = n.restarts
	}
}
