// Simulator counters on the process-global obs registry, flushed once per
// run (not per event) so the allocation-free event loop stays untouched.

package simnet

import "fsr/internal/obs"

var (
	obsEvents = obs.Default().Counter("fsr_simnet_events_total",
		"Events popped from the simulation heap.")
	obsArenaHighWater = obs.Default().Gauge("fsr_simnet_arena_high_water",
		"Largest event-arena size reached by any simulation run.")
)

// flushObs records one finished (or aborted) resume loop: the events it
// processed and the arena high-water mark it drove.
func (n *Network) flushObs(processed int64) {
	if processed > 0 {
		obsEvents.Add(processed)
	}
	obsArenaHighWater.SetMax(float64(len(n.events)))
}
