// Fault injection: scheduled link up/down transitions, node restarts, and
// arbitrary per-node calls, all flowing through the same value-arena event
// queue as protocol traffic so faulted runs stay deterministic and
// reproducible from the seed.
//
// Link state is per directed pair but always flipped in both directions
// (links fail whole, like a cut cable). Each directed link carries an epoch
// counter bumped on every down transition; deliveries record the epoch they
// were sent under and are discarded on mismatch, so taking a link down
// drops what was on the wire in O(1) without scanning the heap.

package simnet

import (
	"fmt"
	"time"
)

// FaultKind enumerates the injectable fault primitives.
type FaultKind uint8

const (
	// FaultLinkDown takes the A↔B link down: in-flight messages on it are
	// lost, and messages sent while it is down are lost.
	FaultLinkDown FaultKind = iota
	// FaultLinkUp restores the A↔B link.
	FaultLinkUp
	// FaultRestart restarts node A: in-flight messages to and from it are
	// lost, its handler state is cleared (via Resetter when implemented),
	// and its Start hook runs again.
	FaultRestart
)

// String names the fault kind for reports and logs.
func (k FaultKind) String() string {
	switch k {
	case FaultLinkDown:
		return "link-down"
	case FaultLinkUp:
		return "link-up"
	case FaultRestart:
		return "restart"
	}
	return fmt.Sprintf("fault(%d)", uint8(k))
}

// FaultEvent is one injectable fault. A and B are the link endpoints for
// link faults; B is ignored for restarts.
type FaultEvent struct {
	Kind FaultKind
	A, B NodeID
}

// LinkObserver is an optional Handler extension: nodes implementing it are
// told when one of their links changes state, mirroring a BGP session going
// down (drop routes learned over it) and coming back up (re-advertise the
// full table). Without it, a protocol that only sends on change would never
// repair the messages lost during an outage.
type LinkObserver interface {
	// LinkDown reports that the link to neighbor went down.
	LinkDown(env Env, neighbor NodeID)
	// LinkUp reports that the link to neighbor came back up.
	LinkUp(env Env, neighbor NodeID)
}

// Resetter is an optional Handler extension: Reset clears all protocol
// state, returning the handler to its pre-Start condition. Node restarts
// call it before re-invoking Start.
type Resetter interface {
	Reset()
}

// ScheduleFault enqueues a fault at virtual time at. Referencing an unknown
// node or a non-existent link is an error; at must not be in the past.
func (n *Network) ScheduleFault(at time.Duration, f FaultEvent) error {
	if at < n.now {
		return fmt.Errorf("simnet: fault at %v scheduled in the past (now %v)", at, n.now)
	}
	na := n.nodes[f.A]
	if na == nil {
		return fmt.Errorf("simnet: fault %s: unknown node %s", f.Kind, f.A)
	}
	ev := event{at: at, node: na.idx}
	switch f.Kind {
	case FaultLinkDown, FaultLinkUp:
		nb := n.nodes[f.B]
		if nb == nil {
			return fmt.Errorf("simnet: fault %s: unknown node %s", f.Kind, f.B)
		}
		if _, ok := na.neighIdx[f.B]; !ok {
			return fmt.Errorf("simnet: fault %s: no link %s–%s", f.Kind, f.A, f.B)
		}
		ev.from = nb.idx
		if f.Kind == FaultLinkDown {
			ev.kind = evLinkDown
		} else {
			ev.kind = evLinkUp
		}
	case FaultRestart:
		ev.kind = evRestart
	default:
		return fmt.Errorf("simnet: unknown fault kind %d", f.Kind)
	}
	n.scheduleEvent(ev)
	return nil
}

// ScheduleCall enqueues fn to run on node id at virtual time at, with the
// node's Env — the hook mid-run policy changes are injected through.
func (n *Network) ScheduleCall(at time.Duration, id NodeID, fn func(Env)) error {
	if at < n.now {
		return fmt.Errorf("simnet: call at %v scheduled in the past (now %v)", at, n.now)
	}
	nd := n.nodes[id]
	if nd == nil {
		return fmt.Errorf("simnet: schedule call: unknown node %s", id)
	}
	env := nd.env
	n.scheduleEvent(event{at: at, kind: evTimer, fn: func() { fn(env) }})
	return nil
}

// LinkState reports whether the directed a→b link is currently up.
func (n *Network) LinkState(a, b NodeID) (up bool, err error) {
	na := n.nodes[a]
	if na == nil {
		return false, fmt.Errorf("simnet: unknown node %s", a)
	}
	li, ok := na.neighIdx[b]
	if !ok {
		return false, fmt.Errorf("simnet: no link %s–%s", a, b)
	}
	return !na.links[li].down, nil
}

// setDirected flips one direction of a link, bumping the epoch on a down
// transition. Reports whether the state actually changed.
func setDirected(from, to *node, up bool) bool {
	l := &from.links[from.neighIdx[to.id]]
	if l.down == !up {
		return false
	}
	l.down = !up
	if !up {
		l.epoch++
	}
	return true
}

// applyLinkState processes a link up/down fault event: both directions flip
// together, and handlers implementing LinkObserver on either endpoint are
// notified (a-side first, then b-side, for determinism). Redundant
// transitions (downing a down link) are counted as faults but trigger no
// callbacks.
func (n *Network) applyLinkState(a, b int32, up bool) {
	n.faults++
	n.lastFault = n.now
	na, nb := n.byIdx[a], n.byIdx[b]
	changed := setDirected(na, nb, up)
	setDirected(nb, na, up)
	if !changed {
		return
	}
	notifyLink(na, nb.id, up)
	notifyLink(nb, na.id, up)
}

// notifyLink invokes the node's LinkObserver hook, if implemented.
func notifyLink(nd *node, neighbor NodeID, up bool) {
	obs, ok := nd.handler.(LinkObserver)
	if !ok {
		return
	}
	if up {
		obs.LinkUp(nd.env, neighbor)
	} else {
		obs.LinkDown(nd.env, neighbor)
	}
}

// applyRestart processes a node restart: every in-flight message to or from
// the node is voided (epoch bumps on all incident directed links), its
// neighbors see the adjacency bounce (LinkDown, then LinkUp after the node
// is back), and the node's own handler state is cleared via Resetter before
// Start runs again. Links already down by a separate fault stay down and
// their neighbors are not re-notified.
func (n *Network) applyRestart(idx int32) {
	n.faults++
	n.restarts++
	n.lastFault = n.now
	nd := n.byIdx[idx]
	for i := range nd.links {
		nb := n.byIdx[nd.links[i].dst]
		nd.links[i].epoch++
		back := &nb.links[nb.neighIdx[nd.id]]
		back.epoch++
		if !nd.links[i].down {
			notifyLink(nb, nd.id, false)
		}
	}
	if r, ok := nd.handler.(Resetter); ok {
		r.Reset()
	}
	nd.handler.Start(nd.env)
	for i := range nd.links {
		if !nd.links[i].down {
			notifyLink(n.byIdx[nd.links[i].dst], nd.id, true)
		}
	}
}
