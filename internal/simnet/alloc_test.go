package simnet

import (
	"context"
	"testing"
	"time"
)

// bouncer returns every received payload to its sender until its budget is
// exhausted, allocating nothing itself.
type bouncer struct{ remaining int }

func (b *bouncer) Start(env Env) {}
func (b *bouncer) Receive(env Env, from NodeID, payload any) {
	if b.remaining > 0 {
		b.remaining--
		env.Send(from, payload, 64)
	}
}

// TestSimulationAllocationBudget pins the event hot path to its allocation
// budget: once the arena, heap, and collector are warm, a 1000-event
// exchange must run allocation-free (the budget of 8 covers incidental
// growth only). This is the regression guard for the value-based event
// arena — a per-event closure or heap pointer would blow it immediately.
func TestSimulationAllocationBudget(t *testing.T) {
	ha, hb := &bouncer{}, &bouncer{}
	net := New(1, nil)
	if err := net.AddNode("a", ha); err != nil {
		t.Fatal(err)
	}
	if err := net.AddNode("b", hb); err != nil {
		t.Fatal(err)
	}
	// Ideal link: zero latency keeps virtual time pinned, so the collector's
	// time buckets don't grow across runs and the measurement isolates the
	// scheduler itself.
	if err := net.Connect("a", "b", LinkConfig{}); err != nil {
		t.Fatal(err)
	}
	payload := &struct{ n int }{42}
	na := net.nodes["a"]
	kick := func() { na.env.Send("b", payload, 64) }
	ctx := context.Background()
	const bounces = 1000
	run := func() {
		ha.remaining, hb.remaining = bounces/2, bounces/2
		net.schedule(net.now, kick)
		res, err := net.resume(ctx, net.now+time.Hour)
		if err != nil || !res.Converged {
			t.Fatalf("run: converged=%v err=%v", res.Converged, err)
		}
	}
	run() // warm the arena, heap, and collector
	if got := testing.AllocsPerRun(5, run); got > 8 {
		t.Errorf("1000-event run allocates %.1f objects, budget is 8", got)
	}
	// The arena must not retain payloads or closures after the events fire
	// (the slice-retention leak of the old pointer heap).
	for i := range net.events {
		if net.events[i].payload != nil || net.events[i].fn != nil {
			t.Fatalf("arena slot %d retains payload/closure after processing", i)
		}
	}
}

// TestDeterminismWithArena re-checks byte-for-byte reproducibility across
// two networks driven identically: the index-heap scheduler must order
// equal-time events by sequence exactly as the old pointer heap did.
func TestDeterminismWithArena(t *testing.T) {
	runOnce := func() (time.Duration, int64) {
		ha, hb := &bouncer{remaining: 50}, &bouncer{remaining: 50}
		net := New(7, nil)
		_ = net.AddNode("a", ha)
		_ = net.AddNode("b", hb)
		_ = net.Connect("a", "b", LinkConfig{Latency: 3 * time.Millisecond, Jitter: time.Millisecond, Bandwidth: 1e6})
		na := net.nodes["a"]
		net.schedule(0, func() { na.env.Send("b", 1, 100) })
		res := net.Run(time.Minute)
		return res.Time, res.Delivered
	}
	t1, d1 := runOnce()
	t2, d2 := runOnce()
	if t1 != t2 || d1 != d2 {
		t.Fatalf("runs diverged: (%v,%d) vs (%v,%d)", t1, d1, t2, d2)
	}
	if d1 != 101 {
		t.Fatalf("want 101 deliveries, got %d", d1)
	}
}
