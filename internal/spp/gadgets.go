package spp

import "strconv"

// This file holds the concrete SPP instances the paper analyzes: the
// six-node iBGP configuration of Figure 3 (after Flavel & Roughan) and the
// classic eBGP gadgets of Griffin, Shepherd and Wilfong used in §VI-C.

// Figure3IBGP builds the iBGP configuration instance of the paper's
// Figure 3: route reflectors a, b, c and egress nodes d, e, f holding
// externally learned routes r1, r2, r3. Each reflector prefers the route
// through another reflector's client over its own client's route, forming
// the preference cycle that makes the system oscillate.
//
// The analysis of this instance (§IV-C) generates eighteen constraints and
// is unsat; the minimal core implicates the rankings of a, b and c but not
// d, e, f.
func Figure3IBGP() *Instance {
	in := NewInstance("fig3-ibgp")
	// iBGP sessions with the IGP costs drawn in the figure.
	in.AddSession("a", "b", 10)
	in.AddSession("b", "c", 10)
	in.AddSession("c", "a", 10)
	in.AddSession("a", "d", 5)
	in.AddSession("b", "e", 5)
	in.AddSession("c", "f", 5)
	// Extra IGP adjacency (dotted lines) carried for completeness; they do
	// not add permitted paths.
	in.AddSession("d", "e", 0)
	in.AddSession("e", "f", 0)

	in.Rank("a", P("a", "b", "e", "r2"), P("a", "d", "r1"))
	in.Rank("b", P("b", "c", "f", "r3"), P("b", "e", "r2"))
	in.Rank("c", P("c", "a", "d", "r1"), P("c", "f", "r3"))
	in.Rank("d", P("d", "r1"), P("d", "a", "b", "e", "r2"), P("d", "a", "c", "f", "r3"))
	in.Rank("e", P("e", "r2"), P("e", "b", "a", "d", "r1"), P("e", "b", "c", "f", "r3"))
	in.Rank("f", P("f", "r3"), P("f", "c", "b", "e", "r2"), P("f", "c", "a", "d", "r1"))
	// Paths d.a.c.f.r3, e.b.a.d.r1, f.c.b.e.r2 need the a↔c, b↔a, c↔b
	// sessions, present above.
	return in
}

// Figure3IBGPFixed is Figure3IBGP with the reflector preference cycle
// removed: each reflector prefers its own client's route, as a sane iBGP
// configuration would. The paper validates the fix by re-running the solver
// and obtaining sat (§IV-C).
func Figure3IBGPFixed() *Instance {
	in := Figure3IBGP()
	in.Name = "fig3-ibgp-fixed"
	in.Rank("a", P("a", "d", "r1"), P("a", "b", "e", "r2"))
	in.Rank("b", P("b", "e", "r2"), P("b", "c", "f", "r3"))
	in.Rank("c", P("c", "f", "r3"), P("c", "a", "d", "r1"))
	return in
}

// Disagree builds the two-node DISAGREE gadget: each node prefers the path
// through the other over its own direct route. DISAGREE has two stable
// states and can oscillate between them before converging; its algebra is
// not strictly monotonic, so FSR reports it unsafe (§VI-C).
func Disagree() *Instance {
	in := NewInstance("disagree")
	in.AddSession("1", "2", 0)
	in.Rank("1", P("1", "2", "r2"), P("1", "r1"))
	in.Rank("2", P("2", "1", "r1"), P("2", "r2"))
	return in
}

// BadGadget builds the three-node BADGADGET: each node i prefers the route
// through its clockwise neighbor over its own direct route, forming a
// dispute wheel with no stable assignment. The protocol oscillates forever;
// FSR's analysis is unsat (§VI-C).
func BadGadget() *Instance {
	in := NewInstance("badgadget")
	in.AddSession("1", "2", 0)
	in.AddSession("2", "3", 0)
	in.AddSession("3", "1", 0)
	in.Rank("1", P("1", "2", "r2"), P("1", "r1"))
	in.Rank("2", P("2", "3", "r3"), P("2", "r2"))
	in.Rank("3", P("3", "1", "r1"), P("3", "r3"))
	return in
}

// GoodGadget builds a three-node GOODGADGET: nodes may prefer indirect
// routes, but the preferences admit a strictly monotonic extension, so the
// system provably converges. Node 1 prefers the longer route through 3,
// which exercises the route-recomputation behavior §VI-C observes (a
// previously selected best path is overwritten by a longer, more preferred
// one).
func GoodGadget() *Instance {
	in := NewInstance("goodgadget")
	in.AddSession("1", "2", 0)
	in.AddSession("2", "3", 0)
	in.AddSession("3", "1", 0)
	in.Rank("1", P("1", "3", "r3"), P("1", "r1"))
	in.Rank("2", P("2", "1", "r1"), P("2", "r2"))
	in.Rank("3", P("3", "r3"))
	return in
}

// ChainGadget builds a safe chain instance of the given length for scaling
// studies: node i prefers the direct route, with the route via i+1 as
// backup. Used by the gadget-count sweeps of §VI-C.
func ChainGadget(n int) *Instance {
	in := NewInstance("chain")
	if n < 2 {
		n = 2
	}
	name := func(i int) Node { return Node(nodeLabel(i)) }
	orig := func(i int) Node { return Node("r" + strconv.Itoa(i)) }
	for i := 0; i < n-1; i++ {
		in.AddSession(name(i), name(i+1), 0)
	}
	for i := 0; i < n; i++ {
		direct := Path{name(i), orig(i)}
		if i+1 < n {
			via := Path{name(i), name(i + 1), orig(i + 1)}
			in.Rank(name(i), direct, via)
		} else {
			in.Rank(name(i), direct)
		}
	}
	return in
}

// nodeLabel yields stable single-token node names n0, n1, ….
func nodeLabel(i int) string { return "n" + strconv.Itoa(i) }
