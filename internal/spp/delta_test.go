package spp

import (
	"context"
	"fmt"
	"testing"

	"fsr/internal/analysis"
)

// requireVerifyParity runs the delta path and the full-pipeline oracle on
// the verifier's current instance and fails unless verdict, model, core,
// constraint counts, and suspect nodes agree bit for bit (Stats excluded:
// durations and graph sizes legitimately differ).
func requireVerifyParity(t *testing.T, label string, v *DeltaVerifier) {
	t.Helper()
	got, gotSus, gotErr := v.Verify(context.Background())
	want, wantSus, wantErr := v.VerifyFull(context.Background())
	if (gotErr != nil) != (wantErr != nil) {
		t.Fatalf("%s: error mismatch: delta %v, oracle %v", label, gotErr, wantErr)
	}
	if gotErr != nil {
		return
	}
	if got.Algebra != want.Algebra || got.Condition != want.Condition {
		t.Fatalf("%s: header mismatch: (%s, %s) vs (%s, %s)",
			label, got.Algebra, got.Condition, want.Algebra, want.Condition)
	}
	if got.Sat != want.Sat {
		t.Fatalf("%s: Sat = %v, oracle %v", label, got.Sat, want.Sat)
	}
	if got.NumPreference != want.NumPreference || got.NumMonotonicity != want.NumMonotonicity {
		t.Fatalf("%s: counts (%d pref, %d mono), oracle (%d, %d)",
			label, got.NumPreference, got.NumMonotonicity, want.NumPreference, want.NumMonotonicity)
	}
	if len(got.Model) != len(want.Model) {
		t.Fatalf("%s: model size %d, oracle %d\n got: %v\nwant: %v",
			label, len(got.Model), len(want.Model), got.Model, want.Model)
	}
	for k, val := range want.Model {
		if got.Model[k] != val {
			t.Fatalf("%s: model[%s] = %d, oracle %d", label, k, got.Model[k], val)
		}
	}
	if len(got.Core) != len(want.Core) {
		t.Fatalf("%s: core size %d, oracle %d\n got: %v\nwant: %v",
			label, len(got.Core), len(want.Core), got.Core, want.Core)
	}
	for i := range want.Core {
		if got.Core[i] != want.Core[i] {
			t.Fatalf("%s: Core[%d] = %v, oracle %v", label, i, got.Core[i], want.Core[i])
		}
	}
	if len(gotSus) != len(wantSus) {
		t.Fatalf("%s: suspects %v, oracle %v", label, gotSus, wantSus)
	}
	for i := range wantSus {
		if gotSus[i] != wantSus[i] {
			t.Fatalf("%s: suspects %v, oracle %v", label, gotSus, wantSus)
		}
	}
	_ = analysis.StrictMonotonicity // keep the import obvious at a glance
}

// gadgetOp is one scripted edit in a table-driven parity sequence.
type gadgetOp struct {
	name  string
	apply func(v *DeltaVerifier) error
}

func rerank(n string, paths ...Path) gadgetOp {
	return gadgetOp{
		name:  "rerank " + n,
		apply: func(v *DeltaVerifier) error { return v.ReRank(Node(n), paths...) },
	}
}

func dropSession(a, b string) gadgetOp {
	return gadgetOp{
		name:  fmt.Sprintf("drop %s-%s", a, b),
		apply: func(v *DeltaVerifier) error { return v.DropSession(Node(a), Node(b)) },
	}
}

func addSession(a, b string, cost int) gadgetOp {
	return gadgetOp{
		name:  fmt.Sprintf("add %s-%s", a, b),
		apply: func(v *DeltaVerifier) error { return v.AddSession(Node(a), Node(b), cost) },
	}
}

// TestDeltaVerifierGadgets drives edit sequences over the gadget library
// and checks delta-vs-oracle parity after every step. The sequences cross
// the safe/unsafe boundary in both directions: Figure 3's broken reflector
// cycle is repaired the way Figure3IBGPFixed does (and broken again),
// GOODGADGET is morphed into BADGADGET's dispute wheel, sessions fail and
// recover.
func TestDeltaVerifierGadgets(t *testing.T) {
	cases := []struct {
		name string
		in   *Instance
		ops  []gadgetOp
	}{
		{
			name: "fig3-repair-and-break",
			in:   Figure3IBGP(),
			ops: []gadgetOp{
				// The Figure3IBGPFixed repair, one reflector at a time.
				rerank("a", P("a", "d", "r1"), P("a", "b", "e", "r2")),
				rerank("b", P("b", "e", "r2"), P("b", "c", "f", "r3")),
				rerank("c", P("c", "f", "r3"), P("c", "a", "d", "r1")),
				// Break reflector a again (the paper's broken ranking).
				rerank("a", P("a", "b", "e", "r2"), P("a", "d", "r1")),
			},
		},
		{
			name: "disagree-session-failure",
			in:   Disagree(),
			ops: []gadgetOp{
				// Losing the only session prunes both indirect paths.
				dropSession("1", "2"),
				// Recovery: session back, rankings restored.
				addSession("1", "2", 0),
				rerank("1", P("1", "2", "r2"), P("1", "r1")),
				rerank("2", P("2", "1", "r1"), P("2", "r2")),
			},
		},
		{
			name: "goodgadget-to-badgadget",
			in:   GoodGadget(),
			ops: []gadgetOp{
				// Rerank node by node until this is BADGADGET's wheel.
				rerank("1", P("1", "2", "r2"), P("1", "r1")),
				rerank("2", P("2", "3", "r3"), P("2", "r2")),
				rerank("3", P("3", "1", "r1"), P("3", "r3")),
				// And break the wheel at node 2.
				rerank("2", P("2", "r2"), P("2", "3", "r3")),
			},
		},
		{
			name: "chain-extend",
			in:   ChainGadget(6),
			ops: []gadgetOp{
				// Mid-chain preference flip: prefer the relay over the direct
				// route.
				rerank("n3", P("n3", "n4", "r4"), P("n3", "r3")),
				// Graft a new node onto the chain's tail.
				addSession("n5", "n6", 0),
				rerank("n6", P("n6", "n5", "r5")),
				// Session failure mid-chain prunes the relay path of n2.
				dropSession("n2", "n3"),
			},
		},
		{
			name: "badgadget-collapse",
			in:   BadGadget(),
			ops: []gadgetOp{
				dropSession("1", "2"),
				dropSession("2", "3"),
			},
		},
	}
	deltaSolves := 0
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v, err := NewDeltaVerifier(tc.in)
			if err != nil {
				t.Fatalf("NewDeltaVerifier: %v", err)
			}
			requireVerifyParity(t, "initial", v)
			for _, op := range tc.ops {
				if err := op.apply(v); err != nil {
					t.Fatalf("%s: %v", op.name, err)
				}
				requireVerifyParity(t, op.name, v)
			}
			deltaSolves += v.DeltaStats().DeltaSolves
		})
	}
	// Sequences that go unsat solve on the full path by design, but the
	// table as a whole must exercise the incremental path.
	if deltaSolves == 0 {
		t.Error("no case recorded a delta solve")
	}
}

// TestDeltaVerifierClone commits an edit on a clone and checks the original
// is untouched — the server's what-if discard path.
func TestDeltaVerifierClone(t *testing.T) {
	v, err := NewDeltaVerifier(Figure3IBGP())
	if err != nil {
		t.Fatal(err)
	}
	requireVerifyParity(t, "base", v)
	c := v.Clone()
	// Apply the full Figure3IBGPFixed repair to the clone only.
	if err := c.ReRank("a", P("a", "d", "r1"), P("a", "b", "e", "r2")); err != nil {
		t.Fatal(err)
	}
	if err := c.ReRank("b", P("b", "e", "r2"), P("b", "c", "f", "r3")); err != nil {
		t.Fatal(err)
	}
	if err := c.ReRank("c", P("c", "f", "r3"), P("c", "a", "d", "r1")); err != nil {
		t.Fatal(err)
	}
	requireVerifyParity(t, "clone after repair", c)
	requireVerifyParity(t, "original after clone edit", v)
	res, _, err := c.Verify(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sat {
		t.Fatal("repaired clone should be safe")
	}
	res, sus, err := v.Verify(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Sat {
		t.Fatal("original must stay unsafe")
	}
	if len(sus) == 0 {
		t.Fatal("unsafe verdict should implicate suspect nodes")
	}
}

// TestDeltaVerifierRejectsInvalid checks edits that would make the instance
// invalid are rejected without mutating state.
func TestDeltaVerifierRejectsInvalid(t *testing.T) {
	v, err := NewDeltaVerifier(Disagree())
	if err != nil {
		t.Fatal(err)
	}
	before, _, _ := v.Verify(context.Background())
	bad := []error{
		v.ReRank("1", P("1", "9", "r9")), // missing link 1→9
		v.ReRank("1", P("2", "1", "r1")), // not owned by node
		v.ReRank("1", P("1")),            // too short
		v.DropSession("1", "9"),          // no such session
		v.AddSession("1", "2", 0),        // already exists
		v.AddSession("1", "1", 0),        // self session
	}
	for i, err := range bad {
		if err == nil {
			t.Fatalf("invalid edit %d accepted", i)
		}
	}
	after, _, _ := v.Verify(context.Background())
	if before.Sat != after.Sat || len(before.Model) != len(after.Model) {
		t.Fatal("rejected edits mutated state")
	}
	requireVerifyParity(t, "after rejections", v)
}

// TestDeltaVerifierDegraded forces a signature-rendering collision (two
// egress paths over the same origin token), checks Verify falls back to the
// full pipeline, and checks the verifier recovers once the collision is
// edited away.
func TestDeltaVerifierDegraded(t *testing.T) {
	in := NewInstance("degraded")
	in.AddSession("a", "b", 0)
	in.Rank("a", P("a", "r1"))
	in.Rank("b", P("b", "a", "r1"))
	v, err := NewDeltaVerifier(in)
	if err != nil {
		t.Fatal(err)
	}
	if v.Degraded() {
		t.Fatal("clean instance reported degraded")
	}
	requireVerifyParity(t, "clean", v)

	// b now also claims an egress path over r1: both [a r1] and [b r1]
	// render as signature r1, which ToAlgebra rejects.
	if err := v.ReRank("b", P("b", "r1"), P("b", "a", "r1")); err != nil {
		t.Fatal(err)
	}
	if !v.Degraded() {
		t.Fatal("duplicate rendering not detected")
	}
	if _, _, err := v.Verify(context.Background()); err == nil {
		t.Fatal("degraded Verify should surface the oracle's duplicate-path error")
	}

	// Edit the collision away: the verifier must recover and agree with the
	// oracle again on the incremental path.
	if err := v.ReRank("b", P("b", "a", "r1")); err != nil {
		t.Fatal(err)
	}
	if v.Degraded() {
		t.Fatal("collision removal did not clear degraded mode")
	}
	requireVerifyParity(t, "recovered", v)
	res, _, err := v.Verify(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sat {
		t.Fatal("recovered instance should be safe")
	}
}
