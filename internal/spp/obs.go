// Scale-path introspection: which route AnalyzeScale took, how often the
// compact naming scheme collided, and where sharded emission time goes.
//
// Histogram and counter handles are pre-resolved at init so the per-shard
// timing observes are label-lookup-free — the emission passes run at
// memory bandwidth and must stay there.

package spp

import (
	"time"

	"fsr/internal/obs"
)

var (
	obsScalePath = obs.Default().CounterVec("fsr_spp_scale_path_total",
		"AnalyzeScale outcomes by route taken.", "path")
	// dense: sat decided entirely on the dense id encoding.
	obsPathDense = obsScalePath.With("dense")
	// resolve: unsat re-solved through the provenance (AoS) buffer.
	obsPathResolve = obsScalePath.With("resolve")
	// fallback: compact naming not faithful (collision/degenerate) or
	// validation failed — caller stays on the classic path.
	obsPathFallback = obsScalePath.With("fallback")

	obsShardCollisions = obs.Default().Counter("fsr_spp_shard_collisions_total",
		"Instances rejected by the sharded generator's duplicate-name screen.")

	obsShardEmit = obs.Default().HistogramVec("fsr_spp_shard_emit_seconds",
		"Sharded emission pass latency by stage.", "stage")
	obsEmitDensePref = obsShardEmit.With("dense-pref")
	obsEmitDenseMono = obsShardEmit.With("dense-mono")
	obsEmitSyms      = obsShardEmit.With("syms")
	obsEmitPref      = obsShardEmit.With("pref")
	obsEmitMono      = obsShardEmit.With("mono")
)

// timeEmit observes one emission pass's duration on a pre-resolved stage
// handle: t := time.Now() ... defer-free, called at pass exit.
func timeEmit(h *obs.HistogramHandle, start time.Time) {
	h.Observe(time.Since(start).Seconds())
}
