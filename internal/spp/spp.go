// Package spp models the Stable Paths Problem (Griffin, Shepherd, Wilfong)
// and implements the FSR conversion of SPP instances to routing algebras
// (paper §III-B), the gadget library used in the evaluation (Figure 3's
// iBGP gadget, GOODGADGET, BADGADGET, DISAGREE), and the extraction of SPP
// instances from protocol executions (§VI-B).
//
// An SPP instance is a topology in which each node carries a ranked list of
// permitted paths to a single destination. Following the paper's Figure 3
// conventions, a permitted path is written as the owning node followed by
// the downstream nodes and terminated by an origin token (the externally
// learned route, r1/r2/r3 in the figure). An egress node's own path is the
// two-element path [node, origin], which the paper renders as just "(r1)".
package spp

import (
	"fmt"
	"sort"
	"strings"

	"fsr/internal/algebra"
	"fsr/internal/analysis"
)

// Node identifies a router or AS in an SPP instance. Origin tokens (the
// externally learned routes, e.g. r1) are also Nodes: they appear only as
// the last element of paths.
type Node string

// Path is a permitted path: Path[0] is the owning node, Path[len-1] is the
// origin token, and consecutive elements are connected by links.
type Path []Node

// P builds a Path from node names, a convenience for literals:
// P("a","b","e","r2").
func P(nodes ...string) Path {
	p := make(Path, len(nodes))
	for i, n := range nodes {
		p[i] = Node(n)
	}
	return p
}

// String renders the path the way the paper writes it: "aber2", except that
// multi-character node names are joined with dots ("u1.u7.r2").
func (p Path) String() string {
	single := true
	for _, n := range p {
		if len(n) > 1 && !isOrigin(n) {
			single = false
			break
		}
	}
	parts := make([]string, len(p))
	for i, n := range p {
		parts[i] = string(n)
	}
	if single {
		return strings.Join(parts, "")
	}
	return strings.Join(parts, ".")
}

// isOrigin reports whether the node looks like an origin token (r1, r2…);
// purely cosmetic, used by String.
func isOrigin(n Node) bool {
	return len(n) >= 2 && n[0] == 'r' && n[1] >= '0' && n[1] <= '9'
}

// Owner returns the owning node (the first element).
func (p Path) Owner() Node {
	if len(p) == 0 {
		return ""
	}
	return p[0]
}

// Tail returns the path with the owner removed: the permitted path the
// next-hop node must itself hold for this path to be realizable.
func (p Path) Tail() Path {
	if len(p) <= 1 {
		return nil
	}
	return p[1:]
}

// Key returns a comparable rendering used for map keys.
func (p Path) Key() string { return p.String() }

// Equal reports element-wise equality.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Link is a directed link (an iBGP session direction or an inter-AS edge).
type Link struct {
	From, To Node
}

// String renders "from→to".
func (l Link) String() string { return string(l.From) + "→" + string(l.To) }

// Instance is an SPP instance: a topology plus ranked permitted paths.
type Instance struct {
	// Name identifies the instance in reports and generated algebra names.
	Name string
	// Nodes lists the real (router) nodes in a stable order.
	Nodes []Node
	// Origins lists the origin tokens (externally learned routes).
	Origins []Node
	// Links lists the directed links among real nodes. An undirected
	// session contributes both directions.
	Links []Link
	// Cost optionally annotates links with IGP costs (Figure 3 shows them);
	// zero-valued entries mean unannotated.
	Cost map[Link]int
	// Permitted maps each node to its ranked permitted paths, most
	// preferred first. Egress nodes hold their [node, origin] path.
	Permitted map[Node][]Path
}

// NewInstance returns an empty instance with initialized maps.
func NewInstance(name string) *Instance {
	return &Instance{
		Name:      name,
		Cost:      map[Link]int{},
		Permitted: map[Node][]Path{},
	}
}

// AddNode declares a real node (idempotent).
func (in *Instance) AddNode(n Node) {
	for _, e := range in.Nodes {
		if e == n {
			return
		}
	}
	in.Nodes = append(in.Nodes, n)
}

// AddOrigin declares an origin token (idempotent).
func (in *Instance) AddOrigin(n Node) {
	for _, e := range in.Origins {
		if e == n {
			return
		}
	}
	in.Origins = append(in.Origins, n)
}

// AddSession adds a bidirectional link between two real nodes with an
// optional IGP cost.
func (in *Instance) AddSession(a, b Node, cost int) {
	in.AddNode(a)
	in.AddNode(b)
	in.Links = append(in.Links, Link{a, b}, Link{b, a})
	if cost != 0 {
		in.Cost[Link{a, b}] = cost
		in.Cost[Link{b, a}] = cost
	}
}

// Rank sets the ranked permitted paths of a node, most preferred first.
// Origin tokens referenced by the paths are declared automatically.
func (in *Instance) Rank(n Node, paths ...Path) {
	in.AddNode(n)
	for _, p := range paths {
		if len(p) >= 2 {
			in.AddOrigin(p[len(p)-1])
		}
	}
	in.Permitted[n] = paths
}

// HasLink reports whether the directed link u→v exists.
func (in *Instance) HasLink(u, v Node) bool {
	for _, l := range in.Links {
		if l.From == u && l.To == v {
			return true
		}
	}
	return false
}

// isReal reports whether n is a declared real node.
func (in *Instance) isReal(n Node) bool {
	for _, e := range in.Nodes {
		if e == n {
			return true
		}
	}
	return false
}

// Validate checks structural well-formedness: every permitted path is owned
// by its node, terminates in an origin token, and walks existing links.
func (in *Instance) Validate() error {
	for n, paths := range in.Permitted {
		if !in.isReal(n) {
			return fmt.Errorf("spp %s: ranking for undeclared node %s", in.Name, n)
		}
		for _, p := range paths {
			if len(p) < 2 {
				return fmt.Errorf("spp %s: node %s: path %q too short", in.Name, n, p)
			}
			if p.Owner() != n {
				return fmt.Errorf("spp %s: node %s: path %s not owned by node", in.Name, n, p)
			}
			last := p[len(p)-1]
			isOrig := false
			for _, o := range in.Origins {
				if o == last {
					isOrig = true
					break
				}
			}
			if !isOrig {
				return fmt.Errorf("spp %s: node %s: path %s does not end in an origin token", in.Name, n, p)
			}
			for i := 0; i+2 < len(p); i++ { // hops among real nodes
				if !in.HasLink(p[i], p[i+1]) {
					return fmt.Errorf("spp %s: node %s: path %s uses missing link %s→%s", in.Name, n, p, p[i], p[i+1])
				}
			}
			for i := 1; i+1 < len(p); i++ {
				if !in.isReal(p[i]) {
					return fmt.Errorf("spp %s: node %s: path %s crosses undeclared node %s", in.Name, n, p, p[i])
				}
			}
		}
	}
	return nil
}

// permitted reports whether path p is in the owner's ranked list.
func (in *Instance) permitted(p Path) bool {
	for _, q := range in.Permitted[p.Owner()] {
		if q.Equal(p) {
			return true
		}
	}
	return false
}

// Conversion is the result of translating an SPP instance to a routing
// algebra (§III-B), retaining the maps needed to interpret analysis results
// in terms of the instance (§VI-B pinpointing) and to deploy the algebra on
// the instance's topology.
type Conversion struct {
	// Instance is the source instance.
	Instance *Instance
	// Algebra is the finite algebra encoding the instance.
	Algebra *algebra.Tabular
	// SigOf maps a permitted path (by Key) to its signature.
	SigOf map[string]algebra.Sig
	// PathOf maps a signature back to the permitted path.
	PathOf map[algebra.Sig]Path
	// LabelOf maps each directed link to its unique label constant.
	LabelOf map[Link]algebra.Label
	// LinkOf maps a label back to its link.
	LinkOf map[algebra.Label]Link
}

// sigName renders the paper's signature naming: the egress path [d, r1] is
// written r1; longer paths aber2 become r_aber2.
func sigName(p Path) string {
	if len(p) == 2 {
		return string(p[1])
	}
	return "r_" + p.String()
}

// ToAlgebra converts the instance to a routing algebra following §III-B:
//
//   - each directed link uv gets a unique label constant l_uv;
//   - each permitted path p gets a unique signature r_p;
//   - each per-node ranking r1, …, rn becomes the pairwise preferences
//     r1 ≺ r2, …, rn−1 ≺ rn;
//   - for every permitted path uvp whose tail vp is itself permitted at v,
//     the concatenation entry l_uv ⊕ r_vp = r_uvp is defined; every other
//     combination is φ (prohibited).
//
// Egress paths [u, o] become the origination set: node u originates r_[u,o].
func (in *Instance) ToAlgebra() (*Conversion, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	conv := &Conversion{
		Instance: in,
		SigOf:    map[string]algebra.Sig{},
		PathOf:   map[algebra.Sig]Path{},
		LabelOf:  map[Link]algebra.Label{},
		LinkOf:   map[algebra.Label]Link{},
	}
	b := algebra.NewBuilder("spp-" + in.Name)

	// Labels: one constant per directed link.
	var labels []algebra.Label
	for _, l := range in.Links {
		lab := algebra.LSym("l_" + string(l.From) + string(l.To))
		if _, dup := conv.LinkOf[lab]; dup {
			return nil, fmt.Errorf("spp %s: duplicate link %s", in.Name, l)
		}
		conv.LabelOf[l] = lab
		conv.LinkOf[lab] = l
		labels = append(labels, lab)
	}
	b.Labels(labels...)

	// Signatures: one constant per permitted path, in node order then rank
	// order for stability.
	for _, n := range in.Nodes {
		for _, p := range in.Permitted[n] {
			s := algebra.Symbol(sigName(p))
			if _, dup := conv.PathOf[s]; dup {
				return nil, fmt.Errorf("spp %s: duplicate permitted path %s", in.Name, p)
			}
			conv.SigOf[p.Key()] = s
			conv.PathOf[s] = p
			b.Sigs(s)
		}
	}

	// Preferences: the ranked list becomes adjacent pairwise preferences.
	for _, n := range in.Nodes {
		paths := in.Permitted[n]
		sigs := make([]algebra.Sig, len(paths))
		for i, p := range paths {
			sigs[i] = conv.SigOf[p.Key()]
		}
		b.Chain(sigs...)
	}

	// Concatenation: l_uv ⊕ r_vp = r_uvp for permitted uvp with permitted
	// tail vp. Unlisted combinations default to φ.
	for _, n := range in.Nodes {
		for _, p := range in.Permitted[n] {
			tail := p.Tail()
			if len(tail) < 2 {
				continue // egress path: origination, no concatenation
			}
			if !in.permitted(tail) {
				continue // tail not permitted: path can never be realized
			}
			lab := conv.LabelOf[Link{p[0], p[1]}]
			if lab == nil {
				return nil, fmt.Errorf("spp %s: path %s uses missing link %s→%s", in.Name, p, p[0], p[1])
			}
			b.Concat(lab, conv.SigOf[tail.Key()], conv.SigOf[p.Key()])
		}
	}

	// SPP filtering is fully encoded in ⊕P (unlisted ⇒ φ); imports and
	// exports pass everything, and link constants are their own reverses.
	alg, err := b.Build()
	if err != nil {
		return nil, err
	}
	conv.Algebra = alg
	return conv, nil
}

// Origination is one entry of the origination set: node announces sig at
// protocol start (its externally learned route).
type Origination struct {
	Node Node
	Sig  algebra.Sig
	Path Path
}

// Originations lists the egress paths of the instance as origination-set
// entries, in node order.
func (c *Conversion) Originations() []Origination {
	var out []Origination
	for _, n := range c.Instance.Nodes {
		for _, p := range c.Instance.Permitted[n] {
			if len(p) == 2 {
				out = append(out, Origination{Node: n, Sig: c.SigOf[p.Key()], Path: p})
			}
		}
	}
	return out
}

// OwnerOfSig returns the node whose ranking contains the signature's path.
func (c *Conversion) OwnerOfSig(s algebra.Sig) (Node, bool) {
	p, ok := c.PathOf[s]
	if !ok {
		return "", false
	}
	return p.Owner(), true
}

// SuspectNodes maps an unsat core back to the nodes whose configuration the
// violating constraints mention — the §VI-B "hint" pointing operators at the
// routers to fix. Preference constraints implicate the ranking's owner;
// monotonicity constraints implicate the owner of the derived path.
func (c *Conversion) SuspectNodes(core []analysis.Constraint) []Node {
	seen := map[Node]bool{}
	var out []Node
	add := func(s algebra.Sig) {
		if n, found := c.OwnerOfSig(s); found && !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	for _, cc := range core {
		switch cc.Kind {
		case analysis.KindPreference:
			add(cc.Pref.A)
		case analysis.KindMonotonicity:
			add(cc.Entry.Out)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
