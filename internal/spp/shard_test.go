// Differential tests for the sharded constraint generator and the
// internet-scale analysis fast path: both must be indistinguishable from
// the classic ToAlgebra pipeline on everything the classic pipeline can
// decide — element-wise constraint buffers, verdicts, models, minimized
// cores, and §VI-B suspect sets.
//
// External test package: the scenario generators used as a corpus import
// spp, so an internal test file would create an import cycle.
package spp_test

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"fsr/internal/analysis"
	"fsr/internal/scenario"
	"fsr/internal/smt"
	"fsr/internal/spp"
	"fsr/internal/topology"
)

// shardCorpus collects the named gadgets and a spread of seeded scenarios
// (both verdicts) for the differential tests.
func shardCorpus(t *testing.T) map[string]*spp.Instance {
	t.Helper()
	corpus := map[string]*spp.Instance{
		"figure3-ibgp":       spp.Figure3IBGP(),
		"figure3-ibgp-fixed": spp.Figure3IBGPFixed(),
		"disagree":           spp.Disagree(),
		"bad-gadget":         spp.BadGadget(),
		"good-gadget":        spp.GoodGadget(),
		"chain-64":           spp.ChainGadget(64),
	}
	for _, kind := range []scenario.Kind{
		scenario.GadgetSplice, scenario.GaoRexford, scenario.IBGP,
		scenario.GaoRexfordInternet, scenario.LexicalProduct,
	} {
		for seed := int64(1); seed <= 6; seed++ {
			sc, err := scenario.Generate(kind, seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", kind, seed, err)
			}
			corpus[fmt.Sprintf("%s-%d", kind, seed)] = sc.Instance
		}
	}
	// One mid-size power-law instance, beyond campaign scale but still
	// cheap enough for the classic pipeline to cross-check.
	g := topology.GenerateInternet(42, topology.InternetParams{N: 600})
	corpus["internet-600"] = scenario.InternetSPP("internet-600", g, 3)
	return corpus
}

// TestShardedConstraintsMatchClassic: the sharded generator's buffer is
// element-for-element identical — assertion, origin, kind, provenance —
// to analysis.Constraints over the converted algebra.
func TestShardedConstraintsMatchClassic(t *testing.T) {
	for name, in := range shardCorpus(t) {
		conv, err := in.ToAlgebra()
		if err != nil {
			t.Fatalf("%s: ToAlgebra: %v", name, err)
		}
		want, err := analysis.Constraints(conv.Algebra, analysis.StrictMonotonicity)
		if err != nil {
			t.Fatalf("%s: Constraints: %v", name, err)
		}
		for _, workers := range []int{1, 4} {
			got, ok, err := spp.ShardedConstraints(in, workers)
			if err != nil || !ok {
				t.Fatalf("%s w=%d: sharded gen: ok=%v err=%v", name, workers, ok, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s w=%d: %d constraints, classic %d", name, workers, len(got), len(want))
			}
			for i := range got {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Fatalf("%s w=%d: constraint %d differs:\n%+v\nvs\n%+v", name, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// TestAnalyzeScaleMatchesClassic: the dense fast path reproduces the full
// pipeline's Result (verdict, model, minimized core, core indices, counts)
// and suspect set bit-identically on every corpus instance.
func TestAnalyzeScaleMatchesClassic(t *testing.T) {
	ctx := context.Background()
	for name, in := range shardCorpus(t) {
		conv, err := in.ToAlgebra()
		if err != nil {
			t.Fatalf("%s: ToAlgebra: %v", name, err)
		}
		want, err := analysis.CheckWith(ctx, conv.Algebra, analysis.StrictMonotonicity, smt.Native{})
		if err != nil {
			t.Fatalf("%s: classic check: %v", name, err)
		}
		wantSuspects := conv.SuspectNodes(want.Core)
		for _, workers := range []int{1, 4} {
			got, suspects, ok, err := spp.AnalyzeScale(ctx, in, workers)
			if err != nil || !ok {
				t.Fatalf("%s w=%d: AnalyzeScale: ok=%v err=%v", name, workers, ok, err)
			}
			if got.Sat != want.Sat {
				t.Fatalf("%s w=%d: sat %v, classic %v", name, workers, got.Sat, want.Sat)
			}
			if got.Algebra != want.Algebra || got.Condition != want.Condition {
				t.Fatalf("%s w=%d: identity (%s,%s) vs (%s,%s)", name, workers, got.Algebra, got.Condition, want.Algebra, want.Condition)
			}
			if !reflect.DeepEqual(got.Model, want.Model) {
				t.Fatalf("%s w=%d: model differs:\n%v\nvs\n%v", name, workers, got.Model, want.Model)
			}
			if !reflect.DeepEqual(got.Core, want.Core) {
				t.Fatalf("%s w=%d: core differs:\n%+v\nvs\n%+v", name, workers, got.Core, want.Core)
			}
			if got.NumPreference != want.NumPreference || got.NumMonotonicity != want.NumMonotonicity {
				t.Fatalf("%s w=%d: counts (%d,%d) vs (%d,%d)", name, workers,
					got.NumPreference, got.NumMonotonicity, want.NumPreference, want.NumMonotonicity)
			}
			if got.Stats.Variables != want.Stats.Variables || got.Stats.Edges != want.Stats.Edges {
				t.Fatalf("%s w=%d: stats vars/edges (%d,%d) vs (%d,%d)", name, workers,
					got.Stats.Variables, got.Stats.Edges, want.Stats.Variables, want.Stats.Edges)
			}
			if !reflect.DeepEqual(suspects, wantSuspects) {
				t.Fatalf("%s w=%d: suspects %v, classic %v", name, workers, suspects, wantSuspects)
			}
		}
	}
}

// TestShardedFallback: instances the compact naming scheme cannot
// represent faithfully report ok=false instead of guessing.
func TestShardedFallback(t *testing.T) {
	// Two egress nodes ranking the bare origin path produce the same
	// rendering ("r1") for distinct permitted paths.
	dup := spp.NewInstance("dup-rendering")
	dup.AddOrigin("r1")
	dup.AddSession("a", "b", 0)
	dup.Rank("a", spp.Path{"a", "r1"}, spp.Path{"a", "b", "r1"})
	dup.Rank("b", spp.Path{"b", "r1"})

	// Sanitization collisions: "x.y" and "x_y" render differently but map
	// to the same solver variable.
	san := spp.NewInstance("sanitize-collision")
	san.AddOrigin("r1")
	san.AddSession("x.y", "x_y", 0)
	san.Rank("x.y", spp.Path{"x.y", "r1"})
	san.Rank("x_y", spp.Path{"x_y", "r1"})

	// Degenerate: no links at all.
	empty := spp.NewInstance("no-links")
	empty.AddOrigin("r1")
	empty.AddNode("a")

	for _, in := range []*spp.Instance{dup, san, empty} {
		if _, ok, err := spp.ShardedConstraints(in, 2); err != nil || ok {
			t.Fatalf("%s: want ok=false fallback, got ok=%v err=%v", in.Name, ok, err)
		}
		if _, _, ok, err := spp.AnalyzeScale(context.Background(), in, 2); err != nil || ok {
			t.Fatalf("%s: AnalyzeScale want fallback, got ok=%v err=%v", in.Name, ok, err)
		}
	}
}

// TestShardedValidation: structural validation failures surface with the
// classic error shapes from ShardedConstraints, and send AnalyzeScale to
// the classic path (ok=false, nil error) so it can raise the canonical
// error.
func TestShardedValidation(t *testing.T) {
	in := spp.NewInstance("invalid")
	in.AddOrigin("r1")
	in.AddSession("a", "b", 0)
	in.Rank("a", spp.Path{"a", "c", "r1"}) // missing link a→c
	if _, _, err := spp.ShardedConstraints(in, 2); err == nil {
		t.Fatal("want validation error for missing link")
	}
	if _, _, ok, err := spp.AnalyzeScale(context.Background(), in, 2); ok || err != nil {
		t.Fatalf("want classic-path fallback on invalid instance, got ok=%v err=%v", ok, err)
	}
}
