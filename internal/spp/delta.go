// Delta verification of SPP instances: the bridge between an operator's
// what-if edits (re-rank a router, drop or add a session) and the smt
// package's delta solver. A DeltaVerifier keeps the instance's full
// constraint list resident — organized as one segment per node (its
// pairwise preference chain) followed by one segment per directed link (its
// ⊕ monotonicity entries), exactly the order §IV-B constraint generation
// produces — so an edit regenerates only the segments whose content is a
// function of the touched rankings and splices them into a warm
// smt.DeltaContext. The solver then re-probes only the dispute-digraph
// region those constraints reach.
//
// Correctness is anchored to the full pipeline, not argued independently:
// segment generation mirrors Instance.ToAlgebra + analysis constraint
// generation statement for statement (same orderings, same provenance
// strings, same variable naming via analysis.VarName), tests enforce
// bit-for-bit parity against VerifyFull, and any instance the mirror cannot
// name identically — signature-rendering collisions, duplicate permitted
// paths — flips the verifier into degraded mode, where Verify transparently
// runs the full pipeline instead.

package spp

import (
	"context"
	"fmt"
	"sort"

	"fsr/internal/algebra"
	"fsr/internal/analysis"
	"fsr/internal/smt"
)

// DeltaVerifier owns a private copy of an SPP instance plus the resident
// solver state needed to re-verify it incrementally after edits. It is not
// safe for concurrent use.
type DeltaVerifier struct {
	in *Instance
	dc *smt.DeltaContext

	// cons mirrors the delta context's assertion list with algebra-level
	// provenance, segmented per segLen: first one segment per node (in
	// Nodes order), then one per directed link (in Links order).
	cons   []analysis.Constraint
	segLen []int

	// symCount counts permitted paths per signature rendering; nameCount
	// per sanitized solver-variable name. Any rendering shared by two paths
	// (a ToAlgebra error) or any name collision (where the full pipeline
	// would suffix) makes the incremental mirror unsound, so dupSyms /
	// dupNames > 0 degrades Verify to the full pipeline until edits resolve
	// the clash.
	symCount  map[string]int
	nameCount map[string]int
	dupSyms   int
	dupNames  int
}

// NewDeltaVerifier builds the resident constraint state for a deep copy of
// the instance. The instance must validate; rendering collisions are
// tolerated (the verifier starts degraded and recovers if edits remove
// them).
func NewDeltaVerifier(in *Instance) (*DeltaVerifier, error) {
	cp := cloneInstance(in)
	if err := cp.Validate(); err != nil {
		return nil, err
	}
	v := &DeltaVerifier{
		in:        cp,
		symCount:  map[string]int{},
		nameCount: map[string]int{},
	}
	for _, n := range cp.Nodes {
		for _, p := range cp.Permitted[n] {
			v.countPath(p, +1)
		}
	}
	v.segLen = make([]int, 0, len(cp.Nodes)+len(cp.Links))
	for _, n := range cp.Nodes {
		seg := v.prefSeg(n)
		v.cons = append(v.cons, seg...)
		v.segLen = append(v.segLen, len(seg))
	}
	for _, l := range cp.Links {
		seg := v.monoSeg(l)
		v.cons = append(v.cons, seg...)
		v.segLen = append(v.segLen, len(seg))
	}
	v.dc = smt.NewDeltaContext(assertsOf(v.cons))
	return v, nil
}

// Name returns the instance name.
func (v *DeltaVerifier) Name() string { return v.in.Name }

// Snapshot returns a deep copy of the verifier's current instance.
func (v *DeltaVerifier) Snapshot() *Instance { return cloneInstance(v.in) }

// Degraded reports whether the incremental mirror is unsound for the
// current instance (rendering collision or duplicate permitted path) and
// Verify is falling back to the full pipeline.
func (v *DeltaVerifier) Degraded() bool { return v.dupSyms > 0 || v.dupNames > 0 }

// DeltaStats returns the underlying solver's delta statistics.
func (v *DeltaVerifier) DeltaStats() smt.DeltaStats { return v.dc.Stats() }

// Clone returns an independent copy, including the warm solver state: a
// what-if is applied to the clone and simply dropped when not committed.
func (v *DeltaVerifier) Clone() *DeltaVerifier {
	c := &DeltaVerifier{
		in:        cloneInstance(v.in),
		dc:        v.dc.Clone(),
		cons:      append([]analysis.Constraint(nil), v.cons...),
		segLen:    append([]int(nil), v.segLen...),
		symCount:  make(map[string]int, len(v.symCount)),
		nameCount: make(map[string]int, len(v.nameCount)),
		dupSyms:   v.dupSyms,
		dupNames:  v.dupNames,
	}
	for k, n := range v.symCount {
		c.symCount[k] = n
	}
	for k, n := range v.nameCount {
		c.nameCount[k] = n
	}
	return c
}

// Verify decides strict monotonicity for the current instance on the delta
// path (full pipeline when degraded), returning the analysis result and the
// suspect nodes implicated by the core (nil when sat) — the same contract
// as Session.AnalyzeSPP.
func (v *DeltaVerifier) Verify(ctx context.Context) (analysis.Result, []Node, error) {
	// Degenerate instances (no links, or no permitted paths at all) are
	// rejected by the algebra builder; route them through the full pipeline
	// so the caller sees the same error a fresh analysis would produce.
	if v.Degraded() || len(v.in.Links) == 0 || len(v.symCount) == 0 {
		return v.VerifyFull(ctx)
	}
	out, err := v.dc.Check(ctx)
	if err != nil {
		return analysis.Result{}, nil, err
	}
	res := analysis.Result{
		Algebra:   "spp-" + v.in.Name,
		Condition: analysis.StrictMonotonicity,
		Sat:       out.Sat,
		Stats:     out.Stats,
	}
	for i := range v.cons {
		if v.cons[i].Kind == analysis.KindPreference {
			res.NumPreference++
		} else {
			res.NumMonotonicity++
		}
	}
	if out.Sat {
		res.Model = make(map[string]int, len(out.Model))
		for name, val := range out.Model {
			res.Model[string(name)] = val
		}
		return res, nil, nil
	}
	res.Core = make([]analysis.Constraint, 0, len(out.CoreIdx))
	for _, i := range out.CoreIdx {
		if i >= 0 && i < len(v.cons) {
			res.Core = append(res.Core, v.cons[i])
		}
	}
	return res, v.suspects(res.Core), nil
}

// VerifyFull runs the full pipeline — ToAlgebra, fresh constraint
// generation, fresh solve — on the current instance. It is the differential
// oracle the delta path is tested (and optionally served) against.
func (v *DeltaVerifier) VerifyFull(ctx context.Context) (analysis.Result, []Node, error) {
	conv, err := v.in.ToAlgebra()
	if err != nil {
		return analysis.Result{}, nil, err
	}
	res, err := analysis.CheckWith(ctx, conv.Algebra, analysis.StrictMonotonicity, smt.Native{})
	if err != nil {
		return analysis.Result{}, nil, err
	}
	return res, conv.SuspectNodes(res.Core), nil
}

// ReRank replaces a node's ranked permitted paths (declaring the node and
// any new origin tokens like Instance.Rank) and refreshes the node's
// preference segment plus the monotonicity segments of its incident links.
// The paths are validated against the current topology first; an invalid
// ranking is rejected without mutating anything.
func (v *DeltaVerifier) ReRank(n Node, paths ...Path) error {
	if n == "" {
		return fmt.Errorf("spp %s: rerank of empty node name", v.in.Name)
	}
	for _, p := range paths {
		if len(p) < 2 {
			return fmt.Errorf("spp %s: node %s: path %q too short", v.in.Name, n, p)
		}
		if p.Owner() != n {
			return fmt.Errorf("spp %s: node %s: path %s not owned by node", v.in.Name, n, p)
		}
		for i := 0; i+2 < len(p); i++ {
			if !v.in.HasLink(p[i], p[i+1]) {
				return fmt.Errorf("spp %s: node %s: path %s uses missing link %s→%s", v.in.Name, n, p, p[i], p[i+1])
			}
		}
		for i := 1; i+1 < len(p); i++ {
			if !v.in.isReal(p[i]) {
				return fmt.Errorf("spp %s: node %s: path %s crosses undeclared node %s", v.in.Name, n, p, p[i])
			}
		}
	}
	newNode := !v.in.isReal(n)
	for _, p := range v.in.Permitted[n] {
		v.countPath(p, -1)
	}
	for _, p := range paths {
		v.countPath(p, +1)
	}
	v.in.Rank(n, clonePaths(paths)...)
	if newNode {
		if err := v.insertSeg(len(v.in.Nodes)-1, v.prefSeg(n)); err != nil {
			return err
		}
	} else if err := v.setSeg(v.nodeSegID(n), v.prefSeg(n)); err != nil {
		return err
	}
	return v.refreshIncident(map[Node]bool{n: true})
}

// DropSession removes the bidirectional session a↔b, prunes every permitted
// path crossing it (the operational reading of a session failure), and
// refreshes the segments of the pruned nodes. Removing a session that does
// not exist is an error.
func (v *DeltaVerifier) DropSession(a, b Node) error {
	var idx []int
	for i, l := range v.in.Links {
		if (l.From == a && l.To == b) || (l.From == b && l.To == a) {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 {
		return fmt.Errorf("spp %s: no session %s↔%s", v.in.Name, a, b)
	}
	// Remove link segments and links together, descending so earlier
	// indices stay valid.
	for k := len(idx) - 1; k >= 0; k-- {
		i := idx[k]
		if err := v.removeSeg(len(v.in.Nodes) + i); err != nil {
			return err
		}
		v.in.Links = append(v.in.Links[:i], v.in.Links[i+1:]...)
	}
	delete(v.in.Cost, Link{a, b})
	delete(v.in.Cost, Link{b, a})

	crosses := func(p Path) bool {
		for i := 0; i+2 < len(p); i++ {
			if (p[i] == a && p[i+1] == b) || (p[i] == b && p[i+1] == a) {
				return true
			}
		}
		return false
	}
	pruned := map[Node]bool{}
	for _, n := range v.in.Nodes {
		old := v.in.Permitted[n]
		kept := make([]Path, 0, len(old))
		for _, p := range old {
			if crosses(p) {
				v.countPath(p, -1)
			} else {
				kept = append(kept, p)
			}
		}
		if len(kept) != len(old) {
			v.in.Permitted[n] = kept
			pruned[n] = true
		}
	}
	for _, n := range v.in.Nodes {
		if !pruned[n] {
			continue
		}
		if err := v.setSeg(v.nodeSegID(n), v.prefSeg(n)); err != nil {
			return err
		}
	}
	return v.refreshIncident(pruned)
}

// AddSession adds the bidirectional session a↔b with an optional IGP cost,
// declaring new nodes like Instance.AddSession. The new links' monotonicity
// segments start empty (no permitted path can reference a link that did not
// exist); a follow-up ReRank introduces paths over the session.
func (v *DeltaVerifier) AddSession(a, b Node, cost int) error {
	if a == b || a == "" || b == "" {
		return fmt.Errorf("spp %s: invalid session %s↔%s", v.in.Name, a, b)
	}
	if v.in.HasLink(a, b) || v.in.HasLink(b, a) {
		return fmt.Errorf("spp %s: session %s↔%s already exists", v.in.Name, a, b)
	}
	for _, n := range []Node{a, b} {
		if !v.in.isReal(n) {
			v.in.AddNode(n)
			if err := v.insertSeg(len(v.in.Nodes)-1, v.prefSeg(n)); err != nil {
				return err
			}
		}
	}
	v.in.Links = append(v.in.Links, Link{a, b}, Link{b, a})
	if cost != 0 {
		v.in.Cost[Link{a, b}] = cost
		v.in.Cost[Link{b, a}] = cost
	}
	if err := v.insertSeg(len(v.in.Nodes)+len(v.in.Links)-2, v.monoSeg(Link{a, b})); err != nil {
		return err
	}
	return v.insertSeg(len(v.in.Nodes)+len(v.in.Links)-1, v.monoSeg(Link{b, a}))
}

// refreshIncident regenerates the monotonicity segments of every link
// incident to a touched node. It runs after all ranking mutations of an
// operation, so each segment is regenerated from the final rankings.
func (v *DeltaVerifier) refreshIncident(touched map[Node]bool) error {
	for i, l := range v.in.Links {
		if !touched[l.From] && !touched[l.To] {
			continue
		}
		if err := v.setSeg(len(v.in.Nodes)+i, v.monoSeg(l)); err != nil {
			return err
		}
	}
	return nil
}

// --- segment generation (the incremental mirror of §IV-B) ---

// term names a permitted path's solver variable exactly as the full
// pipeline does for a collision-free instance.
func (v *DeltaVerifier) term(p Path) smt.Term {
	return smt.Term{Var: analysis.VarName(sigName(p))}
}

// prefSeg generates the node's preference segment: the ranked list as
// adjacent strict pairs, Builder.Chain's expansion.
func (v *DeltaVerifier) prefSeg(n Node) []analysis.Constraint {
	paths := v.in.Permitted[n]
	if len(paths) < 2 {
		return nil
	}
	out := make([]analysis.Constraint, 0, len(paths)-1)
	for i := 0; i+1 < len(paths); i++ {
		pair := algebra.PrefPair{
			A:      algebra.Symbol(sigName(paths[i])),
			B:      algebra.Symbol(sigName(paths[i+1])),
			Strict: true,
		}
		out = append(out, analysis.Constraint{
			Assertion: smt.Assertion{
				Rel:    smt.Lt,
				A:      v.term(paths[i]),
				B:      v.term(paths[i+1]),
				Origin: "pref: " + pair.String(),
			},
			Kind: analysis.KindPreference,
			Pref: pair,
		})
	}
	return out
}

// monoSeg generates the directed link's monotonicity segment: for every
// permitted path q of the link's head whose extension [tail]+q is permitted
// at the tail, the ⊕ entry l_uv ⊕ r_q = r_uq — the owner-ordered slice of
// algebra.ConcatTable this link contributes.
func (v *DeltaVerifier) monoSeg(l Link) []analysis.Constraint {
	var out []analysis.Constraint
	lab := algebra.LSym("l_" + string(l.From) + string(l.To))
	for _, q := range v.in.Permitted[l.To] {
		p := make(Path, 0, len(q)+1)
		p = append(append(p, l.From), q...)
		if !v.in.permitted(p) {
			continue
		}
		entry := algebra.ConcatEntry{
			Label: lab,
			In:    algebra.Symbol(sigName(q)),
			Out:   algebra.Symbol(sigName(p)),
		}
		out = append(out, analysis.Constraint{
			Assertion: smt.Assertion{
				Rel:    smt.Lt,
				A:      v.term(q),
				B:      v.term(p),
				Origin: "mono: " + entry.String(),
			},
			Kind:  analysis.KindMonotonicity,
			Entry: entry,
		})
	}
	return out
}

// --- segment bookkeeping ---

func (v *DeltaVerifier) nodeSegID(n Node) int {
	for i, e := range v.in.Nodes {
		if e == n {
			return i
		}
	}
	return -1
}

func (v *DeltaVerifier) segOffset(id int) int {
	off := 0
	for i := 0; i < id; i++ {
		off += v.segLen[i]
	}
	return off
}

// setSeg replaces segment id's constraints, splicing the solver context
// only when the content actually changed.
func (v *DeltaVerifier) setSeg(id int, fresh []analysis.Constraint) error {
	off := v.segOffset(id)
	old := v.cons[off : off+v.segLen[id]]
	if constraintsEqual(old, fresh) {
		return nil
	}
	if err := v.dc.Splice(off, len(old), assertsOf(fresh)); err != nil {
		return err
	}
	next := make([]analysis.Constraint, 0, len(v.cons)-len(old)+len(fresh))
	next = append(next, v.cons[:off]...)
	next = append(next, fresh...)
	next = append(next, v.cons[off+len(old):]...)
	v.cons = next
	v.segLen[id] = len(fresh)
	return nil
}

// insertSeg inserts a new segment at id.
func (v *DeltaVerifier) insertSeg(id int, fresh []analysis.Constraint) error {
	v.segLen = append(v.segLen, 0)
	copy(v.segLen[id+1:], v.segLen[id:])
	v.segLen[id] = 0
	return v.setSeg(id, fresh)
}

// removeSeg deletes segment id.
func (v *DeltaVerifier) removeSeg(id int) error {
	if err := v.setSeg(id, nil); err != nil {
		return err
	}
	v.segLen = append(v.segLen[:id], v.segLen[id+1:]...)
	return nil
}

// countPath tracks rendering and variable-name multiplicity as paths come
// and go, maintaining the degradation counters.
func (v *DeltaVerifier) countPath(p Path, d int) {
	sym := sigName(p)
	bump := func(m map[string]int, key string, dup *int) {
		old := m[key]
		nw := old + d
		if nw == 0 {
			delete(m, key)
		} else {
			m[key] = nw
		}
		if old <= 1 && nw >= 2 {
			*dup++
		} else if old >= 2 && nw <= 1 {
			*dup--
		}
	}
	bump(v.symCount, sym, &v.dupSyms)
	bump(v.nameCount, string(analysis.VarName(sym)), &v.dupNames)
}

// suspects mirrors Conversion.SuspectNodes over the mirrored constraints:
// preference constraints implicate the ranking's owner, monotonicity
// constraints the owner of the derived path.
func (v *DeltaVerifier) suspects(core []analysis.Constraint) []Node {
	seen := map[Node]bool{}
	var out []Node
	add := func(s algebra.Sig) {
		n, found := v.ownerOfSym(s)
		if found && !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	for _, c := range core {
		switch c.Kind {
		case analysis.KindPreference:
			add(c.Pref.A)
		case analysis.KindMonotonicity:
			add(c.Entry.Out)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (v *DeltaVerifier) ownerOfSym(s algebra.Sig) (Node, bool) {
	for _, n := range v.in.Nodes {
		for _, p := range v.in.Permitted[n] {
			if algebra.Symbol(sigName(p)) == s {
				return n, true
			}
		}
	}
	return "", false
}

// --- helpers ---

func assertsOf(cons []analysis.Constraint) []smt.Assertion {
	out := make([]smt.Assertion, len(cons))
	for i := range cons {
		out[i] = cons[i].Assertion
	}
	return out
}

func constraintsEqual(a, b []analysis.Constraint) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func clonePaths(paths []Path) []Path {
	out := make([]Path, len(paths))
	for i, p := range paths {
		out[i] = append(Path(nil), p...)
	}
	return out
}

func cloneInstance(in *Instance) *Instance {
	cp := &Instance{
		Name:      in.Name,
		Nodes:     append([]Node(nil), in.Nodes...),
		Origins:   append([]Node(nil), in.Origins...),
		Links:     append([]Link(nil), in.Links...),
		Cost:      make(map[Link]int, len(in.Cost)),
		Permitted: make(map[Node][]Path, len(in.Permitted)),
	}
	for l, c := range in.Cost {
		cp.Cost[l] = c
	}
	for n, paths := range in.Permitted {
		cp.Permitted[n] = clonePaths(paths)
	}
	return cp
}
