package spp

// This file holds pure structural transformations on SPP instances. They
// are the vocabulary of the scenario engine: generators splice renamed
// gadget cores into larger graphs, and the counterexample shrinker
// delta-debugs a misbehaving instance down to a minimal reproducer by
// removing nodes, removing sessions, and truncating rankings. Every
// transformation returns a fresh instance and leaves the receiver intact,
// so a shrink candidate that fails its re-verification can simply be
// dropped.

// Clone returns a deep copy of the instance.
func (in *Instance) Clone() *Instance {
	out := &Instance{
		Name:      in.Name,
		Nodes:     append([]Node(nil), in.Nodes...),
		Origins:   append([]Node(nil), in.Origins...),
		Links:     append([]Link(nil), in.Links...),
		Cost:      make(map[Link]int, len(in.Cost)),
		Permitted: make(map[Node][]Path, len(in.Permitted)),
	}
	for l, c := range in.Cost {
		out.Cost[l] = c
	}
	for n, paths := range in.Permitted {
		cp := make([]Path, len(paths))
		for i, p := range paths {
			cp[i] = append(Path(nil), p...)
		}
		out.Permitted[n] = cp
	}
	return out
}

// Rename returns a copy of the instance with every node and origin token
// mapped through f (applied to node lists, links, costs, and every path
// element). Generators use it to instantiate a gadget core under fresh
// names before splicing it into a larger graph.
func (in *Instance) Rename(name string, f func(Node) Node) *Instance {
	out := NewInstance(name)
	for _, n := range in.Nodes {
		out.Nodes = append(out.Nodes, f(n))
	}
	for _, o := range in.Origins {
		out.Origins = append(out.Origins, f(o))
	}
	for _, l := range in.Links {
		out.Links = append(out.Links, Link{From: f(l.From), To: f(l.To)})
	}
	for l, c := range in.Cost {
		out.Cost[Link{From: f(l.From), To: f(l.To)}] = c
	}
	for n, paths := range in.Permitted {
		cp := make([]Path, len(paths))
		for i, p := range paths {
			q := make(Path, len(p))
			for j, e := range p {
				q[j] = f(e)
			}
			cp[i] = q
		}
		out.Permitted[f(n)] = cp
	}
	return out
}

// pathUses reports whether p mentions n anywhere (as owner, hop, or origin).
func pathUses(p Path, n Node) bool {
	for _, e := range p {
		if e == n {
			return true
		}
	}
	return false
}

// RemoveNode returns a copy without node n: its ranking, every session
// touching it, and every permitted path crossing it are dropped.
func (in *Instance) RemoveNode(n Node) *Instance {
	out := in.Clone()
	nodes := out.Nodes[:0]
	for _, e := range out.Nodes {
		if e != n {
			nodes = append(nodes, e)
		}
	}
	out.Nodes = nodes
	links := out.Links[:0]
	for _, l := range out.Links {
		if l.From == n || l.To == n {
			delete(out.Cost, l)
			continue
		}
		links = append(links, l)
	}
	out.Links = links
	delete(out.Permitted, n)
	for owner, paths := range out.Permitted {
		kept := paths[:0]
		for _, p := range paths {
			if !pathUses(p, n) {
				kept = append(kept, p)
			}
		}
		out.Permitted[owner] = kept
	}
	return out
}

// RemoveSession returns a copy without the session between a and b (both
// directed links) and without any permitted path traversing it.
func (in *Instance) RemoveSession(a, b Node) *Instance {
	out := in.Clone()
	links := out.Links[:0]
	for _, l := range out.Links {
		if (l.From == a && l.To == b) || (l.From == b && l.To == a) {
			delete(out.Cost, l)
			continue
		}
		links = append(links, l)
	}
	out.Links = links
	uses := func(p Path) bool {
		for i := 0; i+1 < len(p); i++ {
			if (p[i] == a && p[i+1] == b) || (p[i] == b && p[i+1] == a) {
				return true
			}
		}
		return false
	}
	for owner, paths := range out.Permitted {
		kept := paths[:0]
		for _, p := range paths {
			if !uses(p) {
				kept = append(kept, p)
			}
		}
		out.Permitted[owner] = kept
	}
	return out
}

// DropPath returns a copy with the idx-th permitted path of node n removed
// (rank simplification); out-of-range indices return a plain clone.
func (in *Instance) DropPath(n Node, idx int) *Instance {
	out := in.Clone()
	paths := out.Permitted[n]
	if idx < 0 || idx >= len(paths) {
		return out
	}
	out.Permitted[n] = append(paths[:idx:idx], paths[idx+1:]...)
	return out
}

// PruneOrigins returns a copy whose origin list keeps only tokens still
// referenced by some permitted path, keeping shrunken corpus entries free
// of dangling tokens.
func (in *Instance) PruneOrigins() *Instance {
	out := in.Clone()
	used := map[Node]bool{}
	for _, paths := range out.Permitted {
		for _, p := range paths {
			if len(p) >= 2 {
				used[p[len(p)-1]] = true
			}
		}
	}
	origins := out.Origins[:0]
	for _, o := range out.Origins {
		if used[o] {
			origins = append(origins, o)
		}
	}
	out.Origins = origins
	return out
}
