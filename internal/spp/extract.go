package spp

import (
	"fmt"
	"sort"
)

// This file implements SPP extraction from protocol executions (§VI-B): in
// the absence of real router configurations, FSR populates the permitted
// paths of each router from the route advertisements observed during a GPV
// run, then ranks them (for iBGP, by IGP cost to the egress) to obtain the
// per-node rankings the analysis needs.

// Observation is one observed route at a node: the advertisement's path as
// received during a protocol execution.
type Observation struct {
	Node Node
	Path Path
}

// Ranker orders a node's observed paths; lower rank is more preferred.
// Ties are broken deterministically by path rendering.
type Ranker func(n Node, p Path) int

// IGPCostRanker ranks paths by total IGP cost over the instance's annotated
// link costs — the §VI-B route preference (lowest IGP cost to the egress
// wins). Paths crossing unannotated links count those links as cost zero.
func IGPCostRanker(cost map[Link]int) Ranker {
	return func(_ Node, p Path) int {
		total := 0
		for i := 0; i+2 < len(p); i++ { // last hop is the origin token
			total += cost[Link{p[i], p[i+1]}]
		}
		return total
	}
}

// Extract builds an SPP instance from observed advertisements: each node's
// permitted set is exactly its observed paths, ranked by rank. links and
// costs describe the topology the run executed on.
func Extract(name string, links []Link, costs map[Link]int, obs []Observation, rank Ranker) (*Instance, error) {
	in := NewInstance(name)
	for _, l := range links {
		in.AddNode(l.From)
		in.AddNode(l.To)
		in.Links = append(in.Links, l)
		if c, ok := costs[l]; ok {
			in.Cost[l] = c
		}
	}
	byNode := map[Node][]Path{}
	seen := map[Node]map[string]bool{}
	for _, o := range obs {
		if o.Path.Owner() != o.Node {
			return nil, fmt.Errorf("spp extract %s: node %s observed path %s owned by %s", name, o.Node, o.Path, o.Path.Owner())
		}
		if seen[o.Node] == nil {
			seen[o.Node] = map[string]bool{}
		}
		if seen[o.Node][o.Path.Key()] {
			continue
		}
		seen[o.Node][o.Path.Key()] = true
		byNode[o.Node] = append(byNode[o.Node], o.Path)
	}
	for n, paths := range byNode {
		sort.SliceStable(paths, func(i, j int) bool {
			ri, rj := rank(n, paths[i]), rank(n, paths[j])
			if ri != rj {
				return ri < rj
			}
			return paths[i].String() < paths[j].String()
		})
		in.Rank(n, paths...)
	}
	return in, nil
}
