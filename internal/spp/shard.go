// Sharded constraint generation and the internet-scale analysis fast path.
//
// ToAlgebra + analysis.Constraints is the fidelity path: it materializes
// the full §III-B algebra and derives the §IV-B constraint system through
// algebra.ConcatTable, which enumerates labels × signatures — O(n²) map
// lookups that dominate everything else from a few thousand nodes up. But
// the non-φ entries of that table are exactly the permitted extensions the
// instance already states: for each directed link u→v, the permitted paths
// q of v whose extension u·q is permitted at u, in rank order. The
// DeltaVerifier's segment layout exploits this per-link view for
// incremental re-verification; this file exploits it for scale — the
// per-node preference segments (Nodes order) followed by the per-link
// monotonicity segments (Links order) are emitted in parallel into one
// preallocated array-of-struct buffer, element-for-element identical to
// what the full pipeline generates, in O(paths + links·K²) instead of
// O(links·paths).
//
// On top of the sharded generator sits AnalyzeScale, the fast path
// Session.AnalyzeSPP takes for large instances: permitted paths become
// dense int32 ids (global rank order), the difference constraints go
// straight to smt.SolveDense — no Origin strings, no interning, no
// per-constraint provenance, not even the signature renderings (only the
// sanitized solver variables, each fused into a single allocation) — and
// the SCC-decomposed engine returns the canonical model, from which the
// analysis.Result is materialized with exactly the variables, values, and
// counts the classic path produces. Unsatisfiable instances re-solve
// through the provenance path (sharded AoS constraints +
// analysis.CheckPrepared), so minimized cores and §VI-B suspect sets stay
// bit-identical too. Instances the compact naming scheme cannot represent
// faithfully (duplicate solver-variable names, degenerate shapes) report
// ok=false and the caller stays on the classic path, mirroring the
// DeltaVerifier's degraded mode.

package spp

import (
	"context"
	"fmt"
	"runtime"
	"slices"
	"sort"
	"sync"
	"time"
	"unicode/utf8"

	"fsr/internal/algebra"
	"fsr/internal/analysis"
	"fsr/internal/obs"
	"fsr/internal/smt"
)

// linkMatch records one permitted extension: Permitted[Links[li].To][tq]
// extended over link li equals Permitted[Links[li].From][fq]. Matches are
// collected in link order, so the j-th match is monotonicity constraint
// totalPref+j of the canonical emission order.
type linkMatch struct {
	li, tq, fq int32
}

// shardPrep is the interned, densely indexed view of an instance the
// sharded generator and the scale path share. Per-path state lives in flat
// arrays indexed by global path id ((node, rank) order) rather than
// per-node slices — at 10⁵ nodes the slice headers alone would dominate
// allocation — and signature renderings are not materialized at all until
// a provenance buffer asks for them.
type shardPrep struct {
	in       *Instance
	nodeIdx  map[Node]int32
	perms    [][]Path // per node index: its permitted paths (shared, not copied)
	linkEnds []int32  // per link: from-index, to-index (2 entries each; −1 undeclared)
	pathOff  []int32  // global path-id base per node; id = pathOff[ni]+rank
	nPaths   int
	vars     []smt.Var // per path id: the sanitized solver variable
	prefOff  []int32   // per node: first preference-constraint index
	matches  []linkMatch
	// varOwner maps each solver variable name to its owning node index —
	// the §VI-B suspect lookup, built lazily (only the unsat path reads
	// it; the duplicate gate runs on sorted hashes instead).
	varOwner map[string]int32
	ok       bool
}

// ownerMap lazily builds the variable-name → owning-node index.
func (p *shardPrep) ownerMap() map[string]int32 {
	if p.varOwner == nil {
		p.varOwner = make(map[string]int32, p.nPaths)
		for ni := 0; ni < len(p.perms); ni++ {
			for _, v := range p.vars[p.pathOff[ni]:p.pathOff[ni+1]] {
				p.varOwner[string(v)] = int32(ni)
			}
		}
	}
	return p.varOwner
}

func (p *shardPrep) totalPref() int32 { return p.prefOff[len(p.prefOff)-1] }
func (p *shardPrep) total() int32     { return p.totalPref() + int32(len(p.matches)) }

// parShards splits [0,n) into at most `workers` contiguous chunks and runs
// fn on each concurrently. fn receives (shard, lo, hi); shard indexes are
// dense so callers can collect per-shard results deterministically.
func parShards(n, workers int, fn func(shard, lo, hi int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if n == 0 {
		return
	}
	if workers <= 1 {
		fn(0, 0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	shard := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(shard, lo, hi int) {
			defer wg.Done()
			fn(shard, lo, hi)
		}(shard, lo, hi)
		shard++
	}
	wg.Wait()
}

// shardCount returns the number of chunks parShards(n, workers, ·) will
// run — for sizing per-shard result buffers.
func shardCount(n, workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if n == 0 {
		return 0
	}
	if workers <= 1 {
		return 1
	}
	chunk := (n + workers - 1) / workers
	return (n + chunk - 1) / chunk
}

// cleanByte maps each ASCII byte to itself when it is in
// analysis.sanitize's identifier-safe set and to '_' otherwise.
var cleanByte = func() (t [128]byte) {
	for i := range t {
		c := byte(i)
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' {
			t[i] = c
		} else {
			t[i] = '_'
		}
	}
	return
}()

// appendClean appends s with every rune outside analysis.sanitize's
// identifier-safe set replaced by '_'. ASCII bytes go through the lookup
// table; a multi-byte (or invalid) rune collapses to a single '_',
// matching sanitize's per-rune substitution.
func appendClean(b []byte, s string) []byte {
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			b = append(b, cleanByte[c])
			i++
			continue
		}
		_, size := utf8.DecodeRuneInString(s[i:])
		b = append(b, '_')
		i += size
	}
	return b
}

// renderVar computes analysis.VarName(sigName(q)) — the sanitized solver
// variable — in a single allocation, fusing sigName's rendering (the bare
// origin token for two-element paths, otherwise "r_" + the dot- or
// butt-joined elements of Path.String) with sanitize's per-rune '_'
// substitution. buf is a scratch buffer returned for reuse.
func renderVar(buf []byte, q Path) (smt.Var, []byte) {
	buf = buf[:0]
	if len(q) == 2 {
		buf = appendClean(buf, string(q[1]))
		if len(buf) == 0 {
			return "sig", buf // sanitize("") == "sig"
		}
		return smt.Var(buf), buf
	}
	single := true
	for _, n := range q {
		if len(n) > 1 && !isOrigin(n) {
			single = false
			break
		}
	}
	buf = append(buf, 'r', '_')
	for i, n := range q {
		if i > 0 && !single {
			buf = append(buf, '_') // the '.' join, post-sanitize
		}
		buf = appendClean(buf, string(n))
	}
	return smt.Var(buf), buf
}

// buildShardPrep validates the instance (sharded — the quadratic Validate
// scans don't survive 100k nodes), interns every permitted path's solver
// variable into the flat array, and collects the permitted-extension
// matches in link order. A non-nil error is a structural validation
// failure with Validate's message shapes; ok=false flags instances the
// compact naming scheme cannot represent.
func buildShardPrep(in *Instance, workers int) (*shardPrep, error) {
	nn := len(in.Nodes)
	nl := len(in.Links)
	p := &shardPrep{
		in:       in,
		nodeIdx:  make(map[Node]int32, nn),
		perms:    make([][]Path, nn),
		linkEnds: make([]int32, 2*nl),
		pathOff:  make([]int32, nn+1),
		prefOff:  make([]int32, nn+1),
	}
	for i, n := range in.Nodes {
		p.nodeIdx[n] = int32(i)
	}
	for n := range in.Permitted {
		if _, ok := p.nodeIdx[n]; !ok {
			return nil, fmt.Errorf("spp %s: ranking for undeclared node %s", in.Name, n)
		}
	}
	for ni, n := range in.Nodes {
		paths := in.Permitted[n]
		p.perms[ni] = paths
		p.pathOff[ni+1] = p.pathOff[ni] + int32(len(paths))
		c := int32(0)
		if len(paths) > 1 {
			c = int32(len(paths) - 1)
		}
		p.prefOff[ni+1] = p.prefOff[ni] + c
	}
	p.nPaths = int(p.pathOff[nn])

	origins := make(map[Node]bool, len(in.Origins))
	for _, o := range in.Origins {
		origins[o] = true
	}
	// One string-resolution pass over the links: index pairs for the match
	// and fill loops. Links with undeclared endpoints can't be resolved and
	// never produce matches; paths crossing them fall to the string-keyed
	// validator below, where the "crosses undeclared node" error stays
	// reachable exactly where Validate reports it.
	// Sessions append both directions back to back, so the previous link's
	// endpoints predict this one's — string equality on the shared backing
	// array short-circuits before hashing.
	var cacheA, cacheB Node
	var cacheAi, cacheBi int32
	var haveA, haveB bool
	resolve := func(n Node) int32 {
		if haveA && n == cacheA {
			return cacheAi
		}
		if haveB && n == cacheB {
			return cacheBi
		}
		id, ok := p.nodeIdx[n]
		if !ok {
			id = -1
		}
		cacheA, cacheAi, haveA = cacheB, cacheBi, haveB
		cacheB, cacheBi, haveB = n, id, true
		return id
	}
	for li, l := range in.Links {
		p.linkEnds[2*li], p.linkEnds[2*li+1] = resolve(l.From), resolve(l.To)
	}

	// Permitted-extension matches: one parallel pass, per-shard buffers
	// concatenated in shard order. Shards are contiguous link ranges, so
	// concatenation preserves the canonical link-order emission.
	bufs := make([][]linkMatch, shardCount(nl, workers))
	parShards(nl, workers, func(shard, lo, hi int) {
		var buf []linkMatch
		for li := lo; li < hi; li++ {
			fi, ti := p.linkEnds[2*li], p.linkEnds[2*li+1]
			if fi < 0 || ti < 0 {
				continue
			}
			from, permF := in.Links[li].From, p.perms[fi]
			for tq, q := range p.perms[ti] {
				if fq := extensionRank(permF, from, q); fq >= 0 {
					buf = append(buf, linkMatch{int32(li), int32(tq), fq})
				}
			}
		}
		bufs[shard] = buf
	})
	if len(bufs) == 1 {
		p.matches = bufs[0]
	} else {
		total := 0
		for _, b := range bufs {
			total += len(b)
		}
		p.matches = make([]linkMatch, 0, total)
		for _, b := range bufs {
			p.matches = append(p.matches, b...)
		}
	}

	// Validation by extension propagation. A two-element path is valid iff
	// it is [owner, origin]. A matched extension [From]+q over link li is
	// valid whenever q is: its first hop IS link li (both endpoints
	// declared), its owner is From by extensionRank's prefix check, and its
	// remaining hops and origin token are q's. Propagating validity through
	// the match list therefore proves every extension-structured path
	// without touching a map — and instances built by rank-and-extend (all
	// generators, and anything GenerateInternet produces) have no other
	// paths. Whatever is left unproven gets the string-keyed validator with
	// Validate's exact per-path error messages.
	valid := make([]bool, p.nPaths)
	parShards(nn, workers, func(_, lo, hi int) {
		for ni := lo; ni < hi; ni++ {
			n := in.Nodes[ni]
			base := p.pathOff[ni]
			for r, q := range p.perms[ni] {
				if len(q) == 2 && q[0] == n && origins[q[1]] {
					valid[base+int32(r)] = true
				}
			}
		}
	})
	for changed := true; changed; {
		changed = false
		for _, m := range p.matches {
			a := p.pathOff[p.linkEnds[2*m.li+1]] + m.tq
			b := p.pathOff[p.linkEnds[2*m.li]] + m.fq
			if valid[a] && !valid[b] {
				valid[b] = true
				changed = true
			}
		}
	}
	var links map[Link]bool
	for ni := 0; ni < nn; ni++ {
		base := p.pathOff[ni]
		for r, q := range p.perms[ni] {
			if valid[base+int32(r)] {
				continue
			}
			if links == nil {
				links = make(map[Link]bool, nl)
				for _, l := range in.Links {
					links[l] = true
				}
			}
			if err := validatePath(in, in.Nodes[ni], q, origins, links, p.nodeIdx); err != nil {
				return nil, err
			}
		}
	}

	// Solver-variable interning, sharded by node into the flat array. The
	// duplicate-screen hash rides along while the bytes are hot.
	p.vars = make([]smt.Var, p.nPaths)
	keys := make([]uint64, p.nPaths)
	parShards(nn, workers, func(_, lo, hi int) {
		var buf []byte
		for ni := lo; ni < hi; ni++ {
			base := p.pathOff[ni]
			for r, q := range p.perms[ni] {
				id := base + int32(r)
				p.vars[id], buf = renderVar(buf, q)
				keys[id] = fnv64(p.vars[id])
			}
		}
	})

	// Collision gate: a duplicated variable name — whether from equal
	// renderings (the classic path errors on those) or a sanitization
	// collision (the classic path suffixes them) — makes the compact
	// naming ambiguous, and the classic path must decide the instance.
	// Sorted 64-bit hashes screen for duplicates without a string map;
	// only a hash collision pays for the exact check.
	p.ok = nl > 0 && p.nPaths > 0
	if p.ok {
		slices.Sort(keys)
		for i := 1; i < p.nPaths; i++ {
			if keys[i] == keys[i-1] {
				seen := make(map[string]struct{}, p.nPaths)
				for _, v := range p.vars {
					if _, dup := seen[string(v)]; dup {
						p.ok = false
						obsShardCollisions.Inc()
						break
					}
					seen[string(v)] = struct{}{}
				}
				break
			}
		}
	}
	return p, nil
}

// fnv64 is FNV-1a over the variable name — the duplicate screen's hash.
func fnv64(v smt.Var) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(v); i++ {
		h ^= uint64(v[i])
		h *= 1099511628211
	}
	return h
}

// validatePath is one path's structural check, map-backed but with
// Validate's exact error messages.
func validatePath(in *Instance, n Node, p Path, origins map[Node]bool, links map[Link]bool, nodeIdx map[Node]int32) error {
	if len(p) < 2 {
		return fmt.Errorf("spp %s: node %s: path %q too short", in.Name, n, p)
	}
	if p.Owner() != n {
		return fmt.Errorf("spp %s: node %s: path %s not owned by node", in.Name, n, p)
	}
	if !origins[p[len(p)-1]] {
		return fmt.Errorf("spp %s: node %s: path %s does not end in an origin token", in.Name, n, p)
	}
	for i := 0; i+2 < len(p); i++ {
		if !links[Link{p[i], p[i+1]}] {
			return fmt.Errorf("spp %s: node %s: path %s uses missing link %s→%s", in.Name, n, p, p[i], p[i+1])
		}
	}
	for i := 1; i+1 < len(p); i++ {
		if _, ok := nodeIdx[p[i]]; !ok {
			return fmt.Errorf("spp %s: node %s: path %s crosses undeclared node %s", in.Name, n, p, p[i])
		}
	}
	return nil
}

// extensionRank returns the rank of the extension [from]+q in perm, or −1
// when the extension is not permitted. Allocation-free (the element-wise
// compare never materializes the extended path).
func extensionRank(perm []Path, from Node, q Path) int32 {
	for r, pp := range perm {
		if len(pp) != len(q)+1 || pp[0] != from {
			continue
		}
		match := true
		for i := range q {
			if pp[i+1] != q[i] {
				match = false
				break
			}
		}
		if match {
			return int32(r)
		}
	}
	return -1
}

// renderSyms materializes every path's signature rendering (sigName) into
// a flat array. Renderings exist purely for provenance — origin strings,
// PrefPair/ConcatEntry symbols — so only the AoS buffer pays for them; the
// dense sat path never calls this.
func (p *shardPrep) renderSyms(workers int) []string {
	defer timeEmit(obsEmitSyms, time.Now())
	syms := make([]string, p.nPaths)
	parShards(len(p.in.Nodes), workers, func(_, lo, hi int) {
		for ni := lo; ni < hi; ni++ {
			base := p.pathOff[ni]
			for r, q := range p.perms[ni] {
				syms[base+int32(r)] = sigName(q)
			}
		}
	})
	return syms
}

// shardedConstraints fills the preallocated constraint buffer in parallel,
// mirroring the DeltaVerifier's prefSeg/monoSeg emission — which is also
// exactly the emission order of algebra.Preferences followed by
// algebra.ConcatTable on the converted instance — element for element.
func (p *shardPrep) shardedConstraints(workers int) []analysis.Constraint {
	in := p.in
	syms := p.renderSyms(workers)
	totalPref := p.totalPref()
	cons := make([]analysis.Constraint, p.total())
	prefStart := time.Now()
	parShards(len(in.Nodes), workers, func(_, lo, hi int) {
		for ni := lo; ni < hi; ni++ {
			base := p.pathOff[ni]
			out := cons[p.prefOff[ni]:p.prefOff[ni+1]]
			for i := range out {
				a, b := base+int32(i), base+int32(i)+1
				pair := algebra.PrefPair{
					A:      algebra.Symbol(syms[a]),
					B:      algebra.Symbol(syms[b]),
					Strict: true,
				}
				out[i] = analysis.Constraint{
					Assertion: smt.Assertion{
						Rel:    smt.Lt,
						A:      smt.Term{Var: p.vars[a]},
						B:      smt.Term{Var: p.vars[b]},
						Origin: "pref: " + pair.String(),
					},
					Kind: analysis.KindPreference,
					Pref: pair,
				}
			}
		}
	})
	timeEmit(obsEmitPref, prefStart)
	monoStart := time.Now()
	parShards(len(p.matches), workers, func(_, lo, hi int) {
		for j := lo; j < hi; j++ {
			m := p.matches[j]
			l := in.Links[m.li]
			a := p.pathOff[p.linkEnds[2*m.li+1]] + m.tq
			b := p.pathOff[p.linkEnds[2*m.li]] + m.fq
			entry := algebra.ConcatEntry{
				Label: algebra.LSym("l_" + string(l.From) + string(l.To)),
				In:    algebra.Symbol(syms[a]),
				Out:   algebra.Symbol(syms[b]),
			}
			cons[totalPref+int32(j)] = analysis.Constraint{
				Assertion: smt.Assertion{
					Rel:    smt.Lt,
					A:      smt.Term{Var: p.vars[a]},
					B:      smt.Term{Var: p.vars[b]},
					Origin: "mono: " + entry.String(),
				},
				Kind:  analysis.KindMonotonicity,
				Entry: entry,
			}
		}
	})
	timeEmit(obsEmitMono, monoStart)
	return cons
}

// ShardedConstraints generates the instance's strict-monotonicity
// constraint system in parallel: element-for-element identical (assertion,
// origin, kind, provenance) to analysis.Constraints over in.ToAlgebra(),
// without materializing the algebra. ok=false means the instance's
// variable names collide (or the instance is degenerate) and the caller
// must use the classic path; a non-nil error is a validation failure.
func ShardedConstraints(in *Instance, workers int) ([]analysis.Constraint, bool, error) {
	p, err := buildShardPrep(in, workers)
	if err != nil {
		return nil, false, err
	}
	if !p.ok {
		return nil, false, nil
	}
	return p.shardedConstraints(workers), true, nil
}

// denseConstraints emits the same constraint system as compact
// smt.DenseConstraint records over global path ids (1-based; 0 is the
// solver's zero anchor) — no strings, no provenance — and marks which
// variables appear, since the classic path only interns (and models)
// variables that occur in some assertion.
func (p *shardPrep) denseConstraints(workers int) (cons []smt.DenseConstraint, appears []bool) {
	totalPref := p.totalPref()
	cons = make([]smt.DenseConstraint, p.total())
	prefStart := time.Now()
	parShards(len(p.in.Nodes), workers, func(_, lo, hi int) {
		for ni := lo; ni < hi; ni++ {
			base := p.pathOff[ni] + 1
			out := cons[p.prefOff[ni]:p.prefOff[ni+1]]
			for i := range out {
				out[i] = smt.DenseConstraint{A: base + int32(i), B: base + int32(i) + 1, Strict: true}
			}
		}
	})
	timeEmit(obsEmitDensePref, prefStart)
	monoStart := time.Now()
	parShards(len(p.matches), workers, func(_, lo, hi int) {
		for j := lo; j < hi; j++ {
			m := p.matches[j]
			cons[totalPref+int32(j)] = smt.DenseConstraint{
				A:      p.pathOff[p.linkEnds[2*m.li+1]] + m.tq + 1,
				B:      p.pathOff[p.linkEnds[2*m.li]] + m.fq + 1,
				Strict: true,
			}
		}
	})
	timeEmit(obsEmitDenseMono, monoStart)
	appears = make([]bool, p.nPaths+1)
	for i := range cons {
		appears[cons[i].A] = true
		appears[cons[i].B] = true
	}
	return cons, appears
}

// suspects mirrors Conversion.SuspectNodes over the prep's owner map: the
// owner of the less-preferred signature of each preference constraint and
// of the extended signature of each monotonicity constraint, deduplicated
// and sorted.
func (p *shardPrep) suspects(core []analysis.Constraint) []Node {
	seen := map[Node]bool{}
	var out []Node
	add := func(s algebra.Sig) {
		sym, ok := s.(algebra.Symbol)
		if !ok {
			return
		}
		ni, found := p.ownerMap()[string(analysis.VarName(string(sym)))]
		if !found {
			return
		}
		n := p.in.Nodes[ni]
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	for _, c := range core {
		switch c.Kind {
		case analysis.KindPreference:
			add(c.Pref.A)
		case analysis.KindMonotonicity:
			add(c.Entry.Out)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AnalyzeScale is the large-instance analysis fast path: sharded
// generation, dense encoding, and the SCC-decomposed solver, producing a
// Result (and §VI-B suspect set) bit-identical to
// analysis.CheckWith(in.ToAlgebra(), StrictMonotonicity) + SuspectNodes.
// Satisfiable instances never materialize a provenance constraint or even
// a signature rendering; unsatisfiable ones re-solve through the sharded
// AoS buffer and analysis.CheckPrepared so minimized cores keep their
// canonical order. ok=false (with nil error) means the instance needs the
// classic path — structural validation failures are also reported that
// way, so the classic path can raise its canonical error.
func AnalyzeScale(ctx context.Context, in *Instance, workers int) (analysis.Result, []Node, bool, error) {
	ctx, prepSpan := obs.StartSpan(ctx, "shard-prep")
	p, err := buildShardPrep(in, workers)
	prepSpan.End()
	if err != nil || !p.ok {
		obsPathFallback.Inc()
		return analysis.Result{}, nil, false, nil
	}
	ctx, emitSpan := obs.StartSpan(ctx, "dense-emit")
	dense, appears := p.denseConstraints(workers)
	emitSpan.AttrInt("constraints", int64(len(dense)))
	emitSpan.End()
	ctx, solveSpan := obs.StartSpan(ctx, "solve-dense")
	sat, model, stats, err := smt.SolveDense(ctx, p.nPaths, dense, workers)
	solveSpan.AttrInt("components", int64(stats.Components))
	solveSpan.AttrInt("levels", int64(stats.Levels))
	solveSpan.End()
	if err != nil {
		return analysis.Result{}, nil, false, err
	}
	name := "spp-" + in.Name
	if sat {
		obsPathDense.Inc()
		res := analysis.Result{
			Algebra:         name,
			Condition:       analysis.StrictMonotonicity,
			Sat:             true,
			NumPreference:   int(p.totalPref()),
			NumMonotonicity: len(p.matches),
			Stats:           stats,
		}
		nVars := 0
		res.Model = make(map[string]int, p.nPaths)
		for id := 1; id <= p.nPaths; id++ {
			if appears[id] {
				res.Model[string(p.vars[id-1])] = model[id]
				nVars++
			}
		}
		// Classic interning only counts appearing variables; the dense
		// solve saw every path id. Report the classic figures.
		res.Stats.Variables = nVars
		res.Stats.Edges = len(dense) + nVars
		return res, nil, true, nil
	}
	obsPathResolve.Inc()
	ctx, resolveSpan := obs.StartSpan(ctx, "resolve-classic")
	cons := p.shardedConstraints(workers)
	res, err := analysis.CheckPrepared(ctx, name, analysis.StrictMonotonicity, cons, smt.Native{})
	resolveSpan.End()
	if err != nil {
		return analysis.Result{}, nil, false, err
	}
	res.Stats.Components = stats.Components
	res.Stats.TrivialComponents = stats.TrivialComponents
	res.Stats.Levels = stats.Levels
	res.Stats.MaxLevelWidth = stats.MaxLevelWidth
	res.Stats.TarjanDuration = stats.TarjanDuration
	return res, p.suspects(res.Core), true, nil
}
