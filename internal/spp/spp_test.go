package spp

import (
	"testing"

	"fsr/internal/algebra"
	"fsr/internal/analysis"
)

// TestFigure3Constraints reproduces the §IV-C census for the Figure 3 iBGP
// instance: "All in all, eighteen constraints are generated" — nine
// preference constraints from the per-node rankings plus nine strict-
// monotonicity constraints from the realizable permitted paths.
func TestFigure3Constraints(t *testing.T) {
	conv, err := Figure3IBGP().ToAlgebra()
	if err != nil {
		t.Fatalf("ToAlgebra: %v", err)
	}
	res, err := analysis.Check(conv.Algebra, analysis.StrictMonotonicity)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if got := res.NumPreference + res.NumMonotonicity; got != 18 {
		t.Errorf("want 18 constraints as in the paper, got %d (%d pref + %d mono)",
			got, res.NumPreference, res.NumMonotonicity)
	}
	if res.NumPreference != 9 {
		t.Errorf("want 9 preference constraints, got %d", res.NumPreference)
	}
	if res.NumMonotonicity != 9 {
		t.Errorf("want 9 monotonicity constraints, got %d", res.NumMonotonicity)
	}
}

// TestFigure3Unsat reproduces §IV-C: the Figure 3 instance violates strict
// monotonicity (the iBGP system is known to be unsafe), and the unsat core
// implicates the route reflectors a, b, c but not the egress nodes d, e, f.
func TestFigure3Unsat(t *testing.T) {
	conv, err := Figure3IBGP().ToAlgebra()
	if err != nil {
		t.Fatalf("ToAlgebra: %v", err)
	}
	res, err := analysis.Check(conv.Algebra, analysis.StrictMonotonicity)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if res.Sat {
		t.Fatalf("Figure 3 instance should be unsat")
	}
	if len(res.Core) != 6 {
		t.Errorf("want the 6-constraint dispute-wheel core, got %d:\n%s", len(res.Core), res)
	}
	suspects := conv.SuspectNodes(res.Core)
	want := map[Node]bool{"a": true, "b": true, "c": true}
	for _, n := range suspects {
		if !want[n] {
			t.Errorf("core implicates unexpected node %s (egress nodes should be exonerated)", n)
		}
		delete(want, n)
	}
	for n := range want {
		t.Errorf("core should implicate reflector %s", n)
	}
}

// TestFigure3FixedSat reproduces the §IV-C validation step: after removing
// the preference cycle among the reflectors, the solver returns sat.
func TestFigure3FixedSat(t *testing.T) {
	conv, err := Figure3IBGPFixed().ToAlgebra()
	if err != nil {
		t.Fatalf("ToAlgebra: %v", err)
	}
	res, err := analysis.Check(conv.Algebra, analysis.StrictMonotonicity)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if !res.Sat {
		t.Fatalf("fixed instance should be sat:\n%s", res)
	}
}

// TestGadgetVerdicts reproduces the §VI-C analysis results: GOODGADGET is
// safe, BADGADGET and DISAGREE are unsafe.
func TestGadgetVerdicts(t *testing.T) {
	cases := []struct {
		inst *Instance
		sat  bool
	}{
		{GoodGadget(), true},
		{BadGadget(), false},
		{Disagree(), false},
		{ChainGadget(5), true},
	}
	for _, c := range cases {
		conv, err := c.inst.ToAlgebra()
		if err != nil {
			t.Fatalf("%s: ToAlgebra: %v", c.inst.Name, err)
		}
		res, err := analysis.Check(conv.Algebra, analysis.StrictMonotonicity)
		if err != nil {
			t.Fatalf("%s: Check: %v", c.inst.Name, err)
		}
		if res.Sat != c.sat {
			t.Errorf("%s: want sat=%v, got %s", c.inst.Name, c.sat, res)
		}
	}
}

// TestConversionStructure checks the §III-B conversion on Figure 3: unique
// labels per directed link, unique signatures per permitted path, and the
// example preference r_aber2 ≺ r_adr1 at node a.
func TestConversionStructure(t *testing.T) {
	in := Figure3IBGP()
	conv, err := in.ToAlgebra()
	if err != nil {
		t.Fatalf("ToAlgebra: %v", err)
	}
	if got, want := len(conv.LabelOf), len(in.Links); got != want {
		t.Errorf("want %d labels, got %d", want, got)
	}
	total := 0
	for _, paths := range in.Permitted {
		total += len(paths)
	}
	if got := len(conv.PathOf); got != total {
		t.Errorf("want %d signatures, got %d", total, got)
	}
	sigAber2 := conv.SigOf[P("a", "b", "e", "r2").Key()]
	sigAdr1 := conv.SigOf[P("a", "d", "r1").Key()]
	if sigAber2 == nil || sigAdr1 == nil {
		t.Fatalf("missing signatures for node a's permitted paths")
	}
	if !conv.Algebra.Prefer(sigAber2, sigAdr1) {
		t.Errorf("node a should prefer %s over %s", sigAber2, sigAdr1)
	}
	if conv.Algebra.Prefer(sigAdr1, sigAber2) {
		t.Errorf("preference should be strict")
	}
	// The concatenation example of §III-B: r_aber2 = l_ab ⊕ r_ber2.
	lab := conv.LabelOf[Link{"a", "b"}]
	sigBer2 := conv.SigOf[P("b", "e", "r2").Key()]
	if got := conv.Algebra.Concat(lab, sigBer2); got != sigAber2 {
		t.Errorf("l_ab ⊕ r_ber2 = %v, want %v", got, sigAber2)
	}
	// A non-permitted combination is φ: l_cb ⊕ r_ber2 = φ (path cber2 is
	// not in c's ranking).
	lcb := conv.LabelOf[Link{"c", "b"}]
	if got := conv.Algebra.Concat(lcb, sigBer2); !algebra.IsProhibited(got) {
		t.Errorf("l_cb ⊕ r_ber2 should be φ, got %v", got)
	}
}

// TestOriginations checks the origination set: the three egress nodes hold
// their externally learned routes.
func TestOriginations(t *testing.T) {
	conv, err := Figure3IBGP().ToAlgebra()
	if err != nil {
		t.Fatalf("ToAlgebra: %v", err)
	}
	origs := conv.Originations()
	if len(origs) != 3 {
		t.Fatalf("want 3 originations, got %d", len(origs))
	}
	byNode := map[Node]algebra.Sig{}
	for _, o := range origs {
		byNode[o.Node] = o.Sig
	}
	for node, sig := range map[Node]string{"d": "r1", "e": "r2", "f": "r3"} {
		if got := byNode[node]; got == nil || got.String() != sig {
			t.Errorf("node %s should originate %s, got %v", node, sig, got)
		}
	}
}
