// Package pathvector implements the Generalized Path Vector protocol of
// §V-A natively in Go: a path-vector mechanism parameterized by a routing
// algebra. It is the compiled counterpart of the NDlog GPV program — the
// engine package executes the same four rules interpretively; this package
// executes them directly, and the equivalence of the two is tested.
//
// Per-message semantics follow the GPV rules:
//
//	gpvRecv:   on an advertisement from V, apply the import filter
//	           ⊕I over label(U→V); if imported, generate the new signature
//	           with ⊕P and the new path (loop-checked).
//	gpvStore:  keep the candidate route, keyed by (destination, neighbor) —
//	           a neighbor's new advertisement replaces its old one, BGP's
//	           implicit withdraw.
//	gpvSelect: recompute the most preferred candidate with ⪯.
//	gpvSend:   when the selection changes, schedule a (batched)
//	           re-advertisement to every neighbor whose export filter ⊕E
//	           over label(U→N) admits the route; neighbors that previously
//	           received a now-filtered or withdrawn route get a withdraw.
//
// Label orientation: the *receiver* U of an advertisement from V evaluates
// ⊕I and ⊕P over the label of its own link U→V; the *exporter* U sending to
// N evaluates ⊕E over the label of U→N. This is the self-consistent reading
// of the paper's §III-A operators (see DESIGN.md).
package pathvector

import (
	"fmt"
	"time"

	"fsr/internal/algebra"
	"fsr/internal/simnet"
)

// Advert is a route advertisement: dest D reachable via Path with signature
// Sig. Origination announcements carry Origination=true and no signature —
// the receiver derives the one-hop signature from the algebra's origination
// set (§V-B step 4).
type Advert struct {
	Dest        simnet.NodeID
	Path        []simnet.NodeID
	SigKey      string // rendered signature (wire form)
	Origination bool
}

// Withdraw revokes the sender's advertisement for Dest.
type Withdraw struct {
	Dest simnet.NodeID
}

// WireSize estimates the on-the-wire size of an advert: a fixed header plus
// four bytes per path element, the granularity the bandwidth figures need.
func (a Advert) WireSize() int { return 20 + 4*len(a.Path) }

// WireSize of a withdraw: header only.
func (w Withdraw) WireSize() int { return 24 }

func init() {
	simnet.RegisterPayload(Advert{})
	simnet.RegisterPayload(Withdraw{})
}

// Route is a stored candidate route.
type Route struct {
	Dest simnet.NodeID
	Path []simnet.NodeID
	Sig  algebra.Sig
}

// Config parameterizes a GPV node.
type Config struct {
	// Algebra is the policy configuration.
	Algebra algebra.Algebra
	// Label returns the label of the directed link from→to. It must be
	// defined for every adjacent pair.
	Label func(from, to simnet.NodeID) algebra.Label
	// Originations are the routes this node injects at start (externally
	// learned routes in iBGP instances; self-destination announcements are
	// covered by SelfOriginate instead).
	Originations []Route
	// SelfOriginate, when true, makes the node announce itself as a
	// destination: neighbors derive the one-hop signature from the
	// algebra's origination set. This is the eBGP-style full-mesh workload
	// of §VI-A.
	SelfOriginate bool
	// BatchInterval batches route propagation (the paper configures 1 s in
	// §VI-A). Zero sends immediately.
	BatchInterval time.Duration
	// StartStagger delays protocol start by a node-deterministic offset in
	// [0, StartStagger), desynchronizing batch phases the way real routers
	// are desynchronized. DISAGREE-style gadgets rely on it to escape the
	// synchronous oscillation.
	StartStagger time.Duration
	// MaxPathLen, when positive, rejects adverts whose resulting path
	// exceeds the cap — used by the §VI-B collection runs to bound the
	// permitted-path harvest.
	MaxPathLen int
	// OnAdvert, when set, observes every imported (non-filtered)
	// advertisement — the hook §VI-B uses to extract SPP instances from
	// executions.
	OnAdvert func(node simnet.NodeID, rt Route)
	// SigFromKey recovers a signature from its wire rendering. Required
	// because signatures travel as strings; the default understands the
	// renderings of the built-in algebras via SigCodec.
	SigFromKey func(key string) (algebra.Sig, bool)
}

// Node is a GPV protocol instance attached to one simnet node. Create with
// NewNode; one Node per network node.
type Node struct {
	cfg Config
	// routes[dest][neighbor] is the candidate learned from neighbor.
	routes map[simnet.NodeID]map[simnet.NodeID]Route
	// best[dest] is the current selection.
	best map[simnet.NodeID]Route
	// advertised[dest][neighbor] records what we last sent (implicit-
	// withdraw bookkeeping).
	advertised map[simnet.NodeID]map[simnet.NodeID]string
	// dirty marks destinations whose selection changed since the last
	// flush.
	dirty map[simnet.NodeID]bool
	// flushScheduled guards the batch timer.
	flushScheduled bool
	started        bool
	// origsOff withholds Config.Originations (the mid-run policy-change
	// fault; see SetOriginationsEnabled in churn.go).
	origsOff bool
	// changes counts selection changes across all destinations, cumulative
	// across restarts; lastChange is the instant of the most recent one.
	// Campaign drivers use them to spot oscillating nodes under churn.
	changes    int64
	lastChange time.Duration
}

var _ simnet.Handler = (*Node)(nil)

// NewNode builds a GPV node from the configuration.
func NewNode(cfg Config) *Node {
	if cfg.SigFromKey == nil {
		codec := NewSigCodec(cfg.Algebra)
		cfg.SigFromKey = codec.FromKey
	}
	return &Node{
		cfg:        cfg,
		routes:     map[simnet.NodeID]map[simnet.NodeID]Route{},
		best:       map[simnet.NodeID]Route{},
		advertised: map[simnet.NodeID]map[simnet.NodeID]string{},
		dirty:      map[simnet.NodeID]bool{},
	}
}

// Best returns the node's current selection for dest.
func (n *Node) Best(dest simnet.NodeID) (Route, bool) {
	r, ok := n.best[dest]
	return r, ok
}

// Routes returns the number of destinations with a selected route.
func (n *Node) Routes() int { return len(n.best) }

// Start implements simnet.Handler: inject originations and self-origination.
func (n *Node) Start(env simnet.Env) {
	start := func() {
		n.started = true
		if !n.origsOff {
			for _, rt := range n.cfg.Originations {
				n.routes[rt.Dest] = map[simnet.NodeID]Route{env.Self(): rt}
				n.reselect(env, rt.Dest)
			}
		}
		if n.cfg.SelfOriginate {
			self := env.Self()
			n.best[self] = Route{Dest: self, Path: []simnet.NodeID{self}}
			n.dirty[self] = true
			n.scheduleFlush(env)
		}
	}
	if n.cfg.StartStagger > 0 {
		d := time.Duration(env.Rand().Int63n(int64(n.cfg.StartStagger)))
		env.Schedule(d, start)
	} else {
		start()
	}
}

// Receive implements simnet.Handler: the gpvRecv rule.
func (n *Node) Receive(env simnet.Env, from simnet.NodeID, payload any) {
	switch m := payload.(type) {
	case Advert:
		n.receiveAdvert(env, from, m)
	case Withdraw:
		n.receiveWithdraw(env, from, m)
	default:
		panic(fmt.Sprintf("pathvector: unexpected payload %T", payload))
	}
}

func (n *Node) receiveAdvert(env simnet.Env, from simnet.NodeID, adv Advert) {
	self := env.Self()
	// Path-vector loop prevention: reject adverts already containing us. A
	// rejected advert still implicitly withdraws the neighbor's previous
	// announcement (each UPDATE replaces the neighbor's prior route).
	for _, hop := range adv.Path {
		if hop == self {
			n.dropCandidate(env, adv.Dest, from)
			return
		}
	}
	l := n.cfg.Label(self, from) // receiver-side label for link U→V
	var sig algebra.Sig
	if adv.Origination {
		// One-hop route: signature from the origination set (§V-B step 4).
		sig = n.cfg.Algebra.Origin(l)
	} else {
		prev, ok := n.cfg.SigFromKey(adv.SigKey)
		if !ok {
			// Unknown signature: treat as prohibited (and as an implicit
			// withdraw of the neighbor's previous route).
			n.dropCandidate(env, adv.Dest, from)
			return
		}
		// gpvRecv: import filter, then signature generation.
		if !n.cfg.Algebra.Import(l, prev) {
			return
		}
		sig = n.cfg.Algebra.Concat(l, prev)
	}
	if algebra.IsProhibited(sig) {
		// Filtered: if this neighbor previously contributed a candidate for
		// the destination, its replacement advert revokes it.
		n.dropCandidate(env, adv.Dest, from)
		return
	}
	path := append([]simnet.NodeID{self}, adv.Path...)
	if n.cfg.MaxPathLen > 0 && len(path) > n.cfg.MaxPathLen {
		n.dropCandidate(env, adv.Dest, from)
		return
	}
	rt := Route{Dest: adv.Dest, Path: path, Sig: sig}
	if n.cfg.OnAdvert != nil {
		n.cfg.OnAdvert(self, rt)
	}
	// gpvStore with (dest, neighbor) keying: implicit withdraw of the
	// neighbor's previous advertisement.
	if n.routes[adv.Dest] == nil {
		n.routes[adv.Dest] = map[simnet.NodeID]Route{}
	}
	n.routes[adv.Dest][from] = rt
	n.reselect(env, adv.Dest)
}

func (n *Node) receiveWithdraw(env simnet.Env, from simnet.NodeID, w Withdraw) {
	n.dropCandidate(env, w.Dest, from)
}

func (n *Node) dropCandidate(env simnet.Env, dest, from simnet.NodeID) {
	if cands := n.routes[dest]; cands != nil {
		if _, had := cands[from]; had {
			delete(cands, from)
			n.reselect(env, dest)
		}
	}
}

// reselect implements gpvSelect: recompute the most preferred candidate.
// Ties (equally preferred or unordered signatures) break deterministically
// toward the shorter path, then the lexicographically smaller one — the
// stand-in for BGP's final tie-breakers, which the algebra leaves open.
func (n *Node) reselect(env simnet.Env, dest simnet.NodeID) {
	var best Route
	hasBest := false
	cands := n.routes[dest]
	for _, nb := range sortedNeighbors(cands) {
		rt := cands[nb]
		if !hasBest {
			best, hasBest = rt, true
			continue
		}
		if better(n.cfg.Algebra, rt, best) {
			best = rt
		}
	}
	prev, had := n.best[dest]
	switch {
	case !hasBest && !had:
		return
	case hasBest && had && prev.Sig == best.Sig && pathEqual(prev.Path, best.Path):
		return
	case hasBest:
		n.best[dest] = best
	default:
		delete(n.best, dest)
	}
	n.changes++
	n.lastChange = env.Now()
	n.dirty[dest] = true
	n.scheduleFlush(env)
}

// better reports whether a should replace b as the selection.
func better(alg algebra.Algebra, a, b Route) bool {
	ab := alg.Prefer(a.Sig, b.Sig)
	ba := alg.Prefer(b.Sig, a.Sig)
	switch {
	case ab && !ba:
		return true
	case ba && !ab:
		return false
	default:
		// Equally preferred or unordered: deterministic tie-break.
		if len(a.Path) != len(b.Path) {
			return len(a.Path) < len(b.Path)
		}
		return pathLess(a.Path, b.Path)
	}
}

// scheduleFlush arranges a batched gpvSend. With batching, at most one
// flush timer is outstanding; without, the flush runs on the next event.
// The batch timer is jittered by up to 50% in the manner of BGP MRAI
// timer (RFC 4271 §9.2.1.1): without it, symmetric gadgets such as DISAGREE
// stay in deterministic lockstep and never settle into a stable state.
func (n *Node) scheduleFlush(env simnet.Env) {
	if n.flushScheduled {
		return
	}
	n.flushScheduled = true
	d := n.cfg.BatchInterval
	if d > 0 {
		d += time.Duration(env.Rand().Int63n(int64(d)/2 + 1))
	}
	env.Schedule(d, func() {
		n.flushScheduled = false
		n.flush(env)
	})
}

// flush implements gpvSend: advertise every dirty destination to every
// neighbor admitted by the export filter, and withdraw from neighbors that
// previously received a route we can no longer offer them.
func (n *Node) flush(env simnet.Env) {
	self := env.Self()
	dests := sortedNeighbors(n.dirty)
	n.dirty = map[simnet.NodeID]bool{}
	for _, dest := range dests {
		best, has := n.best[dest]
		if n.advertised[dest] == nil {
			n.advertised[dest] = map[simnet.NodeID]string{}
		}
		sent := n.advertised[dest]
		for _, nb := range env.Neighbors() {
			if nb == dest && n.cfg.SelfOriginate {
				// Never advertise a node to itself.
				continue
			}
			want := ""
			var payload any
			var size int
			if has {
				if dest == self && n.cfg.SelfOriginate {
					// Origination announcement: signature derived by the
					// receiver (§V-B step 4); not subject to ⊕E.
					adv := Advert{Dest: dest, Path: best.Path, Origination: true}
					want, payload, size = "origin:"+string(dest), adv, adv.WireSize()
				} else if n.cfg.Algebra.Export(n.cfg.Label(self, nb), best.Sig) {
					adv := Advert{Dest: dest, Path: best.Path, SigKey: sigKey(best.Sig)}
					want, payload, size = adv.SigKey+"|"+pathKey(best.Path), adv, adv.WireSize()
				}
			}
			prev, hadPrev := sent[nb]
			if want == "" {
				if hadPrev && prev != "" {
					w := Withdraw{Dest: dest}
					env.Send(nb, w, w.WireSize())
					sent[nb] = ""
				}
				continue
			}
			if !hadPrev || prev != want {
				env.Send(nb, payload, size)
				sent[nb] = want
			}
		}
	}
}

func sigKey(s algebra.Sig) string {
	if s == nil {
		return ""
	}
	return s.String()
}

func pathKey(p []simnet.NodeID) string {
	out := ""
	for _, n := range p {
		out += string(n) + "/"
	}
	return out
}

func pathEqual(a, b []simnet.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func pathLess(a, b []simnet.NodeID) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// sortedNeighbors returns map keys in sorted order for deterministic
// iteration.
func sortedNeighbors[V any](m map[simnet.NodeID]V) []simnet.NodeID {
	out := make([]simnet.NodeID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
