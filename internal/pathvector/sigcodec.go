package pathvector

import (
	"strconv"

	"fsr/internal/algebra"
)

// SigCodec recovers signatures from their wire rendering (Sig.String()).
// Finite algebras decode by table lookup; closed-form numeric algebras parse
// integers; lexical products decode componentwise. Adverts carry signatures
// as strings so that simulation payloads, deployment gob payloads, and
// NDlog tuples all share one representation.
type SigCodec struct {
	byKey         map[string]algebra.Sig
	numeric       bool
	first, second *SigCodec
}

// NewSigCodec builds a codec for the algebra's signature universe.
func NewSigCodec(a algebra.Algebra) *SigCodec {
	if p, ok := a.(algebra.Product); ok {
		return &SigCodec{first: NewSigCodec(p.First), second: NewSigCodec(p.Second)}
	}
	sigs := a.Sigs()
	if sigs == nil {
		return &SigCodec{numeric: true}
	}
	c := &SigCodec{byKey: make(map[string]algebra.Sig, len(sigs))}
	for _, s := range sigs {
		c.byKey[s.String()] = s
	}
	return c
}

// FromKey decodes a rendered signature; ok is false for renderings outside
// the universe (treated as prohibited by the protocol).
func (c *SigCodec) FromKey(key string) (algebra.Sig, bool) {
	switch {
	case c.first != nil:
		inner, ok := stripParens(key)
		if !ok {
			return nil, false
		}
		a, b, ok := splitPair(inner)
		if !ok {
			return nil, false
		}
		sa, oka := c.first.FromKey(a)
		sb, okb := c.second.FromKey(b)
		if !oka || !okb {
			return nil, false
		}
		return algebra.SigPair{A: sa, B: sb}, true
	case c.numeric:
		n, err := strconv.Atoi(key)
		if err != nil {
			return nil, false
		}
		return algebra.Num(n), true
	default:
		s, ok := c.byKey[key]
		return s, ok
	}
}

// stripParens removes one layer of enclosing parentheses.
func stripParens(s string) (string, bool) {
	if len(s) < 2 || s[0] != '(' || s[len(s)-1] != ')' {
		return "", false
	}
	return s[1 : len(s)-1], true
}

// splitPair splits "a,b" at the top-level comma (components may themselves
// be parenthesized pairs).
func splitPair(s string) (string, string, bool) {
	depth := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				return s[:i], s[i+1:], true
			}
		}
	}
	return "", "", false
}
