// Churn support: the optional simnet fault-injection hooks (Resetter,
// LinkObserver) implemented with BGP session semantics, plus the
// origination flap used as the mid-run policy-change fault and the
// selection-change accounting the campaign driver reads to find
// oscillating nodes.
//
// GPV only transmits on selection change, so a message lost while a link
// was down would never be repaired on its own. The LinkUp hook models BGP
// session re-establishment: forget what the neighbor was last sent and
// re-advertise the full table, which is exactly the repair real routers
// perform after a session reset (RFC 4271 §6.7: resend the entire Adj-RIB-Out).

package pathvector

import (
	"time"

	"fsr/internal/simnet"
)

var (
	_ simnet.Resetter     = (*Node)(nil)
	_ simnet.LinkObserver = (*Node)(nil)
)

// Reset implements simnet.Resetter: clear all protocol state, as a router
// losing its RIB on restart. Configuration (including an origination
// disable from SetOriginationsEnabled, which models a config change) and
// the cumulative selection-change counters survive.
func (n *Node) Reset() {
	n.routes = map[simnet.NodeID]map[simnet.NodeID]Route{}
	n.best = map[simnet.NodeID]Route{}
	n.advertised = map[simnet.NodeID]map[simnet.NodeID]string{}
	n.dirty = map[simnet.NodeID]bool{}
	n.flushScheduled = false
	n.started = false
}

// LinkDown implements simnet.LinkObserver: the session to nb is gone, so
// every candidate learned from it is invalid (BGP session teardown,
// RFC 4271 §6.7: delete all routes from the peer).
func (n *Node) LinkDown(env simnet.Env, nb simnet.NodeID) {
	for _, dest := range sortedNeighbors(n.routes) {
		n.dropCandidate(env, dest, nb)
	}
}

// LinkUp implements simnet.LinkObserver: the session to nb is back. Forget
// the Adj-RIB-Out bookkeeping for it and mark every selected destination
// dirty so the next flush re-advertises the full table to the rejoined
// peer (duplicate suppression keeps the other neighbors quiet).
func (n *Node) LinkUp(env simnet.Env, nb simnet.NodeID) {
	for _, dest := range sortedNeighbors(n.advertised) {
		delete(n.advertised[dest], nb)
	}
	for _, dest := range sortedNeighbors(n.best) {
		n.dirty[dest] = true
	}
	if len(n.dirty) > 0 {
		n.scheduleFlush(env)
	}
}

// SetOriginationsEnabled toggles the node's externally learned routes
// (Config.Originations) mid-run — the policy-change fault: disabling
// withdraws them from the network, re-enabling re-injects them. Idempotent.
// Self-origination is not affected.
func (n *Node) SetOriginationsEnabled(env simnet.Env, on bool) {
	if on == !n.origsOff {
		return
	}
	n.origsOff = !on
	if !n.started {
		return // Start (or the restart re-Start) honors origsOff.
	}
	self := env.Self()
	for _, rt := range n.cfg.Originations {
		if on {
			if n.routes[rt.Dest] == nil {
				n.routes[rt.Dest] = map[simnet.NodeID]Route{}
			}
			n.routes[rt.Dest][self] = rt
			n.reselect(env, rt.Dest)
		} else {
			n.dropCandidate(env, rt.Dest, self)
		}
	}
}

// SelectionChanges returns how many times the node's selection changed for
// any destination, cumulative across restarts. Under churn, a node whose
// count keeps growing is oscillating.
func (n *Node) SelectionChanges() int64 { return n.changes }

// LastSelectionChange returns the instant of the most recent selection
// change (zero if none). The maximum over all nodes is the network's
// route-settling time.
func (n *Node) LastSelectionChange() time.Duration { return n.lastChange }
