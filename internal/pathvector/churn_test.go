package pathvector

import (
	"testing"
	"time"

	"fsr/internal/simnet"
	"fsr/internal/spp"
)

// buildGoodGadget wires GOODGADGET onto a fresh simulated network.
func buildGoodGadget(t *testing.T) (*simnet.Network, map[simnet.NodeID]*Node) {
	t.Helper()
	conv, err := spp.GoodGadget().ToAlgebra()
	if err != nil {
		t.Fatal(err)
	}
	net := simnet.New(1, nil)
	nodes, err := BuildSPP(net, conv, simnet.DefaultLink(), testBase)
	if err != nil {
		t.Fatal(err)
	}
	return net, nodes
}

// wantPath asserts a node's selection for SPPDest.
func wantPath(t *testing.T, nodes map[simnet.NodeID]*Node, id simnet.NodeID, want ...simnet.NodeID) {
	t.Helper()
	best, ok := nodes[id].Best(SPPDest)
	if !ok {
		t.Fatalf("node %s has no route", id)
	}
	if !pathEqual(best.Path, want) {
		t.Errorf("node %s selected %v, want %v", id, best.Path, want)
	}
}

// TestLinkFlapReconverges: GOODGADGET's node 1 loses its preferred path
// when link 1–3 goes down, falls back, and regains it after the link
// recovers — the protocol re-converges to the original stable assignment.
func TestLinkFlapReconverges(t *testing.T) {
	net, nodes := buildGoodGadget(t)
	down := simnet.FaultEvent{Kind: simnet.FaultLinkDown, A: "1", B: "3"}
	up := simnet.FaultEvent{Kind: simnet.FaultLinkUp, A: "1", B: "3"}
	if err := net.ScheduleFault(2*time.Second, down); err != nil {
		t.Fatal(err)
	}
	if err := net.ScheduleFault(4*time.Second, up); err != nil {
		t.Fatal(err)
	}
	res := net.Run(30 * time.Second)
	if !res.Converged {
		t.Fatalf("should re-converge after the flap (ran to %v)", res.Time)
	}
	if res.Faults != 2 {
		t.Errorf("want 2 faults, got %d", res.Faults)
	}
	if res.Time <= res.LastFault {
		t.Errorf("convergence (%v) should postdate the last fault (%v)", res.Time, res.LastFault)
	}
	wantPath(t, nodes, "1", "1", "3", "r3")
	wantPath(t, nodes, "2", "2", "r2")
}

// TestRestartReconverges: restarting node 3 mid-run wipes its RIB; the
// LinkUp re-advertisements from its neighbors and its own re-origination
// restore the original stable assignment.
func TestRestartReconverges(t *testing.T) {
	net, nodes := buildGoodGadget(t)
	if err := net.ScheduleFault(2*time.Second, simnet.FaultEvent{Kind: simnet.FaultRestart, A: "3"}); err != nil {
		t.Fatal(err)
	}
	res := net.Run(30 * time.Second)
	if !res.Converged {
		t.Fatalf("should re-converge after the restart (ran to %v)", res.Time)
	}
	wantPath(t, nodes, "1", "1", "3", "r3")
	wantPath(t, nodes, "3", "3", "r3")
	if nodes["3"].SelectionChanges() == 0 {
		t.Errorf("node 3 should have recorded selection changes")
	}
}

// TestOriginationFlapReconverges: withdrawing node 3's externally learned
// route (the policy-change fault) forces the network onto fallbacks;
// restoring it brings the original assignment back.
func TestOriginationFlapReconverges(t *testing.T) {
	net, nodes := buildGoodGadget(t)
	flip := func(on bool) func(simnet.Env) {
		return func(env simnet.Env) { nodes["3"].SetOriginationsEnabled(env, on) }
	}
	if err := net.ScheduleCall(2*time.Second, "3", flip(false)); err != nil {
		t.Fatal(err)
	}
	if err := net.ScheduleCall(4*time.Second, "3", flip(true)); err != nil {
		t.Fatal(err)
	}
	res := net.Run(30 * time.Second)
	if !res.Converged {
		t.Fatalf("should re-converge after the origination flap (ran to %v)", res.Time)
	}
	wantPath(t, nodes, "1", "1", "3", "r3")
	wantPath(t, nodes, "3", "3", "r3")
}
