package pathvector

import (
	"fmt"

	"fsr/internal/algebra"
	"fsr/internal/simnet"
	"fsr/internal/spp"
)

// SPPDest is the implicit destination used when executing an SPP instance:
// all externally learned routes (r1, r2, …) reach the same destination
// outside the modeled network.
const SPPDest simnet.NodeID = "_dest"

// BuildSPPDeployment wires a GPV deployment (real TCP sockets) for an SPP
// instance — the same per-node configuration BuildSPP derives, attached to
// the deployment runtime instead of the simulator.
func BuildSPPDeployment(dep *simnet.Deployment, conv *spp.Conversion, base Config) (map[simnet.NodeID]*Node, error) {
	nodes, wires, err := sppNodes(conv, base)
	if err != nil {
		return nil, err
	}
	for _, n := range conv.Instance.Nodes {
		id := simnet.NodeID(n)
		if err := dep.AddNode(id, nodes[id]); err != nil {
			return nil, err
		}
	}
	for _, w := range wires {
		if err := dep.Connect(w[0], w[1]); err != nil {
			return nil, err
		}
	}
	return nodes, nil
}

// sppNodes builds the per-node protocol instances and the undirected wire
// list shared by the simulation and deployment builders.
func sppNodes(conv *spp.Conversion, base Config) (map[simnet.NodeID]*Node, [][2]simnet.NodeID, error) {
	in := conv.Instance
	label := func(from, to simnet.NodeID) algebra.Label {
		l := conv.LabelOf[spp.Link{From: spp.Node(from), To: spp.Node(to)}]
		if l == nil {
			panic(fmt.Sprintf("pathvector: no label for link %s→%s", from, to))
		}
		return l
	}
	codec := NewSigCodec(conv.Algebra)
	origs := map[spp.Node][]Route{}
	for _, o := range conv.Originations() {
		path := make([]simnet.NodeID, len(o.Path))
		for i, n := range o.Path {
			path[i] = simnet.NodeID(n)
		}
		origs[o.Node] = append(origs[o.Node], Route{Dest: SPPDest, Path: path, Sig: o.Sig})
	}
	nodes := map[simnet.NodeID]*Node{}
	for _, n := range in.Nodes {
		cfg := base
		cfg.Algebra = conv.Algebra
		cfg.Label = label
		cfg.Originations = origs[n]
		cfg.SelfOriginate = false
		cfg.SigFromKey = codec.FromKey
		nodes[simnet.NodeID(n)] = NewNode(cfg)
	}
	var wires [][2]simnet.NodeID
	seen := map[spp.Link]bool{}
	for _, l := range in.Links {
		if seen[l] || seen[spp.Link{From: l.To, To: l.From}] {
			continue
		}
		seen[l] = true
		wires = append(wires, [2]simnet.NodeID{simnet.NodeID(l.From), simnet.NodeID(l.To)})
	}
	return nodes, wires, nil
}

// BuildSPP wires a GPV network for an SPP instance onto an existing
// simulated network: one node per real instance node, one link per session,
// originations from the instance's egress paths, and the converted algebra
// as policy. base supplies the runtime knobs (batching, stagger, hooks);
// policy fields are filled in per node. It returns the protocol nodes for
// post-run inspection.
func BuildSPP(net *simnet.Network, conv *spp.Conversion, link simnet.LinkConfig, base Config) (map[simnet.NodeID]*Node, error) {
	nodes, wires, err := sppNodes(conv, base)
	if err != nil {
		return nil, err
	}
	for _, n := range conv.Instance.Nodes {
		id := simnet.NodeID(n)
		if err := net.AddNode(id, nodes[id]); err != nil {
			return nil, err
		}
	}
	for _, w := range wires {
		if err := net.Connect(w[0], w[1], link); err != nil {
			return nil, err
		}
	}
	return nodes, nil
}
