package pathvector

import (
	"testing"
	"time"

	"fsr/internal/simnet"
	"fsr/internal/spp"
)

// runSPP executes an SPP instance under GPV in simulation mode.
func runSPP(t *testing.T, in *spp.Instance, base Config, horizon time.Duration) (map[simnet.NodeID]*Node, simnet.RunResult) {
	t.Helper()
	conv, err := in.ToAlgebra()
	if err != nil {
		t.Fatalf("ToAlgebra(%s): %v", in.Name, err)
	}
	net := simnet.New(1, nil)
	nodes, err := BuildSPP(net, conv, simnet.DefaultLink(), base)
	if err != nil {
		t.Fatalf("BuildSPP(%s): %v", in.Name, err)
	}
	return nodes, net.Run(horizon)
}

var testBase = Config{
	BatchInterval: 20 * time.Millisecond,
	StartStagger:  15 * time.Millisecond,
}

// TestGoodGadgetConverges: GOODGADGET converges, and node 1 ends on its
// preferred (longer) path through node 3 — the route-recomputation behavior
// §VI-C describes.
func TestGoodGadgetConverges(t *testing.T) {
	nodes, res := runSPP(t, spp.GoodGadget(), testBase, 10*time.Second)
	if !res.Converged {
		t.Fatalf("GOODGADGET should converge")
	}
	best, ok := nodes["1"].Best(SPPDest)
	if !ok {
		t.Fatalf("node 1 has no route")
	}
	want := []simnet.NodeID{"1", "3", "r3"}
	if !pathEqual(best.Path, want) {
		t.Errorf("node 1 selected %v, want %v", best.Path, want)
	}
}

// TestBadGadgetOscillates: BADGADGET has no stable assignment, so the
// network keeps exchanging updates to the horizon ("the protocol continued
// to transmit a high rate of update messages indefinitely", §VI-C).
func TestBadGadgetOscillates(t *testing.T) {
	_, res := runSPP(t, spp.BadGadget(), testBase, 3*time.Second)
	if res.Converged {
		t.Fatalf("BADGADGET should not converge (took %v)", res.Time)
	}
	if res.Delivered < 100 {
		t.Errorf("expected a sustained update rate, got only %d deliveries", res.Delivered)
	}
}

// TestDisagreeConverges: DISAGREE oscillates transiently but converges to
// one of its two stable states once the nodes desynchronize.
func TestDisagreeConverges(t *testing.T) {
	nodes, res := runSPP(t, spp.Disagree(), testBase, 10*time.Second)
	if !res.Converged {
		t.Fatalf("DISAGREE should eventually converge")
	}
	b1, ok1 := nodes["1"].Best(SPPDest)
	b2, ok2 := nodes["2"].Best(SPPDest)
	if !ok1 || !ok2 {
		t.Fatalf("nodes lost their routes")
	}
	// Stable states: exactly one node gets its preferred indirect path.
	oneIndirect := (len(b1.Path) == 3) != (len(b2.Path) == 3)
	if !oneIndirect {
		t.Errorf("not a stable state: 1→%v, 2→%v", b1.Path, b2.Path)
	}
}

// TestFigure3GadgetOscillates: the Figure 3 iBGP gadget oscillates — each
// reflector prefers another reflector's client, so route changes chase each
// other around the reflector triangle.
func TestFigure3GadgetOscillates(t *testing.T) {
	_, res := runSPP(t, spp.Figure3IBGP(), testBase, 3*time.Second)
	if res.Converged {
		t.Fatalf("Figure 3 gadget should oscillate (converged at %v)", res.Time)
	}
}

// TestFigure3FixedConverges: with the preference cycle removed, the same
// topology converges, and every reflector selects its own client's route.
func TestFigure3FixedConverges(t *testing.T) {
	nodes, res := runSPP(t, spp.Figure3IBGPFixed(), testBase, 10*time.Second)
	if !res.Converged {
		t.Fatalf("fixed Figure 3 instance should converge")
	}
	for node, want := range map[simnet.NodeID][]simnet.NodeID{
		"a": {"a", "d", "r1"},
		"b": {"b", "e", "r2"},
		"c": {"c", "f", "r3"},
	} {
		best, ok := nodes[node].Best(SPPDest)
		if !ok {
			t.Fatalf("node %s has no route", node)
		}
		if !pathEqual(best.Path, want) {
			t.Errorf("node %s selected %v, want %v", node, best.Path, want)
		}
	}
}

// TestChainGadgetScales: safe chains converge for a range of sizes.
func TestChainGadgetScales(t *testing.T) {
	for _, n := range []int{2, 5, 10, 20} {
		_, res := runSPP(t, spp.ChainGadget(n), testBase, 30*time.Second)
		if !res.Converged {
			t.Errorf("chain(%d) should converge", n)
		}
	}
}

// TestSafeConvergesMoreTrafficWithGadgets: more GOODGADGET route
// recomputation means more messages but still convergence (§VI-C: "as the
// number of gadgets increases, both the convergence time and communication
// cost increase. … Nevertheless, all GOODGADGET scenarios converge").
func TestSafeConvergesDeterministically(t *testing.T) {
	_, res1 := runSPP(t, spp.GoodGadget(), testBase, 10*time.Second)
	_, res2 := runSPP(t, spp.GoodGadget(), testBase, 10*time.Second)
	if res1.Time != res2.Time || res1.Events != res2.Events {
		t.Errorf("simulation should be deterministic: %v/%d vs %v/%d",
			res1.Time, res1.Events, res2.Time, res2.Events)
	}
}

// TestDeploymentGPV runs the GOODGADGET over real TCP sockets (deployment
// mode) and checks it reaches the same selections as simulation mode.
func TestDeploymentGPV(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets")
	}
	conv, err := spp.GoodGadget().ToAlgebra()
	if err != nil {
		t.Fatal(err)
	}
	dep := simnet.NewDeployment(nil)
	nodes, err := BuildSPPDeployment(dep, conv, Config{
		BatchInterval: 20 * time.Millisecond,
		StartStagger:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := dep.Run(10*time.Second, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("deployment run should quiesce")
	}
	best, ok := nodes["1"].Best(SPPDest)
	if !ok || !pathEqual(best.Path, []simnet.NodeID{"1", "3", "r3"}) {
		t.Errorf("node 1 selected %v over TCP, want [1 3 r3]", best.Path)
	}
}
