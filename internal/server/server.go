package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"regexp"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"fsr/internal/analysis"
	"fsr/internal/obs"
	"fsr/internal/scenario"
	"fsr/internal/spp"
)

// Options configures a Server.
type Options struct {
	// Gadget resolves built-in instance names in POST /v1/instances
	// requests. The public fsr layer injects its gadget table here; nil
	// disables name-based loading (requests must carry a full instance).
	Gadget func(name string) (*spp.Instance, error)
	// CheckOracle re-runs every verification through the full-rebuild
	// pipeline and counts disagreements in fsr_oracle_mismatches_total —
	// the daemon-mode form of the differential oracle the tests enforce.
	CheckOracle bool
	// Pprof mounts net/http/pprof under /debug/pprof/ when set. Off by
	// default: the profiling surface leaks heap contents and must be
	// opted into on trusted listeners only.
	Pprof bool
	// Logger receives structured request, panic, and lifecycle records
	// when non-nil.
	Logger *slog.Logger
	// Analyze decides a one-shot instance for POST /v1/analyze. The public
	// fsr layer injects Session.AnalyzeSPP here (same downward-injection
	// pattern as Gadget); nil disables the endpoint. One-shot analysis is
	// how internet-scale instances reach the sharded/SCC fast path without
	// becoming resident delta verifiers.
	Analyze func(ctx context.Context, in *spp.Instance) (analysis.Result, []spp.Node, error)
	// DiagInterval and DiagWindow shape the time-series sampler backing
	// /v1/timeseries and /dashboard (defaults: 2s interval, 5m window).
	DiagInterval time.Duration
	DiagWindow   time.Duration
}

// Server is the verification daemon: a registry of named resident
// verifiers behind an HTTP/JSON API. Create one with New, mount Handler.
type Server struct {
	opts    Options
	metrics *Metrics

	stopOnce sync.Once
	stopDiag func()

	mu        sync.Mutex
	instances map[string]*instanceEntry
}

// instanceEntry is one resident instance. The entry lock serializes
// verifier access (a DeltaVerifier is single-goroutine); the registry lock
// is never held across a solve.
type instanceEntry struct {
	mu       sync.Mutex
	id       string
	v        *spp.DeltaVerifier
	created  time.Time
	verifies int
}

// New returns a Server with an empty registry and fresh metrics.
func New(opts Options) *Server {
	return &Server{opts: opts, metrics: NewMetrics(), instances: map[string]*instanceEntry{}}
}

// Metrics exposes the server's registry, for embedding tests.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Handler mounts the API:
//
//	POST /v1/instances              load an instance (by gadget name or inline JSON)
//	GET  /v1/instances              list resident instances
//	GET  /v1/instances/{id}         inspect one instance and its solver stats
//	POST /v1/instances/{id}/verify  decide safety (delta when possible)
//	POST /v1/instances/{id}/whatif  apply edits, re-verify, optionally discard
//	POST /v1/analyze                one-shot analysis (Options.Analyze only)
//	GET  /healthz                   liveness
//	GET  /metrics                   Prometheus text exposition
//	GET  /v1/timeseries             retained metric samples (JSON)
//	GET  /v1/flightrecorder         recent and slow operations (JSON)
//	GET  /dashboard                 live HTML dashboard
//	     /debug/pprof/              runtime profiling (Options.Pprof only)
//
// Handler also enables the flight recorder and starts the time-series
// sampler; call Close to stop it.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/instances", s.instrument("create", s.handleCreate))
	mux.HandleFunc("GET /v1/instances", s.instrument("list", s.handleList))
	mux.HandleFunc("GET /v1/instances/{id}", s.instrument("get", s.handleGet))
	mux.HandleFunc("POST /v1/instances/{id}/verify", s.instrument("verify", s.handleVerify))
	mux.HandleFunc("POST /v1/instances/{id}/whatif", s.instrument("whatif", s.handleWhatIf))
	if s.opts.Analyze != nil {
		mux.HandleFunc("POST /v1/analyze", s.instrument("analyze", s.handleAnalyze))
	}
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.instrument("metrics", s.metrics.handler))
	interval, window := s.opts.DiagInterval, s.opts.DiagWindow
	if interval <= 0 {
		interval = 2 * time.Second
	}
	if window <= 0 {
		window = 5 * time.Minute
	}
	obs.Flight().Enable(true)
	s.stopDiag = obs.MountDiagnostics(mux, interval, window, s.metrics)
	if s.opts.Pprof {
		MountPprof(mux)
	}
	return mux
}

// Close stops the time-series sampler started by Handler. Safe to call
// more than once; the diagnostic endpoints keep serving the retained
// window.
func (s *Server) Close() {
	s.stopOnce.Do(func() {
		if s.stopDiag != nil {
			s.stopDiag()
		}
	})
}

// MountPprof registers the net/http/pprof handlers on mux under
// /debug/pprof/. Shared by the daemon and by fsr campaign -metrics-addr.
func MountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// statusWriter captures the response code for instrumentation and whether
// the header was sent, so the panic middleware knows if a 500 can still go
// out cleanly.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(p)
}

// instrument wraps a handler with panic recovery, the request counter, the
// latency histogram, and optional logging. A panicking handler answers 500
// (when the header hasn't gone out yet), increments fsr_panics_total, and
// leaves the daemon serving — one poisoned request must not take down the
// registry for everyone else.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		defer func() {
			if p := recover(); p != nil {
				s.metrics.Panics.Inc(endpoint)
				if s.opts.Logger != nil {
					s.opts.Logger.Error("panic serving request",
						"method", r.Method, "path", r.URL.Path,
						"panic", fmt.Sprint(p), "stack", string(debug.Stack()))
				}
				if !sw.wrote {
					writeErr(sw, http.StatusInternalServerError, "internal error")
				}
				sw.code = http.StatusInternalServerError
			}
			elapsed := time.Since(start)
			s.metrics.Requests.Inc(endpoint, strconv.Itoa(sw.code))
			s.metrics.Latency.Observe(elapsed.Seconds(), endpoint)
			if s.opts.Logger != nil {
				s.opts.Logger.Info("request",
					"method", r.Method, "path", r.URL.Path,
					"code", sw.code, "dur", elapsed.Round(time.Microsecond).String())
			}
		}()
		h(sw, r)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding request: %v", err)
		return false
	}
	return true
}

// lookup resolves {id} to its entry or writes a 404.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *instanceEntry {
	id := r.PathValue("id")
	s.mu.Lock()
	ent := s.instances[id]
	s.mu.Unlock()
	if ent == nil {
		writeErr(w, http.StatusNotFound, "no instance %q", id)
	}
	return ent
}

var idPattern = regexp.MustCompile(`^[a-zA-Z0-9._-]{1,128}$`)

// createRequest loads an instance by built-in gadget name or inline JSON.
type createRequest struct {
	// ID names the resident instance; defaults to the instance's own name.
	ID string `json:"id,omitempty"`
	// Gadget is a built-in gadget name (mutually exclusive with Instance).
	Gadget string `json:"gadget,omitempty"`
	// Instance is a full instance in the corpus wire form.
	Instance *scenario.InstanceJSON `json:"instance,omitempty"`
}

type instanceInfo struct {
	ID       string `json:"id"`
	Name     string `json:"name"`
	Nodes    int    `json:"nodes"`
	Sessions int    `json:"sessions"`
	Degraded bool   `json:"degraded,omitempty"`
}

// resolveInstance loads a request's gadget or inline instance, writing the
// error response itself; nil means the response already went out.
func (s *Server) resolveInstance(w http.ResponseWriter, gadget string, inline *scenario.InstanceJSON) *spp.Instance {
	switch {
	case gadget != "" && inline != nil:
		writeErr(w, http.StatusBadRequest, "gadget and instance are mutually exclusive")
		return nil
	case gadget != "":
		if s.opts.Gadget == nil {
			writeErr(w, http.StatusBadRequest, "this server has no gadget resolver; send a full instance")
			return nil
		}
		inst, err := s.opts.Gadget(gadget)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return nil
		}
		return inst
	case inline != nil:
		inst, err := scenario.DecodeInstance(*inline)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "decoding instance: %v", err)
			return nil
		}
		return inst
	default:
		writeErr(w, http.StatusBadRequest, "request wants a gadget name or an inline instance")
		return nil
	}
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req createRequest
	if !readJSON(w, r, &req) {
		return
	}
	in := s.resolveInstance(w, req.Gadget, req.Instance)
	if in == nil {
		return
	}
	id := req.ID
	if id == "" {
		id = in.Name
	}
	if !idPattern.MatchString(id) {
		writeErr(w, http.StatusBadRequest, "instance id %q: want 1-128 chars of [a-zA-Z0-9._-]", id)
		return
	}
	v, err := spp.NewDeltaVerifier(in)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "loading instance: %v", err)
		return
	}
	ent := &instanceEntry{id: id, v: v, created: time.Now()}
	s.mu.Lock()
	if _, exists := s.instances[id]; exists {
		s.mu.Unlock()
		writeErr(w, http.StatusConflict, "instance %q already resident", id)
		return
	}
	s.instances[id] = ent
	s.metrics.Resident.Set(float64(len(s.instances)))
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, s.info(ent))
}

func (s *Server) info(ent *instanceEntry) instanceInfo {
	in := ent.v.Snapshot()
	// Links stores both directions of every session; report undirected.
	return instanceInfo{
		ID: ent.id, Name: in.Name,
		Nodes: len(in.Nodes), Sessions: len(in.Links) / 2,
		Degraded: ent.v.Degraded(),
	}
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	entries := make([]*instanceEntry, 0, len(s.instances))
	for _, ent := range s.instances {
		entries = append(entries, ent)
	}
	s.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].id < entries[j].id })
	infos := make([]instanceInfo, len(entries))
	for i, ent := range entries {
		ent.mu.Lock()
		infos[i] = s.info(ent)
		ent.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, map[string]any{"instances": infos})
}

type solverStats struct {
	Checks      int `json:"checks"`
	CacheHits   int `json:"cache_hits"`
	DeltaSolves int `json:"delta_solves"`
	FullSolves  int `json:"full_solves"`
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	ent := s.lookup(w, r)
	if ent == nil {
		return
	}
	ent.mu.Lock()
	defer ent.mu.Unlock()
	st := ent.v.DeltaStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"id":       ent.id,
		"info":     s.info(ent),
		"instance": scenario.EncodeInstance(ent.v.Snapshot()),
		"verifies": ent.verifies,
		"solver": solverStats{
			Checks: st.Checks, CacheHits: st.CacheHits,
			DeltaSolves: st.DeltaSolves, FullSolves: st.FullSolves,
		},
	})
}

// verdict is the response body of verify and whatif.
type verdict struct {
	ID   string `json:"id"`
	Safe bool   `json:"safe"`
	// Model carries the strict-monotonicity witness when safe.
	Model map[string]int `json:"model,omitempty"`
	// Core and Suspects pinpoint the violation when unsafe.
	Core            []string `json:"core,omitempty"`
	Suspects        []string `json:"suspects,omitempty"`
	NumPreference   int      `json:"num_preference"`
	NumMonotonicity int      `json:"num_monotonicity"`
	// Mode reports how the solver discharged the check: delta, full, or
	// cached.
	Mode       string  `json:"mode"`
	DurationMS float64 `json:"duration_ms"`
	// Applied and Discarded describe a what-if's edit batch.
	Applied   int  `json:"applied,omitempty"`
	Discarded bool `json:"discarded,omitempty"`
	// OracleChecked/OracleMismatch report the differential oracle run in
	// -check-oracle mode.
	OracleChecked  bool        `json:"oracle_checked,omitempty"`
	OracleMismatch bool        `json:"oracle_mismatch,omitempty"`
	Solver         solverStats `json:"solver"`
}

// runVerify decides safety on v, classifies the discharge mode from the
// solver-stats movement, feeds the daemon metrics, and (in -check-oracle
// mode) differentially validates the answer against a full rebuild.
// Callers hold the entry lock (or own v exclusively).
func (s *Server) runVerify(r *http.Request, id string, v *spp.DeltaVerifier) (verdict, int, error) {
	before := v.DeltaStats()
	ctx, op := obs.Flight().StartOp(r.Context(), "verify", id)
	start := time.Now()
	res, suspects, err := v.Verify(ctx)
	wall := time.Since(start)
	if err != nil {
		op.SetVerdict("error")
		op.Finish()
		return verdict{}, http.StatusUnprocessableEntity, err
	}
	after := v.DeltaStats()
	var mode string
	switch {
	case after.CacheHits > before.CacheHits:
		mode = "cached"
	case after.DeltaSolves > before.DeltaSolves:
		mode = "delta"
	case after.FullSolves > before.FullSolves:
		mode = "full"
	default:
		// The verifier bypassed the delta context entirely (degraded or
		// degenerate instance) and rebuilt from scratch.
		mode = "full"
		s.metrics.FullSolves.Inc()
	}
	s.metrics.DeltaSolves.Add(float64(after.DeltaSolves - before.DeltaSolves))
	s.metrics.FullSolves.Add(float64(after.FullSolves - before.FullSolves))
	s.metrics.CacheHits.Add(float64(after.CacheHits - before.CacheHits))
	s.metrics.VerifyDuration.Observe(wall.Seconds(), mode)
	if op != nil {
		safe := "unsafe"
		if res.Sat {
			safe = "safe"
		}
		op.SetVerdict(mode + "/" + safe)
		op.Counter("delta_solves", int64(after.DeltaSolves-before.DeltaSolves))
		op.Counter("full_solves", int64(after.FullSolves-before.FullSolves))
		op.Counter("cache_hits", int64(after.CacheHits-before.CacheHits))
		op.Counter("probes", int64(res.Stats.Probes))
		op.Counter("relaxations", int64(res.Stats.Relaxations))
		op.Finish()
	}

	out := verdict{
		ID: id, Safe: res.Sat, Model: res.Model,
		NumPreference: res.NumPreference, NumMonotonicity: res.NumMonotonicity,
		Mode: mode, DurationMS: float64(wall.Microseconds()) / 1e3,
		Solver: solverStats{
			Checks: after.Checks, CacheHits: after.CacheHits,
			DeltaSolves: after.DeltaSolves, FullSolves: after.FullSolves,
		},
	}
	for _, c := range res.Core {
		out.Core = append(out.Core, c.Assertion.Origin)
	}
	for _, n := range suspects {
		out.Suspects = append(out.Suspects, string(n))
	}
	if s.opts.CheckOracle {
		out.OracleChecked = true
		out.OracleMismatch = !s.oracleAgrees(r, v, res, suspects)
		if out.OracleMismatch {
			s.metrics.OracleMismatches.Inc()
		}
	}
	return out, http.StatusOK, nil
}

// oracleAgrees replays the check through the full-rebuild pipeline and
// compares verdict, model, core, and suspects bit for bit.
func (s *Server) oracleAgrees(r *http.Request, v *spp.DeltaVerifier, res analysis.Result, suspects []spp.Node) bool {
	want, wantSus, err := v.VerifyFull(r.Context())
	if err != nil {
		return false
	}
	if want.Sat != res.Sat ||
		want.NumPreference != res.NumPreference ||
		want.NumMonotonicity != res.NumMonotonicity ||
		len(want.Model) != len(res.Model) ||
		len(want.Core) != len(res.Core) ||
		len(wantSus) != len(suspects) {
		return false
	}
	for k, val := range want.Model {
		if res.Model[k] != val {
			return false
		}
	}
	for i := range want.Core {
		if want.Core[i] != res.Core[i] {
			return false
		}
	}
	for i := range wantSus {
		if wantSus[i] != suspects[i] {
			return false
		}
	}
	return true
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	ent := s.lookup(w, r)
	if ent == nil {
		return
	}
	ent.mu.Lock()
	defer ent.mu.Unlock()
	out, code, err := s.runVerify(r, ent.id, ent.v)
	if err != nil {
		writeErr(w, code, "verifying %s: %v", ent.id, err)
		return
	}
	ent.verifies++
	writeJSON(w, code, out)
}

// whatIfOp is one edit of a what-if batch.
type whatIfOp struct {
	// Op is rerank, drop-session, or add-session.
	Op string `json:"op"`
	// Node and Paths parameterize rerank; paths are comma-joined node
	// lists, most preferred first, as in the corpus wire form.
	Node  string   `json:"node,omitempty"`
	Paths []string `json:"paths,omitempty"`
	// A, B, and Cost parameterize drop-session and add-session.
	A    string `json:"a,omitempty"`
	B    string `json:"b,omitempty"`
	Cost int    `json:"cost,omitempty"`
}

type whatIfRequest struct {
	Ops []whatIfOp `json:"ops"`
	// Discard applies the edits to a throwaway clone: the resident
	// instance is left untouched, making the call a pure query.
	Discard bool `json:"discard,omitempty"`
}

func parsePath(s string) spp.Path {
	parts := strings.Split(s, ",")
	p := make(spp.Path, 0, len(parts))
	for _, n := range parts {
		p = append(p, spp.Node(strings.TrimSpace(n)))
	}
	return p
}

func applyOp(v *spp.DeltaVerifier, op whatIfOp) error {
	switch op.Op {
	case "rerank":
		if op.Node == "" {
			return fmt.Errorf("rerank wants a node")
		}
		paths := make([]spp.Path, len(op.Paths))
		for i, ps := range op.Paths {
			paths[i] = parsePath(ps)
		}
		return v.ReRank(spp.Node(op.Node), paths...)
	case "drop-session":
		if op.A == "" || op.B == "" {
			return fmt.Errorf("drop-session wants a and b")
		}
		return v.DropSession(spp.Node(op.A), spp.Node(op.B))
	case "add-session":
		if op.A == "" || op.B == "" {
			return fmt.Errorf("add-session wants a and b")
		}
		return v.AddSession(spp.Node(op.A), spp.Node(op.B), op.Cost)
	default:
		return fmt.Errorf("unknown op %q (want rerank, drop-session, add-session)", op.Op)
	}
}

func (s *Server) handleWhatIf(w http.ResponseWriter, r *http.Request) {
	ent := s.lookup(w, r)
	if ent == nil {
		return
	}
	var req whatIfRequest
	if !readJSON(w, r, &req) {
		return
	}
	if len(req.Ops) == 0 {
		writeErr(w, http.StatusBadRequest, "what-if wants at least one op")
		return
	}
	ent.mu.Lock()
	defer ent.mu.Unlock()
	target := ent.v
	if req.Discard {
		target = ent.v.Clone()
	}
	for i, op := range req.Ops {
		if err := applyOp(target, op); err != nil {
			// Edits validate before they mutate, and failed batches on the
			// resident instance leave the already-applied prefix in place —
			// report how far the batch got so the caller can reason about
			// the state (discard mode is immune by construction).
			writeErr(w, http.StatusBadRequest, "what-if op %d (%s): %v (applied %d of %d)",
				i, op.Op, err, i, len(req.Ops))
			return
		}
	}
	out, code, err := s.runVerify(r, ent.id, target)
	if err != nil {
		writeErr(w, code, "verifying %s after what-if: %v", ent.id, err)
		return
	}
	out.Applied = len(req.Ops)
	out.Discarded = req.Discard
	if !req.Discard {
		ent.verifies++
	}
	writeJSON(w, code, out)
}

// analyzeRequest is the body of POST /v1/analyze: one instance, decided
// once, never resident. Large instances take the same internet-scale path
// Session.AnalyzeSPP takes, so this is how the condensation series
// (fsr_scc_*) get driven from the daemon.
type analyzeRequest struct {
	Gadget   string                 `json:"gadget,omitempty"`
	Instance *scenario.InstanceJSON `json:"instance,omitempty"`
}

// analyzeResponse reports the verdict plus the solve's introspection
// figures. The model is deliberately omitted: at internet scale it is tens
// of thousands of entries, and one-shot callers want the verdict.
type analyzeResponse struct {
	Name              string   `json:"name"`
	Nodes             int      `json:"nodes"`
	Safe              bool     `json:"safe"`
	Core              []string `json:"core,omitempty"`
	Suspects          []string `json:"suspects,omitempty"`
	NumPreference     int      `json:"num_preference"`
	NumMonotonicity   int      `json:"num_monotonicity"`
	DurationMS        float64  `json:"duration_ms"`
	Components        int      `json:"components,omitempty"`
	TrivialComponents int      `json:"trivial_components,omitempty"`
	Levels            int      `json:"levels,omitempty"`
	MaxLevelWidth     int      `json:"max_level_width,omitempty"`
	Probes            int      `json:"probes,omitempty"`
	Relaxations       int      `json:"relaxations,omitempty"`
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req analyzeRequest
	if !readJSON(w, r, &req) {
		return
	}
	in := s.resolveInstance(w, req.Gadget, req.Instance)
	if in == nil {
		return
	}
	start := time.Now()
	res, suspects, err := s.opts.Analyze(r.Context(), in)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "analyzing %s: %v", in.Name, err)
		return
	}
	out := analyzeResponse{
		Name: in.Name, Nodes: len(in.Nodes), Safe: res.Sat,
		NumPreference: res.NumPreference, NumMonotonicity: res.NumMonotonicity,
		DurationMS:        float64(time.Since(start).Microseconds()) / 1e3,
		Components:        res.Stats.Components,
		TrivialComponents: res.Stats.TrivialComponents,
		Levels:            res.Stats.Levels,
		MaxLevelWidth:     res.Stats.MaxLevelWidth,
		Probes:            res.Stats.Probes,
		Relaxations:       res.Stats.Relaxations,
	}
	for _, c := range res.Core {
		out.Core = append(out.Core, c.Assertion.Origin)
	}
	for _, n := range suspects {
		out.Suspects = append(out.Suspects, string(n))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	n := len(s.instances)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "instances": n})
}
