package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fsr/internal/analysis"
	"fsr/internal/obs"
	"fsr/internal/spp"
)

// newDiagServer wires a Server with the analyze seam the public layer
// injects, against a stub analyzer the tests control.
func newDiagServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Options{
		Gadget: func(name string) (*spp.Instance, error) {
			return spp.Figure3IBGPFixed(), nil
		},
		Analyze: func(ctx context.Context, in *spp.Instance) (analysis.Result, []spp.Node, error) {
			res := analysis.Result{Sat: true, NumPreference: 3, NumMonotonicity: 4}
			res.Stats.Components = 7
			res.Stats.TrivialComponents = 5
			res.Stats.Levels = 2
			res.Stats.MaxLevelWidth = 4
			res.Stats.Probes = 100
			res.Stats.Relaxations = 20
			return res, nil, nil
		},
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

// TestServerAnalyze: POST /v1/analyze resolves the gadget, runs the
// injected analyzer, and reports verdict plus condensation shape.
func TestServerAnalyze(t *testing.T) {
	_, ts := newDiagServer(t)
	var resp struct {
		Name          string `json:"name"`
		Nodes         int    `json:"nodes"`
		Safe          bool   `json:"safe"`
		Components    int    `json:"components"`
		Levels        int    `json:"levels"`
		MaxLevelWidth int    `json:"max_level_width"`
		Probes        int    `json:"probes"`
	}
	code := call(t, "POST", ts.URL+"/v1/analyze",
		map[string]any{"gadget": "fig3-fixed"}, &resp)
	if code != http.StatusOK {
		t.Fatalf("analyze: status %d", code)
	}
	if !resp.Safe || resp.Components != 7 || resp.Levels != 2 ||
		resp.MaxLevelWidth != 4 || resp.Probes != 100 {
		t.Errorf("analyze response wrong: %+v", resp)
	}
	if resp.Nodes == 0 || resp.Name == "" {
		t.Errorf("instance identity missing: %+v", resp)
	}
}

// TestServerAnalyzeUnmounted: a Server without the seam answers 404 — the
// route is simply absent, not half-wired.
func TestServerAnalyzeUnmounted(t *testing.T) {
	_, ts := newTestServer(t, false)
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json",
		strings.NewReader(`{"gadget":"fig3"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unmounted analyze: status %d, want 404", resp.StatusCode)
	}
}

// TestServerDiagnosticsEndpoints: every Server mounts the diagnosis
// surface — timeseries, flight recorder, dashboard — with live payloads.
func TestServerDiagnosticsEndpoints(t *testing.T) {
	_, ts := newDiagServer(t)

	var tsPayload struct {
		IntervalMS int64             `json:"interval_ms"`
		WindowMS   int64             `json:"window_ms"`
		Series     []json.RawMessage `json:"series"`
	}
	if code := call(t, "GET", ts.URL+"/v1/timeseries", nil, &tsPayload); code != http.StatusOK {
		t.Fatalf("timeseries: status %d", code)
	}
	if tsPayload.IntervalMS <= 0 || tsPayload.WindowMS <= 0 {
		t.Errorf("timeseries config missing: %+v", tsPayload)
	}

	// Drive one op through the flight recorder so the snapshot is non-empty.
	// Handler() enabled the global recorder; record against it directly.
	_, op := obs.Flight().StartOp(context.Background(), "verify", "diag-test")
	op.SetVerdict("full/safe")
	op.Finish()
	var fl struct {
		Enabled bool   `json:"enabled"`
		Total   uint64 `json:"total"`
		Ops     []struct {
			Kind    string `json:"kind"`
			Verdict string `json:"verdict"`
		} `json:"ops"`
	}
	if code := call(t, "GET", ts.URL+"/v1/flightrecorder", nil, &fl); code != http.StatusOK {
		t.Fatalf("flightrecorder: status %d", code)
	}
	if !fl.Enabled || fl.Total == 0 || len(fl.Ops) == 0 {
		t.Errorf("flight snapshot empty: %+v", fl)
	}

	resp, err := http.Get(ts.URL + "/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dashboard: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("dashboard Content-Type = %q", ct)
	}
}
