package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fsr/internal/scenario"
	"fsr/internal/spp"
)

// newTestServer wires the gadget resolver the public layer would inject.
func newTestServer(t *testing.T, checkOracle bool) (*Server, *httptest.Server) {
	t.Helper()
	gadgets := map[string]func() *spp.Instance{
		"fig3":       spp.Figure3IBGP,
		"fig3-fixed": spp.Figure3IBGPFixed,
		"disagree":   spp.Disagree,
	}
	s := New(Options{
		CheckOracle: checkOracle,
		Gadget: func(name string) (*spp.Instance, error) {
			if ctor, ok := gadgets[name]; ok {
				return ctor(), nil
			}
			return nil, fmt.Errorf("unknown gadget %q", name)
		},
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// call performs one JSON request and decodes the response into out.
func call(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatalf("encoding request: %v", err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// TestServerLifecycle drives the full session the README documents: load
// fig3, verify (unsafe with suspects), what-if the repair (safe, by delta
// re-solving), inspect, and scrape metrics — with the differential oracle
// on throughout.
func TestServerLifecycle(t *testing.T) {
	s, ts := newTestServer(t, true)

	var created instanceInfo
	if code := call(t, "POST", ts.URL+"/v1/instances",
		map[string]any{"id": "demo", "gadget": "fig3"}, &created); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	if created.Nodes != 6 || created.Sessions != 8 {
		t.Fatalf("create: info %+v", created)
	}

	var v verdict
	if code := call(t, "POST", ts.URL+"/v1/instances/demo/verify", nil, &v); code != http.StatusOK {
		t.Fatalf("verify: status %d", code)
	}
	if v.Safe {
		t.Fatal("fig3 verified safe")
	}
	if len(v.Core) == 0 || len(v.Suspects) == 0 {
		t.Fatalf("unsafe verdict without core/suspects: %+v", v)
	}
	if !v.OracleChecked || v.OracleMismatch {
		t.Fatalf("oracle: checked=%v mismatch=%v", v.OracleChecked, v.OracleMismatch)
	}

	// The paper's fix: flip a, b, and c to prefer their direct routes. A
	// discarded what-if first (pure query), then the real edit.
	repair := map[string]any{"ops": []map[string]any{
		{"op": "rerank", "node": "a", "paths": []string{"a,d,r1", "a,b,e,r2"}},
		{"op": "rerank", "node": "b", "paths": []string{"b,e,r2", "b,c,f,r3"}},
		{"op": "rerank", "node": "c", "paths": []string{"c,f,r3", "c,a,d,r1"}},
	}}
	preview := map[string]any{"ops": repair["ops"], "discard": true}
	v = verdict{}
	if code := call(t, "POST", ts.URL+"/v1/instances/demo/whatif", preview, &v); code != http.StatusOK {
		t.Fatalf("discarded what-if: status %d", code)
	}
	if !v.Safe || !v.Discarded || v.Applied != 3 {
		t.Fatalf("discarded what-if: %+v", v)
	}

	// The resident instance is untouched: verify still answers unsafe.
	v = verdict{}
	if call(t, "POST", ts.URL+"/v1/instances/demo/verify", nil, &v); v.Safe {
		t.Fatal("discarded what-if mutated the resident instance")
	}

	v = verdict{}
	if code := call(t, "POST", ts.URL+"/v1/instances/demo/whatif", repair, &v); code != http.StatusOK {
		t.Fatalf("what-if: status %d", code)
	}
	if !v.Safe || v.Discarded {
		t.Fatalf("repair what-if: %+v", v)
	}
	if len(v.Model) == 0 {
		t.Fatal("safe verdict without witness model")
	}
	if v.OracleMismatch {
		t.Fatal("delta result disagrees with the full-rebuild oracle")
	}

	// A further edit from the standing sat state is where delta solving
	// pays off: trimming a's ranking keeps the instance safe, so the
	// solver re-probes only the touched region instead of rebuilding.
	trim := map[string]any{"ops": []map[string]any{
		{"op": "rerank", "node": "a", "paths": []string{"a,d,r1"}},
	}}
	v = verdict{}
	if code := call(t, "POST", ts.URL+"/v1/instances/demo/whatif", trim, &v); code != http.StatusOK {
		t.Fatalf("trim what-if: status %d", code)
	}
	if !v.Safe || v.Mode != "delta" {
		t.Fatalf("trim what-if: safe=%v mode=%q, want a delta solve", v.Safe, v.Mode)
	}
	if v.OracleMismatch {
		t.Fatal("delta result disagrees with the full-rebuild oracle")
	}

	var got struct {
		Instance scenario.InstanceJSON `json:"instance"`
		Verifies int                   `json:"verifies"`
		Solver   solverStats           `json:"solver"`
	}
	if code := call(t, "GET", ts.URL+"/v1/instances/demo", nil, &got); code != http.StatusOK {
		t.Fatalf("get: status %d", code)
	}
	if got.Verifies != 4 {
		t.Fatalf("verifies = %d, want 4", got.Verifies)
	}
	if want := []string{"a,d,r1"}; fmt.Sprint(got.Instance.Rank["a"]) != fmt.Sprint(want) {
		t.Fatalf("snapshot rank[a] = %v, want %v", got.Instance.Rank["a"], want)
	}
	if got.Solver.Checks == 0 {
		t.Fatalf("solver stats not reported: %+v", got.Solver)
	}

	if s.Metrics().DeltaSolves.Value() == 0 {
		t.Fatal("no delta solves recorded across the repair session")
	}
	if n := s.Metrics().OracleMismatches.Value(); n != 0 {
		t.Fatalf("oracle mismatches = %v", n)
	}

	// Metrics exposition: well-formed text format with the counters the
	// smoke job scrapes.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	text := buf.String()
	for _, want := range []string{
		"# TYPE fsr_http_requests_total counter",
		`fsr_http_requests_total{endpoint="verify",code="200"}`,
		"# TYPE fsr_http_request_duration_seconds histogram",
		"fsr_instances_resident 1",
		"fsr_delta_solves_total ",
		"fsr_oracle_mismatches_total 0",
		`fsr_verify_duration_seconds_bucket{mode="delta",le="+Inf"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition lacks %q", want)
		}
	}
}

// TestServerInstanceUpload loads an instance by inline JSON rather than
// gadget name and verifies session edits against it.
func TestServerInstanceUpload(t *testing.T) {
	_, ts := newTestServer(t, true)
	enc := scenario.EncodeInstance(spp.Disagree())
	var created instanceInfo
	if code := call(t, "POST", ts.URL+"/v1/instances",
		map[string]any{"instance": enc}, &created); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	if created.ID != "disagree" {
		t.Fatalf("default id %q, want the instance name", created.ID)
	}
	var v verdict
	call(t, "POST", ts.URL+"/v1/instances/disagree/verify", nil, &v)
	if v.Safe {
		t.Fatal("disagree verified safe")
	}
	// Cached repeat: the standing result answers without solving.
	call(t, "POST", ts.URL+"/v1/instances/disagree/verify", nil, &v)
	if v.Mode != "cached" {
		t.Fatalf("repeat verify mode %q, want cached", v.Mode)
	}
	// Breaking the only session leaves a degenerate instance the delta
	// path hands to the full pipeline, which rejects it ("no labels
	// declared") — the daemon surfaces the same error AnalyzeSPP would.
	var errBody struct {
		Error string `json:"error"`
	}
	drop := map[string]any{"ops": []map[string]any{{"op": "drop-session", "a": "1", "b": "2"}}}
	if code := call(t, "POST", ts.URL+"/v1/instances/disagree/whatif", drop, &errBody); code != http.StatusUnprocessableEntity {
		t.Fatalf("drop what-if: status %d, want 422", code)
	}
	if !strings.Contains(errBody.Error, "no labels") {
		t.Fatalf("degenerate-instance error %q", errBody.Error)
	}
}

// TestServerErrors covers the API's failure envelope.
func TestServerErrors(t *testing.T) {
	_, ts := newTestServer(t, false)
	var errBody struct {
		Error string `json:"error"`
	}
	cases := []struct {
		name   string
		method string
		path   string
		body   any
		code   int
	}{
		{"create without payload", "POST", "/v1/instances", map[string]any{}, http.StatusBadRequest},
		{"create unknown gadget", "POST", "/v1/instances", map[string]any{"gadget": "nope"}, http.StatusBadRequest},
		{"create bad id", "POST", "/v1/instances", map[string]any{"id": "a b", "gadget": "fig3"}, http.StatusBadRequest},
		{"verify missing instance", "POST", "/v1/instances/ghost/verify", nil, http.StatusNotFound},
		{"whatif missing instance", "POST", "/v1/instances/ghost/whatif",
			map[string]any{"ops": []map[string]any{{"op": "rerank"}}}, http.StatusNotFound},
		{"get missing instance", "GET", "/v1/instances/ghost", nil, http.StatusNotFound},
	}
	for _, c := range cases {
		if code := call(t, c.method, ts.URL+c.path, c.body, &errBody); code != c.code {
			t.Errorf("%s: status %d, want %d", c.name, code, c.code)
		}
		if errBody.Error == "" {
			t.Errorf("%s: no error message", c.name)
		}
	}

	// Duplicate load conflicts; bad ops and empty batches reject.
	call(t, "POST", ts.URL+"/v1/instances", map[string]any{"id": "x", "gadget": "fig3"}, nil)
	if code := call(t, "POST", ts.URL+"/v1/instances",
		map[string]any{"id": "x", "gadget": "disagree"}, &errBody); code != http.StatusConflict {
		t.Errorf("duplicate create: status %d, want 409", code)
	}
	if code := call(t, "POST", ts.URL+"/v1/instances/x/whatif",
		map[string]any{"ops": []map[string]any{}}, &errBody); code != http.StatusBadRequest {
		t.Errorf("empty what-if: status %d", code)
	}
	if code := call(t, "POST", ts.URL+"/v1/instances/x/whatif",
		map[string]any{"ops": []map[string]any{{"op": "explode"}}}, &errBody); code != http.StatusBadRequest {
		t.Errorf("unknown op: status %d", code)
	}
	if code := call(t, "POST", ts.URL+"/v1/instances/x/whatif",
		map[string]any{"ops": []map[string]any{
			{"op": "rerank", "node": "a", "paths": []string{"a,z,r9"}},
		}}, &errBody); code != http.StatusBadRequest {
		t.Errorf("invalid rerank: status %d", code)
	}
	if !strings.Contains(errBody.Error, "applied 0 of 1") {
		t.Errorf("batch progress missing from error: %q", errBody.Error)
	}

	var health struct {
		OK        bool `json:"ok"`
		Instances int  `json:"instances"`
	}
	if code := call(t, "GET", ts.URL+"/healthz", nil, &health); code != http.StatusOK || !health.OK || health.Instances != 1 {
		t.Errorf("healthz: code %d body %+v", code, health)
	}
}

// TestServerPanicRecovery: a panicking handler answers 500, increments
// fsr_panics_total for its endpoint, and leaves the daemon serving — the
// next request on the same server succeeds.
func TestServerPanicRecovery(t *testing.T) {
	var logBuf strings.Builder
	s := New(Options{Logger: slog.New(slog.NewTextHandler(&logBuf, nil))})
	mux := http.NewServeMux()
	mux.HandleFunc("GET /boom", s.instrument("boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	}))
	mux.HandleFunc("GET /metrics", s.instrument("metrics", s.metrics.handler))
	ts := httptest.NewServer(mux)
	defer ts.Close()

	var errBody struct {
		Error string `json:"error"`
	}
	if code := call(t, "GET", ts.URL+"/boom", nil, &errBody); code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d, want 500", code)
	}
	if errBody.Error == "" {
		t.Error("panicking handler returned no error body")
	}
	if got := s.metrics.Panics.Value("boom"); got != 1 {
		t.Errorf("fsr_panics_total{endpoint=boom} = %v, want 1", got)
	}
	if !strings.Contains(logBuf.String(), "kaboom") {
		t.Error("panic value not logged")
	}

	// The daemon is still up, and the panic is visible on the scrape.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics after panic: status %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `fsr_panics_total{endpoint="boom"} 1`) {
		t.Error("fsr_panics_total missing from exposition")
	}

	// A panic after the header went out cannot rewrite the response; it is
	// still counted.
	mux.HandleFunc("GET /late", s.instrument("late", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		panic("late kaboom")
	}))
	resp2, err := http.Get(ts.URL + "/late")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("late panic rewrote status to %d", resp2.StatusCode)
	}
	if got := s.metrics.Panics.Value("late"); got != 1 {
		t.Errorf("fsr_panics_total{endpoint=late} = %v, want 1", got)
	}
}
