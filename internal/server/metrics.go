// Package server implements the fsr verification-as-a-service daemon: an
// HTTP/JSON front end over a registry of resident DeltaVerifiers, so a
// routing configuration is loaded and converted to constraints once and
// every subsequent edit ("what if session a-b fails?") is decided by delta
// re-verification instead of a full rebuild. The package is deliberately
// below the public fsr facade — gadget resolution is injected through
// Options so the import arrow keeps pointing downward.
package server

import (
	"fmt"
	"net/http"
	"strings"

	"fsr/internal/obs"
)

// The metric types are the shared internal/obs implementations — the
// daemon's original hand-rolled registry moved there so the solver,
// simulator, and campaign layers can record into the same format. The
// daemon keeps its own per-Server instruments (a test can run two servers
// without crosstalk), renders them first so the exposition stays
// byte-compatible with earlier releases, and appends the process-global
// obs registry after, which is how solver- and campaign-level series
// reach the same scrape endpoint.

// Metrics is the daemon's registry. All fields are safe for concurrent
// use; Expose renders the whole registry in Prometheus text format.
type Metrics struct {
	// Requests counts HTTP requests per endpoint and status code.
	Requests *obs.CounterVec
	// Latency is end-to-end HTTP handler latency per endpoint.
	Latency *obs.HistogramVec
	// Resident gauges the number of instances in the registry.
	Resident *obs.Gauge
	// DeltaSolves / FullSolves / CacheHits split how verifications were
	// discharged by the solver layer: affected-region re-probe, full
	// rebuild, or standing-result reuse.
	DeltaSolves *obs.CounterVec
	FullSolves  *obs.CounterVec
	CacheHits   *obs.CounterVec
	// VerifyDuration is wall-clock verification latency by discharge mode
	// (delta | full | cached).
	VerifyDuration *obs.HistogramVec
	// OracleMismatches counts -check-oracle disagreements between the
	// delta path and the full-rebuild oracle; any nonzero value is a bug.
	OracleMismatches *obs.CounterVec
	// Panics counts handler panics recovered by the middleware, per
	// endpoint. Any nonzero value is a bug, but a recovered one: the
	// daemon answered 500 and stayed up.
	Panics *obs.CounterVec
}

// NewMetrics returns a fresh registry.
func NewMetrics() *Metrics {
	return &Metrics{
		Requests:         obs.NewCounterVec("fsr_http_requests_total", "HTTP requests served.", "endpoint", "code"),
		Latency:          obs.NewHistogramVec("fsr_http_request_duration_seconds", "HTTP request latency.", "endpoint"),
		Resident:         obs.NewGauge("fsr_instances_resident", "Instances resident in the registry."),
		DeltaSolves:      obs.NewCounterVec("fsr_delta_solves_total", "Verifications discharged by delta re-solving the affected region."),
		FullSolves:       obs.NewCounterVec("fsr_full_solves_total", "Verifications discharged by a full constraint rebuild."),
		CacheHits:        obs.NewCounterVec("fsr_solver_cache_hits_total", "Verifications answered from the standing solver result."),
		VerifyDuration:   obs.NewHistogramVec("fsr_verify_duration_seconds", "Verification wall-clock latency by discharge mode.", "mode"),
		OracleMismatches: obs.NewCounterVec("fsr_oracle_mismatches_total", "Delta-vs-full-rebuild verification disagreements (check-oracle mode)."),
		Panics:           obs.NewCounterVec("fsr_panics_total", "Handler panics recovered by the middleware.", "endpoint"),
	}
}

// Expose renders every daemon metric in Prometheus text exposition
// format, in the same field order as always.
func (m *Metrics) Expose() string {
	var b strings.Builder
	m.Requests.Expose(&b)
	m.Latency.Expose(&b)
	m.Resident.Expose(&b)
	m.DeltaSolves.Expose(&b)
	m.FullSolves.Expose(&b)
	m.CacheHits.Expose(&b)
	m.VerifyDuration.Expose(&b)
	m.OracleMismatches.Expose(&b)
	m.Panics.Expose(&b)
	return b.String()
}

// Samples returns every daemon instrument's current samples — the
// obs.SampleSource view that lets a time-series sampler scrape the
// per-Server registry alongside the process-global one.
func (m *Metrics) Samples() []obs.Sample {
	var out []obs.Sample
	out = append(out, m.Requests.Samples()...)
	out = append(out, m.Latency.Samples()...)
	out = append(out, m.Resident.Samples()...)
	out = append(out, m.DeltaSolves.Samples()...)
	out = append(out, m.FullSolves.Samples()...)
	out = append(out, m.CacheHits.Samples()...)
	out = append(out, m.VerifyDuration.Samples()...)
	out = append(out, m.OracleMismatches.Samples()...)
	out = append(out, m.Panics.Samples()...)
	return out
}

// handler serves the daemon registry followed by the process-global obs
// registry (solver, simulator, and campaign series) as one scrape target.
func (m *Metrics) handler(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, m.Expose())
	fmt.Fprint(w, obs.Default().Expose())
}
