// Package server implements the fsr verification-as-a-service daemon: an
// HTTP/JSON front end over a registry of resident DeltaVerifiers, so a
// routing configuration is loaded and converted to constraints once and
// every subsequent edit ("what if session a-b fails?") is decided by delta
// re-verification instead of a full rebuild. The package is deliberately
// below the public fsr facade — gadget resolution is injected through
// Options so the import arrow keeps pointing downward.
package server

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// The observability surface is a hand-rolled subset of the Prometheus text
// exposition format (counters, gauges, histograms, with labels): the repo
// is dependency-free by policy, and the daemon only needs the write side —
// a scraper cannot tell the difference.

// labelSet renders label names/values as they appear inside the braces of
// a sample line: `endpoint="verify",code="200"`. Series are keyed by this
// rendering, which is stable because callers pass values positionally.
func labelSet(names, vals []string) string {
	if len(names) != len(vals) {
		panic(fmt.Sprintf("metrics: %d label(s) want %d value(s)", len(names), len(vals)))
	}
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", n, vals[i])
	}
	return b.String()
}

// counterVec is a monotonically increasing counter family.
type counterVec struct {
	name, help string
	labels     []string
	mu         sync.Mutex
	vals       map[string]float64
}

func newCounterVec(name, help string, labels ...string) *counterVec {
	return &counterVec{name: name, help: help, labels: labels, vals: map[string]float64{}}
}

func (c *counterVec) Add(delta float64, labelVals ...string) {
	if delta < 0 {
		panic("metrics: counter decrease")
	}
	key := labelSet(c.labels, labelVals)
	c.mu.Lock()
	c.vals[key] += delta
	c.mu.Unlock()
}

func (c *counterVec) Inc(labelVals ...string) { c.Add(1, labelVals...) }

// Value reads one series (zero if never touched) — for tests and the
// daemon's own health reporting.
func (c *counterVec) Value(labelVals ...string) float64 {
	key := labelSet(c.labels, labelVals)
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.vals[key]
}

func (c *counterVec) expose(b *strings.Builder) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n", c.name, c.help, c.name)
	for _, key := range sortedKeys(c.vals) {
		if key == "" {
			fmt.Fprintf(b, "%s %v\n", c.name, c.vals[key])
		} else {
			fmt.Fprintf(b, "%s{%s} %v\n", c.name, key, c.vals[key])
		}
	}
	if len(c.vals) == 0 && len(c.labels) == 0 {
		fmt.Fprintf(b, "%s 0\n", c.name)
	}
}

// gauge is a single settable value.
type gauge struct {
	name, help string
	mu         sync.Mutex
	val        float64
}

func newGauge(name, help string) *gauge { return &gauge{name: name, help: help} }

func (g *gauge) Set(v float64) {
	g.mu.Lock()
	g.val = v
	g.mu.Unlock()
}

func (g *gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.val
}

func (g *gauge) expose(b *strings.Builder) {
	g.mu.Lock()
	defer g.mu.Unlock()
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", g.name, g.help, g.name, g.name, g.val)
}

// defBuckets spans sub-millisecond delta solves to multi-second full
// rebuilds of paper-scale instances.
var defBuckets = []float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10}

// histogramVec is a cumulative-bucket histogram family.
type histogramVec struct {
	name, help string
	labels     []string
	buckets    []float64
	mu         sync.Mutex
	series     map[string]*histSeries
}

type histSeries struct {
	counts []uint64 // one per bucket, cumulative at expose time only
	sum    float64
	count  uint64
}

func newHistogramVec(name, help string, labels ...string) *histogramVec {
	return &histogramVec{name: name, help: help, labels: labels,
		buckets: defBuckets, series: map[string]*histSeries{}}
}

func (h *histogramVec) Observe(v float64, labelVals ...string) {
	key := labelSet(h.labels, labelVals)
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.series[key]
	if s == nil {
		s = &histSeries{counts: make([]uint64, len(h.buckets))}
		h.series[key] = s
	}
	for i, ub := range h.buckets {
		if v <= ub {
			s.counts[i]++
			break
		}
	}
	s.sum += v
	s.count++
}

// Count reads one series' observation count, for tests.
func (h *histogramVec) Count(labelVals ...string) uint64 {
	key := labelSet(h.labels, labelVals)
	h.mu.Lock()
	defer h.mu.Unlock()
	if s := h.series[key]; s != nil {
		return s.count
	}
	return 0
}

func (h *histogramVec) expose(b *strings.Builder) {
	h.mu.Lock()
	defer h.mu.Unlock()
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help, h.name)
	for _, key := range sortedKeys(h.series) {
		s := h.series[key]
		sep := ""
		if key != "" {
			sep = key + ","
		}
		cum := uint64(0)
		for i, ub := range h.buckets {
			cum += s.counts[i]
			fmt.Fprintf(b, "%s_bucket{%sle=%q} %d\n", h.name, sep, formatBound(ub), cum)
		}
		fmt.Fprintf(b, "%s_bucket{%sle=\"+Inf\"} %d\n", h.name, sep, s.count)
		if key == "" {
			fmt.Fprintf(b, "%s_sum %v\n%s_count %d\n", h.name, s.sum, h.name, s.count)
		} else {
			fmt.Fprintf(b, "%s_sum{%s} %v\n%s_count{%s} %d\n", h.name, key, s.sum, h.name, key, s.count)
		}
	}
}

func formatBound(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", v), "0"), ".")
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Metrics is the daemon's registry. All fields are safe for concurrent
// use; Expose renders the whole registry in Prometheus text format.
type Metrics struct {
	// Requests counts HTTP requests per endpoint and status code.
	Requests *counterVec
	// Latency is end-to-end HTTP handler latency per endpoint.
	Latency *histogramVec
	// Resident gauges the number of instances in the registry.
	Resident *gauge
	// DeltaSolves / FullSolves / CacheHits split how verifications were
	// discharged by the solver layer: affected-region re-probe, full
	// rebuild, or standing-result reuse.
	DeltaSolves *counterVec
	FullSolves  *counterVec
	CacheHits   *counterVec
	// VerifyDuration is wall-clock verification latency by discharge mode
	// (delta | full | cached).
	VerifyDuration *histogramVec
	// OracleMismatches counts -check-oracle disagreements between the
	// delta path and the full-rebuild oracle; any nonzero value is a bug.
	OracleMismatches *counterVec
}

// NewMetrics returns a fresh registry.
func NewMetrics() *Metrics {
	return &Metrics{
		Requests:         newCounterVec("fsr_http_requests_total", "HTTP requests served.", "endpoint", "code"),
		Latency:          newHistogramVec("fsr_http_request_duration_seconds", "HTTP request latency.", "endpoint"),
		Resident:         newGauge("fsr_instances_resident", "Instances resident in the registry."),
		DeltaSolves:      newCounterVec("fsr_delta_solves_total", "Verifications discharged by delta re-solving the affected region."),
		FullSolves:       newCounterVec("fsr_full_solves_total", "Verifications discharged by a full constraint rebuild."),
		CacheHits:        newCounterVec("fsr_solver_cache_hits_total", "Verifications answered from the standing solver result."),
		VerifyDuration:   newHistogramVec("fsr_verify_duration_seconds", "Verification wall-clock latency by discharge mode.", "mode"),
		OracleMismatches: newCounterVec("fsr_oracle_mismatches_total", "Delta-vs-full-rebuild verification disagreements (check-oracle mode)."),
	}
}

// Expose renders every metric in Prometheus text exposition format.
func (m *Metrics) Expose() string {
	var b strings.Builder
	m.Requests.expose(&b)
	m.Latency.expose(&b)
	m.Resident.expose(&b)
	m.DeltaSolves.expose(&b)
	m.FullSolves.expose(&b)
	m.CacheHits.expose(&b)
	m.VerifyDuration.expose(&b)
	m.OracleMismatches.expose(&b)
	return b.String()
}

// handler serves the registry as a scrape target.
func (m *Metrics) handler(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, m.Expose())
}
