package config

import (
	"strings"
	"testing"

	"fsr/internal/algebra"
	"fsr/internal/analysis"
	"fsr/internal/spp"
)

const gaoRexfordSrc = `
# Gao-Rexford guideline A in the configuration language.
algebra gr-a
  sigs C P R
  labels c p r
  reverse c p
  prefer C < P
  prefer C < R
  equal P R
  concat c * C
  concat r * R
  concat p * P
  export p P deny
  export p R deny
  export r P deny
  export r R deny
  origin c C
  origin p P
  origin r R
end
`

// TestAlgebraSection: the parsed guideline matches the built-in: same
// combined table, same analysis outcome.
func TestAlgebraSection(t *testing.T) {
	f, err := Parse(gaoRexfordSrc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(f.Algebras) != 1 {
		t.Fatalf("want 1 algebra, got %d", len(f.Algebras))
	}
	parsed := f.Algebras[0]
	builtin := algebra.GaoRexfordA()
	for _, l := range builtin.Labels() {
		for _, s := range builtin.Sigs() {
			want := algebra.Combined(builtin, l, s)
			got := algebra.Combined(parsed, l, s)
			if got.String() != want.String() {
				t.Errorf("combined %s ⊕ %s: parsed %v, builtin %v", l, s, got, want)
			}
		}
	}
	r1, err := analysis.Check(parsed, analysis.StrictMonotonicity)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := analysis.Check(builtin, analysis.StrictMonotonicity)
	if r1.Sat != r2.Sat || r1.NumPreference != r2.NumPreference || r1.NumMonotonicity != r2.NumMonotonicity {
		t.Errorf("parsed and builtin analyses differ: %+v vs %+v", r1.Sat, r2.Sat)
	}
}

// TestSPPSection: a DISAGREE written in the language converts and analyzes.
func TestSPPSection(t *testing.T) {
	src := `
spp disagree
  session x y 1
  rank x x,y,r2 x,r1
  rank y y,x,r1 y,r2
end
`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(f.Instances) != 1 {
		t.Fatalf("want 1 instance")
	}
	conv, err := f.Instances[0].ToAlgebra()
	if err != nil {
		t.Fatalf("ToAlgebra: %v", err)
	}
	res, err := analysis.Check(conv.Algebra, analysis.StrictMonotonicity)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sat {
		t.Errorf("hand-written DISAGREE should be unsat")
	}
	if got := f.Instances[0].Permitted[spp.Node("x")]; len(got) != 2 {
		t.Errorf("x should have 2 ranked paths, got %v", got)
	}
}

// TestRelationshipsSection parses an annotated AS graph.
func TestRelationshipsSection(t *testing.T) {
	src := `
relationships tiny
  provider as1 as2
  provider as1 as3
  peer as2 as3
end
`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	g := f.Relationships[0]
	if len(g.Nodes) != 3 || len(g.Edges) != 3 {
		t.Fatalf("graph: %d nodes %d edges", len(g.Nodes), len(g.Edges))
	}
	if g.Class("as1", "as2") != "c" || g.Class("as2", "as1") != "p" || g.Class("as2", "as3") != "r" {
		t.Errorf("classes wrong: %s %s %s", g.Class("as1", "as2"), g.Class("as2", "as1"), g.Class("as2", "as3"))
	}
}

// TestParseErrors: every malformed section reports its line.
func TestParseErrors(t *testing.T) {
	cases := []string{
		"bogus x\nend",
		"algebra a\n  sigs C\nend", // no labels
		"algebra a\n  sigs C\n  labels c\n  prefer C\nend", // arity
		"algebra a\n  sigs C\n  labels c\n  export c C maybe\nend",
		"spp s\n  rank x x\nend",  // path too short
		"spp s\n  session a\nend", // arity
		"relationships r\n  provider a\nend",
		"algebra a\n  sigs C\n  labels c", // missing end
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		} else if !strings.Contains(err.Error(), "config") && !strings.Contains(err.Error(), "algebra") {
			t.Logf("note: error text %q", err)
		}
	}
}

// TestComments: comments and blank lines are ignored.
func TestComments(t *testing.T) {
	src := "# leading comment\n\nspp s\n  session a b # trailing\n  rank a a,rx\n  rank b b,ry\nend\n"
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(f.Instances) != 1 {
		t.Fatalf("want 1 instance")
	}
}
