// Package config implements FSR's configuration front end: a small textual
// language in which researchers write policy guidelines (tabular algebras)
// and operators write concrete configurations (SPP instances and annotated
// topologies), automatically translated to the algebraic representation
// (§I: "router configuration files can be automatically translated into the
// algebraic representation").
//
// The language has three top-level forms:
//
//	algebra <name>
//	  sigs C P R
//	  labels c p r
//	  reverse c p
//	  prefer C < P
//	  prefer C < R
//	  equal P R
//	  concat c C C        # c ⊕P C = C
//	  concat c * C        # wildcard over all signatures
//	  export c P deny     # ⊕E entry (default allow)
//	  import c P deny     # ⊕I entry (default allow)
//	  origin c C
//	end
//
//	spp <name>
//	  session a b 10      # bidirectional link with optional IGP cost
//	  rank a a,b,e,r2  a,d,r1
//	end
//
//	relationships <name>  # AS-level topology for Gao-Rexford runs
//	  provider as1 as2    # as1 provides transit to as2
//	  peer as2 as3
//	end
package config

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"

	"fsr/internal/algebra"
	"fsr/internal/spp"
	"fsr/internal/topology"
)

// File is a parsed configuration file.
type File struct {
	Algebras      []*algebra.Tabular
	Instances     []*spp.Instance
	Relationships []*topology.ASGraph
}

// Parse reads a configuration file.
func Parse(src string) (*File, error) {
	f := &File{}
	sc := bufio.NewScanner(strings.NewReader(src))
	lineNo := 0
	var lines []string
	var starts []int
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		lines = append(lines, line)
		starts = append(starts, lineNo)
	}
	for i := 0; i < len(lines); {
		fields := strings.Fields(lines[i])
		switch fields[0] {
		case "algebra":
			if len(fields) != 2 {
				return nil, fmt.Errorf("config line %d: algebra wants a name", starts[i])
			}
			end, alg, err := parseAlgebra(fields[1], lines, starts, i+1)
			if err != nil {
				return nil, err
			}
			f.Algebras = append(f.Algebras, alg)
			i = end
		case "spp":
			if len(fields) != 2 {
				return nil, fmt.Errorf("config line %d: spp wants a name", starts[i])
			}
			end, inst, err := parseSPP(fields[1], lines, starts, i+1)
			if err != nil {
				return nil, err
			}
			f.Instances = append(f.Instances, inst)
			i = end
		case "relationships":
			if len(fields) != 2 {
				return nil, fmt.Errorf("config line %d: relationships wants a name", starts[i])
			}
			end, g, err := parseRelationships(lines, starts, i+1)
			if err != nil {
				return nil, err
			}
			f.Relationships = append(f.Relationships, g)
			i = end
		default:
			return nil, fmt.Errorf("config line %d: unknown section %q", starts[i], fields[0])
		}
	}
	return f, nil
}

func parseAlgebra(name string, lines []string, starts []int, i int) (int, *algebra.Tabular, error) {
	b := algebra.NewBuilder(name)
	sig := func(s string) algebra.Sig { return algebra.Symbol(s) }
	lab := func(s string) algebra.Label { return algebra.LSym(s) }
	var sigNames []string
	for ; i < len(lines); i++ {
		fields := strings.Fields(lines[i])
		at := starts[i]
		switch fields[0] {
		case "end":
			alg, err := b.Build()
			if err != nil {
				return 0, nil, fmt.Errorf("config line %d: %w", at, err)
			}
			return i + 1, alg, nil
		case "sigs":
			sigNames = fields[1:]
			for _, s := range fields[1:] {
				b.Sigs(sig(s))
			}
		case "labels":
			for _, l := range fields[1:] {
				b.Labels(lab(l))
			}
		case "reverse":
			if len(fields) != 3 {
				return 0, nil, fmt.Errorf("config line %d: reverse wants two labels", at)
			}
			b.Reverse(lab(fields[1]), lab(fields[2]))
		case "prefer":
			// prefer A < B  (the '<' is optional decoration)
			args := dropToken(fields[1:], "<")
			if len(args) != 2 {
				return 0, nil, fmt.Errorf("config line %d: prefer wants two signatures", at)
			}
			b.Prefer(sig(args[0]), sig(args[1]))
		case "equal":
			if len(fields) != 3 {
				return 0, nil, fmt.Errorf("config line %d: equal wants two signatures", at)
			}
			b.Equal(sig(fields[1]), sig(fields[2]))
		case "concat":
			if len(fields) != 4 {
				return 0, nil, fmt.Errorf("config line %d: concat wants label, sig, result", at)
			}
			if fields[2] == "*" {
				for _, s := range sigNames {
					b.Concat(lab(fields[1]), sig(s), sig(fields[3]))
				}
			} else {
				out := algebra.Prohibited
				if fields[3] != "phi" {
					out = sig(fields[3])
				}
				b.Concat(lab(fields[1]), sig(fields[2]), out)
			}
		case "export", "import":
			if len(fields) != 4 || (fields[3] != "deny" && fields[3] != "allow") {
				return 0, nil, fmt.Errorf("config line %d: %s wants label, sig, allow|deny", at, fields[0])
			}
			allow := fields[3] == "allow"
			if fields[0] == "export" {
				b.Export(lab(fields[1]), sig(fields[2]), allow)
			} else {
				b.Import(lab(fields[1]), sig(fields[2]), allow)
			}
		case "origin":
			if len(fields) != 3 {
				return 0, nil, fmt.Errorf("config line %d: origin wants label, sig", at)
			}
			b.Origin(lab(fields[1]), sig(fields[2]))
		default:
			return 0, nil, fmt.Errorf("config line %d: unknown algebra directive %q", at, fields[0])
		}
	}
	return 0, nil, fmt.Errorf("config: algebra %s: missing end", name)
}

func dropToken(fields []string, tok string) []string {
	out := fields[:0:0]
	for _, f := range fields {
		if f != tok {
			out = append(out, f)
		}
	}
	return out
}

func parseSPP(name string, lines []string, starts []int, i int) (int, *spp.Instance, error) {
	inst := spp.NewInstance(name)
	for ; i < len(lines); i++ {
		fields := strings.Fields(lines[i])
		at := starts[i]
		switch fields[0] {
		case "end":
			if err := inst.Validate(); err != nil {
				return 0, nil, fmt.Errorf("config line %d: %w", at, err)
			}
			return i + 1, inst, nil
		case "session":
			if len(fields) != 3 && len(fields) != 4 {
				return 0, nil, fmt.Errorf("config line %d: session wants two nodes and an optional cost", at)
			}
			cost := 0
			if len(fields) == 4 {
				c, err := strconv.Atoi(fields[3])
				if err != nil {
					return 0, nil, fmt.Errorf("config line %d: bad cost %q", at, fields[3])
				}
				cost = c
			}
			inst.AddSession(spp.Node(fields[1]), spp.Node(fields[2]), cost)
		case "rank":
			if len(fields) < 3 {
				return 0, nil, fmt.Errorf("config line %d: rank wants a node and at least one path", at)
			}
			var paths []spp.Path
			for _, p := range fields[2:] {
				hops := strings.Split(p, ",")
				paths = append(paths, spp.P(hops...))
			}
			inst.Rank(spp.Node(fields[1]), paths...)
		default:
			return 0, nil, fmt.Errorf("config line %d: unknown spp directive %q", at, fields[0])
		}
	}
	return 0, nil, fmt.Errorf("config: spp %s: missing end", name)
}

func parseRelationships(lines []string, starts []int, i int) (int, *topology.ASGraph, error) {
	g := &topology.ASGraph{Level: map[string]int{}}
	seen := map[string]bool{}
	addNode := func(n string) {
		if !seen[n] {
			seen[n] = true
			g.Nodes = append(g.Nodes, n)
		}
	}
	for ; i < len(lines); i++ {
		fields := strings.Fields(lines[i])
		at := starts[i]
		switch fields[0] {
		case "end":
			return i + 1, g, nil
		case "provider":
			if len(fields) != 3 {
				return 0, nil, fmt.Errorf("config line %d: provider wants two ASes", at)
			}
			addNode(fields[1])
			addNode(fields[2])
			g.Edges = append(g.Edges, topology.ASEdge{A: fields[1], B: fields[2], Rel: topology.CustomerProvider})
		case "peer":
			if len(fields) != 3 {
				return 0, nil, fmt.Errorf("config line %d: peer wants two ASes", at)
			}
			addNode(fields[1])
			addNode(fields[2])
			g.Edges = append(g.Edges, topology.ASEdge{A: fields[1], B: fields[2], Rel: topology.PeerPeer})
		default:
			return 0, nil, fmt.Errorf("config line %d: unknown relationships directive %q", at, fields[0])
		}
	}
	return 0, nil, fmt.Errorf("config: relationships: missing end")
}
