package analysis

import (
	"fsr/internal/algebra"
	"fsr/internal/smt"
)

// IterateCores implements the §IV-B repair workflow: "there can be multiple
// unsatisfiable cores (i.e. many configuration conflicts), and Yices only
// outputs one of them at each invocation. To fix all the configuration
// problems, the user can attempt removing all unsatisfiable cores one by
// one in an iterative fashion."
//
// It repeatedly checks the constraint set, removes the reported core, and
// re-checks, until the remainder is satisfiable or maxRounds is hit. The
// returned cores are the distinct conflicts; Remaining is what a repaired
// configuration must still satisfy. maxRounds <= 0 means no limit.
func IterateCores(a algebra.Algebra, cond Condition, maxRounds int) (cores [][]Constraint, err error) {
	cons, err := Constraints(a, cond)
	if err != nil {
		return nil, err
	}
	active := make([]bool, len(cons))
	for i := range active {
		active[i] = true
	}
	byOrigin := map[string]int{}
	for i, c := range cons {
		byOrigin[c.Assertion.Origin] = i
	}
	for round := 0; maxRounds <= 0 || round < maxRounds; round++ {
		s := smt.NewContext()
		for i, c := range cons {
			if active[i] {
				s.Assert(c.Assertion)
			}
		}
		out, err := s.Check()
		if err != nil {
			return nil, err
		}
		if out.Sat {
			return cores, nil
		}
		var core []Constraint
		for _, a := range out.Core {
			i := byOrigin[a.Origin]
			core = append(core, cons[i])
			active[i] = false // remove the conflict and continue
		}
		if len(core) == 0 {
			return cores, nil // defensive: cannot make progress
		}
		cores = append(cores, core)
	}
	return cores, nil
}
