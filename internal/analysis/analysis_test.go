package analysis

import (
	"strings"
	"testing"

	"fsr/internal/algebra"
)

// TestHopCountSat reproduces the paper's first §IV-C example: the shortest
// hop-count algebra is strictly monotonic (Yices returns sat for the
// quantified encoding forall s. s < s+1).
func TestHopCountSat(t *testing.T) {
	res, err := Check(algebra.HopCount{}, StrictMonotonicity)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if !res.Sat {
		t.Fatalf("hop count should be strictly monotonic, got %s", res)
	}
}

// TestGaoRexfordStrictUnsat reproduces §IV-C: guideline A is not strictly
// monotonic, and the violating constraints include c ⊕ C = C.
func TestGaoRexfordStrictUnsat(t *testing.T) {
	res, err := Check(algebra.GaoRexfordA(), StrictMonotonicity)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if res.Sat {
		t.Fatalf("guideline A should violate strict monotonicity")
	}
	if len(res.Core) == 0 {
		t.Fatalf("want a nonempty core")
	}
	found := false
	for _, c := range res.Core {
		if c.Kind == KindMonotonicity && c.Entry.Label == algebra.LabC && c.Entry.In == algebra.SigC && c.Entry.Out == algebra.SigC {
			found = true
		}
	}
	if !found {
		t.Errorf("core should contain c ⊕ C = C; got:\n%s", res)
	}
}

// TestGaoRexfordMonotoneSat reproduces §IV-C: with < relaxed to ≤ the
// encoding is sat, and Yices' instantiation C=1, P=2, R=2 is a valid model.
// We check the model's structure (C strictly below P and R, P equal to R)
// rather than the exact integers, which are solver-specific.
func TestGaoRexfordMonotoneSat(t *testing.T) {
	res, err := Check(algebra.GaoRexfordA(), Monotonicity)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if !res.Sat {
		t.Fatalf("guideline A should be monotonic, got %s", res)
	}
	c, p, r := res.Model["C"], res.Model["P"], res.Model["R"]
	if !(c < p && c < r && p == r) {
		t.Errorf("model should order C < P = R, got C=%d P=%d R=%d", c, p, r)
	}
	if c < 1 || p < 1 || r < 1 {
		t.Errorf("signatures must be positive integers, got C=%d P=%d R=%d", c, p, r)
	}
}

// TestCompositionSafe reproduces the §IV-C composition argument: guideline A
// (monotonic) composed with shortest hop-count (strictly monotonic) is safe.
func TestCompositionSafe(t *testing.T) {
	rep, err := AnalyzeSafety(algebra.GaoRexfordWithHopCount())
	if err != nil {
		t.Fatalf("AnalyzeSafety: %v", err)
	}
	if rep.Verdict != Safe {
		t.Fatalf("composition should be safe: %s", rep)
	}
	if len(rep.Steps) < 2 {
		t.Errorf("composition analysis should check both factors, got %d steps", len(rep.Steps))
	}
}

// TestGaoRexfordAloneUnsafe: guideline A alone is deemed unsafe (strict
// monotonicity fails), matching the known need for an acyclicity assumption
// or a strictly monotonic tie-breaker.
func TestGaoRexfordAloneUnsafe(t *testing.T) {
	rep, err := AnalyzeSafety(algebra.GaoRexfordA())
	if err != nil {
		t.Fatalf("AnalyzeSafety: %v", err)
	}
	if rep.Verdict != Unsafe {
		t.Fatalf("guideline A alone should be deemed unsafe: %s", rep)
	}
}

// TestGaoRexfordConstraintCounts checks the constraint census of §IV-C's
// second example: 3 preference constraints (C<R, C<P, R=P) and 5 strict-
// monotonicity constraints (the non-φ entries of the combined ⊕ table).
func TestGaoRexfordConstraintCounts(t *testing.T) {
	res, err := Check(algebra.GaoRexfordA(), StrictMonotonicity)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if res.NumPreference != 3 {
		t.Errorf("want 3 preference constraints, got %d", res.NumPreference)
	}
	// The combined table of §II-B has entries: c⊕C=C, r⊕C=R, p⊕C=P, p⊕R=P,
	// p⊕P=P — five strict-monotonicity constraints after omitting φ.
	if res.NumMonotonicity != 5 {
		t.Errorf("want 5 strict-monotonicity constraints, got %d", res.NumMonotonicity)
	}
}

// TestYicesEmission checks the generated Yices text contains the paper's
// §IV-C forms and round-trips through the parser with the same verdict.
func TestYicesEmission(t *testing.T) {
	text, err := Yices(algebra.GaoRexfordA(), StrictMonotonicity)
	if err != nil {
		t.Fatalf("Yices: %v", err)
	}
	for _, want := range []string{
		"(define-type Sig (subtype (n::nat) (> n 0)))",
		"(define C::Sig)",
		"(assert (< C P))",
		"(assert (< C C))",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Yices output missing %q:\n%s", want, text)
		}
	}
}

// TestIterateCores reproduces the §IV-B repair loop: removing cores one by
// one terminates with a satisfiable remainder, and the first core of the
// Gao-Rexford guideline is the c ⊕ C = C self-violation.
func TestIterateCores(t *testing.T) {
	cores, err := IterateCores(algebra.GaoRexfordA(), StrictMonotonicity, 0)
	if err != nil {
		t.Fatalf("IterateCores: %v", err)
	}
	if len(cores) < 2 {
		t.Fatalf("guideline A has several independent conflicts, got %d cores", len(cores))
	}
	first := cores[0]
	if len(first) != 1 || first[0].Kind != KindMonotonicity ||
		first[0].Entry.Label != algebra.LabC || first[0].Entry.In != algebra.SigC {
		t.Errorf("first core should be c ⊕ C = C, got %v", first)
	}
	// Each reported core must itself be unsatisfiable in isolation only if
	// singleton self-loops; at minimum, all cores are disjoint.
	seen := map[string]bool{}
	for _, core := range cores {
		for _, c := range core {
			if seen[c.Assertion.Origin] {
				t.Errorf("constraint %s appears in two cores", c.Assertion.Origin)
			}
			seen[c.Assertion.Origin] = true
		}
	}
}
