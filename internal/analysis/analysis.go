// Package analysis implements FSR's automated safety analysis (§IV of the
// paper): it reduces the convergence proof for a policy configuration,
// expressed as a routing algebra, to a constraint-satisfaction problem and
// decides it with the smt package (the Yices substitute).
//
// The reduction follows the paper's three steps exactly:
//
//  1. each path signature becomes a positive-integer variable;
//  2. each asserted preference s1 ⪯ s2 becomes the constraint s1 ≤ s2
//     (equal preference becomes s1 = s2);
//  3. each entry s′ = l ⊕ s of the combined concatenation operator becomes
//     the strict-monotonicity constraint s < s′ (or s ≤ s′ when checking
//     plain monotonicity). Entries producing φ impose no constraint.
//
// sat means the algebra is strictly monotonic, hence (Sobrinho, Theorem 4.1)
// every path-vector protocol implementing it converges. unsat yields a
// minimal unsatisfiable core mapped back to the offending policy statements.
// Note strict monotonicity is sufficient, not necessary: a safe-but-not-
// strictly-monotonic policy is reported Unsafe (a false positive the paper
// accepts, §IV-A).
package analysis

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"fsr/internal/algebra"
	"fsr/internal/obs"
	"fsr/internal/smt"
)

// Condition selects which monotonicity property to check.
type Condition int

const (
	// StrictMonotonicity checks s ≺ l ⊕ s for all l, s — the sufficient
	// condition for safety (Theorem 4.1).
	StrictMonotonicity Condition = iota
	// Monotonicity checks s ⪯ l ⊕ s — used on the first factor of a lexical
	// product (a monotonic ⊗ strictly-monotonic product is safe).
	Monotonicity
)

// String returns the paper's name for the condition.
func (c Condition) String() string {
	if c == Monotonicity {
		return "monotonicity"
	}
	return "strict monotonicity"
}

// ConstraintKind distinguishes the two constraint families of §IV-B.
type ConstraintKind int

const (
	// KindPreference marks a constraint generated from the ⪯ relation
	// (step 2).
	KindPreference ConstraintKind = iota
	// KindMonotonicity marks a constraint generated from a ⊕ entry
	// (step 3).
	KindMonotonicity
	// KindQuantified marks the universally quantified monotonicity
	// constraint of a closed-form algebra (e.g. hop count's
	// forall s. s < s+1).
	KindQuantified
)

// Constraint pairs an SMT assertion with its algebra-level provenance so
// unsat cores can be reported in policy terms (§IV-B: "identify the
// preference relation for each violating constraint").
type Constraint struct {
	Assertion smt.Assertion
	Kind      ConstraintKind
	// Pref is set for KindPreference.
	Pref algebra.PrefPair
	// Entry is set for KindMonotonicity.
	Entry algebra.ConcatEntry
	// Label is set for KindQuantified (the label whose delta is checked).
	Label algebra.Label
}

// String renders the constraint with its provenance, as the CLI reports it.
func (c Constraint) String() string {
	switch c.Kind {
	case KindPreference:
		return fmt.Sprintf("preference %s: %s %s %s", c.Pref, c.Assertion.A, c.Assertion.Rel, c.Assertion.B)
	case KindMonotonicity:
		return fmt.Sprintf("monotonicity of %s: %s %s %s", c.Entry, c.Assertion.A, c.Assertion.Rel, c.Assertion.B)
	default:
		return fmt.Sprintf("monotonicity over label %s: %s", c.Label, c.Assertion)
	}
}

// Result is the outcome of a single monotonicity check on one algebra.
type Result struct {
	// Algebra is the checked algebra's name.
	Algebra string
	// Condition is the property that was checked.
	Condition Condition
	// Sat reports whether the property holds (solver returned sat).
	Sat bool
	// Model maps signature renderings to the integers Yices would print
	// (e.g. C=1, P=2, R=2 for monotone Gao-Rexford), when Sat.
	Model map[string]int
	// Core is the minimal unsatisfiable subset of generated constraints
	// when !Sat, with algebra-level provenance.
	Core []Constraint
	// NumPreference and NumMonotonicity count generated constraints, the
	// figures the paper reports for §VI-B (292 ranking / 259 strict-mono).
	NumPreference   int
	NumMonotonicity int
	// Stats carries solver effort (duration, graph size).
	Stats smt.Stats
}

// CoreEntries returns the ⊕ entries appearing in the unsat core — the
// "violating constraints" users start from when fixing a configuration.
func (r Result) CoreEntries() []algebra.ConcatEntry {
	var out []algebra.ConcatEntry
	for _, c := range r.Core {
		if c.Kind == KindMonotonicity {
			out = append(out, c.Entry)
		}
	}
	return out
}

// CorePrefs returns the preference statements appearing in the unsat core.
func (r Result) CorePrefs() []algebra.PrefPair {
	var out []algebra.PrefPair
	for _, c := range r.Core {
		if c.Kind == KindPreference {
			out = append(out, c.Pref)
		}
	}
	return out
}

// String summarizes the result the way the FSR CLI prints it.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s — ", r.Algebra, r.Condition)
	if r.Sat {
		b.WriteString("sat")
		if len(r.Model) > 0 {
			b.WriteString(" (model: ")
			first := true
			for _, kv := range sortedModel(r.Model) {
				if !first {
					b.WriteString(", ")
				}
				first = false
				fmt.Fprintf(&b, "%s=%d", kv.k, kv.v)
			}
			b.WriteString(")")
		}
	} else {
		fmt.Fprintf(&b, "unsat; minimal core of %d constraint(s):", len(r.Core))
		for _, c := range r.Core {
			b.WriteString("\n  " + c.String())
		}
	}
	return b.String()
}

type kv struct {
	k string
	v int
}

func sortedModel(m map[string]int) []kv {
	out := make([]kv, 0, len(m))
	for k, v := range m {
		out = append(out, kv{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].k < out[j].k })
	return out
}

// sigVars assigns a distinct solver variable to every signature (step 1),
// sanitizing renderings into identifier-safe tokens.
type sigVars struct {
	vars  map[algebra.Sig]smt.Var
	names map[smt.Var]algebra.Sig
}

func newSigVars(sigs []algebra.Sig) (*sigVars, error) {
	sv := &sigVars{
		vars:  make(map[algebra.Sig]smt.Var, len(sigs)),
		names: make(map[smt.Var]algebra.Sig, len(sigs)),
	}
	for _, s := range sigs {
		base := sanitize(s.String())
		name := smt.Var(base)
		for i := 2; ; i++ {
			if _, taken := sv.names[name]; !taken {
				break
			}
			name = smt.Var(fmt.Sprintf("%s_%d", base, i))
		}
		if _, dup := sv.vars[s]; dup {
			return nil, fmt.Errorf("analysis: duplicate signature %s in universe", s)
		}
		sv.vars[s] = name
		sv.names[name] = s
	}
	return sv, nil
}

func (sv *sigVars) term(s algebra.Sig) smt.Term { return smt.Term{Var: sv.vars[s]} }

// VarName exposes step 1's variable naming — the sanitized signature
// rendering, before collision suffixing — to layers that mirror constraint
// generation incrementally (the spp delta verifier). Callers are expected
// to detect rendering collisions themselves and fall back to the full
// pipeline, where newSigVars applies the suffixes.
func VarName(rendering string) smt.Var { return smt.Var(sanitize(rendering)) }

func sanitize(s string) string {
	clean := func(r rune) bool {
		return r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '_'
	}
	dirty := false
	for _, r := range s {
		if !clean(r) {
			dirty = true
			break
		}
	}
	if !dirty {
		if s == "" {
			return "sig"
		}
		return s // already identifier-safe: no rebuild, no allocation
	}
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range s {
		if clean(r) {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// constraintGen holds the condition-independent part of constraint
// generation for one algebra: the signature-variable interning, the
// enumerated preference and ⊕ tables (or closed-form deltas), and the
// provenance strings. Generating for a concrete Condition is then a cheap
// stamp-out, so callers that check both strict and plain monotonicity on
// the same algebra (analyzeProduct's double-check) enumerate the algebra
// once instead of twice.
type constraintGen struct {
	name string

	// Finite algebras.
	sv          *sigVars
	prefs       []algebra.PrefPair
	table       []algebra.ConcatEntry
	prefOrigins []string
	monoOrigins []string

	// Closed-form (infinite) algebras.
	closed       bool
	labels       []algebra.Label
	deltas       []int
	quantOrigins []string
}

// newConstraintGen enumerates the algebra once, following §IV-B's step 1
// (signature interning) and the table walks of steps 2–3.
func newConstraintGen(a algebra.Algebra) (*constraintGen, error) {
	g := &constraintGen{name: a.Name()}
	sigs := a.Sigs()
	if sigs == nil {
		cf, ok := a.(algebra.ClosedForm)
		if !ok {
			return nil, fmt.Errorf("analysis: algebra %s has an infinite signature universe and no closed form; cannot generate constraints", a.Name())
		}
		g.closed = true
		g.labels = a.Labels()
		g.deltas = make([]int, len(g.labels))
		g.quantOrigins = make([]string, len(g.labels))
		for i, l := range g.labels {
			d, ok := cf.ConcatDelta(l)
			if !ok {
				return nil, fmt.Errorf("analysis: algebra %s: label %s has no linear concatenation", a.Name(), l)
			}
			g.deltas[i] = d
			g.quantOrigins[i] = fmt.Sprintf("mono: %s ⊕ s = s+%d", l, d)
		}
		return g, nil
	}
	sv, err := newSigVars(sigs)
	if err != nil {
		return nil, err
	}
	g.sv = sv
	g.prefs = algebra.Preferences(a)
	g.table = algebra.ConcatTable(a)
	g.prefOrigins = make([]string, len(g.prefs))
	for i := range g.prefs {
		g.prefOrigins[i] = "pref: " + g.prefs[i].String()
	}
	g.monoOrigins = make([]string, len(g.table))
	for i := range g.table {
		g.monoOrigins[i] = "mono: " + g.table[i].String()
	}
	return g, nil
}

// len returns the number of constraints the generator stamps out.
func (g *constraintGen) len() int {
	if g.closed {
		return len(g.labels)
	}
	return len(g.prefs) + len(g.table)
}

// constraints stamps out the constraint list for the condition. Only the
// monotonicity relation (s < s′ vs s ≤ s′) depends on it; provenance is
// shared.
func (g *constraintGen) constraints(cond Condition) []Constraint {
	rel := smt.Lt
	if cond == Monotonicity {
		rel = smt.Le
	}
	out := make([]Constraint, 0, g.len())
	if g.closed {
		for i, l := range g.labels {
			as := smt.Assertion{
				Rel:      rel,
				A:        smt.V("s"),
				B:        smt.V("s").Plus(g.deltas[i]),
				QuantVar: "s",
				Origin:   g.quantOrigins[i],
			}
			out = append(out, Constraint{Assertion: as, Kind: KindQuantified, Label: l})
		}
		return out
	}
	// Step 2: preference constraints. The paper's §IV-C encodings translate
	// strict preferences to <, equalities to =, and plain ⪯ to ≤.
	for i, p := range g.prefs {
		r := smt.Le
		switch {
		case p.Equal:
			r = smt.Eq
		case p.Strict:
			r = smt.Lt
		}
		as := smt.Assertion{
			Rel:    r,
			A:      g.sv.term(p.A),
			B:      g.sv.term(p.B),
			Origin: g.prefOrigins[i],
		}
		out = append(out, Constraint{Assertion: as, Kind: KindPreference, Pref: p})
	}
	// Step 3: monotonicity constraints from the combined ⊕ table; φ results
	// impose none (any signature is strictly preferred to φ by definition).
	for i, e := range g.table {
		as := smt.Assertion{
			Rel:    rel,
			A:      g.sv.term(e.In),
			B:      g.sv.term(e.Out),
			Origin: g.monoOrigins[i],
		}
		out = append(out, Constraint{Assertion: as, Kind: KindMonotonicity, Entry: e})
	}
	return out
}

// Constraints generates the solver constraints for the given algebra and
// condition, following §IV-B's three steps. Finite algebras enumerate their
// ⊕ table; infinite algebras must implement algebra.ClosedForm and yield
// quantified constraints.
func Constraints(a algebra.Algebra, cond Condition) ([]Constraint, error) {
	g, err := newConstraintGen(a)
	if err != nil {
		return nil, err
	}
	return g.constraints(cond), nil
}

// Check decides the given condition for the algebra with the native solver
// backend: it generates the constraints, runs the solver, and maps the
// outcome back to policy terms.
func Check(a algebra.Algebra, cond Condition) (Result, error) {
	return CheckWith(context.Background(), a, cond, smt.Native{})
}

// CheckWith is Check with an explicit context and solver backend: the
// constraint generation is shared, the decision procedure is the caller's
// choice (native difference logic or the Yices text-encoding path), and a
// cancelled context aborts the solve with ctx.Err().
func CheckWith(ctx context.Context, a algebra.Algebra, cond Condition, solver smt.Solver) (Result, error) {
	g, err := newConstraintGen(a)
	if err != nil {
		return Result{}, err
	}
	return checkGen(ctx, g, cond, solver)
}

// checkGen runs one condition check over a prepared generator, mapping the
// solver outcome back to policy terms. Cores come back positionally via
// Result.CoreIdx; the Origin-keyed map is only built as a fallback for
// third-party Solver implementations that don't fill it.
func checkGen(ctx context.Context, g *constraintGen, cond Condition, solver smt.Solver) (Result, error) {
	if solver == nil {
		solver = smt.Native{}
	}
	ctx, sp := obs.StartSpan(ctx, "check")
	sp.Attr("algebra", g.name)
	sp.Attr("condition", cond.String())
	defer sp.End()
	genStart := time.Now()
	_, gsp := obs.StartSpan(ctx, "constraint-gen")
	cons := g.constraints(cond)
	gsp.End()
	obsStageGen.Observe(time.Since(genStart).Seconds())
	return solvePrepared(ctx, g.name, cond, cons, solver)
}

// CheckPrepared decides an already-generated constraint list, mapping the
// solver outcome back to the constraints positionally — the entry point
// for callers that mirror the §IV-B generation themselves (the spp sharded
// generator) and need verdict, model, and core handling identical to
// CheckWith. The constraint list must be in canonical order: preference
// constraints first, then monotonicity, exactly as Constraints emits them.
func CheckPrepared(ctx context.Context, name string, cond Condition, cons []Constraint, solver smt.Solver) (Result, error) {
	if solver == nil {
		solver = smt.Native{}
	}
	ctx, sp := obs.StartSpan(ctx, "check")
	sp.Attr("algebra", name)
	sp.Attr("condition", cond.String())
	defer sp.End()
	return solvePrepared(ctx, name, cond, cons, solver)
}

// solvePrepared is the shared back half of checkGen and CheckPrepared:
// extract the assertions, solve, and map the outcome back to constraints.
func solvePrepared(ctx context.Context, name string, cond Condition, cons []Constraint, solver smt.Solver) (Result, error) {
	asserts := make([]smt.Assertion, len(cons))
	res := Result{Algebra: name, Condition: cond}
	for i := range cons {
		asserts[i] = cons[i].Assertion
		if cons[i].Kind == KindPreference {
			res.NumPreference++
		} else {
			res.NumMonotonicity++
		}
	}
	obsConstraints.Add(int64(len(cons)))
	solveStart := time.Now()
	out, err := solver.Solve(ctx, asserts)
	obsStageSolve.Observe(time.Since(solveStart).Seconds())
	if err != nil {
		return Result{}, err
	}
	res.Sat = out.Sat
	res.Stats = out.Stats
	if out.Sat {
		res.Model = make(map[string]int, len(out.Model))
		for v, val := range out.Model {
			res.Model[string(v)] = val
		}
		return res, nil
	}
	if len(out.CoreIdx) == len(out.Core) {
		res.Core = make([]Constraint, 0, len(out.CoreIdx))
		for _, i := range out.CoreIdx {
			if i >= 0 && i < len(cons) {
				res.Core = append(res.Core, cons[i])
			}
		}
		return res, nil
	}
	byOrigin := make(map[string]Constraint, len(cons))
	for _, c := range cons {
		byOrigin[c.Assertion.Origin] = c
	}
	for _, a := range out.Core {
		if c, ok := byOrigin[a.Origin]; ok {
			res.Core = append(res.Core, c)
		}
	}
	return res, nil
}

// Yices renders the constraints for (a, cond) in the paper's Yices surface
// syntax (§IV-C listings).
func Yices(a algebra.Algebra, cond Condition) (string, error) {
	cons, err := Constraints(a, cond)
	if err != nil {
		return "", err
	}
	solver := smt.NewContext()
	for _, c := range cons {
		solver.Assert(c.Assertion)
	}
	return smt.Emit(solver), nil
}

// Verdict is the overall safety verdict for a policy configuration.
type Verdict int

const (
	// Safe: a strictly monotonic algebra (directly or via the composition
	// rule), hence convergent on every topology by Theorem 4.1.
	Safe Verdict = iota
	// Unsafe: strict monotonicity cannot be established. The policy may
	// still converge (the condition is sufficient, not necessary).
	Unsafe
)

// String returns "safe" or "unsafe".
func (v Verdict) String() string {
	if v == Safe {
		return "safe"
	}
	return "unsafe"
}

// Report is the outcome of AnalyzeSafety: the verdict, the reasoning chain
// (which factor was checked for which condition), and every solver result
// along the way.
type Report struct {
	Verdict Verdict
	Reason  string
	Steps   []Result
}

// String renders the report for CLI display.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "verdict: %s — %s", r.Verdict, r.Reason)
	for _, s := range r.Steps {
		b.WriteString("\n" + s.String())
	}
	return b.String()
}

// AnalyzeSafety decides safety for a policy configuration with the native
// solver backend, applying the composition rule for lexical products
// (§IV-B): for A ⊗ B, if A is strictly monotonic the product is safe; if A
// is monotonic and B strictly monotonic it is safe; otherwise it is deemed
// unsafe. Non-product algebras are safe iff strictly monotonic.
func AnalyzeSafety(a algebra.Algebra) (Report, error) {
	return AnalyzeSafetyWith(context.Background(), a, smt.Native{})
}

// AnalyzeSafetyWith is AnalyzeSafety with an explicit context and solver
// backend.
func AnalyzeSafetyWith(ctx context.Context, a algebra.Algebra, solver smt.Solver) (Report, error) {
	if p, ok := a.(algebra.Product); ok {
		return analyzeProduct(ctx, p, solver)
	}
	res, err := CheckWith(ctx, a, StrictMonotonicity, solver)
	if err != nil {
		return Report{}, err
	}
	rep := Report{Steps: []Result{res}}
	if res.Sat {
		rep.Verdict = Safe
		rep.Reason = fmt.Sprintf("%s is strictly monotonic", a.Name())
	} else {
		rep.Verdict = Unsafe
		rep.Reason = fmt.Sprintf("%s violates strict monotonicity (%d-constraint core)", a.Name(), len(res.Core))
	}
	return rep, nil
}

func analyzeProduct(ctx context.Context, p algebra.Product, solver smt.Solver) (Report, error) {
	// The first factor is checked for strict monotonicity and, on failure,
	// plain monotonicity. When it is a leaf algebra, both checks share one
	// constraint generation (the enumeration of the ⊕ table dominates the
	// analysis cost for tabular algebras); a nested product recurses.
	var (
		steps      []Result
		strictSafe bool
		checkMono  func() (Result, error)
	)
	if _, nested := p.First.(algebra.Product); nested {
		first, err := AnalyzeSafetyWith(ctx, p.First, solver)
		if err != nil {
			return Report{}, err
		}
		steps, strictSafe = first.Steps, first.Verdict == Safe
		checkMono = func() (Result, error) { return CheckWith(ctx, p.First, Monotonicity, solver) }
	} else {
		g, err := newConstraintGen(p.First)
		if err != nil {
			return Report{}, err
		}
		strict, err := checkGen(ctx, g, StrictMonotonicity, solver)
		if err != nil {
			return Report{}, err
		}
		steps, strictSafe = []Result{strict}, strict.Sat
		checkMono = func() (Result, error) { return checkGen(ctx, g, Monotonicity, solver) }
	}
	rep := Report{Steps: steps}
	if strictSafe {
		rep.Verdict = Safe
		rep.Reason = fmt.Sprintf("first factor of %s is strictly monotonic; lexical product is safe", p.Name())
		return rep, nil
	}
	mono, err := checkMono()
	if err != nil {
		return Report{}, err
	}
	rep.Steps = append(rep.Steps, mono)
	if !mono.Sat {
		rep.Verdict = Unsafe
		rep.Reason = fmt.Sprintf("first factor %s is not even monotonic; %s deemed unsafe", p.First.Name(), p.Name())
		return rep, nil
	}
	second, err := AnalyzeSafetyWith(ctx, p.Second, solver)
	if err != nil {
		return Report{}, err
	}
	rep.Steps = append(rep.Steps, second.Steps...)
	if second.Verdict == Safe {
		rep.Verdict = Safe
		rep.Reason = fmt.Sprintf("%s is monotonic and %s is strictly monotonic; lexical product %s is safe", p.First.Name(), p.Second.Name(), p.Name())
	} else {
		rep.Verdict = Unsafe
		rep.Reason = fmt.Sprintf("%s is monotonic but %s is not strictly monotonic; %s deemed unsafe", p.First.Name(), p.Second.Name(), p.Name())
	}
	return rep, nil
}
