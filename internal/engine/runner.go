package engine

import (
	"context"
	"fmt"
	"time"

	"fsr/internal/pathvector"
	"fsr/internal/simnet"
	"fsr/internal/spp"
	"fsr/internal/trace"
)

// This file defines the Runner backend interface: one execution contract
// over the toolkit's two platforms (discrete-event simulation and real TCP
// sockets) and two GPV implementations (the compiled pathvector protocol and
// this package's NDlog interpreter). It mirrors RapidNet's simulation/
// deployment duality (§VI-A): callers pick a backend by value, hand it a
// converted SPP instance, and get back one uniform report.

// RunOptions parameterizes one protocol execution, whichever backend runs
// it. The zero value is usable: default link, immediate (unbatched) sends,
// seed 1, a 5 s horizon.
type RunOptions struct {
	// Seed drives all deterministic randomness (simulation scheduling,
	// batch jitter, start stagger). Zero means seed 1.
	Seed int64
	// Link configures simulated links; unless LinkExplicit is set, the
	// zero value means the paper's standard link (100 Mbps, 10 ms).
	// Ignored by deployment backends, where timing reflects the real
	// network stack.
	Link simnet.LinkConfig
	// LinkExplicit marks Link as deliberately chosen, letting callers
	// request a genuine zero-latency, infinite-bandwidth link (the zero
	// LinkConfig) without it being swapped for the default.
	LinkExplicit bool
	// BatchInterval batches route propagation (§VI-A uses 1 s). Zero sends
	// on the next event.
	BatchInterval time.Duration
	// StartStagger delays each node's start by a deterministic offset in
	// [0, StartStagger), desynchronizing batch phases.
	StartStagger time.Duration
	// Horizon bounds the run: virtual time in simulation, wall clock in
	// deployment. Zero means 5 s.
	Horizon time.Duration
	// IdleWindow is the deployment-mode quiescence window (no in-flight
	// work for this long means converged). Zero means 200 ms.
	IdleWindow time.Duration
	// Collector receives traffic metrics; nil allocates a private one.
	Collector *trace.Collector
	// Plan schedules fault injection (link flaps, restarts, policy changes)
	// into the run. Only the compiled simulation backend supports it; the
	// interpreter and the TCP deployment reject non-empty plans (driving the
	// same plan against DeployRunner is future groundwork).
	Plan *FaultPlan
}

func (o RunOptions) withDefaults() RunOptions {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if !o.LinkExplicit && o.Link == (simnet.LinkConfig{}) {
		o.Link = simnet.DefaultLink()
	}
	if o.Horizon <= 0 {
		o.Horizon = 5 * time.Second
	}
	if o.Collector == nil {
		o.Collector = trace.NewCollector(10 * time.Millisecond)
	}
	return o
}

// NodeRoute is one node's selected route in a RunReport.
type NodeRoute struct {
	Path []string
	Sig  string
}

// RunReport is the uniform outcome of a Runner execution.
type RunReport struct {
	// Runner names the backend that produced the report.
	Runner string
	// Instance is the executed SPP instance's name.
	Instance string
	// Converged reports protocol quiescence before the horizon.
	Converged bool
	// Time is the convergence instant (or the horizon when !Converged):
	// virtual time in simulation, wall clock in deployment.
	Time time.Duration
	// Delivered counts delivered protocol messages (simulation only).
	Delivered int64
	// Messages and Bytes are the collector's traffic totals.
	Messages int
	Bytes    int64
	// Best maps each instance node to its selected route for the implicit
	// destination; nodes with no route are absent.
	Best map[string]NodeRoute
	// Dropped counts messages lost to injected faults or probabilistic link
	// loss (simulation only).
	Dropped int64
	// Faults counts processed fault events; LastFault is the instant of the
	// last one. Time − LastFault is the re-convergence time under churn when
	// Converged.
	Faults    int64
	LastFault time.Duration
	// RouteChanges sums every node's selection changes (compiled sim only) —
	// the churn-severity measure campaign reports aggregate.
	RouteChanges int64
	// NodeChanges maps each node to its selection-change count (compiled sim
	// only); under churn, the nodes with outsized counts are the oscillators
	// the §VI-B suspect set should predict.
	NodeChanges map[string]int64
}

// Runner executes a converted SPP instance on one backend. Implementations
// are stateless values; all per-run state lives inside Run. Cancelling ctx
// aborts the execution with ctx.Err().
type Runner interface {
	// Name identifies the backend ("sim", "sim-ndlog", "tcp").
	Name() string
	// Run executes the instance to quiescence or the horizon.
	Run(ctx context.Context, conv *spp.Conversion, opts RunOptions) (*RunReport, error)
}

// SimRunner executes over the deterministic discrete-event simulator.
// Interpreted selects the NDlog interpreter (this package) instead of the
// compiled pathvector protocol; both implement the same GPV rules, and the
// equivalence of the two is tested.
type SimRunner struct {
	Interpreted bool
}

// Name implements Runner.
func (r SimRunner) Name() string {
	if r.Interpreted {
		return "sim-ndlog"
	}
	return "sim"
}

// Run implements Runner.
func (r SimRunner) Run(ctx context.Context, conv *spp.Conversion, opts RunOptions) (*RunReport, error) {
	opts = opts.withDefaults()
	net := simnet.New(opts.Seed, opts.Collector)
	best := map[string]NodeRoute{}
	var nodeChanges map[string]int64
	var routeChanges int64
	var collect func()
	if r.Interpreted {
		if !opts.Plan.Empty() {
			return nil, fmt.Errorf("engine: fault plans require the compiled sim backend, not %s", r.Name())
		}
		nodes, err := BuildSPP(net, conv, opts.Link, opts.BatchInterval, opts.StartStagger)
		if err != nil {
			return nil, err
		}
		collect = func() {
			for id, n := range nodes {
				if path, sig, ok := n.BestPath(SPPDest); ok {
					best[string(id)] = NodeRoute{Path: path, Sig: sig}
				}
			}
		}
	} else {
		nodes, err := pathvector.BuildSPP(net, conv, opts.Link, pathvector.Config{
			BatchInterval: opts.BatchInterval,
			StartStagger:  opts.StartStagger,
		})
		if err != nil {
			return nil, err
		}
		if !opts.Plan.Empty() {
			applyPlan(net, nodes, opts.Plan)
		}
		collect = func() {
			nodeChanges = map[string]int64{}
			for id, n := range nodes {
				if rt, ok := n.Best(pathvector.SPPDest); ok {
					best[string(id)] = NodeRoute{Path: pathStrings(rt.Path), Sig: sigString(rt)}
				}
				nodeChanges[string(id)] = n.SelectionChanges()
				routeChanges += n.SelectionChanges()
			}
		}
	}
	res, err := net.RunContext(ctx, opts.Horizon)
	if err != nil {
		return nil, err
	}
	collect()
	msgs, bytes := opts.Collector.Totals()
	return &RunReport{
		Runner:       r.Name(),
		Instance:     conv.Instance.Name,
		Converged:    res.Converged,
		Time:         res.Time,
		Delivered:    res.Delivered,
		Messages:     msgs,
		Bytes:        bytes,
		Best:         best,
		Dropped:      res.Dropped,
		Faults:       res.Faults,
		LastFault:    res.LastFault,
		RouteChanges: routeChanges,
		NodeChanges:  nodeChanges,
	}, nil
}

// DeployRunner executes the compiled pathvector protocol over real TCP
// sockets on loopback — the paper's deployment mode. Timing is wall clock;
// link shaping does not apply.
type DeployRunner struct{}

// Name implements Runner.
func (DeployRunner) Name() string { return "tcp" }

// Run implements Runner.
func (d DeployRunner) Run(ctx context.Context, conv *spp.Conversion, opts RunOptions) (*RunReport, error) {
	opts = opts.withDefaults()
	if !opts.Plan.Empty() {
		return nil, fmt.Errorf("engine: fault plans are not yet supported by the %s backend", d.Name())
	}
	idle := opts.IdleWindow
	if idle <= 0 {
		idle = 200 * time.Millisecond
	}
	dep := simnet.NewDeployment(opts.Collector)
	nodes, err := pathvector.BuildSPPDeployment(dep, conv, pathvector.Config{
		BatchInterval: opts.BatchInterval,
		StartStagger:  opts.StartStagger,
	})
	if err != nil {
		return nil, err
	}
	res, err := dep.RunContext(ctx, opts.Horizon, idle)
	if err != nil {
		return nil, err
	}
	best := map[string]NodeRoute{}
	for id, n := range nodes {
		if rt, ok := n.Best(pathvector.SPPDest); ok {
			best[string(id)] = NodeRoute{Path: pathStrings(rt.Path), Sig: sigString(rt)}
		}
	}
	msgs, bytes := opts.Collector.Totals()
	return &RunReport{
		Runner:    d.Name(),
		Instance:  conv.Instance.Name,
		Converged: res.Converged,
		Time:      res.Time,
		Messages:  msgs,
		Bytes:     bytes,
		Best:      best,
	}, nil
}

func pathStrings(p []simnet.NodeID) []string {
	out := make([]string, len(p))
	for i, n := range p {
		out[i] = string(n)
	}
	return out
}

func sigString(rt pathvector.Route) string {
	if rt.Sig == nil {
		return ""
	}
	return rt.Sig.String()
}

// Runners returns every built-in runner backend, in preference order.
func Runners() []Runner {
	return []Runner{SimRunner{}, SimRunner{Interpreted: true}, DeployRunner{}}
}

// RunnerByName resolves a backend by its Name; it returns an error naming
// the known backends for an unknown name.
func RunnerByName(name string) (Runner, error) {
	switch name {
	case "", "sim":
		return SimRunner{}, nil
	case "sim-ndlog", "ndlog":
		return SimRunner{Interpreted: true}, nil
	case "tcp", "deploy", "deployment":
		return DeployRunner{}, nil
	default:
		return nil, fmt.Errorf("engine: unknown runner backend %q (have: sim, sim-ndlog, tcp)", name)
	}
}
