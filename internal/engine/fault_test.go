package engine

import (
	"context"
	"fmt"
	"testing"
	"time"

	"fsr/internal/spp"
)

var (
	planNodes    = []string{"1", "2", "3"}
	planSessions = [][2]string{{"1", "2"}, {"2", "3"}, {"3", "1"}}
	fullSpec     = FaultPlanSpec{Flaps: 2, StormFlaps: 3, Partitions: 1, Restarts: 1, PolicyChanges: 1}
)

// TestBuildFaultPlanDeterminism: identical inputs yield the identical
// schedule; a different seed yields a different one.
func TestBuildFaultPlanDeterminism(t *testing.T) {
	p1 := BuildFaultPlan(9, planNodes, planSessions, fullSpec)
	p2 := BuildFaultPlan(9, planNodes, planSessions, fullSpec)
	if fmt.Sprint(p1.Ops) != fmt.Sprint(p2.Ops) {
		t.Errorf("same seed, different plans:\n%v\n%v", p1.Ops, p2.Ops)
	}
	p3 := BuildFaultPlan(10, planNodes, planSessions, fullSpec)
	if fmt.Sprint(p1.Ops) == fmt.Sprint(p3.Ops) {
		t.Errorf("different seeds produced the same plan: %v", p1.Ops)
	}
	if len(p1.Ops) == 0 || p1.LastFault() == 0 {
		t.Fatalf("plan should schedule something: %v", p1.Ops)
	}
	for i := 1; i < len(p1.Ops); i++ {
		if p1.Ops[i].At < p1.Ops[i-1].At {
			t.Fatalf("ops not time-ordered: %v", p1.Ops)
		}
	}
	if BuildFaultPlan(9, nil, nil, fullSpec).LastFault() != 0 {
		t.Errorf("empty topology should yield an empty plan")
	}
}

// TestSimRunnerWithPlan: a churn plan runs on the compiled sim backend, the
// report carries fault accounting, and GOODGADGET re-converges after the
// last fault.
func TestSimRunnerWithPlan(t *testing.T) {
	conv, err := spp.GoodGadget().ToAlgebra()
	if err != nil {
		t.Fatal(err)
	}
	plan := BuildFaultPlan(3, planNodes, planSessions,
		FaultPlanSpec{Flaps: 2, Restarts: 1, PolicyChanges: 1})
	run := func() *RunReport {
		rep, err := SimRunner{}.Run(context.Background(), conv, RunOptions{
			Seed: 3, Horizon: 60 * time.Second, Plan: plan,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	rep := run()
	if !rep.Converged {
		t.Fatalf("GOODGADGET should re-converge under churn (ran to %v)", rep.Time)
	}
	if rep.Faults == 0 || rep.LastFault == 0 {
		t.Errorf("fault accounting missing: %+v", rep)
	}
	if rep.Time <= rep.LastFault {
		t.Errorf("convergence (%v) should postdate the last fault (%v)", rep.Time, rep.LastFault)
	}
	if rep.RouteChanges == 0 || len(rep.NodeChanges) != 3 {
		t.Errorf("route-change accounting missing: changes=%d per-node=%v", rep.RouteChanges, rep.NodeChanges)
	}
	if got := rep.Best["1"]; fmt.Sprint(got.Path) != "[1 3 r3]" {
		t.Errorf("node 1 should return to its preferred path, got %v", got.Path)
	}
	// Bit-identical reproduction from the same seed and plan.
	rep2 := run()
	if fmt.Sprint(rep) != fmt.Sprint(rep2) {
		t.Errorf("seeded churn runs differ:\n%+v\n%+v", rep, rep2)
	}
}

// TestPlanDanglingRefsSkipped: ops referencing nodes or links the instance
// doesn't have are skipped (the shrinker removes topology out from under a
// plan), and the run still executes the valid remainder.
func TestPlanDanglingRefsSkipped(t *testing.T) {
	conv, err := spp.GoodGadget().ToAlgebra()
	if err != nil {
		t.Fatal(err)
	}
	plan := &FaultPlan{Ops: []FaultOp{
		{At: time.Second, Kind: FaultLinkDown, A: "1", B: "99"},
		{At: time.Second, Kind: FaultRestart, A: "99"},
		{At: time.Second, Kind: FaultPolicyWithdraw, A: "99"},
		{At: 2 * time.Second, Kind: FaultRestart, A: "2"},
	}}
	rep, err := SimRunner{}.Run(context.Background(), conv, RunOptions{
		Seed: 1, Horizon: 60 * time.Second, Plan: plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults != 1 {
		t.Errorf("only the valid restart should inject, got %d faults", rep.Faults)
	}
	if !rep.Converged {
		t.Errorf("run should still converge")
	}
}

// TestPlanRejectedByOtherBackends: the interpreter and the TCP deployment
// refuse fault plans instead of silently ignoring them.
func TestPlanRejectedByOtherBackends(t *testing.T) {
	conv, err := spp.GoodGadget().ToAlgebra()
	if err != nil {
		t.Fatal(err)
	}
	plan := &FaultPlan{Ops: []FaultOp{{At: time.Second, Kind: FaultRestart, A: "1"}}}
	opts := RunOptions{Horizon: time.Second, Plan: plan}
	if _, err := (SimRunner{Interpreted: true}).Run(context.Background(), conv, opts); err == nil {
		t.Errorf("interpreter should reject fault plans")
	}
	if _, err := (DeployRunner{}).Run(context.Background(), conv, opts); err == nil {
		t.Errorf("deployment should reject fault plans")
	}
}
