// FaultPlan: a deterministic, seed-derived schedule of faults a runner
// injects into an execution — link flaps, flap storms, partitions, node
// restarts, and mid-run policy changes (origination flaps). Plans are plain
// data so campaign reports can print them and a replayed scenario rebuilds
// the identical schedule from its seed.

package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"fsr/internal/pathvector"
	"fsr/internal/simnet"
)

// FaultOpKind enumerates plan operations.
type FaultOpKind uint8

const (
	// FaultLinkDown takes session A–B down at At.
	FaultLinkDown FaultOpKind = iota
	// FaultLinkUp restores session A–B at At.
	FaultLinkUp
	// FaultRestart restarts node A at At.
	FaultRestart
	// FaultPolicyWithdraw disables node A's externally learned originations
	// at At — a mid-run policy change pulling routes out of the network.
	FaultPolicyWithdraw
	// FaultPolicyRestore re-enables node A's originations at At.
	FaultPolicyRestore
)

// String names the op kind for reports.
func (k FaultOpKind) String() string {
	switch k {
	case FaultLinkDown:
		return "link-down"
	case FaultLinkUp:
		return "link-up"
	case FaultRestart:
		return "restart"
	case FaultPolicyWithdraw:
		return "policy-withdraw"
	case FaultPolicyRestore:
		return "policy-restore"
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// FaultOp is one scheduled fault. B is the second link endpoint for link
// ops and empty otherwise.
type FaultOp struct {
	At   time.Duration
	Kind FaultOpKind
	A, B string
}

// String renders the op for reports and counterexample listings.
func (op FaultOp) String() string {
	if op.B != "" {
		return fmt.Sprintf("%v %s %s–%s", op.At, op.Kind, op.A, op.B)
	}
	return fmt.Sprintf("%v %s %s", op.At, op.Kind, op.A)
}

// FaultPlan is a schedule of fault operations, ordered by time.
type FaultPlan struct {
	Ops []FaultOp
}

// LastFault returns the instant of the latest operation (zero for an empty
// plan) — the moment after which a safe policy must re-converge.
func (p *FaultPlan) LastFault() time.Duration {
	var last time.Duration
	if p != nil {
		for _, op := range p.Ops {
			if op.At > last {
				last = op.At
			}
		}
	}
	return last
}

// Empty reports whether the plan schedules nothing.
func (p *FaultPlan) Empty() bool { return p == nil || len(p.Ops) == 0 }

// FaultPlanSpec sizes a generated plan. The zero value is a usable light
// plan once any fault count is set.
type FaultPlanSpec struct {
	// Flaps is the number of independent link flaps (down, then up after a
	// random outage).
	Flaps int
	// StormFlaps is the number of additional flaps compressed into a short
	// burst — the flap-storm §VI-B's suspect set should light up under.
	StormFlaps int
	// Partitions is the number of network bipartitions (every crossing
	// session down, then restored together).
	Partitions int
	// Restarts is the number of node restarts.
	Restarts int
	// PolicyChanges is the number of origination flaps (withdraw, then
	// restore after a random outage).
	PolicyChanges int
	// Start is the earliest fault instant. Zero means 1 s.
	Start time.Duration
	// Window is the span faults are spread over, from Start. Zero means 3 s.
	Window time.Duration
	// MinOutage/MaxOutage bound each outage duration. Zero means
	// 200 ms / 1 s.
	MinOutage time.Duration
	MaxOutage time.Duration
}

func (s FaultPlanSpec) withDefaults() FaultPlanSpec {
	if s.Start <= 0 {
		s.Start = time.Second
	}
	if s.Window <= 0 {
		s.Window = 3 * time.Second
	}
	if s.MinOutage <= 0 {
		s.MinOutage = 200 * time.Millisecond
	}
	if s.MaxOutage <= s.MinOutage {
		s.MaxOutage = s.MinOutage + 800*time.Millisecond
	}
	return s
}

// BuildFaultPlan derives a fault schedule from the seed: identical inputs
// yield the identical plan. nodes and sessions describe the topology the
// plan runs against; ops referencing elements absent at run time (e.g.
// after counterexample shrinking removed them) are skipped silently.
func BuildFaultPlan(seed int64, nodes []string, sessions [][2]string, spec FaultPlanSpec) *FaultPlan {
	spec = spec.withDefaults()
	plan := &FaultPlan{}
	if len(nodes) == 0 {
		return plan
	}
	rng := rand.New(rand.NewSource(seed))
	at := func(base time.Duration, span time.Duration) time.Duration {
		return base + time.Duration(rng.Int63n(int64(span)))
	}
	outage := func() time.Duration {
		return spec.MinOutage + time.Duration(rng.Int63n(int64(spec.MaxOutage-spec.MinOutage)))
	}
	flap := func(base, span time.Duration) {
		if len(sessions) == 0 {
			return
		}
		s := sessions[rng.Intn(len(sessions))]
		down := at(base, span)
		plan.Ops = append(plan.Ops,
			FaultOp{At: down, Kind: FaultLinkDown, A: s[0], B: s[1]},
			FaultOp{At: down + outage(), Kind: FaultLinkUp, A: s[0], B: s[1]})
	}
	for i := 0; i < spec.Flaps; i++ {
		flap(spec.Start, spec.Window)
	}
	if spec.StormFlaps > 0 {
		// The storm compresses its flaps into a quarter-window burst.
		burst := spec.Window / 4
		if burst <= 0 {
			burst = spec.Window
		}
		start := at(spec.Start, spec.Window-burst+1)
		for i := 0; i < spec.StormFlaps; i++ {
			flap(start, burst)
		}
	}
	for i := 0; i < spec.Partitions; i++ {
		// A random bipartition with both sides non-empty; every crossing
		// session fails and recovers together.
		side := map[string]bool{}
		for _, n := range nodes {
			side[n] = rng.Intn(2) == 1
		}
		side[nodes[0]] = true
		if len(nodes) > 1 {
			side[nodes[len(nodes)-1]] = false
		}
		down := at(spec.Start, spec.Window)
		up := down + outage()
		for _, s := range sessions {
			if side[s[0]] != side[s[1]] {
				plan.Ops = append(plan.Ops,
					FaultOp{At: down, Kind: FaultLinkDown, A: s[0], B: s[1]},
					FaultOp{At: up, Kind: FaultLinkUp, A: s[0], B: s[1]})
			}
		}
	}
	for i := 0; i < spec.Restarts; i++ {
		n := nodes[rng.Intn(len(nodes))]
		plan.Ops = append(plan.Ops, FaultOp{At: at(spec.Start, spec.Window), Kind: FaultRestart, A: n})
	}
	for i := 0; i < spec.PolicyChanges; i++ {
		n := nodes[rng.Intn(len(nodes))]
		down := at(spec.Start, spec.Window)
		plan.Ops = append(plan.Ops,
			FaultOp{At: down, Kind: FaultPolicyWithdraw, A: n},
			FaultOp{At: down + outage(), Kind: FaultPolicyRestore, A: n})
	}
	sort.SliceStable(plan.Ops, func(i, j int) bool { return plan.Ops[i].At < plan.Ops[j].At })
	return plan
}

// applyPlan schedules the plan's operations on the network. Operations
// referencing nodes or links the topology doesn't have are skipped — a
// shrunk counterexample keeps its plan without re-deriving it.
func applyPlan(net *simnet.Network, nodes map[simnet.NodeID]*pathvector.Node, plan *FaultPlan) {
	for _, op := range plan.Ops {
		a, b := simnet.NodeID(op.A), simnet.NodeID(op.B)
		switch op.Kind {
		case FaultLinkDown:
			net.ScheduleFault(op.At, simnet.FaultEvent{Kind: simnet.FaultLinkDown, A: a, B: b})
		case FaultLinkUp:
			net.ScheduleFault(op.At, simnet.FaultEvent{Kind: simnet.FaultLinkUp, A: a, B: b})
		case FaultRestart:
			net.ScheduleFault(op.At, simnet.FaultEvent{Kind: simnet.FaultRestart, A: a})
		case FaultPolicyWithdraw, FaultPolicyRestore:
			n := nodes[a]
			if n == nil {
				continue
			}
			on := op.Kind == FaultPolicyRestore
			net.ScheduleCall(op.At, a, func(env simnet.Env) { n.SetOriginationsEnabled(env, on) })
		}
	}
}
