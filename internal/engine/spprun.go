package engine

import (
	"time"

	"fsr/internal/ndlog"
	"fsr/internal/simnet"
	"fsr/internal/spp"
)

// SPPDest is the implicit destination used when executing an SPP instance,
// matching the native GPV runner.
const SPPDest = "_dest"

// BuildSPP wires an NDlog-interpreted GPV network for an SPP instance: it
// generates the GPV program from the instance's algebra (§V-B) and installs
// each node's step-4 configuration tuples — label rows for its links and
// sig rows for its externally learned routes.
func BuildSPP(net *simnet.Network, conv *spp.Conversion, link simnet.LinkConfig, batch, stagger time.Duration) (map[simnet.NodeID]*Node, error) {
	prog, err := ndlog.Generate(conv.Algebra)
	if err != nil {
		return nil, err
	}
	in := conv.Instance

	initial := map[spp.Node][]Tuple{}
	for _, l := range in.Links {
		lab := conv.LabelOf[l]
		initial[l.From] = append(initial[l.From], Tuple{
			Pred: "label",
			Args: []ndlog.Value{string(l.From), string(l.To), lab.String()},
		})
	}
	for _, o := range conv.Originations() {
		path := make(ndlog.List, len(o.Path))
		for i, n := range o.Path {
			path[i] = string(n)
		}
		initial[o.Node] = append(initial[o.Node], Tuple{
			Pred: "sig",
			Args: []ndlog.Value{string(o.Node), string(o.Node), SPPDest, o.Sig.String(), path},
		})
	}

	nodes := map[simnet.NodeID]*Node{}
	for _, n := range in.Nodes {
		en, err := NewNode(Config{
			Program:       prog,
			Initial:       initial[n],
			BatchInterval: batch,
			StartStagger:  stagger,
		})
		if err != nil {
			return nil, err
		}
		nodes[simnet.NodeID(n)] = en
		if err := net.AddNode(simnet.NodeID(n), en); err != nil {
			return nil, err
		}
	}
	seen := map[spp.Link]bool{}
	for _, l := range in.Links {
		if seen[l] || seen[spp.Link{From: l.To, To: l.From}] {
			continue
		}
		seen[l] = true
		if err := net.Connect(simnet.NodeID(l.From), simnet.NodeID(l.To), link); err != nil {
			return nil, err
		}
	}
	return nodes, nil
}

// BestPath reads a node's selected path for dest from its localOpt table,
// the NDlog counterpart of pathvector.Node.Best.
func (n *Node) BestPath(dest string) ([]string, string, bool) {
	for _, row := range n.Table("localOpt") {
		if len(row) != 4 {
			continue
		}
		if d, ok := row[1].(string); !ok || d != dest {
			continue
		}
		sig, _ := row[2].(string)
		list, _ := row[3].(ndlog.List)
		path := make([]string, len(list))
		for i, v := range list {
			path[i], _ = v.(string)
		}
		return path, sig, true
	}
	return nil, "", false
}
