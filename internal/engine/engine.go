// Package engine executes NDlog programs over the simnet platform,
// substituting for the RapidNet declarative networking engine the paper
// compiles its generated programs with (§V). Each node holds materialized
// tables and evaluates rules incrementally: a tuple delta (a received msg
// event or a local table change) joins against the node's tables, derived
// heads with a remote location specifier are shipped to their node, and
// keyed tables give RapidNet's replace-on-insert semantics (which the GPV
// program uses for BGP's implicit withdraw).
//
// Supported fragment (sufficient for the generated GPV programs and
// HLP-style variants): single-headed rules; bodies of table/event atoms,
// assignments and conditions; one aggregate (argmin) head per rule with a
// single table atom in its body. These are the constructs the paper's
// listings use.
package engine

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"fsr/internal/ndlog"
	"fsr/internal/simnet"
)

// Tuple is a predicate instance, the unit stored in tables and shipped
// between nodes.
type Tuple struct {
	Pred string
	Args []ndlog.Value
}

// String renders the tuple for diagnostics.
func (t Tuple) String() string {
	parts := make([]string, len(t.Args))
	for i, a := range t.Args {
		parts[i] = fmt.Sprintf("%v", a)
	}
	return t.Pred + "(" + strings.Join(parts, ",") + ")"
}

// WireSize estimates the advert-comparable on-the-wire size of a tuple.
func (t Tuple) WireSize() int {
	size := 16
	for _, a := range t.Args {
		switch v := a.(type) {
		case ndlog.List:
			size += 4 * len(v)
		case string:
			size += 4
		default:
			size += 4
		}
	}
	return size
}

func init() {
	simnet.RegisterPayload(Tuple{})
	simnet.RegisterPayload(ndlog.List{})
}

// Config parameterizes one engine node.
type Config struct {
	// Program is the NDlog program to execute (shared, read-only).
	Program *ndlog.Program
	// Initial are the node's configuration tuples (step 4 of §V-B: label
	// rows and origination sig rows).
	Initial []Tuple
	// BatchInterval batches remote sends, like the GPV batching of §VI-A;
	// the timer is jittered by up to 50% (MRAI-style) to break symmetric
	// oscillation lockstep. Zero sends on the next event.
	BatchInterval time.Duration
	// StartStagger delays the initial tuple injection by a deterministic
	// per-node random offset in [0, StartStagger).
	StartStagger time.Duration
	// OnTuple observes every locally inserted tuple (for SPP extraction
	// and debugging).
	OnTuple func(node simnet.NodeID, t Tuple)
}

// table is one materialized table instance.
type table struct {
	decl ndlog.TableDecl
	rows map[string][]ndlog.Value
}

func (tb *table) key(args []ndlog.Value) string {
	var b strings.Builder
	if idx := tb.decl.Keys; len(idx) > 0 {
		for _, i := range idx {
			if i < len(args) {
				writeKeyValue(&b, args[i])
			}
		}
	} else {
		for i := range args {
			writeKeyValue(&b, args[i])
		}
	}
	return b.String()
}

// writeKeyValue renders one key component followed by the '|' separator.
func writeKeyValue(b *strings.Builder, v ndlog.Value) {
	writeValue(b, v)
	b.WriteByte('|')
}

// writeValue renders a Value the way fmt's %v would, but with the concrete
// kinds (string, int, bool, List) written directly — this runs on every
// tuple insert, and the reflective %v dominated the interpreted runner's
// allocation profile.
func writeValue(b *strings.Builder, v ndlog.Value) {
	switch x := v.(type) {
	case string:
		b.WriteString(x)
	case int:
		var buf [20]byte
		b.Write(strconv.AppendInt(buf[:0], int64(x), 10))
	case bool:
		if x {
			b.WriteString("true")
		} else {
			b.WriteString("false")
		}
	case ndlog.List:
		b.WriteByte('[')
		for i, e := range x {
			if i > 0 {
				b.WriteByte(' ')
			}
			writeValue(b, e)
		}
		b.WriteByte(']')
	default:
		fmt.Fprintf(b, "%v", v)
	}
}

// Node is one NDlog engine instance attached to a simnet node.
type Node struct {
	cfg    Config
	funcs  map[string]ndlog.FuncDef
	aggs   map[string]ndlog.AggDef
	tables map[string]*table
	// byBodyPred indexes rules by the predicates appearing in their bodies.
	byBodyPred map[string][]int

	outbox         []outMsg
	flushScheduled bool
}

type outMsg struct {
	to    simnet.NodeID
	tuple Tuple
}

var _ simnet.Handler = (*Node)(nil)

// NewNode builds an engine node for the program. The a_pref aggregate is
// synthesized from the program's f_pref function (Table II).
func NewNode(cfg Config) (*Node, error) {
	n := &Node{
		cfg:        cfg,
		funcs:      map[string]ndlog.FuncDef{},
		aggs:       map[string]ndlog.AggDef{},
		tables:     map[string]*table{},
		byBodyPred: map[string][]int{},
	}
	for _, f := range cfg.Program.Funcs {
		if f.Impl == nil {
			return nil, ndlog.Errf("function %s has no implementation", f.Name)
		}
		n.funcs[f.Name] = f
	}
	for _, d := range cfg.Program.Materialized {
		n.tables[d.Name] = &table{decl: d, rows: map[string][]ndlog.Value{}}
	}
	for ri, r := range cfg.Program.Rules {
		for _, bt := range r.Body {
			if a, ok := bt.(ndlog.Atom); ok {
				n.byBodyPred[a.Pred] = append(n.byBodyPred[a.Pred], ri)
			}
		}
	}
	if pref, ok := n.funcs["f_pref"]; ok {
		n.aggs["a_pref"] = ndlog.AggDef{Name: "a_pref", Better: n.prefBetter(pref)}
	}
	return n, nil
}

// prefBetter builds the a_pref comparator over projected head rows: the
// aggregate column is compared with f_pref; ties break toward the shorter,
// then lexicographically smaller companion path (the deterministic stand-in
// for BGP's final tie-breakers, matching the native GPV implementation).
func (n *Node) prefBetter(pref ndlog.FuncDef) func(a, b []ndlog.Value) bool {
	call := func(x, y ndlog.Value) bool {
		v, err := pref.Impl([]ndlog.Value{x, y})
		if err != nil {
			return false
		}
		res, _ := v.(bool)
		return res
	}
	return func(a, b []ndlog.Value) bool {
		sa, pa := aggColumns(a)
		sb, pb := aggColumns(b)
		if call(sa, sb) {
			return true
		}
		if call(sb, sa) {
			return false
		}
		if len(pa) != len(pb) {
			return len(pa) < len(pb)
		}
		return fmt.Sprintf("%v", pa) < fmt.Sprintf("%v", pb)
	}
}

// aggColumns extracts the aggregate column (the signature) and the
// companion path from a projected head row: by GPV convention the
// aggregated S is the penultimate argument and the path is last.
func aggColumns(row []ndlog.Value) (sig ndlog.Value, path ndlog.List) {
	if len(row) >= 2 {
		sig = row[len(row)-2]
	}
	if p, ok := row[len(row)-1].(ndlog.List); ok {
		path = p
	}
	return sig, path
}

// Start implements simnet.Handler: inject configuration tuples.
func (n *Node) Start(env simnet.Env) {
	inject := func() {
		for _, t := range n.cfg.Initial {
			n.insert(env, t)
		}
	}
	if n.cfg.StartStagger > 0 {
		env.Schedule(time.Duration(env.Rand().Int63n(int64(n.cfg.StartStagger))), inject)
	} else {
		inject()
	}
}

// Receive implements simnet.Handler: a remote tuple arrives (an event such
// as msg, or a shipped materialized tuple).
func (n *Node) Receive(env simnet.Env, from simnet.NodeID, payload any) {
	t, ok := payload.(Tuple)
	if !ok {
		panic(fmt.Sprintf("engine: unexpected payload %T", payload))
	}
	n.insert(env, t)
}

// Table returns a snapshot of a table's rows (for post-run inspection).
func (n *Node) Table(pred string) [][]ndlog.Value {
	tb := n.tables[pred]
	if tb == nil {
		return nil
	}
	keys := make([]string, 0, len(tb.rows))
	for k := range tb.rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]ndlog.Value, 0, len(keys))
	for _, k := range keys {
		row := make([]ndlog.Value, len(tb.rows[k]))
		copy(row, tb.rows[k])
		out = append(out, row)
	}
	return out
}

// insert applies a tuple delta: store it (materialized predicates, with
// replace-on-key) and trigger dependent rules. Events (undeclared
// predicates) only trigger.
func (n *Node) insert(env simnet.Env, t Tuple) {
	if tb := n.tables[t.Pred]; tb != nil {
		k := tb.key(t.Args)
		if old, exists := tb.rows[k]; exists && rowEqual(old, t.Args) {
			return // no-op insert: fixpoint, do not retrigger
		}
		tb.rows[k] = t.Args
	}
	if n.cfg.OnTuple != nil {
		n.cfg.OnTuple(env.Self(), t)
	}
	for _, ri := range n.byBodyPred[t.Pred] {
		rule := n.cfg.Program.Rules[ri]
		if isAggRule(rule) {
			n.evalAggRule(env, rule, t)
		} else {
			n.evalRule(env, rule, t)
		}
	}
}

func rowEqual(a, b []ndlog.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !ndlog.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

func isAggRule(r ndlog.Rule) bool {
	for _, a := range r.Head.Args {
		if _, ok := a.(ndlog.Agg); ok {
			return true
		}
	}
	return false
}

// binding is a variable environment.
type binding map[string]ndlog.Value

// unify binds an atom's argument pattern against a concrete row.
func unify(a ndlog.Atom, row []ndlog.Value, env binding) (binding, bool) {
	if len(a.Args) != len(row) {
		return nil, false
	}
	out := binding{}
	for k, v := range env {
		out[k] = v
	}
	for i, arg := range a.Args {
		switch v := arg.(type) {
		case ndlog.Var:
			if bound, ok := out[string(v)]; ok {
				if !ndlog.Equal(bound, row[i]) {
					return nil, false
				}
			} else {
				out[string(v)] = row[i]
			}
		case ndlog.Str:
			if !ndlog.Equal(string(v), row[i]) {
				return nil, false
			}
		case ndlog.Int:
			if !ndlog.Equal(int(v), row[i]) {
				return nil, false
			}
		case ndlog.Bool:
			if !ndlog.Equal(bool(v), row[i]) {
				return nil, false
			}
		default:
			return nil, false
		}
	}
	return out, true
}

// eval evaluates an expression under a binding.
func (n *Node) eval(e ndlog.Expr, env binding) (ndlog.Value, error) {
	switch v := e.(type) {
	case ndlog.Var:
		val, ok := env[string(v)]
		if !ok {
			return nil, ndlog.Errf("unbound variable %s", v)
		}
		return val, nil
	case ndlog.Str:
		return string(v), nil
	case ndlog.Int:
		return int(v), nil
	case ndlog.Bool:
		return bool(v), nil
	case ndlog.Call:
		f, ok := n.funcs[v.Fn]
		if !ok {
			return nil, ndlog.Errf("unknown function %s", v.Fn)
		}
		args := make([]ndlog.Value, len(v.Args))
		for i, a := range v.Args {
			val, err := n.eval(a, env)
			if err != nil {
				return nil, err
			}
			args[i] = val
		}
		return f.Impl(args)
	case ndlog.Cmp:
		l, err := n.eval(v.L, env)
		if err != nil {
			return nil, err
		}
		r, err := n.eval(v.R, env)
		if err != nil {
			return nil, err
		}
		return compare(v.Op, l, r)
	default:
		return nil, ndlog.Errf("unsupported expression %T", e)
	}
}

func compare(op string, l, r ndlog.Value) (ndlog.Value, error) {
	switch op {
	case "==":
		return ndlog.Equal(l, r), nil
	case "!=":
		return !ndlog.Equal(l, r), nil
	}
	li, lok := l.(int)
	ri, rok := r.(int)
	if !lok || !rok {
		return nil, ndlog.Errf("comparison %s needs integers, got %T and %T", op, l, r)
	}
	switch op {
	case "<":
		return li < ri, nil
	case "<=":
		return li <= ri, nil
	case ">":
		return li > ri, nil
	case ">=":
		return li >= ri, nil
	}
	return nil, ndlog.Errf("unknown comparison %s", op)
}

// evalRule evaluates a non-aggregate rule against a delta tuple: the delta
// is bound to each matching body atom in turn, the remaining atoms join
// against local tables, and guards/assignments run in body order.
func (n *Node) evalRule(env simnet.Env, rule ndlog.Rule, delta Tuple) {
	for bi, bt := range rule.Body {
		a, ok := bt.(ndlog.Atom)
		if !ok || a.Pred != delta.Pred {
			continue
		}
		if b, ok := unify(a, delta.Args, binding{}); ok {
			n.joinRest(env, rule, b, 0, bi)
		}
	}
}

// joinRest processes body terms from index i (skipping the delta position),
// emitting the head under every complete binding.
func (n *Node) joinRest(env simnet.Env, rule ndlog.Rule, b binding, i, deltaIdx int) {
	if i >= len(rule.Body) {
		n.emit(env, rule, b)
		return
	}
	if i == deltaIdx {
		n.joinRest(env, rule, b, i+1, deltaIdx)
		return
	}
	switch t := rule.Body[i].(type) {
	case ndlog.Atom:
		tb := n.tables[t.Pred]
		if tb == nil {
			return // joining an event predicate: no stored rows
		}
		keys := make([]string, 0, len(tb.rows))
		for k := range tb.rows {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if nb, ok := unify(t, tb.rows[k], b); ok {
				n.joinRest(env, rule, nb, i+1, deltaIdx)
			}
		}
	case ndlog.Assign:
		val, err := n.eval(t.Expr, b)
		if err != nil {
			return // evaluation failure: rule does not fire
		}
		if bound, ok := b[t.Var]; ok {
			if !ndlog.Equal(bound, val) {
				return
			}
			n.joinRest(env, rule, b, i+1, deltaIdx)
			return
		}
		nb := binding{}
		for k, v := range b {
			nb[k] = v
		}
		nb[t.Var] = val
		n.joinRest(env, rule, nb, i+1, deltaIdx)
	case ndlog.Cond:
		val, err := n.eval(t.Expr, b)
		if err != nil {
			return
		}
		if ok, _ := val.(bool); ok {
			n.joinRest(env, rule, b, i+1, deltaIdx)
		}
	}
}

// emit constructs the head tuple and routes it by location specifier.
func (n *Node) emit(env simnet.Env, rule ndlog.Rule, b binding) {
	args := make([]ndlog.Value, len(rule.Head.Args))
	for i, e := range rule.Head.Args {
		val, err := n.eval(e, b)
		if err != nil {
			return
		}
		args[i] = val
	}
	n.route(env, rule.Head, Tuple{Pred: rule.Head.Pred, Args: args})
}

// route delivers a head tuple: locally when the location specifier names
// this node, remotely (batched) otherwise.
func (n *Node) route(env simnet.Env, head ndlog.Atom, t Tuple) {
	loc := env.Self()
	if head.LocArg >= 0 {
		if s, ok := t.Args[head.LocArg].(string); ok {
			loc = simnet.NodeID(s)
		}
	}
	if loc == env.Self() {
		n.insert(env, t)
		return
	}
	n.outbox = append(n.outbox, outMsg{to: loc, tuple: t})
	n.scheduleFlush(env)
}

// scheduleFlush mirrors the GPV batching: one outstanding jittered timer.
func (n *Node) scheduleFlush(env simnet.Env) {
	if n.flushScheduled {
		return
	}
	n.flushScheduled = true
	d := n.cfg.BatchInterval
	if d > 0 {
		d += time.Duration(env.Rand().Int63n(int64(d)/2 + 1))
	}
	env.Schedule(d, func() {
		n.flushScheduled = false
		out := n.outbox
		n.outbox = nil
		for _, m := range out {
			env.Send(m.to, m.tuple, m.tuple.WireSize())
		}
	})
}

// evalAggRule recomputes the aggregate group(s) affected by a delta: the
// rule must have exactly one table atom in its body (the GPV gpvSelect
// shape). The group key is the head's non-aggregate arguments; the winning
// row per group is upserted into the head table.
func (n *Node) evalAggRule(env simnet.Env, rule ndlog.Rule, delta Tuple) {
	var bodyAtom ndlog.Atom
	found := false
	for _, bt := range rule.Body {
		if a, ok := bt.(ndlog.Atom); ok {
			if found {
				return // unsupported: multiple atoms in aggregate body
			}
			bodyAtom, found = a, true
		}
	}
	if !found || bodyAtom.Pred != delta.Pred {
		return
	}
	tb := n.tables[bodyAtom.Pred]
	if tb == nil {
		return
	}
	// Determine the delta's group key to limit recomputation.
	deltaGroup, ok := n.groupOf(rule, bodyAtom, delta.Args)
	if !ok {
		return
	}
	type best struct {
		row []ndlog.Value
	}
	winners := map[string]*best{}
	keys := make([]string, 0, len(tb.rows))
	for k := range tb.rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		row := tb.rows[k]
		b, ok := unify(bodyAtom, row, binding{})
		if !ok {
			continue
		}
		if !n.passGuards(rule, b) {
			continue
		}
		group, proj, ok := n.projectAgg(rule, b)
		if !ok || group != deltaGroup {
			continue
		}
		w := winners[group]
		if w == nil {
			winners[group] = &best{row: proj}
			continue
		}
		agg := n.aggOf(rule)
		if agg != nil && agg.Better(proj, w.row) {
			w.row = proj
		}
	}
	if w := winners[deltaGroup]; w != nil {
		n.route(env, rule.Head, Tuple{Pred: rule.Head.Pred, Args: w.row})
	}
}

// passGuards evaluates the rule's non-atom body terms under b.
func (n *Node) passGuards(rule ndlog.Rule, b binding) bool {
	for _, bt := range rule.Body {
		switch t := bt.(type) {
		case ndlog.Assign:
			val, err := n.eval(t.Expr, b)
			if err != nil {
				return false
			}
			if bound, ok := b[t.Var]; ok {
				if !ndlog.Equal(bound, val) {
					return false
				}
			} else {
				b[t.Var] = val
			}
		case ndlog.Cond:
			val, err := n.eval(t.Expr, b)
			if err != nil {
				return false
			}
			if ok, _ := val.(bool); !ok {
				return false
			}
		}
	}
	return true
}

// aggIndex returns the position of the aggregate argument in the head.
func aggIndex(rule ndlog.Rule) int {
	for i, e := range rule.Head.Args {
		if _, ok := e.(ndlog.Agg); ok {
			return i
		}
	}
	return -1
}

// projectAgg evaluates the head args under b, returning the group key and
// the full projected row. Following the paper's a_pref<S> convention, the
// group key is formed by the head arguments *before* the aggregate
// (localOpt(@U,D,a_pref<S>,P) groups by (U,D)); arguments after it are
// companions of the winning row (the argmin's path).
func (n *Node) projectAgg(rule ndlog.Rule, b binding) (string, []ndlog.Value, bool) {
	ai := aggIndex(rule)
	var groupKey strings.Builder
	row := make([]ndlog.Value, len(rule.Head.Args))
	for i, e := range rule.Head.Args {
		if agg, ok := e.(ndlog.Agg); ok {
			val, err := n.eval(ndlog.Var(agg.Arg), b)
			if err != nil {
				return "", nil, false
			}
			row[i] = val
			continue
		}
		val, err := n.eval(e, b)
		if err != nil {
			return "", nil, false
		}
		row[i] = val
		if i < ai {
			fmt.Fprintf(&groupKey, "%v|", val)
		}
	}
	return groupKey.String(), row, true
}

// groupOf computes the group key of a delta row for an aggregate rule. The
// delta may itself fail the guards (e.g. a φ signature) while still
// invalidating its group's previous winner, so the key is derived from the
// pre-aggregate head arguments alone.
func (n *Node) groupOf(rule ndlog.Rule, bodyAtom ndlog.Atom, row []ndlog.Value) (string, bool) {
	b, ok := unify(bodyAtom, row, binding{})
	if !ok {
		return "", false
	}
	ai := aggIndex(rule)
	var groupKey strings.Builder
	for i, e := range rule.Head.Args {
		if i >= ai {
			break
		}
		val, err := n.eval(e, b)
		if err != nil {
			return "", false
		}
		fmt.Fprintf(&groupKey, "%v|", val)
	}
	return groupKey.String(), true
}

// aggOf returns the rule's aggregate definition.
func (n *Node) aggOf(rule ndlog.Rule) *ndlog.AggDef {
	for _, e := range rule.Head.Args {
		if agg, ok := e.(ndlog.Agg); ok {
			if def, ok := n.aggs[agg.Fn]; ok {
				return &def
			}
		}
	}
	return nil
}
