package engine

import (
	"testing"
	"time"

	"fsr/internal/pathvector"
	"fsr/internal/simnet"
	"fsr/internal/spp"
)

func runNDlogSPP(t *testing.T, in *spp.Instance, horizon time.Duration) (map[simnet.NodeID]*Node, simnet.RunResult) {
	t.Helper()
	conv, err := in.ToAlgebra()
	if err != nil {
		t.Fatalf("ToAlgebra(%s): %v", in.Name, err)
	}
	net := simnet.New(1, nil)
	nodes, err := BuildSPP(net, conv, simnet.DefaultLink(), 20*time.Millisecond, 15*time.Millisecond)
	if err != nil {
		t.Fatalf("BuildSPP(%s): %v", in.Name, err)
	}
	return nodes, net.Run(horizon)
}

// TestNDlogGoodGadget: the NDlog-interpreted GPV reaches the same stable
// selections as the native GPV on GOODGADGET.
func TestNDlogGoodGadget(t *testing.T) {
	nodes, res := runNDlogSPP(t, spp.GoodGadget(), 10*time.Second)
	if !res.Converged {
		t.Fatalf("NDlog GOODGADGET should converge")
	}
	path, sig, ok := nodes["1"].BestPath(SPPDest)
	if !ok {
		t.Fatalf("node 1 has no localOpt")
	}
	if sig != "r_13r3" {
		t.Errorf("node 1 selected signature %s, want r_13r3 (path %v)", sig, path)
	}
}

// TestNDlogBadGadgetOscillates: BADGADGET oscillates under the NDlog
// runtime too.
func TestNDlogBadGadgetOscillates(t *testing.T) {
	_, res := runNDlogSPP(t, spp.BadGadget(), 2*time.Second)
	if res.Converged {
		t.Fatalf("NDlog BADGADGET should not converge")
	}
}

// TestNDlogMatchesNative runs the NDlog-interpreted and native GPV on the
// same instances and compares the final selection at every node — the
// implementation-equivalence check backing the §V correctness argument
// (Theorem 5.1: the generated NDlog program computes the same signatures).
func TestNDlogMatchesNative(t *testing.T) {
	for _, mk := range []func() *spp.Instance{
		spp.GoodGadget,
		spp.Figure3IBGPFixed,
		func() *spp.Instance { return spp.ChainGadget(6) },
	} {
		in := mk()
		ndNodes, ndRes := runNDlogSPP(t, in, 20*time.Second)
		if !ndRes.Converged {
			t.Fatalf("%s: NDlog run did not converge", in.Name)
		}

		conv, err := mk().ToAlgebra()
		if err != nil {
			t.Fatalf("%s: ToAlgebra: %v", in.Name, err)
		}
		net := simnet.New(1, nil)
		natNodes, err := pathvector.BuildSPP(net, conv, simnet.DefaultLink(), pathvector.Config{
			BatchInterval: 20 * time.Millisecond,
			StartStagger:  15 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("%s: BuildSPP: %v", in.Name, err)
		}
		natRes := net.Run(20 * time.Second)
		if !natRes.Converged {
			t.Fatalf("%s: native run did not converge", in.Name)
		}

		for _, n := range in.Nodes {
			id := simnet.NodeID(n)
			natBest, natOK := natNodes[id].Best(pathvector.SPPDest)
			ndPath, ndSig, ndOK := ndNodes[id].BestPath(SPPDest)
			if natOK != ndOK {
				t.Errorf("%s node %s: native has route=%v, NDlog has route=%v", in.Name, n, natOK, ndOK)
				continue
			}
			if !natOK {
				continue
			}
			if got, want := ndSig, natBest.Sig.String(); got != want {
				t.Errorf("%s node %s: NDlog sig %s, native sig %s", in.Name, n, got, want)
			}
			if len(ndPath) != len(natBest.Path) {
				t.Errorf("%s node %s: NDlog path %v, native path %v", in.Name, n, ndPath, natBest.Path)
			}
		}
	}
}
