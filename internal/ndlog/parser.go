package ndlog

import (
	"strconv"
	"strings"
	"unicode"
)

// Parse reads a program in the paper's concrete NDlog syntax: materialize
// declarations, rules of the form `label head(args) :- body.`, with
// location specifiers (@Arg), assignments (X=expr), conditions
// (f(L,S)==true, also accepted with a single '=' as the paper writes them),
// and head aggregates (a_pref<S>). Function definitions (#def_func) are
// display-only and skipped; attach implementations via Funcs after parsing.
func Parse(name, src string) (*Program, error) {
	toks, err := lexNDlog(src)
	if err != nil {
		return nil, err
	}
	p := &ndParser{toks: toks}
	prog := &Program{Name: name}
	for !p.eof() {
		switch {
		case p.peekIs("materialize"):
			t, err := p.materialize()
			if err != nil {
				return nil, err
			}
			prog.Materialized = append(prog.Materialized, t)
		default:
			r, err := p.rule()
			if err != nil {
				return nil, err
			}
			prog.Rules = append(prog.Rules, r)
		}
	}
	return prog, nil
}

// MustParse is Parse for statically-known programs; it panics on error.
func MustParse(name, src string) *Program {
	p, err := Parse(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

type ndToken struct {
	kind string // ident, int, str, punct
	text string
	pos  int
}

func lexNDlog(src string) ([]ndToken, error) {
	var toks []ndToken
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '#': // #def_func blocks are display-only: skip the line
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case unicode.IsSpace(rune(c)):
			i++
		case c == '"':
			j := i + 1
			for j < len(src) && src[j] != '"' {
				j++
			}
			if j >= len(src) {
				return nil, Errf("unterminated string at offset %d", i)
			}
			toks = append(toks, ndToken{kind: "str", text: src[i+1 : j], pos: i})
			i = j + 1
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			toks = append(toks, ndToken{kind: "ident", text: src[i:j], pos: i})
			i = j
		case unicode.IsDigit(rune(c)):
			j := i
			for j < len(src) && unicode.IsDigit(rune(src[j])) {
				j++
			}
			toks = append(toks, ndToken{kind: "int", text: src[i:j], pos: i})
			i = j
		default:
			// Multi-character punctuation first.
			for _, op := range []string{":-", "==", "!=", "<=", ">=", ":="} {
				if strings.HasPrefix(src[i:], op) {
					toks = append(toks, ndToken{kind: "punct", text: op, pos: i})
					i += len(op)
					goto next
				}
			}
			if strings.ContainsRune("(),.@=<>", rune(c)) {
				toks = append(toks, ndToken{kind: "punct", text: string(c), pos: i})
				i++
				goto next
			}
			return nil, Errf("unexpected character %q at offset %d", c, i)
		next:
		}
	}
	return toks, nil
}

type ndParser struct {
	toks []ndToken
	pos  int
}

func (p *ndParser) eof() bool { return p.pos >= len(p.toks) }

func (p *ndParser) peek() ndToken {
	if p.eof() {
		return ndToken{}
	}
	return p.toks[p.pos]
}

func (p *ndParser) peekAt(off int) ndToken {
	if p.pos+off >= len(p.toks) {
		return ndToken{}
	}
	return p.toks[p.pos+off]
}

func (p *ndParser) peekIs(text string) bool { return p.peek().text == text }

func (p *ndParser) next() ndToken {
	t := p.peek()
	p.pos++
	return t
}

func (p *ndParser) expect(text string) error {
	if t := p.next(); t.text != text {
		return Errf("expected %q, got %q at offset %d", text, t.text, t.pos)
	}
	return nil
}

// materialize := "materialize" "(" name "," arity "," "keys" "(" ints ")" ")" "."
// The arity argument may be omitted (inferred later) and extra RapidNet
// lifetime arguments are tolerated and ignored.
func (p *ndParser) materialize() (TableDecl, error) {
	p.next() // materialize
	if err := p.expect("("); err != nil {
		return TableDecl{}, err
	}
	name := p.next()
	if name.kind != "ident" {
		return TableDecl{}, Errf("materialize: expected table name, got %q", name.text)
	}
	t := TableDecl{Name: name.text}
	for {
		tok := p.next()
		switch {
		case tok.text == ")":
			if err := p.expect("."); err != nil {
				return TableDecl{}, err
			}
			return t, nil
		case tok.text == ",":
			continue
		case tok.kind == "int":
			n, _ := strconv.Atoi(tok.text)
			t.Arity = n
		case tok.text == "keys":
			if err := p.expect("("); err != nil {
				return TableDecl{}, err
			}
			for {
				k := p.next()
				if k.kind == "int" {
					n, _ := strconv.Atoi(k.text)
					t.Keys = append(t.Keys, n-1) // concrete syntax is 1-based
				} else if k.text == "," {
					continue
				} else if k.text == ")" {
					break
				} else {
					return TableDecl{}, Errf("materialize keys: unexpected %q", k.text)
				}
			}
		case tok.text == "infinity":
			// RapidNet lifetime/size arguments: ignored.
		default:
			return TableDecl{}, Errf("materialize: unexpected %q", tok.text)
		}
	}
}

// rule := label atom ":-" body "."
func (p *ndParser) rule() (Rule, error) {
	label := p.next()
	if label.kind != "ident" {
		return Rule{}, Errf("expected rule label, got %q at offset %d", label.text, label.pos)
	}
	head, err := p.atom(true)
	if err != nil {
		return Rule{}, err
	}
	if err := p.expect(":-"); err != nil {
		return Rule{}, err
	}
	var body []BodyTerm
	for {
		term, err := p.bodyTerm()
		if err != nil {
			return Rule{}, err
		}
		body = append(body, term)
		tok := p.next()
		if tok.text == "." {
			break
		}
		if tok.text != "," {
			return Rule{}, Errf("expected ',' or '.', got %q at offset %d", tok.text, tok.pos)
		}
	}
	return Rule{Label: label.text, Head: head, Body: body}, nil
}

// atom parses pred(arg, …). In head position aggregates (a_pref<S>) are
// allowed as arguments.
func (p *ndParser) atom(head bool) (Atom, error) {
	name := p.next()
	if name.kind != "ident" {
		return Atom{}, Errf("expected predicate, got %q at offset %d", name.text, name.pos)
	}
	a := Atom{Pred: name.text, LocArg: -1}
	if err := p.expect("("); err != nil {
		return Atom{}, err
	}
	for {
		if p.peekIs(")") {
			p.next()
			return a, nil
		}
		if p.peekIs("@") {
			p.next()
			a.LocArg = len(a.Args)
		}
		// Head aggregate: ident '<' ident '>' followed by ',' or ')'.
		if head && p.peek().kind == "ident" && p.peekAt(1).text == "<" &&
			p.peekAt(2).kind == "ident" && p.peekAt(3).text == ">" {
			fn := p.next().text
			p.next() // <
			arg := p.next().text
			p.next() // >
			a.Args = append(a.Args, Agg{Fn: fn, Arg: arg})
		} else {
			e, err := p.exprCmp()
			if err != nil {
				return Atom{}, err
			}
			a.Args = append(a.Args, e)
		}
		if p.peekIs(",") {
			p.next()
		}
	}
}

// bodyTerm := Var "=" expr | atom | expr cmpOp expr | call "=" expr
func (p *ndParser) bodyTerm() (BodyTerm, error) {
	// Assignment: Var '=' … where Var has an upper-case initial.
	if t := p.peek(); t.kind == "ident" && isVarName(t.text) && p.peekAt(1).text == "=" {
		name := p.next().text
		p.next() // =
		e, err := p.exprCmp()
		if err != nil {
			return nil, err
		}
		return Assign{Var: name, Expr: e}, nil
	}
	// Predicate atom: ident '(' … with no trailing comparison.
	if t := p.peek(); t.kind == "ident" && p.peekAt(1).text == "(" {
		save := p.pos
		a, err := p.atom(false)
		if err == nil {
			switch p.peek().text {
			case "==", "!=", "<", "<=", ">", ">=", "=":
				p.pos = save // a comparison over a call, not an atom
			default:
				return a, nil
			}
		} else {
			p.pos = save
		}
	}
	e, err := p.exprCmp()
	if err != nil {
		return nil, err
	}
	return Cond{Expr: e}, nil
}

// exprCmp := expr [cmpOp expr]; a single '=' is accepted as '=='.
func (p *ndParser) exprCmp() (Expr, error) {
	l, err := p.exprPrimary()
	if err != nil {
		return nil, err
	}
	op := p.peek().text
	switch op {
	case "==", "!=", "<", "<=", ">", ">=":
		p.next()
	case "=":
		p.next()
		op = "=="
	default:
		return l, nil
	}
	r, err := p.exprPrimary()
	if err != nil {
		return nil, err
	}
	return Cmp{Op: op, L: l, R: r}, nil
}

func (p *ndParser) exprPrimary() (Expr, error) {
	t := p.next()
	switch {
	case t.kind == "int":
		n, _ := strconv.Atoi(t.text)
		return Int(n), nil
	case t.kind == "str":
		return Str(t.text), nil
	case t.kind == "ident" && t.text == "true":
		return Bool(true), nil
	case t.kind == "ident" && t.text == "false":
		return Bool(false), nil
	case t.kind == "ident" && p.peekIs("("):
		p.next() // (
		call := Call{Fn: t.text}
		for {
			if p.peekIs(")") {
				p.next()
				return call, nil
			}
			a, err := p.exprCmp()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, a)
			if p.peekIs(",") {
				p.next()
			}
		}
	case t.kind == "ident" && isVarName(t.text):
		return Var(t.text), nil
	case t.kind == "ident":
		return Str(t.text), nil // lower-case bare idents are constants
	default:
		return nil, Errf("unexpected token %q at offset %d", t.text, t.pos)
	}
}

// isVarName reports the NDlog convention: variables start upper-case.
func isVarName(s string) bool {
	return s != "" && unicode.IsUpper(rune(s[0]))
}
