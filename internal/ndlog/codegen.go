package ndlog

import (
	"fmt"
	"strings"

	"fsr/internal/algebra"
)

// This file implements §V-B: the automatic translation from routing algebra
// to an NDlog program. The output is the GPV program of §V-A together with
// the four policy functions of Table II:
//
//	⪯   → f_pref
//	⊕P  → f_concatSig
//	⊕I  → f_import
//	⊕E  → f_export
//
// Each function carries both a §V-C style display body and a compiled Go
// implementation closing over the algebra, which the engine executes. The
// paper's "phi" stands for the prohibited signature φ on the wire.

// PhiKey is the wire rendering of the prohibited signature φ.
const PhiKey = "phi"

// GPVSource is the generated path-vector mechanism, a faithful rendition of
// the §V-A GPV program adapted to the engine's keyed-table semantics:
//
//   - sig is keyed by (U, V, D) — a neighbor's new advertisement replaces
//     its previous one (BGP's implicit withdraw);
//   - prohibited results are stored as "phi" rather than suppressed, so a
//     filtered re-advertisement retracts the neighbor's candidate;
//   - gpvSelect aggregates valid candidates with a_pref;
//   - gpvSend re-advertises a changed selection through the export filter.
//
// Loop prevention (f_inPath) is applied at reception, as in BGP.
const GPVSource = `
materialize(label, 3, keys(1,2)).
materialize(sig, 5, keys(1,2,3)).
materialize(localOpt, 4, keys(1,2)).

gpvRecv sig(@U,V,D,SNew,PNew) :- msg(@U,V,D,S,P), label(@U,V,L),
	SNew=f_concatSigChecked(L,S,U,P), PNew=f_concatPath(U,P).
gpvSelect localOpt(@U,D,a_pref<SNew>,PNew) :- sig(@U,V,D,SNew,PNew),
	f_isValid(SNew)==true.
gpvSend msg(@N,U,D,S,P) :- localOpt(@U,D,S,P), label(@U,N,L),
	f_export(L,S)==true, f_inPath(N,P)==false.
`

// Generate translates a policy configuration (routing algebra) into a
// runnable NDlog program: the GPV mechanism plus the generated policy
// functions. The topology-dependent tuples of step 4 (label and initial
// sig rows) are produced separately by the engine's deployment
// configuration, mirroring the per-router configuration generation of the
// paper.
func Generate(alg algebra.Algebra) (*Program, error) {
	prog, err := Parse("gpv-"+alg.Name(), GPVSource)
	if err != nil {
		return nil, fmt.Errorf("ndlog: internal GPV source: %w", err)
	}
	codec := newKeyCodec(alg)
	prog.Funcs = append(prog.Funcs, policyFuncs(alg, codec)...)
	prog.Funcs = append(prog.Funcs, builtinFuncs()...)
	return prog, nil
}

// keyCodec converts between signatures and their wire renderings.
type keyCodec struct {
	alg   algebra.Algebra
	byKey map[string]algebra.Sig
}

func newKeyCodec(alg algebra.Algebra) *keyCodec {
	c := &keyCodec{alg: alg, byKey: map[string]algebra.Sig{}}
	for _, s := range alg.Sigs() {
		c.byKey[s.String()] = s
	}
	return c
}

func (c *keyCodec) decode(key string) (algebra.Sig, bool) {
	if key == PhiKey {
		return algebra.Prohibited, true
	}
	if s, ok := c.byKey[key]; ok {
		return s, true
	}
	// Closed-form numeric algebras render signatures as integers.
	if len(c.byKey) == 0 {
		var n int
		if _, err := fmt.Sscanf(key, "%d", &n); err == nil {
			return algebra.Num(n), true
		}
	}
	return nil, false
}

func encode(s algebra.Sig) string {
	if algebra.IsProhibited(s) {
		return PhiKey
	}
	return s.String()
}

// labelCodec: labels travel as their renderings too.
func (c *keyCodec) decodeLabel(key string) (algebra.Label, bool) {
	for _, l := range c.alg.Labels() {
		if l.String() == key {
			return l, true
		}
	}
	var n int
	if _, err := fmt.Sscanf(key, "%d", &n); err == nil {
		return algebra.LNum(n), true
	}
	return nil, false
}

// policyFuncs generates Table II's four functions (steps 1–3 of §V-B).
func policyFuncs(alg algebra.Algebra, codec *keyCodec) []FuncDef {
	argStr := func(args []Value, i int) (string, error) {
		s, ok := args[i].(string)
		if !ok {
			return "", Errf("argument %d: want string, got %T", i, args[i])
		}
		return s, nil
	}
	sigArg := func(args []Value, i int) (algebra.Sig, error) {
		key, err := argStr(args, i)
		if err != nil {
			return nil, err
		}
		s, ok := codec.decode(key)
		if !ok {
			return algebra.Prohibited, nil // unknown signatures are prohibited
		}
		return s, nil
	}
	labelArg := func(args []Value, i int) (algebra.Label, error) {
		key, err := argStr(args, i)
		if err != nil {
			return nil, err
		}
		l, ok := codec.decodeLabel(key)
		if !ok {
			return nil, Errf("unknown label %q", key)
		}
		return l, nil
	}

	fPref := FuncDef{
		Name:   "f_pref",
		Params: []string{"S1", "S2"},
		Text:   prefText(alg),
		Impl: func(args []Value) (Value, error) {
			s1, err := sigArg(args, 0)
			if err != nil {
				return nil, err
			}
			s2, err := sigArg(args, 1)
			if err != nil {
				return nil, err
			}
			return alg.Prefer(s1, s2) && !alg.Prefer(s2, s1), nil
		},
	}
	fConcat := FuncDef{
		Name:   "f_concatSig",
		Params: []string{"L", "S"},
		Text:   concatText(alg),
		Impl: func(args []Value) (Value, error) {
			l, err := labelArg(args, 0)
			if err != nil {
				return nil, err
			}
			s, err := sigArg(args, 1)
			if err != nil {
				return nil, err
			}
			return encode(alg.Concat(l, s)), nil
		},
	}
	fImport := FuncDef{
		Name:   "f_import",
		Params: []string{"L", "S"},
		Text:   filterText(alg, "f_import", alg.Import),
		Impl: func(args []Value) (Value, error) {
			l, err := labelArg(args, 0)
			if err != nil {
				return nil, err
			}
			s, err := sigArg(args, 1)
			if err != nil {
				return nil, err
			}
			if algebra.IsProhibited(s) {
				return false, nil
			}
			return alg.Import(l, s), nil
		},
	}
	fExport := FuncDef{
		Name:   "f_export",
		Params: []string{"L", "S"},
		Text:   filterText(alg, "f_export", alg.Export),
		Impl: func(args []Value) (Value, error) {
			l, err := labelArg(args, 0)
			if err != nil {
				return nil, err
			}
			s, err := sigArg(args, 1)
			if err != nil {
				return nil, err
			}
			if algebra.IsProhibited(s) {
				return false, nil
			}
			return alg.Export(l, s), nil
		},
	}
	// f_concatSigChecked composes import filtering, loop prevention and
	// signature generation into the single assignment gpvRecv uses; it
	// returns "phi" for every rejected case so a replaced advertisement
	// retracts the neighbor's previous candidate.
	fChecked := FuncDef{
		Name:   "f_concatSigChecked",
		Params: []string{"L", "S", "U", "P"},
		Impl: func(args []Value) (Value, error) {
			l, err := labelArg(args, 0)
			if err != nil {
				return nil, err
			}
			s, err := sigArg(args, 1)
			if err != nil {
				return nil, err
			}
			u, ok := args[2].(string)
			if !ok {
				return nil, Errf("f_concatSigChecked: U must be a string")
			}
			path, ok := args[3].(List)
			if !ok {
				return nil, Errf("f_concatSigChecked: P must be a list")
			}
			for _, hop := range path {
				if hop == u {
					return PhiKey, nil // loop
				}
			}
			if algebra.IsProhibited(s) {
				return PhiKey, nil
			}
			if !alg.Import(l, s) {
				return PhiKey, nil
			}
			return encode(alg.Concat(l, s)), nil
		},
	}
	// f_origin maps a link label to the origination-set signature (§V-B
	// step 4), used when constructing initial sig tuples.
	fOrigin := FuncDef{
		Name:   "f_origin",
		Params: []string{"L"},
		Impl: func(args []Value) (Value, error) {
			l, err := labelArg(args, 0)
			if err != nil {
				return nil, err
			}
			return encode(alg.Origin(l)), nil
		},
	}
	return []FuncDef{fPref, fConcat, fImport, fExport, fChecked, fOrigin}
}

// builtinFuncs are the mechanism-level helpers of the GPV program.
func builtinFuncs() []FuncDef {
	return []FuncDef{
		{
			Name:   "f_concatPath",
			Params: []string{"U", "P"},
			Impl: func(args []Value) (Value, error) {
				p, ok := args[1].(List)
				if !ok {
					return nil, Errf("f_concatPath: P must be a list")
				}
				out := make(List, 0, len(p)+1)
				out = append(out, args[0])
				out = append(out, p...)
				return out, nil
			},
		},
		{
			Name:   "f_head",
			Params: []string{"P"},
			Impl: func(args []Value) (Value, error) {
				p, ok := args[0].(List)
				if !ok || len(p) == 0 {
					return nil, Errf("f_head: want a nonempty list")
				}
				return p[0], nil
			},
		},
		{
			Name:   "f_last",
			Params: []string{"P"},
			Impl: func(args []Value) (Value, error) {
				p, ok := args[0].(List)
				if !ok || len(p) == 0 {
					return nil, Errf("f_last: want a nonempty list")
				}
				return p[len(p)-1], nil
			},
		},
		{
			Name:   "f_inPath",
			Params: []string{"N", "P"},
			Impl: func(args []Value) (Value, error) {
				p, ok := args[1].(List)
				if !ok {
					return nil, Errf("f_inPath: want a list")
				}
				for _, hop := range p {
					if hop == args[0] {
						return true, nil
					}
				}
				return false, nil
			},
		},
		{
			Name:   "f_isValid",
			Params: []string{"S"},
			Impl: func(args []Value) (Value, error) {
				return args[0] != PhiKey, nil
			},
		},
	}
}

// prefText renders f_pref the way §V-C prints it.
func prefText(alg algebra.Algebra) string {
	var b strings.Builder
	b.WriteString("#def_func f_pref(S1,S2) {\n")
	prefs := algebra.Preferences(alg)
	if len(prefs) == 0 {
		b.WriteString("  return S1 <= S2\n")
	}
	for _, p := range prefs {
		if p.Equal {
			continue
		}
		fmt.Fprintf(&b, "  if (S1=='%s' && S2=='%s') return true\n", p.A, p.B)
	}
	if len(prefs) > 0 {
		b.WriteString("  return false\n")
	}
	b.WriteString("}")
	return b.String()
}

// concatText renders f_concatSig the way §V-C prints it.
func concatText(alg algebra.Algebra) string {
	var b strings.Builder
	b.WriteString("#def_func f_concatSig(L,S) {\n")
	if alg.Sigs() == nil {
		b.WriteString("  return L+S\n}")
		return b.String()
	}
	for _, l := range alg.Labels() {
		for _, s := range alg.Sigs() {
			out := alg.Concat(l, s)
			if algebra.IsProhibited(out) {
				continue
			}
			fmt.Fprintf(&b, "  if (L=='%s') && (S=='%s') return '%s'\n", l, s, out)
		}
	}
	b.WriteString("  return 'phi'\n}")
	return b.String()
}

// filterText renders f_import / f_export the way §V-C prints them: only the
// filtered (false) cases are listed, with a default of true.
func filterText(alg algebra.Algebra, name string, allow func(algebra.Label, algebra.Sig) bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "#def_func %s(L,S) {\n", name)
	for _, l := range alg.Labels() {
		for _, s := range alg.Sigs() {
			if !allow(l, s) {
				fmt.Fprintf(&b, "  if (L=='%s' && S=='%s') return false\n", l, s)
			}
		}
	}
	b.WriteString("  return true\n}")
	return b.String()
}
