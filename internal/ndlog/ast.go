// Package ndlog implements the Network Datalog (NDlog) layer of FSR (§V of
// the paper): the language AST, a parser and pretty-printer for the
// concrete syntax the paper uses, and the automatic translation from
// routing algebra to an executable NDlog program (the GPV program plus the
// four policy functions of Table II: f_pref, f_concatSig, f_import,
// f_export). The engine package executes these programs over simnet,
// substituting for the RapidNet declarative networking engine.
package ndlog

import "fmt"

// Value is a runtime value flowing through NDlog tuples: string, int, bool
// or List (paths). Signatures travel in their rendered (string) form.
type Value any

// List is an NDlog list value (paths of node identifiers).
type List []Value

// Equal compares two values structurally.
func Equal(a, b Value) bool {
	la, oka := a.(List)
	lb, okb := b.(List)
	if oka != okb {
		return false
	}
	if oka {
		if len(la) != len(lb) {
			return false
		}
		for i := range la {
			if !Equal(la[i], lb[i]) {
				return false
			}
		}
		return true
	}
	return a == b
}

// Program is a parsed or generated NDlog program.
type Program struct {
	// Name identifies the program (e.g. "gpv-gao-rexford-a").
	Name string
	// Materialized declares the keyed tables (RapidNet's materialize()).
	Materialized []TableDecl
	// Rules are the derivation rules in source order.
	Rules []Rule
	// Funcs are the policy functions referenced by the rules. Generated
	// programs carry both display text and a compiled Go implementation.
	Funcs []FuncDef
}

// Func returns the function definition by name.
func (p *Program) Func(name string) (FuncDef, bool) {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f, true
		}
	}
	return FuncDef{}, false
}

// Table returns the table declaration for a predicate.
func (p *Program) Table(pred string) (TableDecl, bool) {
	for _, t := range p.Materialized {
		if t.Name == pred {
			return t, true
		}
	}
	return TableDecl{}, false
}

// TableDecl declares a materialized table. Keys index the primary-key
// argument positions (0-based); inserting a row with an existing key
// replaces the old row (RapidNet's materialized-table semantics, which give
// BGP's implicit withdraw when routes are keyed by neighbor).
type TableDecl struct {
	Name  string
	Arity int
	Keys  []int
}

// Rule is one NDlog rule: Head :- Body.
type Rule struct {
	// Label is the rule name (gpvRecv, gpvSelect, …).
	Label string
	Head  Atom
	Body  []BodyTerm
}

// Atom is a predicate application. LocArg is the index of the argument
// carrying the location specifier '@' (NDlog stores and routes tuples by
// it); -1 means none.
type Atom struct {
	Pred   string
	LocArg int
	Args   []Expr
}

// BodyTerm is an element of a rule body: a predicate to join (Atom), an
// assignment (X := expr), or a boolean condition.
type BodyTerm interface{ bodyTerm() }

func (Atom) bodyTerm()   {}
func (Assign) bodyTerm() {}
func (Cond) bodyTerm()   {}

// Assign binds a fresh variable to an expression value.
type Assign struct {
	Var  string
	Expr Expr
}

// Cond is a boolean guard; the rule fires only when it evaluates to true.
type Cond struct {
	Expr Expr
}

// Expr is an NDlog expression.
type Expr interface{ expr() }

// Var references a bound variable (upper-case initial in concrete syntax).
type Var string

// Str is a string constant (lower-case or quoted in concrete syntax).
type Str string

// Int is an integer constant.
type Int int

// Bool is a boolean constant.
type Bool bool

// Call applies a function (f_… built-ins or generated policy functions).
type Call struct {
	Fn   string
	Args []Expr
}

// Cmp compares two expressions: ==, !=, <, <=, >, >=.
type Cmp struct {
	Op   string
	L, R Expr
}

// Agg marks an aggregate head argument, e.g. a_pref<S>: the head groups by
// the remaining arguments and keeps the row whose S is optimal under the
// aggregate's comparator.
type Agg struct {
	Fn  string
	Arg string
}

func (Var) expr()  {}
func (Str) expr()  {}
func (Int) expr()  {}
func (Bool) expr() {}
func (Call) expr() {}
func (Cmp) expr()  {}
func (Agg) expr()  {}

// FuncDef is a policy or built-in function: Impl is what the engine calls;
// Text is the §V-C style display form (may be empty for built-ins).
type FuncDef struct {
	Name   string
	Params []string
	Text   string
	Impl   func(args []Value) (Value, error)
}

// AggDef is an aggregate comparator: Better reports whether row a should
// replace row b as the group representative. Rows are full body rows
// projected to the head arguments.
type AggDef struct {
	Name   string
	Better func(a, b []Value) bool
}

// Errf formats evaluation errors with a consistent prefix.
func Errf(format string, args ...any) error {
	return fmt.Errorf("ndlog: "+format, args...)
}
