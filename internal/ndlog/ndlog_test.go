package ndlog

import (
	"strings"
	"testing"

	"fsr/internal/algebra"
)

// TestParseGPVPaperListing: the paper's §V-A GPV program parses.
func TestParseGPVPaperListing(t *testing.T) {
	src := `
//GPV program
gpvRecv sig(@U,SNew,PNew) :- msg(@U,V,D,S,P),
	PNew=f_concatPath(U,P), V=f_head(P),
	SNew=f_concatSig(L,S), label(@U,V,L),
	f_import(L,S)=true.
gpvStore route(@U,D,S,P) :- sig(@U,S,P), D=f_last(P).
gpvSelect localOpt(@U,D,a_pref<S>,P) :- route(@U,D,S,P).
gpvSend msg(@N,U,D,S,P) :- localOpt(@U,D,S,P),
	label(@U,N,L), f_export(L,S)=true.
`
	prog, err := Parse("gpv-paper", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(prog.Rules) != 4 {
		t.Fatalf("want 4 rules, got %d", len(prog.Rules))
	}
	labels := []string{"gpvRecv", "gpvStore", "gpvSelect", "gpvSend"}
	for i, r := range prog.Rules {
		if r.Label != labels[i] {
			t.Errorf("rule %d label %s, want %s", i, r.Label, labels[i])
		}
	}
	// gpvSelect carries the aggregate.
	sel := prog.Rules[2]
	foundAgg := false
	for _, a := range sel.Head.Args {
		if agg, ok := a.(Agg); ok {
			foundAgg = true
			if agg.Fn != "a_pref" || agg.Arg != "S" {
				t.Errorf("aggregate parsed as %+v", agg)
			}
		}
	}
	if !foundAgg {
		t.Errorf("gpvSelect should parse a_pref<S>")
	}
	// Location specifiers.
	if prog.Rules[0].Head.LocArg != 0 {
		t.Errorf("gpvRecv head location should be arg 0")
	}
	if prog.Rules[3].Head.LocArg != 0 {
		t.Errorf("gpvSend head location should be arg 0 (@N)")
	}
}

// TestParsePrintRoundTrip: printing a parsed program and re-parsing yields
// the same structure.
func TestParsePrintRoundTrip(t *testing.T) {
	prog := MustParse("t", GPVSource)
	text := prog.String()
	again, err := Parse("t", text)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, text)
	}
	if len(again.Rules) != len(prog.Rules) || len(again.Materialized) != len(prog.Materialized) {
		t.Fatalf("round trip changed the program: %d/%d rules, %d/%d tables",
			len(again.Rules), len(prog.Rules), len(again.Materialized), len(prog.Materialized))
	}
	for i := range prog.Rules {
		if prog.Rules[i].String() != again.Rules[i].String() {
			t.Errorf("rule %d changed:\n%s\n%s", i, prog.Rules[i], again.Rules[i])
		}
	}
}

// TestParseMaterialize: key positions are converted from 1-based syntax.
func TestParseMaterialize(t *testing.T) {
	prog := MustParse("t", "materialize(sig, 5, keys(1,2,3)).\nr x(@A,B) :- y(@A,B).")
	d, ok := prog.Table("sig")
	if !ok {
		t.Fatalf("missing table decl")
	}
	if d.Arity != 5 || len(d.Keys) != 3 || d.Keys[0] != 0 || d.Keys[2] != 2 {
		t.Errorf("decl parsed as %+v", d)
	}
}

// TestParseErrors: malformed programs produce errors.
func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"r x(@A :- y(@A).",              // unbalanced
		"x(@A) :- y(@A).x",              // missing rule label? actually first token is label 'x' then atom '(@A)' fails
		"r x(@A) :- .",                  // empty body
		"materialize(sig, 1, keys(x)).", // bad key
	} {
		if _, err := Parse("t", src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

// TestTableII: the generated program carries all four policy functions of
// Table II, implemented and rendered.
func TestTableII(t *testing.T) {
	prog, err := Generate(algebra.GaoRexfordA())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	for _, name := range []string{"f_pref", "f_concatSig", "f_import", "f_export"} {
		def, ok := prog.Func(name)
		if !ok {
			t.Fatalf("generated program lacks %s", name)
		}
		if def.Impl == nil {
			t.Errorf("%s has no implementation", name)
		}
		if def.Text == "" {
			t.Errorf("%s has no display text", name)
		}
	}
}

// TestGeneratedFuncSemantics: the generated functions implement the algebra
// (the assumptions (Property B) of the paper's Theorem 5.1 proof).
func TestGeneratedFuncSemantics(t *testing.T) {
	alg := algebra.GaoRexfordA()
	prog, err := Generate(alg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	call := func(fn string, args ...Value) Value {
		def, ok := prog.Func(fn)
		if !ok {
			t.Fatalf("missing %s", fn)
		}
		v, err := def.Impl(args)
		if err != nil {
			t.Fatalf("%s: %v", fn, err)
		}
		return v
	}
	// f_concatSig implements ⊕P.
	for _, l := range alg.Labels() {
		for _, s := range alg.Sigs() {
			want := alg.Concat(l, s).String()
			if algebra.IsProhibited(alg.Concat(l, s)) {
				want = PhiKey
			}
			if got := call("f_concatSig", l.String(), s.String()); got != want {
				t.Errorf("f_concatSig(%s,%s) = %v, want %v", l, s, got, want)
			}
			// f_export implements ⊕E; f_import implements ⊕I.
			if got := call("f_export", l.String(), s.String()); got != alg.Export(l, s) {
				t.Errorf("f_export(%s,%s) = %v, want %v", l, s, got, alg.Export(l, s))
			}
			if got := call("f_import", l.String(), s.String()); got != alg.Import(l, s) {
				t.Errorf("f_import(%s,%s) = %v, want %v", l, s, got, alg.Import(l, s))
			}
		}
	}
	// f_pref implements strict preference.
	if got := call("f_pref", "C", "P"); got != true {
		t.Errorf("f_pref(C,P) = %v, want true", got)
	}
	if got := call("f_pref", "P", "R"); got != false {
		t.Errorf("f_pref(P,R) = %v (P and R are equally preferred)", got)
	}
	// Unknown signatures are prohibited, never errors.
	if got := call("f_concatSig", "c", "bogus"); got != PhiKey {
		t.Errorf("unknown signature should concat to phi, got %v", got)
	}
}

// TestGeneratedTextMatchesPaperShape: the §V-C function listings appear.
func TestGeneratedTextMatchesPaperShape(t *testing.T) {
	prog, err := Generate(algebra.GaoRexfordA())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	text := prog.String()
	for _, want := range []string{
		"#def_func f_concatSig(L,S)",
		"if (L=='c') && (S=='C') return 'C'",
		"#def_func f_export(L,S)",
		"return true",
		"gpvRecv",
		"gpvSend",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("generated program missing %q", want)
		}
	}
}

// TestGenerateHopCount: closed-form algebras generate the L+S form.
func TestGenerateHopCount(t *testing.T) {
	prog, err := Generate(algebra.HopCount{})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	def, _ := prog.Func("f_concatSig")
	if !strings.Contains(def.Text, "return L+S") {
		t.Errorf("hop-count concat should render as L+S:\n%s", def.Text)
	}
	v, err := def.Impl([]Value{"1", "3"})
	if err != nil || v != "4" {
		t.Errorf("f_concatSig(1,3) = %v, %v; want \"4\"", v, err)
	}
}

// TestBuiltinListOps covers the mechanism helpers.
func TestBuiltinListOps(t *testing.T) {
	prog, _ := Generate(algebra.GaoRexfordA())
	get := func(n string) FuncDef { d, _ := prog.Func(n); return d }
	v, err := get("f_concatPath").Impl([]Value{"u", List{"v", "d"}})
	if err != nil || len(v.(List)) != 3 || v.(List)[0] != "u" {
		t.Errorf("f_concatPath = %v, %v", v, err)
	}
	if v, _ := get("f_head").Impl([]Value{List{"v", "d"}}); v != "v" {
		t.Errorf("f_head = %v", v)
	}
	if v, _ := get("f_last").Impl([]Value{List{"v", "d"}}); v != "d" {
		t.Errorf("f_last = %v", v)
	}
	if v, _ := get("f_inPath").Impl([]Value{"d", List{"v", "d"}}); v != true {
		t.Errorf("f_inPath = %v", v)
	}
	if v, _ := get("f_isValid").Impl([]Value{PhiKey}); v != false {
		t.Errorf("f_isValid(phi) = %v", v)
	}
}

// TestValueEqual covers structural equality of lists.
func TestValueEqual(t *testing.T) {
	if !Equal(List{"a", "b"}, List{"a", "b"}) {
		t.Errorf("equal lists")
	}
	if Equal(List{"a"}, List{"a", "b"}) || Equal(List{"a"}, "a") {
		t.Errorf("unequal shapes must differ")
	}
	if !Equal(3, 3) || Equal(3, "3") {
		t.Errorf("scalar equality")
	}
}
