package ndlog

import (
	"fmt"
	"strings"
)

// This file renders programs in the paper's concrete syntax (§V-A), so the
// generated GPV program can be displayed, diffed against the listings, and
// re-parsed.

// String renders the whole program: materialize declarations, rules, then
// function definitions.
func (p *Program) String() string {
	var b strings.Builder
	if p.Name != "" {
		fmt.Fprintf(&b, "//%s program\n", p.Name)
	}
	for _, t := range p.Materialized {
		keys := make([]string, len(t.Keys))
		for i, k := range t.Keys {
			keys[i] = fmt.Sprintf("%d", k+1) // concrete syntax is 1-based
		}
		fmt.Fprintf(&b, "materialize(%s, %d, keys(%s)).\n", t.Name, t.Arity, strings.Join(keys, ","))
	}
	if len(p.Materialized) > 0 {
		b.WriteByte('\n')
	}
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	for _, f := range p.Funcs {
		if f.Text == "" {
			continue
		}
		b.WriteByte('\n')
		b.WriteString(f.Text)
		b.WriteByte('\n')
	}
	return b.String()
}

// String renders one rule.
func (r Rule) String() string {
	parts := make([]string, len(r.Body))
	for i, t := range r.Body {
		parts[i] = bodyTermString(t)
	}
	return fmt.Sprintf("%s %s :- %s.", r.Label, r.Head.String(), strings.Join(parts, ", "))
}

func bodyTermString(t BodyTerm) string {
	switch v := t.(type) {
	case Atom:
		return v.String()
	case Assign:
		return v.Var + "=" + ExprString(v.Expr)
	case Cond:
		return ExprString(v.Expr)
	default:
		return fmt.Sprintf("?%T", t)
	}
}

// String renders an atom with its location specifier.
func (a Atom) String() string {
	args := make([]string, len(a.Args))
	for i, e := range a.Args {
		s := ExprString(e)
		if i == a.LocArg {
			s = "@" + s
		}
		args[i] = s
	}
	return fmt.Sprintf("%s(%s)", a.Pred, strings.Join(args, ","))
}

// ExprString renders an expression in concrete syntax.
func ExprString(e Expr) string {
	switch v := e.(type) {
	case Var:
		return string(v)
	case Str:
		return fmt.Sprintf("%q", string(v))
	case Int:
		return fmt.Sprintf("%d", int(v))
	case Bool:
		if v {
			return "true"
		}
		return "false"
	case Call:
		args := make([]string, len(v.Args))
		for i, a := range v.Args {
			args[i] = ExprString(a)
		}
		return fmt.Sprintf("%s(%s)", v.Fn, strings.Join(args, ","))
	case Cmp:
		return fmt.Sprintf("%s%s%s", ExprString(v.L), v.Op, ExprString(v.R))
	case Agg:
		return fmt.Sprintf("%s<%s>", v.Fn, v.Arg)
	default:
		return fmt.Sprintf("?%T", e)
	}
}
