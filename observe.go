package fsr

import (
	"context"
	"net/http"
	"time"

	"fsr/internal/obs"
	"fsr/internal/server"
)

// Observability surface: the process-global metrics registry and the
// context-propagated span tracer, re-exported so embedders and cmd/fsr can
// wire them without importing internal packages.
//
// Every pipeline stage records into the same default registry — solver
// probe/relaxation/core-minimization counts, delta splices vs full
// rebuilds, analysis constraint counts and per-stage latency histograms,
// simulator event throughput and arena high-water marks, campaign
// per-outcome totals. MetricsHandler serves them all in Prometheus text
// exposition format. Tracing is opt-in per context: with no tracer
// attached, StartSpan is a no-op that allocates nothing.

// Tracer records spans into per-track buffers and exports them as Chrome
// trace-event JSON (load the file in Perfetto or chrome://tracing).
type Tracer = obs.Tracer

// Span is one timed region of a trace; methods on a nil Span are no-ops.
type Span = obs.Span

// NewTracer returns an empty tracer ready to attach to a context.
func NewTracer() *Tracer { return obs.NewTracer() }

// WithTracer attaches a tracer to the context; every pipeline stage under
// that context records spans into it. A nil tracer leaves the context
// untouched (tracing stays disabled).
func WithTracer(ctx context.Context, tr *Tracer) context.Context {
	return obs.WithTracer(ctx, tr)
}

// StartSpan opens a span on the context's tracer (a child of the current
// span, if any). With no tracer attached it returns the context unchanged
// and a nil span whose methods are free no-ops.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return obs.StartSpan(ctx, name)
}

// MetricsHandler serves the process-global metrics registry in Prometheus
// text exposition format. Mount it wherever the embedding process serves
// HTTP; cmd/fsr mounts it at /metrics when -metrics-addr is given.
func MetricsHandler() http.Handler { return obs.Default().Handler() }

// MountPprof registers the net/http/pprof handlers under /debug/pprof/ on
// the mux. Profiles expose heap contents and timing side channels, so
// mount only on trusted listeners.
func MountPprof(mux *http.ServeMux) { server.MountPprof(mux) }

// obsFlight gives the facade access to the process-global flight recorder
// without exporting the obs type directly.
func obsFlight() *obs.FlightRecorder { return obs.Flight() }

// EnableFlightRecorder turns the process-global flight recorder on or off.
// On, every Session.Analyze/AnalyzeSPP call, daemon verification, and
// campaign scenario lands in a bounded ring of recent operations (with
// drained solver counters), and operations beyond the slow-op threshold
// retain their full span tree — served at GET /v1/flightrecorder by the
// daemon and the campaign metrics listener. Off (the default), the
// instrumented paths pay one atomic load.
func EnableFlightRecorder(on bool) { obs.Flight().Enable(on) }

// SetSlowOpThreshold sets the latency beyond which a recorded operation's
// span tree is retained. Non-positive restores the default (100ms).
func SetSlowOpThreshold(d time.Duration) { obs.Flight().SetSlowThreshold(d) }

// FlightRecorderHandler serves the flight recorder's snapshot as JSON —
// the GET /v1/flightrecorder payload, for embedders mounting their own
// mux.
func FlightRecorderHandler() http.Handler { return obs.Flight().Handler() }

// MountDiagnostics mounts the full diagnosis surface on mux —
// GET /v1/timeseries (retained metric samples), GET /v1/flightrecorder,
// and GET /dashboard (live HTML dashboard) — and starts a sampler over the
// process-global registry. The returned stop function halts the sampler;
// the handlers keep serving the retained window. Interval/window ≤ 0 get
// the defaults (2s, 5m).
func MountDiagnostics(mux *http.ServeMux, interval, window time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	if window <= 0 {
		window = 5 * time.Minute
	}
	return obs.MountDiagnostics(mux, interval, window)
}
