package fsr

import (
	"context"
	"os"
	"reflect"
	"runtime"
	"testing"
	"time"

	"fsr/internal/analysis"
	"fsr/internal/scenario"
	"fsr/internal/smt"
	"fsr/internal/spp"
	"fsr/internal/topology"
)

// TestSessionScalePath: above the node threshold AnalyzeSPP silently
// switches to the sharded/SCC fast path; the session-level contract is
// that nothing observable changes. Checked on a sat power-law instance
// and on the same instance with an injected dispute (unsat, exercising
// the provenance fallback and the suspect set).
func TestSessionScalePath(t *testing.T) {
	ctx := context.Background()
	g := topology.GenerateInternet(3, topology.InternetParams{N: 700})
	instances := []*spp.Instance{scenario.InternetSPP("scale-sat", g, 3)}
	unsafe := scenario.InternetSPP("scale-unsat", g, 3)
	e := g.Edges[0]
	unsafe.Rank(spp.Node(e.A), spp.Path{spp.Node(e.A), spp.Node(e.B), "rx_b"}, spp.Path{spp.Node(e.A), "rx_a"})
	unsafe.Rank(spp.Node(e.B), spp.Path{spp.Node(e.B), spp.Node(e.A), "rx_a"}, spp.Path{spp.Node(e.B), "rx_b"})
	unsafe.AddOrigin("rx_a")
	unsafe.AddOrigin("rx_b")
	instances = append(instances, unsafe)

	for _, in := range instances {
		if len(in.Nodes) < scaleThreshold {
			t.Fatalf("%s: test instance below scale threshold", in.Name)
		}
		conv, err := in.ToAlgebra()
		if err != nil {
			t.Fatal(err)
		}
		want, err := analysis.CheckWith(ctx, conv.Algebra, analysis.StrictMonotonicity, smt.Native{})
		if err != nil {
			t.Fatal(err)
		}
		wantSuspects := conv.SuspectNodes(want.Core)

		got, suspects, err := NewSession().AnalyzeSPP(ctx, in)
		if err != nil {
			t.Fatal(err)
		}
		if got.Sat != want.Sat || !reflect.DeepEqual(got.Model, want.Model) || !reflect.DeepEqual(got.Core, want.Core) {
			t.Fatalf("%s: scale path diverges from classic (sat %v vs %v)", in.Name, got.Sat, want.Sat)
		}
		if !reflect.DeepEqual(suspects, wantSuspects) {
			t.Fatalf("%s: suspects %v, classic %v", in.Name, suspects, wantSuspects)
		}
		if want.Sat && got.Stats.Components == 0 {
			t.Fatalf("%s: fast path not taken (no condensation stats)", in.Name)
		}
	}
}

// TestScaleEligibility: solver backends whose semantics the scale path
// does not reproduce must keep the classic pipeline.
func TestScaleEligibility(t *testing.T) {
	for _, tc := range []struct {
		solver smt.Solver
		want   bool
	}{
		{smt.Native{}, true},
		{smt.Decomposed{}, true},
		{smt.Native{NoMinimize: true}, false},
		{smt.YicesText{}, false},
	} {
		if got := scaleEligible(tc.solver); got != tc.want {
			t.Errorf("scaleEligible(%s) = %v, want %v", tc.solver.Name(), got, tc.want)
		}
	}
}

// TestAnalyzeAllParallelSpeedup asserts the batch fan-out actually scales:
// parallelism=4 must beat serial by >1.5× on the constraint-generation-
// bound batch. Timing-sensitive, so it only runs when FSR_SPEEDUP_TEST is
// set (the CI bench job exports it on a multi-core runner); plain test
// runs and single-core hosts skip.
func TestAnalyzeAllParallelSpeedup(t *testing.T) {
	if os.Getenv("FSR_SPEEDUP_TEST") == "" {
		t.Skip("set FSR_SPEEDUP_TEST=1 to run the timing assertion")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("needs ≥4 CPUs, have %d", runtime.GOMAXPROCS(0))
	}
	ctx := context.Background()
	batch := analyzeAllBatch(t)
	measure := func(par int) time.Duration {
		sess := NewSession(WithParallelism(par))
		best := time.Duration(0)
		for i := 0; i < 3; i++ {
			start := time.Now()
			if _, err := sess.AnalyzeAll(ctx, batch...); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		return best
	}
	measure(1) // warm caches and pools
	serial := measure(1)
	par := measure(4)
	speedup := float64(serial) / float64(par)
	t.Logf("AnalyzeAll batch: serial %v, parallelism=4 %v, speedup %.2fx", serial, par, speedup)
	if speedup < 1.5 {
		t.Fatalf("parallel fan-out speedup %.2fx < 1.5x (serial %v, parallel %v)", speedup, serial, par)
	}
}
