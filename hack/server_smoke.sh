#!/usr/bin/env bash
# End-to-end smoke for `fsr serve`: start the daemon with the differential
# oracle on, load the Figure 3 gadget, drive the README's repair session
# over HTTP, and assert from /metrics that delta re-verification actually
# ran (fsr_delta_solves_total > 0) with zero oracle mismatches.
# Usage: hack/server_smoke.sh [port]
set -euo pipefail
cd "$(dirname "$0")/.."

addr="127.0.0.1:${1:-8091}"
base="http://$addr"
bin="$(mktemp -d)/fsr"
go build -o "$bin" ./cmd/fsr

"$bin" serve -addr "$addr" -check-oracle -pprof -quiet &
pid=$!
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$(dirname "$bin")"' EXIT

for _ in $(seq 1 50); do
    curl -fsS "$base/healthz" >/dev/null 2>&1 && break
    sleep 0.1
done
curl -fsS "$base/healthz" | grep -q '"ok":true'

# Load fig3 and confirm the resident verdict: unsafe, reflectors suspected.
curl -fsS -X POST "$base/v1/instances" -d '{"id":"smoke","gadget":"fig3"}' \
    | grep -q '"nodes":6'
curl -fsS -X POST "$base/v1/instances/smoke/verify" | grep -q '"safe":false'

# The paper's repair: prefer the direct routes on a, b, c → safe.
curl -fsS -X POST "$base/v1/instances/smoke/whatif" -d '{
  "ops": [
    {"op":"rerank","node":"a","paths":["a,d,r1","a,b,e,r2"]},
    {"op":"rerank","node":"b","paths":["b,e,r2","b,c,f,r3"]},
    {"op":"rerank","node":"c","paths":["c,f,r3","c,a,d,r1"]}
  ]}' | grep -q '"safe":true'

# A sat-to-sat edit is discharged by the delta path, not a rebuild.
curl -fsS -X POST "$base/v1/instances/smoke/whatif" -d '{
  "ops": [{"op":"rerank","node":"a","paths":["a,d,r1"]}]
}' | grep -q '"mode":"delta"'

metrics="$(curl -fsS "$base/metrics")"
delta="$(echo "$metrics" | awk '$1 == "fsr_delta_solves_total" {print $2}')"
mismatch="$(echo "$metrics" | awk '$1 == "fsr_oracle_mismatches_total" {print $2}')"
resident="$(echo "$metrics" | awk '$1 == "fsr_instances_resident" {print $2}')"
probes="$(echo "$metrics" | awk '$1 == "fsr_smt_probes_total" {print $2}')"

[ "${delta:-0}" -gt 0 ] || { echo "FAIL: fsr_delta_solves_total=$delta, want > 0" >&2; exit 1; }
[ "${mismatch:-1}" -eq 0 ] || { echo "FAIL: fsr_oracle_mismatches_total=$mismatch" >&2; exit 1; }
[ "${resident:-0}" -eq 1 ] || { echo "FAIL: fsr_instances_resident=$resident, want 1" >&2; exit 1; }
# The shared obs registry rides along on the daemon's /metrics: the solver
# introspection counters must have moved during the verifications above.
[ "${probes:-0}" -gt 0 ] || { echo "FAIL: fsr_smt_probes_total=$probes, want > 0" >&2; exit 1; }

# -pprof mounts the Go profiling endpoints on the same listener.
curl -fsS "$base/debug/pprof/cmdline" >/dev/null \
    || { echo "FAIL: /debug/pprof/cmdline not served with -pprof" >&2; exit 1; }

echo "server smoke OK: delta_solves=$delta oracle_mismatches=$mismatch smt_probes=$probes"
