#!/usr/bin/env bash
# End-to-end smoke for `fsr serve`: start the daemon with the differential
# oracle on, load the Figure 3 gadget, drive the README's repair session
# over HTTP, and assert from /metrics that delta re-verification actually
# ran (fsr_delta_solves_total > 0) with zero oracle mismatches. Then the
# diagnosis surface: an internet-scale POST /v1/analyze must move the
# condensation counters, the dashboard and flight recorder must serve, a
# slow op must be retrievable with its span tree, fsr top must render a
# frame, and the daemon's stderr must be parseable slog JSON.
# Usage: hack/server_smoke.sh [port]
set -euo pipefail
cd "$(dirname "$0")/.."

addr="127.0.0.1:${1:-8091}"
base="http://$addr"
tmpdir="$(mktemp -d)"
bin="$tmpdir/fsr"
servelog="$tmpdir/serve.log"
go build -o "$bin" ./cmd/fsr

# -slow-op 1ms guarantees the internet-scale analyze below crosses the
# slow threshold, so its span tree lands in the flight recorder.
"$bin" serve -addr "$addr" -check-oracle -pprof -log-format json -slow-op 1ms \
    2>"$servelog" &
pid=$!
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$tmpdir"' EXIT

for _ in $(seq 1 50); do
    curl -fsS "$base/healthz" >/dev/null 2>&1 && break
    sleep 0.1
done
curl -fsS "$base/healthz" | grep -q '"ok":true'

# Load fig3 and confirm the resident verdict: unsafe, reflectors suspected.
curl -fsS -X POST "$base/v1/instances" -d '{"id":"smoke","gadget":"fig3"}' \
    | grep -q '"nodes":6'
curl -fsS -X POST "$base/v1/instances/smoke/verify" | grep -q '"safe":false'

# The paper's repair: prefer the direct routes on a, b, c → safe.
curl -fsS -X POST "$base/v1/instances/smoke/whatif" -d '{
  "ops": [
    {"op":"rerank","node":"a","paths":["a,d,r1","a,b,e,r2"]},
    {"op":"rerank","node":"b","paths":["b,e,r2","b,c,f,r3"]},
    {"op":"rerank","node":"c","paths":["c,f,r3","c,a,d,r1"]}
  ]}' | grep -q '"safe":true'

# A sat-to-sat edit is discharged by the delta path, not a rebuild.
curl -fsS -X POST "$base/v1/instances/smoke/whatif" -d '{
  "ops": [{"op":"rerank","node":"a","paths":["a,d,r1"]}]
}' | grep -q '"mode":"delta"'

metrics="$(curl -fsS "$base/metrics")"
delta="$(echo "$metrics" | awk '$1 == "fsr_delta_solves_total" {print $2}')"
mismatch="$(echo "$metrics" | awk '$1 == "fsr_oracle_mismatches_total" {print $2}')"
resident="$(echo "$metrics" | awk '$1 == "fsr_instances_resident" {print $2}')"
probes="$(echo "$metrics" | awk '$1 == "fsr_smt_probes_total" {print $2}')"

[ "${delta:-0}" -gt 0 ] || { echo "FAIL: fsr_delta_solves_total=$delta, want > 0" >&2; exit 1; }
[ "${mismatch:-1}" -eq 0 ] || { echo "FAIL: fsr_oracle_mismatches_total=$mismatch" >&2; exit 1; }
[ "${resident:-0}" -eq 1 ] || { echo "FAIL: fsr_instances_resident=$resident, want 1" >&2; exit 1; }
# The shared obs registry rides along on the daemon's /metrics: the solver
# introspection counters must have moved during the verifications above.
[ "${probes:-0}" -gt 0 ] || { echo "FAIL: fsr_smt_probes_total=$probes, want > 0" >&2; exit 1; }

# -pprof mounts the Go profiling endpoints on the same listener.
curl -fsS "$base/debug/pprof/cmdline" >/dev/null \
    || { echo "FAIL: /debug/pprof/cmdline not served with -pprof" >&2; exit 1; }

# One-shot analyze at internet scale drives the condensed-solver path; the
# verdict must be safe and the SCC counters must move on the next scrape.
curl -fsS -X POST "$base/v1/analyze" -d '{"gadget":"internet:2000"}' \
    | grep -q '"safe":true'
scc="$(curl -fsS "$base/metrics" | awk '$1 == "fsr_scc_components_total" {print $2}')"
[ "${scc:-0}" -gt 0 ] || { echo "FAIL: fsr_scc_components_total=$scc, want > 0" >&2; exit 1; }

# The diagnosis surface serves: dashboard HTML, flight recorder JSON with
# the analyze recorded, and — because the analyze crossed -slow-op — a slow
# entry carrying its full span tree, retrievable without any re-run.
dash="$(curl -fsS -w '\n%{http_code}' "$base/dashboard")"
[ "$(echo "$dash" | tail -1)" = "200" ] && [ "$(echo "$dash" | wc -c)" -gt 100 ] \
    || { echo "FAIL: /dashboard not serving" >&2; exit 1; }
flight="$(curl -fsS "$base/v1/flightrecorder")"
echo "$flight" | jq -e '.enabled and (.ops | length > 0)' >/dev/null \
    || { echo "FAIL: flight recorder empty: $flight" >&2; exit 1; }
echo "$flight" | jq -e '.slow[] | select(.kind == "analyze-spp") | .spans | length > 0' >/dev/null \
    || { echo "FAIL: no slow op with a span tree in the flight recorder" >&2; exit 1; }
curl -fsS "$base/v1/timeseries" | jq -e '.interval_ms > 0' >/dev/null \
    || { echo "FAIL: /v1/timeseries not serving" >&2; exit 1; }

# fsr top renders one frame against the live endpoint.
"$bin" top -addr "$addr" -once | grep -q "recent operations" \
    || { echo "FAIL: fsr top -once rendered no operations table" >&2; exit 1; }

# The daemon logged structured JSON: every stderr line must parse, and the
# request records must carry the standard attrs.
[ -s "$servelog" ] || { echo "FAIL: serve logged nothing to stderr" >&2; exit 1; }
jq -e . >/dev/null <"$servelog" \
    || { echo "FAIL: serve stderr is not a stream of JSON objects" >&2; exit 1; }
jq -e -s 'map(select(.msg == "request")) | length > 0 and all(.[] ; .method and .path and .code)' \
    <"$servelog" >/dev/null \
    || { echo "FAIL: no well-formed request records in serve log" >&2; exit 1; }

echo "server smoke OK: delta_solves=$delta oracle_mismatches=$mismatch smt_probes=$probes scc_components=$scc"
