#!/usr/bin/env bash
# Smoke test for the campaign observability surface, in two stages:
#  1. a long-running campaign with -metrics-addr, scraped live — the
#     campaign and solver counters must move and /debug/pprof/ must answer;
#  2. a short campaign with -trace-out, validated as Chrome trace-event
#     JSON covering the generate → analyze → simulate pipeline.
# Usage: hack/trace_smoke.sh [port]
set -euo pipefail
cd "$(dirname "$0")/.."

addr="127.0.0.1:${1:-8093}"
base="http://$addr"
tmp="$(mktemp -d)"
bin="$tmp/fsr"
go build -o "$bin" ./cmd/fsr

# Stage 1: scrape a campaign mid-flight. The count is far larger than the
# scrape needs; the campaign is killed once the assertions pass.
"$bin" campaign -count 100000 -quiet -metrics-addr "$addr" &
pid=$!
trap 'kill "$pid" 2>/dev/null || true; wait "$pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT

scraped=""
for _ in $(seq 1 100); do
    if scraped="$(curl -fsS "$base/metrics" 2>/dev/null)"; then
        done="$(echo "$scraped" | awk '$1 == "fsr_campaign_scenarios_completed_total" {print $2}')"
        [ "${done:-0}" -gt 0 ] && break
    fi
    sleep 0.1
done
done="$(echo "$scraped" | awk '$1 == "fsr_campaign_scenarios_completed_total" {print $2}')"
probes="$(echo "$scraped" | awk '$1 == "fsr_smt_probes_total" {print $2}')"
[ "${done:-0}" -gt 0 ] || { echo "FAIL: fsr_campaign_scenarios_completed_total=$done, want > 0" >&2; exit 1; }
[ "${probes:-0}" -gt 0 ] || { echo "FAIL: fsr_smt_probes_total=$probes, want > 0" >&2; exit 1; }
echo "$scraped" | grep -q '^fsr_campaign_scenarios_total{outcome=' \
    || { echo "FAIL: no per-outcome campaign series on /metrics" >&2; exit 1; }

# The same listener serves Go profiling: grab a real 1 s CPU profile of
# the running campaign, the go-tool-pprof workflow end to end.
curl -fsS "$base/debug/pprof/cmdline" >/dev/null \
    || { echo "FAIL: /debug/pprof/cmdline not served on -metrics-addr" >&2; exit 1; }
curl -fsS "$base/debug/pprof/profile?seconds=1" -o "$tmp/cpu.pb.gz" \
    || { echo "FAIL: CPU profile fetch failed" >&2; exit 1; }
[ -s "$tmp/cpu.pb.gz" ] || { echo "FAIL: empty CPU profile" >&2; exit 1; }

kill "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true

# Stage 2: a short traced campaign; the trace must be loadable trace-event
# JSON containing every pipeline stage.
"$bin" campaign -count 16 -quiet -trace-out "$tmp/trace.json"
go run ./hack/tracecheck "$tmp/trace.json" scenario generate analyze simulate check solve

# Stage 3: a shrinking campaign (the divergent fixture guarantees findings)
# must additionally record shrink spans. Exit 1 is the expected "finding"
# status, so tolerate it explicitly under set -e.
"$bin" campaign -kinds divergent-fixture -count 2 -shrink -quiet \
    -trace-out "$tmp/shrink.json" >/dev/null || [ "$?" -eq 1 ]
go run ./hack/tracecheck "$tmp/shrink.json" scenario generate analyze simulate shrink

echo "trace smoke OK: scraped done=$done smt_probes=$probes mid-flight"
