#!/usr/bin/env bash
# Runs the benchstat-friendly Stage series plus the headline analysis and
# solver-scaling benches, and writes BENCH_<tag>.json mapping each benchmark
# to its mean ns/op and allocs/op — the perf trajectory future PRs are held
# to. Usage: hack/bench.sh [tag] [count] [baseline-tag]
#
# With a baseline tag (or BENCH_BASELINE=<tag>), the run ends by diffing
# the fresh file against BENCH_<baseline>.json via hack/benchdiff and
# fails when any shared benchmark slowed past BENCH_THRESHOLD (default 5%).
#
# For a statistically sound before/after comparison, prefer
#   go test -run '^$' -bench Stage -benchmem -count 10 . > new.txt
#   benchstat old.txt new.txt
set -euo pipefail
cd "$(dirname "$0")/.."

tag="${1:-pr3}"
count="${2:-5}"
baseline="${3:-${BENCH_BASELINE:-}}"
out="BENCH_${tag}.json"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# DeltaVerify/mode=full pays a full n=5000 rebuild per iteration (tens of
# seconds), so the suite needs headroom beyond go test's default timeout.
go test -run '^$' -bench 'Stage|Figure3Analysis|SolverScaling|Campaign|DeltaVerify|ObsOverhead|ConstraintGen|InternetScale' \
    -benchmem -count "$count" -timeout 60m . | tee "$tmp"

awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    if (!(name in seen)) { seen[name] = 1; names[++n] = name }
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     { ns[name] += $(i-1); nns[name]++ }
        if ($i == "allocs/op") { al[name] += $(i-1); nal[name]++ }
        if ($i == "B/node")    { bn[name] += $(i-1); nbn[name]++ }
    }
}
END {
    printf "{\n"
    for (i = 1; i <= n; i++) {
        name = names[i]
        mean_ns = nns[name] ? ns[name] / nns[name] : 0
        mean_al = nal[name] ? al[name] / nal[name] : 0
        extra = ""
        if (nbn[name]) extra = sprintf(", \"bytes_per_node\": %.1f", bn[name] / nbn[name])
        printf "  \"%s\": {\"ns_per_op\": %.1f, \"allocs_per_op\": %.1f%s}%s\n", \
            name, mean_ns, mean_al, extra, (i < n ? "," : "")
    }
    printf "}\n"
}' "$tmp" > "$out"

echo "wrote $out"

if [[ -n "$baseline" ]]; then
    base="BENCH_${baseline}.json"
    if [[ ! -f "$base" ]]; then
        echo "bench.sh: baseline $base not found" >&2
        exit 2
    fi
    go run ./hack/benchdiff -threshold "${BENCH_THRESHOLD:-0.05}" "$base" "$out"
fi
