// Command tracecheck validates a Chrome trace-event JSON file written by
// fsr's -trace-out flag: the envelope parses, every event is a well-formed
// complete ("X") event, and the span names given as arguments all occur.
// Usage: go run ./hack/tracecheck file.json [required-span ...]
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

type event struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck file.json [required-span ...]")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(2)
	}
	var envelope struct {
		TraceEvents []event `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &envelope); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck: invalid JSON:", err)
		os.Exit(1)
	}
	if len(envelope.TraceEvents) == 0 {
		fmt.Fprintln(os.Stderr, "tracecheck: no trace events")
		os.Exit(1)
	}
	names := map[string]int{}
	for i, e := range envelope.TraceEvents {
		if e.Name == "" || e.Ph != "X" || e.Ts < 0 || e.Dur < 0 || e.Pid != 1 || e.Tid < 1 {
			fmt.Fprintf(os.Stderr, "tracecheck: malformed event %d: %+v\n", i, e)
			os.Exit(1)
		}
		names[e.Name]++
	}
	ok := true
	for _, want := range os.Args[2:] {
		if names[want] == 0 {
			fmt.Fprintf(os.Stderr, "tracecheck: no %q span recorded\n", want)
			ok = false
		}
	}
	if !ok {
		os.Exit(1)
	}
	fmt.Printf("tracecheck OK: %d event(s), %d distinct span name(s)\n",
		len(envelope.TraceEvents), len(names))
}
