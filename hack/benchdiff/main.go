// Command benchdiff compares two BENCH_<tag>.json files written by
// hack/bench.sh and reports per-benchmark deltas in time and allocations.
// With -threshold it exits 1 when any benchmark present in both files got
// slower by more than the given fraction — the mechanical gate behind "the
// perf trajectory future PRs are held to".
//
// Usage:
//
//	go run ./hack/benchdiff [-threshold 0.05] [-allocs] OLD.json NEW.json
//
// Benchmarks present in only one file are listed but never gate: new
// benchmarks appear and retired ones disappear as the suite evolves.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

type entry struct {
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	BytesPerNode float64 `json:"bytes_per_node"`
}

func load(path string) (map[string]entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m map[string]entry
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return m, nil
}

func main() {
	threshold := flag.Float64("threshold", 0,
		"fail (exit 1) when any shared benchmark slows by more than this fraction (0 disables the gate)")
	gateAllocs := flag.Bool("allocs", false,
		"also gate on allocs/op growth beyond the threshold")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold FRAC] [-allocs] OLD.json NEW.json")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldM, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newM, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(oldM)+len(newM))
	seen := map[string]bool{}
	for n := range oldM {
		names = append(names, n)
		seen[n] = true
	}
	for n := range newM {
		if !seen[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	fmt.Printf("%-55s %14s %14s %8s %9s\n", "benchmark", "old ns/op", "new ns/op", "Δtime", "Δallocs")
	regressed := 0
	for _, name := range names {
		o, inOld := oldM[name]
		n, inNew := newM[name]
		switch {
		case !inNew:
			fmt.Printf("%-55s %14.0f %14s %8s %9s\n", name, o.NsPerOp, "-", "gone", "")
			continue
		case !inOld:
			fmt.Printf("%-55s %14s %14.0f %8s %9s\n", name, "-", n.NsPerOp, "new", "")
			continue
		}
		dt := ratio(o.NsPerOp, n.NsPerOp)
		da := ratio(o.AllocsPerOp, n.AllocsPerOp)
		mark := ""
		if *threshold > 0 && (dt > *threshold || (*gateAllocs && da > *threshold)) {
			mark = "  REGRESSION"
			regressed++
		}
		fmt.Printf("%-55s %14.0f %14.0f %7.1f%% %8.1f%%%s\n",
			name, o.NsPerOp, n.NsPerOp, dt*100, da*100, mark)
	}
	if regressed > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) regressed past %.1f%%\n",
			regressed, *threshold*100)
		os.Exit(1)
	}
}

// ratio is the relative change new/old - 1; a zero baseline (a benchmark
// that reported no such unit) never counts as a regression.
func ratio(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return new/old - 1
}
