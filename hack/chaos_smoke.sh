#!/usr/bin/env bash
# Chaos smoke: run a seeded churn campaign (every scenario carrying a
# fault plan: link flaps, flap storms, partitions, node restarts, policy
# changes) under the race detector, and assert that (a) the campaign
# classifies clean — exit 0 means zero divergences/mismatches and no
# timeouts/errors — and (b) faults were actually injected, read from
# fsr_simnet_faults_injected_total on the campaign's metrics listener
# (with the report's own "faults injected" summary line as the backstop
# should the campaign outrun the scrape).
# Usage: hack/chaos_smoke.sh [port]
set -euo pipefail
cd "$(dirname "$0")/.."

addr="127.0.0.1:${1:-8093}"
tmp="$(mktemp -d)"
bin="$tmp/fsr"
out="$tmp/campaign.out"
go build -race -o "$bin" ./cmd/fsr

"$bin" campaign -churn -count 600 -seed 1 -deadline 5m \
    -metrics-addr "$addr" -quiet >"$out" 2>&1 &
pid=$!
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT

# Scrape the injection counter mid-flight; the campaign keeps running.
scraped=0
while kill -0 "$pid" 2>/dev/null; do
    if curl -fsS "http://$addr/metrics" 2>/dev/null \
        | awk '$1 == "fsr_simnet_faults_injected_total" && $2 > 0 {found=1} END {exit !found}'; then
        scraped=1
        break
    fi
    sleep 0.2
done

# Exit 0 is the whole contract: 1 would be a divergence/mismatch, 2 a
# timeout, error, or tool failure.
wait "$pid"

cat "$out"
if [ "$scraped" -ne 1 ]; then
    grep -Eq 'faults injected: [1-9]' "$out" || {
        echo "chaos smoke: no faults injected (neither scraped nor reported)" >&2
        exit 1
    }
fi
echo "chaos smoke OK (metrics scraped mid-flight: $scraped)"
