package fsr

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"

	"fsr/internal/server"
)

// ServeOptions configures the verification daemon.
type ServeOptions struct {
	// Addr is the listen address (default 127.0.0.1:8080).
	Addr string
	// CheckOracle re-runs every verification through the full-rebuild
	// pipeline and counts disagreements in fsr_oracle_mismatches_total.
	CheckOracle bool
	// Pprof mounts net/http/pprof under /debug/pprof/. Off by default:
	// profiles expose heap contents, so enable only on trusted listeners.
	Pprof bool
	// Logf receives one line per request when non-nil.
	Logf func(format string, args ...any)
}

// NewServerHandler returns the verification daemon's http.Handler: a
// registry of resident [DeltaVerifier]s behind an HTTP/JSON API
// (POST /v1/instances, …/verify, …/whatif, GET /v1/instances[/{id}],
// /healthz, /metrics), with built-in gadget names resolved through
// [Gadget]. Mount it under your own server, or use [Serve] to run a
// standalone daemon.
func NewServerHandler(opts ServeOptions) http.Handler {
	return server.New(server.Options{
		Gadget:      Gadget,
		CheckOracle: opts.CheckOracle,
		Pprof:       opts.Pprof,
		Logf:        opts.Logf,
	}).Handler()
}

// Serve runs the verification daemon until the context is cancelled, then
// shuts down gracefully. The listener is bound before Serve returns to its
// serving loop, so a caller that sees no immediate error can start issuing
// requests.
func Serve(ctx context.Context, opts ServeOptions) error {
	addr := opts.Addr
	if addr == "" {
		addr = "127.0.0.1:8080"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: NewServerHandler(opts)}
	if opts.Logf != nil {
		opts.Logf("fsr serve: listening on http://%s", ln.Addr())
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			return err
		}
		<-done // always http.ErrServerClosed after Shutdown
		return nil
	case err := <-done:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}
