package fsr

import (
	"context"
	"errors"
	"log/slog"
	"net"
	"net/http"
	"time"

	"fsr/internal/server"
)

// ServeOptions configures the verification daemon.
type ServeOptions struct {
	// Addr is the listen address (default 127.0.0.1:8080).
	Addr string
	// CheckOracle re-runs every verification through the full-rebuild
	// pipeline and counts disagreements in fsr_oracle_mismatches_total.
	CheckOracle bool
	// Pprof mounts net/http/pprof under /debug/pprof/. Off by default:
	// profiles expose heap contents, so enable only on trusted listeners.
	Pprof bool
	// Logger receives structured request, panic, and lifecycle records
	// when non-nil.
	Logger *slog.Logger
	// SlowOpThreshold sets the flight recorder's slow-op latency bound:
	// operations beyond it retain their full span tree, retrievable from
	// GET /v1/flightrecorder without a re-run. Zero keeps the default
	// (100ms).
	SlowOpThreshold time.Duration
	// ShutdownTimeout bounds the graceful drain after the context is
	// cancelled: in-flight requests get this long to finish before the
	// remaining connections are closed (default 5s).
	ShutdownTimeout time.Duration
}

// newServer builds the daemon with the public facade's capabilities
// injected: gadget resolution through [Gadget] and one-shot analysis
// through a default Session's AnalyzeSPP (so POST /v1/analyze takes the
// internet-scale path on large instances).
func newServer(opts ServeOptions) *server.Server {
	if opts.SlowOpThreshold > 0 {
		obsFlight().SetSlowThreshold(opts.SlowOpThreshold)
	}
	sess := NewSession()
	return server.New(server.Options{
		Gadget:      Gadget,
		CheckOracle: opts.CheckOracle,
		Pprof:       opts.Pprof,
		Logger:      opts.Logger,
		Analyze:     sess.AnalyzeSPP,
	})
}

// NewServerHandler returns the verification daemon's http.Handler: a
// registry of resident [DeltaVerifier]s behind an HTTP/JSON API
// (POST /v1/instances, …/verify, …/whatif, POST /v1/analyze,
// GET /v1/instances[/{id}], /healthz, /metrics), plus the diagnosis
// surface (/v1/flightrecorder, /v1/timeseries, /dashboard), with built-in
// gadget names resolved through [Gadget]. Mount it under your own server,
// or use [Serve] to run a standalone daemon.
func NewServerHandler(opts ServeOptions) http.Handler {
	return newServer(opts).Handler()
}

// Serve runs the verification daemon until the context is cancelled, then
// drains gracefully: in-flight requests get ShutdownTimeout to finish, and
// whatever is still open after that is closed hard. The listener is bound
// before Serve returns to its serving loop, so a caller that sees no
// immediate error can start issuing requests. The server carries header,
// read, write, and idle timeouts so a stalled or malicious peer cannot
// pin a connection (and its handler goroutine) forever.
func Serve(ctx context.Context, opts ServeOptions) error {
	addr := opts.Addr
	if addr == "" {
		addr = "127.0.0.1:8080"
	}
	drain := opts.ShutdownTimeout
	if drain <= 0 {
		drain = 5 * time.Second
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	daemon := newServer(opts)
	defer daemon.Close()
	srv := &http.Server{
		Handler: daemon.Handler(),
		// Slowloris guard: a peer must finish its header block quickly …
		ReadHeaderTimeout: 5 * time.Second,
		// … and its body within the read window. Verify bodies are bounded
		// (8 MiB) so 30 s is generous on any sane link.
		ReadTimeout: 30 * time.Second,
		// WriteTimeout caps handler + response time; the solver's own
		// per-request work is far below this on every shipped gadget.
		WriteTimeout: 60 * time.Second,
		IdleTimeout:  120 * time.Second,
	}
	if opts.Logger != nil {
		opts.Logger.Info("fsr serve: listening", "addr", ln.Addr().String(), "url", "http://"+ln.Addr().String())
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			// Drain deadline exceeded: close the stragglers and report the
			// unclean exit instead of leaking the connections.
			srv.Close()
			return err
		}
		<-done // always http.ErrServerClosed after Shutdown
		return nil
	case err := <-done:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}
