// Quickstart: the FSR pipeline in one page, following the paper's Figure 1.
//
// A policy configuration (Gao-Rexford guideline A) goes in; out come (a) a
// safety analysis — unsat for the bare guideline, sat for its composition
// with a strictly monotonic tie-breaker — and (b) a distributed NDlog
// implementation generated from the very same algebra. One fsr.Session owns
// the whole pipeline.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"fsr"
)

func main() {
	ctx := context.Background()
	sess := fsr.NewSession() // defaults: native solver, simulation runner

	// 1. The policy configuration: Gao-Rexford guideline A (§II-B).
	guideline := fsr.GaoRexfordA()

	// 2. Safety analysis (§IV): the guideline alone is not strictly
	// monotonic — the solver returns unsat and pinpoints c ⊕ C = C.
	res, err := sess.CheckStrictMonotonicity(ctx, guideline)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== bare guideline ==")
	fmt.Println(res)

	// 3. The standard fix: compose with shortest hop-count as the
	// tie-breaker. The composition rule proves the product safe.
	report, err := sess.Analyze(ctx, fsr.GaoRexfordSafe())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== composed with hop count ==")
	fmt.Println(report)

	// 4. The same algebra compiles to a distributed implementation: the
	// GPV program plus the four policy functions of Table II.
	prog, err := sess.Compile(guideline)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== generated NDlog implementation ==")
	fmt.Print(prog)

	// 5. And to the Yices encoding the paper prints in §IV-C — the same
	// text the fsr.YicesTextSolver() backend round-trips.
	yices, err := sess.SolverEncoding(guideline)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== solver encoding ==")
	fmt.Print(yices)
}
