// hlp-comparison reproduces the §VI-D alternative-mechanism study at a
// reduced scale: the same hierarchy network executed under plain path
// vector, HLP, and HLP with cost hiding, reporting the Figure 6 bandwidth
// series and per-node communication costs.
//
// Run with: go run ./examples/hlp-comparison
package main

import (
	"fmt"
	"log"

	"fsr"
)

func main() {
	res, err := fsr.Figure6(fsr.Figure6Options{
		Seed:       42,
		Domains:    5,
		DomainSize: 10,
		CrossLinks: 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res)
	fmt.Println("\nAs in the paper, the path-vector baseline pays for router-level")
	fmt.Println("paths to every destination, HLP pays only for intra-domain")
	fmt.Println("link-state plus domain-level fragments, and cost hiding suppresses")
	fmt.Println("minor cost updates on top.")
}
