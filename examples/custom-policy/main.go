// custom-policy demonstrates the configuration front end: a policy written
// in the FSR configuration language is parsed, analyzed for safety, and
// compiled to its NDlog implementation — the full Figure 1 pipeline over a
// user-supplied configuration instead of a built-in.
//
// Run with: go run ./examples/custom-policy
package main

import (
	"context"
	"fmt"
	"log"

	"fsr"
)

// A researcher's custom guideline: like Gao-Rexford A, but peers are
// preferred over providers instead of being tied (R strictly before P),
// written in the configuration language.
const src = `
algebra prefer-peers
  sigs C P R
  labels c p r
  reverse c p
  prefer C < R
  prefer R < P
  concat c * C
  concat r * R
  concat p * P
  export p P deny
  export p R deny
  export r P deny
  export r R deny
  origin c C
  origin p P
  origin r R
end

spp tiny-gadget
  session x y 1
  rank x x,y,r2 x,r1
  rank y y,x,r1 y,r2
end
`

func main() {
	ctx := context.Background()
	sess := fsr.NewSession(fsr.WithParallelism(2))

	file, err := fsr.ParseConfig(src)
	if err != nil {
		log.Fatal(err)
	}

	// The guideline is still not strictly monotonic on its own (c ⊕ C = C
	// survives any re-ranking of P and R), so FSR recommends a composition.
	// AnalyzeAll checks the bare guideline and the composition concurrently
	// over the session's worker pool.
	alg := file.Algebras[0]
	reports, err := sess.AnalyzeAll(ctx, alg, fsr.Compose(alg, fsr.HopCount()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== custom guideline ==")
	fmt.Println(reports[0])
	fmt.Println("\n== composed with hop count ==")
	fmt.Println(reports[1])

	// The instance: a DISAGREE written by hand in the spp section.
	res, suspects, err := sess.AnalyzeSPP(ctx, file.Instances[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== custom SPP instance ==")
	fmt.Println(res)
	fmt.Printf("suspect nodes: %v\n", suspects)

	// And the generated implementation for the guideline.
	prog, err := sess.Compile(alg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== generated NDlog (excerpt) ==")
	for i, r := range prog.Rules {
		fmt.Println(r)
		if i >= 2 {
			break
		}
	}
}
