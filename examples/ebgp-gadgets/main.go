// ebgp-gadgets walks the researcher workflow of §VI-C on the classic eBGP
// gadgets of Griffin, Shepherd and Wilfong: automated safety analysis
// (replacing the manual proofs) followed by emulation of each gadget's
// dynamics with the generated implementation.
//
// Run with: go run ./examples/ebgp-gadgets
package main

import (
	"fmt"
	"log"
	"time"

	"fsr"
	"fsr/internal/pathvector"
	"fsr/internal/simnet"
)

func main() {
	for _, inst := range fsr.Gadgets() {
		res, _, err := fsr.AnalyzeSPP(inst)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "safe (strictly monotonic extension exists)"
		if !res.Sat {
			verdict = "unsafe (no strictly monotonic extension)"
		}
		fmt.Printf("== %s: %s ==\n", inst.Name, verdict)

		conv, err := fsr.ConvertSPP(inst)
		if err != nil {
			log.Fatal(err)
		}
		net := simnet.New(1, nil)
		nodes, err := pathvector.BuildSPP(net, conv, simnet.DefaultLink(), pathvector.Config{
			BatchInterval: 20 * time.Millisecond,
			StartStagger:  10 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		run := net.Run(3 * time.Second)
		if run.Converged {
			fmt.Printf("execution: converged at %v after %d deliveries\n", run.Time, run.Delivered)
			for _, n := range inst.Nodes {
				if best, ok := nodes[simnet.NodeID(n)].Best(pathvector.SPPDest); ok {
					fmt.Printf("  %s selects %v\n", n, best.Path)
				}
			}
		} else {
			fmt.Printf("execution: still oscillating at the %v horizon (%d deliveries — a high, sustained update rate)\n",
				run.Time, run.Delivered)
		}
		fmt.Println()
	}
}
