// ebgp-gadgets walks the researcher workflow of §VI-C on the classic eBGP
// gadgets of Griffin, Shepherd and Wilfong: automated safety analysis
// (replacing the manual proofs) followed by emulation of each gadget's
// dynamics with the generated implementation, all through one fsr.Session.
//
// Run with: go run ./examples/ebgp-gadgets
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"fsr"
)

func main() {
	ctx := context.Background()
	sess := fsr.NewSession(
		fsr.WithBatchWindow(20*time.Millisecond),
		fsr.WithStartStagger(10*time.Millisecond),
		fsr.WithHorizon(3*time.Second),
	)
	for _, inst := range fsr.Gadgets() {
		res, _, err := sess.AnalyzeSPP(ctx, inst)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "safe (strictly monotonic extension exists)"
		if !res.Sat {
			verdict = "unsafe (no strictly monotonic extension)"
		}
		fmt.Printf("== %s: %s ==\n", inst.Name, verdict)

		run, err := sess.Run(ctx, inst)
		if err != nil {
			log.Fatal(err)
		}
		if run.Converged {
			fmt.Printf("execution: converged at %v after %d deliveries\n", run.Time, run.Delivered)
			for _, n := range inst.Nodes {
				if best, ok := run.Best[string(n)]; ok {
					fmt.Printf("  %s selects %v\n", n, best.Path)
				}
			}
		} else {
			fmt.Printf("execution: still oscillating at the %v horizon (%d deliveries — a high, sustained update rate)\n",
				run.Time, run.Delivered)
		}
		fmt.Println()
	}
}
