// ibgp-debug walks the network-operator workflow of §IV-C and §VI-B on the
// paper's Figure 3 iBGP configuration: analyze, read the unsat core, fix
// the implicated reflectors, verify, then execute both configurations to
// see the oscillation disappear.
//
// Run with: go run ./examples/ibgp-debug
package main

import (
	"fmt"
	"log"
	"time"

	"fsr"
	"fsr/internal/pathvector"
	"fsr/internal/simnet"
	"fsr/internal/trace"
)

func main() {
	// The operator's configuration: Figure 3's reflectors each prefer
	// another reflector's client over their own.
	broken := fsr.Figure3IBGP()

	res, suspects, err := fsr.AnalyzeSPP(broken)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== analysis of the running configuration ==")
	fmt.Println(res)
	fmt.Printf("suspect nodes: %v\n\n", suspects)

	// The unsat core names the reflectors a, b, c — not the egress routers.
	// Fix their preferences and re-verify, as §IV-C does.
	fixed := fsr.Figure3IBGPFixed()
	res2, _, err := fsr.AnalyzeSPP(fixed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== analysis after the fix ==")
	fmt.Println(res2)

	// Execute both configurations (simulation mode) and compare traffic,
	// the Figure 5 methodology in miniature.
	for _, inst := range []*fsr.SPPInstance{broken, fixed} {
		conv, err := fsr.ConvertSPP(inst)
		if err != nil {
			log.Fatal(err)
		}
		col := trace.NewCollector(10 * time.Millisecond)
		net := simnet.New(1, col)
		_, err = pathvector.BuildSPP(net, conv, simnet.DefaultLink(), pathvector.Config{
			BatchInterval: 20 * time.Millisecond,
			StartStagger:  10 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		run := net.Run(2 * time.Second)
		msgs, bytes := col.Totals()
		fmt.Printf("\n%s: converged=%v time=%v messages=%d bytes=%d\n",
			inst.Name, run.Converged, run.Time, msgs, bytes)
	}
}
