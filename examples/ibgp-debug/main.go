// ibgp-debug walks the network-operator workflow of §IV-C and §VI-B on the
// paper's Figure 3 iBGP configuration: analyze, read the unsat core, fix
// the implicated reflectors, verify, then execute both configurations to
// see the oscillation disappear. The whole loop runs through one
// fsr.Session.
//
// Run with: go run ./examples/ibgp-debug
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"fsr"
)

func main() {
	ctx := context.Background()
	sess := fsr.NewSession(
		fsr.WithBatchWindow(20*time.Millisecond),
		fsr.WithStartStagger(10*time.Millisecond),
		fsr.WithHorizon(2*time.Second),
	)

	// The operator's configuration: Figure 3's reflectors each prefer
	// another reflector's client over their own.
	broken := fsr.Figure3IBGP()

	res, suspects, err := sess.AnalyzeSPP(ctx, broken)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== analysis of the running configuration ==")
	fmt.Println(res)
	fmt.Printf("suspect nodes: %v\n\n", suspects)

	// The unsat core names the reflectors a, b, c — not the egress routers.
	// Fix their preferences and re-verify, as §IV-C does.
	fixed := fsr.Figure3IBGPFixed()
	res2, _, err := sess.AnalyzeSPP(ctx, fixed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== analysis after the fix ==")
	fmt.Println(res2)

	// Execute both configurations (simulation mode) and compare traffic,
	// the Figure 5 methodology in miniature.
	for _, inst := range []*fsr.SPPInstance{broken, fixed} {
		run, err := sess.Run(ctx, inst)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s: converged=%v time=%v messages=%d bytes=%d\n",
			run.Instance, run.Converged, run.Time, run.Messages, run.Bytes)
	}
}
