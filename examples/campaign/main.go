// Campaign: the scenario engine end to end — procedural workload
// generation, a differential analysis-vs-simulation sweep, and
// counterexample shrinking.
//
// The paper validates FSR on five hand-written gadgets; the scenario
// engine mass-produces workloads instead. Each generated scenario carries
// the verdict its construction guarantees (a spliced dispute core ⇒
// unsat; a valley-free Gao-Rexford instance ⇒ sat), the campaign checks
// the solver and the simulator against that guarantee and against each
// other, and anything that disagrees is delta-debugged to a minimal
// instance and serialized to a replayable corpus.
//
// Run with: go run ./examples/campaign
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"fsr"
)

func main() {
	ctx := context.Background()
	sess := fsr.NewSession()

	// 1. A mixed campaign over the three honest generator kinds: gadget
	// compositions, Gao-Rexford hierarchies with injected violations, and
	// route-reflector configurations. Everything should agree: injected
	// violations come back unsat, violation-free scenarios are proven safe
	// and converge in simulation.
	rep, err := sess.Campaign(ctx, fsr.CampaignSpec{Count: 48, BaseSeed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== mixed campaign ==")
	fmt.Println(rep)

	// 2. The built-in self-test: divergent fixtures are deliberately
	// mislabeled safe, so the campaign must flag every one, and -shrink
	// reduces each to its minimal dispute core (3 nodes for BADGADGET,
	// 6 for the Figure 3 cycle).
	fixtures, err := sess.Campaign(ctx, fsr.CampaignSpec{
		Kinds:  []fsr.ScenarioKind{fsr.ScenarioDivergentFixture},
		Count:  3,
		Shrink: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== divergent fixtures, shrunk ==")
	fmt.Println(fixtures)

	// 3. The corpus round trip: interesting outcomes serialize as JSON
	// Lines (the file `fsr campaign -corpus` writes) and replay anywhere —
	// the recorded verdict and convergence must reproduce.
	entries, err := fixtures.CorpusEntries()
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fsr.WriteScenarioCorpus(&buf, entries); err != nil {
		log.Fatal(err)
	}
	back, err := fsr.ReadScenarioCorpus(&buf)
	if err != nil {
		log.Fatal(err)
	}
	replayed, err := sess.Replay(ctx, back)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== corpus replay ==")
	for _, rr := range replayed {
		fmt.Println(rr)
	}
}
