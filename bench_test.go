// Benchmark harness in two parts.
//
// BenchmarkStage* covers the pipeline one stage at a time — constraint
// generation, solving (per backend), NDlog compilation, SPP conversion,
// protocol execution (per runner), and batch fan-out (per parallelism) —
// with benchstat-friendly names (`key=value` sub-benchmarks), so perf
// trajectories across PRs reduce to
//
//	go test -bench=Stage -count=10 | benchstat old.txt new.txt
//
// The Benchmark{Table,Figure,Ablation}* benches regenerate the paper's §VI
// evaluation at reduced-but-representative scale, reporting headline
// metrics through b.ReportMetric. The CLI (`fsr experiment <id> -full`)
// runs the paper-scale variants.
package fsr

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"fsr/internal/algebra"
	"fsr/internal/analysis"
	"fsr/internal/experiments"
	"fsr/internal/ndlog"
	"fsr/internal/pathvector"
	"fsr/internal/scenario"
	"fsr/internal/simnet"
	"fsr/internal/smt"
	"fsr/internal/spp"
	"fsr/internal/topology"

	enginepkg "fsr/internal/engine"
)

// BenchmarkStageConstraints measures constraint generation alone (§IV-B
// steps 1–3) on the Figure 3 instance.
func BenchmarkStageConstraints(b *testing.B) {
	conv, err := spp.Figure3IBGP().ToAlgebra()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.Constraints(conv.Algebra, analysis.StrictMonotonicity); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStageSolve measures the pure decision procedure per solver
// backend on the pre-generated Figure 3 constraint set.
func BenchmarkStageSolve(b *testing.B) {
	conv, err := spp.Figure3IBGP().ToAlgebra()
	if err != nil {
		b.Fatal(err)
	}
	cons, err := analysis.Constraints(conv.Algebra, analysis.StrictMonotonicity)
	if err != nil {
		b.Fatal(err)
	}
	asserts := make([]smt.Assertion, len(cons))
	for i, c := range cons {
		asserts[i] = c.Assertion
	}
	ctx := context.Background()
	for _, backend := range smt.Backends() {
		b.Run("backend="+backend.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, err := backend.Solve(ctx, asserts)
				if err != nil || out.Sat {
					b.Fatalf("want unsat, got sat=%v err=%v", out.Sat, err)
				}
			}
		})
	}
}

// BenchmarkStageCompile measures algebra → NDlog program generation.
func BenchmarkStageCompile(b *testing.B) {
	alg := algebra.GaoRexfordA()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ndlog.Generate(alg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStageConvert measures SPP → algebra conversion with its
// pinpointing maps (§III-B).
func BenchmarkStageConvert(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := spp.Figure3IBGP().ToAlgebra(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStageExecute measures one protocol execution to convergence per
// simulation runner backend (the TCP backend is wall-clock-bound and
// excluded from the stage series).
func BenchmarkStageExecute(b *testing.B) {
	ctx := context.Background()
	for _, runner := range []RunnerBackend{SimulationRunner(), NDlogRunner()} {
		b.Run("runner="+runner.Name(), func(b *testing.B) {
			sess := NewSession(
				WithRunner(runner),
				WithBatchWindow(10*time.Millisecond),
				WithHorizon(20*time.Second),
			)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep, err := sess.Run(ctx, Figure3IBGPFixed())
				if err != nil || !rep.Converged {
					b.Fatalf("run failed: converged=%v err=%v", rep != nil && rep.Converged, err)
				}
			}
		})
	}
}

// analyzeAllBatch builds the fan-out workload: eight converted chain
// instances large enough that each item costs milliseconds (constraint
// generation enumerates the concatenation table), so the worker pool has
// real work to overlap. The original 12-policy batch of closed-form
// algebras was microseconds per item — pure fan-out overhead — and the
// parallelism=1..8 series measured nothing but that overhead.
func analyzeAllBatch(b testing.TB) []Algebra {
	var batch []Algebra
	for i := 0; i < 8; i++ {
		conv, err := spp.ChainGadget(240 + 20*i).ToAlgebra()
		if err != nil {
			b.Fatal(err)
		}
		batch = append(batch, conv.Algebra)
	}
	return batch
}

// BenchmarkStageAnalyzeAll measures the batch fan-out across worker-pool
// sizes on an eight-instance constraint-generation-bound batch.
func BenchmarkStageAnalyzeAll(b *testing.B) {
	ctx := context.Background()
	batch := analyzeAllBatch(b)
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parallelism=%d", par), func(b *testing.B) {
			sess := NewSession(WithParallelism(par))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sess.AnalyzeAll(ctx, batch...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCampaign measures the scenario engine at growing sweep sizes:
// generation, analysis, and bounded simulation per scenario across the
// worker pool — the scaling point for "as many scenarios as you can
// imagine" workloads.
func BenchmarkCampaign(b *testing.B) {
	ctx := context.Background()
	for _, n := range []int{16, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			sess := NewSession()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep, err := sess.Campaign(ctx, CampaignSpec{Count: n, BaseSeed: 1})
				if err != nil {
					b.Fatal(err)
				}
				if len(rep.Interesting()) != 0 {
					b.Fatalf("campaign found divergences:\n%s", rep)
				}
			}
		})
	}
}

// BenchmarkTableI regenerates Table I: the policy-configuration spectrum.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.TableI()
		if len(rows) != 4 {
			b.Fatalf("table I has %d rows", len(rows))
		}
	}
}

// BenchmarkTableII regenerates Table II: the algebra → NDlog translation
// (f_pref, f_concatSig, f_import, f_export) for the Gao-Rexford guideline.
func BenchmarkTableII(b *testing.B) {
	alg := algebra.GaoRexfordA()
	for i := 0; i < b.N; i++ {
		prog, err := ndlog.Generate(alg)
		if err != nil {
			b.Fatal(err)
		}
		for _, fn := range []string{"f_pref", "f_concatSig", "f_import", "f_export"} {
			if _, ok := prog.Func(fn); !ok {
				b.Fatalf("missing %s", fn)
			}
		}
	}
}

// BenchmarkFigure1Pipeline runs the whole FSR architecture end to end on
// one policy: analysis plus implementation generation from the same
// algebra.
func BenchmarkFigure1Pipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		alg := algebra.GaoRexfordWithHopCount()
		rep, err := analysis.AnalyzeSafety(alg)
		if err != nil || rep.Verdict != analysis.Safe {
			b.Fatalf("analysis: %v %v", rep.Verdict, err)
		}
		if _, err := ndlog.Generate(algebra.GaoRexfordA()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3Analysis analyzes the six-node iBGP gadget: 18
// constraints, unsat, six-element core naming the reflectors (§IV-C).
func BenchmarkFigure3Analysis(b *testing.B) {
	conv, err := spp.Figure3IBGP().ToAlgebra()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	var res analysis.Result
	for i := 0; i < b.N; i++ {
		res, err = analysis.Check(conv.Algebra, analysis.StrictMonotonicity)
		if err != nil || res.Sat {
			b.Fatalf("want unsat, got %v %v", res.Sat, err)
		}
	}
	b.ReportMetric(float64(res.NumPreference+res.NumMonotonicity), "constraints")
	b.ReportMetric(float64(len(res.Core)), "core")
}

// BenchmarkFigure4 regenerates the convergence-vs-chain-length series
// (CAIDA-Sim), reporting the deepest point's convergence in batch phases.
func BenchmarkFigure4(b *testing.B) {
	var res experiments.Figure4Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Figure4(experiments.Figure4Options{
			Seed:   1,
			Depths: []int{3, 6, 9, 12},
			Batch:  50 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	last := res.Rows[len(res.Rows)-1]
	b.ReportMetric(last.SimTime.Seconds()/res.Batch.Seconds(), "phases@12")
	b.ReportMetric(float64(2*(last.Depth+1)), "worstcase@12")
}

// BenchmarkFigure5 regenerates the §VI-B iBGP study: extraction, analysis
// (constraint counts, core size) and the bandwidth comparison.
func BenchmarkFigure5(b *testing.B) {
	var res *experiments.Figure5Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Figure5(experiments.Figure5Options{
			Seed:    5,
			Batch:   10 * time.Millisecond,
			Horizon: 1200 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.GadgetAnalysis.NumPreference), "rankingCons")
	b.ReportMetric(float64(res.GadgetAnalysis.NumMonotonicity), "monoCons")
	b.ReportMetric(float64(len(res.GadgetAnalysis.Core)), "core")
	b.ReportMetric(res.CommReduction(), "commReduction%")
	b.ReportMetric(res.ConvReduction(), "convReduction%")
}

// BenchmarkFigure6 regenerates the PV / HLP / HLP-CH comparison, reporting
// per-node communication cost (the paper's 1.75 / 1.09 / 0.59 MB ordering).
func BenchmarkFigure6(b *testing.B) {
	var res *experiments.Figure6Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Figure6(experiments.Figure6Options{
			Seed:       3,
			Domains:    4,
			DomainSize: 8,
			CrossLinks: 12,
			Horizon:    10 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.PVBytes, "PV-B/node")
	b.ReportMetric(res.HLPBytes, "HLP-B/node")
	b.ReportMetric(res.HLPCHBytes, "HLPCH-B/node")
}

// BenchmarkSectionVIBSolver isolates the §VI-B solver call: the paper
// reports the SMT solver answering within 100 ms on the extracted instance.
// The constraint set is built once in setup (the old version ran a full
// Figure 5 experiment here and discarded the result); the loop measures
// pure context construction plus solving.
func BenchmarkSectionVIBSolver(b *testing.B) {
	conv, err := spp.Figure3IBGP().ToAlgebra()
	if err != nil {
		b.Fatal(err)
	}
	cons, err := analysis.Constraints(conv.Algebra, analysis.StrictMonotonicity)
	if err != nil {
		b.Fatal(err)
	}
	asserts := make([]smt.Assertion, len(cons))
	for i, c := range cons {
		asserts[i] = c.Assertion
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := smt.NewContext()
		s.AssertAll(asserts)
		out, err := s.Check()
		if err != nil || out.Sat {
			b.Fatalf("want unsat")
		}
	}
}

// BenchmarkGadgetGood / Bad / Disagree emulate the §VI-C gadgets.
func benchGadget(b *testing.B, mk func() *spp.Instance, wantConverge bool) {
	for i := 0; i < b.N; i++ {
		conv, err := mk().ToAlgebra()
		if err != nil {
			b.Fatal(err)
		}
		net := simnet.New(1, nil)
		_, err = pathvector.BuildSPP(net, conv, simnet.DefaultLink(), pathvector.Config{
			BatchInterval: 20 * time.Millisecond,
			StartStagger:  10 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		res := net.Run(4 * time.Second)
		if res.Converged != wantConverge {
			b.Fatalf("converged=%v, want %v", res.Converged, wantConverge)
		}
	}
}

func BenchmarkGadgetGood(b *testing.B)     { benchGadget(b, spp.GoodGadget, true) }
func BenchmarkGadgetBad(b *testing.B)      { benchGadget(b, spp.BadGadget, false) }
func BenchmarkGadgetDisagree(b *testing.B) { benchGadget(b, spp.Disagree, true) }

// BenchmarkAblationNativeVsNDlogNative and ...NDlog compare the two GPV
// execution paths on the same instance (the compiled-vs-interpreted design
// choice of §V).
func BenchmarkAblationNativeVsNDlogNative(b *testing.B) {
	for i := 0; i < b.N; i++ {
		conv, _ := spp.Figure3IBGPFixed().ToAlgebra()
		net := simnet.New(1, nil)
		_, err := pathvector.BuildSPP(net, conv, simnet.DefaultLink(), pathvector.Config{
			BatchInterval: 20 * time.Millisecond, StartStagger: 15 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res := net.Run(20 * time.Second); !res.Converged {
			b.Fatal("native run did not converge")
		}
	}
}

func BenchmarkAblationNativeVsNDlogNDlog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		conv, _ := spp.Figure3IBGPFixed().ToAlgebra()
		net := simnet.New(1, nil)
		_, err := enginepkg.BuildSPP(net, conv, simnet.DefaultLink(), 20*time.Millisecond, 15*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		if res := net.Run(20 * time.Second); !res.Converged {
			b.Fatal("NDlog run did not converge")
		}
	}
}

// BenchmarkAblationUnsatCoreMinimized / Cycle compare deletion-minimized
// cores against raw negative-cycle extraction.
func benchCoreAblation(b *testing.B, noMinimize bool) {
	conv, err := spp.Figure3IBGP().ToAlgebra()
	if err != nil {
		b.Fatal(err)
	}
	cons, err := analysis.Constraints(conv.Algebra, analysis.StrictMonotonicity)
	if err != nil {
		b.Fatal(err)
	}
	asserts := make([]smt.Assertion, len(cons))
	for i, c := range cons {
		asserts[i] = c.Assertion
	}
	b.ResetTimer()
	b.ReportAllocs()
	var core int
	for i := 0; i < b.N; i++ {
		s := smt.NewContext()
		s.NoMinimize = noMinimize
		s.AssertAll(asserts)
		out, err := s.Check()
		if err != nil || out.Sat {
			b.Fatal("want unsat")
		}
		core = len(out.Core)
	}
	b.ReportMetric(float64(core), "core")
}

func BenchmarkAblationUnsatCoreMinimized(b *testing.B) { benchCoreAblation(b, false) }
func BenchmarkAblationUnsatCoreCycle(b *testing.B)     { benchCoreAblation(b, true) }

// BenchmarkAblationBatching sweeps the route-propagation batch interval
// (the paper uses 1 s in §VI-A) and reports convergence in phases.
func BenchmarkAblationBatching(b *testing.B) {
	for _, batch := range []time.Duration{10 * time.Millisecond, 50 * time.Millisecond, 200 * time.Millisecond} {
		b.Run("batch="+batch.String(), func(b *testing.B) {
			var conv time.Duration
			for i := 0; i < b.N; i++ {
				res, err := experiments.Figure4(experiments.Figure4Options{
					Seed: 1, Depths: []int{6}, Batch: batch,
				})
				if err != nil {
					b.Fatal(err)
				}
				conv = res.Rows[0].SimTime
			}
			b.ReportMetric(conv.Seconds(), "convergence-s")
		})
	}
}

// BenchmarkAblationCostHiding sweeps the HLP cost-hiding threshold.
func BenchmarkAblationCostHiding(b *testing.B) {
	for _, hiding := range []int{1, 5, 20} {
		b.Run(fmt.Sprintf("hiding=%d", hiding), func(b *testing.B) {
			var bytes float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.Figure6(experiments.Figure6Options{
					Seed: 3, Domains: 3, DomainSize: 6, CrossLinks: 8,
					Hiding: hiding, Horizon: 10 * time.Second,
				})
				if err != nil {
					b.Fatal(err)
				}
				bytes = res.HLPCHBytes
			}
			b.ReportMetric(bytes, "B/node")
		})
	}
}

// BenchmarkObsOverhead measures the observability tax on the hottest
// full-pipeline call (Figure 3 analysis): mode=off is the default
// nil-tracer path, whose delta against BenchmarkFigure3Analysis bounds the
// cost of the always-on metric counters; mode=on attaches a fresh tracer
// per iteration, pricing span recording for -trace-out users.
func BenchmarkObsOverhead(b *testing.B) {
	conv, err := spp.Figure3IBGP().ToAlgebra()
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, ctx context.Context) {
		res, err := analysis.CheckWith(ctx, conv.Algebra, analysis.StrictMonotonicity, smt.Native{})
		if err != nil || res.Sat {
			b.Fatalf("want unsat, got %v %v", res.Sat, err)
		}
	}
	b.Run("mode=off", func(b *testing.B) {
		ctx := context.Background()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			run(b, ctx)
		}
	})
	b.Run("mode=on", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			run(b, WithTracer(context.Background(), NewTracer()))
		}
	})
}

// BenchmarkSolverScaling measures the SMT substrate on growing chain
// instances (pure solver throughput: context construction, incremental
// graph build, SPFA decision, model extraction). The n=1000 and n=5000
// points anchor the scaling trajectory future PRs are held to; the
// n=20000 and n=50000 points are the internet-scale additions, set up
// through the sharded generator (the classic concatenation-table path is
// quadratic in instance size and infeasible there) and reporting retained
// solver memory per node at the top size.
func BenchmarkSolverScaling(b *testing.B) {
	for _, n := range []int{10, 50, 200, 1000, 5000, 20000, 50000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			in := spp.ChainGadget(n)
			var asserts []smt.Assertion
			if n >= 20000 {
				cons, ok, err := spp.ShardedConstraints(in, 0)
				if err != nil || !ok {
					b.Fatalf("sharded gen: ok=%v err=%v", ok, err)
				}
				asserts = make([]smt.Assertion, len(cons))
				for i, c := range cons {
					asserts[i] = c.Assertion
				}
			} else {
				conv, err := in.ToAlgebra()
				if err != nil {
					b.Fatal(err)
				}
				cons, err := analysis.Constraints(conv.Algebra, analysis.StrictMonotonicity)
				if err != nil {
					b.Fatal(err)
				}
				asserts = make([]smt.Assertion, len(cons))
				for i, c := range cons {
					asserts[i] = c.Assertion
				}
			}
			perNode := 0.0
			if n >= 50000 {
				// Retained bytes per node once the context holds the full
				// assertion set (the engine's graph is pooled and excluded).
				runtime.GC()
				var before, after runtime.MemStats
				runtime.ReadMemStats(&before)
				s := smt.NewContext()
				s.AssertAll(asserts)
				runtime.GC()
				runtime.ReadMemStats(&after)
				if after.HeapAlloc > before.HeapAlloc {
					perNode = float64(after.HeapAlloc-before.HeapAlloc) / float64(n)
				}
				runtime.KeepAlive(s)
			}
			b.ResetTimer() // clears extra metrics — report perNode after, not before
			b.ReportAllocs()
			if perNode > 0 {
				b.ReportMetric(perNode, "B/node")
			}
			for i := 0; i < b.N; i++ {
				s := smt.NewContext()
				s.AssertAll(asserts)
				if out, err := s.Check(); err != nil || !out.Sat {
					b.Fatal("chain should be sat")
				}
			}
		})
	}
}

// BenchmarkConstraintGen compares the three constraint-generation paths on
// a power-law internet instance: the classic concatenation-table pipeline
// (mode=table — SPP → algebra conversion plus table enumeration, the
// quadratic wall every earlier PR hit), the sharded generator serially
// (mode=serial), and the sharded generator across GOMAXPROCS workers
// (mode=parallel). serial/table is the algorithmic win; parallel/serial is
// the sharding win on multi-core hosts.
func BenchmarkConstraintGen(b *testing.B) {
	g := topology.GenerateInternet(1, topology.InternetParams{N: 1500})
	in := scenario.InternetSPP("gen-internet-1500", g, 3)
	b.Run("mode=table", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			conv, err := in.ToAlgebra()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := analysis.Constraints(conv.Algebra, analysis.StrictMonotonicity); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, mode := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run("mode="+mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cons, ok, err := spp.ShardedConstraints(in, mode.workers)
				if err != nil || !ok || len(cons) == 0 {
					b.Fatalf("sharded gen: %d cons ok=%v err=%v", len(cons), ok, err)
				}
			}
		})
	}
}

// BenchmarkInternetScale is the tentpole measurement: full analysis of a
// 50000-AS power-law instance. mode=undecomposed is the provenance path
// without SCC decomposition — sharded constraint generation (already far
// faster than the classic table path, which does not terminate in bench
// time at this size) feeding the sequential native engine. mode=scc is
// AnalyzeScale: dense encoding into the SCC-decomposed engine, skipping
// provenance materialization on the sat path. The ns/op ratio between the
// two modes is the PR's ≥3× acceptance figure; mode=scc also reports
// retained analysis memory per node.
func BenchmarkInternetScale(b *testing.B) {
	const n = 50000
	ctx := context.Background()
	g := topology.GenerateInternet(9, topology.InternetParams{N: n})
	in := scenario.InternetSPP(fmt.Sprintf("internet-%d", n), g, 3)
	b.Run("mode=undecomposed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cons, ok, err := spp.ShardedConstraints(in, 1)
			if err != nil || !ok {
				b.Fatalf("sharded gen: ok=%v err=%v", ok, err)
			}
			res, err := analysis.CheckPrepared(ctx, "spp-"+in.Name, analysis.StrictMonotonicity, cons, smt.Native{})
			if err != nil || !res.Sat {
				b.Fatalf("want sat, got sat=%v err=%v", res.Sat, err)
			}
		}
	})
	b.Run("mode=scc", func(b *testing.B) {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		res, _, ok, err := spp.AnalyzeScale(ctx, in, 0)
		if err != nil || !ok || !res.Sat {
			b.Fatalf("scale analysis: sat=%v ok=%v err=%v", res.Sat, ok, err)
		}
		runtime.GC()
		runtime.ReadMemStats(&after)
		perNode := 0.0
		if after.HeapAlloc > before.HeapAlloc {
			perNode = float64(after.HeapAlloc-before.HeapAlloc) / float64(n)
		}
		runtime.KeepAlive(res)
		b.ResetTimer() // clears extra metrics — report perNode after, not before
		b.ReportAllocs()
		if perNode > 0 {
			b.ReportMetric(perNode, "B/node")
		}
		for i := 0; i < b.N; i++ {
			res, _, ok, err := spp.AnalyzeScale(ctx, in, 0)
			if err != nil || !ok || !res.Sat {
				b.Fatalf("scale analysis: sat=%v ok=%v err=%v", res.Sat, ok, err)
			}
		}
		b.ReportMetric(float64(res.Stats.Components), "components")
		b.ReportMetric(float64(res.Stats.TrivialComponents), "trivial")
	})
}

// BenchmarkDeltaVerify measures the serve-mode what-if loop on the n=5000
// chain instance: one ranking edit followed by re-verification. mode=full
// is the pre-daemon cost (SPP → algebra conversion, constraint generation,
// fresh solve — what every edit paid before delta re-verification);
// mode=delta patches the resident verifier's constraint system and
// re-probes only the affected dispute-digraph region. The ≥5× gap between
// the two is the PR's acceptance trajectory point.
func BenchmarkDeltaVerify(b *testing.B) {
	const n = 5000
	ctx := context.Background()
	// The edited node flips between its two orderings (direct egress
	// first vs learned route first); both keep the chain satisfiable, so
	// delta iterations exercise the re-probe path rather than the
	// unsat-core fallback.
	mid := fmt.Sprintf("n%d", n/2)
	next, tok := fmt.Sprintf("n%d", n/2+1), fmt.Sprintf("r%d", n/2+1)
	direct := spp.Path{spp.Node(mid), spp.Node("r" + mid[1:])}
	via := spp.Path{spp.Node(mid), spp.Node(next), spp.Node(tok)}
	orders := [2][]spp.Path{{direct, via}, {via, direct}}

	b.Run("mode=full", func(b *testing.B) {
		in := spp.ChainGadget(n)
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			in.Rank(spp.Node(mid), orders[i%2]...)
			conv, err := in.ToAlgebra()
			if err != nil {
				b.Fatal(err)
			}
			res, err := analysis.CheckWith(ctx, conv.Algebra, analysis.StrictMonotonicity, smt.Native{})
			if err != nil || !res.Sat {
				b.Fatalf("chain should be sat (err=%v)", err)
			}
		}
	})
	b.Run("mode=delta", func(b *testing.B) {
		v, err := spp.NewDeltaVerifier(spp.ChainGadget(n))
		if err != nil {
			b.Fatal(err)
		}
		// Prime with the flipped ordering so iteration 0's re-rank is a
		// real edit (re-ranking to the standing order is a no-op answered
		// from cache, which would make a 1-iteration run vacuous).
		if err := v.ReRank(spp.Node(mid), orders[1]...); err != nil {
			b.Fatal(err)
		}
		if _, _, err := v.Verify(ctx); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := v.ReRank(spp.Node(mid), orders[i%2]...); err != nil {
				b.Fatal(err)
			}
			res, _, err := v.Verify(ctx)
			if err != nil || !res.Sat {
				b.Fatalf("chain should be sat (err=%v)", err)
			}
		}
		b.StopTimer()
		st := v.DeltaStats()
		if st.DeltaSolves == 0 {
			b.Fatal("delta mode never delta-solved")
		}
		b.ReportMetric(float64(st.DeltaSolves)/float64(st.Checks), "delta-ratio")
	})
}
