package fsr

import (
	"context"
	"reflect"
	"testing"

	"fsr/internal/algebra"
	"fsr/internal/analysis"
	"fsr/internal/smt"
	"fsr/internal/spp"
)

// differentialAlgebras is every gadget and library algebra the toolkit
// ships: the §VI-C eBGP gadgets, both §IV-C iBGP instances, a scaling
// chain, the Gao-Rexford guidelines, backup routing, hop count, and the
// lexical products the composition rule exercises.
func differentialAlgebras(t *testing.T) map[string]algebra.Algebra {
	t.Helper()
	out := map[string]algebra.Algebra{
		"gao-rexford-a":    algebra.GaoRexfordA(),
		"gao-rexford-b":    algebra.GaoRexfordB(),
		"backup-routing":   algebra.BackupRouting(2),
		"hop-count":        algebra.HopCount{},
		"gr-with-hopcount": algebra.GaoRexfordWithHopCount(),
		"gr-b-x-hopcount":  algebra.NewProduct(algebra.GaoRexfordB(), algebra.HopCount{}),
	}
	for name, mk := range map[string]func() *spp.Instance{
		"good-gadget":      spp.GoodGadget,
		"bad-gadget":       spp.BadGadget,
		"disagree":         spp.Disagree,
		"figure3-ibgp":     spp.Figure3IBGP,
		"figure3-fixed":    spp.Figure3IBGPFixed,
		"chain-gadget-40":  func() *spp.Instance { return spp.ChainGadget(40) },
		"chain-gadget-120": func() *spp.Instance { return spp.ChainGadget(120) },
	} {
		conv, err := mk().ToAlgebra()
		if err != nil {
			t.Fatalf("%s: ToAlgebra: %v", name, err)
		}
		out[name] = conv.Algebra
	}
	return out
}

// TestDifferentialGadgetAlgebras holds the incremental native solver to the
// retained reference implementation on every shipped gadget and library
// algebra, for both checked conditions: identical verdicts, identical
// models (and models that actually satisfy the generated constraints), and
// identical minimal cores constraint for constraint.
func TestDifferentialGadgetAlgebras(t *testing.T) {
	ctx := context.Background()
	for name, alg := range differentialAlgebras(t) {
		if _, isProduct := alg.(algebra.Product); isProduct {
			continue // products decompose via AnalyzeSafety; covered below
		}
		for _, cond := range []analysis.Condition{analysis.StrictMonotonicity, analysis.Monotonicity} {
			got, err := analysis.CheckWith(ctx, alg, cond, smt.Native{})
			if err != nil {
				t.Fatalf("%s/%s: native: %v", name, cond, err)
			}
			want, err := analysis.CheckWith(ctx, alg, cond, smt.Reference{})
			if err != nil {
				t.Fatalf("%s/%s: reference: %v", name, cond, err)
			}
			if got.Sat != want.Sat {
				t.Fatalf("%s/%s: verdicts disagree: native sat=%v, reference sat=%v", name, cond, got.Sat, want.Sat)
			}
			if got.NumPreference != want.NumPreference || got.NumMonotonicity != want.NumMonotonicity {
				t.Fatalf("%s/%s: constraint counts disagree: (%d,%d) vs (%d,%d)", name, cond,
					got.NumPreference, got.NumMonotonicity, want.NumPreference, want.NumMonotonicity)
			}
			if got.Sat {
				if !reflect.DeepEqual(got.Model, want.Model) {
					t.Fatalf("%s/%s: models disagree:\nnative    %v\nreference %v", name, cond, got.Model, want.Model)
				}
				verifyModel(t, name, alg, cond, got.Model)
				continue
			}
			if len(got.Core) != len(want.Core) {
				t.Fatalf("%s/%s: core sizes disagree: %d vs %d", name, cond, len(got.Core), len(want.Core))
			}
			for i := range got.Core {
				if got.Core[i].String() != want.Core[i].String() {
					t.Fatalf("%s/%s: core element %d disagrees:\nnative    %s\nreference %s",
						name, cond, i, got.Core[i], want.Core[i])
				}
			}
		}
	}
}

// verifyModel re-checks a solver model against the freshly generated
// constraint set through smt.Context.Verify — defense in depth on top of
// the model-equality check.
func verifyModel(t *testing.T, name string, alg algebra.Algebra, cond analysis.Condition, model map[string]int) {
	t.Helper()
	cons, err := analysis.Constraints(alg, cond)
	if err != nil {
		t.Fatalf("%s/%s: constraints: %v", name, cond, err)
	}
	s := smt.NewContext()
	for _, c := range cons {
		s.Assert(c.Assertion)
	}
	m := make(map[smt.Var]int, len(model))
	for k, v := range model {
		m[smt.Var(k)] = v
	}
	if bad := s.Verify(m); bad != nil {
		t.Fatalf("%s/%s: native model violates %s", name, cond, bad)
	}
}

// TestDifferentialSafetyReports runs the full composition-rule analysis
// (AnalyzeSafety, the paper's §IV-B flow) on both backends and requires
// identical verdicts, reasons, and step-by-step results.
func TestDifferentialSafetyReports(t *testing.T) {
	ctx := context.Background()
	for name, alg := range differentialAlgebras(t) {
		got, err := analysis.AnalyzeSafetyWith(ctx, alg, smt.Native{})
		if err != nil {
			t.Fatalf("%s: native: %v", name, err)
		}
		want, err := analysis.AnalyzeSafetyWith(ctx, alg, smt.Reference{})
		if err != nil {
			t.Fatalf("%s: reference: %v", name, err)
		}
		if got.Verdict != want.Verdict || got.Reason != want.Reason {
			t.Fatalf("%s: reports disagree:\nnative    %s — %s\nreference %s — %s",
				name, got.Verdict, got.Reason, want.Verdict, want.Reason)
		}
		if len(got.Steps) != len(want.Steps) {
			t.Fatalf("%s: step counts disagree: %d vs %d", name, len(got.Steps), len(want.Steps))
		}
		for i := range got.Steps {
			if got.Steps[i].String() != want.Steps[i].String() {
				t.Fatalf("%s: step %d disagrees:\nnative    %s\nreference %s",
					name, i, got.Steps[i], want.Steps[i])
			}
		}
	}
}
