package fsr

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestServeGracefulShutdown: the daemon binds, answers, and drains cleanly
// when its context is cancelled — the SIGINT/SIGTERM path `fsr serve` runs.
func TestServeGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- Serve(ctx, ServeOptions{
			Addr:            "127.0.0.1:0",
			ShutdownTimeout: 2 * time.Second,
			Logf: func(format string, args ...any) {
				line := fmt.Sprintf(format, args...)
				if rest, ok := strings.CutPrefix(line, "fsr serve: listening on http://"); ok {
					select {
					case addrCh <- rest:
					default:
					}
				}
			},
		})
	}()

	var addr string
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("serve exited before binding: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not bind within 5s")
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not drain within 5s")
	}
}
