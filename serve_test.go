package fsr

import (
	"context"
	"log/slog"
	"net/http"
	"strings"
	"testing"
	"time"
)

// lineWriter funnels each slog text line written during Serve to a channel,
// so the test can pick the bind address out of the listening record.
type lineWriter struct{ lines chan string }

func (w *lineWriter) Write(p []byte) (int, error) {
	select {
	case w.lines <- string(p):
	default:
	}
	return len(p), nil
}

// TestServeGracefulShutdown: the daemon binds, answers, and drains cleanly
// when its context is cancelled — the SIGINT/SIGTERM path `fsr serve` runs.
func TestServeGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	lw := &lineWriter{lines: make(chan string, 16)}
	logger := slog.New(slog.NewTextHandler(lw, nil))
	done := make(chan error, 1)
	go func() {
		done <- Serve(ctx, ServeOptions{
			Addr:            "127.0.0.1:0",
			ShutdownTimeout: 2 * time.Second,
			Logger:          logger,
		})
	}()

	var addr string
wait:
	for {
		select {
		case line := <-lw.lines:
			if !strings.Contains(line, "listening") {
				continue
			}
			for _, tok := range strings.Fields(line) {
				if rest, ok := strings.CutPrefix(tok, "addr="); ok {
					addr = rest
					break wait
				}
			}
			t.Fatalf("listening record has no addr attr: %q", line)
		case err := <-done:
			t.Fatalf("serve exited before binding: %v", err)
		case <-time.After(5 * time.Second):
			t.Fatal("daemon did not bind within 5s")
		}
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not drain within 5s")
	}
}
