package fsr

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"
)

// TestSessionDefaults: the zero-configuration session uses the native
// solver and the simulation runner.
func TestSessionDefaults(t *testing.T) {
	sess := NewSession()
	if sess.SolverName() != "native" {
		t.Errorf("default solver = %s, want native", sess.SolverName())
	}
	if sess.RunnerName() != "sim" {
		t.Errorf("default runner = %s, want sim", sess.RunnerName())
	}
}

// TestSessionOptions: every option lands on the session.
func TestSessionOptions(t *testing.T) {
	sess := NewSession(
		WithSolver(YicesTextSolver()),
		WithRunner(DeploymentRunner()),
		WithSeed(7),
		WithBatchWindow(30*time.Millisecond),
		WithParallelism(-3),
	)
	if sess.SolverName() != "yices-text" {
		t.Errorf("solver = %s, want yices-text", sess.SolverName())
	}
	if sess.RunnerName() != "tcp" {
		t.Errorf("runner = %s, want tcp", sess.RunnerName())
	}
	if sess.parallelism != 1 {
		t.Errorf("parallelism floor: got %d, want 1", sess.parallelism)
	}
	if sess.seed != 7 || sess.batch != 30*time.Millisecond {
		t.Errorf("seed/batch not applied: %d %v", sess.seed, sess.batch)
	}
}

// TestSolverBackendSelection: name-based lookup round-trips every backend.
func TestSolverBackendSelection(t *testing.T) {
	for _, backend := range SolverBackends() {
		got, err := SolverBackendByName(backend.Name())
		if err != nil {
			t.Fatalf("SolverBackendByName(%s): %v", backend.Name(), err)
		}
		if got.Name() != backend.Name() {
			t.Errorf("lookup %s returned %s", backend.Name(), got.Name())
		}
	}
	if _, err := SolverBackendByName("z3"); err == nil {
		t.Error("unknown solver name should error")
	}
	if _, err := RunnerBackendByName("kubernetes"); err == nil {
		t.Error("unknown runner name should error")
	}
}

// TestSessionSolverBackends: both solver backends decide the paper's
// headline queries identically — unsat with the c ⊕ C = C core for bare
// Gao-Rexford, safe for the composition.
func TestSessionSolverBackends(t *testing.T) {
	ctx := context.Background()
	for _, backend := range SolverBackends() {
		t.Run(backend.Name(), func(t *testing.T) {
			sess := NewSession(WithSolver(backend))
			res, err := sess.CheckStrictMonotonicity(ctx, GaoRexfordA())
			if err != nil {
				t.Fatal(err)
			}
			if res.Sat {
				t.Fatalf("bare guideline should be unsat on %s", backend.Name())
			}
			if len(res.Core) != 1 || res.Core[0].Entry.String() != "c ⊕ C = C" {
				t.Errorf("core should pinpoint c ⊕ C = C, got %v", res.Core)
			}
			rep, err := sess.Analyze(ctx, GaoRexfordSafe())
			if err != nil {
				t.Fatal(err)
			}
			if rep.Verdict != Safe {
				t.Errorf("composition should be safe on %s: %s", backend.Name(), rep)
			}
		})
	}
}

// TestSessionSolverBackendsSPP: unsat-core provenance survives the
// yices-text round trip — the Figure 3 suspects are identical across
// backends.
func TestSessionSolverBackendsSPP(t *testing.T) {
	ctx := context.Background()
	var want []SPPNode
	for i, backend := range SolverBackends() {
		res, suspects, err := NewSession(WithSolver(backend)).AnalyzeSPP(ctx, Figure3IBGP())
		if err != nil {
			t.Fatalf("%s: %v", backend.Name(), err)
		}
		if res.Sat {
			t.Fatalf("%s: Figure 3 gadget should be unsat", backend.Name())
		}
		if i == 0 {
			want = suspects
			if len(want) == 0 {
				t.Fatal("suspects should name the reflectors")
			}
			continue
		}
		if !reflect.DeepEqual(suspects, want) {
			t.Errorf("%s suspects %v differ from %v", backend.Name(), suspects, want)
		}
	}
}

// TestSessionRunnerBackends: every runner backend converges the fixed
// Figure 3 instance to the same routes — the compiled protocol, the NDlog
// interpreter, and the TCP deployment are equivalent implementations of
// GPV.
func TestSessionRunnerBackends(t *testing.T) {
	ctx := context.Background()
	wantPaths := map[string][]string{
		"a": {"a", "d", "r1"},
		"b": {"b", "e", "r2"},
		"c": {"c", "f", "r3"},
	}
	for _, backend := range RunnerBackends() {
		t.Run(backend.Name(), func(t *testing.T) {
			sess := NewSession(
				WithRunner(backend),
				WithBatchWindow(10*time.Millisecond),
				WithHorizon(20*time.Second),
			)
			rep, err := sess.Run(ctx, Figure3IBGPFixed())
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Converged {
				t.Fatalf("%s run did not converge", backend.Name())
			}
			if rep.Runner != backend.Name() {
				t.Errorf("report names runner %s, want %s", rep.Runner, backend.Name())
			}
			for node, want := range wantPaths {
				got, ok := rep.Best[node]
				if !ok {
					t.Fatalf("%s: node %s has no route", backend.Name(), node)
				}
				if !reflect.DeepEqual(got.Path, want) {
					t.Errorf("%s: node %s path %v, want %v", backend.Name(), node, got.Path, want)
				}
			}
		})
	}
}

// TestSessionAnalyzeAll: the batch facade preserves input order and
// verdicts under a concurrent worker pool (run with -race).
func TestSessionAnalyzeAll(t *testing.T) {
	ctx := context.Background()
	var algebras []Algebra
	var wantSafe []bool
	for i := 0; i < 4; i++ {
		algebras = append(algebras, GaoRexfordA(), GaoRexfordSafe(), Compose(GaoRexfordB(), HopCount()))
		wantSafe = append(wantSafe, false, true, true)
	}
	sess := NewSession(WithParallelism(4))
	reports, err := sess.AnalyzeAll(ctx, algebras...)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(algebras) {
		t.Fatalf("got %d reports for %d algebras", len(reports), len(algebras))
	}
	for i, rep := range reports {
		if (rep.Verdict == Safe) != wantSafe[i] {
			t.Errorf("report %d: verdict %v, want safe=%v (%s)", i, rep.Verdict, wantSafe[i], rep.Reason)
		}
	}
}

// TestSessionAnalyzeAllEmpty: the degenerate batch is fine.
func TestSessionAnalyzeAllEmpty(t *testing.T) {
	reports, err := NewSession().AnalyzeAll(context.Background())
	if err != nil || len(reports) != 0 {
		t.Fatalf("empty batch: %v %v", reports, err)
	}
}

// TestSessionCancelMidSolve: a cancelled context aborts the solver, on both
// backends, before and during core minimization.
func TestSessionCancelMidSolve(t *testing.T) {
	for _, backend := range SolverBackends() {
		t.Run(backend.Name(), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			sess := NewSession(WithSolver(backend))
			if _, err := sess.CheckStrictMonotonicity(ctx, GaoRexfordA()); !errors.Is(err, context.Canceled) {
				t.Errorf("cancelled solve returned %v, want context.Canceled", err)
			}
			if _, err := sess.Analyze(ctx, GaoRexfordSafe()); !errors.Is(err, context.Canceled) {
				t.Errorf("cancelled analyze returned %v, want context.Canceled", err)
			}
		})
	}
}

// TestSessionCancelAnalyzeAll: cancellation propagates through the worker
// pool.
func TestSessionCancelAnalyzeAll(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sess := NewSession(WithParallelism(2))
	_, err := sess.AnalyzeAll(ctx, GaoRexfordA(), GaoRexfordSafe())
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled AnalyzeAll returned %v, want context.Canceled", err)
	}
}

// TestSessionCancelMidSimulation: BADGADGET never quiesces, so a
// wall-clock deadline fires mid-simulation and aborts the run.
func TestSessionCancelMidSimulation(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	sess := NewSession(
		WithBatchWindow(time.Millisecond),
		WithHorizon(3*time.Hour), // virtual; unreachable within the deadline
	)
	_, err := sess.Run(ctx, mustGadget(t, "badgadget"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("deadline-bounded oscillating run returned %v, want context.DeadlineExceeded", err)
	}
}

// TestSessionCancelMidDeployment: cancellation also lands in the TCP
// deployment runner's quiescence loop.
func TestSessionCancelMidDeployment(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	sess := NewSession(
		WithRunner(DeploymentRunner()),
		WithBatchWindow(20*time.Millisecond),
		WithIdleWindow(time.Hour), // quiescence unreachable within the deadline
		WithHorizon(time.Hour),
	)
	_, err := sess.Run(ctx, mustGadget(t, "goodgadget"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("deadline-bounded deployment returned %v, want context.DeadlineExceeded", err)
	}
}

// TestSessionSeedDeterminism: equal seeds reproduce a simulation run
// byte for byte; different seeds are allowed to differ.
func TestSessionSeedDeterminism(t *testing.T) {
	ctx := context.Background()
	run := func(seed int64) *RunReport {
		sess := NewSession(WithSeed(seed), WithBatchWindow(15*time.Millisecond), WithHorizon(20*time.Second))
		rep, err := sess.Run(ctx, Figure3IBGPFixed())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(3), run(3)
	if a.Time != b.Time || a.Messages != b.Messages || a.Bytes != b.Bytes {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

// TestSessionTraceCollector: WithTrace accumulates across runs on the
// shared collector.
func TestSessionTraceCollector(t *testing.T) {
	col := NewTraceCollector(10 * time.Millisecond)
	sess := NewSession(WithTrace(col), WithHorizon(20*time.Second))
	if _, err := sess.Run(context.Background(), Figure3IBGPFixed()); err != nil {
		t.Fatal(err)
	}
	first, _ := col.Totals()
	if first == 0 {
		t.Fatal("collector saw no traffic")
	}
	if _, err := sess.Run(context.Background(), Figure3IBGPFixed()); err != nil {
		t.Fatal(err)
	}
	second, _ := col.Totals()
	if second <= first {
		t.Errorf("collector should accumulate across runs: %d then %d", first, second)
	}
}

// TestSessionFaultPlan: a session-attached fault plan injects into every
// run on the compiled sim backend, the run re-converges after the last
// fault on a safe instance, and the other backends reject plans loudly.
func TestSessionFaultPlan(t *testing.T) {
	ctx := context.Background()
	in := mustGadget(t, "goodgadget")
	var nodes []string
	for _, n := range in.Nodes {
		nodes = append(nodes, string(n))
	}
	var sessions [][2]string
	seen := map[[2]string]bool{}
	for _, l := range in.Links {
		a, b := string(l.From), string(l.To)
		if seen[[2]string{a, b}] || seen[[2]string{b, a}] {
			continue
		}
		seen[[2]string{a, b}] = true
		sessions = append(sessions, [2]string{a, b})
	}
	plan := BuildFaultPlan(7, nodes, sessions, FaultPlanSpec{Flaps: 2, Restarts: 1})
	if plan.Empty() {
		t.Fatal("BuildFaultPlan produced an empty plan")
	}
	sess := NewSession(WithFaultPlan(plan), WithHorizon(20*time.Second))
	rep, err := sess.Run(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults == 0 {
		t.Error("no fault events processed")
	}
	if !rep.Converged {
		t.Errorf("safe instance did not re-converge under the plan: %+v", rep)
	}
	if rep.Time < rep.LastFault {
		t.Errorf("converged at %v, before the last fault at %v", rep.Time, rep.LastFault)
	}
	again, err := sess.Run(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults != again.Faults || rep.Dropped != again.Dropped || rep.Time != again.Time {
		t.Errorf("churn run not reproducible: %+v vs %+v", rep, again)
	}
	for _, r := range []RunnerBackend{NDlogRunner(), DeploymentRunner()} {
		bad := NewSession(WithFaultPlan(plan), WithRunner(r))
		if _, err := bad.Run(ctx, in); err == nil {
			t.Errorf("%s backend accepted a fault plan", r.Name())
		}
	}
}

// TestSessionLinkLoss: probabilistic loss drops messages deterministically
// under a fixed seed, and an out-of-range rate is rejected.
func TestSessionLinkLoss(t *testing.T) {
	ctx := context.Background()
	run := func() *RunReport {
		sess := NewSession(WithLinkLoss(0.4), WithSeed(5), WithHorizon(20*time.Second))
		rep, err := sess.Run(ctx, Figure3IBGPFixed())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Dropped == 0 {
		t.Error("40% loss dropped nothing")
	}
	if a.Dropped != b.Dropped || a.Messages != b.Messages || a.Time != b.Time {
		t.Errorf("lossy runs diverged under one seed: %+v vs %+v", a, b)
	}
	if _, err := NewSession(WithLinkLoss(1.5)).Run(ctx, Figure3IBGPFixed()); err == nil {
		t.Error("loss rate 1.5 accepted")
	}
}

func mustGadget(t *testing.T, name string) *SPPInstance {
	t.Helper()
	inst, err := Gadget(name)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// TestBuiltinLookups: name resolution covers the documented sets.
func TestBuiltinLookups(t *testing.T) {
	for _, name := range BuiltinAlgebraNames() {
		if _, err := BuiltinAlgebra(name); err != nil {
			t.Errorf("BuiltinAlgebra(%s): %v", name, err)
		}
	}
	for _, name := range GadgetNames() {
		if _, err := Gadget(name); err != nil {
			t.Errorf("Gadget(%s): %v", name, err)
		}
	}
	if _, err := BuiltinAlgebra("nope"); err == nil {
		t.Error("unknown builtin should error")
	}
	if _, err := Gadget("nope"); err == nil {
		t.Error("unknown gadget should error")
	}
}

// TestDeprecatedWrappers: the pre-Session free functions still work via the
// default session, so existing callers keep compiling and running.
func TestDeprecatedWrappers(t *testing.T) {
	rep, err := AnalyzeSafety(GaoRexfordSafe())
	if err != nil || rep.Verdict != Safe {
		t.Fatalf("AnalyzeSafety wrapper: %v %v", rep.Verdict, err)
	}
	if _, err := CompileNDlog(GaoRexfordA()); err != nil {
		t.Fatalf("CompileNDlog wrapper: %v", err)
	}
	if _, err := YicesEncoding(GaoRexfordA()); err != nil {
		t.Fatalf("YicesEncoding wrapper: %v", err)
	}
	res, suspects, err := AnalyzeSPP(Figure3IBGP())
	if err != nil || res.Sat || len(suspects) == 0 {
		t.Fatalf("AnalyzeSPP wrapper: sat=%v suspects=%v err=%v", res.Sat, suspects, err)
	}
}

// TestSessionConcurrentUse: one session drives analyses and runs from many
// goroutines at once (run with -race).
func TestSessionConcurrentUse(t *testing.T) {
	sess := NewSession(WithBatchWindow(10*time.Millisecond), WithHorizon(20*time.Second))
	ctx := context.Background()
	errs := make(chan error, 8)
	for i := 0; i < 4; i++ {
		go func() {
			_, err := sess.Analyze(ctx, GaoRexfordSafe())
			errs <- err
		}()
		go func() {
			rep, err := sess.Run(ctx, Figure3IBGPFixed())
			if err == nil && !rep.Converged {
				err = fmt.Errorf("run did not converge")
			}
			errs <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestSessionCampaign: the public campaign API — a mixed sweep classifies
// deterministically, inherits the session's backends, and the corpus
// round-trips through Session.Replay.
func TestSessionCampaign(t *testing.T) {
	ctx := context.Background()
	sess := NewSession(WithSolver(YicesTextSolver()), WithParallelism(4))
	spec := CampaignSpec{Count: 18, BaseSeed: 3}
	rep, err := sess.Campaign(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 18 {
		t.Fatalf("got %d results", len(rep.Results))
	}
	if n := len(rep.Interesting()); n != 0 {
		t.Fatalf("%d interesting outcomes on honest kinds:\n%s", n, rep)
	}
	again, err := sess.Campaign(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Results {
		a, b := rep.Results[i], again.Results[i]
		a.SimTime, b.SimTime = 0, 0
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("campaign not deterministic at #%d:\n  %s\n  %s", i, a, b)
		}
	}
}

// TestSessionCampaignReplay: a shrunk divergent fixture written to a
// corpus reproduces through Session.Replay.
func TestSessionCampaignReplay(t *testing.T) {
	ctx := context.Background()
	sess := NewSession()
	rep, err := sess.Campaign(ctx, CampaignSpec{
		Kinds: []ScenarioKind{ScenarioDivergentFixture}, Count: 1, Shrink: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Tally()[OutcomeMismatch]; got != 1 {
		t.Fatalf("fixture not flagged:\n%s", rep)
	}
	if len(rep.Shrunk) != 1 || len(rep.Shrunk[0].Instance.Nodes) > 6 {
		t.Fatalf("fixture not shrunk to ≤ 6 nodes:\n%s", rep)
	}
	entries, err := rep.CorpusEntries()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteScenarioCorpus(&buf, entries); err != nil {
		t.Fatal(err)
	}
	back, err := ReadScenarioCorpus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := sess.Replay(ctx, back)
	if err != nil {
		t.Fatal(err)
	}
	for _, rr := range replayed {
		if !rr.Reproduced {
			t.Fatalf("corpus entry did not reproduce: %s", rr)
		}
	}
}

// TestScenarioLookups: the public scenario-kind registry.
func TestScenarioLookups(t *testing.T) {
	if len(ScenarioKinds()) < 4 || len(DefaultScenarioKinds()) != 3 {
		t.Fatalf("kinds = %v, default = %v", ScenarioKinds(), DefaultScenarioKinds())
	}
	for _, k := range ScenarioKinds() {
		got, err := ScenarioKindByName(string(k))
		if err != nil || got != k {
			t.Fatalf("ScenarioKindByName(%s) = %v, %v", k, got, err)
		}
	}
	if _, err := ScenarioKindByName("bogus"); err == nil {
		t.Fatal("bogus kind resolved")
	}
	sc, err := GenerateScenario(ScenarioGadgetSplice, 9)
	if err != nil || sc.Instance == nil || sc.Kind != ScenarioGadgetSplice {
		t.Fatalf("GenerateScenario: %v, %v", sc, err)
	}
}
