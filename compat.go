package fsr

import "context"

// This file keeps the pre-Session free functions compiling: each is a thin
// wrapper over a zero-configuration Session (native solver, simulation
// runner, background context). New code should construct a Session and use
// its context-aware methods; see CHANGES.md for the full migration map.

// defaultSession backs the deprecated free functions. It is stateless
// (default options, no shared collector), so sharing one instance is safe.
var defaultSession = NewSession()

// AnalyzeSafety decides safety for a policy configuration.
//
// Deprecated: use [Session.Analyze], which adds context cancellation and
// solver-backend selection.
func AnalyzeSafety(a Algebra) (SafetyReport, error) {
	return defaultSession.Analyze(context.Background(), a)
}

// CheckStrictMonotonicity runs the single strict-monotonicity check.
//
// Deprecated: use [Session.CheckStrictMonotonicity].
func CheckStrictMonotonicity(a Algebra) (AnalysisResult, error) {
	return defaultSession.CheckStrictMonotonicity(context.Background(), a)
}

// CheckMonotonicity runs the plain monotonicity check.
//
// Deprecated: use [Session.CheckMonotonicity].
func CheckMonotonicity(a Algebra) (AnalysisResult, error) {
	return defaultSession.CheckMonotonicity(context.Background(), a)
}

// YicesEncoding renders the §IV-C style solver input for a policy.
//
// Deprecated: use [Session.SolverEncoding].
func YicesEncoding(a Algebra) (string, error) {
	return defaultSession.SolverEncoding(a)
}

// CompileNDlog translates a policy configuration to its NDlog
// implementation.
//
// Deprecated: use [Session.Compile].
func CompileNDlog(a Algebra) (*NDlogProgram, error) {
	return defaultSession.Compile(a)
}

// AnalyzeSPP converts and checks an SPP instance in one step.
//
// Deprecated: use [Session.AnalyzeSPP].
func AnalyzeSPP(in *SPPInstance) (AnalysisResult, []SPPNode, error) {
	return defaultSession.AnalyzeSPP(context.Background(), in)
}
